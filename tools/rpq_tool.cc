// rpq_tool — command-line front end for the library, covering the full
// offline pipeline a deployment runs:
//
//   rpq_tool gen          --name sift --n 10000 --queries 100 --out data/
//   rpq_tool stats        --base data/base.fvecs
//   rpq_tool build-graph  --base data/base.fvecs --type vamana --out g.bin
//   rpq_tool train        --base data/base.fvecs --graph g.bin
//                         --method rpq --m 16 --k 256 [--nbits 4]
//                         --out model.rpqq
//   rpq_tool encode       --base data/base.fvecs --model model.rpqq
//                         --out codes.bin
//   rpq_tool build-ivf    --base data/base.fvecs --model model.rpqq
//                         --out ivf.bin [--nlist 64] [--nprobe 8]
//                         [--store-vectors] [--train-sample 0]
//                         [--residual [--nbits 8] [--m 16]]
//   rpq_tool search       --base data/base.fvecs --graph g.bin
//                         --model model.rpqq --queries data/queries.fvecs
//                         --k 10 --beam 64 [--mode adc|sdc|fastscan]
//                         [--rerank N] [--rerank-mode adc|exact|linkcode]
//                         [--store-vectors] [--hybrid] [--dump-top1 path]
//                         [--index memory|disk|ivf] [--ivf ivf.bin]
//                         [--nlist 64] [--nprobe 8] [--residual]
//                         [--sweep-nprobe 1,2,4,...] [--sweep-csv out.csv]
//                         [--queue-depth 8] [--io-width 1] [--readahead 0]
//                         [--trace]
//   rpq_tool serve-bench  --base data/base.fvecs --graph g.bin
//                         --model model.rpqq --queries data/queries.fvecs
//                         [--threads 4] [--shards 1] [--parallel-shards]
//                         [--k 10] [--beam 64] [--total 0] [--rate 0]
//                         [--batch 0] [--metrics-json out.json]
//                         [--index memory|disk|ivf] [--mode adc|sdc|fastscan]
//                         [--rerank N] [--rerank-mode adc|exact|linkcode]
//                         [--nlist 64] [--nprobe 8] [--residual]
//                         [--deadline-us 0] [--shed 0] [--brownout 0]
//                         [--faults "point=rate,...,seed=N"] [--fault-seed N]
//                         [--disk-error-rate 0] [--disk-spike-rate 0]
//                         [--queue-depth 8] [--io-width 1] [--readahead 0]
//                         [--shard-timeout-us 0] [--hedge-us 0] [--stall-ms 2]
//                         [--stats-port P] [--window-secs 5] [--slow-us 0]
//                         [--slow-capacity 256] [--slow-json out.json]
//   rpq_tool bench-diff   baseline.json candidate.json [--max-regress 10]
//                         [--max-recall-regress 10]
//   rpq_tool metrics-validate --json out.json [--require name1,name2,...]
//                         [--diff older.json [--interval-secs 1]]
//
// Observability (src/obs/): search --trace threads a per-query obs::QueryTrace
// through the backend and prints a per-stage time breakdown plus the search
// stats (hops, distance evals, visited-table hits) for the first few queries
// and in aggregate. serve-bench --metrics-json enables the process-wide
// metrics registry for the run and writes the obs::DumpJson() snapshot —
// per-stage latency histograms, backend counters, batcher occupancy — to the
// given path; --batch N routes the open-loop leg through a MicroBatcher of
// that size. metrics-validate parses such a snapshot with the in-repo JSON
// reader, checks the schema, and fails if any --require'd metric is absent
// (the CI smoke leg runs it against the serve-bench artifact);
// --diff older.json additionally prints the windowed delta between two
// snapshots (counter rates over --interval-secs, interval percentiles from
// histogram bucket deltas).
//
// Live introspection (see README "Live introspection"): serve-bench
// --stats-port P serves /metrics (Prometheus text), /metrics.json (DumpJson
// v1), /health (windowed QPS + degradation ratios; 503 when degraded past
// threshold), and /slow (flight-recorder dump) on 127.0.0.1:P for the whole
// run (port 0 picks an ephemeral one, printed at startup). --slow-us T arms
// the flight recorder's latency criterion (degraded/deadline/shed/hedged
// queries are always admitted); --slow-capacity sizes its ring; --slow-json
// writes the end-of-run dump for offline checks. bench-diff is the per-PR
// regression gate over checked-in bench summaries (BENCH_serve.json,
// BENCH_ivf.json): direction is inferred from metric names (recall/QPS must
// not drop, latency/percentiles must not rise past tolerance) and the exit
// code is non-zero on any regression, so CI turns red when the trajectory
// moves.
//
// --nbits 4 trains a 4-bit model (K = 16); searching such a model with
// --mode fastscan routes through the shuffle-kernel scan path with float-ADC
// rerank (--rerank candidates, 0 = auto). --dump-top1 writes one
// "query_id vertex_id" line per query (ids only — distance bits differ by
// ulps across SIMD backends); the CI smoke job compares the dump between
// RPQ_SIMD=scalar and the dispatched backend to catch FastScan kernel
// divergence end-to-end.
//
// --index ivf serves the non-graph backend: coarse k-means routing over
// --nlist cells, flat FastScan scans of the --nprobe nearest (requires a
// FastScan-capable model: 4-bit, or split-trained K = 256; --graph is
// unused). search builds the index in memory or loads one saved by build-ivf
// (--ivf); --sweep-nprobe prints a recall/QPS operating curve over the given
// comma-separated nprobe values, and --sweep-csv also writes it as
// `nprobe,recall@10,us_per_query` rows. serve-bench with --index ivf drives
// the same concurrent load tests over IvfService, where a query's beam_width
// slot carries its nprobe. --index memory is the in-memory graph backend
// (alias: graph); --index disk the hybrid one (alias: --hybrid).
//
// --residual selects residual IVFADC: codes quantize x - centroid of the
// owning cell. Because the PQ codebooks must be trained on the residual
// distribution (which only exists once the coarse quantizer is trained),
// build-ivf --residual trains BOTH in-process — the coarse centroids, then
// a residual model: the K = 256 split-table regime under --nbits 8 (the
// default here; scanned by the same shuffle kernels as two nibble planes)
// or a plain 4-bit model under --nbits 4 — and writes the model to --model
// as an OUTPUT. search/serve-bench --index ivf --residual either load
// (--ivf + --model) or rebuild deterministically: TrainCoarse is a pure
// function of (base, nlist, seed), so the same flags reproduce the same
// routing, with the model loaded from --model or retrained when absent.
//
// --rerank / --rerank-mode drive the shared refinement pipeline
// (src/refine/): how many candidates the estimate keeps and which stage
// re-scores them — adc (float lookup tables), exact (raw rows; implies
// --store-vectors for indexes built here), or linkcode (graph-regression
// reconstructions; memory backend only). The disk backend reranks every
// fetched vector exactly by construction: --rerank is ignored there,
// --rerank-mode exact/auto is accepted, and the other stages are rejected
// rather than silently serving something else.
//
// serve-bench drives the concurrent serving subsystem (src/serve/): a
// closed-loop load test with --threads clients (and, when --rate is given,
// an open-loop run at that arrival QPS), reporting QPS and p50/p95/p99
// latency. --shards S > 1 builds an S-shard in-memory deployment (per-shard
// Vamana graphs; --graph is then unused).
//
// Fault tolerance (see README "Fault tolerance"): --deadline-us gives every
// query a latency budget (late queries return partial results flagged
// degraded); --shed / --brownout set the open-loop engine's admission
// watermarks; --faults installs a seeded process-wide injection plan (same
// syntax as RPQ_FAULTS: "disk_read_error=0.01,shard_stall=0.05,seed=7");
// --disk-error-rate / --disk-spike-rate set the SSD simulator's own
// transient-failure and tail-spike rates (--index disk); --shard-timeout-us
// abandons shards that miss the cap (partial merge, shards_lost),
// --hedge-us sends a hedge to the shard's replica after that delay, and
// --stall-ms sizes the injected shard stall — the latter three imply
// --parallel-shards. Any degradation prints an extra report line (answered
// fraction, degraded %, shed / deadline / hedged / shards-lost counts), and
// the same tallies land in --metrics-json as serve.shed,
// serve.deadline_exceeded, serve.hedges, serve.shard_lost, disk.retries,
// disk.io_errors, and fault.* counters.
//
// Every artifact is a documented binary format (see quant/serialize.h and
// graph/graph.h), so stages can run on different machines.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/fault.h"
#include "common/timer.h"
#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/io_vecs.h"
#include "data/lid.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "eval/harness.h"
#include "eval/recall.h"
#include "graph/hnsw.h"
#include "ivf/ivf_index.h"
#include "graph/nsg.h"
#include "graph/vamana.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "quant/kmeans.h"
#include "quant/linkcode.h"
#include "quant/opq.h"
#include "quant/serialize.h"
#include "quant/split.h"
#include "refine/refine.h"
#include "serve/engine.h"
#include "serve/ivf_service.h"
#include "serve/loadgen.h"
#include "serve/sharded.h"

namespace {

using rpq::Dataset;

struct Flags {
  std::map<std::string, std::string> kv;

  const char* Get(const std::string& key, const char* fallback = nullptr) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second.c_str();
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    const char* v = Get(key);
    return v == nullptr ? fallback : std::strtoull(v, nullptr, 10);
  }
  bool Has(const std::string& key) const { return kv.count(key) > 0; }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    std::string key = argv[i] + 2;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      f.kv[key] = argv[++i];
    } else {
      f.kv[key] = "1";  // boolean flag
    }
  }
  return f;
}

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

rpq::Result<Dataset> LoadBase(const Flags& flags) {
  const char* path = flags.Get("base");
  if (path == nullptr) return rpq::Status::InvalidArgument("--base is required");
  return rpq::io::ReadFvecs(path);
}

int CmdGen(const Flags& flags) {
  std::string name = flags.Get("name", "sift");
  size_t n = flags.GetSize("n", 10000);
  size_t nq = flags.GetSize("queries", 100);
  uint64_t seed = flags.GetSize("seed", 7);
  std::string out = flags.Get("out", ".");
  Dataset base, queries;
  rpq::synthetic::MakeBaseAndQueries(name, n, nq, seed, &base, &queries);
  auto s1 = rpq::io::WriteFvecs(out + "/base.fvecs", base);
  if (!s1.ok()) return Fail(s1.ToString());
  auto s2 = rpq::io::WriteFvecs(out + "/queries.fvecs", queries);
  if (!s2.ok()) return Fail(s2.ToString());
  std::printf("wrote %zu base + %zu query vectors (%zu dims) to %s\n",
              base.size(), queries.size(), base.dim(), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  const Dataset& d = base.value();
  double lid = rpq::EstimateLid(d, 20, std::min<size_t>(200, d.size() / 2));
  std::printf("vectors: %zu\ndims:    %zu\nLID:     %.1f\nraw MB:  %.2f\n",
              d.size(), d.dim(), lid, d.size() * d.dim() * 4 / 1e6);
  return 0;
}

int CmdBuildGraph(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  std::string type = flags.Get("type", "vamana");
  const char* out = flags.Get("out");
  if (out == nullptr) return Fail("--out is required");

  rpq::graph::ProximityGraph g;
  if (type == "vamana") {
    rpq::graph::VamanaOptions opt;
    opt.degree = flags.GetSize("degree", 32);
    opt.build_beam = flags.GetSize("build-beam", 64);
    g = rpq::graph::BuildVamana(base.value(), opt);
  } else if (type == "hnsw") {
    rpq::graph::HnswOptions opt;
    opt.m = flags.GetSize("degree", 16);
    opt.ef_construction = flags.GetSize("build-beam", 120);
    g = rpq::graph::HnswIndex::Build(base.value(), opt)->Flatten();
  } else if (type == "nsg") {
    rpq::graph::NsgOptions opt;
    opt.degree = flags.GetSize("degree", 32);
    g = rpq::graph::BuildNsg(base.value(), opt);
  } else {
    return Fail("unknown graph type: " + type + " (vamana|hnsw|nsg)");
  }
  auto stats = g.ComputeDegreeStats();
  std::printf("%s graph: %zu vertices, avg degree %.1f, reachable %.4f\n",
              type.c_str(), g.num_vertices(), stats.avg_degree,
              g.ReachableFraction());
  auto s = g.Save(out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("saved to %s\n", out);
  return 0;
}

int CmdTrain(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  std::string method = flags.Get("method", "rpq");
  const char* out = flags.Get("out");
  if (out == nullptr) return Fail("--out is required");

  // --nbits 4 restricts K to 16 across every method, making the model
  // eligible for the FastScan search path; an explicit larger --k is a flag
  // error rather than a silent cap.
  const size_t nbits = flags.GetSize("nbits", 8);
  if (nbits != 8 && nbits != 4) return Fail("--nbits must be 8 or 4");
  const size_t default_k = nbits == 4 ? 16 : 256;
  if (nbits == 4 && flags.GetSize("k", 16) > 16) {
    return Fail("--nbits 4 codes hold K <= 16 centroids; for K = 256 on the "
                "FastScan path use --nbits 8 with the split regime "
                "(train --method pq --split, or build-ivf --residual)");
  }

  std::unique_ptr<rpq::quant::PqQuantizer> model;
  if (method == "pq") {
    rpq::quant::PqOptions opt;
    opt.m = flags.GetSize("m", 16);
    opt.k = flags.GetSize("k", default_k);
    opt.nbits = nbits;
    if (flags.Has("split")) {
      // K = 256 additive split regime (quant/split.h): FastScan-capable
      // 8-bit codes, serializable (v2) like any other model.
      if (nbits != 4 && opt.k == 256) {
        model = rpq::quant::TrainSplitPq(base.value(), opt);
      } else {
        return Fail("--split trains the K = 256 regime; use --nbits 8 "
                    "(default K 256)");
      }
    } else {
      model = rpq::quant::PqQuantizer::Train(base.value(), opt);
    }
  } else if (method == "opq") {
    rpq::quant::OpqOptions opt;
    opt.pq.m = flags.GetSize("m", 16);
    opt.pq.k = flags.GetSize("k", default_k);
    opt.pq.nbits = nbits;
    opt.outer_iters = flags.GetSize("iters", 4);
    model = rpq::quant::TrainOpq(base.value(), opt);
  } else if (method == "rpq") {
    const char* gpath = flags.Get("graph");
    if (gpath == nullptr) return Fail("--graph is required for rpq training");
    auto g = rpq::graph::ProximityGraph::Load(gpath);
    if (!g.ok()) return Fail(g.status().ToString());
    rpq::core::RpqTrainOptions opt;
    opt.m = flags.GetSize("m", 16);
    opt.k = std::min(flags.GetSize("k", default_k),
                     nbits == 4 ? size_t{16} : size_t{256});
    opt.epochs = flags.GetSize("epochs", 3);
    opt.triplets_per_epoch = flags.GetSize("triplets", 1024);
    opt.routing_queries_per_epoch = flags.GetSize("routing-queries", 48);
    auto res = rpq::core::TrainRpq(base.value(), g.value(), opt);
    std::printf("trained RPQ in %.1fs, final loss %.4f\n",
                res.training_seconds,
                res.epoch_loss.empty() ? 0.0 : res.epoch_loss.back());
    model = std::move(res.quantizer);
  } else {
    return Fail("unknown method: " + method + " (pq|opq|rpq)");
  }
  std::printf("distortion: %.4g, model %.1f KB\n",
              model->Distortion(base.value()), model->ModelSizeBytes() / 1024.0);
  auto s = rpq::quant::SaveQuantizer(*model, out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("saved to %s\n", out);
  return 0;
}

int CmdEncode(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  const char* mpath = flags.Get("model");
  const char* out = flags.Get("out");
  if (mpath == nullptr || out == nullptr) {
    return Fail("--model and --out are required");
  }
  auto model = rpq::quant::LoadQuantizer(mpath);
  if (!model.ok()) return Fail(model.status().ToString());
  auto codes = model.value()->EncodeDataset(base.value());
  auto s = rpq::quant::SaveCodes(codes, model.value()->code_size(), out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("encoded %zu vectors at %zu bytes each (%.1fx compression)\n",
              base.value().size(), model.value()->code_size(),
              static_cast<double>(base.value().dim() * 4) /
                  model.value()->code_size());
  return 0;
}

// Parses --rerank-mode (absent = auto); false on unknown names.
bool GetRerankMode(const Flags& flags, rpq::refine::RerankMode* mode) {
  return rpq::refine::ParseRerankMode(flags.Get("rerank-mode", "auto"), mode);
}

// Builds a Link&Code refinement model shaped like `model` (same m/K, its
// own least-squares neighbor weights) for --rerank-mode linkcode.
std::unique_ptr<rpq::quant::LinkCodeIndex> BuildLinkCode(
    const Dataset& base, const rpq::graph::ProximityGraph& graph,
    const rpq::quant::PqQuantizer& model) {
  rpq::quant::LinkCodeOptions opt;
  opt.pq.m = model.num_chunks();
  opt.pq.k = model.num_centroids();
  opt.pq.nbits = model.num_centroids() <= 16 ? 4 : 8;
  return rpq::quant::LinkCodeIndex::Build(base, graph, opt);
}

// The memory (graph) backend with its refinement epilogue configured from
// the flags — one implementation shared by search and serve-bench so the
// two commands cannot drift: distance-mode parse, the rerank-mode-requires-
// fastscan rule, --rerank-mode exact implying retained rows, and Link&Code
// model wiring.
struct MemoryBackend {
  std::unique_ptr<rpq::core::MemoryIndex> index;
  std::unique_ptr<rpq::quant::LinkCodeIndex> linkcode;  ///< kLinkCode only
  rpq::core::DistanceMode mode = rpq::core::DistanceMode::kAdc;
};

rpq::Result<MemoryBackend> MakeMemoryBackend(
    const Flags& flags, const Dataset& base,
    const rpq::graph::ProximityGraph& graph,
    const rpq::quant::PqQuantizer& model, rpq::refine::RerankMode rmode) {
  MemoryBackend b;
  const std::string mode_name = flags.Get("mode", "adc");
  if (mode_name == "sdc") {
    b.mode = rpq::core::DistanceMode::kSdc;
  } else if (mode_name == "fastscan") {
    b.mode = rpq::core::DistanceMode::kFastScan;
  } else if (mode_name != "adc") {
    // A typo'd mode must not silently benchmark plain ADC.
    return rpq::Status::InvalidArgument("unknown --mode: " + mode_name +
                                        " (adc|sdc|fastscan)");
  }
  if (rmode != rpq::refine::RerankMode::kAuto &&
      b.mode != rpq::core::DistanceMode::kFastScan) {
    return rpq::Status::InvalidArgument(
        "--rerank-mode applies to --mode fastscan (the mode with a "
        "refinement epilogue)");
  }
  rpq::core::MemoryIndexOptions mopt;
  mopt.store_vectors = flags.Has("store-vectors") ||
                       rmode == rpq::refine::RerankMode::kExact;
  b.index = rpq::core::MemoryIndex::Build(base, graph, model, mopt);
  if (b.mode == rpq::core::DistanceMode::kFastScan) {
    if (!b.index->fastscan_capable()) {
      return rpq::Status::InvalidArgument(
          "--mode fastscan needs a 4-bit model (train with --nbits 4)");
    }
    b.index->set_fastscan_rerank(flags.GetSize("rerank", 0));
    b.index->set_rerank_mode(rmode);
    if (rmode == rpq::refine::RerankMode::kLinkCode) {
      rpq::Timer lc_timer;
      b.linkcode = BuildLinkCode(base, graph, model);
      b.index->set_linkcode(b.linkcode.get());
      std::printf("linkcode model fit in %.1fs\n", lc_timer.ElapsedSeconds());
    }
  }
  return rpq::Result<MemoryBackend>(std::move(b));
}

// IVF refinement-stage validation shared by search, serve-bench, and
// build-ivf. Called with index == nullptr before any index work (the
// stages IVF can never serve) and again with the built/loaded index
// (exact needs the raw rows this particular index retains).
rpq::Status CheckIvfRerankMode(rpq::refine::RerankMode rmode,
                               const rpq::ivf::IvfIndex* index) {
  if (rmode == rpq::refine::RerankMode::kLinkCode) {
    return rpq::Status::InvalidArgument(
        "--rerank-mode linkcode needs a graph backend "
        "(IVF cells have no adjacency to regress over)");
  }
  if (index != nullptr && rmode == rpq::refine::RerankMode::kExact &&
      !index->stores_vectors()) {
    return rpq::Status::InvalidArgument(
        "--rerank-mode exact needs an IVF index with raw rows "
        "(rebuild with --store-vectors)");
  }
  return rpq::Status::OK();
}

// The disk backend's exact-on-fetch rerank is inherent; any other requested
// stage is a flag error (shared by search and serve-bench).
rpq::Status CheckDiskRerankMode(rpq::refine::RerankMode rmode) {
  if (rmode == rpq::refine::RerankMode::kAuto ||
      rmode == rpq::refine::RerankMode::kExact) {
    return rpq::Status::OK();
  }
  return rpq::Status::InvalidArgument(
      "the disk backend reranks every fetched vector exactly; --rerank-mode " +
      std::string(rpq::refine::RerankModeName(rmode)) + " does not apply");
}

// IVF build knobs shared by build-ivf, search --index ivf, serve-bench.
// --rerank-mode exact implies --store-vectors: the exact stage needs the
// raw rows resident.
rpq::ivf::IvfOptions IvfOptionsFrom(const Flags& flags) {
  rpq::ivf::IvfOptions opt;
  rpq::refine::RerankMode rmode = rpq::refine::RerankMode::kAuto;
  GetRerankMode(flags, &rmode);
  opt.nlist = flags.GetSize("nlist", 64);
  opt.default_nprobe = flags.GetSize("nprobe", 8);
  opt.store_vectors = flags.Has("store-vectors") ||
                      rmode == rpq::refine::RerankMode::kExact;
  opt.train_sample = flags.GetSize("train-sample", 0);
  opt.residual = flags.Has("residual");
  return opt;
}

// Residual-regime model training: the PQ codebooks must see the residual
// distribution (x - centroid), which only exists once the coarse quantizer
// is trained — so the residual flow derives the training set here instead of
// loading a model trained on the raw corpus. --nbits 8 (the default in this
// flow) trains the K = 256 split-table regime; --nbits 4 a plain 4-bit model.
rpq::Result<std::unique_ptr<rpq::quant::PqQuantizer>> TrainResidualModel(
    const Dataset& base, const std::vector<float>& centroids,
    const Flags& flags) {
  const size_t nbits = flags.GetSize("nbits", 8);
  if (nbits != 8 && nbits != 4) {
    return rpq::Status::InvalidArgument("--nbits must be 8 or 4");
  }
  const size_t dim = base.dim();
  const size_t nlist = centroids.size() / dim;
  std::vector<float> resid(base.size() * dim);
  for (size_t i = 0; i < base.size(); ++i) {
    const uint32_t c =
        rpq::quant::NearestCentroid(base[i], centroids.data(), nlist, dim);
    const float* cent = centroids.data() + size_t{c} * dim;
    for (size_t d = 0; d < dim; ++d) {
      resid[i * dim + d] = base[i][d] - cent[d];
    }
  }
  Dataset residual_set(base.size(), dim, std::move(resid));
  rpq::quant::PqOptions opt;
  opt.m = flags.GetSize("m", 16);
  opt.nbits = nbits;
  if (nbits == 8) {
    return rpq::quant::TrainSplitPq(residual_set, opt);
  }
  return rpq::quant::PqQuantizer::Train(residual_set, opt);
}

// An IVF deployment assembled from the flags. The index borrows its
// quantizer, so the backend owns both; `model` is the loaded --model or, in
// the in-process residual flow, the freshly trained one.
struct IvfBackend {
  std::unique_ptr<rpq::quant::PqQuantizer> model;
  std::unique_ptr<rpq::ivf::IvfIndex> index;
};

// Loads a saved IVF index (--ivf + --model), or builds one over the base in
// memory: the plain flow encodes raw rows with the loaded --model; the
// --residual flow trains the coarse quantizer first (or re-derives it — the
// k-means is deterministic in the flags) and encodes per-cell residuals with
// --model when given, a freshly trained residual model otherwise.
rpq::Result<IvfBackend> MakeIvfBackend(const Flags& flags,
                                       const Dataset& base) {
  IvfBackend b;
  const char* mpath = flags.Get("model");
  if (const char* path = flags.Get("ivf")) {
    if (mpath == nullptr) {
      return rpq::Status::InvalidArgument(
          "--ivf needs --model (the quantizer the index was built with)");
    }
    auto model = rpq::quant::LoadQuantizer(mpath);
    if (!model.ok()) return model.status();
    b.model = std::move(model.value());
    auto loaded = rpq::ivf::IvfIndex::Load(path, *b.model);
    if (!loaded.ok()) return loaded.status();
    b.index = std::move(loaded.value());
    return rpq::Result<IvfBackend>(std::move(b));
  }
  rpq::ivf::IvfOptions opt = IvfOptionsFrom(flags);
  if (opt.residual) {
    std::vector<float> centroids = rpq::ivf::IvfIndex::TrainCoarse(base, opt);
    if (mpath != nullptr) {
      auto model = rpq::quant::LoadQuantizer(mpath);
      if (!model.ok()) return model.status();
      b.model = std::move(model.value());
    } else {
      auto trained = TrainResidualModel(base, centroids, flags);
      if (!trained.ok()) return trained.status();
      b.model = std::move(trained.value());
    }
    b.index = rpq::ivf::IvfIndex::BuildWithCentroids(base, std::move(centroids),
                                                     *b.model, opt);
    return rpq::Result<IvfBackend>(std::move(b));
  }
  if (mpath == nullptr) {
    return rpq::Status::InvalidArgument("--model is required");
  }
  auto model = rpq::quant::LoadQuantizer(mpath);
  if (!model.ok()) return model.status();
  b.model = std::move(model.value());
  if (b.model->num_centroids() > 16 && b.model->split_model() == nullptr) {
    return rpq::Status::InvalidArgument(
        "--index ivf needs a FastScan-capable model: 4-bit (--nbits 4) or "
        "split-trained K = 256 (train --split / build-ivf --residual)");
  }
  b.index = rpq::ivf::IvfIndex::Build(base, *b.model, opt);
  return rpq::Result<IvfBackend>(std::move(b));
}

std::vector<std::string> ParseStringList(const char* s) {
  std::vector<std::string> out;
  while (s != nullptr && *s != '\0') {
    const char* comma = std::strchr(s, ',');
    if (comma == nullptr) {
      if (*s != '\0') out.emplace_back(s);
      break;
    }
    if (comma != s) out.emplace_back(s, comma);
    s = comma + 1;
  }
  return out;
}

// Accumulates --trace output across the search replay: per-query lines for
// the first few queries, totals for the whole run. Shared by the three
// backends, but each names its own stat columns — the graph backends report
// hops / distance evals / visited-table hits, while the IVF backend reports
// lists probed / codes scanned (a nullptr label drops the column entirely),
// so the printout no longer overloads graph terms for flat-scan stats.
struct TraceAccumulator {
  static constexpr size_t kPerQueryLines = 8;
  static constexpr size_t kStatColumns = 4;

  // Column labels; the graph default matches SearchStats' field names. The
  // fourth column is nullptr (dropped) except for the disk backend, which
  // reports injected latency spikes next to its traversal stats.
  const char* labels[kStatColumns] = {"hops", "dist", "visited-hits", nullptr};

  rpq::obs::QueryTrace totals;
  size_t stats[kStatColumns] = {0, 0, 0, 0};
  size_t queries = 0;
  std::vector<std::string> lines;

  static TraceAccumulator ForIvf() {
    TraceAccumulator t;
    t.labels[0] = "lists-probed";
    t.labels[1] = "codes-scanned";
    t.labels[2] = nullptr;  // IVF has no visited table
    return t;
  }

  static TraceAccumulator ForDisk() {
    TraceAccumulator t;
    t.labels[3] = "spikes";
    return t;
  }

  void Note(size_t q, const rpq::obs::QueryTrace& trace, size_t s0, size_t s1,
            size_t s2, size_t s3 = 0) {
    ++queries;
    const size_t row[kStatColumns] = {s0, s1, s2, s3};
    for (size_t c = 0; c < kStatColumns; ++c) stats[c] += row[c];
    for (size_t s = 0; s < rpq::obs::kNumStages; ++s) {
      const auto stage = static_cast<rpq::obs::Stage>(s);
      const auto& t = trace.total(stage);
      if (t.spans > 0) totals.AddSpan(stage, t.nanos);
    }
    if (q < kPerQueryLines) {
      char head[128];
      int off = std::snprintf(head, sizeof(head), "  q%-4zu", q);
      for (size_t c = 0; c < kStatColumns; ++c) {
        if (labels[c] == nullptr) continue;
        off += std::snprintf(head + off, sizeof(head) - off, " %s %-9zu",
                             labels[c], row[c]);
      }
      std::snprintf(head + off, sizeof(head) - off, "  ");
      lines.push_back(std::string(head) + trace.Format());
    }
  }

  void Print() const {
    if (queries == 0) return;
    for (const std::string& line : lines) std::printf("%s\n", line.c_str());
    if (queries > lines.size()) {
      std::printf("  ... (%zu more queries)\n", queries - lines.size());
    }
    const double n = static_cast<double>(queries);
    std::printf("trace totals (%zu queries): %s\n", queries,
                totals.Format().c_str());
    std::printf("stats:");
    for (size_t c = 0; c < kStatColumns; ++c) {
      if (labels[c] == nullptr) continue;
      std::printf("  %s %zu (%.1f/q)", labels[c], stats[c], stats[c] / n);
    }
    std::printf("\n");
  }
};

std::vector<size_t> ParseSizeList(const char* s) {
  std::vector<size_t> out;
  while (s != nullptr && *s != '\0') {
    char* end = nullptr;
    size_t v = std::strtoull(s, &end, 10);
    if (end == s) break;
    out.push_back(v);
    s = *end == ',' ? end + 1 : end;
  }
  return out;
}

int CmdBuildIvf(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  const char* mpath = flags.Get("model");
  const char* out = flags.Get("out");
  if (mpath == nullptr || out == nullptr) {
    return Fail("--model and --out are required");
  }
  // Validate up front: a typo'd --rerank-mode must not silently build an
  // index without the raw rows the intended exact stage needs.
  rpq::refine::RerankMode rmode = rpq::refine::RerankMode::kAuto;
  if (!GetRerankMode(flags, &rmode)) {
    return Fail("--rerank-mode must be adc, exact, or linkcode");
  }
  auto mode_ok = CheckIvfRerankMode(rmode, nullptr);
  if (!mode_ok.ok()) return Fail(mode_ok.ToString());
  rpq::Timer timer;
  std::unique_ptr<rpq::quant::PqQuantizer> model;
  std::unique_ptr<rpq::ivf::IvfIndex> index;
  const rpq::ivf::IvfOptions opt = IvfOptionsFrom(flags);
  if (opt.residual) {
    // Residual flow: coarse centroids first, then a model trained on the
    // per-cell residuals; --model is the OUTPUT path for that model (search
    // and serve-bench load it back next to --ivf).
    std::vector<float> centroids =
        rpq::ivf::IvfIndex::TrainCoarse(base.value(), opt);
    auto trained = TrainResidualModel(base.value(), centroids, flags);
    if (!trained.ok()) return Fail(trained.status().ToString());
    model = std::move(trained.value());
    index = rpq::ivf::IvfIndex::BuildWithCentroids(
        base.value(), std::move(centroids), *model, opt);
    auto ms = rpq::quant::SaveQuantizer(*model, mpath);
    if (!ms.ok()) return Fail(ms.ToString());
    std::printf("trained residual model (m=%zu, K=%zu%s), saved to %s\n",
                model->num_chunks(), model->num_centroids(),
                model->split_model() != nullptr ? ", split" : "", mpath);
  } else {
    auto loaded = rpq::quant::LoadQuantizer(mpath);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    model = std::move(loaded.value());
    if (model->num_centroids() > 16 && model->split_model() == nullptr) {
      return Fail("build-ivf needs a FastScan-capable model: 4-bit "
                  "(--nbits 4) or split-trained K = 256 (train --split)");
    }
    index = rpq::ivf::IvfIndex::Build(base.value(), *model, opt);
  }
  std::printf("ivf index: %zu lists over %zu vectors in %.1fs (%.1f MB)\n",
              index->nlist(), index->size(), timer.ElapsedSeconds(),
              index->MemoryBytes() / 1e6);
  auto s = index->Save(out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("saved to %s\n", out);
  return 0;
}

int CmdSearch(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  std::string index_kind = flags.Get("index", "graph");
  if (index_kind == "memory") index_kind = "graph";  // alias
  const bool use_ivf = index_kind == "ivf";
  const bool use_disk = index_kind == "disk" || flags.Has("hybrid");
  if (!use_ivf && !use_disk && index_kind != "graph") {
    return Fail("unknown --index: " + index_kind + " (memory|disk|ivf)");
  }
  rpq::refine::RerankMode rmode = rpq::refine::RerankMode::kAuto;
  if (!GetRerankMode(flags, &rmode)) {
    return Fail("--rerank-mode must be adc, exact, or linkcode");
  }
  const char* gpath = flags.Get("graph");
  const char* mpath = flags.Get("model");
  const char* qpath = flags.Get("queries");
  // The IVF backend resolves --model itself (the --residual flow can train
  // one in-process); the graph backends always need it loaded here.
  if (qpath == nullptr || (!use_ivf && (mpath == nullptr || gpath == nullptr))) {
    return Fail(use_ivf ? "--queries is required"
                        : "--graph, --model, --queries are required");
  }
  rpq::graph::ProximityGraph graph;
  std::unique_ptr<rpq::quant::PqQuantizer> model;
  if (!use_ivf) {
    auto g = rpq::graph::ProximityGraph::Load(gpath);
    if (!g.ok()) return Fail(g.status().ToString());
    graph = std::move(g.value());
    auto loaded = rpq::quant::LoadQuantizer(mpath);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    model = std::move(loaded.value());
  }
  auto queries = rpq::io::ReadFvecs(qpath);
  if (!queries.ok()) return Fail(queries.status().ToString());

  size_t k = flags.GetSize("k", 10);
  size_t beam = flags.GetSize("beam", 64);
  auto gt = rpq::ComputeGroundTruth(base.value(), queries.value(), k);

  // The IVF index is assembled (or loaded) before the timed loop, like the
  // graph artifacts; --sweep-nprobe prints its recall/QPS curve first. The
  // backend owns the quantizer the index borrows, so both live to the end.
  std::unique_ptr<rpq::quant::PqQuantizer> ivf_model;
  std::unique_ptr<rpq::ivf::IvfIndex> ivf_index;
  rpq::ivf::IvfSearchOptions ivf_opt;
  if (use_ivf) {
    // Impossible stages are rejected before the (potentially expensive)
    // index build; exact-needs-rows is re-checked against the built index.
    auto mode_ok = CheckIvfRerankMode(rmode, nullptr);
    if (!mode_ok.ok()) return Fail(mode_ok.ToString());
    auto made = MakeIvfBackend(flags, base.value());
    if (!made.ok()) return Fail(made.status().ToString());
    ivf_model = std::move(made.value().model);
    ivf_index = std::move(made.value().index);
    mode_ok = CheckIvfRerankMode(rmode, ivf_index.get());
    if (!mode_ok.ok()) return Fail(mode_ok.ToString());
    ivf_opt.nprobe = flags.GetSize("nprobe", 0);
    ivf_opt.rerank = flags.GetSize("rerank", 0);
    ivf_opt.rerank_mode = rmode;
    if (const char* sweep = flags.Get("sweep-nprobe")) {
      auto nprobes = ParseSizeList(sweep);
      if (nprobes.empty()) return Fail("--sweep-nprobe expects n1,n2,...");
      const rpq::ivf::IvfIndex& ix = *ivf_index;
      // The sweep axis is nprobe; the refinement request rides inside the
      // closure so every operating point reranks the same way.
      const rpq::ivf::IvfSearchOptions base_opt = ivf_opt;
      rpq::eval::SearchFn fn = [&ix, base_opt](const float* q, size_t kk,
                                               size_t nprobe) {
        rpq::ivf::IvfSearchOptions opt = base_opt;
        opt.nprobe = nprobe;
        rpq::eval::SearchOutcome out;
        auto res = ix.Search(q, kk, opt);
        out.results = std::move(res.results);
        out.hops = res.stats.lists_probed;
        return out;
      };
      auto curve = rpq::eval::SweepNprobe(fn, queries.value(), gt, k, nprobes);
      rpq::eval::PrintCurve("ivf", curve);
      if (const char* csv = flags.Get("sweep-csv")) {
        auto s = rpq::eval::WriteCurveCsv(csv, "nprobe", curve);
        if (!s.ok()) return Fail(s.ToString());
        std::printf("wrote sweep CSV to %s\n", csv);
      }
    }
  }

  // --trace: thread a per-query obs::QueryTrace through the backend (also
  // enabling the registry so the stage histograms fill) and print the
  // per-stage breakdown + search stats after the replay. The trace lines are
  // accumulated inside the timed loop, so the QPS on a traced run includes
  // the (small) tracing overhead — it measures what it ran.
  const bool trace_on = flags.Has("trace");
  if (trace_on) rpq::obs::SetMetricsEnabled(true);
  TraceAccumulator tacc = use_ivf    ? TraceAccumulator::ForIvf()
                          : use_disk ? TraceAccumulator::ForDisk()
                                     : TraceAccumulator{};

  std::vector<std::vector<rpq::Neighbor>> results(queries.value().size());
  rpq::Timer timer;
  double io_seconds = 0;
  if (use_ivf) {
    for (size_t q = 0; q < queries.value().size(); ++q) {
      rpq::obs::QueryTrace trace;
      ivf_opt.trace = trace_on ? &trace : nullptr;
      auto out = ivf_index->Search(queries.value()[q], k, ivf_opt);
      results[q] = std::move(out.results);
      if (trace_on) {
        tacc.Note(q, trace, out.stats.lists_probed, out.stats.codes_scanned, 0);
      }
    }
  } else if (use_disk) {
    auto mode_ok = CheckDiskRerankMode(rmode);
    if (!mode_ok.ok()) return Fail(mode_ok.ToString());
    rpq::disk::DiskIndexOptions dopt;
    dopt.ssd.queue_depth = flags.GetSize("queue-depth", dopt.ssd.queue_depth);
    dopt.io_width = flags.GetSize("io-width", dopt.io_width);
    dopt.readahead = flags.GetSize("readahead", dopt.readahead);
    auto index = rpq::disk::DiskIndex::Build(base.value(), graph, *model, dopt);
    rpq::disk::IoStats io_total;
    for (size_t q = 0; q < queries.value().size(); ++q) {
      rpq::obs::QueryTrace trace;
      auto out = index->Search(queries.value()[q], k, {beam, k},
                               trace_on ? &trace : nullptr);
      results[q] = std::move(out.results);
      io_seconds += out.io.simulated_seconds;
      io_total.reads += out.io.reads;
      io_total.io_waves += out.io.io_waves;
      io_total.prefetch_issued += out.io.prefetch_issued;
      io_total.prefetch_hits += out.io.prefetch_hits;
      io_total.prefetch_wasted += out.io.prefetch_wasted;
      if (trace_on) {
        tacc.Note(q, trace, out.stats.hops, out.stats.dist_comps,
                  out.stats.visited_hits, out.io.latency_spikes);
      }
    }
    const double nq = std::max<double>(1.0, queries.value().size());
    std::printf(
        "disk-io us/query = %.1f (qd %zu, io-width %zu, readahead %zu; "
        "%.1f reads/q, %.1f waves/q, prefetch %zu issued / %zu hits / "
        "%zu wasted)\n",
        io_seconds * 1e6 / nq, dopt.ssd.queue_depth, dopt.io_width,
        dopt.readahead, io_total.reads / nq, io_total.io_waves / nq,
        io_total.prefetch_issued, io_total.prefetch_hits,
        io_total.prefetch_wasted);
  } else {
    auto made = MakeMemoryBackend(flags, base.value(), graph, *model, rmode);
    if (!made.ok()) return Fail(made.status().ToString());
    MemoryBackend backend = std::move(made.value());
    for (size_t q = 0; q < queries.value().size(); ++q) {
      rpq::obs::QueryTrace trace;
      auto out = backend.index->Search(queries.value()[q], k, {beam, k},
                                       backend.mode, {},
                                       trace_on ? &trace : nullptr);
      results[q] = std::move(out.results);
      if (trace_on) {
        tacc.Note(q, trace, out.stats.hops, out.stats.dist_comps,
                  out.stats.visited_hits);
      }
    }
  }
  double total = timer.ElapsedSeconds() + io_seconds;
  std::printf("queries: %zu  recall@%zu: %.4f  QPS: %.1f\n",
              queries.value().size(), k,
              rpq::eval::MeanRecallAtK(results, gt, k),
              queries.value().size() / std::max(total, 1e-12));
  if (trace_on) tacc.Print();

  if (const char* dump = flags.Get("dump-top1")) {
    // One line per query: the top result's vertex id. Ids (not distances)
    // are the cross-backend invariant: the integer FastScan scan is
    // bit-identical everywhere, while the float lookup tables it quantizes
    // are only 1e-4-relative across SIMD backends, so distance BITS may
    // differ in the last ulps even when every ranking decision agrees.
    std::FILE* fp = std::fopen(dump, "w");
    if (fp == nullptr) return Fail(std::string("cannot write ") + dump);
    for (size_t q = 0; q < results.size(); ++q) {
      if (results[q].empty()) {
        std::fprintf(fp, "%zu -\n", q);
      } else {
        std::fprintf(fp, "%zu %u\n", q, results[q][0].id);
      }
    }
    std::fclose(fp);
    std::printf("wrote top-1 dump to %s\n", dump);
  }
  return 0;
}

int CmdServeBench(const Flags& flags) {
  auto base = LoadBase(flags);
  if (!base.ok()) return Fail(base.status().ToString());
  const char* mpath = flags.Get("model");
  const char* qpath = flags.Get("queries");
  if (qpath == nullptr) return Fail("--queries is required");
  auto queries = rpq::io::ReadFvecs(qpath);
  if (!queries.ok()) return Fail(queries.status().ToString());

  rpq::serve::LoadgenOptions opt;
  opt.k = flags.GetSize("k", 10);
  opt.beam_width = flags.GetSize("beam", 64);
  opt.threads = flags.GetSize("threads", 4);
  opt.total_queries = flags.GetSize("total", 0);
  opt.batch = flags.GetSize("batch", 0);  // open-loop leg only
  opt.deadline_us = flags.GetSize("deadline-us", 0);
  const size_t shards = flags.GetSize("shards", 1);
  const double rate = std::strtod(flags.Get("rate", "0"), nullptr);
  // --metrics-json turns the registry on for the whole run (index build
  // included) and writes the snapshot at the end.
  const char* metrics_json = flags.Get("metrics-json");
  if (metrics_json != nullptr) rpq::obs::SetMetricsEnabled(true);

  // --stats-port / --slow-us arm the live-introspection layer: the flight
  // recorder admits degraded queries always and slow ones past --slow-us,
  // and --stats-port additionally serves /metrics, /metrics.json, /health,
  // and /slow over HTTP for the whole run (index build included). Both imply
  // metrics so the windowed /health summary has counters to diff.
  const bool stats_server = flags.Has("stats-port");
  if (stats_server || flags.Has("slow-us")) {
    rpq::obs::SetMetricsEnabled(true);
    rpq::obs::FlightRecorderOptions fopt;
    fopt.capacity = flags.GetSize("slow-capacity", 256);
    fopt.slow_us = flags.GetSize("slow-us", 0);
    rpq::obs::FlightRecorder& recorder = rpq::obs::GlobalFlightRecorder();
    recorder.Configure(fopt);
    recorder.SetEnabled(true);
  }
  rpq::obs::HttpExporter exporter([&flags] {
    rpq::obs::HttpExporterOptions hopt;
    hopt.port = static_cast<uint16_t>(flags.GetSize("stats-port", 0));
    hopt.window_seconds = std::strtod(flags.Get("window-secs", "5"), nullptr);
    return hopt;
  }());
  if (stats_server) {
    auto started = exporter.Start();
    if (!started.ok()) return Fail(started.ToString());
    std::printf("stats endpoint: http://127.0.0.1:%u  "
                "(/metrics /metrics.json /health /slow)\n",
                exporter.port());
  }

  // --faults installs a process-wide injection plan (same syntax as the
  // RPQ_FAULTS environment variable, which it overrides); --fault-seed
  // replaces just the seed. Installed before the backend is built so the
  // SSD simulator's own injector merges it in at construction.
  {
    rpq::fault::Plan plan = rpq::fault::GlobalInjector().plan();
    bool have_plan = false;
    if (const char* spec = flags.Get("faults"); spec != nullptr) {
      std::string err;
      if (!rpq::fault::ParsePlan(spec, &plan, &err)) return Fail(err);
      have_plan = true;
    }
    if (flags.Has("fault-seed")) {
      plan.seed = flags.GetSize("fault-seed", 1);
      have_plan = true;
    }
    if (have_plan) rpq::fault::SetGlobalPlan(plan);
  }
  rpq::refine::RerankMode rmode = rpq::refine::RerankMode::kAuto;
  if (!GetRerankMode(flags, &rmode)) {
    return Fail("--rerank-mode must be adc, exact, or linkcode");
  }

  // Assemble the backend: IVF flat-scan, sharded in-memory, hybrid disk, or
  // single-shard in-memory over a prebuilt graph. --rerank/--rerank-mode
  // configure the refinement pipeline uniformly across memory|disk|ivf (the
  // disk backend's exact-on-fetch rerank is inherent, so they are no-ops
  // there).
  // Declaration order is destruction order in reverse, and it matters: the
  // sharded deployment's destructor drains abandoned fan-out tasks that may
  // still touch the shard backends AND what those borrow (the quantizer, the
  // graph, the base rows) — so everything borrowed is declared BEFORE the
  // service objects, outliving them.
  std::unique_ptr<rpq::quant::PqQuantizer> model;
  rpq::graph::ProximityGraph graph;
  std::unique_ptr<rpq::core::MemoryIndex> mem_index;
  std::unique_ptr<rpq::quant::LinkCodeIndex> linkcode;
  std::unique_ptr<rpq::disk::DiskIndex> disk_index;
  std::unique_ptr<rpq::quant::PqQuantizer> ivf_model;
  std::unique_ptr<rpq::ivf::IvfIndex> ivf_index;
  std::unique_ptr<rpq::serve::SearchService> owned_service;
  rpq::serve::ShardedMemoryIndex sharded;
  const rpq::serve::SearchService* service = nullptr;

  std::string index_kind = flags.Get("index", "graph");
  if (index_kind == "memory") index_kind = "graph";  // alias
  const bool use_disk = index_kind == "disk" || flags.Has("hybrid");
  if (use_disk) index_kind = "graph";

  // Graph backends always need the model loaded here; the IVF backend
  // resolves --model itself (--residual can train one in-process).
  if (index_kind != "ivf") {
    if (mpath == nullptr) return Fail("--model and --queries are required");
    auto loaded = rpq::quant::LoadQuantizer(mpath);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    model = std::move(loaded.value());
  }
  // The sharded deployment builds plain ADC memory shards; flags it cannot
  // honor must fail loudly, not silently benchmark something else.
  // (--mode adc is what it serves anyway, so an explicit request passes.)
  const std::string shard_mode = flags.Get("mode", "adc");
  if (shards > 1 && index_kind == "graph" &&
      (use_disk || shard_mode != "adc" || flags.Has("rerank") ||
       flags.Has("rerank-mode") || flags.Has("store-vectors"))) {
    return Fail("--shards > 1 serves plain ADC memory shards; --index disk, "
                "--mode sdc|fastscan, --rerank, --rerank-mode, and "
                "--store-vectors are not supported there");
  }
  if (index_kind == "ivf") {
    // Impossible stages are rejected before the (potentially expensive)
    // index build; exact-needs-rows is re-checked against the built index.
    auto mode_ok = CheckIvfRerankMode(rmode, nullptr);
    if (!mode_ok.ok()) return Fail(mode_ok.ToString());
    rpq::Timer build;
    auto made = MakeIvfBackend(flags, base.value());
    if (!made.ok()) return Fail(made.status().ToString());
    ivf_model = std::move(made.value().model);
    ivf_index = std::move(made.value().index);
    mode_ok = CheckIvfRerankMode(rmode, ivf_index.get());
    if (!mode_ok.ok()) return Fail(mode_ok.ToString());
    // For IVF backends the QuerySpec beam_width slot carries nprobe.
    opt.beam_width = flags.GetSize("nprobe", 8);
    std::printf("built ivf index: %zu lists, %zu vectors in %.1fs (%.1f MB)\n",
                ivf_index->nlist(), ivf_index->size(), build.ElapsedSeconds(),
                ivf_index->MemoryBytes() / 1e6);
    owned_service = std::make_unique<rpq::serve::IvfService>(
        *ivf_index, flags.GetSize("rerank", 0), rmode);
    service = owned_service.get();
  } else if (shards > 1) {
    rpq::graph::VamanaOptions vopt;
    vopt.degree = flags.GetSize("degree", 32);
    vopt.build_beam = flags.GetSize("build-beam", 64);
    rpq::serve::ShardedOptions sopt;
    sopt.parallel_shards = flags.Has("parallel-shards");
    sopt.shard_timeout_us = flags.GetSize("shard-timeout-us", 0);
    sopt.hedge_delay_us = flags.GetSize("hedge-us", 0);
    sopt.injected_stall_us = flags.GetSize("stall-ms", 2) * 1000;
    // Timeouts and hedging are properties of the parallel fan-out.
    if (sopt.shard_timeout_us > 0 || sopt.hedge_delay_us > 0) {
      sopt.parallel_shards = true;
    }
    rpq::Timer build;
    sharded = rpq::serve::BuildShardedMemoryIndex(base.value(), *model,
                                                  shards, vopt, sopt);
    std::printf("built %zu shards in %.1fs (%.1f MB resident%s)\n",
                sharded.shards.size(), build.ElapsedSeconds(),
                sharded.MemoryBytes() / 1e6,
                sopt.parallel_shards ? ", parallel fan-out" : "");
    service = sharded.service.get();
  } else {
    const char* gpath = flags.Get("graph");
    if (gpath == nullptr) return Fail("--graph is required when --shards 1");
    auto g = rpq::graph::ProximityGraph::Load(gpath);
    if (!g.ok()) return Fail(g.status().ToString());
    graph = std::move(g.value());
    if (use_disk) {
      auto mode_ok = CheckDiskRerankMode(rmode);
      if (!mode_ok.ok()) return Fail(mode_ok.ToString());
      rpq::disk::DiskIndexOptions dopt;
      dopt.ssd.transient_error_rate =
          std::strtod(flags.Get("disk-error-rate", "0"), nullptr);
      dopt.ssd.latency_spike_rate =
          std::strtod(flags.Get("disk-spike-rate", "0"), nullptr);
      dopt.ssd.fault_seed = flags.GetSize("fault-seed", 1);
      dopt.ssd.queue_depth = flags.GetSize("queue-depth", dopt.ssd.queue_depth);
      dopt.io_width = flags.GetSize("io-width", dopt.io_width);
      dopt.readahead = flags.GetSize("readahead", dopt.readahead);
      disk_index =
          rpq::disk::DiskIndex::Build(base.value(), graph, *model, dopt);
      owned_service =
          std::make_unique<rpq::serve::DiskIndexService>(*disk_index);
    } else {
      auto made = MakeMemoryBackend(flags, base.value(), graph, *model, rmode);
      if (!made.ok()) return Fail(made.status().ToString());
      MemoryBackend backend = std::move(made.value());
      mem_index = std::move(backend.index);
      linkcode = std::move(backend.linkcode);
      owned_service = std::make_unique<rpq::serve::MemoryIndexService>(
          *mem_index, backend.mode);
    }
    service = owned_service.get();
  }

  // Recall sanity line (serial replay, k results against exact GT).
  auto gt = rpq::ComputeGroundTruth(base.value(), queries.value(), opt.k);
  rpq::serve::ServingEngine serial(*service, {1});
  auto outcomes = serial.SearchAll(queries.value(), opt.k, opt.beam_width);
  std::vector<std::vector<rpq::Neighbor>> results(outcomes.size());
  for (size_t q = 0; q < outcomes.size(); ++q) {
    results[q] = std::move(outcomes[q].results);
  }
  std::printf("recall@%zu = %.4f (beam %zu, %zu shards)\n", opt.k,
              rpq::eval::MeanRecallAtK(results, gt, opt.k), opt.beam_width,
              std::max<size_t>(shards, 1));
  if (use_disk && !outcomes.empty()) {
    // Simulated device time per query from the serial replay — the honest
    // "disk I/O" number (wall-clock QPS above excludes simulated latency).
    // run_serve.sh parses this line into BENCH_serve.json so bench-diff
    // gates the async-submission speedup per PR.
    double io_sum = 0;
    for (const auto& o : outcomes) io_sum += o.simulated_io_seconds;
    std::printf("disk-io us/query = %.1f (serial replay)\n",
                io_sum * 1e6 / static_cast<double>(outcomes.size()));
  }

  auto closed = rpq::serve::RunClosedLoop(*service, queries.value(), opt);
  char label[64];
  std::snprintf(label, sizeof(label), "closed-loop x%zu", opt.threads);
  rpq::serve::PrintReport(label, closed);

  if (rate > 0) {
    rpq::serve::EngineOptions eopt;
    eopt.threads = opt.threads;
    eopt.shed_watermark = flags.GetSize("shed", 0);
    eopt.brownout_watermark = flags.GetSize("brownout", 0);
    rpq::serve::ServingEngine engine(*service, eopt);
    rpq::serve::LoadgenOptions oopt = opt;
    oopt.arrival_qps = rate;
    auto open = rpq::serve::RunOpenLoop(engine, queries.value(), oopt);
    std::snprintf(label, sizeof(label), "open-loop @%.0f/s%s", rate,
                  opt.batch > 1 ? " (batched)" : "");
    rpq::serve::PrintReport(label, open);
  }

  // Shard-wait distribution (fan-out start -> shard result available): the
  // histogram hedge_delay_us / shard_timeout_us should be tuned against.
  if (rpq::obs::MetricsEnabled() && shards > 1) {
    const rpq::obs::Snapshot snap = rpq::obs::TakeSnapshot();
    if (const rpq::obs::HistogramSnapshot* waits =
            snap.FindHistogram("serve.shard_wait_ns");
        waits != nullptr && waits->data.count > 0) {
      std::printf("shard-wait ms: p50 %7.3f  p95 %7.3f  p99 %7.3f  "
                  "max %7.3f  (%llu shard results)\n",
                  waits->data.Percentile(0.50) / 1e6,
                  waits->data.Percentile(0.95) / 1e6,
                  waits->data.Percentile(0.99) / 1e6,
                  static_cast<double>(waits->data.max) / 1e6,
                  static_cast<unsigned long long>(waits->data.count));
    }
  }
  {
    const rpq::obs::FlightRecorder& recorder = rpq::obs::GlobalFlightRecorder();
    if (recorder.enabled()) {
      std::printf("flight recorder: %llu observed, %llu admitted "
                  "(capacity %zu)\n",
                  static_cast<unsigned long long>(recorder.observed()),
                  static_cast<unsigned long long>(recorder.recorded()),
                  recorder.options().capacity);
    }
  }

  if (metrics_json != nullptr) {
    const std::string json = rpq::obs::DumpJson();
    std::FILE* fp = std::fopen(metrics_json, "w");
    if (fp == nullptr) {
      return Fail(std::string("cannot write ") + metrics_json);
    }
    std::fwrite(json.data(), 1, json.size(), fp);
    std::fputc('\n', fp);
    if (std::fclose(fp) != 0) {
      return Fail(std::string(metrics_json) + ": close failed");
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_json);
  }
  // --slow-json: the end-of-run flight-recorder dump, for offline checks
  // (CI verifies every deadline_exceeded query of a seeded run landed here).
  if (const char* slow_json = flags.Get("slow-json")) {
    const std::string json = rpq::obs::GlobalFlightRecorder().DumpJson();
    std::FILE* fp = std::fopen(slow_json, "w");
    if (fp == nullptr) return Fail(std::string("cannot write ") + slow_json);
    std::fwrite(json.data(), 1, json.size(), fp);
    std::fputc('\n', fp);
    if (std::fclose(fp) != 0) {
      return Fail(std::string(slow_json) + ": close failed");
    }
    std::printf("wrote flight-recorder dump to %s\n", slow_json);
  }
  return 0;
}

// Validates a --metrics-json snapshot: parses it with the in-repo JSON
// reader, checks the stable schema (version, counters / histograms objects,
// the summary fields on every histogram), and fails if any --require'd
// metric name — counter or histogram — is absent. The CI smoke leg runs
// this against the serve-bench artifact so a schema regression or a metric
// that silently stopped being emitted fails the build, not a dashboard.
bool ReadFileToString(const char* path, std::string* out) {
  std::FILE* fp = std::fopen(path, "rb");
  if (fp == nullptr) return false;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) out->append(buf, n);
  std::fclose(fp);
  return true;
}

bool ParseJsonFile(const char* path, rpq::obs::JsonValue* root,
                   std::string* err) {
  std::string text;
  if (!ReadFileToString(path, &text)) {
    *err = std::string("cannot read ") + path;
    return false;
  }
  if (!rpq::obs::ParseJson(text, root, err)) {
    *err = std::string(path) + ": " + *err;
    return false;
  }
  return true;
}

int CmdMetricsValidate(const Flags& flags) {
  const char* path = flags.Get("json");
  if (path == nullptr) return Fail("--json is required");
  rpq::obs::JsonValue root;
  std::string err;
  if (!ParseJsonFile(path, &root, &err)) return Fail(err);
  if (!root.is_object()) return Fail("top-level value is not an object");
  const rpq::obs::JsonValue* version = root.Find("version");
  if (version == nullptr || !version->is_number()) {
    return Fail("missing numeric \"version\"");
  }
  const rpq::obs::JsonValue* counters = root.Find("counters");
  const rpq::obs::JsonValue* histograms = root.Find("histograms");
  if (counters == nullptr || !counters->is_object()) {
    return Fail("missing \"counters\" object");
  }
  if (histograms == nullptr || !histograms->is_object()) {
    return Fail("missing \"histograms\" object");
  }
  for (const auto& [name, h] : histograms->object) {
    for (const char* field :
         {"count", "sum", "max", "mean", "p50", "p95", "p99", "buckets"}) {
      if (h.Find(field) == nullptr) {
        return Fail("histogram \"" + name + "\" missing \"" + field + "\"");
      }
    }
    if (!h.Find("buckets")->is_array()) {
      return Fail("histogram \"" + name + "\": \"buckets\" is not an array");
    }
  }
  size_t missing = 0;
  for (const std::string& key : ParseStringList(flags.Get("require"))) {
    if (counters->Find(key) == nullptr && histograms->Find(key) == nullptr) {
      std::fprintf(stderr, "missing required metric: %s\n", key.c_str());
      ++missing;
    }
  }
  if (missing > 0) {
    return Fail(std::to_string(missing) + " required metric(s) missing");
  }
  std::printf("%s: valid metrics snapshot (%zu counters, %zu histograms)\n",
              path, counters->object.size(), histograms->object.size());

  // --diff <older.json>: reconstruct both snapshots (buckets included) and
  // print the windowed view between them — what moved, and at what rate over
  // --interval-secs — the offline twin of the live /health computation.
  if (const char* older_path = flags.Get("diff")) {
    rpq::obs::JsonValue older_root;
    if (!ParseJsonFile(older_path, &older_root, &err)) return Fail(err);
    rpq::obs::Snapshot older, newer;
    if (!rpq::obs::SnapshotFromJson(older_root, &older, &err)) {
      return Fail(std::string(older_path) + ": " + err);
    }
    if (!rpq::obs::SnapshotFromJson(root, &newer, &err)) {
      return Fail(std::string(path) + ": " + err);
    }
    const double interval =
        std::strtod(flags.Get("interval-secs", "1"), nullptr);
    const rpq::obs::WindowedView view =
        rpq::obs::DiffSnapshots(older, newer, interval);
    std::printf("diff %s -> %s over %.3gs:\n", older_path, path, interval);
    for (const auto& c : view.counters) {
      if (c.delta == 0) continue;
      std::printf("  %-28s +%-10llu %10.1f/s\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.delta), c.rate);
    }
    for (const auto& h : view.histograms) {
      if (h.interval.count == 0) continue;
      std::printf("  %-28s %8llu samples  p50 %11.0f  p95 %11.0f  "
                  "p99 %11.0f\n",
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.interval.count),
                  h.interval.Percentile(0.50), h.interval.Percentile(0.95),
                  h.interval.Percentile(0.99));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// bench-diff: the per-PR regression gate. Compares two bench summary JSONs
// (BENCH_serve.json, BENCH_ivf.json) leaf by leaf and exits non-zero when a
// gated metric moved past tolerance. Direction is inferred from the metric
// name: recall/QPS/throughput must not DROP more than --max-recall-regress
// percent; latency/percentile/cost keys must not RISE more than
// --max-regress percent; any other numeric leaf is informational. Gated
// metrics present in the baseline but missing from the candidate also fail
// (a silently vanished metric must not read as "no regression").

enum class BenchDirection { kHigherBetter, kLowerBetter, kInfo };

BenchDirection ClassifyBenchKey(const std::string& key) {
  std::string k;
  k.reserve(key.size());
  for (char c : key) k += static_cast<char>(std::tolower(c));
  auto has = [&k](const char* s) { return k.find(s) != std::string::npos; };
  if (has("recall") || has("qps") || has("items_per_second") ||
      has("throughput")) {
    return BenchDirection::kHigherBetter;
  }
  if (has("p50") || has("p95") || has("p99") || has("latency") ||
      has("us_per") || has("ms_per") || has("ns_per") || has("mean_ms") ||
      has("wall") || has("cost") || has("seconds")) {
    return BenchDirection::kLowerBetter;
  }
  return BenchDirection::kInfo;
}

struct BenchDiffReport {
  double max_regress = 10.0;         // % tolerance for lower-better keys
  double max_recall_regress = 10.0;  // % tolerance for higher-better keys
  size_t compared = 0;
  size_t gated = 0;
  std::vector<std::string> failures;

  void CompareLeaf(const std::string& path, const std::string& key,
                   double old_v, double new_v) {
    ++compared;
    const BenchDirection dir = ClassifyBenchKey(key);
    if (dir == BenchDirection::kInfo) return;
    ++gated;
    if (old_v <= 0) return;  // no meaningful relative change from zero
    char line[256];
    if (dir == BenchDirection::kLowerBetter) {
      const double pct = (new_v - old_v) / old_v * 100.0;
      if (pct > max_regress) {
        std::snprintf(line, sizeof(line),
                      "%s: %.6g -> %.6g (+%.1f%%, tolerance +%.1f%%)",
                      path.c_str(), old_v, new_v, pct, max_regress);
        failures.emplace_back(line);
      }
    } else {
      const double pct = (old_v - new_v) / old_v * 100.0;
      if (pct > max_recall_regress) {
        std::snprintf(line, sizeof(line),
                      "%s: %.6g -> %.6g (-%.1f%%, tolerance -%.1f%%)",
                      path.c_str(), old_v, new_v, pct, max_recall_regress);
        failures.emplace_back(line);
      }
    }
  }

  void Missing(const std::string& path) {
    failures.push_back(path + ": gated metric missing from candidate");
  }
};

// The sweep-table convention (BENCH_ivf.json): an object holding
// "columns": ["nprobe", "recall@10", ...] plus sibling arrays of rows,
// each row one array of numbers. Rows are matched between baseline and
// candidate by their first cell (the sweep axis), and each remaining cell
// is gated under its column name.
void DiffBenchTable(const std::string& path,
                    const std::vector<rpq::obs::JsonValue>& columns,
                    const rpq::obs::JsonValue& old_rows,
                    const rpq::obs::JsonValue& new_rows,
                    BenchDiffReport* report) {
  auto row_ok = [](const rpq::obs::JsonValue& r) {
    return r.is_array() && !r.array.empty() && r.array[0].is_number();
  };
  for (const rpq::obs::JsonValue& old_row : old_rows.array) {
    if (!row_ok(old_row)) continue;
    const double axis = old_row.array[0].number;
    const rpq::obs::JsonValue* new_row = nullptr;
    for (const rpq::obs::JsonValue& candidate : new_rows.array) {
      if (row_ok(candidate) && candidate.array[0].number == axis) {
        new_row = &candidate;
        break;
      }
    }
    char axis_buf[48];
    std::snprintf(axis_buf, sizeof(axis_buf), "%.6g", axis);
    const std::string row_path = path + "[" + axis_buf + "]";
    if (new_row == nullptr) {
      report->Missing(row_path);
      continue;
    }
    const size_t cells =
        std::min(old_row.array.size(), new_row->array.size());
    for (size_t j = 1; j < cells; ++j) {
      if (!old_row.array[j].is_number() || !new_row->array[j].is_number()) {
        continue;
      }
      const std::string col =
          j < columns.size() &&
                  columns[j].type == rpq::obs::JsonValue::Type::kString
              ? columns[j].string
              : "col" + std::to_string(j);
      report->CompareLeaf(row_path + "." + col, col, old_row.array[j].number,
                          new_row->array[j].number);
    }
  }
}

void DiffBenchValues(const std::string& path, const std::string& key,
                     const rpq::obs::JsonValue& old_v,
                     const rpq::obs::JsonValue& new_v,
                     BenchDiffReport* report) {
  if (old_v.is_number() && new_v.is_number()) {
    report->CompareLeaf(path, key, old_v.number, new_v.number);
    return;
  }
  if (old_v.is_object() && new_v.is_object()) {
    const rpq::obs::JsonValue* old_cols = old_v.Find("columns");
    const bool is_table = old_cols != nullptr && old_cols->is_array();
    for (const auto& [name, old_child] : old_v.object) {
      const std::string child_path =
          path.empty() ? name : path + "." + name;
      const rpq::obs::JsonValue* new_child = new_v.Find(name);
      if (new_child == nullptr) {
        // A vanished subtree fails only if it held gated leaves; probe it
        // against itself to find out without duplicating the walk.
        BenchDiffReport probe;
        DiffBenchValues(child_path, name, old_child, old_child, &probe);
        if (probe.gated > 0) report->Missing(child_path);
        continue;
      }
      if (is_table && name != "columns" && old_child.is_array() &&
          new_child->is_array()) {
        DiffBenchTable(child_path, old_cols->array, old_child, *new_child,
                       report);
      } else {
        DiffBenchValues(child_path, name, old_child, *new_child, report);
      }
    }
    return;
  }
  if (old_v.is_array() && new_v.is_array()) {
    const size_t n = std::min(old_v.array.size(), new_v.array.size());
    for (size_t i = 0; i < n; ++i) {
      DiffBenchValues(path + "[" + std::to_string(i) + "]", key,
                      old_v.array[i], new_v.array[i], report);
    }
  }
  // Strings, bools, and type mismatches (dates, descriptions) are not gated.
}

int CmdBenchDiff(const std::vector<std::string>& positional,
                 const Flags& flags) {
  if (positional.size() != 2) {
    return Fail("usage: rpq_tool bench-diff <baseline.json> <candidate.json> "
                "[--max-regress pct] [--max-recall-regress pct]");
  }
  rpq::obs::JsonValue old_root, new_root;
  std::string err;
  if (!ParseJsonFile(positional[0].c_str(), &old_root, &err)) return Fail(err);
  if (!ParseJsonFile(positional[1].c_str(), &new_root, &err)) return Fail(err);

  BenchDiffReport report;
  report.max_regress = std::strtod(flags.Get("max-regress", "10"), nullptr);
  report.max_recall_regress = std::strtod(
      flags.Get("max-recall-regress",
                flags.Get("max-regress", "10")),
      nullptr);
  DiffBenchValues("", "", old_root, new_root, &report);

  std::printf("bench-diff %s -> %s: %zu numeric leaves compared, %zu gated "
              "(tolerance +%.1f%% / recall -%.1f%%)\n",
              positional[0].c_str(), positional[1].c_str(), report.compared,
              report.gated, report.max_regress, report.max_recall_regress);
  if (report.failures.empty()) {
    std::printf("no regressions past tolerance\n");
    return 0;
  }
  for (const std::string& f : report.failures) {
    std::fprintf(stderr, "REGRESSION %s\n", f.c_str());
  }
  return Fail(std::to_string(report.failures.size()) +
              " regression(s) past tolerance");
}

int Usage() {
  std::fprintf(stderr,
               "usage: rpq_tool <gen|stats|build-graph|train|encode|build-ivf|"
               "search|serve-bench|bench-diff|metrics-validate> [--flags]\n"
               "see the header of tools/rpq_tool.cc for the full pipeline\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Flags flags = ParseFlags(argc, argv, 2);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "build-graph") return CmdBuildGraph(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "encode") return CmdEncode(flags);
  if (cmd == "build-ivf") return CmdBuildIvf(flags);
  if (cmd == "search") return CmdSearch(flags);
  if (cmd == "serve-bench") return CmdServeBench(flags);
  if (cmd == "bench-diff") {
    // bench-diff takes its two files positionally; skip over flag values so
    // "--max-regress 10" does not read as a file.
    std::vector<std::string> positional;
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) ++i;
        continue;
      }
      positional.emplace_back(argv[i]);
    }
    return CmdBenchDiff(positional, flags);
  }
  if (cmd == "metrics-validate") return CmdMetricsValidate(flags);
  return Usage();
}
