// Unified refinement pipeline tests: the shared candidate buffer and
// refiner stages reproduce the three backend epilogues they replaced —
// bit-for-bit where the seed behavior was pinned (float-ADC FastScan
// rerank, IVF candidate selection) — and the new exact stage matches a
// brute-force reference on the probed candidates exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/topk.h"
#include "core/memory_index.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/beam_search.h"
#include "graph/vamana.h"
#include "ivf/ivf_index.h"
#include "quant/adc.h"
#include "quant/fastscan.h"
#include "quant/pq.h"
#include "refine/refine.h"
#include "serve/ivf_service.h"
#include "serve/search_service.h"
#include "simd/simd.h"

namespace rpq {
namespace {

// ------------------------------------------------ the shared width rule ----

TEST(EffectiveRerankWidthTest, AutoRuleAndClamps) {
  // 0 = auto: max(2k, 32).
  EXPECT_EQ(refine::EffectiveRerankWidth(0, 10), 32u);   // 2k=20 < 32
  EXPECT_EQ(refine::EffectiveRerankWidth(0, 16), 32u);   // boundary
  EXPECT_EQ(refine::EffectiveRerankWidth(0, 17), 34u);   // 2k wins
  EXPECT_EQ(refine::EffectiveRerankWidth(0, 100), 200u);
  // Explicit requests are honored but never below k.
  EXPECT_EQ(refine::EffectiveRerankWidth(64, 10), 64u);
  EXPECT_EQ(refine::EffectiveRerankWidth(4, 10), 10u);
  EXPECT_EQ(refine::EffectiveRerankWidth(1, 1), 1u);
}

TEST(RerankModeTest, NamesRoundTrip) {
  for (refine::RerankMode mode :
       {refine::RerankMode::kAuto, refine::RerankMode::kAdc,
        refine::RerankMode::kExact, refine::RerankMode::kLinkCode}) {
    refine::RerankMode parsed;
    ASSERT_TRUE(refine::ParseRerankMode(refine::RerankModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  refine::RerankMode parsed;
  EXPECT_FALSE(refine::ParseRerankMode("sdc", &parsed));
  EXPECT_FALSE(refine::ParseRerankMode(nullptr, &parsed));
}

// ---------------------------------------------------- candidate buffer ----

TEST(CandidateBufferTest, KeepsBestByEstimateThenId) {
  refine::CandidateBuffer buf(3);
  EXPECT_EQ(buf.Threshold(), std::numeric_limits<float>::infinity());
  EXPECT_TRUE(buf.Push(5.f, 50));
  EXPECT_TRUE(buf.Push(1.f, 10));
  EXPECT_TRUE(buf.Push(3.f, 30));
  EXPECT_EQ(buf.Threshold(), 5.f);
  EXPECT_FALSE(buf.Push(9.f, 90));    // worse than the worst kept
  EXPECT_TRUE(buf.Push(2.f, 20));     // evicts (5, 50)
  // Equal estimate, higher id than the kept root: rejected (strict order).
  EXPECT_FALSE(buf.Push(3.f, 31));
  // Equal estimate, lower id: kept.
  EXPECT_TRUE(buf.Push(3.f, 29));
  auto sorted = buf.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 10u);
  EXPECT_EQ(sorted[1].id, 20u);
  EXPECT_EQ(sorted[2].id, 29u);
}

TEST(CandidateBufferTest, TagsSurviveSelection) {
  refine::CandidateBuffer buf(2);
  buf.Push(2.f, 2, (uint64_t{7} << 32) | 3);
  buf.Push(1.f, 1, (uint64_t{5} << 32) | 9);
  buf.Push(3.f, 3, 42);  // worse than both kept: rejected
  auto sorted = buf.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].tag >> 32, 5u);
  EXPECT_EQ(sorted[0].tag & 0xffffffffu, 9u);
  EXPECT_EQ(sorted[1].tag >> 32, 7u);
}

// The buffer must make exactly TopK's keep/evict decisions — that is what
// keeps the disk backend's reranked results bit-pinned after its TopK
// became a CandidateBuffer.
TEST(CandidateBufferTest, MatchesTopKOnRandomStream) {
  Rng rng(123);
  for (size_t limit : {size_t(1), size_t(7), size_t(64)}) {
    TopK top(limit);
    refine::CandidateBuffer buf(limit);
    for (size_t i = 0; i < 500; ++i) {
      // Coarse quantization of the estimate makes ties frequent.
      float est = static_cast<float>(static_cast<int>(8 * rng.Uniform()));
      uint32_t id = static_cast<uint32_t>(rng.Uniform() * 100);
      EXPECT_EQ(buf.Push(est, id), top.Push(est, id)) << "i=" << i;
      EXPECT_EQ(buf.Threshold(), top.Threshold());
    }
    auto want = top.Take();
    auto got = buf.TakeSortedNeighbors(limit);
    EXPECT_EQ(got, want);
  }
}

// ------------------------------------------------------- refiner stages ----

struct RefineFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::vector<std::vector<Neighbor>> gt;
};

RefineFixture MakeRefineFixture(size_t n = 1800, size_t nq = 16) {
  RefineFixture f;
  synthetic::MakeBaseAndQueries("sift", n, nq, /*seed=*/31, &f.base,
                                &f.queries);
  graph::VamanaOptions vopt;
  vopt.degree = 20;
  vopt.build_beam = 40;
  f.graph = graph::BuildVamana(f.base, vopt);
  quant::PqOptions popt;
  popt.m = 16;
  popt.nbits = 4;
  popt.kmeans_iters = 4;
  f.pq = quant::PqQuantizer::Train(f.base, popt);
  f.gt = ComputeGroundTruth(f.base, f.queries, 10);
  return f;
}

// The flat and resolver-based AdcRefiner constructions must agree exactly:
// the resolver path packs codes contiguously and runs the stride kernel,
// which is pinned bit-identical to the gather kernel and to per-code
// Distance().
TEST(AdcRefinerTest, FlatAndResolvedLayoutsAgreeBitForBit) {
  RefineFixture f = MakeRefineFixture(400, 4);
  auto codes = f.pq->EncodeDataset(f.base);
  const size_t m = f.pq->code_size();
  quant::AdcTable lut(*f.pq, f.queries[0]);

  std::vector<refine::Candidate> cands;
  for (uint32_t id = 0; id < 100; ++id) cands.push_back({0.f, id * 3, 0});
  refine::AdcRefiner flat(lut, codes.data(), m);
  refine::AdcRefiner resolved(lut, m,
                              [&codes, m](const refine::Candidate& c) {
                                return codes.data() + size_t{c.id} * m;
                              });
  std::vector<float> a(cands.size()), b(cands.size());
  flat.Refine(cands.data(), cands.size(), a.data());
  resolved.Refine(cands.data(), cands.size(), b.data());
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "candidate " << i;
    EXPECT_EQ(a[i], lut.Distance(codes.data() + size_t{cands[i].id} * m));
  }
}

// Replicates the seed FastScan epilogue (beam search on the u8 table, then
// float-ADC rerank of ALL survivors via the gather kernel, sort, truncate)
// and pins the refactored kAdc path to it bit-for-bit.
TEST(MemoryIndexRefineTest, AdcModeMatchesSeedEpilogueExactly) {
  RefineFixture f = MakeRefineFixture();
  auto index = core::MemoryIndex::Build(f.base, f.graph, *f.pq);
  const size_t m = f.pq->code_size();
  const size_t k = 10, beam = 48;

  auto blocks = quant::PackedNeighborBlocks::Build(
      f.graph, index->codes().data(), m);
  for (size_t q = 0; q < f.queries.size(); ++q) {
    quant::AdcTable table(*f.pq, f.queries[q]);
    quant::FastScanTable ftable(table);
    quant::FastScanNeighborOracle oracle(ftable, index->codes().data(), m,
                                         blocks);
    const size_t beam_width = std::max(beam, k);
    const size_t rerank =
        std::min(beam_width, refine::EffectiveRerankWidth(0, k));
    graph::SearchStats stats;
    auto cands = graph::BeamSearch(f.graph, f.graph.entry_point(), oracle,
                                   {beam_width, rerank},
                                   graph::TlsVisitedTable(f.base.size()),
                                   &stats);
    std::vector<uint32_t> ids(cands.size());
    std::vector<float> dists(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) ids[i] = cands[i].id;
    table.DistanceBatchGather(index->codes().data(), m, ids.data(), ids.size(),
                              dists.data());
    std::vector<Neighbor> want;
    for (size_t i = 0; i < cands.size(); ++i) want.push_back({dists[i], ids[i]});
    std::sort(want.begin(), want.end());
    if (want.size() > k) want.resize(k);

    auto got = index->Search(f.queries[q], k, {beam, k},
                             core::DistanceMode::kFastScan);
    EXPECT_EQ(got.results, want) << "q=" << q;
  }
}

// The exact stage must equal a brute-force re-score of the same probed
// candidates — same traversal, exact squared L2, (distance, id) sort.
TEST(MemoryIndexRefineTest, ExactModeMatchesBruteForceOnProbedCandidates) {
  RefineFixture f = MakeRefineFixture();
  core::MemoryIndexOptions mopt;
  mopt.store_vectors = true;
  auto index = core::MemoryIndex::Build(f.base, f.graph, *f.pq, mopt);
  ASSERT_TRUE(index->stores_vectors());
  const size_t m = f.pq->code_size();
  const size_t k = 10, beam = 48;

  auto blocks = quant::PackedNeighborBlocks::Build(
      f.graph, index->codes().data(), m);
  for (size_t q = 0; q < f.queries.size(); ++q) {
    quant::AdcTable table(*f.pq, f.queries[q]);
    quant::FastScanTable ftable(table);
    quant::FastScanNeighborOracle oracle(ftable, index->codes().data(), m,
                                         blocks);
    const size_t beam_width = std::max(beam, k);
    const size_t rerank =
        std::min(beam_width, refine::EffectiveRerankWidth(0, k));
    graph::SearchStats stats;
    auto cands = graph::BeamSearch(f.graph, f.graph.entry_point(), oracle,
                                   {beam_width, rerank},
                                   graph::TlsVisitedTable(f.base.size()),
                                   &stats);
    std::vector<Neighbor> want;
    for (const Neighbor& c : cands) {
      want.push_back({simd::SquaredL2(f.queries[q], f.base[c.id], f.base.dim()),
                      c.id});
    }
    std::sort(want.begin(), want.end());
    if (want.size() > k) want.resize(k);

    auto got = index->Search(f.queries[q], k, {beam, k},
                             core::DistanceMode::kFastScan,
                             {0, refine::RerankMode::kExact});
    EXPECT_EQ(got.results, want) << "q=" << q;
  }
}

// The acceptance bar: exact rerank never loses to float-ADC rerank at equal
// beam (same candidate sets, strictly better re-scoring).
TEST(MemoryIndexRefineTest, ExactRerankRecallAtLeastAdc) {
  RefineFixture f = MakeRefineFixture(2500, 24);
  core::MemoryIndexOptions mopt;
  mopt.store_vectors = true;
  auto index = core::MemoryIndex::Build(f.base, f.graph, *f.pq, mopt);
  auto recall = [&](refine::RerankMode mode) {
    std::vector<std::vector<Neighbor>> results(f.queries.size());
    for (size_t q = 0; q < f.queries.size(); ++q) {
      results[q] = index
                       ->Search(f.queries[q], 10, {64, 10},
                                core::DistanceMode::kFastScan, {64, mode})
                       .results;
    }
    return eval::MeanRecallAtK(results, f.gt, 10);
  };
  double adc = recall(refine::RerankMode::kAdc);
  double exact = recall(refine::RerankMode::kExact);
  EXPECT_GE(exact, adc) << "exact rerank must not lose to ADC at equal beam";
  // kAuto on a store_vectors index is the exact stage.
  EXPECT_EQ(recall(refine::RerankMode::kAuto), exact);
}

// store_vectors must not perturb the kAdc path: same codes, same traversal,
// same rerank — the retained rows are dead weight until kExact asks.
TEST(MemoryIndexRefineTest, AdcModeUnchangedByStoredVectors) {
  RefineFixture f = MakeRefineFixture(900, 8);
  auto plain = core::MemoryIndex::Build(f.base, f.graph, *f.pq);
  core::MemoryIndexOptions mopt;
  mopt.store_vectors = true;
  auto stored = core::MemoryIndex::Build(f.base, f.graph, *f.pq, mopt);
  for (size_t q = 0; q < f.queries.size(); ++q) {
    auto a = plain->Search(f.queries[q], 10, {48, 10},
                           core::DistanceMode::kFastScan);
    auto b = stored->Search(f.queries[q], 10, {48, 10},
                            core::DistanceMode::kFastScan,
                            {0, refine::RerankMode::kAdc});
    EXPECT_EQ(a.results, b.results) << "q=" << q;
  }
  EXPECT_GT(stored->MemoryBytes(),
            plain->MemoryBytes() + f.base.size() * f.base.dim() * 4 - 1);
}

// SearchBatch forwards the rerank request to every query in the tile.
TEST(MemoryIndexRefineTest, SearchBatchHonorsRerankSpec) {
  RefineFixture f = MakeRefineFixture(900, 12);
  core::MemoryIndexOptions mopt;
  mopt.store_vectors = true;
  auto index = core::MemoryIndex::Build(f.base, f.graph, *f.pq, mopt);
  std::vector<const float*> ptrs;
  for (size_t q = 0; q < f.queries.size(); ++q) ptrs.push_back(f.queries[q]);
  refine::RerankSpec spec{48, refine::RerankMode::kExact};
  auto batch = index->SearchBatch(ptrs.data(), ptrs.size(), 10, {48, 10},
                                  core::DistanceMode::kFastScan, spec);
  for (size_t q = 0; q < f.queries.size(); ++q) {
    auto single = index->Search(f.queries[q], 10, {48, 10},
                                core::DistanceMode::kFastScan, spec);
    EXPECT_EQ(batch[q].results, single.results) << "q=" << q;
  }
}

// ----------------------------------------------------------- IVF modes ----

TEST(IvfRefineTest, ModeKnobSelectsStage) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 1200, 10, /*seed=*/41, &base, &queries);
  quant::PqOptions popt;
  popt.m = 16;
  popt.nbits = 4;
  popt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(base, popt);
  ivf::IvfOptions iopt;
  iopt.nlist = 11;
  iopt.store_vectors = true;
  auto stored = ivf::IvfIndex::Build(base, *pq, iopt);
  iopt.store_vectors = false;
  auto plain = ivf::IvfIndex::Build(base, *pq, iopt);

  for (size_t q = 0; q < queries.size(); ++q) {
    ivf::IvfSearchOptions sopt;
    sopt.nprobe = 5;
    // kAuto == kExact on a store_vectors index...
    sopt.rerank_mode = refine::RerankMode::kAuto;
    auto auto_stored = stored->Search(queries[q], 10, sopt);
    sopt.rerank_mode = refine::RerankMode::kExact;
    auto exact_stored = stored->Search(queries[q], 10, sopt);
    EXPECT_EQ(auto_stored.results, exact_stored.results) << "q=" << q;
    // ...and forcing kAdc on it reproduces the no-vectors index exactly
    // (identical quantizer + k-means seeds give identical routing/codes).
    sopt.rerank_mode = refine::RerankMode::kAdc;
    auto adc_stored = stored->Search(queries[q], 10, sopt);
    sopt.rerank_mode = refine::RerankMode::kAuto;
    auto auto_plain = plain->Search(queries[q], 10, sopt);
    EXPECT_EQ(adc_stored.results, auto_plain.results) << "q=" << q;
  }
}

// A QuerySpec carrying a stage the backend cannot serve (exact without
// retained rows, linkcode without a model) must degrade to the backend
// default at the service boundary — remote callers' knobs must never abort
// the serving process.
TEST(ServiceRerankTest, UnsupportedModeDegradesToDefault) {
  RefineFixture f = MakeRefineFixture(700, 4);
  auto index = core::MemoryIndex::Build(f.base, f.graph, *f.pq);
  serve::MemoryIndexService service(*index, core::DistanceMode::kFastScan);
  serve::QuerySpec q;
  q.query = f.queries[0];
  q.k = 10;
  q.beam_width = 48;
  auto reference = service.Search(q);
  for (refine::RerankMode mode :
       {refine::RerankMode::kExact, refine::RerankMode::kLinkCode}) {
    q.rerank_mode = mode;
    EXPECT_EQ(service.Search(q).results, reference.results)
        << refine::RerankModeName(mode);
  }

  ivf::IvfOptions iopt;
  iopt.nlist = 5;
  auto ivf_index = ivf::IvfIndex::Build(f.base, *f.pq, iopt);
  serve::IvfService ivf_service(*ivf_index);
  q.beam_width = 3;  // nprobe for IVF
  q.rerank_mode = refine::RerankMode::kAuto;
  auto ivf_reference = ivf_service.Search(q);
  for (refine::RerankMode mode :
       {refine::RerankMode::kExact, refine::RerankMode::kLinkCode}) {
    q.rerank_mode = mode;
    EXPECT_EQ(ivf_service.Search(q).results, ivf_reference.results)
        << refine::RerankModeName(mode);
  }
}

TEST(IvfRefineTest, BatchForwardsMode) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 900, 8, /*seed=*/43, &base, &queries);
  quant::PqOptions popt;
  popt.m = 8;
  popt.nbits = 4;
  popt.kmeans_iters = 3;
  auto pq = quant::PqQuantizer::Train(base, popt);
  ivf::IvfOptions iopt;
  iopt.nlist = 7;
  iopt.store_vectors = true;
  auto index = ivf::IvfIndex::Build(base, *pq, iopt);
  std::vector<const float*> ptrs;
  for (size_t q = 0; q < queries.size(); ++q) ptrs.push_back(queries[q]);
  for (refine::RerankMode mode :
       {refine::RerankMode::kAdc, refine::RerankMode::kExact}) {
    ivf::IvfSearchOptions sopt;
    sopt.nprobe = 4;
    sopt.rerank_mode = mode;
    auto batch = index->SearchBatch(ptrs.data(), ptrs.size(), 10, sopt);
    for (size_t q = 0; q < queries.size(); ++q) {
      auto single = index->Search(queries[q], 10, sopt);
      EXPECT_EQ(batch[q].results, single.results)
          << "mode=" << refine::RerankModeName(mode) << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace rpq
