#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "core/memory_index.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/vamana.h"
#include "quant/adc.h"
#include "quant/catalyst.h"
#include "quant/linkcode.h"
#include "refine/refine.h"

namespace rpq::quant {
namespace {

Dataset SmallData(size_t n = 400, uint64_t seed = 7) {
  synthetic::GmmOptions opt;
  opt.dim = 32;
  opt.num_clusters = 6;
  opt.intrinsic_dim = 6;
  opt.anisotropy = 1.5f;
  return synthetic::MakeGmm(n, opt, seed);
}

CatalystOptions SmallCatalyst() {
  CatalystOptions opt;
  opt.d_out = 16;
  opt.hidden = 32;
  opt.epochs = 2;
  opt.batch_size = 16;
  opt.pq.m = 4;
  opt.pq.k = 16;
  return opt;
}

TEST(CatalystTest, TransformIsUnitNorm) {
  Dataset d = SmallData();
  auto cat = CatalystQuantizer::Train(d, SmallCatalyst());
  std::vector<float> out(cat->decoded_dim());
  for (size_t i = 0; i < 20; ++i) {
    cat->Transform(d[i], out.data());
    EXPECT_NEAR(SquaredNorm(out.data(), out.size()), 1.0f, 1e-3f);
  }
}

TEST(CatalystTest, DimsAndModelSize) {
  Dataset d = SmallData();
  auto opt = SmallCatalyst();
  auto cat = CatalystQuantizer::Train(d, opt);
  EXPECT_EQ(cat->dim(), d.dim());
  EXPECT_EQ(cat->decoded_dim(), opt.d_out);
  EXPECT_EQ(cat->num_chunks(), opt.pq.m);
  EXPECT_GT(cat->ModelSizeBytes(), 0u);
  EXPECT_GT(cat->training_seconds(), 0.0);
}

TEST(CatalystTest, AdcConsistentWithTransformedDistance) {
  Dataset d = SmallData();
  auto cat = CatalystQuantizer::Train(d, SmallCatalyst());
  std::vector<uint8_t> code(cat->code_size());
  std::vector<float> rec(cat->decoded_dim());
  AdcTable table(*cat, d[0]);
  for (size_t i = 50; i < 60; ++i) {
    cat->Encode(d[i], code.data());
    cat->Decode(code.data(), rec.data());
    std::vector<float> tq(cat->decoded_dim());
    cat->Transform(d[0], tq.data());
    float direct = SquaredL2(tq.data(), rec.data(), rec.size());
    EXPECT_NEAR(table.Distance(code.data()), direct, 1e-3f * (1 + direct));
  }
}

TEST(CatalystTest, PreservesNeighborRankingBetterThanRandom) {
  // The learned map should keep near neighbors nearer than far points.
  Dataset d = SmallData(500, 9);
  auto cat = CatalystQuantizer::Train(d, SmallCatalyst());
  std::vector<float> t0(cat->decoded_dim()), tn(cat->decoded_dim()),
      tf(cat->decoded_dim());
  size_t correct = 0, total = 0;
  for (size_t i = 0; i < 40; ++i) {
    // nearest of a 20-point sample vs a far point.
    size_t near_id = 0;
    float best = std::numeric_limits<float>::max();
    for (size_t j = 100; j < 120; ++j) {
      float dd = SquaredL2(d[i], d[j], d.dim());
      if (dd < best) {
        best = dd;
        near_id = j;
      }
    }
    size_t far_id = 0;
    float worst = 0;
    for (size_t j = 100; j < 120; ++j) {
      float dd = SquaredL2(d[i], d[j], d.dim());
      if (dd > worst) {
        worst = dd;
        far_id = j;
      }
    }
    cat->Transform(d[i], t0.data());
    cat->Transform(d[near_id], tn.data());
    cat->Transform(d[far_id], tf.data());
    if (SquaredL2(t0.data(), tn.data(), t0.size()) <
        SquaredL2(t0.data(), tf.data(), t0.size())) {
      ++correct;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST(LinkCodeTest, RefinementReducesReconstructionError) {
  Dataset d = SmallData(500, 11);
  graph::VamanaOptions vopt;
  vopt.degree = 12;
  vopt.build_beam = 24;
  auto g = graph::BuildVamana(d, vopt);
  LinkCodeOptions opt;
  opt.pq.m = 4;
  opt.pq.k = 16;
  opt.num_links = 6;
  auto lc = LinkCodeIndex::Build(d, g, opt);

  std::vector<uint8_t> code(lc->pq().code_size());
  std::vector<float> plain(d.dim()), refined(d.dim());
  double err_plain = 0, err_refined = 0;
  for (uint32_t v = 0; v < 200; ++v) {
    lc->pq().Encode(d[v], code.data());
    lc->pq().Decode(code.data(), plain.data());
    lc->RefinedDecode(v, refined.data());
    err_plain += SquaredL2(d[v], plain.data(), d.dim());
    err_refined += SquaredL2(d[v], refined.data(), d.dim());
  }
  // The least-squares fit guarantees improvement in expectation.
  EXPECT_LT(err_refined, err_plain * 1.001);
}

// LinkCode as a live refinement stage: on the clustered synthetic fixture,
// reranking FastScan candidates with the neighbor-regression reconstructions
// lands between the float-ADC stage (same codes, no correction) and the
// exact stage (raw rows) — the fidelity/memory slot Link&Code exists to
// fill. The bounds get a small slack because the three stages re-rank the
// same candidates with differently-biased estimators.
TEST(LinkCodeTest, RefinedRerankRecallBetweenAdcAndExact) {
  Dataset base = SmallData(2000, 7);
  Dataset queries = SmallData(64, 99);
  auto gt = ComputeGroundTruth(base, queries, 10);

  graph::VamanaOptions vopt;
  vopt.degree = 16;
  vopt.build_beam = 32;
  auto g = graph::BuildVamana(base, vopt);

  PqOptions popt;
  popt.m = 4;  // coarse codes: room for the refinement to matter
  popt.nbits = 4;
  auto pq = PqQuantizer::Train(base, popt);

  LinkCodeOptions lopt;
  lopt.pq = popt;  // same codebook shape as the navigation quantizer
  lopt.num_links = 8;
  auto lc = LinkCodeIndex::Build(base, g, lopt);

  core::MemoryIndexOptions mopt;
  mopt.store_vectors = true;
  auto index = core::MemoryIndex::Build(base, g, *pq, mopt);
  index->set_linkcode(lc.get());

  auto recall = [&](refine::RerankMode mode) {
    std::vector<std::vector<Neighbor>> results(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = index
                       ->Search(queries[q], 10, {64, 10},
                                core::DistanceMode::kFastScan, {0, mode})
                       .results;
    }
    return eval::MeanRecallAtK(results, gt, 10);
  };
  double adc = recall(refine::RerankMode::kAdc);
  double linkcode = recall(refine::RerankMode::kLinkCode);
  double exact = recall(refine::RerankMode::kExact);
  EXPECT_GE(linkcode, adc - 0.01)
      << "linkcode rerank must not lose to ADC: adc=" << adc
      << " linkcode=" << linkcode;
  EXPECT_GE(exact, linkcode - 0.01)
      << "exact rerank must not lose to linkcode: linkcode=" << linkcode
      << " exact=" << exact;
  EXPECT_GT(exact, adc) << "fixture must separate the stages to be meaningful";
}

TEST(LinkCodeTest, BetaIsFiniteAndBounded) {
  Dataset d = SmallData(300, 13);
  graph::VamanaOptions vopt;
  vopt.degree = 8;
  vopt.build_beam = 16;
  auto g = graph::BuildVamana(d, vopt);
  LinkCodeOptions opt;
  opt.pq.m = 4;
  opt.pq.k = 16;
  opt.num_links = 4;
  auto lc = LinkCodeIndex::Build(d, g, opt);
  ASSERT_EQ(lc->beta().size(), 4u);
  for (float b : lc->beta()) {
    EXPECT_TRUE(std::isfinite(b));
    EXPECT_LT(std::fabs(b), 10.0f);
  }
}

}  // namespace
}  // namespace rpq::quant
