// Pins the beam-search hot-loop rewrite to the straightforward reference
// formulation (sorted vector + parallel expanded flags + full rescan per
// step): identical results, stats, and observer traces, for both scalar
// oracles and the batched ADC oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/distance.h"
#include "data/synthetic.h"
#include "graph/beam_search.h"
#include "graph/vamana.h"
#include "quant/adc.h"
#include "quant/pq.h"

namespace rpq::graph {
namespace {

// The pre-rewrite implementation, kept verbatim as the behavioral reference.
template <typename DistFn>
std::vector<Neighbor> ReferenceBeamSearch(const ProximityGraph& g,
                                          uint32_t entry, DistFn&& dist,
                                          const BeamSearchOptions& opt,
                                          VisitedTable* visited,
                                          SearchStats* stats = nullptr,
                                          const StepObserver& observer = nullptr) {
  const size_t beam_width = std::max(opt.beam_width, opt.k);
  visited->NextEpoch();

  std::vector<Neighbor> beam;
  beam.reserve(beam_width + 1);
  std::vector<bool> expanded_flag;

  float d0 = dist(entry);
  if (stats != nullptr) ++stats->dist_comps;
  beam.push_back({d0, entry});
  expanded_flag.push_back(false);
  visited->MarkVisited(entry);

  auto insert_candidate = [&](float d, uint32_t id) {
    if (beam.size() >= beam_width && !(Neighbor{d, id} < beam.back())) return;
    Neighbor cand{d, id};
    auto it = std::lower_bound(beam.begin(), beam.end(), cand);
    size_t pos = static_cast<size_t>(it - beam.begin());
    beam.insert(it, cand);
    expanded_flag.insert(expanded_flag.begin() + pos, false);
    if (beam.size() > beam_width) {
      beam.pop_back();
      expanded_flag.pop_back();
    }
  };

  for (;;) {
    size_t next = beam.size();
    for (size_t i = 0; i < beam.size(); ++i) {
      if (!expanded_flag[i]) {
        next = i;
        break;
      }
    }
    if (next == beam.size()) break;

    if (observer) observer(beam);
    expanded_flag[next] = true;
    uint32_t v = beam[next].id;
    if (stats != nullptr) ++stats->hops;

    for (uint32_t u : g.Neighbors(v)) {
      if (visited->Visited(u)) continue;
      visited->MarkVisited(u);
      float d = dist(u);
      if (stats != nullptr) ++stats->dist_comps;
      insert_candidate(d, u);
    }
  }

  if (beam.size() > opt.k) beam.resize(opt.k);
  return beam;
}

struct Fixture {
  Dataset base;
  Dataset queries;
  ProximityGraph g;

  explicit Fixture(uint64_t seed = 17) {
    synthetic::MakeBaseAndQueries("sift", 1500, 25, seed, &base, &queries);
    VamanaOptions opt;
    opt.degree = 16;
    opt.build_beam = 32;
    g = BuildVamana(base, opt);
  }
};

void ExpectSameResults(const std::vector<Neighbor>& got,
                       const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "rank " << i;
  }
}

TEST(BeamRegressionTest, ExactOracleIdenticalToReference) {
  Fixture f;
  VisitedTable v_new(f.base.size()), v_ref(f.base.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    for (size_t beam : {4u, 16u, 64u}) {
      auto oracle = [&](uint32_t v) {
        return SquaredL2(f.queries[q], f.base[v], f.base.dim());
      };
      SearchStats s_new, s_ref;
      auto got = BeamSearch(f.g, f.g.entry_point(), oracle, {beam, 10}, &v_new,
                            &s_new);
      auto want = ReferenceBeamSearch(f.g, f.g.entry_point(), oracle,
                                      {beam, 10}, &v_ref, &s_ref);
      ExpectSameResults(got, want);
      EXPECT_EQ(s_new.hops, s_ref.hops);
      EXPECT_EQ(s_new.dist_comps, s_ref.dist_comps);
    }
  }
}

TEST(BeamRegressionTest, BatchedAdcOracleIdenticalToScalarReference) {
  Fixture f(23);
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  popt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(f.base, popt);
  auto codes = pq->EncodeDataset(f.base);
  const size_t cs = pq->code_size();

  VisitedTable v_new(f.base.size()), v_ref(f.base.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    quant::AdcTable table(*pq, f.queries[q]);
    // New path: batched oracle. Reference path: per-vertex scalar lookups on
    // the same table. The batched kernels promise bit-identical sums.
    quant::AdcBatchOracle batch_oracle{table, codes.data(), cs};
    auto scalar_oracle = [&](uint32_t v) {
      return table.Distance(codes.data() + v * cs);
    };
    SearchStats s_new, s_ref;
    auto got = BeamSearch(f.g, f.g.entry_point(), batch_oracle, {32, 10},
                          &v_new, &s_new);
    auto want = ReferenceBeamSearch(f.g, f.g.entry_point(), scalar_oracle,
                                    {32, 10}, &v_ref, &s_ref);
    ExpectSameResults(got, want);
    EXPECT_EQ(s_new.hops, s_ref.hops);
    EXPECT_EQ(s_new.dist_comps, s_ref.dist_comps);
  }
}

TEST(BeamRegressionTest, ObserverTraceIdenticalToReference) {
  Fixture f(31);
  VisitedTable v_new(f.base.size()), v_ref(f.base.size());
  auto oracle = [&](uint32_t v) {
    return SquaredL2(f.queries[0], f.base[v], f.base.dim());
  };
  std::vector<std::vector<Neighbor>> trace_new, trace_ref;
  BeamSearch(f.g, f.g.entry_point(), oracle, {16, 5}, &v_new, nullptr,
             [&](const std::vector<Neighbor>& b) { trace_new.push_back(b); });
  ReferenceBeamSearch(f.g, f.g.entry_point(), oracle, {16, 5}, &v_ref, nullptr,
                      [&](const std::vector<Neighbor>& b) {
                        trace_ref.push_back(b);
                      });
  ASSERT_EQ(trace_new.size(), trace_ref.size());
  for (size_t s = 0; s < trace_new.size(); ++s) {
    ASSERT_EQ(trace_new[s].size(), trace_ref[s].size()) << "step " << s;
    for (size_t i = 0; i < trace_new[s].size(); ++i) {
      EXPECT_EQ(trace_new[s][i].id, trace_ref[s][i].id);
      EXPECT_EQ(trace_new[s][i].dist, trace_ref[s][i].dist);
    }
  }
}

TEST(BeamRegressionTest, DegenerateGraphsMatchReference) {
  // Chain graph (forces full traversal) and single-vertex graph.
  Dataset d(50, 8);
  for (size_t i = 0; i < 50; ++i) d[i][0] = static_cast<float>(i);
  ProximityGraph chain(50);
  for (uint32_t v = 0; v + 1 < 50; ++v) chain.Neighbors(v).push_back(v + 1);
  chain.set_entry_point(0);
  float target = 37.f;
  auto oracle = [&](uint32_t v) { return (d[v][0] - target) * (d[v][0] - target); };
  VisitedTable v_new(50), v_ref(50);
  SearchStats s_new, s_ref;
  auto got = BeamSearch(chain, 0, oracle, {200, 3}, &v_new, &s_new);
  auto want = ReferenceBeamSearch(chain, 0, oracle, {200, 3}, &v_ref, &s_ref);
  ExpectSameResults(got, want);
  EXPECT_EQ(s_new.hops, s_ref.hops);
  EXPECT_EQ(s_new.dist_comps, s_ref.dist_comps);

  ProximityGraph lone(1);
  lone.set_entry_point(0);
  VisitedTable v1(1), v2(1);
  auto got1 = BeamSearch(lone, 0, oracle, {8, 5}, &v1);
  auto want1 = ReferenceBeamSearch(lone, 0, oracle, {8, 5}, &v2);
  ExpectSameResults(got1, want1);
}

}  // namespace
}  // namespace rpq::graph
