#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matexp.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace rpq::linalg {
namespace {

Matrix RandomMatrix(size_t r, size_t c, float scale, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) m.At(i, j) = rng.Gaussian(0, scale);
  }
  return m;
}

TEST(MatrixTest, IdentityAndMul) {
  Matrix i = Matrix::Identity(4);
  Matrix a = RandomMatrix(4, 4, 1.0f, 1);
  EXPECT_LT(MaxAbsDiff(MatMul(i, a), a), 1e-6f);
  EXPECT_LT(MaxAbsDiff(MatMul(a, i), a), 1e-6f);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = RandomMatrix(3, 5, 1.0f, 2);
  EXPECT_LT(MaxAbsDiff(a.Transposed().Transposed(), a), 1e-7f);
}

TEST(MatrixTest, MatMulTransVariantsAgree) {
  Matrix a = RandomMatrix(4, 6, 1.0f, 3);
  Matrix b = RandomMatrix(4, 5, 1.0f, 4);
  // A^T B computed two ways.
  EXPECT_LT(MaxAbsDiff(MatMulTransA(a, b), MatMul(a.Transposed(), b)), 1e-4f);
  Matrix c = RandomMatrix(5, 6, 1.0f, 5);
  EXPECT_LT(MaxAbsDiff(MatMulTransB(a, c), MatMul(a, c.Transposed())), 1e-4f);
}

TEST(MatrixTest, MatVecAgreesWithMatMul) {
  Matrix a = RandomMatrix(5, 7, 1.0f, 6);
  Matrix x = RandomMatrix(7, 1, 1.0f, 7);
  std::vector<float> y(5);
  MatVec(a, x.data(), y.data());
  Matrix expect = MatMul(a, x);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(y[i], expect.At(i, 0), 1e-4f);
}

TEST(MatrixTest, SkewPartIsSkew) {
  Matrix p = RandomMatrix(6, 6, 1.0f, 8);
  Matrix a = SkewPart(p);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(a.At(i, j), -a.At(j, i), 1e-6f);
    }
  }
}

TEST(MatExpTest, ExpOfZeroIsIdentity) {
  Matrix z(5, 5);
  EXPECT_LT(MaxAbsDiff(MatrixExp(z), Matrix::Identity(5)), 1e-6f);
}

TEST(MatExpTest, ExpDiagonal) {
  Matrix d(3, 3);
  d.At(0, 0) = 1.0f;
  d.At(1, 1) = -0.5f;
  d.At(2, 2) = 2.0f;
  Matrix e = MatrixExp(d);
  EXPECT_NEAR(e.At(0, 0), std::exp(1.0f), 1e-4f);
  EXPECT_NEAR(e.At(1, 1), std::exp(-0.5f), 1e-5f);
  EXPECT_NEAR(e.At(2, 2), std::exp(2.0f), 1e-3f);
  EXPECT_NEAR(e.At(0, 1), 0.0f, 1e-6f);
}

TEST(MatExpTest, InverseProperty) {
  Matrix a = RandomMatrix(6, 6, 0.4f, 9);
  Matrix na = a;
  na *= -1.0f;
  Matrix prod = MatMul(MatrixExp(a), MatrixExp(na));
  EXPECT_LT(MaxAbsDiff(prod, Matrix::Identity(6)), 1e-3f);
}

// The load-bearing property for RPQ: exp of a skew matrix is orthonormal.
class SkewExpOrthonormalTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SkewExpOrthonormalTest, RotationIsOrthonormal) {
  size_t n = GetParam();
  Matrix a = SkewPart(RandomMatrix(n, n, 0.5f, 10 + n));
  Matrix r = MatrixExp(a);
  Matrix rtr = MatMulTransA(r, r);
  EXPECT_LT(MaxAbsDiff(rtr, Matrix::Identity(n)), 2e-3f) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Dims, SkewExpOrthonormalTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(MatExpTest, RotationPreservesNorm) {
  size_t n = 16;
  Matrix r = MatrixExp(SkewPart(RandomMatrix(n, n, 0.7f, 21)));
  Rng rng(22);
  std::vector<float> x(n), y(n);
  for (auto& v : x) v = rng.Gaussian();
  MatVec(r, x.data(), y.data());
  float nx = 0, ny = 0;
  for (size_t i = 0; i < n; ++i) {
    nx += x[i] * x[i];
    ny += y[i] * y[i];
  }
  EXPECT_NEAR(nx, ny, 1e-2f * nx);
}

TEST(MatExpTest, FrechetMatchesFiniteDifference) {
  size_t n = 5;
  Matrix a = RandomMatrix(n, n, 0.5f, 30);
  Matrix e = RandomMatrix(n, n, 1.0f, 31);
  Matrix frechet = MatrixExpFrechet(a, e);
  const float h = 1e-3f;
  Matrix ap = a, am = a;
  for (size_t i = 0; i < n * n; ++i) {
    ap.data()[i] += h * e.data()[i];
    am.data()[i] -= h * e.data()[i];
  }
  Matrix fd = MatrixExp(ap);
  fd -= MatrixExp(am);
  fd *= 1.0f / (2.0f * h);
  EXPECT_LT(MaxAbsDiff(frechet, fd), 5e-3f);
}

TEST(MatExpTest, GradMatchesFiniteDifference) {
  // d/dA <G, exp(A)> checked element-wise by central differences.
  size_t n = 4;
  Matrix a = RandomMatrix(n, n, 0.4f, 32);
  Matrix g = RandomMatrix(n, n, 1.0f, 33);
  Matrix grad = MatrixExpGrad(a, g);
  const float h = 1e-3f;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      Matrix ap = a, am = a;
      ap.At(i, j) += h;
      am.At(i, j) -= h;
      Matrix ep = MatrixExp(ap), em = MatrixExp(am);
      double fp = 0, fm = 0;
      for (size_t t = 0; t < n * n; ++t) {
        fp += static_cast<double>(g.data()[t]) * ep.data()[t];
        fm += static_cast<double>(g.data()[t]) * em.data()[t];
      }
      double fd = (fp - fm) / (2.0 * h);
      EXPECT_NEAR(grad.At(i, j), fd, 5e-3 * (1.0 + std::fabs(fd)))
          << "entry " << i << "," << j;
    }
  }
}

TEST(SvdTest, ReconstructsMatrix) {
  size_t n = 8;
  Matrix a = RandomMatrix(n, n, 1.0f, 40);
  SvdResult svd = JacobiSvd(a);
  // A ?= U diag(sigma) V^T
  Matrix us = svd.u;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) us.At(i, j) *= svd.sigma[j];
  }
  Matrix rec = MatMulTransB(us, svd.v);
  EXPECT_LT(MaxAbsDiff(rec, a), 1e-2f);
}

TEST(SvdTest, SingularValuesDescendingNonNegative) {
  Matrix a = RandomMatrix(6, 6, 2.0f, 41);
  SvdResult svd = JacobiSvd(a);
  for (size_t i = 0; i + 1 < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i], svd.sigma[i + 1]);
    EXPECT_GE(svd.sigma[i + 1], 0.0f);
  }
}

TEST(SvdTest, FactorsOrthonormal) {
  Matrix a = RandomMatrix(7, 7, 1.0f, 42);
  SvdResult svd = JacobiSvd(a);
  EXPECT_LT(MaxAbsDiff(MatMulTransA(svd.u, svd.u), Matrix::Identity(7)), 2e-3f);
  EXPECT_LT(MaxAbsDiff(MatMulTransA(svd.v, svd.v), Matrix::Identity(7)), 2e-3f);
}

TEST(ProcrustesTest, RecoversKnownRotation) {
  size_t n = 10;
  Matrix r_true = MatrixExp(SkewPart(RandomMatrix(n, n, 0.5f, 50)));
  Matrix x = RandomMatrix(n, 64, 1.0f, 51);  // columns are samples
  Matrix y = MatMul(r_true, x);
  Matrix r = ProcrustesRotation(x, y);
  EXPECT_LT(MaxAbsDiff(r, r_true), 1e-2f);
}

TEST(ProcrustesTest, ResultIsOrthonormal) {
  Matrix x = RandomMatrix(6, 40, 1.0f, 52);
  Matrix y = RandomMatrix(6, 40, 1.0f, 53);
  Matrix r = ProcrustesRotation(x, y);
  EXPECT_LT(MaxAbsDiff(MatMulTransA(r, r), Matrix::Identity(6)), 2e-3f);
}

}  // namespace
}  // namespace rpq::linalg
