// End-to-end integration tests: the full offline pipeline (generate → graph
// → train → serialize → reload → search) across quantizer types and both
// deployment scenarios, plus SDC-vs-ADC semantics.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/distance.h"
#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/io_vecs.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "eval/recall.h"
#include "graph/hnsw.h"
#include "graph/vamana.h"
#include "quant/adc.h"
#include "quant/catalyst.h"
#include "quant/opq.h"
#include "quant/serialize.h"

namespace rpq {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synthetic::MakeBaseAndQueries("sift", 1200, 20, 91, &base_, &queries_);
    graph::VamanaOptions vopt;
    vopt.degree = 16;
    vopt.build_beam = 32;
    graph_ = graph::BuildVamana(base_, vopt);
    gt_ = ComputeGroundTruth(base_, queries_, 10);
  }
  Dataset base_, queries_;
  graph::ProximityGraph graph_;
  std::vector<std::vector<Neighbor>> gt_;
};

TEST_F(PipelineTest, FullOfflinePipelineThroughFiles) {
  std::string dir = ::testing::TempDir();
  // Stage 1: persist dataset + graph.
  ASSERT_TRUE(io::WriteFvecs(dir + "/base.fvecs", base_).ok());
  ASSERT_TRUE(graph_.Save(dir + "/graph.bin").ok());

  // Stage 2: reload, train RPQ, persist the model.
  auto base2 = io::ReadFvecs(dir + "/base.fvecs");
  ASSERT_TRUE(base2.ok());
  auto graph2 = graph::ProximityGraph::Load(dir + "/graph.bin");
  ASSERT_TRUE(graph2.ok());
  core::RpqTrainOptions topt;
  topt.m = 8;
  topt.k = 32;
  topt.epochs = 1;
  topt.triplets_per_epoch = 128;
  topt.routing_queries_per_epoch = 8;
  auto trained = core::TrainRpq(base2.value(), graph2.value(), topt);
  ASSERT_TRUE(quant::SaveQuantizer(*trained.quantizer,
                                   dir + "/model.rpqq").ok());

  // Stage 3: a "searcher" process loads everything and serves queries.
  auto model = quant::LoadQuantizer(dir + "/model.rpqq");
  ASSERT_TRUE(model.ok());
  auto index =
      core::MemoryIndex::Build(base2.value(), graph2.value(), *model.value());
  std::vector<std::vector<Neighbor>> results(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    results[q] = index->Search(queries_[q], 10, {64, 10}).results;
  }
  EXPECT_GT(eval::MeanRecallAtK(results, gt_, 10), 0.3);

  for (const char* f : {"/base.fvecs", "/graph.bin", "/model.rpqq"}) {
    std::remove((dir + f).c_str());
  }
}

TEST_F(PipelineTest, HybridBeatsInMemoryRecallAtEqualBeam) {
  // The hybrid index reranks with exact vectors, so at any beam width its
  // recall must dominate the codes-only in-memory search.
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  auto mem = core::MemoryIndex::Build(base_, graph_, *pq);
  auto disk = disk::DiskIndex::Build(base_, graph_, *pq);
  for (size_t beam : {16u, 48u}) {
    std::vector<std::vector<Neighbor>> mem_res(queries_.size()),
        disk_res(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q) {
      mem_res[q] = mem->Search(queries_[q], 10, {beam, 10}).results;
      disk_res[q] = disk->Search(queries_[q], 10, {beam, 10}).results;
    }
    double r_mem = eval::MeanRecallAtK(mem_res, gt_, 10);
    double r_disk = eval::MeanRecallAtK(disk_res, gt_, 10);
    EXPECT_GE(r_disk, r_mem - 1e-9) << "beam " << beam;
  }
}

TEST_F(PipelineTest, SdcMatchesSymmetricDistanceSemantics) {
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  auto codes = pq->EncodeDataset(base_);
  quant::SdcTable table(*pq, queries_[0]);
  std::vector<uint8_t> qcode(pq->code_size());
  pq->Encode(queries_[0], qcode.data());
  for (size_t i = 0; i < 20; ++i) {
    float via_table = table.Distance(codes.data() + i * pq->code_size());
    float via_decode = quant::SymmetricDistance(
        *pq, qcode.data(), codes.data() + i * pq->code_size());
    EXPECT_NEAR(via_table, via_decode, 1e-2f * (1 + via_decode)) << i;
  }
}

TEST_F(PipelineTest, AdcBeatsSdcRecall) {
  // Jegou et al.: ADC has strictly lower distance error; recall should not
  // be worse (the reason the paper adopts ADC).
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  auto index = core::MemoryIndex::Build(base_, graph_, *pq);
  std::vector<std::vector<Neighbor>> adc(queries_.size()), sdc(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    adc[q] = index->Search(queries_[q], 10, {96, 10},
                           core::DistanceMode::kAdc).results;
    sdc[q] = index->Search(queries_[q], 10, {96, 10},
                           core::DistanceMode::kSdc).results;
  }
  EXPECT_GE(eval::MeanRecallAtK(adc, gt_, 10),
            eval::MeanRecallAtK(sdc, gt_, 10) - 0.02);
}

TEST_F(PipelineTest, AllQuantizersServeTheSameIndexInterface) {
  // Polymorphic check across the whole quantizer family.
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  quant::OpqOptions oopt;
  oopt.pq = popt;
  oopt.outer_iters = 2;
  auto opq = quant::TrainOpq(base_, oopt);
  quant::CatalystOptions copt;
  copt.d_out = 16;
  copt.hidden = 32;
  copt.epochs = 1;
  copt.pq.m = 8;
  copt.pq.k = 16;
  auto cat = quant::CatalystQuantizer::Train(base_, copt);

  for (const quant::VectorQuantizer* q :
       {static_cast<const quant::VectorQuantizer*>(pq.get()),
        static_cast<const quant::VectorQuantizer*>(opq.get()),
        static_cast<const quant::VectorQuantizer*>(cat.get())}) {
    auto index = core::MemoryIndex::Build(base_, graph_, *q);
    auto out = index->Search(queries_[0], 10, {32, 10});
    EXPECT_EQ(out.results.size(), 10u);
    EXPECT_GT(out.stats.hops, 0u);
  }
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  // Same seed, same machine => bitwise-identical training result.
  core::RpqTrainOptions topt;
  topt.m = 8;
  topt.k = 32;
  topt.epochs = 1;
  topt.triplets_per_epoch = 64;
  topt.routing_queries_per_epoch = 4;
  topt.seed = 1234;
  auto a = core::TrainRpq(base_, graph_, topt);
  auto b = core::TrainRpq(base_, graph_, topt);
  std::vector<uint8_t> ca(a.quantizer->code_size()), cb(b.quantizer->code_size());
  for (size_t i = 0; i < 50; ++i) {
    a.quantizer->Encode(base_[i], ca.data());
    b.quantizer->Encode(base_[i], cb.data());
    EXPECT_EQ(ca, cb) << "vector " << i;
  }
}

}  // namespace
}  // namespace rpq
