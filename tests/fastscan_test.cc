// FastScan subsystem tests: the packed 4-bit layout round-trips, the u8
// LUT's distance error stays inside its analytic bound, scalar and SIMD
// shuffle kernels agree bit-for-bit end-to-end, and the full
// MemoryIndex/DiskIndex FastScan paths keep recall next to the float-ADC
// reference they replace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/memory_index.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "eval/recall.h"
#include "graph/vamana.h"
#include "quant/adc.h"
#include "quant/fastscan.h"
#include "quant/pq.h"
#include "quant/split.h"
#include "simd/simd.h"

namespace rpq {
namespace {

std::vector<uint8_t> RandomCodes(size_t n, size_t m, size_t k, Rng* rng) {
  std::vector<uint8_t> codes(n * m);
  for (auto& c : codes) c = static_cast<uint8_t>(rng->UniformIndex(k));
  return codes;
}

// ------------------------------------------------------------- layout ----

TEST(PackedCodesTest, LayoutRoundTrips) {
  Rng rng(1);
  for (size_t m : {size_t(1), size_t(2), size_t(7), size_t(16), size_t(33)}) {
    for (size_t n : {size_t(1), size_t(31), size_t(32), size_t(33),
                     size_t(100)}) {
      auto codes = RandomCodes(n, m, 16, &rng);
      auto packed = quant::PackedCodes::Pack(codes.data(), n, m);
      EXPECT_EQ(packed.m2 % 2, 0u);
      EXPECT_EQ(packed.data.size(), packed.num_blocks() * packed.block_bytes());
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j) {
          ASSERT_EQ(packed.At(i, j), codes[i * m + j])
              << "m=" << m << " n=" << n << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

// Streaming appends must land codes exactly where a bulk Pack would: the
// tail block's zero padding becomes the new slot, block growth included
// (IVF list inserts ride this).
TEST(PackedCodesTest, AppendMatchesBulkPack) {
  Rng rng(2);
  for (size_t m : {size_t(1), size_t(7), size_t(16)}) {
    for (size_t seed_n : {size_t(0), size_t(33)}) {
      const size_t total = seed_n + 40;  // crosses at least one block boundary
      auto codes = RandomCodes(total, m, 16, &rng);
      auto grown = quant::PackedCodes::Pack(codes.data(), seed_n, m);
      for (size_t i = seed_n; i < total; ++i) {
        grown.Append(codes.data() + i * m);
      }
      auto bulk = quant::PackedCodes::Pack(codes.data(), total, m);
      EXPECT_EQ(grown.num_codes, bulk.num_codes);
      ASSERT_EQ(grown.data, bulk.data) << "m=" << m << " seed_n=" << seed_n;
    }
  }
}

// The tail block is zero-padded; a scan over n codes in ceil(n/32) blocks
// must leave the padding sums untouched by any meaning — only the first n
// outputs are defined, and they must equal the per-code estimates for every
// n mod 32, including a lone code and an exactly-full block.
TEST(FastScanTableTest, TailBlockLengthsScanExactly) {
  Rng rng(4);
  const size_t m = 8;
  std::vector<float> table(m * 16);
  for (auto& x : table) x = std::abs(rng.Gaussian()) * 2.f;
  struct RawLut : quant::DistanceLut {
    RawLut(size_t m, size_t k, const std::vector<float>& vals)
        : DistanceLut(m, k) {
      table_ = vals;
    }
  };
  RawLut lut(m, 16, table);
  quant::FastScanTable fast(lut);
  for (size_t n : {size_t(1), size_t(31), size_t(32), size_t(33), size_t(64),
                   size_t(65), size_t(95)}) {
    auto codes = RandomCodes(n, m, 16, &rng);
    auto packed = quant::PackedCodes::Pack(codes.data(), n, m);
    std::vector<float> got(n);
    fast.Scan(packed, got.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], fast.Distance(codes.data() + i * m))
          << "n=" << n << " i=" << i;
    }
  }
}

// 4-bit training mode: the default K (k = 0 = auto) resolves from nbits, so
// codes are layout-ready without spelling K out at every call site.
TEST(PqOptionsTest, DefaultKResolvesFromNbits) {
  Dataset train = synthetic::MakeSiftLike(400, 3);
  quant::PqOptions opt;
  opt.m = 16;
  opt.nbits = 4;
  opt.kmeans_iters = 2;
  EXPECT_EQ(opt.effective_k(), 16u);
  auto pq = quant::PqQuantizer::Train(train, opt);
  EXPECT_EQ(pq->num_centroids(), 16u);
  std::vector<uint8_t> code(pq->code_size());
  pq->Encode(train[0], code.data());
  for (uint8_t c : code) EXPECT_LT(c, 16);
  opt.nbits = 8;
  EXPECT_EQ(opt.effective_k(), 256u);
}

// An explicit K that does not fit the code width must fail loudly at
// training/build time, not silently train a different model than asked for
// (the old behavior capped K = 256 + nbits = 4 down to 16).
TEST(PqOptionsDeathTest, ExplicitKBeyondCodeWidthFailsLoudly) {
  quant::PqOptions opt;
  opt.nbits = 4;
  opt.k = 256;
  EXPECT_DEATH(opt.effective_k(), "does not fit nbits");
  opt.nbits = 8;
  opt.k = 257;
  EXPECT_DEATH(opt.effective_k(), "does not fit nbits");
}

// -------------------------------------------------------------- table ----

struct TableFixture {
  Dataset base;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::vector<uint8_t> codes;
};

TableFixture MakeTableFixture(size_t n = 500, size_t m = 16) {
  TableFixture f;
  f.base = synthetic::MakeSiftLike(n, 5);
  quant::PqOptions opt;
  opt.m = m;
  opt.nbits = 4;
  opt.kmeans_iters = 3;
  f.pq = quant::PqQuantizer::Train(f.base, opt);
  f.codes = f.pq->EncodeDataset(f.base);
  return f;
}

TEST(FastScanTableTest, ConstructorsAgree) {
  TableFixture f = MakeTableFixture(300);
  quant::AdcTable lut(*f.pq, f.base[1]);
  quant::FastScanTable from_lut(lut);
  quant::FastScanTable from_quantizer(*f.pq, f.base[1]);
  EXPECT_EQ(from_lut.bias(), from_quantizer.bias());
  EXPECT_EQ(from_lut.scale(), from_quantizer.scale());
  for (size_t i = 0; i < from_lut.padded_chunks() * 16; ++i) {
    ASSERT_EQ(from_lut.lut8()[i], from_quantizer.lut8()[i]) << "i=" << i;
  }
}

TEST(FastScanTableTest, ErrorBoundedVsFloatAdc) {
  for (size_t m : {size_t(8), size_t(16), size_t(32)}) {
    TableFixture f = MakeTableFixture(400, m);
    quant::AdcTable lut(*f.pq, f.base[0]);
    quant::FastScanTable fast(lut);
    ASSERT_GT(fast.scale(), 0.f);
    const float bound = fast.ErrorBound() * (1.f + 1e-4f) + 1e-5f;
    for (size_t i = 0; i < f.base.size(); ++i) {
      const uint8_t* code = f.codes.data() + i * f.pq->code_size();
      EXPECT_NEAR(fast.Distance(code), lut.Distance(code), bound)
          << "m=" << m << " i=" << i;
    }
  }
}

// The blocked SIMD scan, the scalar kernel, and the single-code Distance()
// must produce bit-identical estimates (integer sums + one shared affine
// map).
TEST(FastScanTableTest, BlockedScanMatchesSingleCodeBitExactly) {
  TableFixture f = MakeTableFixture(333, 8);  // odd m2 path: m=8 -> even; use n straddling blocks
  quant::AdcTable lut(*f.pq, f.base[2]);
  quant::FastScanTable fast(lut);
  auto packed =
      quant::PackedCodes::Pack(f.codes.data(), f.base.size(), f.pq->code_size());
  std::vector<float> got(f.base.size());
  fast.Scan(packed, got.data());
  for (size_t i = 0; i < f.base.size(); ++i) {
    EXPECT_EQ(got[i], fast.Distance(f.codes.data() + i * f.pq->code_size()))
        << "i=" << i;
  }
}

// Odd chunk count exercises the zero-padded trailing nibble row.
TEST(FastScanTableTest, OddChunkCountPadsCleanly) {
  Rng rng(9);
  const size_t m = 7, n = 70;
  auto codes = RandomCodes(n, m, 16, &rng);
  std::vector<float> table(m * 16);
  for (auto& x : table) x = std::abs(rng.Gaussian()) * 3.f;

  // Build a FastScanTable through a fake DistanceLut-shaped float table by
  // quantizing via the public quantizer-free constructor path: use AdcTable
  // semantics through a hand-rolled check instead — compare the scalar
  // kernel on packed codes against a direct nibble walk of the u8 LUT.
  struct RawLut : quant::DistanceLut {
    RawLut(size_t m, size_t k, const std::vector<float>& vals)
        : DistanceLut(m, k) {
      table_ = vals;
    }
  };
  RawLut lut(m, 16, table);
  quant::FastScanTable fast(lut);
  auto packed = quant::PackedCodes::Pack(codes.data(), n, m);
  std::vector<float> got(n);
  fast.Scan(packed, got.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], fast.Distance(codes.data() + i * m)) << "i=" << i;
  }
}

// ------------------------------------------------------- memory index ----

struct IndexFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<core::MemoryIndex> index;
  std::vector<std::vector<Neighbor>> gt;
};

IndexFixture MakeIndexFixture(size_t n = 3000, size_t nq = 40, size_t m = 32,
                              size_t k_gt = 10) {
  IndexFixture f;
  synthetic::MakeBaseAndQueries("sift", n, nq, /*seed=*/17, &f.base,
                                &f.queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  f.graph = graph::BuildVamana(f.base, vopt);
  quant::PqOptions popt;
  popt.m = m;
  popt.nbits = 4;
  popt.kmeans_iters = 6;
  f.pq = quant::PqQuantizer::Train(f.base, popt);
  f.index = core::MemoryIndex::Build(f.base, f.graph, *f.pq);
  f.gt = ComputeGroundTruth(f.base, f.queries, k_gt);
  return f;
}

double RecallOf(const IndexFixture& f, core::DistanceMode mode,
                size_t beam = 64, size_t k = 10) {
  std::vector<std::vector<Neighbor>> results(f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    results[q] = f.index->Search(f.queries[q], k, {beam, k}, mode).results;
  }
  return eval::MeanRecallAtK(results, f.gt, k);
}

TEST(MemoryIndexFastScanTest, CapabilityFollowsCentroidCount) {
  IndexFixture f = MakeIndexFixture(600, 4);
  EXPECT_TRUE(f.index->fastscan_capable());

  quant::PqOptions popt;
  popt.m = 16;
  popt.k = 32;  // 8-bit regime: no packed blocks
  popt.kmeans_iters = 2;
  auto pq8 = quant::PqQuantizer::Train(f.base, popt);
  auto index8 = core::MemoryIndex::Build(f.base, f.graph, *pq8);
  EXPECT_FALSE(index8->fastscan_capable());
  EXPECT_GT(f.index->MemoryBytes(), f.index->codes().size());
}

// The acceptance bar: FastScan + float-ADC rerank within 0.5pt of the float
// ADC path at equal beam width.
TEST(MemoryIndexFastScanTest, RecallWithinHalfPointOfFloatAdc) {
  IndexFixture f = MakeIndexFixture();
  double adc = RecallOf(f, core::DistanceMode::kAdc);
  double fast = RecallOf(f, core::DistanceMode::kFastScan);
  EXPECT_GE(fast, adc - 0.005)
      << "fastscan recall " << fast << " vs adc " << adc;
}

TEST(MemoryIndexFastScanTest, ResultsSortedAndStatsAccumulated) {
  IndexFixture f = MakeIndexFixture(800, 6);
  auto out = f.index->Search(f.queries[0], 10, {48, 10},
                             core::DistanceMode::kFastScan);
  ASSERT_FALSE(out.results.empty());
  EXPECT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
  EXPECT_GT(out.stats.hops, 0u);
  EXPECT_GT(out.stats.dist_comps, out.results.size());
}

TEST(MemoryIndexFastScanTest, SearchBatchMatchesPerQuerySearch) {
  IndexFixture f = MakeIndexFixture(900, 12);
  std::vector<const float*> ptrs;
  for (size_t q = 0; q < f.queries.size(); ++q) ptrs.push_back(f.queries[q]);
  auto batch = f.index->SearchBatch(ptrs.data(), ptrs.size(), 10, {48, 10},
                                    core::DistanceMode::kFastScan);
  ASSERT_EQ(batch.size(), f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    auto single = f.index->Search(f.queries[q], 10, {48, 10},
                                  core::DistanceMode::kFastScan);
    EXPECT_EQ(batch[q].results, single.results) << "query " << q;
  }
}

TEST(MemoryIndexFastScanTest, RerankKnobWidensCandidateSet) {
  IndexFixture f = MakeIndexFixture(900, 10);
  f.index->set_fastscan_rerank(64);
  EXPECT_EQ(f.index->fastscan_rerank(), 64u);
  double wide = RecallOf(f, core::DistanceMode::kFastScan);
  f.index->set_fastscan_rerank(0);
  double base = RecallOf(f, core::DistanceMode::kFastScan);
  // Reranking is by the float-ADC *estimate*, not exact distance, so a wider
  // candidate list is not strictly monotone in recall — it just must not
  // meaningfully hurt.
  EXPECT_GE(wide, base - 0.02);
}

// --------------------------------------------------------- disk index ----

TEST(DiskIndexFastScanTest, RoutingOnForFourBitAndRecallHolds) {
  IndexFixture f = MakeIndexFixture(1500, 20);
  disk::DiskIndexOptions fast_opt;
  auto fast_index = disk::DiskIndex::Build(f.base, f.graph, *f.pq, fast_opt);
  EXPECT_TRUE(fast_index->fastscan_routing());

  disk::DiskIndexOptions plain_opt;
  plain_opt.fastscan = false;
  auto plain_index = disk::DiskIndex::Build(f.base, f.graph, *f.pq, plain_opt);
  EXPECT_FALSE(plain_index->fastscan_routing());

  std::vector<std::vector<Neighbor>> fast_res(f.queries.size());
  std::vector<std::vector<Neighbor>> plain_res(f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    fast_res[q] = fast_index->Search(f.queries[q], 10, {64, 10}).results;
    plain_res[q] = plain_index->Search(f.queries[q], 10, {64, 10}).results;
    EXPECT_TRUE(std::is_sorted(fast_res[q].begin(), fast_res[q].end()));
  }
  double fast_recall = eval::MeanRecallAtK(fast_res, f.gt, 10);
  double plain_recall = eval::MeanRecallAtK(plain_res, f.gt, 10);
  // Routing estimates differ slightly; exact rerank keeps recall together.
  EXPECT_GE(fast_recall, plain_recall - 0.02)
      << "fastscan " << fast_recall << " vs adc " << plain_recall;
}

// ------------------------------------------------------------- oracle ----

TEST(FastScanOracleTest, NeighborScoresMatchSingleVertexEstimates) {
  IndexFixture f = MakeIndexFixture(700, 4);
  quant::AdcTable lut(*f.pq, f.queries[0]);
  quant::FastScanTable fast(lut);
  auto blocks = quant::PackedNeighborBlocks::Build(f.graph, f.index->codes().data(),
                                                   f.pq->code_size());
  quant::FastScanNeighborOracle oracle(fast, f.index->codes().data(),
                                       f.pq->code_size(), blocks);
  for (uint32_t v : {0u, 5u, 123u}) {
    const auto& nbrs = f.graph.Neighbors(v);
    if (nbrs.empty()) continue;
    std::vector<float> got(nbrs.size());
    oracle.ScoreNeighbors(v, nbrs.data(), nbrs.size(), got.data());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(got[i], oracle(nbrs[i])) << "v=" << v << " i=" << i;
    }
  }
}

// ------------------------------------------------------- split tables ----

// The split regime's whole claim: a K = 256 model whose 8-bit codes are
// scored by the 4-bit shuffle kernels as two nibble planes. The u8 estimate
// (integer sum + affine map + stored cross constant) must stay inside the
// same analytic rounding bound the 4-bit path has — the decomposition
// itself is exact; only the u8 LUT quantization rounds.
TEST(SplitFastScanTableTest, EstimateWithinBoundOfFloatAdc) {
  Dataset train = synthetic::MakeSiftLike(600, 11);
  quant::PqOptions opt;
  opt.m = 8;
  opt.nbits = 8;
  opt.kmeans_iters = 4;
  auto pq = quant::TrainSplitPq(train, opt);
  ASSERT_NE(pq->split_model(), nullptr);
  ASSERT_EQ(pq->num_centroids(), 256u);
  std::vector<uint8_t> code(pq->code_size());
  for (size_t q = 0; q < 4; ++q) {
    quant::SplitFastScanTable table(*pq, train[q]);
    quant::AdcTable lut(*pq, train[q]);  // float ADC over the product book
    for (size_t i = 100; i < 130; ++i) {
      pq->Encode(train[i], code.data());
      const float cross = pq->split_model()->CrossSum(code.data());
      const float est = table.Distance(code.data(), cross);
      const float exact = lut.Distance(code.data());
      // ErrorBound covers the u8 rounding; the small relative slack covers
      // float summation-order differences between the u/v/cross split and
      // the fused per-chunk table.
      ASSERT_NEAR(est, exact, table.ErrorBound() + 1e-3f * (1.f + exact))
          << "q=" << q << " i=" << i;
    }
  }
}

// Blocked split scans must be bit-identical to the per-code Distance(): the
// packed layout of nibble-expanded codes feeds the same integer sums.
TEST(SplitFastScanTableTest, BlockedScanMatchesSingleCodeBitExactly) {
  Dataset train = synthetic::MakeSiftLike(500, 12);
  quant::PqOptions opt;
  opt.m = 8;
  opt.nbits = 8;
  opt.kmeans_iters = 3;
  auto pq = quant::TrainSplitPq(train, opt);
  const size_t m = pq->code_size();
  for (size_t n : {size_t(1), size_t(31), size_t(32), size_t(33), size_t(65)}) {
    std::vector<uint8_t> codes(n * m);
    std::vector<uint8_t> expanded(n * 2 * m);
    for (size_t i = 0; i < n; ++i) {
      pq->Encode(train[i % train.size()], codes.data() + i * m);
      quant::ExpandSplitCode(codes.data() + i * m, m,
                             expanded.data() + i * 2 * m);
    }
    auto packed = quant::PackedCodes::Pack(expanded.data(), n, 2 * m);
    quant::SplitFastScanTable table(*pq, train[0]);
    std::vector<uint16_t> sums(packed.num_blocks() *
                               quant::PackedCodes::kBlockCodes);
    table.ScanBlocks(packed.data.data(), packed.num_blocks(), sums.data());
    for (size_t i = 0; i < n; ++i) {
      const float cross = pq->split_model()->CrossSum(codes.data() + i * m);
      ASSERT_EQ(table.DecodeSum(sums[i]) + cross,
                table.Distance(codes.data() + i * m, cross))
          << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace rpq
