#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/adam.h"
#include "core/losses.h"

namespace rpq::core {
namespace {

TEST(TripletLossTest, ZeroWhenMarginSatisfied) {
  float v[2] = {0, 0}, pos[2] = {0.1f, 0}, neg[2] = {5, 5};
  float l = TripletLoss(v, pos, neg, 2, 1.0f, nullptr, nullptr, nullptr);
  EXPECT_FLOAT_EQ(l, 0.0f);
}

TEST(TripletLossTest, PositiveWhenViolated) {
  float v[2] = {0, 0}, pos[2] = {2, 0}, neg[2] = {1, 0};
  // d_pos = 4, d_neg = 1, margin 0.5 -> loss = 3.5
  float l = TripletLoss(v, pos, neg, 2, 0.5f, nullptr, nullptr, nullptr);
  EXPECT_FLOAT_EQ(l, 3.5f);
}

TEST(TripletLossTest, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  const size_t dim = 6;
  std::vector<float> v(dim), p(dim), n(dim);
  for (size_t i = 0; i < dim; ++i) {
    v[i] = rng.Gaussian();
    p[i] = rng.Gaussian();
    n[i] = rng.Gaussian();
  }
  const float margin = 5.0f;  // large margin keeps the hinge active
  std::vector<float> gv(dim, 0), gp(dim, 0), gn(dim, 0);
  float l0 = TripletLoss(v.data(), p.data(), n.data(), dim, margin, gv.data(),
                         gp.data(), gn.data());
  ASSERT_GT(l0, 0.0f);
  const float h = 1e-3f;
  for (size_t i = 0; i < dim; ++i) {
    auto fd = [&](std::vector<float>& vec, float* g) {
      vec[i] += h;
      float lp = TripletLoss(v.data(), p.data(), n.data(), dim, margin, nullptr,
                             nullptr, nullptr);
      vec[i] -= 2 * h;
      float lm = TripletLoss(v.data(), p.data(), n.data(), dim, margin, nullptr,
                             nullptr, nullptr);
      vec[i] += h;
      EXPECT_NEAR(g[i], (lp - lm) / (2 * h), 2e-2f);
    };
    fd(v, gv.data());
    fd(p, gp.data());
    fd(n, gn.data());
  }
}

TEST(NextHopProbTest, SumToOneAndOrdered) {
  float dist[4] = {1.0f, 2.0f, 0.5f, 4.0f};
  float probs[4];
  NextHopProbabilities(dist, 4, 1.0f, probs);
  float sum = 0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  // Smaller distance -> larger probability (corrected Eq. 6/9 semantics).
  EXPECT_GT(probs[2], probs[0]);
  EXPECT_GT(probs[0], probs[1]);
  EXPECT_GT(probs[1], probs[3]);
}

TEST(NextHopProbTest, TemperatureControlsSharpness) {
  float dist[3] = {1.0f, 2.0f, 3.0f};
  float sharp[3], flat[3];
  NextHopProbabilities(dist, 3, 0.1f, sharp);
  NextHopProbabilities(dist, 3, 10.0f, flat);
  EXPECT_GT(sharp[0], flat[0]);
  EXPECT_LT(sharp[2], flat[2]);
}

TEST(RoutingStepLossTest, LowerWhenTeacherIsNearest) {
  const size_t h = 3, dim = 2;
  float query[2] = {0, 0};
  float cand[6] = {0.1f, 0.0f,   // candidate 0 (nearest)
                   1.0f, 1.0f,   // candidate 1
                   2.0f, 2.0f};  // candidate 2
  float l_good = RoutingStepLoss(cand, h, dim, query, 0, 1.0f, nullptr, nullptr);
  float l_bad = RoutingStepLoss(cand, h, dim, query, 2, 1.0f, nullptr, nullptr);
  EXPECT_LT(l_good, l_bad);
}

TEST(RoutingStepLossTest, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  const size_t h = 4, dim = 3;
  std::vector<float> cand(h * dim), query(dim);
  for (auto& v : cand) v = rng.Gaussian();
  for (auto& v : query) v = rng.Gaussian();
  const size_t teacher = 2;
  const float tau = 0.7f;

  std::vector<float> gc(h * dim, 0), gq(dim, 0);
  RoutingStepLoss(cand.data(), h, dim, query.data(), teacher, tau, gc.data(),
                  gq.data());
  const float step = 1e-3f;
  for (size_t i = 0; i < h * dim; ++i) {
    cand[i] += step;
    float lp = RoutingStepLoss(cand.data(), h, dim, query.data(), teacher, tau,
                               nullptr, nullptr);
    cand[i] -= 2 * step;
    float lm = RoutingStepLoss(cand.data(), h, dim, query.data(), teacher, tau,
                               nullptr, nullptr);
    cand[i] += step;
    EXPECT_NEAR(gc[i], (lp - lm) / (2 * step), 2e-2f) << "cand " << i;
  }
  for (size_t i = 0; i < dim; ++i) {
    query[i] += step;
    float lp = RoutingStepLoss(cand.data(), h, dim, query.data(), teacher, tau,
                               nullptr, nullptr);
    query[i] -= 2 * step;
    float lm = RoutingStepLoss(cand.data(), h, dim, query.data(), teacher, tau,
                               nullptr, nullptr);
    query[i] += step;
    EXPECT_NEAR(gq[i], (lp - lm) / (2 * step), 2e-2f) << "query " << i;
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // minimize ||x - t||^2 for a fixed target t.
  const size_t n = 8;
  Rng rng(7);
  std::vector<float> x(n, 0.0f), t(n), g(n);
  for (auto& v : t) v = rng.Gaussian();
  AdamOptions opt;
  opt.lr = 0.05f;
  Adam adam(n, opt);
  for (int step = 0; step < 800; ++step) {
    for (size_t i = 0; i < n; ++i) g[i] = 2.0f * (x[i] - t[i]);
    adam.Step(x.data(), g.data());
  }
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], t[i], 1e-2f);
}

TEST(OneCycleTest, WarmsUpThenDecays) {
  OneCycleSchedule sched(100, 0.3f, 0.2f);
  EXPECT_LT(sched.Scale(0), sched.Scale(15));
  EXPECT_NEAR(sched.Scale(30), 1.0f, 1e-5f);   // peak at warmup end
  EXPECT_GT(sched.Scale(30), sched.Scale(70));
  EXPECT_NEAR(sched.Scale(100), 0.2f, 1e-5f);  // final = decay rate
}

}  // namespace
}  // namespace rpq::core
