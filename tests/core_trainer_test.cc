#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "core/memory_index.h"
#include "core/trainer.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/vamana.h"
#include "quant/pq.h"

namespace rpq::core {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synthetic::MakeBaseAndQueries("ukbench", 1000, 25, 71, &base_, &queries_);
    graph::VamanaOptions vopt;
    vopt.degree = 12;
    vopt.build_beam = 24;
    graph_ = graph::BuildVamana(base_, vopt);
    gt_ = ComputeGroundTruth(base_, queries_, 10);
  }

  RpqTrainOptions FastOptions() const {
    RpqTrainOptions opt;
    opt.m = 8;
    opt.k = 16;
    opt.epochs = 2;
    opt.batch_size = 8;
    opt.triplets_per_epoch = 128;
    opt.routing_queries_per_epoch = 8;
    opt.routing_beam_width = 8;
    opt.max_steps_per_query = 6;
    return opt;
  }

  double InMemoryRecall(const quant::VectorQuantizer& q, size_t beam) const {
    auto index = MemoryIndex::Build(base_, graph_, q);
    std::vector<std::vector<Neighbor>> results(queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      results[i] = index->Search(queries_[i], 10, {beam, 10}).results;
    }
    return eval::MeanRecallAtK(results, gt_, 10);
  }

  Dataset base_, queries_;
  graph::ProximityGraph graph_;
  std::vector<std::vector<Neighbor>> gt_;
};

TEST_F(TrainerTest, ProducesDeployableQuantizer) {
  auto result = TrainRpq(base_, graph_, FastOptions());
  ASSERT_NE(result.quantizer, nullptr);
  EXPECT_GT(result.training_seconds, 0.0);
  EXPECT_EQ(result.model_size_bytes, result.quantizer->ModelSizeBytes());
  ASSERT_EQ(result.epoch_loss.size(), 2u);
  for (double l : result.epoch_loss) EXPECT_TRUE(std::isfinite(l));
  // Deployed rotation must be orthonormal (distance-preserving encode space).
  ASSERT_TRUE(result.quantizer->has_rotation());
  const auto& r = result.quantizer->rotation();
  EXPECT_LT(linalg::MaxAbsDiff(linalg::MatMulTransA(r, r),
                               linalg::Matrix::Identity(base_.dim())),
            5e-3f);
}

TEST_F(TrainerTest, RpqBeatsOrMatchesPlainPqRecall) {
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 16;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  auto rpq = TrainRpq(base_, graph_, FastOptions());
  double r_pq = InMemoryRecall(*pq, 32);
  double r_rpq = InMemoryRecall(*rpq.quantizer, 32);
  // Same code budget; the learned quantizer should not be materially worse
  // and is usually better. Allow small noise margin.
  EXPECT_GE(r_rpq, r_pq - 0.05);
}

TEST_F(TrainerTest, AblationVariantsRun) {
  auto opt_n = FastOptions();
  opt_n.use_routing = false;
  opt_n.epochs = 1;
  auto res_n = TrainRpq(base_, graph_, opt_n);
  EXPECT_NE(res_n.quantizer, nullptr);

  auto opt_r = FastOptions();
  opt_r.use_neighborhood = false;
  opt_r.epochs = 1;
  auto res_r = TrainRpq(base_, graph_, opt_r);
  EXPECT_NE(res_r.quantizer, nullptr);

  auto opt_l2r = FastOptions();
  opt_l2r.l2r_mode = true;
  opt_l2r.use_neighborhood = false;
  opt_l2r.epochs = 1;
  auto res_l2r = TrainRpq(base_, graph_, opt_l2r);
  EXPECT_NE(res_l2r.quantizer, nullptr);
}

TEST_F(TrainerTest, BlockRotationOptionWorks) {
  auto opt = FastOptions();
  opt.rotation_block = 64;  // two 64-dim blocks over the 128-dim data
  opt.epochs = 1;
  auto res = TrainRpq(base_, graph_, opt);
  ASSERT_NE(res.quantizer, nullptr);
  // Rotation still orthonormal when block-diagonal.
  const auto& r = res.quantizer->rotation();
  EXPECT_LT(linalg::MaxAbsDiff(linalg::MatMulTransA(r, r),
                               linalg::Matrix::Identity(base_.dim())),
            5e-3f);
}

TEST_F(TrainerTest, MemoryIndexSearchUsesAdcOnly) {
  auto res = TrainRpq(base_, graph_, FastOptions());
  auto index = MemoryIndex::Build(base_, graph_, *res.quantizer);
  auto out = index->Search(queries_[0], 10, {32, 10});
  ASSERT_EQ(out.results.size(), 10u);
  EXPECT_GT(out.stats.hops, 0u);
  // Result distances are estimates, not exact: allow them to differ from the
  // true distances but require the ranking to be ascending.
  for (size_t i = 1; i < out.results.size(); ++i) {
    EXPECT_LE(out.results[i - 1].dist, out.results[i].dist);
  }
  // K = 16 makes the index FastScan-capable, so the footprint is codes +
  // model + the packed neighbor blocks laid out at build time.
  EXPECT_TRUE(index->fastscan_capable());
  EXPECT_GT(index->MemoryBytes(),
            base_.size() * res.quantizer->code_size() +
                res.quantizer->ModelSizeBytes());
}

TEST(TrainerSmokeTest, WorksOnNormalizedData) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("deep", 600, 10, 77, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 10;
  vopt.build_beam = 20;
  auto graph = graph::BuildVamana(base, vopt);
  RpqTrainOptions opt;
  opt.m = 8;
  opt.k = 16;
  opt.epochs = 1;
  opt.triplets_per_epoch = 64;
  opt.routing_queries_per_epoch = 4;
  opt.routing_beam_width = 8;
  opt.max_steps_per_query = 4;
  opt.batch_size = 8;
  auto res = TrainRpq(base, graph, opt);
  ASSERT_NE(res.quantizer, nullptr);
  for (double l : res.epoch_loss) EXPECT_TRUE(std::isfinite(l));
}

}  // namespace
}  // namespace rpq::core
