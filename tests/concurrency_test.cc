// Thread-safety regression tests for the raw index search paths: const
// Search must be callable from many threads with no shared mutable state
// (the historical bug was one shared `mutable VisitedTable` per index).
// These tests are the ones the ThreadSanitizer CI job exists to run — a
// reintroduced race shows up either as a TSan report or, with high
// probability, as corrupted visited bookkeeping breaking result equality.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/memory_index.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "graph/fresh_vamana.h"
#include "graph/vamana.h"
#include "quant/pq.h"
#include "serve/search_service.h"

namespace rpq {
namespace {

struct MemoryFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<core::MemoryIndex> index;
};

MemoryFixture MakeMemoryFixture(size_t n = 1200, size_t nq = 24) {
  MemoryFixture f;
  synthetic::MakeBaseAndQueries("sift", n, nq, /*seed=*/11, &f.base,
                                &f.queries);
  graph::VamanaOptions vopt;
  vopt.degree = 16;
  vopt.build_beam = 32;
  f.graph = graph::BuildVamana(f.base, vopt);
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  f.pq = quant::PqQuantizer::Train(f.base, popt);
  f.index = core::MemoryIndex::Build(f.base, f.graph, *f.pq);
  return f;
}

// N threads hammer one const MemoryIndex concurrently; every thread must
// reproduce the serial results exactly (and TSan must stay silent).
TEST(ConcurrencyTest, MemoryIndexConcurrentSearchMatchesSerial) {
  MemoryFixture f = MakeMemoryFixture();
  const graph::BeamSearchOptions opt{32, 10};

  std::vector<std::vector<Neighbor>> serial(f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    serial[q] = f.index->Search(f.queries[q], 10, opt).results;
  }

  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int rep = 0; rep < 3; ++rep) {
        for (size_t q = 0; q < f.queries.size(); ++q) {
          auto res = f.index->Search(f.queries[q], 10, opt).results;
          if (res != serial[q]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ConcurrencyTest, MemoryIndexSearchBatchMatchesPerQuery) {
  MemoryFixture f = MakeMemoryFixture(800, 16);
  const graph::BeamSearchOptions opt{32, 10};
  std::vector<const float*> ptrs;
  for (size_t q = 0; q < f.queries.size(); ++q) ptrs.push_back(f.queries[q]);
  auto batched = f.index->SearchBatch(ptrs.data(), ptrs.size(), 10, opt);
  ASSERT_EQ(batched.size(), f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    EXPECT_EQ(batched[q].results, f.index->Search(f.queries[q], 10, opt).results)
        << "query " << q;
  }
}

TEST(ConcurrencyTest, DiskIndexConcurrentSearchMatchesSerial) {
  MemoryFixture f = MakeMemoryFixture(600, 12);
  auto disk = disk::DiskIndex::Build(f.base, f.graph, *f.pq);
  const graph::BeamSearchOptions opt{32, 10};

  std::vector<std::vector<Neighbor>> serial(f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    serial[q] = disk->Search(f.queries[q], 10, opt).results;
  }

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (size_t q = 0; q < f.queries.size(); ++q) {
        auto res = disk->Search(f.queries[q], 10, opt).results;
        if (res != serial[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// Async disk path under concurrency: each query drives its own
// AsyncIoContext + prefetch cache over the shared const device, so in-flight
// wide waves with speculation from many threads must stay coherent
// (TSan-checked) and deterministic. Exercised through DiskIndexService so
// the QuerySpec knob plumbing is on the tested path.
TEST(ConcurrencyTest, DiskServiceConcurrentAsyncQueriesMatchSerial) {
  MemoryFixture f = MakeMemoryFixture(600, 12);
  disk::DiskIndexOptions dopt;
  dopt.ssd.queue_depth = 8;
  auto disk = disk::DiskIndex::Build(f.base, f.graph, *f.pq, dopt);
  serve::DiskIndexService service(*disk);
  const auto make_spec = [&](size_t q) {
    serve::QuerySpec spec;
    spec.query = f.queries[q];
    spec.k = 10;
    spec.beam_width = 32;
    spec.io_width = 8;
    spec.readahead = 4;
    return spec;
  };

  std::vector<std::vector<Neighbor>> serial(f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    serial[q] = service.Search(make_spec(q)).results;
  }

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (size_t q = 0; q < f.queries.size(); ++q) {
        auto res = service.Search(make_spec(q)).results;
        if (res != serial[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// Readers search a FreshVamana index while one writer inserts and deletes;
// the shared-lock epochs must keep every read coherent (TSan-checked) and
// reads must keep completing throughout.
TEST(ConcurrencyTest, FreshVamanaReadersDuringWrites) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 900, 8, /*seed=*/3, &base,
                                &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 12;
  vopt.build_beam = 24;
  graph::FreshVamanaIndex index(base.dim(), vopt);
  for (size_t i = 0; i < 400; ++i) index.Insert(base[i]);

  std::atomic<bool> done{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t q = t;
      while (!done.load(std::memory_order_acquire)) {
        auto res = index.Search(queries[q % queries.size()], 5, 32);
        EXPECT_LE(res.size(), 5u);
        for (const auto& nb : res) {
          EXPECT_LT(nb.id, 900u);  // ids never exceed what was inserted
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        ++q;
      }
    });
  }

  for (size_t i = 400; i < 900; ++i) {
    index.Insert(base[i]);
    if (i % 90 == 0) index.Delete(static_cast<uint32_t>(i / 2));
    if (i % 300 == 0) index.Consolidate();
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_GT(reads.load(), 0u);  // readers made progress during the writes
  // The index is intact afterwards: a search returns live vertices only.
  auto res = index.Search(queries[0], 10, 64);
  for (const auto& nb : res) EXPECT_FALSE(index.IsDeleted(nb.id));
}

}  // namespace
}  // namespace rpq
