#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/distance.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/topk.h"

namespace rpq {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad M");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad M"), std::string::npos);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, UniformIndexInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    size_t v = rng.UniformIndex(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformIndex(1000), b.UniformIndex(1000));
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(100, 40);
  std::set<uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 40u);
  for (uint32_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, GumbelFinite) {
  Rng rng(3);
  double mean = 0;
  for (int i = 0; i < 10000; ++i) {
    float g = rng.Gumbel();
    ASSERT_TRUE(std::isfinite(g));
    mean += g;
  }
  mean /= 10000;
  // Standard Gumbel mean is the Euler-Mascheroni constant ~0.5772.
  EXPECT_NEAR(mean, 0.5772, 0.05);
}

TEST(TopKTest, KeepsSmallest) {
  TopK top(3);
  for (float d : {5.f, 1.f, 4.f, 2.f, 3.f}) {
    top.Push(d, static_cast<uint32_t>(d));
  }
  auto out = top.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0].dist, 1.f);
  EXPECT_FLOAT_EQ(out[1].dist, 2.f);
  EXPECT_FLOAT_EQ(out[2].dist, 3.f);
}

TEST(TopKTest, ThresholdInfUntilFull) {
  TopK top(2);
  EXPECT_TRUE(std::isinf(top.Threshold()));
  top.Push(1.f, 0);
  EXPECT_TRUE(std::isinf(top.Threshold()));
  top.Push(2.f, 1);
  EXPECT_FLOAT_EQ(top.Threshold(), 2.f);
}

TEST(TopKTest, RejectsWorseWhenFull) {
  TopK top(2);
  top.Push(1.f, 0);
  top.Push(2.f, 1);
  EXPECT_FALSE(top.Push(3.f, 2));
  EXPECT_TRUE(top.Push(0.5f, 3));
}

TEST(DistanceTest, SquaredL2MatchesNaive) {
  Rng rng(7);
  for (size_t d : {1u, 3u, 4u, 7u, 16u, 33u, 128u}) {
    std::vector<float> a(d), b(d);
    for (size_t i = 0; i < d; ++i) {
      a[i] = rng.Gaussian();
      b[i] = rng.Gaussian();
    }
    float naive = 0;
    for (size_t i = 0; i < d; ++i) naive += (a[i] - b[i]) * (a[i] - b[i]);
    EXPECT_NEAR(SquaredL2(a.data(), b.data(), d), naive, 1e-4f * (1 + naive));
  }
}

TEST(DistanceTest, DotAndNorm) {
  std::vector<float> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a.data(), b.data(), 3), 32.f);
  EXPECT_FLOAT_EQ(SquaredNorm(a.data(), 3), 14.f);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SerialFallback) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, 100, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace rpq
