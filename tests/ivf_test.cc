// IVF subsystem tests: routing + flat FastScan list scans reproduce a
// hand-rolled reference of the probed lists bit-for-bit (pre-rerank
// estimates come from the same integer-sum estimator on every SIMD
// backend), SearchBatch's multi-query LUT batching equals per-query Search,
// edge cases (tail blocks, empty lists, k > candidates, nprobe > nlist) are
// pinned, inserts match builds, save/load round-trips, and concurrent
// Search/Insert hold under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/distance.h"
#include "common/rng.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "ivf/ivf_index.h"
#include "quant/adc.h"
#include "quant/fastscan.h"
#include "quant/kmeans.h"
#include "quant/pq.h"
#include "quant/split.h"
#include "simd/simd.h"

namespace rpq {
namespace {

struct Fixture {
  Dataset base, queries;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<ivf::IvfIndex> index;
  std::vector<std::vector<Neighbor>> gt;
};

Fixture MakeFixture(size_t n = 1333, size_t nq = 12, size_t nlist = 13,
                    bool store_vectors = false, size_t m = 16) {
  // n and nlist are chosen so list lengths straddle 32-code block tails.
  Fixture f;
  synthetic::MakeBaseAndQueries("sift", n, nq, /*seed=*/21, &f.base,
                                &f.queries);
  quant::PqOptions popt;
  popt.m = m;
  popt.nbits = 4;
  popt.kmeans_iters = 4;
  f.pq = quant::PqQuantizer::Train(f.base, popt);
  ivf::IvfOptions opt;
  opt.nlist = nlist;
  opt.kmeans_iters = 8;
  opt.store_vectors = store_vectors;
  f.index = ivf::IvfIndex::Build(f.base, *f.pq, opt);
  f.gt = ComputeGroundTruth(f.base, f.queries, 10);
  return f;
}

struct ResFixtureResult {
  Dataset base, queries;
  std::vector<float> centroids;
  std::unique_ptr<quant::PqQuantizer> model;
  std::unique_ptr<ivf::IvfIndex> index;
  std::vector<std::vector<Neighbor>> gt;
  ivf::IvfOptions opt;
};

Dataset ResidualsOf(const Dataset& base, const std::vector<float>& centroids) {
  const size_t dim = base.dim();
  const size_t nlist = centroids.size() / dim;
  std::vector<float> resid(base.size() * dim);
  for (size_t i = 0; i < base.size(); ++i) {
    uint32_t c = quant::NearestCentroid(base[i], centroids.data(), nlist, dim);
    const float* cen = centroids.data() + size_t{c} * dim;
    for (size_t d = 0; d < dim; ++d) resid[i * dim + d] = base[i][d] - cen[d];
  }
  return Dataset(base.size(), dim, std::move(resid));
}

std::unique_ptr<quant::PqQuantizer> TrainResidualPq(const Dataset& residuals,
                                                    bool split, size_t m) {
  quant::PqOptions popt;
  popt.m = m;
  popt.kmeans_iters = 4;
  if (split) {
    popt.nbits = 8;  // K = 256 via the split tables
    return quant::TrainSplitPq(residuals, popt);
  }
  popt.nbits = 4;
  return quant::PqQuantizer::Train(residuals, popt);
}

// Residual fixture: coarse centroids first, then a PQ model trained on the
// per-cell residuals x - centroid (the regime's contract — a model trained
// on raw vectors would see codes it was never fit for), then
// BuildWithCentroids so training and routing share one centroid table.
ResFixtureResult MakeResidualFixture(bool split, size_t n = 1333,
                                     size_t nq = 12, size_t nlist = 13,
                                     bool store_vectors = false,
                                     size_t m = 16) {
  ResFixtureResult f;
  synthetic::MakeBaseAndQueries("sift", n, nq, /*seed=*/21, &f.base,
                                &f.queries);
  f.opt.nlist = nlist;
  f.opt.kmeans_iters = 8;
  f.opt.store_vectors = store_vectors;
  f.opt.residual = true;
  f.centroids = ivf::IvfIndex::TrainCoarse(f.base, f.opt);
  f.model = TrainResidualPq(ResidualsOf(f.base, f.centroids), split, m);
  f.index =
      ivf::IvfIndex::BuildWithCentroids(f.base, f.centroids, *f.model, f.opt);
  f.gt = ComputeGroundTruth(f.base, f.queries, 10);
  return f;
}

// Reference implementation mirroring the index's contract with scalar code
// only: route by (centroid distance, list id), estimate every code of the
// probed lists with FastScanTable::Distance (bit-identical to the blocked
// kernels), keep the top `rerank` by (estimate, id), re-score, top-k.
std::vector<Neighbor> ReferenceSearch(const Fixture& f, const float* query,
                                      size_t k, size_t nprobe, size_t rerank) {
  const ivf::IvfIndex& ix = *f.index;
  const size_t nlist = ix.nlist();
  nprobe = std::min(nprobe, nlist);
  std::vector<float> d2(nlist);
  simd::L2ToMany(query, ix.centroids().data(), nlist, f.base.dim(), d2.data());
  std::vector<uint32_t> order(nlist);
  for (uint32_t l = 0; l < nlist; ++l) order[l] = l;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return d2[a] < d2[b] || (d2[a] == d2[b] && a < b);
  });

  // Probed rows, identified by re-encoding each base row (Build encodes the
  // same way, so codes agree).
  quant::AdcTable lut(*f.pq, query);
  quant::FastScanTable fast(lut);
  const size_t m = f.pq->code_size();
  auto codes = f.pq->EncodeDataset(f.base);
  std::vector<uint32_t> assign(f.base.size());
  for (size_t i = 0; i < f.base.size(); ++i) {
    assign[i] = quant::NearestCentroid(f.base[i], ix.centroids().data(), nlist,
                                       f.base.dim());
  }
  struct Est {
    float est;
    uint32_t id;
  };
  std::vector<Est> cands;
  for (size_t p = 0; p < nprobe; ++p) {
    for (size_t i = 0; i < f.base.size(); ++i) {
      if (assign[i] != order[p]) continue;
      cands.push_back({fast.Distance(codes.data() + i * m),
                       static_cast<uint32_t>(i)});
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Est& a, const Est& b) {
    return a.est < b.est || (a.est == b.est && a.id < b.id);
  });
  if (cands.size() > rerank) cands.resize(rerank);
  TopK top(k);
  for (const Est& c : cands) {
    top.Push(lut.Distance(codes.data() + size_t{c.id} * m), c.id);
  }
  return top.Take();
}

// --------------------------------------------------------- correctness ----

// The acceptance bar: the index's routed, kernel-scanned, reranked result
// equals the scalar hand-rolled reference exactly — candidate estimates are
// bit-identical, so ranking decisions are too (runs under both dispatched
// SIMD and RPQ_DISABLE_SIMD=1 in CI).
TEST(IvfIndexTest, SearchMatchesProbedListReferenceExactly) {
  Fixture f = MakeFixture();
  for (size_t nprobe : {size_t(1), size_t(3), size_t(7), size_t(13),
                        size_t(50) /* > nlist: clamped */}) {
    for (size_t q = 0; q < f.queries.size(); ++q) {
      ivf::IvfSearchOptions opt;
      opt.nprobe = nprobe;
      auto got = f.index->Search(f.queries[q], 10, opt);
      auto want = ReferenceSearch(f, f.queries[q], 10, nprobe, /*rerank=*/32);
      ASSERT_EQ(got.results, want) << "nprobe=" << nprobe << " q=" << q;
      EXPECT_EQ(got.stats.lists_probed, std::min(nprobe, f.index->nlist()));
    }
  }
}

TEST(IvfIndexTest, FullProbeRecallMatchesQuantizerBound) {
  Fixture f = MakeFixture();
  // nprobe = nlist scans everything: recall equals what a flat FastScan +
  // float-ADC rerank over the whole corpus achieves (quantizer-bound).
  ivf::IvfSearchOptions opt;
  opt.nprobe = f.index->nlist();
  std::vector<std::vector<Neighbor>> results(f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    auto out = f.index->Search(f.queries[q], 10, opt);
    EXPECT_EQ(out.stats.codes_scanned, f.base.size());
    EXPECT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
    results[q] = std::move(out.results);
  }
  double full = eval::MeanRecallAtK(results, f.gt, 10);
  // Narrow probes can only do worse or equal.
  opt.nprobe = 2;
  for (size_t q = 0; q < f.queries.size(); ++q) {
    results[q] = f.index->Search(f.queries[q], 10, opt).results;
  }
  EXPECT_LE(eval::MeanRecallAtK(results, f.gt, 10), full + 1e-9);
  EXPECT_GT(full, 0.2);  // sanity: scanning everything finds something real
}

TEST(IvfIndexTest, ExactRerankLiftsRecallPastFloatAdc) {
  Fixture fadc = MakeFixture(1333, 12, 13, /*store_vectors=*/false);
  Fixture fexact = MakeFixture(1333, 12, 13, /*store_vectors=*/true);
  ivf::IvfSearchOptions opt;
  opt.nprobe = fadc.index->nlist();
  opt.rerank = 64;
  auto recall_of = [&](Fixture& f) {
    std::vector<std::vector<Neighbor>> results(f.queries.size());
    for (size_t q = 0; q < f.queries.size(); ++q) {
      results[q] = f.index->Search(f.queries[q], 10, opt).results;
    }
    return eval::MeanRecallAtK(results, f.gt, 10);
  };
  double adc = recall_of(fadc);
  double exact = recall_of(fexact);
  EXPECT_GE(exact, adc);
  EXPECT_GT(exact, 0.9) << "exact rerank over a full probe should be near 1";

  // The refinement stage is a query-time knob: forcing kAdc on the
  // store_vectors index reproduces the no-vectors index exactly (identical
  // seeds give identical centroids/codes), and kExact equals its kAuto.
  opt.rerank_mode = refine::RerankMode::kAdc;
  for (size_t q = 0; q < fexact.queries.size(); ++q) {
    EXPECT_EQ(fexact.index->Search(fexact.queries[q], 10, opt).results,
              fadc.index->Search(fadc.queries[q], 10, opt).results)
        << "q=" << q;
  }
  opt.rerank_mode = refine::RerankMode::kExact;
  EXPECT_EQ(recall_of(fexact), exact);
}

// The shared auto-rerank rule (refine::EffectiveRerankWidth) governs how
// many candidates survive to the refinement stage: with fewer candidates
// than the width, every scanned code is eligible, so k > width behaves.
TEST(IvfIndexTest, RerankWidthNeverBelowK) {
  Fixture f = MakeFixture(300, 3, 4);
  ivf::IvfSearchOptions opt;
  opt.nprobe = 4;
  opt.rerank = 1;  // clamped up to k by the shared rule
  auto out = f.index->Search(f.queries[0], 20, opt);
  EXPECT_EQ(out.results.size(), 20u);
  EXPECT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
}

// -------------------------------------------------------- batch parity ----

TEST(IvfIndexTest, SearchBatchMatchesPerQuerySearch) {
  Fixture f = MakeFixture(1500, 16, 9);
  std::vector<const float*> ptrs;
  for (size_t q = 0; q < f.queries.size(); ++q) ptrs.push_back(f.queries[q]);
  for (size_t nprobe : {size_t(1), size_t(4), size_t(9)}) {
    ivf::IvfSearchOptions opt;
    opt.nprobe = nprobe;
    auto batch = f.index->SearchBatch(ptrs.data(), ptrs.size(), 10, opt);
    ASSERT_EQ(batch.size(), f.queries.size());
    for (size_t q = 0; q < f.queries.size(); ++q) {
      auto single = f.index->Search(f.queries[q], 10, opt);
      EXPECT_EQ(batch[q].results, single.results)
          << "nprobe=" << nprobe << " q=" << q;
      EXPECT_EQ(batch[q].stats.lists_probed, single.stats.lists_probed);
      EXPECT_EQ(batch[q].stats.codes_scanned, single.stats.codes_scanned);
    }
  }
}

// Duplicate queries maximize list sharing (every probed list is scanned for
// the whole batch through the multi-query kernel at once).
TEST(IvfIndexTest, SearchBatchWithSharedListsMatchesSearch) {
  Fixture f = MakeFixture(900, 4, 5);
  std::vector<const float*> ptrs;
  for (int rep = 0; rep < 3; ++rep) {
    for (size_t q = 0; q < f.queries.size(); ++q) ptrs.push_back(f.queries[q]);
  }
  ivf::IvfSearchOptions opt;
  opt.nprobe = 3;
  auto batch = f.index->SearchBatch(ptrs.data(), ptrs.size(), 10, opt);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    auto single = f.index->Search(ptrs[i], 10, opt);
    EXPECT_EQ(batch[i].results, single.results) << "i=" << i;
  }
}

// ----------------------------------------------------------- edge cases ----

TEST(IvfIndexTest, EmptyListsAndSmallCorpus) {
  // 8 centroids, 3 inserted vectors: most lists stay empty; searches must
  // tolerate empty probes, k > corpus, and nprobe > nlist.
  Dataset tiny = synthetic::MakeSiftLike(64, 3);
  quant::PqOptions popt;
  popt.m = 8;
  popt.nbits = 4;
  popt.kmeans_iters = 2;
  auto pq = quant::PqQuantizer::Train(tiny, popt);

  quant::KMeansOptions kopt;
  kopt.k = 8;
  auto km = quant::RunKMeans(tiny.data(), tiny.size(), tiny.dim(), kopt);
  auto index = ivf::IvfIndex::CreateEmpty(km.centroids, tiny.dim(), *pq);

  // Entirely empty index: no results, no crash.
  ivf::IvfSearchOptions opt;
  opt.nprobe = 100;  // > nlist, clamped
  auto empty = index->Search(tiny[0], 10, opt);
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.lists_probed, 8u);
  EXPECT_EQ(empty.stats.codes_scanned, 0u);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(index->Insert(tiny[i]), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(index->size(), 3u);
  auto out = index->Search(tiny[0], 10, opt);  // k > corpus
  ASSERT_EQ(out.results.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
  EXPECT_EQ(out.results[0].id, 0u);  // the query is an indexed vector

  // Batch over the same edge state.
  const float* qs[2] = {tiny[0], tiny[1]};
  auto batch = index->SearchBatch(qs, 2, 10, opt);
  EXPECT_EQ(batch[0].results, out.results);
}

TEST(IvfIndexTest, InsertsMatchBuildLayout) {
  // An empty clone of a built index (same centroids) filled through Insert
  // must search identically: appends hit the packed tail-block path at every
  // length mod 32.
  Fixture f = MakeFixture(777, 6, 6);
  auto streamed = ivf::IvfIndex::CreateEmpty(f.index->centroids(),
                                             f.base.dim(), *f.pq);
  for (size_t i = 0; i < f.base.size(); ++i) {
    EXPECT_EQ(streamed->Insert(f.base[i]), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(streamed->size(), f.index->size());
  ivf::IvfSearchOptions opt;
  opt.nprobe = 4;
  for (size_t q = 0; q < f.queries.size(); ++q) {
    EXPECT_EQ(streamed->Search(f.queries[q], 10, opt).results,
              f.index->Search(f.queries[q], 10, opt).results)
        << "q=" << q;
  }
}

// ------------------------------------------------ residual + split regimes ----

// The reason the regime exists: at equal nprobe, residual codes (and the
// K = 256 split tables on top of them) must recover strictly more of the
// true neighbors than raw-vector 4-bit codes.
TEST(IvfResidualTest, ResidualLiftsRecallOverPlainAtEqualNprobe) {
  Fixture plain = MakeFixture(1333, 12, 13);
  ResFixtureResult res4 = MakeResidualFixture(/*split=*/false);
  ResFixtureResult res8 = MakeResidualFixture(/*split=*/true);
  auto recall_at = [](auto& f, size_t nprobe) {
    ivf::IvfSearchOptions opt;
    opt.nprobe = nprobe;
    std::vector<std::vector<Neighbor>> results(f.queries.size());
    for (size_t q = 0; q < f.queries.size(); ++q) {
      results[q] = f.index->Search(f.queries[q], 10, opt).results;
    }
    return eval::MeanRecallAtK(results, f.gt, 10);
  };
  for (size_t nprobe : {size_t(4), size_t(13)}) {
    double p = recall_at(plain, nprobe);
    double r4 = recall_at(res4, nprobe);
    double r8 = recall_at(res8, nprobe);
    EXPECT_GE(r4, p) << "nprobe=" << nprobe;
    EXPECT_GE(r8, r4) << "nprobe=" << nprobe;
  }
  EXPECT_GT(recall_at(res8, 13), recall_at(plain, 13));
}

// Residual reconstruction x_hat = centroid + Decode(Encode(x - centroid))
// must beat the plain quantizer trained on raw vectors at the same code
// budget — and || x - x_hat ||^2 equals the residual-space decode error
// exactly (the centroid add cancels), which the loop also pins.
TEST(IvfResidualTest, EncodeDecodeCentroidAddTightensReconstruction) {
  ResFixtureResult f = MakeResidualFixture(/*split=*/false, 800, 4, 7);
  quant::PqOptions popt;
  popt.m = 16;
  popt.nbits = 4;
  popt.kmeans_iters = 4;
  auto raw_pq = quant::PqQuantizer::Train(f.base, popt);

  const size_t dim = f.base.dim();
  const size_t nlist = f.centroids.size() / dim;
  std::vector<uint8_t> code(f.model->code_size());
  std::vector<float> r(dim), rec_r(dim), x_hat(dim);
  double res_err = 0;
  for (size_t i = 0; i < f.base.size(); ++i) {
    uint32_t c =
        quant::NearestCentroid(f.base[i], f.centroids.data(), nlist, dim);
    const float* cen = f.centroids.data() + size_t{c} * dim;
    for (size_t d = 0; d < dim; ++d) r[d] = f.base[i][d] - cen[d];
    f.model->Encode(r.data(), code.data());
    f.model->Decode(code.data(), rec_r.data());
    for (size_t d = 0; d < dim; ++d) x_hat[d] = cen[d] + rec_r[d];
    float full = SquaredL2(f.base[i], x_hat.data(), dim);
    float in_residual_space = SquaredL2(r.data(), rec_r.data(), dim);
    ASSERT_NEAR(full, in_residual_space, 1e-2f * (1 + full)) << "i=" << i;
    res_err += full;
  }
  res_err /= f.base.size();
  EXPECT_LT(res_err, raw_pq->Distortion(f.base));
}

// Batch grouping in the residual regime builds one (cell, query) table per
// pair and scans each cell's blocks once for the whole group — results must
// equal per-query Search exactly, in both the 4-bit and split regimes, with
// repeated queries maximizing the shared-cell path.
TEST(IvfResidualTest, SearchBatchMatchesPerQuerySearch) {
  for (bool split : {false, true}) {
    ResFixtureResult f = MakeResidualFixture(split, 900, 6, 7);
    std::vector<const float*> ptrs;
    for (int rep = 0; rep < 2; ++rep) {
      for (size_t q = 0; q < f.queries.size(); ++q) {
        ptrs.push_back(f.queries[q]);
      }
    }
    for (size_t nprobe : {size_t(1), size_t(3), size_t(7)}) {
      ivf::IvfSearchOptions opt;
      opt.nprobe = nprobe;
      auto batch = f.index->SearchBatch(ptrs.data(), ptrs.size(), 10, opt);
      ASSERT_EQ(batch.size(), ptrs.size());
      for (size_t i = 0; i < ptrs.size(); ++i) {
        auto single = f.index->Search(ptrs[i], 10, opt);
        ASSERT_EQ(batch[i].results, single.results)
            << "split=" << split << " nprobe=" << nprobe << " i=" << i;
        EXPECT_EQ(batch[i].stats.codes_scanned, single.stats.codes_scanned);
      }
    }
  }
}

// Empty probed cells must be skipped before any per-cell table is built —
// the residual path constructs tables lazily per probe, so an empty cell
// must cost nothing and crash nothing.
TEST(IvfResidualTest, EmptyCellProbesAreSkipped) {
  Dataset tiny = synthetic::MakeSiftLike(64, 3);
  quant::KMeansOptions kopt;
  kopt.k = 8;
  auto km = quant::RunKMeans(tiny.data(), tiny.size(), tiny.dim(), kopt);
  for (bool split : {false, true}) {
    auto model = TrainResidualPq(ResidualsOf(tiny, km.centroids), split, 8);
    ivf::IvfOptions opt;
    opt.residual = true;
    auto index =
        ivf::IvfIndex::CreateEmpty(km.centroids, tiny.dim(), *model, opt);
    ivf::IvfSearchOptions sopt;
    sopt.nprobe = 100;  // > nlist, clamped; every probe hits an empty cell
    auto empty = index->Search(tiny[0], 10, sopt);
    EXPECT_TRUE(empty.results.empty()) << "split=" << split;
    EXPECT_EQ(empty.stats.lists_probed, 8u);
    EXPECT_EQ(empty.stats.codes_scanned, 0u);

    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(index->Insert(tiny[i]), static_cast<uint32_t>(i));
    }
    auto out = index->Search(tiny[0], 10, sopt);  // k > corpus, most cells empty
    ASSERT_EQ(out.results.size(), 3u);
    EXPECT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
    EXPECT_EQ(out.results[0].id, 0u);

    const float* qs[2] = {tiny[0], tiny[1]};
    auto batch = index->SearchBatch(qs, 2, 10, sopt);
    EXPECT_EQ(batch[0].results, out.results) << "split=" << split;
  }
}

// Streaming inserts route first, then encode against the owning centroid —
// the same order Build uses, so a streamed index must search identically.
TEST(IvfResidualTest, InsertsMatchBuildLayout) {
  for (bool split : {false, true}) {
    ResFixtureResult f = MakeResidualFixture(split, 777, 6, 6);
    auto streamed = ivf::IvfIndex::CreateEmpty(f.centroids, f.base.dim(),
                                               *f.model, f.opt);
    for (size_t i = 0; i < f.base.size(); ++i) {
      EXPECT_EQ(streamed->Insert(f.base[i]), static_cast<uint32_t>(i));
    }
    ivf::IvfSearchOptions opt;
    opt.nprobe = 4;
    for (size_t q = 0; q < f.queries.size(); ++q) {
      EXPECT_EQ(streamed->Search(f.queries[q], 10, opt).results,
                f.index->Search(f.queries[q], 10, opt).results)
          << "split=" << split << " q=" << q;
    }
  }
}

// The residual regime degrades gracefully through the shared rerank modes:
// kAdc re-scores with decode + centroid add (no stored vectors needed),
// kExact with the retained vectors, and kAuto picks between them.
TEST(IvfResidualTest, RerankModesDegradeGracefully) {
  ResFixtureResult plain = MakeResidualFixture(/*split=*/true, 900, 6, 7,
                                               /*store_vectors=*/false);
  ResFixtureResult stored = MakeResidualFixture(/*split=*/true, 900, 6, 7,
                                                /*store_vectors=*/true);
  ivf::IvfSearchOptions opt;
  opt.nprobe = 7;
  opt.rerank = 64;
  // Same seeds → same centroids/codes: forcing kAdc on the stored index
  // reproduces the no-vectors index exactly.
  opt.rerank_mode = refine::RerankMode::kAdc;
  for (size_t q = 0; q < plain.queries.size(); ++q) {
    EXPECT_EQ(stored.index->Search(stored.queries[q], 10, opt).results,
              plain.index->Search(plain.queries[q], 10, opt).results)
        << "q=" << q;
  }
  auto recall_of = [&](ResFixtureResult& f) {
    std::vector<std::vector<Neighbor>> results(f.queries.size());
    for (size_t q = 0; q < f.queries.size(); ++q) {
      results[q] = f.index->Search(f.queries[q], 10, opt).results;
    }
    return eval::MeanRecallAtK(results, f.gt, 10);
  };
  double adc = recall_of(plain);
  opt.rerank_mode = refine::RerankMode::kExact;
  double exact = recall_of(stored);
  EXPECT_GE(exact, adc);
  opt.rerank_mode = refine::RerankMode::kAuto;
  EXPECT_EQ(recall_of(stored), exact);
}

// Non-residual split regime: K = 256 tables over raw vectors must reach at
// least the 4-bit recall at full probe (more words, sharper estimates), and
// batch must equal single.
TEST(IvfSplitTest, SplitTablesLiftQuantizerBoundRecall) {
  // Enough queries that the recall comparison is not decided by a couple of
  // borderline neighbors (at 8 queries the two regimes sit within 3 hits).
  Fixture four = MakeFixture(900, 48, 7);
  quant::PqOptions popt;
  popt.m = 16;
  popt.nbits = 8;
  popt.kmeans_iters = 4;
  auto split_pq = quant::TrainSplitPq(four.base, popt);
  ivf::IvfOptions opt;
  opt.nlist = 7;
  opt.kmeans_iters = 8;
  auto split_index = ivf::IvfIndex::Build(four.base, *split_pq, opt);

  ivf::IvfSearchOptions sopt;
  sopt.nprobe = 7;
  // Wide enough that the float-ADC rerank, not u8 candidate selection,
  // decides the top-10 — the comparison isolates codebook capacity.
  sopt.rerank = 128;
  std::vector<std::vector<Neighbor>> r4(four.queries.size()),
      r8(four.queries.size());
  std::vector<const float*> ptrs;
  for (size_t q = 0; q < four.queries.size(); ++q) {
    r4[q] = four.index->Search(four.queries[q], 10, sopt).results;
    r8[q] = split_index->Search(four.queries[q], 10, sopt).results;
    ptrs.push_back(four.queries[q]);
  }
  EXPECT_GE(eval::MeanRecallAtK(r8, four.gt, 10),
            eval::MeanRecallAtK(r4, four.gt, 10) - 0.02);

  auto batch = split_index->SearchBatch(ptrs.data(), ptrs.size(), 10, sopt);
  for (size_t q = 0; q < ptrs.size(); ++q) {
    EXPECT_EQ(batch[q].results, r8[q]) << "q=" << q;
  }
}

// ---------------------------------------------------------- persistence ----

TEST(IvfIndexTest, SaveLoadRoundTrips) {
  for (bool store_vectors : {false, true}) {
    Fixture f = MakeFixture(600, 5, 7, store_vectors);
    std::string path = testing::TempDir() + "/ivf_roundtrip.bin";
    ASSERT_TRUE(f.index->Save(path).ok());
    auto loaded = ivf::IvfIndex::Load(path, *f.pq);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->nlist(), f.index->nlist());
    EXPECT_EQ(loaded.value()->size(), f.index->size());
    EXPECT_EQ(loaded.value()->stores_vectors(), store_vectors);
    ivf::IvfSearchOptions opt;
    opt.nprobe = 5;
    for (size_t q = 0; q < f.queries.size(); ++q) {
      EXPECT_EQ(loaded.value()->Search(f.queries[q], 10, opt).results,
                f.index->Search(f.queries[q], 10, opt).results);
    }
    std::remove(path.c_str());
  }
}

// Version-2 files carry the residual flag; a reloaded index must report
// residual(), rebuild the packed blocks and split cross constants from the
// stored codes, and search identically — in all four regime combinations.
TEST(IvfIndexTest, SaveLoadRoundTripsResidualAndSplit) {
  for (bool split : {false, true}) {
    ResFixtureResult f = MakeResidualFixture(split, 600, 5, 7);
    std::string path = testing::TempDir() + "/ivf_residual_roundtrip.bin";
    ASSERT_TRUE(f.index->Save(path).ok());
    auto loaded = ivf::IvfIndex::Load(path, *f.model);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded.value()->residual());
    EXPECT_EQ(loaded.value()->size(), f.index->size());
    ivf::IvfSearchOptions opt;
    opt.nprobe = 5;
    for (size_t q = 0; q < f.queries.size(); ++q) {
      EXPECT_EQ(loaded.value()->Search(f.queries[q], 10, opt).results,
                f.index->Search(f.queries[q], 10, opt).results)
          << "split=" << split << " q=" << q;
    }
    std::remove(path.c_str());
  }
}

// A split-trained quantizer paired with a non-split file (or vice versa)
// cannot silently load: the capability check fires on K/code-size mismatch.
TEST(IvfIndexTest, LoadRejectsWideQuantizerWithoutSplitModel) {
  Fixture f = MakeFixture(400, 3, 4);
  std::string path = testing::TempDir() + "/ivf_wide.bin";
  ASSERT_TRUE(f.index->Save(path).ok());
  quant::PqOptions popt;
  popt.m = 16;  // same code size as the fixture, but K = 256 and NOT split
  popt.k = 256;
  popt.nbits = 8;
  popt.kmeans_iters = 2;
  auto wide = quant::PqQuantizer::Train(f.base, popt);
  ASSERT_EQ(wide->split_model(), nullptr);
  EXPECT_FALSE(ivf::IvfIndex::Load(path, *wide).ok());
  std::remove(path.c_str());
}

// A corrupt per-list count must come back as a Status error, not abort the
// process inside vector::resize (counts are bounded by the header total and
// the header total by the file size, before any allocation trusts them).
TEST(IvfIndexTest, LoadRejectsCorruptListCounts) {
  Fixture f = MakeFixture(400, 3, 4);
  std::string path = testing::TempDir() + "/ivf_corrupt.bin";
  ASSERT_TRUE(f.index->Save(path).ok());
  // The first list-count u64 sits right after the fixed header + centroids.
  const long count_off =
      4 + 4 + 4 + 4 + 4 + 1 + 1 + 4 + 8 +
      static_cast<long>(f.index->nlist() * f.base.dim() * sizeof(float));
  for (uint64_t bad :
       {uint64_t{0x7fffffffffffffff}, uint64_t{f.base.size() + 1}}) {
    std::FILE* fp = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fseek(fp, count_off, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&bad, sizeof(bad), 1, fp), 1u);
    std::fclose(fp);
    auto loaded = ivf::IvfIndex::Load(path, *f.pq);
    EXPECT_FALSE(loaded.ok()) << "count=" << bad;
  }
  // Garbage header total (bounded by file size, checked before centroids).
  std::FILE* fp = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(fp, nullptr);
  const uint64_t bad_total = uint64_t{1} << 60;
  ASSERT_EQ(std::fseek(fp, 4 + 4 + 4 + 4 + 4 + 1 + 1 + 4, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&bad_total, sizeof(bad_total), 1, fp), 1u);
  std::fclose(fp);
  EXPECT_FALSE(ivf::IvfIndex::Load(path, *f.pq).ok());
  std::remove(path.c_str());
}

TEST(IvfIndexTest, LoadRejectsMismatchedQuantizer) {
  Fixture f = MakeFixture(400, 3, 4);
  std::string path = testing::TempDir() + "/ivf_mismatch.bin";
  ASSERT_TRUE(f.index->Save(path).ok());
  quant::PqOptions popt;
  popt.m = 8;  // different code size
  popt.nbits = 4;
  popt.kmeans_iters = 2;
  auto other = quant::PqQuantizer::Train(f.base, popt);
  EXPECT_FALSE(ivf::IvfIndex::Load(path, *other).ok());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- concurrency ----

// Readers and a writer interleave under the index's rwlock; run under the
// CI ThreadSanitizer job. Results of concurrent reads are not asserted
// against a serial oracle (the corpus is mutating) — only invariants.
TEST(IvfConcurrencyTest, ConcurrentSearchAndInsert) {
  Dataset base = synthetic::MakeSiftLike(600, 11);
  quant::PqOptions popt;
  popt.m = 8;
  popt.nbits = 4;
  popt.kmeans_iters = 2;
  auto pq = quant::PqQuantizer::Train(base, popt);
  quant::KMeansOptions kopt;
  kopt.k = 8;
  auto km = quant::RunKMeans(base.data(), 200, base.dim(), kopt);
  auto index = ivf::IvfIndex::CreateEmpty(km.centroids, base.dim(), *pq);
  for (size_t i = 0; i < 100; ++i) index->Insert(base[i]);

  std::atomic<bool> stop{false};
  std::atomic<size_t> searches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      ivf::IvfSearchOptions opt;
      opt.nprobe = 4;
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto out = index->Search(base[q % 100], 5, opt);
        ASSERT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
        ASSERT_LE(out.results.size(), 5u);
        ++q;
        ++searches;
      }
    });
  }
  for (size_t i = 100; i < base.size(); ++i) index->Insert(base[i]);
  // On few-core boxes the writer can finish before any reader completes a
  // search; let the readers get at least a few in before stopping.
  while (searches.load() < 3) std::this_thread::yield();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(index->size(), base.size());
  EXPECT_GT(searches.load(), 0u);
  // Post-quiescence: every vector is findable again.
  ivf::IvfSearchOptions opt;
  opt.nprobe = 8;
  auto out = index->Search(base[base.size() - 1], 1, opt);
  ASSERT_EQ(out.results.size(), 1u);
}

// Residual + split variant of the reader/writer interleave: the per-probe
// table builds and the per-list cross appends run under the same rwlock and
// must stay clean under TSan.
TEST(IvfConcurrencyTest, ConcurrentSearchAndInsertResidualSplit) {
  Dataset base = synthetic::MakeSiftLike(600, 11);
  quant::KMeansOptions kopt;
  kopt.k = 8;
  auto km = quant::RunKMeans(base.data(), 200, base.dim(), kopt);
  auto model = TrainResidualPq(ResidualsOf(base, km.centroids), /*split=*/true,
                               /*m=*/8);
  ivf::IvfOptions opt;
  opt.residual = true;
  auto index = ivf::IvfIndex::CreateEmpty(km.centroids, base.dim(), *model, opt);
  for (size_t i = 0; i < 100; ++i) index->Insert(base[i]);

  std::atomic<bool> stop{false};
  std::atomic<size_t> searches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      ivf::IvfSearchOptions sopt;
      sopt.nprobe = 4;
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto out = index->Search(base[q % 100], 5, sopt);
        ASSERT_TRUE(std::is_sorted(out.results.begin(), out.results.end()));
        ASSERT_LE(out.results.size(), 5u);
        ++q;
        ++searches;
      }
    });
  }
  for (size_t i = 100; i < base.size(); ++i) index->Insert(base[i]);
  while (searches.load() < 3) std::this_thread::yield();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(index->size(), base.size());
  // Post-quiescence: the last insert is findable through the residual path.
  ivf::IvfSearchOptions sopt;
  sopt.nprobe = 8;
  auto out = index->Search(base[base.size() - 1], 1, sopt);
  ASSERT_EQ(out.results.size(), 1u);
}

}  // namespace
}  // namespace rpq
