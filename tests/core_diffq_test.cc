#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "core/diff_quantizer.h"
#include "data/synthetic.h"

namespace rpq::core {
namespace {

Dataset SmallData(size_t n = 300, size_t dim = 16, uint64_t seed = 3) {
  synthetic::GmmOptions opt;
  opt.dim = dim;
  opt.num_clusters = 4;
  opt.intrinsic_dim = dim / 2;
  opt.cluster_spread = 2.0f;
  return synthetic::MakeGmm(n, opt, seed);
}

DiffQuantizer MakeSmall(const Dataset& d, size_t m = 4, size_t k = 8,
                        bool straight_through = false) {
  DiffQuantizerOptions opt;
  opt.m = m;
  opt.k = k;
  opt.straight_through = straight_through;
  DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, std::min<size_t>(d.size(), 128)));
  return dq;
}

TEST(DiffQuantizerTest, SoftAssignmentsSumToOne) {
  Dataset d = SmallData();
  DiffQuantizer dq = MakeSmall(d);
  ForwardResult f;
  dq.Forward(d[0], nullptr, false, &f);
  for (size_t j = 0; j < dq.num_chunks(); ++j) {
    float sum = 0;
    for (size_t k = 0; k < dq.num_centroids(); ++k) {
      float s = f.soft[j * dq.num_centroids() + k];
      EXPECT_GE(s, 0.0f);
      sum += s;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(DiffQuantizerTest, HardCodeIsNearestCodeword) {
  Dataset d = SmallData();
  DiffQuantizer dq = MakeSmall(d);
  ForwardResult f;
  for (size_t i = 0; i < 20; ++i) {
    dq.Forward(d[i], nullptr, false, &f);
    for (size_t j = 0; j < dq.num_chunks(); ++j) {
      const float* y = f.rotated.data() + j * dq.sub_dim();
      float best = std::numeric_limits<float>::max();
      size_t best_k = 0;
      for (size_t k = 0; k < dq.num_centroids(); ++k) {
        float dd = SquaredL2(y, dq.codebook().Word(j, k), dq.sub_dim());
        if (dd < best) {
          best = dd;
          best_k = k;
        }
      }
      EXPECT_EQ(f.hard_code[j], best_k);
    }
  }
}

TEST(DiffQuantizerTest, LowGumbelTauApproachesOneHot) {
  Dataset d = SmallData();
  DiffQuantizerOptions opt;
  opt.m = 4;
  opt.k = 8;
  opt.gumbel_tau = 0.05f;  // sharp relaxation
  opt.straight_through = false;
  DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 128));
  ForwardResult f;
  dq.Forward(d[0], nullptr, false, &f);
  for (size_t j = 0; j < dq.num_chunks(); ++j) {
    float mx = 0;
    for (size_t k = 0; k < dq.num_centroids(); ++k) {
      mx = std::max(mx, f.soft[j * dq.num_centroids() + k]);
    }
    EXPECT_GT(mx, 0.95f);
  }
}

TEST(DiffQuantizerTest, RotationStaysOrthonormalAfterImport) {
  Dataset d = SmallData();
  DiffQuantizer dq = MakeSmall(d);
  std::vector<float> params(dq.NumParams());
  dq.ExportParams(params.data());
  // Perturb the rotation parameters arbitrarily.
  Rng rng(7);
  for (size_t i = 0; i < dq.block_size() * dq.block_size(); ++i) {
    params[i] += rng.Gaussian(0, 0.3f);
  }
  dq.ImportParams(params.data());
  // Distance preservation <=> orthonormality.
  std::vector<float> ra(d.dim()), rb(d.dim());
  dq.Rotate(d[0], ra.data());
  dq.Rotate(d[1], rb.data());
  float orig = SquaredL2(d[0], d[1], d.dim());
  float rot = SquaredL2(ra.data(), rb.data(), d.dim());
  EXPECT_NEAR(rot, orig, 1e-2f * (1 + orig));
}

TEST(DiffQuantizerTest, DeployMatchesHardCodes) {
  Dataset d = SmallData();
  DiffQuantizer dq = MakeSmall(d);
  auto deployed = dq.Deploy();
  ForwardResult f;
  std::vector<uint8_t> code(deployed->code_size());
  for (size_t i = 0; i < 30; ++i) {
    dq.Forward(d[i], nullptr, false, &f);
    deployed->Encode(d[i], code.data());
    for (size_t j = 0; j < dq.num_chunks(); ++j) {
      EXPECT_EQ(code[j], f.hard_code[j]) << "vec " << i << " chunk " << j;
    }
  }
}

TEST(DiffQuantizerTest, BlockRotationCoversAllDims) {
  Dataset d = SmallData(200, 16);
  DiffQuantizerOptions opt;
  opt.m = 4;
  opt.k = 8;
  opt.rotation_block = 8;  // two blocks
  DiffQuantizer dq(d.dim(), opt);
  EXPECT_EQ(dq.num_blocks(), 2u);
  dq.InitCodebooks(d);
  std::vector<float> params(dq.NumParams());
  dq.ExportParams(params.data());
  Rng rng(9);
  for (size_t i = 0; i < 2 * 8 * 8; ++i) params[i] += rng.Gaussian(0, 0.2f);
  dq.ImportParams(params.data());
  std::vector<float> ra(d.dim()), rb(d.dim());
  dq.Rotate(d[0], ra.data());
  dq.Rotate(d[1], rb.data());
  EXPECT_NEAR(SquaredL2(ra.data(), rb.data(), d.dim()),
              SquaredL2(d[0], d[1], d.dim()),
              1e-2f * (1 + SquaredL2(d[0], d[1], d.dim())));
}

// The central correctness test: analytic gradients (including the rotation
// path through the matrix exponential) must match finite differences of a
// scalar loss L = <w, quantized(x)> in the DETERMINISTIC soft mode.
TEST(DiffQuantizerGradTest, MatchesFiniteDifferences) {
  Dataset d = SmallData(200, 8, 5);
  DiffQuantizerOptions opt;
  opt.m = 2;
  opt.k = 4;
  opt.straight_through = false;  // exact differentiability
  DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 64));

  Rng rng(11);
  std::vector<float> w(d.dim());
  for (auto& v : w) v = rng.Gaussian();
  const float* x = d[0];

  std::vector<float> params(dq.NumParams());
  dq.ExportParams(params.data());

  auto loss = [&](const std::vector<float>& p) -> double {
    dq.ImportParams(p.data());
    ForwardResult f;
    dq.Forward(x, nullptr, false, &f);
    double acc = 0;
    for (size_t t = 0; t < w.size(); ++t) acc += w[t] * f.quantized[t];
    return acc;
  };

  // Analytic gradient.
  dq.ImportParams(params.data());
  ForwardResult f;
  dq.Forward(x, nullptr, false, &f);
  GradBuffer g = dq.MakeGradBuffer();
  dq.Backward(x, f, w.data(), &g);
  std::vector<float> analytic(dq.NumParams());
  dq.FlattenGrads(g, analytic.data());

  // Spot-check a spread of parameters (all rotation params + 40 codebook).
  const double h = 1e-3;
  size_t rot_params = dq.block_size() * dq.block_size();
  std::vector<size_t> idxs;
  for (size_t i = 0; i < rot_params; i += 7) idxs.push_back(i);
  for (size_t i = rot_params; i < dq.NumParams(); i += 5) idxs.push_back(i);

  for (size_t idx : idxs) {
    std::vector<float> pp = params, pm = params;
    pp[idx] += h;
    pm[idx] -= h;
    double fd = (loss(pp) - loss(pm)) / (2 * h);
    EXPECT_NEAR(analytic[idx], fd, 2e-2 * (1.0 + std::fabs(fd)))
        << "param " << idx << (idx < rot_params ? " (rotation)" : " (codebook)");
  }
}

TEST(DiffQuantizerGradTest, QueryRotationPathMatchesFiniteDifferences) {
  // L = <w, R x> exercises AccumulateRotationGrad + the exp adjoint alone.
  Dataset d = SmallData(100, 8, 7);
  DiffQuantizerOptions opt;
  opt.m = 2;
  opt.k = 4;
  DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);

  Rng rng(13);
  std::vector<float> w(d.dim());
  for (auto& v : w) v = rng.Gaussian();
  const float* x = d[0];

  std::vector<float> params(dq.NumParams());
  dq.ExportParams(params.data());
  // Move off the P=0 point so the exp jacobian is non-trivial.
  for (size_t i = 0; i < dq.block_size() * dq.block_size(); ++i) {
    params[i] += rng.Gaussian(0, 0.2f);
  }
  dq.ImportParams(params.data());

  GradBuffer g = dq.MakeGradBuffer();
  dq.AccumulateRotationGrad(x, w.data(), &g);
  std::vector<float> analytic(dq.NumParams());
  dq.FlattenGrads(g, analytic.data());

  auto loss = [&](const std::vector<float>& p) -> double {
    dq.ImportParams(p.data());
    std::vector<float> rx(d.dim());
    dq.Rotate(x, rx.data());
    double acc = 0;
    for (size_t t = 0; t < w.size(); ++t) acc += w[t] * rx[t];
    return acc;
  };

  const double h = 1e-3;
  for (size_t idx = 0; idx < dq.block_size() * dq.block_size(); idx += 3) {
    std::vector<float> pp = params, pm = params;
    pp[idx] += h;
    pm[idx] -= h;
    double fd = (loss(pp) - loss(pm)) / (2 * h);
    EXPECT_NEAR(analytic[idx], fd, 1e-2 * (1.0 + std::fabs(fd))) << idx;
  }
}

}  // namespace
}  // namespace rpq::core
