// Tests for the concurrent query-serving subsystem (src/serve/):
//  (a) engine-parallel search on one MemoryIndex equals serial execution,
//  (b) sharded fan-out + top-k merge equals the unsharded result, including
//      exact-duplicate vectors and tie distances,
//  (c) FreshVamana readers make progress during Insert/Delete/Consolidate,
// plus micro-batcher equivalence and load-generator accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "core/memory_index.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/recall.h"
#include "graph/fresh_vamana.h"
#include "graph/vamana.h"
#include "ivf/ivf_index.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "quant/pq.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/ivf_service.h"
#include "serve/loadgen.h"
#include "serve/sharded.h"

namespace rpq::serve {
namespace {

struct Fixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<core::MemoryIndex> index;
};

Fixture MakeFixture(size_t n = 1000, size_t nq = 20, uint64_t seed = 7) {
  Fixture f;
  synthetic::MakeBaseAndQueries("sift", n, nq, seed, &f.base, &f.queries);
  graph::VamanaOptions vopt;
  vopt.degree = 16;
  vopt.build_beam = 32;
  f.graph = graph::BuildVamana(f.base, vopt);
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 32;
  f.pq = quant::PqQuantizer::Train(f.base, popt);
  f.index = core::MemoryIndex::Build(f.base, f.graph, *f.pq);
  return f;
}

// ------------------------------------------------------------- engine ----

TEST(ServingEngineTest, ConcurrentSearchEqualsSerial) {
  Fixture f = MakeFixture();
  MemoryIndexService service(*f.index);
  ServingEngine serial(service, {1});
  ServingEngine parallel(service, {4});

  auto a = serial.SearchAll(f.queries, 10, 48);
  auto b = parallel.SearchAll(f.queries, 10, 48);
  ASSERT_EQ(a.size(), b.size());
  for (size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q].results, b[q].results) << "query " << q;
    EXPECT_EQ(a[q].stats.hops, b[q].stats.hops);
  }
}

TEST(ServingEngineTest, SubmitResolvesFutures) {
  Fixture f = MakeFixture(600, 8);
  MemoryIndexService service(*f.index);
  ServingEngine engine(service, {2});
  std::vector<std::future<QueryResult>> futs;
  for (size_t q = 0; q < f.queries.size(); ++q) {
    futs.push_back(engine.Submit({f.queries[q], 10, 48}));
  }
  for (size_t q = 0; q < futs.size(); ++q) {
    EXPECT_EQ(futs[q].get().results,
              service.Search({f.queries[q], 10, 48}).results);
  }
}

// ------------------------------------------------------------ sharding ----

// Corpus designed to stress the merge: duplicate rows (identical vectors at
// different global ids) and distinct rows tied at exactly the same distance
// from the query. The sharded merge must reproduce the unsharded exact
// top-k bit-for-bit, because Neighbor's (dist, id) order is total.
TEST(ShardedServiceTest, ExactShardMergeEqualsUnsharded) {
  const size_t dim = 4;
  Dataset base(40, dim);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      base[i][d] = static_cast<float>((i * 7 + d * 3) % 11);
    }
  }
  // Exact duplicates placed in different shards (shard size is 10).
  for (size_t d = 0; d < dim; ++d) {
    base[5][d] = base[25][d] = base[35][d] = 1.0f;
    // Tie distances without duplication: unit vectors along each axis are
    // all at distance 1 from the origin query.
    base[12][d] = base[22][d] = base[33][d] = 0.0f;
  }
  base[12][0] = 1.0f;
  base[22][1] = 1.0f;
  base[33][2] = -1.0f;

  ExactService global(base);
  std::vector<Dataset> slices;
  std::vector<ExactService> shard_services;
  slices.reserve(4);
  shard_services.reserve(4);
  std::vector<Shard> shards;
  for (size_t s = 0; s < 4; ++s) {
    slices.push_back(base.Slice(s * 10, (s + 1) * 10));
  }
  for (size_t s = 0; s < 4; ++s) {
    shard_services.emplace_back(slices[s]);
    std::vector<uint32_t> ids(10);
    for (size_t i = 0; i < 10; ++i) ids[i] = static_cast<uint32_t>(s * 10 + i);
    shards.push_back({&shard_services[s], std::move(ids)});
  }
  ShardedService sharded(std::move(shards));

  std::vector<std::vector<float>> queries = {
      std::vector<float>(dim, 0.0f),   // ties: unit vectors all at dist 1
      std::vector<float>(dim, 1.0f),   // duplicates at dist 0
      {3.0f, 1.0f, 4.0f, 1.0f},
  };
  for (const auto& q : queries) {
    for (size_t k : {1u, 3u, 7u, 15u, 40u, 64u}) {
      auto expect = global.Search({q.data(), k, 64});
      auto got = sharded.Search({q.data(), k, 64});
      EXPECT_EQ(expect.results, got.results) << "k=" << k;
    }
  }
}

// The per-query parallel fan-out must reproduce the serial fan-out
// bit-for-bit: shards run concurrently but the (dist, global id) merge is
// applied in shard order after all complete.
TEST(ShardedServiceTest, ParallelShardFanoutEqualsSerial) {
  Fixture f = MakeFixture(1200, 16);
  std::vector<Dataset> slices;
  std::vector<ExactService> shard_services;
  const size_t num_shards = 4, per = f.base.size() / 4;
  slices.reserve(num_shards);
  shard_services.reserve(num_shards);
  auto make_shards = [&] {
    std::vector<Shard> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      std::vector<uint32_t> ids(per);
      for (size_t i = 0; i < per; ++i) {
        ids[i] = static_cast<uint32_t>(s * per + i);
      }
      shards.push_back({&shard_services[s], std::move(ids)});
    }
    return shards;
  };
  for (size_t s = 0; s < num_shards; ++s) {
    slices.push_back(f.base.Slice(s * per, (s + 1) * per));
  }
  for (size_t s = 0; s < num_shards; ++s) shard_services.emplace_back(slices[s]);

  ShardedService serial(make_shards());
  ShardedOptions popt;
  popt.parallel_shards = true;
  ShardedService parallel(make_shards(), popt);

  for (size_t q = 0; q < f.queries.size(); ++q) {
    auto a = serial.Search({f.queries[q], 10, 64});
    auto b = parallel.Search({f.queries[q], 10, 64});
    EXPECT_EQ(a.results, b.results) << "query " << q;
    EXPECT_EQ(a.stats.dist_comps, b.stats.dist_comps);
  }
}

// Shard-wait satellite: both fan-out shapes populate serve.shard_wait_ns —
// one sample per shard result a query's merge used — so hedge/timeout
// tuning has a distribution to read.
TEST(ShardedServiceTest, ShardWaitHistogramPopulated) {
  Fixture f = MakeFixture(400, 6);
  graph::VamanaOptions vopt;
  vopt.degree = 8;
  vopt.build_beam = 16;
  auto serial_deploy = BuildShardedMemoryIndex(f.base, *f.pq, 3, vopt);
  ShardedOptions popt;
  popt.parallel_shards = true;
  auto parallel_deploy = BuildShardedMemoryIndex(f.base, *f.pq, 3, vopt, popt);
  const size_t n_serial = serial_deploy.shards.size();
  const size_t n_parallel = parallel_deploy.shards.size();

  obs::SetMetricsEnabled(true);
  const obs::Snapshot before = obs::TakeSnapshot();
  for (size_t q = 0; q < f.queries.size(); ++q) {
    serial_deploy.service->Search({f.queries[q], 5, 32});
    parallel_deploy.service->Search({f.queries[q], 5, 32});
  }
  const obs::Snapshot after = obs::TakeSnapshot();
  obs::SetMetricsEnabled(false);

  const obs::WindowedView view = obs::DiffSnapshots(before, after, 1.0);
  const obs::WindowedHistogram* waits =
      view.FindHistogram("serve.shard_wait_ns");
  ASSERT_NE(waits, nullptr);
  // Every shard of every query answered (no timeouts configured), so every
  // fan-out contributed exactly one wait sample per shard.
  EXPECT_EQ(waits->interval.count,
            f.queries.size() * (n_serial + n_parallel));
  EXPECT_GT(waits->interval.sum, 0u);
}

TEST(ShardedServiceTest, ShardedMemoryIndexRecallMatchesUnsharded) {
  Fixture f = MakeFixture(1200, 24);
  auto gt = ComputeGroundTruth(f.base, f.queries, 10);

  MemoryIndexService single(*f.index);
  graph::VamanaOptions vopt;
  vopt.degree = 16;
  vopt.build_beam = 32;
  auto sharded = BuildShardedMemoryIndex(f.base, *f.pq, 3, vopt);
  ASSERT_EQ(sharded.shards.size(), 3u);

  ServingEngine e1(single, {2});
  ServingEngine e2(*sharded.service, {2});
  auto r1 = e1.SearchAll(f.queries, 10, 64);
  auto r2 = e2.SearchAll(f.queries, 10, 64);
  std::vector<std::vector<Neighbor>> res1(r1.size()), res2(r2.size());
  for (size_t q = 0; q < r1.size(); ++q) {
    res1[q] = r1[q].results;
    res2[q] = r2[q].results;
  }
  double rec1 = eval::MeanRecallAtK(res1, gt, 10);
  double rec2 = eval::MeanRecallAtK(res2, gt, 10);
  // Each shard searches its full slice with the same beam, so the sharded
  // deployment explores at least as much of the corpus; its recall must be
  // in the same band as the single index (sharding must not break search).
  EXPECT_GT(rec2, rec1 - 0.05);
}

TEST(ShardedServiceTest, ShardCountClampedToCorpus) {
  Fixture f = MakeFixture(40, 4);
  graph::VamanaOptions vopt;
  vopt.degree = 8;
  vopt.build_beam = 16;
  auto sharded = BuildShardedMemoryIndex(f.base, *f.pq, 7, vopt);
  size_t covered = 0;
  for (const auto& s : sharded.shards) covered += s->base.size();
  EXPECT_EQ(covered, f.base.size());
  auto res = sharded.service->Search({f.queries[0], 5, 32});
  EXPECT_EQ(res.results.size(), 5u);
}

// ------------------------------------------------------------- batcher ----

TEST(MicroBatcherTest, BatchedResultsMatchDirectSearch) {
  Fixture f = MakeFixture(800, 32);
  MemoryIndexService service(*f.index);
  ServingEngine engine(service, {2});
  BatcherOptions bopt;
  bopt.max_batch = 8;
  bopt.max_wait = std::chrono::microseconds(50000);  // force size-triggered
  MicroBatcher batcher(engine, bopt);

  std::vector<std::future<QueryResult>> futs;
  for (size_t q = 0; q < f.queries.size(); ++q) {
    futs.push_back(batcher.Submit({f.queries[q], 10, 48}));
  }
  batcher.Flush();
  for (size_t q = 0; q < futs.size(); ++q) {
    EXPECT_EQ(futs[q].get().results,
              service.Search({f.queries[q], 10, 48}).results)
        << "query " << q;
  }
  EXPECT_EQ(batcher.queries_submitted(), f.queries.size());
  EXPECT_LE(batcher.batches_dispatched(), f.queries.size() / bopt.max_batch + 1);
}

TEST(MicroBatcherTest, TimerFlushesPartialBatch) {
  Fixture f = MakeFixture(400, 4);
  MemoryIndexService service(*f.index);
  ServingEngine engine(service, {1});
  BatcherOptions bopt;
  bopt.max_batch = 100;  // never filled
  bopt.max_wait = std::chrono::microseconds(2000);
  MicroBatcher batcher(engine, bopt);
  auto fut = batcher.Submit({f.queries[0], 5, 32});
  // No Flush: the deadline must dispatch the singleton batch.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(fut.get().results, service.Search({f.queries[0], 5, 32}).results);
}

// ------------------------------------------------------------- loadgen ----

TEST(LoadgenTest, SummarizeLatenciesPercentiles) {
  std::vector<double> lat;
  for (int i = 1; i <= 100; ++i) lat.push_back(i * 1e-3);  // 1..100 ms
  LatencySummary s = SummarizeLatencies(lat);
  EXPECT_NEAR(s.p50_ms, 50.0, 1.5);
  EXPECT_NEAR(s.p95_ms, 95.0, 1.5);
  EXPECT_NEAR(s.p99_ms, 99.0, 1.5);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms);
}

TEST(LoadgenTest, ClosedLoopCompletesAndAccounts) {
  Fixture f = MakeFixture(600, 16);
  MemoryIndexService service(*f.index);
  LoadgenOptions opt;
  opt.k = 10;
  opt.beam_width = 32;
  opt.threads = 3;
  opt.total_queries = 200;
  LoadReport rep = RunClosedLoop(service, f.queries, opt);
  EXPECT_EQ(rep.completed, 200u);
  EXPECT_GT(rep.qps, 0.0);
  EXPECT_GT(rep.latency.p50_ms, 0.0);
  EXPECT_LE(rep.latency.p50_ms, rep.latency.p99_ms);
  EXPECT_GT(rep.mean_hops, 0.0);
}

TEST(LoadgenTest, OpenLoopCompletesAtOfferedRate) {
  Fixture f = MakeFixture(600, 16);
  MemoryIndexService service(*f.index);
  ServingEngine engine(service, {2});
  LoadgenOptions opt;
  opt.k = 10;
  opt.beam_width = 32;
  opt.total_queries = 60;
  opt.arrival_qps = 3000;
  LoadReport rep = RunOpenLoop(engine, f.queries, opt);
  EXPECT_EQ(rep.completed, 60u);
  EXPECT_DOUBLE_EQ(rep.offered_qps, 3000.0);
  EXPECT_GT(rep.latency.p50_ms, 0.0);
}

// ---------------------------------------------------- eval integration ----

TEST(ParallelSweepTest, ParallelReplayKeepsRecallIdentical) {
  Fixture f = MakeFixture(800, 16);
  auto gt = ComputeGroundTruth(f.base, f.queries, 10);
  std::atomic<size_t> calls{0};
  eval::SearchFn fn = [&](const float* q, size_t k, size_t beam) {
    calls.fetch_add(1, std::memory_order_relaxed);
    auto out = f.index->Search(q, k, {beam, k});
    eval::SearchOutcome o;
    o.results = std::move(out.results);
    o.hops = out.stats.hops;
    return o;
  };
  std::vector<size_t> beams{16, 48};
  auto serial = eval::SweepBeamWidths(fn, f.queries, gt, 10, beams, {1});
  size_t serial_calls = calls.exchange(0);
  auto parallel = eval::SweepBeamWidths(fn, f.queries, gt, 10, beams, {4});
  EXPECT_EQ(serial_calls, calls.load());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].recall, parallel[i].recall);
    EXPECT_DOUBLE_EQ(serial[i].mean_hops, parallel[i].mean_hops);
  }
}

// ------------------------------------------- streaming backend (c) -------

TEST(FreshVamanaServeTest, ReadersMakeProgressDuringMutation) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 800, 8, /*seed=*/21, &base,
                                &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 12;
  vopt.build_beam = 24;
  graph::FreshVamanaIndex index(base.dim(), vopt);
  for (size_t i = 0; i < 300; ++i) index.Insert(base[i]);

  FreshVamanaService service(index);
  ServingEngine engine(service, {3});

  std::atomic<bool> done{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t q = t;
      while (!done.load(std::memory_order_acquire)) {
        auto r = service.Search({queries[q % queries.size()], 5, 32});
        if (!r.results.empty()) served.fetch_add(1);
        ++q;
      }
    });
  }

  // Writer: the full FreshDiskANN lifecycle while reads are in flight.
  for (size_t i = 300; i < 800; ++i) {
    index.Insert(base[i]);
    if (i % 50 == 0) index.Delete(static_cast<uint32_t>(i - 250));
    if (i % 250 == 0) index.Consolidate();
  }
  index.Consolidate();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_GT(served.load(), 0u);
  // Post-churn sanity: results are live and the engine path agrees with
  // direct search.
  auto direct = index.Search(queries[0], 10, 64);
  auto via = service.Search({queries[0], 10, 64});
  EXPECT_EQ(direct, via.results);
  for (const auto& nb : direct) EXPECT_FALSE(index.IsDeleted(nb.id));
}

// ------------------------------------------------------ IVF backend ------

// The IVF flat-scan backend behind the same serving interface: engine
// replay (parallel), micro-batched submission (which rides
// IvfIndex::SearchBatch and its multi-query LUT kernel), and direct index
// calls must all agree. A QuerySpec's beam_width carries nprobe for IVF.
TEST(IvfServiceTest, EngineAndBatcherMatchDirectSearch) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 1200, 10, /*seed=*/19, &base,
                                &queries);
  quant::PqOptions popt;
  popt.m = 8;
  popt.nbits = 4;
  popt.kmeans_iters = 3;
  auto pq = quant::PqQuantizer::Train(base, popt);
  ivf::IvfOptions iopt;
  iopt.nlist = 8;
  auto index = ivf::IvfIndex::Build(base, *pq, iopt);
  IvfService service(*index);

  const size_t k = 10, nprobe = 4;
  std::vector<std::vector<Neighbor>> direct(queries.size());
  ivf::IvfSearchOptions sopt;
  sopt.nprobe = nprobe;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto res = index->Search(queries[q], k, sopt);
    direct[q] = std::move(res.results);
  }

  ServingEngine engine(service, {3});
  auto via_engine = engine.SearchAll(queries, k, nprobe);
  ASSERT_EQ(via_engine.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(via_engine[q].results, direct[q]) << "q=" << q;
    EXPECT_EQ(via_engine[q].stats.hops, nprobe);  // lists probed
  }

  MicroBatcher batcher(engine, {4, std::chrono::microseconds(500)});
  std::vector<std::future<QueryResult>> futures;
  for (size_t q = 0; q < queries.size(); ++q) {
    futures.push_back(batcher.Submit({queries[q], k, nprobe}));
  }
  batcher.Flush();
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(futures[q].get().results, direct[q]) << "q=" << q;
  }
  EXPECT_EQ(batcher.queries_submitted(), queries.size());
}

}  // namespace
}  // namespace rpq::serve
