// Fault-tolerance tests: crash-safe index formats (CRC trailers, atomic
// writes, legacy fallbacks), the seeded injection harness (determinism,
// plan parsing), disk retry/deadline degradation, sharded stall / timeout /
// hedge behavior, and engine admission control. Every failure here must be
// a clean Status or a degraded result — never an abort.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/file_io.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "disk/ssd_simulator.h"
#include "graph/vamana.h"
#include "ivf/ivf_index.h"
#include "quant/pq.h"
#include "quant/serialize.h"
#include "serve/engine.h"
#include "serve/ivf_service.h"
#include "serve/search_service.h"
#include "serve/sharded.h"

namespace rpq {
namespace {

// ---------------------------------------------------------------- helpers

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

// Flips one bit in the byte at `offset` (negative = from the end).
void FlipBit(const std::string& path, long offset) {
  if (offset < 0) offset += FileSize(path);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

std::unique_ptr<quant::PqQuantizer> SmallModel(const Dataset& d) {
  quant::PqOptions opt;
  opt.m = 4;
  opt.k = 16;
  opt.kmeans_iters = 4;
  return quant::PqQuantizer::Train(d, opt);
}

// ------------------------------------------------------ CRC32 / AtomicFile

TEST(CrcTest, KnownAnswer) {
  // The standard (zlib-polynomial) check value.
  EXPECT_EQ(io::Crc32Update(0, "123456789", 9), 0xCBF43926u);
}

TEST(AtomicFileTest, CommitPublishesAbandonDoesNot) {
  const std::string committed = TempPath("atomic_commit.bin");
  const std::string abandoned = TempPath("atomic_abandon.bin");
  {
    io::AtomicFile f(committed);
    ASSERT_TRUE(static_cast<bool>(f));
    std::fputs("payload", f.get());
    ASSERT_TRUE(f.Commit().ok());
  }
  EXPECT_TRUE(FileExists(committed));
  EXPECT_FALSE(FileExists(committed + ".tmp"));
  {
    io::AtomicFile f(abandoned);
    ASSERT_TRUE(static_cast<bool>(f));
    std::fputs("partial", f.get());
    // No Commit: simulated crash mid-save.
  }
  EXPECT_FALSE(FileExists(abandoned));
  EXPECT_FALSE(FileExists(abandoned + ".tmp"));
  std::remove(committed.c_str());
}

// ------------------------------------------------------------ fault plans

TEST(FaultPlanTest, ParsesPointsAndSeed) {
  fault::Plan plan;
  std::string err;
  ASSERT_TRUE(
      fault::ParsePlan("disk_read_error=0.25,shard_stall=1,seed=9", &plan, &err))
      << err;
  EXPECT_DOUBLE_EQ(plan.rate(fault::Point::kDiskReadError), 0.25);
  EXPECT_DOUBLE_EQ(plan.rate(fault::Point::kShardStall), 1.0);
  EXPECT_DOUBLE_EQ(plan.rate(fault::Point::kDiskLatencySpike), 0.0);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlanTest, RejectsUnknownPointAndBadRate) {
  fault::Plan plan;
  std::string err;
  EXPECT_FALSE(fault::ParsePlan("warp_core_breach=1", &plan, &err));
  EXPECT_FALSE(fault::ParsePlan("disk_read_error=nope", &plan, &err));
  EXPECT_FALSE(fault::ParsePlan("disk_read_error=2.0", &plan, &err));
}

TEST(FaultInjectorTest, DecisionsAreSeedDeterministic) {
  fault::Plan plan;
  plan.set_rate(fault::Point::kDiskReadError, 0.3);
  plan.seed = 7;
  fault::Injector a(plan), b(plan);
  std::vector<bool> fa, fb;
  size_t fired = 0;
  for (int i = 0; i < 200; ++i) {
    bool f = a.FireQuiet(fault::Point::kDiskReadError);
    fired += f ? 1 : 0;
    fa.push_back(f);
    fb.push_back(b.FireQuiet(fault::Point::kDiskReadError));
  }
  EXPECT_EQ(fa, fb);       // same plan -> identical decision sequence
  EXPECT_GT(fired, 20u);   // ~60 expected at rate 0.3
  EXPECT_LT(fired, 120u);
  EXPECT_EQ(a.calls(fault::Point::kDiskReadError), 200u);

  // A different seed gives a different sequence (with overwhelming odds).
  plan.seed = 8;
  fault::Injector c(plan);
  std::vector<bool> fc;
  for (int i = 0; i < 200; ++i) {
    fc.push_back(c.FireQuiet(fault::Point::kDiskReadError));
  }
  EXPECT_NE(fa, fc);
}

TEST(FaultInjectorTest, RateEdgesNeverAndAlways) {
  fault::Plan plan;
  plan.set_rate(fault::Point::kShardStall, 1.0);
  fault::Injector inj(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.FireQuiet(fault::Point::kShardStall));
    EXPECT_FALSE(inj.FireQuiet(fault::Point::kAllocFailure));  // rate 0
  }
}

TEST(FaultInjectorTest, ScopedPlanInstallsAndRestores) {
  const bool was_enabled = fault::GlobalFaultsEnabled();
  {
    fault::Plan plan;
    plan.set_rate(fault::Point::kAllocFailure, 1.0);
    fault::ScopedPlan scoped(plan);
    EXPECT_TRUE(fault::GlobalFaultsEnabled());
    EXPECT_TRUE(fault::GlobalInjector().FireQuiet(fault::Point::kAllocFailure));
  }
  EXPECT_EQ(fault::GlobalFaultsEnabled(), was_enabled);
}

// ------------------------------------------------------------ SSD faults

TEST(SsdFaultTest, TransientErrorsSurfaceAsStatusAndCount) {
  disk::SsdOptions opt;
  opt.transient_error_rate = 1.0;
  disk::SsdSimulator ssd(4, 256, opt);
  std::vector<uint8_t> buf(ssd.block_bytes());
  disk::IoStats stats;
  for (int i = 0; i < 5; ++i) {
    Status s = ssd.ReadBlock(0, buf.data(), buf.size(), &stats);
    EXPECT_FALSE(s.ok());
  }
  EXPECT_EQ(stats.io_errors, 5u);
  // A failed attempt still burned device time.
  EXPECT_GT(stats.simulated_seconds, 0.0);
}

TEST(SsdFaultTest, OutOfRangeBlockIsStatusNotAbort) {
  disk::SsdSimulator ssd(2, 128, {});
  std::vector<uint8_t> buf(ssd.block_bytes());
  disk::IoStats stats;
  Status s = ssd.ReadBlock(99, buf.data(), buf.size(), &stats);
  EXPECT_FALSE(s.ok());
}

TEST(SsdFaultTest, LatencySpikesMultiplyCost) {
  disk::SsdOptions plain_opt;
  plain_opt.read_latency_seconds = 1e-4;
  disk::SsdOptions spiky_opt = plain_opt;
  spiky_opt.latency_spike_rate = 1.0;
  spiky_opt.latency_spike_multiplier = 20.0;
  disk::SsdSimulator plain(4, 256, plain_opt), spiky(4, 256, spiky_opt);
  std::vector<uint8_t> buf(plain.block_bytes());
  disk::IoStats ps, ss;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(plain.ReadBlock(0, buf.data(), buf.size(), &ps).ok());
    ASSERT_TRUE(spiky.ReadBlock(0, buf.data(), buf.size(), &ss).ok());
  }
  EXPECT_EQ(ss.latency_spikes, 10u);
  EXPECT_NEAR(ss.simulated_seconds, 20.0 * ps.simulated_seconds, 1e-9);
}

// ----------------------------------------------------- disk index + serve

class ServingFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synthetic::MakeBaseAndQueries("sift", 1200, 8, 17, &base_, &queries_);
    graph::VamanaOptions vopt;
    vopt.degree = 16;
    vopt.build_beam = 32;
    graph_ = graph::BuildVamana(base_, vopt);
    model_ = SmallModel(base_);
  }

  Dataset base_, queries_;
  graph::ProximityGraph graph_;
  std::unique_ptr<quant::PqQuantizer> model_;
};

TEST_F(ServingFaultTest, DiskRetriesRecoverTransientErrors) {
  disk::DiskIndexOptions opt;
  opt.ssd.transient_error_rate = 0.05;
  opt.ssd.fault_seed = 3;
  auto index = disk::DiskIndex::Build(base_, graph_, *model_, opt);
  graph::BeamSearchOptions bopt;
  bopt.beam_width = 32;
  bopt.k = 10;
  size_t retries = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto res = index->Search(queries_[q], 10, bopt);
    EXPECT_EQ(res.results.size(), 10u) << "query " << q;
    retries += res.io.retries;
    // Every retry was provoked by an error; a block that exhausts its
    // retries adds a final un-retried error, so retries <= errors.
    EXPECT_LE(res.io.retries, res.io.io_errors);
  }
  // At a 5% error rate over hundreds of block reads, retries must happen —
  // deterministically, from the seeded plan.
  EXPECT_GT(retries, 0u);
}

TEST_F(ServingFaultTest, DiskDeadlineReturnsDegradedPartial) {
  auto index = disk::DiskIndex::Build(base_, graph_, *model_);
  serve::DiskIndexService service(*index);
  serve::QuerySpec spec{queries_[0], 10, 32};
  spec.deadline_us = 1;
  serve::QueryResult r = service.Search(spec);
  EXPECT_TRUE(r.deadline_exceeded);
  EXPECT_TRUE(r.degraded);
  // Unconstrained, the same query serves fine.
  spec.deadline_us = 0;
  r = service.Search(spec);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.results.size(), 10u);
}

TEST_F(ServingFaultTest, MemoryDeadlineReturnsDegradedPartial) {
  auto index = core::MemoryIndex::Build(base_, graph_, *model_);
  serve::MemoryIndexService service(*index);
  serve::QuerySpec spec{queries_[0], 10, 64};
  spec.deadline_us = 1;
  serve::QueryResult r = service.Search(spec);
  EXPECT_TRUE(r.deadline_exceeded);
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.results.empty());  // best-so-far, ranked
  spec.deadline_us = 0;
  r = service.Search(spec);
  EXPECT_FALSE(r.deadline_exceeded);
}

TEST_F(ServingFaultTest, IvfDeadlineReturnsDegraded) {
  ivf::IvfOptions iopt;
  iopt.nlist = 13;
  iopt.kmeans_iters = 4;
  auto index = ivf::IvfIndex::Build(base_, *model_, iopt);
  serve::IvfService service(*index);
  size_t exceeded = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    serve::QuerySpec spec{queries_[q], 10, 13};  // beam slot = nprobe
    spec.deadline_us = 1;
    serve::QueryResult r = service.Search(spec);
    if (r.deadline_exceeded) {
      ++exceeded;
      EXPECT_TRUE(r.degraded);
    }
  }
  EXPECT_GT(exceeded, 0u);
  serve::QuerySpec spec{queries_[0], 10, 13};
  serve::QueryResult r = service.Search(spec);
  EXPECT_FALSE(r.deadline_exceeded);
  EXPECT_EQ(r.results.size(), 10u);
}

// ------------------------------------------------------------ sharded

TEST_F(ServingFaultTest, StalledShardsAreAbandonedNotWaitedFor) {
  serve::ShardedOptions sopt;
  sopt.parallel_shards = true;
  sopt.shard_timeout_us = 20000;      // 20ms cap
  sopt.injected_stall_us = 500000;    // stalled shards sleep 500ms
  sopt.hedge_delay_us = 0;            // no rescue: shards must be lost
  auto deployment =
      serve::BuildShardedMemoryIndex(base_, *model_, 3, {}, sopt);
  ASSERT_EQ(deployment.service->num_shards(), 3u);

  fault::Plan plan;
  plan.set_rate(fault::Point::kShardStall, 1.0);  // every primary stalls
  fault::ScopedPlan scoped(plan);
  serve::QueryResult r =
      deployment.service->Search({queries_[0], 10, 32});
  EXPECT_EQ(r.shards_lost, 3u);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.results.empty());
  // Teardown note: ~ShardedService drains the abandoned stalled tasks, so
  // this test also exercises the destructor ordering contract.
}

TEST_F(ServingFaultTest, HedgesRescueStalledShards) {
  serve::ShardedOptions sopt;
  sopt.parallel_shards = true;
  sopt.shard_timeout_us = 2000000;   // generous cap (sanitizer-friendly)
  sopt.hedge_delay_us = 2000;        // hedge after 2ms
  sopt.injected_stall_us = 500000;   // primaries sleep 500ms
  auto deployment =
      serve::BuildShardedMemoryIndex(base_, *model_, 3, {}, sopt);

  // Clean reference answer first (no faults installed).
  serve::QueryResult clean =
      deployment.service->Search({queries_[0], 10, 32});
  ASSERT_EQ(clean.results.size(), 10u);

  fault::Plan plan;
  plan.set_rate(fault::Point::kShardStall, 1.0);  // hedges never roll this
  fault::ScopedPlan scoped(plan);
  serve::QueryResult hedged =
      deployment.service->Search({queries_[0], 10, 32});
  EXPECT_TRUE(hedged.hedged);
  EXPECT_EQ(hedged.shards_lost, 0u);
  ASSERT_EQ(hedged.results.size(), clean.results.size());
  for (size_t i = 0; i < clean.results.size(); ++i) {
    EXPECT_EQ(hedged.results[i].id, clean.results[i].id) << "rank " << i;
  }
}

// ------------------------------------------------------- admission control

TEST_F(ServingFaultTest, ShedWatermarkRefusesExcessLoad) {
  serve::FunctionService slow([](const serve::QuerySpec& q) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    serve::QueryResult r;
    r.results.resize(q.k);
    return r;
  });
  serve::EngineOptions eopt;
  eopt.threads = 1;
  eopt.shed_watermark = 1;
  serve::ServingEngine engine(slow, eopt);
  std::vector<std::future<serve::QueryResult>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(engine.Submit({queries_[0], 10, 32}));
  }
  size_t shed = 0, served = 0;
  for (auto& f : futs) {
    serve::QueryResult r = f.get();
    if (r.shed) {
      ++shed;
      EXPECT_TRUE(r.degraded);
      EXPECT_TRUE(r.results.empty());
    } else {
      ++served;
    }
  }
  // The first query (inflight depth 1) is admitted; the rest arrive while
  // it still runs (100ms vs microsecond submissions) and must shed.
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(shed, 3u);
}

TEST_F(ServingFaultTest, BrownoutShrinksAdmittedQueries) {
  std::mutex mu;
  std::vector<size_t> beams;
  serve::FunctionService slow([&](const serve::QuerySpec& q) {
    {
      std::lock_guard<std::mutex> lock(mu);
      beams.push_back(q.beam_width);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return serve::QueryResult{};
  });
  serve::EngineOptions eopt;
  eopt.threads = 1;
  eopt.brownout_watermark = 1;  // second concurrent query browns out
  serve::ServingEngine engine(slow, eopt);
  auto f1 = engine.Submit({queries_[0], 10, 64});
  auto f2 = engine.Submit({queries_[1], 10, 64});
  f1.get();
  f2.get();
  ASSERT_EQ(beams.size(), 2u);
  EXPECT_EQ(beams[0], 64u);  // admitted at depth 1: untouched
  EXPECT_EQ(beams[1], 32u);  // depth 2 > watermark: beam halved
}

TEST_F(ServingFaultTest, AllocFailureInjectionForcesShed) {
  serve::FunctionService fast(
      [](const serve::QuerySpec&) { return serve::QueryResult{}; });
  serve::ServingEngine engine(fast, {1});
  fault::Plan plan;
  plan.set_rate(fault::Point::kAllocFailure, 1.0);
  fault::ScopedPlan scoped(plan);
  serve::QueryResult r = engine.Submit({queries_[0], 10, 32}).get();
  EXPECT_TRUE(r.shed);
  EXPECT_TRUE(r.degraded);
}

// ------------------------------------------------- crash-safe file formats

TEST(CrashSafeFormatTest, QuantizerBitFlipIsCleanChecksumError) {
  Dataset d = synthetic::MakeGmm(300, {}, 21);
  auto pq = SmallModel(d);
  const std::string path = TempPath("flip.rpqq");
  ASSERT_TRUE(quant::SaveQuantizer(*pq, path).ok());
  FlipBit(path, FileSize(path) / 2);  // mid-payload: shape checks still pass
  auto loaded = quant::LoadQuantizer(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CrashSafeFormatTest, QuantizerTruncationIsCleanError) {
  Dataset d = synthetic::MakeGmm(300, {}, 21);
  auto pq = SmallModel(d);
  const std::string path = TempPath("trunc.rpqq");
  ASSERT_TRUE(quant::SaveQuantizer(*pq, path).ok());
  ASSERT_EQ(truncate(path.c_str(), FileSize(path) - 2), 0);
  EXPECT_FALSE(quant::LoadQuantizer(path).ok());
  std::remove(path.c_str());
}

TEST(CrashSafeFormatTest, LegacyV1QuantizerStillLoads) {
  // Hand-written v1 file: pre-CRC header + zero codebook, no trailer.
  const std::string path = TempPath("legacy.rpqq");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t version = 1, dim = 32, m = 4, k = 16;
  const uint8_t has_rot = 0;
  std::fwrite("RPQQ", 1, 4, f);
  std::fwrite(&version, 4, 1, f);
  std::fwrite(&dim, 4, 1, f);
  std::fwrite(&m, 4, 1, f);
  std::fwrite(&k, 4, 1, f);
  std::fwrite(&has_rot, 1, 1, f);
  std::vector<float> book(size_t{m} * k * (dim / m), 0.25f);
  std::fwrite(book.data(), sizeof(float), book.size(), f);
  std::fclose(f);
  auto loaded = quant::LoadQuantizer(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->dim(), 32u);
  std::remove(path.c_str());
}

TEST(CrashSafeFormatTest, CodesBitFlipAndLegacyLength) {
  std::vector<uint8_t> codes(64 * 4);
  for (size_t i = 0; i < codes.size(); ++i) codes[i] = uint8_t(i * 7);
  const std::string path = TempPath("codes.rpqc");
  ASSERT_TRUE(quant::SaveCodes(codes, 4, path).ok());
  size_t cs = 0;
  ASSERT_TRUE(quant::LoadCodes(path, &cs).ok());
  FlipBit(path, -6);  // inside the payload, ahead of the CRC trailer
  auto corrupt = quant::LoadCodes(path, &cs);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().ToString().find("checksum"), std::string::npos);

  // Legacy layout: same header + payload but no trailer — accepted.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t n = codes.size() / 4;
  const uint32_t width = 4;
  std::fwrite("RPQC", 1, 4, f);
  std::fwrite(&n, 8, 1, f);
  std::fwrite(&width, 4, 1, f);
  std::fwrite(codes.data(), 1, codes.size(), f);
  std::fclose(f);
  auto legacy = quant::LoadCodes(path, &cs);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy.value(), codes);
  std::remove(path.c_str());
}

TEST(CrashSafeFormatTest, GraphRoundTripFlipAndLegacy) {
  graph::ProximityGraph g(4);
  g.set_entry_point(2);
  g.Neighbors(0) = {1, 2};
  g.Neighbors(1) = {0, 3};
  g.Neighbors(2) = {3};
  g.Neighbors(3) = {0, 1, 2};
  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(g.Save(path).ok());
  auto round = graph::ProximityGraph::Load(path);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().entry_point(), 2u);
  EXPECT_EQ(round.value().Neighbors(3), g.Neighbors(3));

  FlipBit(path, FileSize(path) / 2);
  EXPECT_FALSE(graph::ProximityGraph::Load(path).ok());

  ASSERT_TRUE(g.Save(path).ok());
  ASSERT_EQ(truncate(path.c_str(), FileSize(path) - 3), 0);
  EXPECT_FALSE(graph::ProximityGraph::Load(path).ok());

  // Legacy layout (no magic, no trailer): header starts at the raw count.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t n = 2;
  const uint32_t entry = 1;
  std::fwrite(&n, 8, 1, f);
  std::fwrite(&entry, 4, 1, f);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t deg = 1, nb = (v + 1) % 2;
    std::fwrite(&deg, 4, 1, f);
    std::fwrite(&nb, 4, 1, f);
  }
  std::fclose(f);
  auto legacy = graph::ProximityGraph::Load(path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy.value().num_vertices(), 2u);
  EXPECT_EQ(legacy.value().entry_point(), 1u);
  std::remove(path.c_str());
}

TEST(CrashSafeFormatTest, IvfBitFlipIsCleanError) {
  Dataset base = synthetic::MakeGmm(500, {}, 33);
  auto pq = SmallModel(base);
  ivf::IvfOptions opt;
  opt.nlist = 8;
  opt.kmeans_iters = 4;
  auto index = ivf::IvfIndex::Build(base, *pq, opt);
  const std::string path = TempPath("index.rpqi");
  ASSERT_TRUE(index->Save(path).ok());
  ASSERT_TRUE(ivf::IvfIndex::Load(path, *pq).ok());
  FlipBit(path, FileSize(path) / 2);
  auto corrupt = ivf::IvfIndex::Load(path, *pq);
  EXPECT_FALSE(corrupt.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rpq
