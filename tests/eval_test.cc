#include <gtest/gtest.h>

#include "eval/harness.h"
#include "eval/recall.h"

namespace rpq::eval {
namespace {

TEST(RecallTest, ExactMatchIsOne) {
  std::vector<Neighbor> res{{0.1f, 1}, {0.2f, 2}, {0.3f, 3}};
  std::vector<Neighbor> gt{{0.1f, 1}, {0.2f, 2}, {0.3f, 3}};
  EXPECT_DOUBLE_EQ(RecallAtK(res, gt, 3), 1.0);
}

TEST(RecallTest, PartialOverlap) {
  std::vector<Neighbor> res{{0.1f, 1}, {0.2f, 9}, {0.3f, 3}};
  std::vector<Neighbor> gt{{0.1f, 1}, {0.2f, 2}, {0.3f, 3}};
  EXPECT_NEAR(RecallAtK(res, gt, 3), 2.0 / 3.0, 1e-12);
}

TEST(RecallTest, OrderDoesNotMatter) {
  std::vector<Neighbor> res{{0.3f, 3}, {0.1f, 1}};
  std::vector<Neighbor> gt{{0.1f, 1}, {0.3f, 3}};
  EXPECT_DOUBLE_EQ(RecallAtK(res, gt, 2), 1.0);
}

TEST(RecallTest, EmptyResultsZero) {
  std::vector<Neighbor> res;
  std::vector<Neighbor> gt{{0.1f, 1}};
  EXPECT_DOUBLE_EQ(RecallAtK(res, gt, 1), 0.0);
}

TEST(QpsAtRecallTest, InterpolatesBetweenPoints) {
  std::vector<OperatingPoint> curve;
  curve.push_back({8, 0.80, 1000.0, 10, 0});
  curve.push_back({16, 0.90, 500.0, 20, 0});
  bool reached = false;
  double qps = QpsAtRecall(curve, 0.85, &reached);
  EXPECT_TRUE(reached);
  EXPECT_NEAR(qps, 750.0, 1e-9);
}

TEST(QpsAtRecallTest, BelowCurveUsesFirstPoint) {
  std::vector<OperatingPoint> curve;
  curve.push_back({8, 0.80, 1000.0, 10, 0});
  curve.push_back({16, 0.90, 500.0, 20, 0});
  bool reached = false;
  EXPECT_DOUBLE_EQ(QpsAtRecall(curve, 0.5, &reached), 1000.0);
  EXPECT_TRUE(reached);
}

TEST(QpsAtRecallTest, UnreachedTargetFlagged) {
  std::vector<OperatingPoint> curve;
  curve.push_back({8, 0.80, 1000.0, 10, 0});
  bool reached = true;
  double qps = QpsAtRecall(curve, 0.95, &reached);
  EXPECT_FALSE(reached);
  EXPECT_DOUBLE_EQ(qps, 1000.0);  // best-effort value
}

TEST(HopsAtRecallTest, Interpolates) {
  std::vector<OperatingPoint> curve;
  curve.push_back({8, 0.80, 1000.0, 10, 0});
  curve.push_back({16, 0.90, 500.0, 30, 0});
  EXPECT_NEAR(HopsAtRecall(curve, 0.85), 20.0, 1e-9);
}

TEST(SweepTest, RunsSearchFnForEveryBeamAndQuery) {
  Dataset queries(3, 2);
  std::vector<std::vector<Neighbor>> gt(3, {{0.0f, 0}});
  size_t calls = 0;
  auto curve = SweepBeamWidths(
      [&](const float*, size_t k, size_t beam) {
        ++calls;
        SearchOutcome out;
        out.results = {{0.0f, beam >= 16 ? 0u : 9u}};
        out.hops = beam;
        (void)k;
        return out;
      },
      queries, gt, 1, {8, 16});
  EXPECT_EQ(calls, 6u);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.0);  // wrong id at beam 8
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].mean_hops, 8.0);
}

TEST(SweepTest, SimulatedIoLowersQps) {
  Dataset queries(4, 2);
  std::vector<std::vector<Neighbor>> gt(4, {{0.0f, 0}});
  auto make = [&](double io) {
    return SweepBeamWidths(
        [io](const float*, size_t, size_t) {
          SearchOutcome out;
          out.results = {{0.0f, 0}};
          out.simulated_io_seconds = io;
          return out;
        },
        queries, gt, 1, {8});
  };
  auto fast = make(0.0);
  auto slow = make(0.01);
  EXPECT_GT(fast[0].qps, slow[0].qps);
  EXPECT_NEAR(slow[0].mean_io_ms, 10.0, 1e-6);
}

}  // namespace
}  // namespace rpq::eval
