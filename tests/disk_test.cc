#include <gtest/gtest.h>

#include "common/distance.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "disk/ssd_simulator.h"
#include "eval/recall.h"
#include "graph/vamana.h"
#include "quant/pq.h"

namespace rpq::disk {
namespace {

TEST(SsdSimulatorTest, RoundsBlockToSectors) {
  SsdOptions opt;
  opt.sector_bytes = 512;
  SsdSimulator ssd(4, 600, opt);
  EXPECT_EQ(ssd.block_bytes(), 1024u);
  EXPECT_EQ(ssd.sectors_per_block(), 2u);
  EXPECT_EQ(ssd.DeviceBytes(), 4096u);
}

TEST(SsdSimulatorTest, ReadBackWhatWasWritten) {
  SsdSimulator ssd(2, 100, {});
  std::vector<uint8_t> in(100);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i);
  ssd.WriteBlock(1, in.data(), in.size());
  std::vector<uint8_t> out(100, 0);
  IoStats stats;
  ssd.ReadBlock(1, out.data(), out.size(), &stats);
  EXPECT_EQ(in, out);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.bytes, ssd.block_bytes());
}

TEST(SsdSimulatorTest, LatencyAccountingIsDeterministic) {
  SsdOptions opt;
  opt.read_latency_seconds = 1e-4;
  opt.bandwidth_bytes_per_s = 1e9;
  SsdSimulator ssd(8, 4096, opt);
  IoStats stats;
  std::vector<uint8_t> buf(ssd.block_bytes());
  for (int i = 0; i < 10; ++i) ssd.ReadBlock(0, buf.data(), buf.size(), &stats);
  EXPECT_EQ(stats.reads, 10u);
  double expected = 10 * (1e-4 + ssd.block_bytes() / 1e9);
  EXPECT_NEAR(stats.simulated_seconds, expected, 1e-9);
}

class DiskIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synthetic::MakeBaseAndQueries("sift", 1500, 30, 61, &base_, &queries_);
    graph::VamanaOptions vopt;
    vopt.degree = 16;
    vopt.build_beam = 32;
    graph_ = graph::BuildVamana(base_, vopt);
    quant::PqOptions popt;
    popt.m = 16;
    popt.k = 64;
    pq_ = quant::PqQuantizer::Train(base_, popt);
    index_ = DiskIndex::Build(base_, graph_, *pq_);
    gt_ = ComputeGroundTruth(base_, queries_, 10);
  }

  Dataset base_, queries_;
  graph::ProximityGraph graph_;
  std::unique_ptr<quant::PqQuantizer> pq_;
  std::unique_ptr<DiskIndex> index_;
  std::vector<std::vector<Neighbor>> gt_;
};

TEST_F(DiskIndexTest, HopsEqualBlockReads) {
  auto res = index_->Search(queries_[0], 10, {32, 10});
  EXPECT_EQ(res.stats.hops, res.io.reads);
  EXPECT_GT(res.stats.hops, 0u);
  EXPECT_GT(res.io.simulated_seconds, 0.0);
}

TEST_F(DiskIndexTest, ResultsAreExactDistancesAscending) {
  auto res = index_->Search(queries_[1], 10, {48, 10});
  ASSERT_EQ(res.results.size(), 10u);
  for (size_t i = 0; i < res.results.size(); ++i) {
    float exact =
        SquaredL2(queries_[1], base_[res.results[i].id], base_.dim());
    EXPECT_FLOAT_EQ(res.results[i].dist, exact);
    if (i > 0) EXPECT_LE(res.results[i - 1].dist, res.results[i].dist);
  }
}

TEST_F(DiskIndexTest, RerankingReachesHighRecall) {
  std::vector<std::vector<Neighbor>> results(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    results[q] = index_->Search(queries_[q], 10, {64, 10}).results;
  }
  // Full-precision rerank should lift recall well above the raw PQ level.
  EXPECT_GT(eval::MeanRecallAtK(results, gt_, 10), 0.8);
}

TEST_F(DiskIndexTest, MemoryFootprintIsCodesPlusModel) {
  EXPECT_EQ(index_->MemoryBytes(),
            base_.size() * pq_->code_size() + pq_->ModelSizeBytes());
  // The memory side must be far smaller than raw vectors (the whole point).
  EXPECT_LT(index_->MemoryBytes(),
            base_.size() * base_.dim() * sizeof(float) / 4);
}

TEST_F(DiskIndexTest, WiderBeamMoreIo) {
  auto narrow = index_->Search(queries_[2], 10, {16, 10});
  auto wide = index_->Search(queries_[2], 10, {128, 10});
  EXPECT_GT(wide.io.reads, narrow.io.reads);
}

}  // namespace
}  // namespace rpq::disk
