#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/distance.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/async_io.h"
#include "disk/disk_index.h"
#include "disk/ssd_simulator.h"
#include "eval/recall.h"
#include "graph/vamana.h"
#include "quant/pq.h"
#include "serve/search_service.h"

namespace rpq::disk {
namespace {

TEST(SsdSimulatorTest, RoundsBlockToSectors) {
  SsdOptions opt;
  opt.sector_bytes = 512;
  SsdSimulator ssd(4, 600, opt);
  EXPECT_EQ(ssd.block_bytes(), 1024u);
  EXPECT_EQ(ssd.sectors_per_block(), 2u);
  EXPECT_EQ(ssd.DeviceBytes(), 4096u);
}

TEST(SsdSimulatorTest, ReadBackWhatWasWritten) {
  SsdSimulator ssd(2, 100, {});
  std::vector<uint8_t> in(100);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i);
  ssd.WriteBlock(1, in.data(), in.size());
  std::vector<uint8_t> out(100, 0);
  IoStats stats;
  ssd.ReadBlock(1, out.data(), out.size(), &stats);
  EXPECT_EQ(in, out);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.bytes, ssd.block_bytes());
}

TEST(SsdSimulatorTest, LatencyAccountingIsDeterministic) {
  SsdOptions opt;
  opt.read_latency_seconds = 1e-4;
  opt.bandwidth_bytes_per_s = 1e9;
  SsdSimulator ssd(8, 4096, opt);
  IoStats stats;
  std::vector<uint8_t> buf(ssd.block_bytes());
  for (int i = 0; i < 10; ++i) ssd.ReadBlock(0, buf.data(), buf.size(), &stats);
  EXPECT_EQ(stats.reads, 10u);
  double expected = 10 * (1e-4 + ssd.block_bytes() / 1e9);
  EXPECT_NEAR(stats.simulated_seconds, expected, 1e-9);
}

class DiskIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synthetic::MakeBaseAndQueries("sift", 1500, 30, 61, &base_, &queries_);
    graph::VamanaOptions vopt;
    vopt.degree = 16;
    vopt.build_beam = 32;
    graph_ = graph::BuildVamana(base_, vopt);
    quant::PqOptions popt;
    popt.m = 16;
    popt.k = 64;
    pq_ = quant::PqQuantizer::Train(base_, popt);
    index_ = DiskIndex::Build(base_, graph_, *pq_);
    gt_ = ComputeGroundTruth(base_, queries_, 10);
  }

  Dataset base_, queries_;
  graph::ProximityGraph graph_;
  std::unique_ptr<quant::PqQuantizer> pq_;
  std::unique_ptr<DiskIndex> index_;
  std::vector<std::vector<Neighbor>> gt_;
};

TEST_F(DiskIndexTest, HopsEqualBlockReads) {
  auto res = index_->Search(queries_[0], 10, {32, 10});
  EXPECT_EQ(res.stats.hops, res.io.reads);
  EXPECT_GT(res.stats.hops, 0u);
  EXPECT_GT(res.io.simulated_seconds, 0.0);
}

TEST_F(DiskIndexTest, ResultsAreExactDistancesAscending) {
  auto res = index_->Search(queries_[1], 10, {48, 10});
  ASSERT_EQ(res.results.size(), 10u);
  for (size_t i = 0; i < res.results.size(); ++i) {
    float exact =
        SquaredL2(queries_[1], base_[res.results[i].id], base_.dim());
    EXPECT_FLOAT_EQ(res.results[i].dist, exact);
    if (i > 0) EXPECT_LE(res.results[i - 1].dist, res.results[i].dist);
  }
}

TEST_F(DiskIndexTest, RerankingReachesHighRecall) {
  std::vector<std::vector<Neighbor>> results(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    results[q] = index_->Search(queries_[q], 10, {64, 10}).results;
  }
  // Full-precision rerank should lift recall well above the raw PQ level.
  EXPECT_GT(eval::MeanRecallAtK(results, gt_, 10), 0.8);
}

TEST_F(DiskIndexTest, MemoryFootprintIsCodesPlusModel) {
  EXPECT_EQ(index_->MemoryBytes(),
            base_.size() * pq_->code_size() + pq_->ModelSizeBytes());
  // The memory side must be far smaller than raw vectors (the whole point).
  EXPECT_LT(index_->MemoryBytes(),
            base_.size() * base_.dim() * sizeof(float) / 4);
}

TEST_F(DiskIndexTest, WiderBeamMoreIo) {
  auto narrow = index_->Search(queries_[2], 10, {16, 10});
  auto wide = index_->Search(queries_[2], 10, {128, 10});
  EXPECT_GT(wide.io.reads, narrow.io.reads);
}

// ---- Async DiskIndex v2 (queue-depth submission + readahead) ----

TEST(AsyncIoContextTest, WaveChargesOverlappedTime) {
  SsdOptions opt;
  opt.read_latency_seconds = 1e-4;
  opt.bandwidth_bytes_per_s = 1e12;  // cost ~= pure latency
  opt.queue_depth = 4;
  SsdSimulator ssd(8, 4096, opt);
  const double c = 1e-4 + ssd.block_bytes() / 1e12;

  AsyncIoContext aio(ssd, opt.queue_depth);
  std::vector<std::vector<uint8_t>> bufs(
      8, std::vector<uint8_t>(ssd.block_bytes()));
  std::vector<IoCompletion> done;
  IoStats stats;

  // A wave of 8 uniform reads at QD 4 charges sum/QD, not the serial sum.
  for (uint32_t i = 0; i < 8; ++i) aio.SubmitRead(i, bufs[i].data(), i);
  EXPECT_EQ(aio.PollCompletions(&done, &stats), 8u);
  EXPECT_EQ(done.size(), 8u);
  EXPECT_EQ(stats.reads, 8u);
  EXPECT_EQ(stats.io_waves, 1u);
  EXPECT_NEAR(stats.simulated_seconds, 8 * c / 4, 1e-12);

  // A wave of one read charges exactly its serial cost — the property that
  // keeps io_width=1 bit-identical to the synchronous path.
  IoStats one;
  aio.SubmitRead(0, bufs[0].data(), 0);
  aio.PollCompletions(&done, &one);
  EXPECT_DOUBLE_EQ(one.simulated_seconds, c);
}

TEST(PrefetchCacheTest, FifoEvictionAndTake) {
  PrefetchCache cache(2);
  cache.Insert(1, std::vector<uint8_t>{1});
  cache.Insert(2, std::vector<uint8_t>{2});
  cache.Insert(3, std::vector<uint8_t>{3});  // evicts 1 (FIFO)
  EXPECT_FALSE(cache.Contains(1));
  std::vector<uint8_t> buf;
  EXPECT_TRUE(cache.Take(2, &buf));
  EXPECT_EQ(buf, std::vector<uint8_t>{2});
  EXPECT_FALSE(cache.Contains(2));  // Take removes
  EXPECT_TRUE(cache.Contains(3));
}

TEST_F(DiskIndexTest, AsyncWidthOneMatchesSequentialBitForBit) {
  // The device queue depth cannot change a width-1 search: every wave holds
  // one read, which charges exactly its serial cost. Results, hops, reads,
  // and simulated time must match across queue depths bit for bit.
  DiskIndexOptions dopt;
  dopt.ssd.queue_depth = 1;
  auto qd1 = DiskIndex::Build(base_, graph_, *pq_, dopt);
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto a = index_->Search(queries_[q], 10, {32, 10});  // default QD 8
    auto b = qd1->Search(queries_[q], 10, {32, 10});
    EXPECT_EQ(a.results, b.results) << "query " << q;
    EXPECT_EQ(a.stats.hops, b.stats.hops);
    EXPECT_EQ(a.io.reads, b.io.reads);
    EXPECT_DOUBLE_EQ(a.io.simulated_seconds, b.io.simulated_seconds);
  }
}

TEST_F(DiskIndexTest, ReadaheadKeepsResultsIdenticalAndEarnsItsReads) {
  // At io_width=1 speculation cannot change what gets expanded or scored —
  // a hit only removes a future demand wave — so results stay identical
  // while simulated time can only shrink (uniform read costs, QD 8 absorbs
  // the speculative reads inside each wave).
  DiskIndexOptions dopt;
  dopt.readahead = 4;
  auto ra = DiskIndex::Build(base_, graph_, *pq_, dopt);
  size_t issued = 0, hits = 0, wasted = 0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto plain = index_->Search(queries_[q], 10, {32, 10});
    auto spec = ra->Search(queries_[q], 10, {32, 10});
    EXPECT_EQ(plain.results, spec.results) << "query " << q;
    EXPECT_EQ(plain.stats.hops, spec.stats.hops);
    EXPECT_EQ(spec.io.prefetch_hits + spec.io.prefetch_wasted,
              spec.io.prefetch_issued);
    EXPECT_LE(spec.io.simulated_seconds, plain.io.simulated_seconds + 1e-12);
    issued += spec.io.prefetch_issued;
    hits += spec.io.prefetch_hits;
    wasted += spec.io.prefetch_wasted;
  }
  ASSERT_GT(issued, 0u);
  EXPECT_EQ(hits + wasted, issued);
  // Acceptance pin: the beam-rank predictor earns its speculative reads.
  EXPECT_GE(static_cast<double>(hits), 0.5 * static_cast<double>(issued));
}

TEST_F(DiskIndexTest, WideWavesCutSimulatedTimeRecallNeutral) {
  // Same index, per-query knob override: 8-wide waves at QD 8 overlap what
  // the sequential path serializes.
  double sync_io = 0, async_io = 0;
  std::vector<std::vector<Neighbor>> sync_res(queries_.size());
  std::vector<std::vector<Neighbor>> async_res(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto a = index_->Search(queries_[q], 10, {64, 10}, nullptr, {1, 0});
    auto b = index_->Search(queries_[q], 10, {64, 10}, nullptr, {8, 0});
    sync_io += a.io.simulated_seconds;
    async_io += b.io.simulated_seconds;
    sync_res[q] = std::move(a.results);
    async_res[q] = std::move(b.results);
  }
  EXPECT_LT(async_io, sync_io / 3.0);
  const double r_sync = eval::MeanRecallAtK(sync_res, gt_, 10);
  const double r_async = eval::MeanRecallAtK(async_res, gt_, 10);
  EXPECT_GE(r_async, r_sync - 0.02);  // recall-neutral within tolerance
}

TEST_F(DiskIndexTest, PrefetchAccountingStaysConsistentUnderFaults) {
  // Seeded errors and latency spikes fire on demand AND speculative reads;
  // demand reads retry (PR 8 semantics), failed speculation is dropped, and
  // the hit/waste ledger still balances.
  DiskIndexOptions dopt;
  dopt.ssd.transient_error_rate = 0.05;
  dopt.ssd.latency_spike_rate = 0.05;
  dopt.ssd.fault_seed = 9;
  dopt.io_width = 4;
  dopt.readahead = 4;
  auto idx = DiskIndex::Build(base_, graph_, *pq_, dopt);
  IoStats total;
  for (size_t q = 0; q < queries_.size(); ++q) {
    auto res = idx->Search(queries_[q], 10, {48, 10});
    EXPECT_EQ(res.results.size(), 10u) << "query " << q;
    EXPECT_EQ(res.io.prefetch_hits + res.io.prefetch_wasted,
              res.io.prefetch_issued);
    total.io_errors += res.io.io_errors;
    total.retries += res.io.retries;
    total.latency_spikes += res.io.latency_spikes;
    total.prefetch_issued += res.io.prefetch_issued;
    total.prefetch_hits += res.io.prefetch_hits;
  }
  EXPECT_GT(total.io_errors, 0u);
  EXPECT_GT(total.retries, 0u);
  EXPECT_GT(total.latency_spikes, 0u);
  EXPECT_GT(total.prefetch_issued, 0u);
  EXPECT_GT(total.prefetch_hits, 0u);
}

TEST_F(DiskIndexTest, DeadlineExpiresMidWaveReturnsDegradedPartial) {
  // QD 2 with 8-wide waves makes one neighbor wave cost ~8*100us/2 = 400us
  // of simulated time — past a 300us budget, so the search must stop at the
  // next wave boundary with a degraded partial answer.
  DiskIndexOptions dopt;
  dopt.ssd.queue_depth = 2;
  dopt.io_width = 8;
  auto idx = DiskIndex::Build(base_, graph_, *pq_, dopt);
  graph::BeamSearchOptions bopt;
  bopt.beam_width = 64;
  bopt.k = 10;
  bopt.deadline = Deadline::AfterMicros(300);
  auto res = idx->Search(queries_[0], 10, bopt);
  EXPECT_TRUE(res.degraded);
  EXPECT_TRUE(res.stats.deadline_hit);
  EXPECT_FALSE(res.results.empty());
  // Entry wave (1 read) + one 8-wide wave at most before the budget check.
  EXPECT_LE(res.stats.hops, 9u);
  EXPECT_LT(res.results.size(), 10u);
}

TEST_F(DiskIndexTest, ServiceForwardsAsyncKnobs) {
  // QuerySpec.io_width/readahead reach the index: the service's degraded
  // flags and results match a direct call with the same DiskIoOptions.
  serve::DiskIndexService service(*index_);
  for (size_t q = 0; q < 5; ++q) {
    serve::QuerySpec spec;
    spec.query = queries_[q];
    spec.k = 10;
    spec.beam_width = 48;
    spec.io_width = 8;
    spec.readahead = 4;
    auto via_service = service.Search(spec);
    auto direct = index_->Search(queries_[q], 10, {48, 10}, nullptr, {8, 4});
    EXPECT_EQ(via_service.results, direct.results) << "query " << q;
  }
}

}  // namespace
}  // namespace rpq::disk
