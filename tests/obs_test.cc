// Observability subsystem tests: the lock-free registry sums concurrent
// increments exactly (this file is in the TSan CI job), snapshots taken
// while writers run are consistent and monotonic, histogram-derived
// percentiles stay within one bucket width of the exact sorted-vector
// reference the load generator used to compute, the JSON snapshot
// round-trips through the in-repo parser, and per-query traces record the
// stages the backends actually ran.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/memory_index.h"
#include "data/synthetic.h"
#include "graph/vamana.h"
#include "ivf/ivf_index.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "quant/pq.h"
#include "serve/loadgen.h"

namespace rpq {
namespace {

// Registry state is process-global, so every test (a) sets the enabled flag
// it needs explicitly and restores it, and (b) uses metric names unique to
// itself — values accumulate across tests within this binary.
class MetricsOn {
 public:
  MetricsOn() { obs::SetMetricsEnabled(true); }
  ~MetricsOn() { obs::SetMetricsEnabled(false); }
};

uint64_t CounterValue(const obs::Snapshot& snap, const std::string& name) {
  const obs::CounterSnapshot* c = snap.FindCounter(name);
  return c != nullptr ? c->value : 0;
}

// ------------------------------------------------------ bucket geometry ----

TEST(HistogramGeometryTest, BucketRoundTrip) {
  // Every value lands in a bucket whose [lower, lower + width) range holds
  // it; indices are monotone in the value.
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 100; ++v) values.push_back(v);
  for (int shift = 3; shift < 63; ++shift) {
    const uint64_t p = uint64_t{1} << shift;
    values.insert(values.end(), {p - 1, p, p + 1, p + p / 3});
  }
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) values.push_back(rng());

  for (uint64_t v : values) {
    const uint32_t idx = obs::BucketIndexFor(v);
    ASSERT_LT(idx, obs::kNumBuckets) << v;
    const uint64_t lo = obs::BucketLowerBound(idx);
    const uint64_t width = obs::BucketWidth(idx);
    EXPECT_LE(lo, v) << v;
    EXPECT_LT(v - lo, width) << v;
  }
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(obs::BucketIndexFor(values[i - 1]),
              obs::BucketIndexFor(values[i]));
  }
}

TEST(HistogramDataTest, ExactFieldsAndMerge) {
  obs::HistogramData a, b;
  a.Record(3);
  a.Record(100);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 3u + 100u + 1000000u);
  EXPECT_EQ(a.max, 1000000u);
  EXPECT_DOUBLE_EQ(a.Mean(), (3.0 + 100.0 + 1000000.0) / 3.0);
}

TEST(HistogramDataTest, PercentileWithinOneBucketWidth) {
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(11.0, 1.0);  // ~60us-scale nanos
  std::vector<uint64_t> samples(5000);
  obs::HistogramData hist;
  for (auto& s : samples) {
    s = static_cast<uint64_t>(dist(rng));
    hist.Record(s);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    // The same rank rule the exact summary uses.
    const size_t idx = std::min(
        static_cast<size_t>(p * (samples.size() - 1) + 0.5), samples.size() - 1);
    const uint64_t exact = samples[idx];
    const double est = hist.Percentile(p);
    const uint64_t width = obs::BucketWidth(obs::BucketIndexFor(exact));
    EXPECT_NEAR(est, static_cast<double>(exact), static_cast<double>(width))
        << "p=" << p;
  }
}

// The loadgen satellite: the histogram-backed summary tracks the exact
// sorted-vector one within a bucket width on the same samples.
TEST(LoadgenSummaryTest, HistogramSummaryMatchesExactWithinBucketWidth) {
  std::mt19937_64 rng(9);
  std::lognormal_distribution<double> dist(-8.0, 0.8);  // ~0.3ms-scale secs
  std::vector<double> seconds(4000);
  obs::HistogramData hist;
  for (auto& s : seconds) {
    s = dist(rng);
    hist.Record(static_cast<uint64_t>(s * 1e9));
  }
  const serve::LatencySummary exact = serve::SummarizeLatencies(seconds);
  const serve::LatencySummary est = serve::SummarizeHistogramNanos(hist);

  struct Pct {
    double exact_ms, est_ms;
  };
  for (const Pct& p : {Pct{exact.p50_ms, est.p50_ms},
                       Pct{exact.p95_ms, est.p95_ms},
                       Pct{exact.p99_ms, est.p99_ms}}) {
    const uint64_t nanos = static_cast<uint64_t>(p.exact_ms * 1e6);
    const double width_ms =
        obs::BucketWidth(obs::BucketIndexFor(nanos)) / 1e6;
    EXPECT_NEAR(p.est_ms, p.exact_ms, width_ms);
  }
  // mean/max are tracked exactly (up to the double->nanos truncation).
  EXPECT_NEAR(est.mean_ms, exact.mean_ms, exact.mean_ms * 1e-6 + 1e-6);
  EXPECT_NEAR(est.max_ms, exact.max_ms, exact.max_ms * 1e-6 + 1e-6);
}

// --------------------------------------------------------- the registry ----

TEST(RegistryTest, RegistrationIsIdempotent) {
  const obs::CounterId a = obs::GetCounter("test.idempotent");
  const obs::CounterId b = obs::GetCounter("test.idempotent");
  EXPECT_EQ(a, b);
  const obs::HistogramId h1 = obs::GetHistogram("test.idempotent_h");
  const obs::HistogramId h2 = obs::GetHistogram("test.idempotent_h");
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsOn on;
  const obs::CounterId ones = obs::GetCounter("test.concurrent_ones");
  const obs::CounterId threes = obs::GetCounter("test.concurrent_threes");
  const obs::HistogramId hist = obs::GetHistogram("test.concurrent_hist");
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;

  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        obs::Add(ones, 1);
        obs::Add(threes, 3);
        obs::Record(hist, t * kPerThread + i);
      }
    });
  }
  for (auto& w : workers) w.join();

  const obs::Snapshot snap = obs::TakeSnapshot();
  EXPECT_EQ(CounterValue(snap, "test.concurrent_ones"), kThreads * kPerThread);
  EXPECT_EQ(CounterValue(snap, "test.concurrent_threes"),
            3u * kThreads * kPerThread);
  const obs::HistogramSnapshot* h = snap.FindHistogram("test.concurrent_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data.count, kThreads * kPerThread);
  // Sum of 0 .. kThreads*kPerThread-1, and the per-bucket tallies agree
  // with the total.
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(h->data.sum, n * (n - 1) / 2);
  EXPECT_EQ(h->data.max, n - 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->data.count);
}

TEST(RegistryTest, ThreadExitRetirementPreservesCounts) {
  MetricsOn on;
  const obs::CounterId id = obs::GetCounter("test.retired");
  // The shard of an exited thread is folded into the retired accumulator;
  // its counts survive the thread.
  for (int round = 0; round < 4; ++round) {
    std::thread([&] { obs::Add(id, 250); }).join();
  }
  EXPECT_EQ(CounterValue(obs::TakeSnapshot(), "test.retired"), 1000u);
}

TEST(RegistryTest, SnapshotWhileWritingIsMonotonicAndComplete) {
  MetricsOn on;
  const obs::CounterId id = obs::GetCounter("test.monotonic");
  const obs::HistogramId hist = obs::GetHistogram("test.monotonic_h");
  constexpr uint64_t kTotal = 200000;
  std::thread writer([&] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      obs::Add(id, 1);
      obs::Record(hist, 64);
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const obs::Snapshot snap = obs::TakeSnapshot();
    const uint64_t v = CounterValue(snap, "test.monotonic");
    EXPECT_GE(v, last);
    EXPECT_LE(v, kTotal);
    const obs::HistogramSnapshot* h = snap.FindHistogram("test.monotonic_h");
    ASSERT_NE(h, nullptr);
    // A single-valued histogram is internally consistent in any snapshot:
    // the bucket tally, count, and sum describe the same set of samples.
    EXPECT_EQ(h->data.buckets[obs::BucketIndexFor(64)], h->data.count);
    EXPECT_EQ(h->data.sum, h->data.count * 64);
    last = v;
  }
  writer.join();
  EXPECT_EQ(CounterValue(obs::TakeSnapshot(), "test.monotonic"), kTotal);
}

TEST(RegistryTest, DisabledRecordsNothing) {
  obs::SetMetricsEnabled(false);
  const obs::CounterId id = obs::GetCounter("test.disabled");
  const obs::HistogramId hist = obs::GetHistogram("test.disabled_h");
  obs::Add(id, 17);
  obs::Record(hist, 17);
  obs::HistogramData local;
  local.Record(5);
  obs::MergeInto(hist, local);
  const obs::Snapshot snap = obs::TakeSnapshot();
  EXPECT_EQ(CounterValue(snap, "test.disabled"), 0u);
  const obs::HistogramSnapshot* h = snap.FindHistogram("test.disabled_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data.count, 0u);
}

TEST(RegistryTest, MergeIntoFoldsLocalTallies) {
  MetricsOn on;
  const obs::HistogramId hist = obs::GetHistogram("test.merge_into");
  obs::HistogramData local;
  for (uint64_t v : {1u, 2u, 300u, 40000u}) local.Record(v);
  obs::MergeInto(hist, local);
  const obs::HistogramSnapshot* h =
      obs::TakeSnapshot().FindHistogram("test.merge_into");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data.count, 4u);
  EXPECT_EQ(h->data.sum, 1u + 2u + 300u + 40000u);
  EXPECT_EQ(h->data.max, 40000u);
}

TEST(RegistryTest, StageHistogramsPreRegistered) {
  // The stable JSON key set: every stage histogram exists (count may be 0)
  // once RegisterStageMetrics ran, as it does in the ServingEngine ctor.
  obs::RegisterStageMetrics();
  const obs::Snapshot snap = obs::TakeSnapshot();
  for (const char* name :
       {"stage.route_ns", "stage.scan_ns", "stage.beam_ns",
        "stage.lut_build_ns", "stage.refine_ns", "stage.merge_ns",
        "stage.queue_wait_ns", "stage.service_ns", "stage.io_ns"}) {
    EXPECT_NE(snap.FindHistogram(name), nullptr) << name;
  }
}

// ------------------------------------------------------- JSON round trip ----

TEST(JsonParserTest, ParsesStructureAndEscapes) {
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(
      R"({"a": [1, 2.5, -3e2], "s": "x\n\"A", "b": true, "n": null})", &v,
      &err))
      << err;
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(v.Find("s")->string, "x\n\"A");
  EXPECT_TRUE(v.Find("b")->bool_value);
  EXPECT_EQ(v.Find("n")->type, obs::JsonValue::Type::kNull);
}

TEST(JsonParserTest, RejectsMalformed) {
  obs::JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::ParseJson("{", &v, &err));
  EXPECT_FALSE(obs::ParseJson("{} trailing", &v, &err));
  EXPECT_FALSE(obs::ParseJson(R"({"a": })", &v, nullptr));
  EXPECT_FALSE(obs::ParseJson(R"({"a": "\x"})", &v, nullptr));
  EXPECT_FALSE(obs::ParseJson("", &v, nullptr));
}

TEST(JsonRoundTripTest, DumpJsonParsesBackWithExactValues) {
  MetricsOn on;
  const obs::CounterId c = obs::GetCounter("test.json_counter");
  const obs::HistogramId h = obs::GetHistogram("test.json_hist");
  obs::Add(c, 12345);
  for (uint64_t v : {10u, 20u, 30u, 40u}) obs::Record(h, v);

  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(obs::DumpJson(), &root, &err)) << err;
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("version"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("version")->number, 1.0);

  const obs::JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const obs::JsonValue* cv = counters->Find("test.json_counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_DOUBLE_EQ(cv->number, 12345.0);

  const obs::JsonValue* hv = root.Find("histograms");
  ASSERT_NE(hv, nullptr);
  const obs::JsonValue* hist = hv->Find("test.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 4.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 100.0);
  EXPECT_DOUBLE_EQ(hist->Find("max")->number, 40.0);
  EXPECT_DOUBLE_EQ(hist->Find("mean")->number, 25.0);
  ASSERT_NE(hist->Find("p50"), nullptr);
  ASSERT_NE(hist->Find("p95"), nullptr);
  ASSERT_NE(hist->Find("p99"), nullptr);
  const obs::JsonValue* buckets = hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // [lo, width, count] triples whose counts cover every sample.
  double covered = 0;
  for (const obs::JsonValue& b : buckets->array) {
    ASSERT_TRUE(b.is_array());
    ASSERT_EQ(b.array.size(), 3u);
    EXPECT_GT(b.array[2].number, 0.0);
    covered += b.array[2].number;
  }
  EXPECT_DOUBLE_EQ(covered, 4.0);
}

// ------------------------------------------------------ per-query traces ----

TEST(QueryTraceTest, AccumulatesAndFormats) {
  obs::QueryTrace trace;
  trace.AddSpan(obs::Stage::kBeam, 1000);
  trace.AddSpan(obs::Stage::kBeam, 500);
  trace.AddSpan(obs::Stage::kMerge, 200);
  trace.AddSpan(obs::Stage::kQueueWait, 9999);
  EXPECT_EQ(trace.total(obs::Stage::kBeam).nanos, 1500u);
  EXPECT_EQ(trace.total(obs::Stage::kBeam).spans, 2u);
  // Queue wait overlaps the pipeline; it is excluded from the pipeline sum.
  EXPECT_EQ(trace.PipelineNanos(), 1700u);
  const std::string s = trace.Format();
  EXPECT_NE(s.find("beam"), std::string::npos);
  EXPECT_NE(s.find("merge"), std::string::npos);
  trace.Clear();
  EXPECT_EQ(trace.total(obs::Stage::kBeam).spans, 0u);
  EXPECT_EQ(trace.PipelineNanos(), 0u);
}

TEST(QueryTraceTest, MemoryIndexRecordsStages) {
  // Metrics stay OFF: a trace alone must be enough to get spans.
  obs::SetMetricsEnabled(false);
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 600, 4, 11, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 16;
  auto graph = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 16;
  popt.nbits = 4;
  auto model = quant::PqQuantizer::Train(base, popt);
  auto index = core::MemoryIndex::Build(base, graph, *model);

  obs::QueryTrace trace;
  auto out = index->Search(queries[0], 5, {32, 5},
                           core::DistanceMode::kFastScan, {}, &trace);
  ASSERT_FALSE(out.results.empty());
  EXPECT_GE(trace.total(obs::Stage::kLutBuild).spans, 1u);
  EXPECT_GE(trace.total(obs::Stage::kBeam).spans, 1u);
  EXPECT_GE(trace.total(obs::Stage::kRefine).spans, 1u);
  EXPECT_GE(trace.total(obs::Stage::kMerge).spans, 1u);
  EXPECT_GT(trace.total(obs::Stage::kBeam).nanos, 0u);
  // The stats the trace rides with are populated on the FastScan path too.
  EXPECT_GT(out.stats.hops, 0u);
  EXPECT_GT(out.stats.dist_comps, 0u);
}

TEST(QueryTraceTest, IvfIndexRecordsStages) {
  obs::SetMetricsEnabled(false);
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 600, 4, 13, &base, &queries);
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 16;
  popt.nbits = 4;
  auto model = quant::PqQuantizer::Train(base, popt);
  ivf::IvfOptions iopt;
  iopt.nlist = 8;
  auto index = ivf::IvfIndex::Build(base, *model, iopt);

  obs::QueryTrace trace;
  ivf::IvfSearchOptions sopt;
  sopt.nprobe = 4;
  sopt.trace = &trace;
  auto out = index->Search(queries[0], 5, sopt);
  ASSERT_FALSE(out.results.empty());
  EXPECT_GE(trace.total(obs::Stage::kRoute).spans, 1u);
  EXPECT_GE(trace.total(obs::Stage::kScan).spans, 1u);
  EXPECT_GE(trace.total(obs::Stage::kRefine).spans, 1u);
  EXPECT_GE(trace.total(obs::Stage::kMerge).spans, 1u);
}

TEST(ScopedStageTest, RecordsIntoTraceWithoutMetrics) {
  obs::SetMetricsEnabled(false);
  obs::QueryTrace trace;
  {
    obs::ScopedStage span(obs::Stage::kScan, &trace);
  }
  EXPECT_EQ(trace.total(obs::Stage::kScan).spans, 1u);
  // Null trace + metrics off: inert (nothing observable, must not crash).
  {
    obs::ScopedStage span(obs::Stage::kScan, nullptr);
  }
  obs::RecordSpan(obs::Stage::kIo, 123, nullptr);
}

// visited_hits satellite: beam search reports visited-table hits, and a
// denser re-exploration (bigger beam over a small graph) produces some.
TEST(SearchStatsTest, VisitedHitsPopulated) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 400, 2, 17, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  auto graph = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 16;
  popt.nbits = 4;
  auto model = quant::PqQuantizer::Train(base, popt);
  auto index = core::MemoryIndex::Build(base, graph, *model);
  auto out =
      index->Search(queries[0], 10, {64, 10}, core::DistanceMode::kFastScan);
  EXPECT_GT(out.stats.visited_hits, 0u);
}

// ------------------------------------------------------- windowed views ----

TEST(WindowedViewTest, CounterDeltasAndRates) {
  obs::Snapshot older, newer;
  older.counters = {{"win.a", 100}, {"win.gone", 5}, {"win.back", 10}};
  newer.counters = {{"win.a", 160}, {"win.fresh", 30}, {"win.back", 7}};
  const obs::WindowedView view = obs::DiffSnapshots(older, newer, 2.0);
  EXPECT_EQ(view.Delta("win.a"), 60u);
  EXPECT_DOUBLE_EQ(view.Rate("win.a"), 30.0);
  // Registered after the baseline: diffs against zero.
  EXPECT_EQ(view.Delta("win.fresh"), 30u);
  // Absent from the newer snapshot: dropped entirely.
  EXPECT_EQ(view.FindCounter("win.gone"), nullptr);
  // Went backwards (not really the same process): clamps, never wraps.
  EXPECT_EQ(view.Delta("win.back"), 0u);
  // Unknown name reads as zero.
  EXPECT_EQ(view.Delta("win.never"), 0u);
}

TEST(WindowedViewTest, HistogramIntervalPercentiles) {
  // Baseline: 1000 fast samples. Window: 100 slow ones. The cumulative view
  // p50 stays fast; the interval view must see only the slow samples.
  obs::HistogramData base_data;
  for (int i = 0; i < 1000; ++i) base_data.Record(1000);
  obs::HistogramData newer_data = base_data;
  for (int i = 0; i < 100; ++i) newer_data.Record(1000000);

  obs::Snapshot older, newer;
  older.histograms.push_back({"win.lat", base_data});
  newer.histograms.push_back({"win.lat", newer_data});
  const obs::WindowedView view = obs::DiffSnapshots(older, newer, 1.0);
  const obs::WindowedHistogram* h = view.FindHistogram("win.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->interval.count, 100u);
  EXPECT_EQ(h->interval.sum, 100u * 1000000u);
  // All interval mass sits at ~1ms; p50 must be within one bucket of it.
  const uint32_t b = obs::BucketIndexFor(1000000);
  EXPECT_GE(h->interval.Percentile(0.5), obs::BucketLowerBound(b));
  EXPECT_LE(h->interval.Percentile(0.5),
            obs::BucketLowerBound(b) + obs::BucketWidth(b));
}

TEST(WindowedViewTest, SummarizeServingRatios) {
  obs::Snapshot older, newer;
  older.counters = {{"serve.completed", 0}, {"serve.shed", 0},
                    {"serve.deadline_exceeded", 0}};
  newer.counters = {{"serve.completed", 200}, {"serve.shed", 20},
                    {"serve.deadline_exceeded", 10}};
  const obs::ServingWindow w =
      obs::SummarizeServing(obs::DiffSnapshots(older, newer, 4.0));
  EXPECT_EQ(w.completed, 200u);
  EXPECT_DOUBLE_EQ(w.qps, 50.0);
  EXPECT_DOUBLE_EQ(w.shed_ratio, 0.1);
  EXPECT_DOUBLE_EQ(w.deadline_ratio, 0.05);
  EXPECT_DOUBLE_EQ(w.p50_ms, 0.0);  // no latency histogram in the window
}

TEST(WindowedViewTest, SnapshotFromJsonRoundTrip) {
  MetricsOn on;
  const auto counter = obs::GetCounter("winjson.counter");
  const auto hist = obs::GetHistogram("winjson.hist");
  obs::Add(counter, 42);
  for (uint64_t v : {10u, 500u, 70000u, 1000000u}) obs::Record(hist, v);

  const obs::Snapshot live = obs::TakeSnapshot();
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(obs::DumpJson(live), &root, &err)) << err;
  obs::Snapshot parsed;
  ASSERT_TRUE(obs::SnapshotFromJson(root, &parsed, &err)) << err;

  EXPECT_EQ(CounterValue(parsed, "winjson.counter"),
            CounterValue(live, "winjson.counter"));
  const obs::HistogramSnapshot* live_h = live.FindHistogram("winjson.hist");
  const obs::HistogramSnapshot* parsed_h = parsed.FindHistogram("winjson.hist");
  ASSERT_NE(live_h, nullptr);
  ASSERT_NE(parsed_h, nullptr);
  EXPECT_EQ(parsed_h->data.count, live_h->data.count);
  EXPECT_EQ(parsed_h->data.sum, live_h->data.sum);
  EXPECT_EQ(parsed_h->data.max, live_h->data.max);
  for (uint32_t b = 0; b < obs::kNumBuckets; ++b) {
    ASSERT_EQ(parsed_h->data.buckets[b], live_h->data.buckets[b]) << b;
  }
  // A diff of a snapshot against its own round trip is all zeros.
  const obs::WindowedView view = obs::DiffSnapshots(parsed, live, 1.0);
  EXPECT_EQ(view.Delta("winjson.counter"), 0u);
  EXPECT_EQ(view.FindHistogram("winjson.hist")->interval.count, 0u);
}

// ------------------------------------------------------ flight recorder ----

obs::QueryObservation HealthyObservation(uint64_t latency_us) {
  obs::QueryObservation o;
  o.latency_us = latency_us;
  o.k = 10;
  o.width = 64;
  return o;
}

TEST(FlightRecorderTest, AdmissionPolicy) {
  obs::FlightRecorder rec;
  obs::FlightRecorderOptions opt;
  opt.capacity = 16;
  opt.slow_us = 1000;
  rec.Configure(opt);
  rec.SetEnabled(true);

  rec.Observe(HealthyObservation(10));    // fast + healthy: not admitted
  rec.Observe(HealthyObservation(5000));  // slow: admitted
  obs::QueryObservation degraded = HealthyObservation(10);
  degraded.deadline_exceeded = true;
  degraded.degraded = true;
  rec.Observe(degraded);                  // degraded: admitted despite speed

  const auto records = rec.Dump();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].latency_us, 5000u);
  EXPECT_STREQ(records[0].reason, "slow");
  EXPECT_TRUE(records[1].deadline_exceeded);
  EXPECT_STREQ(records[1].reason, "degraded");
  EXPECT_EQ(rec.observed(), 3u);
  EXPECT_EQ(rec.recorded(), 2u);

  rec.SetEnabled(false);
  rec.Observe(HealthyObservation(999999));  // disabled: invisible
  EXPECT_EQ(rec.observed(), 3u);
}

TEST(FlightRecorderTest, SamplingAdmitsOneInN) {
  obs::FlightRecorder rec;
  obs::FlightRecorderOptions opt;
  opt.capacity = 64;
  opt.sample_every = 10;
  rec.Configure(opt);
  rec.SetEnabled(true);
  for (int i = 0; i < 100; ++i) rec.Observe(HealthyObservation(5));
  EXPECT_EQ(rec.recorded(), 10u);
  for (const auto& r : rec.Dump()) EXPECT_STREQ(r.reason, "sample");
}

TEST(FlightRecorderTest, CapacityWrapKeepsNewest) {
  obs::FlightRecorder rec;
  obs::FlightRecorderOptions opt;
  opt.capacity = 8;
  opt.slow_us = 1;  // admit everything
  rec.Configure(opt);
  rec.SetEnabled(true);
  for (uint64_t i = 1; i <= 20; ++i) rec.Observe(HealthyObservation(i));
  const auto records = rec.Dump();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first order, holding exactly the last 8 admissions (13..20).
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].latency_us, 13u + i);
    EXPECT_EQ(records[i].seq, 12u + i);
  }
  EXPECT_EQ(rec.recorded(), 20u);
}

TEST(FlightRecorderTest, DumpJsonParsesAndCarriesStages) {
  obs::FlightRecorder rec;
  obs::FlightRecorderOptions opt;
  opt.capacity = 4;
  opt.slow_us = 1;
  rec.Configure(opt);
  rec.SetEnabled(true);

  obs::QueryTrace trace;
  trace.AddSpan(obs::Stage::kScan, 12345);
  obs::QueryObservation o = HealthyObservation(777);
  o.trace = &trace;
  rec.Observe(o);

  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(rec.DumpJson(), &root, &err)) << err;
  const obs::JsonValue* records = root.Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_TRUE(records->is_array());
  ASSERT_EQ(records->array.size(), 1u);
  const obs::JsonValue* latency = records->array[0].Find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->number, 777.0);
  const obs::JsonValue* scan = records->array[0].FindPath("stages.scan_ns");
  ASSERT_NE(scan, nullptr);
  EXPECT_DOUBLE_EQ(scan->number, 12345.0);
}

// Concurrent record-while-dump: writers admit on every call while a reader
// dumps continuously. TSan (this file is in the CI TSan job) checks the
// synchronization; the assertions check no dump ever sees a torn record.
TEST(FlightRecorderTest, ConcurrentRecordWhileDump) {
  obs::FlightRecorder rec;
  obs::FlightRecorderOptions opt;
  opt.capacity = 32;
  opt.slow_us = 1;  // admit everything: maximum writer contention
  rec.Configure(opt);
  rec.SetEnabled(true);

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& r : rec.Dump()) {
        // Every admitted record is internally consistent: the marker the
        // writer stored in both fields must agree.
        ASSERT_EQ(r.latency_us, static_cast<uint64_t>(r.k));
      }
      (void)rec.DumpJson();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t marker = static_cast<uint64_t>(w) * kPerWriter + i + 1;
        obs::QueryObservation o;
        o.latency_us = marker;
        o.k = static_cast<uint32_t>(marker);
        rec.Observe(o);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(rec.Dump().size(), 32u);
}

// -------------------------------------------------------- http exporter ----

TEST(HttpExporterTest, RoutesAndPrometheusFormat) {
  MetricsOn on;
  const auto counter = obs::GetCounter("httpx.requests");
  obs::Add(counter, 7);
  const auto hist = obs::GetHistogram("httpx.lat_ns");
  obs::Record(hist, 1500);

  obs::HttpExporter exporter;
  const obs::HttpResponse metrics = exporter.HandleRequest("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE rpq_httpx_requests counter"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("rpq_httpx_requests 7"), std::string::npos);
  EXPECT_NE(metrics.body.find("rpq_httpx_lat_ns_count 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("rpq_httpx_lat_ns_sum 1500"), std::string::npos);
  EXPECT_NE(metrics.body.find("rpq_httpx_lat_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);

  const obs::HttpResponse json = exporter.HandleRequest("/metrics.json");
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(json.body, &root, &err)) << err;
  const obs::JsonValue* counters_obj = root.Find("counters");
  ASSERT_NE(counters_obj, nullptr);
  EXPECT_NE(counters_obj->Find("httpx.requests"), nullptr);

  const obs::HttpResponse health = exporter.HandleRequest("/health");
  EXPECT_EQ(health.status, 200);  // no degradation -> healthy
  ASSERT_TRUE(obs::ParseJson(health.body, &root, &err)) << err;
  const obs::JsonValue* healthy = root.Find("healthy");
  ASSERT_NE(healthy, nullptr);
  EXPECT_TRUE(healthy->bool_value);

  const obs::HttpResponse slow = exporter.HandleRequest("/slow");
  ASSERT_TRUE(obs::ParseJson(slow.body, &root, &err)) << err;
  EXPECT_NE(root.Find("records"), nullptr);

  EXPECT_EQ(exporter.HandleRequest("/nope").status, 404);
  EXPECT_EQ(exporter.HandleRequest("/").status, 200);
}

TEST(HttpExporterTest, LoopbackSocketRoundTrip) {
  MetricsOn on;
  obs::Add(obs::GetCounter("httpx.loopback"), 3);
  obs::HttpExporterOptions opt;
  opt.port = 0;  // ephemeral
  obs::HttpExporter exporter(opt);
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_GT(exporter.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(exporter.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("rpq_httpx_loopback 3"), std::string::npos);
  exporter.Stop();
  // Idempotent stop, and a second Start binds a fresh ephemeral port.
  exporter.Stop();
}

}  // namespace
}  // namespace rpq
