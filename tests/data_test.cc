#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/distance.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "data/io_vecs.h"
#include "data/lid.h"
#include "data/synthetic.h"

namespace rpq {
namespace {

TEST(DatasetTest, SliceAndGather) {
  Dataset d(5, 3);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 3; ++j) d[i][j] = static_cast<float>(i * 10 + j);
  }
  Dataset s = d.Slice(1, 3);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FLOAT_EQ(s[0][0], 10.f);
  EXPECT_FLOAT_EQ(s[1][2], 22.f);
  Dataset g = d.Gather({4, 0});
  EXPECT_FLOAT_EQ(g[0][1], 41.f);
  EXPECT_FLOAT_EQ(g[1][1], 1.f);
}

TEST(DatasetTest, AppendFixesDim) {
  Dataset d;
  float v[2] = {1, 2};
  d.Append(v, 2);
  d.Append(v, 2);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 2u);
}

TEST(IoVecsTest, FvecsRoundTrip) {
  Dataset d = synthetic::MakeSiftLike(50, 1);
  std::string path = ::testing::TempDir() + "/roundtrip.fvecs";
  ASSERT_TRUE(io::WriteFvecs(path, d).ok());
  auto r = io::ReadFvecs(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), d.size());
  ASSERT_EQ(r.value().dim(), d.dim());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_FLOAT_EQ(r.value()[i][0], d[i][0]);
  }
  std::remove(path.c_str());
}

TEST(IoVecsTest, FvecsMaxRecords) {
  Dataset d = synthetic::MakeSiftLike(20, 2);
  std::string path = ::testing::TempDir() + "/maxrec.fvecs";
  ASSERT_TRUE(io::WriteFvecs(path, d).ok());
  auto r = io::ReadFvecs(path, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 7u);
  std::remove(path.c_str());
}

TEST(IoVecsTest, MissingFileIsIoError) {
  auto r = io::ReadFvecs("/nonexistent/file.fvecs");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(IoVecsTest, IvecsRoundTrip) {
  std::vector<std::vector<int32_t>> rows{{1, 2, 3}, {4, 5}};
  std::string path = ::testing::TempDir() + "/roundtrip.ivecs";
  ASSERT_TRUE(io::WriteIvecs(path, rows).ok());
  auto r = io::ReadIvecs(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), rows);
  std::remove(path.c_str());
}

TEST(SyntheticTest, ProfilesHaveExpectedDims) {
  EXPECT_EQ(synthetic::MakeSiftLike(10).dim(), 128u);
  EXPECT_EQ(synthetic::MakeBigAnnLike(10).dim(), 128u);
  EXPECT_EQ(synthetic::MakeDeepLike(10).dim(), 96u);
  EXPECT_EQ(synthetic::MakeGistLike(10).dim(), 960u);
  EXPECT_EQ(synthetic::MakeUkbenchLike(10).dim(), 128u);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  Dataset a = synthetic::MakeSiftLike(30, 7);
  Dataset b = synthetic::MakeSiftLike(30, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i][0], b[i][0]);
    EXPECT_FLOAT_EQ(a[i][a.dim() - 1], b[i][b.dim() - 1]);
  }
}

TEST(SyntheticTest, DeepLikeIsUnitNorm) {
  Dataset d = synthetic::MakeDeepLike(50, 3);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(SquaredNorm(d[i], d.dim()), 1.0f, 1e-3f);
  }
}

TEST(SyntheticTest, SiftLikeIsByteValued) {
  Dataset d = synthetic::MakeSiftLike(50, 4);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) {
      EXPECT_GE(d[i][j], 0.0f);
      EXPECT_LE(d[i][j], 255.0f);
      EXPECT_FLOAT_EQ(d[i][j], std::round(d[i][j]));
    }
  }
}

TEST(SyntheticTest, BaseAndQueriesShareDistribution) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 500, 50, 11, &base, &queries);
  EXPECT_EQ(base.size(), 500u);
  EXPECT_EQ(queries.size(), 50u);
  EXPECT_EQ(base.dim(), queries.dim());
  // A query's nearest base vector should be much closer than a random pair —
  // i.e. queries land inside the base clusters.
  auto gt = ComputeGroundTruth(base, queries, 1);
  double mean_nn = 0;
  for (const auto& g : gt) mean_nn += std::sqrt(g[0].dist);
  mean_nn /= gt.size();
  double mean_rand = 0;
  for (size_t i = 0; i < 50; ++i) {
    mean_rand += std::sqrt(SquaredL2(base[i], base[i + 200], base.dim()));
  }
  mean_rand /= 50;
  EXPECT_LT(mean_nn, 0.7 * mean_rand);
}

TEST(GroundTruthTest, MatchesBruteForceSemantics) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 200, 5, 13, &base, &queries);
  auto gt = ComputeGroundTruth(base, queries, 10);
  ASSERT_EQ(gt.size(), 5u);
  for (size_t q = 0; q < gt.size(); ++q) {
    ASSERT_EQ(gt[q].size(), 10u);
    // Ascending distances.
    for (size_t i = 1; i < gt[q].size(); ++i) {
      EXPECT_LE(gt[q][i - 1].dist, gt[q][i].dist);
    }
    // The top result really is the global minimum.
    float best = std::numeric_limits<float>::max();
    for (size_t i = 0; i < base.size(); ++i) {
      best = std::min(best, SquaredL2(queries[q], base[i], base.dim()));
    }
    EXPECT_FLOAT_EQ(gt[q][0].dist, best);
  }
}

TEST(GroundTruthTest, SelfKnnExcludesSelf) {
  Dataset base = synthetic::MakeUkbenchLike(100, 17);
  auto knn = ComputeSelfKnn(base, 5);
  for (size_t i = 0; i < knn.size(); ++i) {
    for (const auto& nb : knn[i]) EXPECT_NE(nb.id, i);
  }
}

TEST(LidTest, LowIntrinsicDimLowerThanHigh) {
  synthetic::GmmOptions low;
  low.dim = 64;
  low.intrinsic_dim = 4;
  low.num_clusters = 4;
  low.noise = 0.01f;
  synthetic::GmmOptions high = low;
  high.intrinsic_dim = 32;
  Dataset dl = synthetic::MakeGmm(1500, low, 3);
  Dataset dh = synthetic::MakeGmm(1500, high, 3);
  double lid_low = EstimateLid(dl, 20, 100);
  double lid_high = EstimateLid(dh, 20, 100);
  EXPECT_GT(lid_low, 0.0);
  EXPECT_LT(lid_low, lid_high);
}

TEST(LidTest, DegenerateInputsReturnZero) {
  Dataset tiny(3, 4);
  EXPECT_EQ(EstimateLid(tiny, 20, 10), 0.0);
}

}  // namespace
}  // namespace rpq
