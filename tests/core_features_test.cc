#include <gtest/gtest.h>

#include <set>

#include "common/distance.h"
#include "core/feature_extractor.h"
#include "data/synthetic.h"
#include "graph/vamana.h"
#include "quant/pq.h"

namespace rpq::core {
namespace {

class FeatureExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = synthetic::MakeUkbenchLike(800, 19);
    graph::VamanaOptions vopt;
    vopt.degree = 12;
    vopt.build_beam = 24;
    graph_ = graph::BuildVamana(base_, vopt);
  }
  Dataset base_;
  graph::ProximityGraph graph_;
};

TEST_F(FeatureExtractorTest, NHopNeighborhoodGrowsWithHops) {
  auto h1 = CollectNHopNeighborhood(graph_, 0, 1);
  auto h2 = CollectNHopNeighborhood(graph_, 0, 2);
  EXPECT_EQ(h1.size(), graph_.Neighbors(0).size());
  EXPECT_GT(h2.size(), h1.size());
  // 1-hop set is a subset of the 2-hop set.
  std::set<uint32_t> s2(h2.begin(), h2.end());
  for (uint32_t v : h1) EXPECT_TRUE(s2.count(v)) << v;
  // v itself is excluded.
  EXPECT_FALSE(s2.count(0));
}

TEST_F(FeatureExtractorTest, TripletsRespectScopes) {
  NeighborhoodSamplingOptions opt;
  opt.n_hops = 2;
  opt.k_pos = 5;
  opt.k_neg = 10;
  Rng rng(3);
  auto triplets = SampleNeighborhoodTriplets(graph_, base_, 100, opt, &rng);
  ASSERT_GT(triplets.size(), 50u);
  for (const auto& t : triplets) {
    ASSERT_NE(t.v, t.v_pos);
    ASSERT_NE(t.v, t.v_neg);
    ASSERT_NE(t.v_pos, t.v_neg);
    // Verify ranks: v_pos must be within the k_pos nearest of the n-hop
    // neighborhood, v_neg outside the positive scope.
    auto hood = CollectNHopNeighborhood(graph_, t.v, opt.n_hops);
    std::vector<Neighbor> ranked;
    for (uint32_t u : hood) {
      ranked.push_back({SquaredL2(base_[t.v], base_[u], base_.dim()), u});
    }
    std::sort(ranked.begin(), ranked.end());
    size_t pos_rank = ranked.size(), neg_rank = ranked.size();
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].id == t.v_pos) pos_rank = i;
      if (ranked[i].id == t.v_neg) neg_rank = i;
    }
    EXPECT_LT(pos_rank, opt.k_pos);
    EXPECT_GE(neg_rank, std::min(opt.k_pos, ranked.size() - 1));
    EXPECT_LT(neg_rank, opt.k_pos + opt.k_neg);
  }
}

TEST_F(FeatureExtractorTest, PositiveCloserThanNegativeOnAverage) {
  NeighborhoodSamplingOptions opt;
  Rng rng(5);
  auto triplets = SampleNeighborhoodTriplets(graph_, base_, 200, opt, &rng);
  double d_pos = 0, d_neg = 0;
  for (const auto& t : triplets) {
    d_pos += SquaredL2(base_[t.v], base_[t.v_pos], base_.dim());
    d_neg += SquaredL2(base_[t.v], base_[t.v_neg], base_.dim());
  }
  EXPECT_LT(d_pos, d_neg);
}

TEST_F(FeatureExtractorTest, RoutingSamplesAreWellFormed) {
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 16;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  auto codes = pq->EncodeDataset(base_);

  RoutingSamplingOptions ropt;
  ropt.num_queries = 10;
  ropt.beam_width = 8;
  ropt.max_steps_per_query = 12;
  Dataset queries;
  auto samples =
      SampleRoutingFeatures(graph_, base_, *pq, codes, ropt, &queries);
  EXPECT_EQ(queries.size(), 10u);
  ASSERT_GT(samples.size(), 10u);
  for (const auto& s : samples) {
    EXPECT_LT(s.query_id, queries.size());
    EXPECT_GE(s.candidates.size(), 2u);
    EXPECT_LE(s.candidates.size(), ropt.beam_width);
    EXPECT_LT(s.teacher, s.candidates.size());
    // Teacher really is the exact-distance argmin among candidates.
    float best = std::numeric_limits<float>::max();
    size_t best_i = 0;
    for (size_t i = 0; i < s.candidates.size(); ++i) {
      float d = SquaredL2(queries[s.query_id], base_[s.candidates[i]],
                          base_.dim());
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    EXPECT_EQ(s.teacher, best_i);
  }
}

TEST_F(FeatureExtractorTest, StepsPerQueryBounded) {
  quant::PqOptions popt;
  popt.m = 8;
  popt.k = 16;
  auto pq = quant::PqQuantizer::Train(base_, popt);
  auto codes = pq->EncodeDataset(base_);
  RoutingSamplingOptions ropt;
  ropt.num_queries = 5;
  ropt.beam_width = 8;
  ropt.max_steps_per_query = 3;
  Dataset queries;
  auto samples =
      SampleRoutingFeatures(graph_, base_, *pq, codes, ropt, &queries);
  EXPECT_LE(samples.size(), 5u * 3u);
}

}  // namespace
}  // namespace rpq::core
