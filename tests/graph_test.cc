#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>

#include "common/distance.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "graph/hnsw.h"
#include "graph/knn_graph.h"
#include "graph/nsg.h"
#include "graph/vamana.h"

namespace rpq::graph {
namespace {

Dataset SmallData(size_t n = 800, uint64_t seed = 3) {
  synthetic::GmmOptions opt;
  opt.dim = 24;
  opt.num_clusters = 8;
  opt.intrinsic_dim = 6;
  return synthetic::MakeGmm(n, opt, seed);
}

TEST(GraphTest, DegreeStats) {
  ProximityGraph g(3);
  g.Neighbors(0) = {1, 2};
  g.Neighbors(1) = {0};
  g.Neighbors(2) = {};
  auto s = g.ComputeDegreeStats();
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.0);
}

TEST(GraphTest, ReachableFraction) {
  ProximityGraph g(4);
  g.Neighbors(0) = {1};
  g.Neighbors(1) = {2};
  g.set_entry_point(0);
  EXPECT_DOUBLE_EQ(g.ReachableFraction(), 0.75);  // vertex 3 unreachable
}

TEST(GraphTest, SaveLoadRoundTrip) {
  ProximityGraph g(3);
  g.Neighbors(0) = {1, 2};
  g.Neighbors(2) = {0};
  g.set_entry_point(2);
  std::string path = ::testing::TempDir() + "/graph.bin";
  ASSERT_TRUE(g.Save(path).ok());
  auto loaded = ProximityGraph::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().entry_point(), 2u);
  EXPECT_EQ(loaded.value().Neighbors(0), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(loaded.value().Neighbors(1), std::vector<uint32_t>{});
  std::remove(path.c_str());
}

TEST(VisitedTableTest, EpochReset) {
  VisitedTable v(10);
  v.NextEpoch();
  v.MarkVisited(3);
  EXPECT_TRUE(v.Visited(3));
  EXPECT_FALSE(v.Visited(4));
  v.NextEpoch();
  EXPECT_FALSE(v.Visited(3));
}

TEST(BeamSearchTest, ExactSearchOnFullGraphIsBruteForce) {
  // With a complete graph and a huge beam, beam search must return exact NN.
  Dataset d = SmallData(120);
  ProximityGraph g(d.size());
  for (uint32_t v = 0; v < d.size(); ++v) {
    for (uint32_t u = 0; u < d.size(); ++u) {
      if (u != v) g.Neighbors(v).push_back(u);
    }
  }
  g.set_entry_point(0);
  auto gt = ComputeSelfKnn(d, 5);
  VisitedTable visited(d.size());
  for (uint32_t q = 0; q < 10; ++q) {
    auto res = BeamSearch(
        g, g.entry_point(),
        [&](uint32_t v) { return SquaredL2(d[q], d[v], d.dim()); },
        {128, 6}, &visited);
    // First hit is q itself (distance 0), then the true neighbors.
    ASSERT_GE(res.size(), 6u);
    EXPECT_EQ(res[0].id, q);
    for (size_t i = 0; i < 5; ++i) EXPECT_EQ(res[i + 1].id, gt[q][i].id);
  }
}

TEST(BeamSearchTest, StatsCountHopsAndDistances) {
  Dataset d = SmallData(100);
  ProximityGraph g(d.size());
  for (uint32_t v = 0; v + 1 < d.size(); ++v) g.Neighbors(v).push_back(v + 1);
  g.set_entry_point(0);
  VisitedTable visited(d.size());
  SearchStats stats;
  BeamSearch(
      g, 0, [&](uint32_t v) { return SquaredL2(d[0], d[v], d.dim()); },
      {200, 1}, &visited, &stats);
  // A chain forces visiting every vertex once.
  EXPECT_EQ(stats.dist_comps, d.size());
  EXPECT_EQ(stats.hops, d.size());
}

TEST(BeamSearchTest, ObserverSeesRankedBeams) {
  Dataset d = SmallData(200);
  VamanaOptions vopt;
  vopt.degree = 8;
  vopt.build_beam = 16;
  auto g = BuildVamana(d, vopt);
  VisitedTable visited(d.size());
  size_t calls = 0;
  BeamSearch(
      g, g.entry_point(),
      [&](uint32_t v) { return SquaredL2(d[5], d[v], d.dim()); }, {16, 5},
      &visited, nullptr, [&](const std::vector<Neighbor>& beam) {
        ++calls;
        for (size_t i = 1; i < beam.size(); ++i) {
          EXPECT_LE(beam[i - 1].dist, beam[i].dist);
        }
        EXPECT_LE(beam.size(), 16u);
      });
  EXPECT_GT(calls, 0u);
}

TEST(KnnGraphTest, ExactListsAreSortedAndCorrect) {
  Dataset d = SmallData(150);
  auto knn = BuildExactKnn(d, 4);
  auto gt = ComputeSelfKnn(d, 4);
  for (size_t i = 0; i < d.size(); ++i) {
    ASSERT_EQ(knn[i].size(), 4u);
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(knn[i][j].id, gt[i][j].id);
  }
}

TEST(KnnGraphTest, NnDescentApproximatesExact) {
  Dataset d = SmallData(600, 21);
  NnDescentOptions opt;
  opt.k = 10;
  opt.iters = 10;
  auto approx = BuildNnDescent(d, opt);
  auto exact = ComputeSelfKnn(d, 10);
  double recall = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    size_t hits = 0;
    for (const auto& a : approx[i]) {
      for (const auto& e : exact[i]) {
        if (a.id == e.id) {
          ++hits;
          break;
        }
      }
    }
    recall += static_cast<double>(hits) / 10.0;
  }
  recall /= d.size();
  EXPECT_GT(recall, 0.85);
}

TEST(FindMedoidTest, MedoidMinimizesDistanceToMean) {
  Dataset d = SmallData(100);
  uint32_t m = FindMedoid(d);
  EXPECT_LT(m, d.size());
}

class GraphBuilderRecallTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphBuilderRecallTest, ExactSearchReachesHighRecall) {
  // All three PGs must support accurate routing with exact distances.
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 1200, 30, 33, &base, &queries);
  std::string which = GetParam();
  ProximityGraph g;
  if (which == "vamana") {
    VamanaOptions opt;
    opt.degree = 24;
    opt.build_beam = 48;
    g = BuildVamana(base, opt);
  } else if (which == "nsg") {
    NsgOptions opt;
    opt.degree = 24;
    opt.knn_k = 24;
    opt.search_pool = 48;
    g = BuildNsg(base, opt);
  } else {
    HnswOptions opt;
    opt.m = 12;
    opt.ef_construction = 80;
    g = HnswIndex::Build(base, opt)->Flatten();
  }
  EXPECT_GT(g.ReachableFraction(), 0.999) << which;

  auto gt = ComputeGroundTruth(base, queries, 10);
  VisitedTable visited(base.size());
  std::vector<std::vector<Neighbor>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    results[q] = BeamSearch(
        g, g.entry_point(),
        [&](uint32_t v) { return SquaredL2(queries[q], base[v], base.dim()); },
        {64, 10}, &visited);
  }
  EXPECT_GT(eval::MeanRecallAtK(results, gt, 10), 0.9) << which;
}

INSTANTIATE_TEST_SUITE_P(Builders, GraphBuilderRecallTest,
                         ::testing::Values("vamana", "nsg", "hnsw"));

TEST(VamanaTest, RespectsDegreeBound) {
  Dataset d = SmallData(500, 41);
  VamanaOptions opt;
  opt.degree = 10;
  opt.build_beam = 20;
  auto g = BuildVamana(d, opt);
  auto stats = g.ComputeDegreeStats();
  EXPECT_LE(stats.max_degree, 10u + 1);  // +1 transient reverse edge allowed
  EXPECT_GT(stats.avg_degree, 2.0);
}

TEST(VamanaTest, RobustPruneKeepsNearestFirst) {
  Dataset d = SmallData(50, 43);
  std::vector<Neighbor> cand;
  for (uint32_t i = 1; i < 30; ++i) {
    cand.push_back({SquaredL2(d[0], d[i], d.dim()), i});
  }
  std::sort(cand.begin(), cand.end());
  uint32_t nearest = cand[0].id;
  auto pruned = RobustPrune(d, 0, cand, 1.2f, 8);
  ASSERT_FALSE(pruned.empty());
  EXPECT_EQ(pruned[0], nearest);
  EXPECT_LE(pruned.size(), 8u);
}

TEST(VamanaTest, HigherAlphaKeepsMoreEdges) {
  Dataset d = SmallData(200, 45);
  std::vector<Neighbor> cand;
  for (uint32_t i = 1; i < 100; ++i) {
    cand.push_back({SquaredL2(d[0], d[i], d.dim()), i});
  }
  auto tight = RobustPrune(d, 0, cand, 1.0f, 64);
  auto loose = RobustPrune(d, 0, cand, 1.5f, 64);
  EXPECT_GE(loose.size(), tight.size());
}

TEST(NsgTest, FullyReachableAndBounded) {
  Dataset d = SmallData(600, 47);
  NsgOptions opt;
  opt.degree = 12;
  opt.knn_k = 16;
  opt.search_pool = 24;
  auto g = BuildNsg(d, opt);
  EXPECT_GT(g.ReachableFraction(), 0.999);
  // The connectivity pass may add one overflow edge per adopted orphan.
  EXPECT_LE(g.ComputeDegreeStats().max_degree, 12u + 4);
}

TEST(HnswTest, SearchFindsExactNeighborsOnEasyData) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 800, 20, 49, &base, &queries);
  HnswOptions opt;
  opt.m = 12;
  opt.ef_construction = 100;
  auto index = HnswIndex::Build(base, opt);
  auto gt = ComputeGroundTruth(base, queries, 10);
  std::vector<std::vector<Neighbor>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    results[q] = index->Search(queries[q], 10, 80);
  }
  EXPECT_GT(eval::MeanRecallAtK(results, gt, 10), 0.9);
}

TEST(HnswTest, FlattenPreservesBaseLayer) {
  Dataset d = SmallData(300, 51);
  HnswOptions opt;
  opt.m = 8;
  auto index = HnswIndex::Build(d, opt);
  auto g = index->Flatten();
  EXPECT_EQ(g.num_vertices(), d.size());
  EXPECT_EQ(g.entry_point(), index->entry_point());
  auto stats = g.ComputeDegreeStats();
  EXPECT_LE(stats.max_degree, opt.m * 2);
  EXPECT_GT(stats.avg_degree, 2.0);
}

TEST(BeamSearchTest, RecallNonDecreasingInBeamWidth) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 1000, 25, 53, &base, &queries);
  VamanaOptions vopt;
  vopt.degree = 16;
  vopt.build_beam = 32;
  auto g = BuildVamana(base, vopt);
  auto gt = ComputeGroundTruth(base, queries, 10);
  VisitedTable visited(base.size());
  double prev = -1;
  for (size_t beam : {10u, 20u, 40u, 80u, 160u}) {
    std::vector<std::vector<Neighbor>> results(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = BeamSearch(
          g, g.entry_point(),
          [&](uint32_t v) { return SquaredL2(queries[q], base[v], base.dim()); },
          {beam, 10}, &visited);
    }
    double rec = eval::MeanRecallAtK(results, gt, 10);
    EXPECT_GE(rec, prev - 0.02);  // allow tiny non-monotonic noise
    prev = rec;
  }
  EXPECT_GT(prev, 0.85);
}

}  // namespace
}  // namespace rpq::graph
