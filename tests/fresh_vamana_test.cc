#include <gtest/gtest.h>

#include "common/distance.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/fresh_vamana.h"

namespace rpq::graph {
namespace {

Dataset SmallData(size_t n = 600, uint64_t seed = 5) {
  synthetic::GmmOptions opt;
  opt.dim = 24;
  opt.num_clusters = 8;
  opt.intrinsic_dim = 6;
  return synthetic::MakeGmm(n, opt, seed);
}

VamanaOptions SmallOptions() {
  VamanaOptions opt;
  opt.degree = 12;
  opt.build_beam = 24;
  return opt;
}

TEST(FreshVamanaTest, InsertAssignsSequentialIds) {
  Dataset d = SmallData(20);
  FreshVamanaIndex index(d.dim(), SmallOptions());
  for (uint32_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(index.Insert(d[i]), i);
  }
  EXPECT_EQ(index.size(), d.size());
}

TEST(FreshVamanaTest, StreamingBuildReachesGoodRecall) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 800, 20, 9, &base, &queries);
  FreshVamanaIndex index(base.dim(), SmallOptions());
  for (size_t i = 0; i < base.size(); ++i) index.Insert(base[i]);

  auto gt = ComputeGroundTruth(base, queries, 10);
  std::vector<std::vector<Neighbor>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    results[q] = index.Search(queries[q], 10, 64);
  }
  EXPECT_GT(eval::MeanRecallAtK(results, gt, 10), 0.85);
}

TEST(FreshVamanaTest, DeletedVerticesNeverReturned) {
  Dataset d = SmallData(300);
  FreshVamanaIndex index(d.dim(), SmallOptions());
  for (size_t i = 0; i < d.size(); ++i) index.Insert(d[i]);
  // Delete the exact nearest neighbor of query d[0] (which is itself).
  index.Delete(0);
  auto res = index.Search(d[0], 10, 32);
  for (const auto& nb : res) EXPECT_NE(nb.id, 0u);
  EXPECT_EQ(index.size(), d.size() - 1);
}

TEST(FreshVamanaTest, DeleteIsIdempotent) {
  Dataset d = SmallData(100);
  FreshVamanaIndex index(d.dim(), SmallOptions());
  for (size_t i = 0; i < d.size(); ++i) index.Insert(d[i]);
  index.Delete(5);
  index.Delete(5);
  EXPECT_EQ(index.size(), d.size() - 1);
}

TEST(FreshVamanaTest, ConsolidateRemovesTombstoneEdges) {
  Dataset d = SmallData(300);
  FreshVamanaIndex index(d.dim(), SmallOptions());
  for (size_t i = 0; i < d.size(); ++i) index.Insert(d[i]);
  for (uint32_t v = 0; v < 50; ++v) index.Delete(v);
  index.Consolidate();
  // No live vertex may point at a tombstone; tombstones have no edges.
  for (uint32_t v = 0; v < index.total_slots(); ++v) {
    if (index.IsDeleted(v)) {
      EXPECT_TRUE(index.graph().Neighbors(v).empty());
      continue;
    }
    for (uint32_t u : index.graph().Neighbors(v)) {
      EXPECT_FALSE(index.IsDeleted(u)) << v << " -> " << u;
    }
  }
}

TEST(FreshVamanaTest, RecallSurvivesDeleteConsolidateCycle) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("ukbench", 900, 20, 13, &base, &queries);
  FreshVamanaIndex index(base.dim(), SmallOptions());
  for (size_t i = 0; i < base.size(); ++i) index.Insert(base[i]);
  // Remove a random third of the base, repair, and verify search quality
  // against ground truth restricted to the survivors.
  for (uint32_t v = 0; v < base.size(); v += 3) index.Delete(v);
  index.Consolidate();

  std::vector<std::vector<Neighbor>> results(queries.size()), gt(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    results[q] = index.Search(queries[q], 10, 64);
    TopK top(10);
    for (uint32_t v = 0; v < base.size(); ++v) {
      if (index.IsDeleted(v)) continue;
      top.Push(SquaredL2(queries[q], base[v], base.dim()), v);
    }
    gt[q] = top.Take();
  }
  EXPECT_GT(eval::MeanRecallAtK(results, gt, 10), 0.8);
}

TEST(FreshVamanaTest, EntryPointMovesOffDeletedVertex) {
  Dataset d = SmallData(200);
  FreshVamanaIndex index(d.dim(), SmallOptions());
  for (size_t i = 0; i < d.size(); ++i) index.Insert(d[i]);
  uint32_t entry = index.graph().entry_point();
  index.Delete(entry);
  EXPECT_NE(index.graph().entry_point(), entry);
  EXPECT_FALSE(index.IsDeleted(index.graph().entry_point()));
}

TEST(FreshVamanaTest, EmptyIndexSearchIsEmpty) {
  FreshVamanaIndex index(16, SmallOptions());
  EXPECT_TRUE(index.Search(std::vector<float>(16, 0.f).data(), 5, 16).empty());
}

}  // namespace
}  // namespace rpq::graph
