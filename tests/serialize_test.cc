#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.h"
#include "quant/adc.h"
#include "quant/opq.h"
#include "quant/serialize.h"

namespace rpq::quant {
namespace {

Dataset SmallData(size_t n = 300) {
  synthetic::GmmOptions opt;
  opt.dim = 32;
  opt.num_clusters = 6;
  opt.intrinsic_dim = 8;
  return synthetic::MakeGmm(n, opt, 21);
}

TEST(SerializeTest, PlainPqRoundTrip) {
  Dataset d = SmallData();
  PqOptions opt;
  opt.m = 4;
  opt.k = 16;
  auto pq = PqQuantizer::Train(d, opt);
  std::string path = ::testing::TempDir() + "/pq.rpqq";
  ASSERT_TRUE(SaveQuantizer(*pq, path).ok());
  auto loaded = LoadQuantizer(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->dim(), pq->dim());
  EXPECT_EQ(loaded.value()->num_chunks(), pq->num_chunks());
  EXPECT_EQ(loaded.value()->num_centroids(), pq->num_centroids());
  EXPECT_FALSE(loaded.value()->has_rotation());
  // Identical codes for identical inputs.
  std::vector<uint8_t> c1(pq->code_size()), c2(pq->code_size());
  for (size_t i = 0; i < 30; ++i) {
    pq->Encode(d[i], c1.data());
    loaded.value()->Encode(d[i], c2.data());
    EXPECT_EQ(c1, c2) << "vector " << i;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RotatedQuantizerRoundTrip) {
  Dataset d = SmallData();
  OpqOptions opt;
  opt.pq.m = 4;
  opt.pq.k = 16;
  opt.outer_iters = 2;
  auto opq = TrainOpq(d, opt);
  std::string path = ::testing::TempDir() + "/opq.rpqq";
  ASSERT_TRUE(SaveQuantizer(*opq, path).ok());
  auto loaded = LoadQuantizer(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value()->has_rotation());
  // ADC tables must agree bitwise (same rotation, same codebook).
  AdcTable t1(*opq, d[0]);
  AdcTable t2(*loaded.value(), d[0]);
  std::vector<uint8_t> code(opq->code_size());
  opq->Encode(d[5], code.data());
  EXPECT_FLOAT_EQ(t1.Distance(code.data()), t2.Distance(code.data()));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageFile) {
  std::string path = ::testing::TempDir() + "/garbage.rpqq";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a model", f);
  std::fclose(f);
  auto loaded = LoadQuantizer(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsTruncatedModel) {
  Dataset d = SmallData();
  PqOptions opt;
  opt.m = 4;
  opt.k = 16;
  auto pq = PqQuantizer::Train(d, opt);
  std::string path = ::testing::TempDir() + "/trunc.rpqq";
  ASSERT_TRUE(SaveQuantizer(*pq, path).ok());
  // Chop the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  auto loaded = LoadQuantizer(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, CodesRoundTrip) {
  Dataset d = SmallData();
  PqOptions opt;
  opt.m = 4;
  opt.k = 16;
  auto pq = PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  std::string path = ::testing::TempDir() + "/codes.bin";
  ASSERT_TRUE(SaveCodes(codes, pq->code_size(), path).ok());
  size_t code_size = 0;
  auto loaded = LoadCodes(path, &code_size);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(code_size, pq->code_size());
  EXPECT_EQ(loaded.value(), codes);
  std::remove(path.c_str());
}

TEST(SerializeTest, CodesRejectBadShape) {
  std::vector<uint8_t> codes(10);
  EXPECT_FALSE(SaveCodes(codes, 3, "/tmp/never_written.bin").ok());
}

}  // namespace
}  // namespace rpq::quant
