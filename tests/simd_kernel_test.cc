// Parity tests for the SIMD kernel subsystem: every dispatched kernel must
// agree with the scalar reference across odd dimensions, unaligned pointers,
// and batch remainders. The ADC kernels must agree bit-for-bit (they promise
// scalar accumulation order); the float kernels get 1e-4 relative tolerance
// because FMA/width changes the summation tree.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "quant/adc.h"
#include "quant/pq.h"
#include "simd/simd.h"

namespace rpq::simd {
namespace {

constexpr float kRelTol = 1e-4f;

void ExpectClose(float got, float want) {
  float scale = std::max(1.0f, std::abs(want));
  EXPECT_NEAR(got, want, kRelTol * scale);
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->Gaussian();
  return v;
}

const size_t kDims[] = {1, 2, 7, 8, 15, 16, 31, 96, 128, 960};

TEST(SimdKernelTest, ActiveBackendIsReported) {
  ASSERT_NE(ActiveKernelName(), nullptr);
  const char* disable = std::getenv("RPQ_DISABLE_SIMD");
  if (disable != nullptr && disable[0] != '\0' && disable[0] != '0') {
    EXPECT_STREQ(ActiveKernelName(), "scalar");
  }
}

TEST(SimdKernelTest, SquaredL2MatchesScalar) {
  Rng rng(1);
  for (size_t d : kDims) {
    auto a = RandomVec(d, &rng);
    auto b = RandomVec(d, &rng);
    ExpectClose(Ops().squared_l2(a.data(), b.data(), d),
                ScalarOps().squared_l2(a.data(), b.data(), d));
  }
}

TEST(SimdKernelTest, DotMatchesScalar) {
  Rng rng(2);
  for (size_t d : kDims) {
    auto a = RandomVec(d, &rng);
    auto b = RandomVec(d, &rng);
    ExpectClose(Ops().dot(a.data(), b.data(), d),
                ScalarOps().dot(a.data(), b.data(), d));
  }
}

TEST(SimdKernelTest, SquaredNormMatchesScalar) {
  Rng rng(3);
  for (size_t d : kDims) {
    auto a = RandomVec(d, &rng);
    ExpectClose(Ops().squared_norm(a.data(), d),
                ScalarOps().squared_norm(a.data(), d));
  }
}

TEST(SimdKernelTest, UnalignedPointersMatchScalar) {
  Rng rng(4);
  for (size_t d : kDims) {
    // Shift both operands one float off any natural vector alignment.
    auto a = RandomVec(d + 1, &rng);
    auto b = RandomVec(d + 1, &rng);
    ExpectClose(Ops().squared_l2(a.data() + 1, b.data() + 1, d),
                ScalarOps().squared_l2(a.data() + 1, b.data() + 1, d));
    ExpectClose(Ops().dot(a.data() + 1, b.data() + 1, d),
                ScalarOps().dot(a.data() + 1, b.data() + 1, d));
  }
}

TEST(SimdKernelTest, L2ToManyMatchesScalar) {
  Rng rng(5);
  // 4-8 exercise the cross-row small-dim kernel, 9-15 the mid-dim cross-row
  // kernel (two loads per row); the rest cover the scalar fallback (d < 4)
  // and the wide per-row path.
  for (size_t d : {size_t(1), size_t(3), size_t(4), size_t(5), size_t(6),
                   size_t(7), size_t(8), size_t(9), size_t(10), size_t(11),
                   size_t(12), size_t(13), size_t(14), size_t(15), size_t(16),
                   size_t(96), size_t(128)}) {
    for (size_t n : {size_t(1), size_t(3), size_t(17), size_t(64)}) {
      auto q = RandomVec(d, &rng);
      auto base = RandomVec(n * d, &rng);
      std::vector<float> got(n), want(n);
      Ops().l2_to_many(q.data(), base.data(), n, d, got.data());
      ScalarOps().l2_to_many(q.data(), base.data(), n, d, want.data());
      for (size_t i = 0; i < n; ++i) ExpectClose(got[i], want[i]);
    }
  }
}

// Reference single-code scan, accumulation in chunk order.
float AdcOneRef(const float* table, size_t m, size_t k, const uint8_t* code) {
  float acc = 0.f;
  for (size_t j = 0; j < m; ++j) acc += table[j * k + code[j]];
  return acc;
}

TEST(SimdKernelTest, AdcBatchMatchesScalarBitExactly) {
  Rng rng(6);
  for (size_t m : {size_t(1), size_t(8), size_t(16), size_t(60)}) {
    for (size_t k : {size_t(16), size_t(256)}) {
      auto table = RandomVec(m * k, &rng);
      // Batch sizes straddling all the unroll remainders (16, 8, scalar tail).
      for (size_t n : {size_t(1), size_t(4), size_t(7), size_t(8), size_t(9),
                       size_t(17), size_t(64), size_t(69)}) {
        std::vector<uint8_t> codes(n * m);
        for (auto& c : codes) c = static_cast<uint8_t>(rng.UniformIndex(k));
        std::vector<float> got(n);
        Ops().adc_batch(table.data(), m, k, codes.data(), m, n, got.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(got[i], AdcOneRef(table.data(), m, k, codes.data() + i * m))
              << "m=" << m << " k=" << k << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, AdcBatchHonorsStride) {
  Rng rng(7);
  const size_t m = 8, k = 64, n = 21, stride = m + 5;
  auto table = RandomVec(m * k, &rng);
  std::vector<uint8_t> codes(n * stride);
  for (auto& c : codes) c = static_cast<uint8_t>(rng.UniformIndex(k));
  std::vector<float> got(n);
  Ops().adc_batch(table.data(), m, k, codes.data(), stride, n, got.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], AdcOneRef(table.data(), m, k, codes.data() + i * stride));
  }
}

TEST(SimdKernelTest, AdcBatchGatherMatchesScalarBitExactly) {
  Rng rng(8);
  const size_t m = 16, k = 256, num_codes = 200;
  auto table = RandomVec(m * k, &rng);
  std::vector<uint8_t> codes(num_codes * m);
  for (auto& c : codes) c = static_cast<uint8_t>(rng.UniformIndex(k));
  for (size_t n : {size_t(1), size_t(8), size_t(13), size_t(33), size_t(80)}) {
    std::vector<uint32_t> ids(n);
    for (auto& id : ids) id = static_cast<uint32_t>(rng.UniformIndex(num_codes));
    std::vector<float> got(n);
    Ops().adc_batch_gather(table.data(), m, k, codes.data(), m, ids.data(), n,
                           got.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i],
                AdcOneRef(table.data(), m, k, codes.data() + ids[i] * m));
    }
  }
}

// FastScan shuffle kernel: raw u16 sums must match the scalar reference
// bit-for-bit (pure integer adds) across odd row counts and block tails.
TEST(SimdKernelTest, AdcFastScanMatchesScalarBitExactly) {
  Rng rng(10);
  for (size_t m2 : {size_t(2), size_t(8), size_t(16), size_t(34), size_t(62)}) {
    for (size_t n_blocks : {size_t(1), size_t(2), size_t(5)}) {
      std::vector<uint8_t> lut8(m2 * 16);
      for (auto& v : lut8) v = static_cast<uint8_t>(rng.UniformIndex(256));
      // Any byte pattern is a valid packed block (both nibbles are in
      // [0, 16)), so random bytes cover the full index space.
      std::vector<uint8_t> packed(n_blocks * 16 * m2);
      for (auto& v : packed) v = static_cast<uint8_t>(rng.UniformIndex(256));
      std::vector<uint16_t> got(n_blocks * 32), want(n_blocks * 32);
      Ops().adc_fastscan(lut8.data(), m2, packed.data(), n_blocks, got.data());
      ScalarOps().adc_fastscan(lut8.data(), m2, packed.data(), n_blocks,
                               want.data());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "m2=" << m2 << " blocks=" << n_blocks << " i=" << i;
      }
    }
  }
}

// Multi-query FastScan: query-major sums must match the scalar reference —
// which is literally nq single-query scans — bit-for-bit, across query
// counts straddling every tile width (4/2/1 on x86, 2/1 on NEON).
TEST(SimdKernelTest, AdcFastScanMultiMatchesScalarBitExactly) {
  Rng rng(11);
  for (size_t m2 : {size_t(2), size_t(8), size_t(16), size_t(34)}) {
    for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(4), size_t(5),
                      size_t(7), size_t(8), size_t(9)}) {
      for (size_t n_blocks : {size_t(1), size_t(3)}) {
        std::vector<uint8_t> luts(nq * m2 * 16);
        for (auto& v : luts) v = static_cast<uint8_t>(rng.UniformIndex(256));
        std::vector<uint8_t> packed(n_blocks * 16 * m2);
        for (auto& v : packed) v = static_cast<uint8_t>(rng.UniformIndex(256));
        std::vector<uint16_t> got(nq * n_blocks * 32), want(nq * n_blocks * 32);
        Ops().adc_fastscan_multi(luts.data(), nq, m2, packed.data(), n_blocks,
                                 got.data());
        ScalarOps().adc_fastscan_multi(luts.data(), nq, m2, packed.data(),
                                       n_blocks, want.data());
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i])
              << "m2=" << m2 << " nq=" << nq << " blocks=" << n_blocks
              << " i=" << i;
        }
      }
    }
  }
}

// And against the dispatched single-query kernel: batching queries must not
// change any query's sums.
TEST(SimdKernelTest, AdcFastScanMultiMatchesSingleQueryScans) {
  Rng rng(12);
  const size_t m2 = 16, nq = 6, n_blocks = 4;
  std::vector<uint8_t> luts(nq * m2 * 16);
  for (auto& v : luts) v = static_cast<uint8_t>(rng.UniformIndex(256));
  std::vector<uint8_t> packed(n_blocks * 16 * m2);
  for (auto& v : packed) v = static_cast<uint8_t>(rng.UniformIndex(256));
  std::vector<uint16_t> multi(nq * n_blocks * 32), single(n_blocks * 32);
  Ops().adc_fastscan_multi(luts.data(), nq, m2, packed.data(), n_blocks,
                           multi.data());
  for (size_t q = 0; q < nq; ++q) {
    Ops().adc_fastscan(luts.data() + q * m2 * 16, m2, packed.data(), n_blocks,
                       single.data());
    for (size_t i = 0; i < single.size(); ++i) {
      ASSERT_EQ(multi[q * n_blocks * 32 + i], single[i])
          << "q=" << q << " i=" << i;
    }
  }
}

// Split-table kernel (K = 256 scored as two nibble planes): dispatched
// backends must match the scalar reference bit-for-bit. Here m is the CODE
// byte count — the LUT carries 2m interleaved 16-entry rows — and the code
// counts cover lone, partial-tail, exactly-full, and multi-block scans.
TEST(SimdKernelTest, AdcFastScanSplitMatchesScalarBitExactly) {
  Rng rng(13);
  for (size_t m : {size_t(4), size_t(8), size_t(16), size_t(17)}) {
    for (size_t n :
         {size_t(1), size_t(31), size_t(32), size_t(33), size_t(65)}) {
      const size_t n_blocks = (n + 31) / 32;
      std::vector<uint8_t> lut8(2 * m * 16);
      for (auto& v : lut8) v = static_cast<uint8_t>(rng.UniformIndex(256));
      // A split block row holds full 8-bit code bytes (any byte pattern is
      // valid); tail slots stay zero exactly as PackedCodes pads them.
      std::vector<uint8_t> packed(n_blocks * m * 32, 0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j) {
          packed[(i / 32) * m * 32 + j * 32 + (i % 32)] =
              static_cast<uint8_t>(rng.UniformIndex(256));
        }
      }
      std::vector<uint16_t> got(n_blocks * 32), want(n_blocks * 32);
      Ops().adc_fastscan_split(lut8.data(), m, packed.data(), n_blocks,
                               got.data());
      ScalarOps().adc_fastscan_split(lut8.data(), m, packed.data(), n_blocks,
                                     want.data());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "m=" << m << " n=" << n << " i=" << i;
      }
    }
  }
}

// The layout identity the split regime rests on: a split block of full code
// bytes IS the 4-bit packed block of the nibble-expanded codes, so the
// split kernel must reproduce the plain kernel run at 2m rows over the very
// same bytes — bit-for-bit, on every backend.
TEST(SimdKernelTest, AdcFastScanSplitEqualsPlainKernelAtDoubleRows) {
  Rng rng(15);
  const size_t m = 8, n_blocks = 2;
  std::vector<uint8_t> lut8(2 * m * 16);
  for (auto& v : lut8) v = static_cast<uint8_t>(rng.UniformIndex(256));
  std::vector<uint8_t> packed(n_blocks * m * 32);
  for (auto& v : packed) v = static_cast<uint8_t>(rng.UniformIndex(256));
  std::vector<uint16_t> got(n_blocks * 32), want(n_blocks * 32);
  Ops().adc_fastscan_split(lut8.data(), m, packed.data(), n_blocks,
                           got.data());
  Ops().adc_fastscan(lut8.data(), 2 * m, packed.data(), n_blocks, want.data());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "i=" << i;
  }
}

// Multi-query split scans must equal nq single-query split scans and the
// scalar multi reference (the residual SearchBatch grouping rides this).
TEST(SimdKernelTest, AdcFastScanSplitMultiMatchesSingleQueryScans) {
  Rng rng(14);
  const size_t m = 8, n_blocks = 3;
  for (size_t nq : {size_t(1), size_t(2), size_t(3), size_t(5), size_t(8)}) {
    std::vector<uint8_t> luts(nq * 2 * m * 16);
    for (auto& v : luts) v = static_cast<uint8_t>(rng.UniformIndex(256));
    std::vector<uint8_t> packed(n_blocks * m * 32);
    for (auto& v : packed) v = static_cast<uint8_t>(rng.UniformIndex(256));
    std::vector<uint16_t> multi(nq * n_blocks * 32), want(nq * n_blocks * 32),
        single(n_blocks * 32);
    Ops().adc_fastscan_split_multi(luts.data(), nq, m, packed.data(), n_blocks,
                                   multi.data());
    ScalarOps().adc_fastscan_split_multi(luts.data(), nq, m, packed.data(),
                                         n_blocks, want.data());
    for (size_t i = 0; i < multi.size(); ++i) {
      ASSERT_EQ(multi[i], want[i]) << "nq=" << nq << " i=" << i;
    }
    for (size_t q = 0; q < nq; ++q) {
      Ops().adc_fastscan_split(luts.data() + q * 2 * m * 16, m, packed.data(),
                               n_blocks, single.data());
      for (size_t i = 0; i < single.size(); ++i) {
        ASSERT_EQ(multi[q * n_blocks * 32 + i], single[i])
            << "nq=" << nq << " q=" << q << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, AdcTableBatchAgreesWithSingleCodeDistance) {
  // End-to-end through a trained quantizer: DistanceBatch and
  // DistanceBatchGather must reproduce per-code Distance().
  Rng rng(9);
  const size_t n = 300, d = 32;
  std::vector<float> data(n * d);
  for (auto& x : data) x = rng.Gaussian();
  Dataset train(n, d, std::move(data));
  quant::PqOptions opt;
  opt.m = 8;
  opt.k = 16;
  opt.kmeans_iters = 3;
  auto pq = quant::PqQuantizer::Train(train, opt);
  auto codes = pq->EncodeDataset(train);
  quant::AdcTable table(*pq, train[0]);

  std::vector<float> batch(n);
  table.DistanceBatch(codes.data(), n, batch.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], table.Distance(codes.data() + i * pq->code_size()));
  }

  std::vector<uint32_t> ids = {5, 0, 299, 17, 17, 42, 100, 1, 255, 3, 9};
  std::vector<float> gathered(ids.size());
  table.DistanceBatchGather(codes.data(), pq->code_size(), ids.data(),
                            ids.size(), gathered.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(gathered[i],
              table.Distance(codes.data() + ids[i] * pq->code_size()));
  }
}

}  // namespace
}  // namespace rpq::simd
