#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/distance.h"
#include "data/synthetic.h"
#include "quant/adc.h"
#include "quant/kmeans.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "quant/split.h"

namespace rpq::quant {
namespace {

Dataset TestData(size_t n = 600, uint64_t seed = 5) {
  synthetic::GmmOptions opt;
  opt.dim = 32;
  opt.num_clusters = 8;
  opt.intrinsic_dim = 8;
  opt.anisotropy = 2.0f;
  return synthetic::MakeGmm(n, opt, seed);
}

TEST(KMeansTest, InertiaNonIncreasingAcrossIterations) {
  Dataset d = TestData();
  KMeansOptions o1;
  o1.k = 16;
  o1.max_iters = 1;
  o1.epsilon = 0.0f;
  KMeansOptions o5 = o1;
  o5.max_iters = 5;
  KMeansOptions o15 = o1;
  o15.max_iters = 15;
  double i1 = RunKMeans(d.data(), d.size(), d.dim(), o1).inertia;
  double i5 = RunKMeans(d.data(), d.size(), d.dim(), o5).inertia;
  double i15 = RunKMeans(d.data(), d.size(), d.dim(), o15).inertia;
  EXPECT_LE(i5, i1 * (1 + 1e-9));
  EXPECT_LE(i15, i5 * (1 + 1e-9));
}

TEST(KMeansTest, AssignmentsPointToNearestCentroid) {
  Dataset d = TestData(300);
  KMeansOptions opt;
  opt.k = 8;
  auto res = RunKMeans(d.data(), d.size(), d.dim(), opt);
  for (size_t i = 0; i < d.size(); ++i) {
    uint32_t nearest = NearestCentroid(d[i], res.centroids.data(), 8, d.dim());
    float d_assigned = SquaredL2(d[i], res.centroids.data() + res.assignment[i] * d.dim(), d.dim());
    float d_nearest = SquaredL2(d[i], res.centroids.data() + nearest * d.dim(), d.dim());
    EXPECT_NEAR(d_assigned, d_nearest, 1e-3f * (1 + d_nearest));
  }
}

TEST(KMeansTest, HandlesFewerPointsThanClusters) {
  Dataset d = TestData(5);
  KMeansOptions opt;
  opt.k = 16;
  auto res = RunKMeans(d.data(), d.size(), d.dim(), opt);
  EXPECT_EQ(res.centroids.size(), 16u * d.dim());
}

TEST(PqTest, EncodeDecodeShrinksError) {
  Dataset d = TestData();
  PqOptions opt;
  opt.m = 4;
  opt.k = 32;
  auto pq = PqQuantizer::Train(d, opt);
  // Reconstruction must be far better than quantizing to the global mean.
  std::vector<float> mean(d.dim(), 0.0f);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) mean[j] += d[i][j] / d.size();
  }
  double mean_err = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    mean_err += SquaredL2(d[i], mean.data(), d.dim());
  }
  mean_err /= d.size();
  EXPECT_LT(pq->Distortion(d), 0.5 * mean_err);
}

TEST(PqTest, AdcTableMatchesDecodeDistance) {
  Dataset d = TestData(400);
  PqOptions opt;
  opt.m = 8;
  opt.k = 16;
  auto pq = PqQuantizer::Train(d, opt);
  std::vector<uint8_t> code(pq->code_size());
  std::vector<float> rec(d.dim());
  for (size_t q = 0; q < 5; ++q) {
    AdcTable table(*pq, d[q]);
    for (size_t i = 100; i < 110; ++i) {
      pq->Encode(d[i], code.data());
      pq->Decode(code.data(), rec.data());
      float direct = SquaredL2(d[q], rec.data(), d.dim());
      EXPECT_NEAR(table.Distance(code.data()), direct, 1e-2f * (1 + direct));
    }
  }
}

TEST(PqTest, SymmetricDistanceSelfIsZero) {
  Dataset d = TestData(200);
  PqOptions opt;
  opt.m = 4;
  opt.k = 16;
  auto pq = PqQuantizer::Train(d, opt);
  std::vector<uint8_t> code(pq->code_size());
  pq->Encode(d[0], code.data());
  EXPECT_FLOAT_EQ(SymmetricDistance(*pq, code.data(), code.data()), 0.0f);
}

TEST(SplitPqTest, SplitTrainingBeatsFourBitDistortion) {
  Dataset d = TestData();
  PqOptions four;
  four.m = 8;
  four.nbits = 4;  // k defaults to 16
  auto pq4 = PqQuantizer::Train(d, four);
  PqOptions eight;
  eight.m = 8;
  eight.nbits = 8;  // k defaults to 256, split-trained
  auto split = TrainSplitPq(d, eight);
  ASSERT_NE(split->split_model(), nullptr);
  EXPECT_EQ(split->num_centroids(), 256u);
  // 256 additive words per chunk must reconstruct better than 16 free ones.
  EXPECT_LT(split->Distortion(d), pq4->Distortion(d));
}

TEST(SplitPqTest, ProductCodebookIsSumOfLevelWords) {
  Dataset d = TestData(400);
  PqOptions opt;
  opt.m = 4;
  opt.nbits = 8;
  auto split = TrainSplitPq(d, opt);
  const SplitPqModel* model = split->split_model();
  ASSERT_NE(model, nullptr);
  const Codebook& product = split->codebook();
  const size_t sub = model->sub_dim();
  for (size_t j = 0; j < model->num_chunks(); ++j) {
    for (size_t c : {size_t(0), size_t(17), size_t(128), size_t(255)}) {
      const float* word = product.Word(j, c);
      const float* a = model->a.Word(j, c >> 4);
      const float* b = model->b.Word(j, c & 15);
      for (size_t t = 0; t < sub; ++t) {
        EXPECT_NEAR(word[t], a[t] + b[t], 1e-6f) << "j=" << j << " c=" << c;
      }
    }
  }
}

TEST(SplitPqTest, CrossSumMatchesBruteForceDotProducts) {
  Dataset d = TestData(300);
  PqOptions opt;
  opt.m = 8;
  opt.nbits = 8;
  auto split = TrainSplitPq(d, opt);
  const SplitPqModel* model = split->split_model();
  ASSERT_NE(model, nullptr);
  const size_t sub = model->sub_dim();
  std::vector<uint8_t> code(split->code_size());
  for (size_t i = 0; i < 10; ++i) {
    split->Encode(d[i], code.data());
    float want = 0.f;
    for (size_t j = 0; j < model->num_chunks(); ++j) {
      const float* a = model->a.Word(j, code[j] >> 4);
      const float* b = model->b.Word(j, code[j] & 15);
      for (size_t t = 0; t < sub; ++t) want += 2.f * a[t] * b[t];
    }
    EXPECT_NEAR(model->CrossSum(code.data()), want, 1e-4f * (1 + std::abs(want)));
  }
}

// Property sweep: distortion decreases as K or M grows (richer code space).
class PqDistortionSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(PqDistortionSweep, MoreCapacityLessDistortion) {
  auto [m, k] = GetParam();
  Dataset d = TestData();
  PqOptions small;
  small.m = m;
  small.k = k;
  PqOptions bigger_k = small;
  bigger_k.k = k * 2;
  auto q_small = PqQuantizer::Train(d, small);
  auto q_bigk = PqQuantizer::Train(d, bigger_k);
  EXPECT_LT(q_bigk->Distortion(d), q_small->Distortion(d) * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Capacity, PqDistortionSweep,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(8, 16, 32)));

TEST(OpqTest, RotationIsOrthonormal) {
  Dataset d = TestData(400);
  OpqOptions opt;
  opt.pq.m = 4;
  opt.pq.k = 16;
  opt.outer_iters = 3;
  auto opq = TrainOpq(d, opt);
  ASSERT_TRUE(opq->has_rotation());
  const auto& r = opq->rotation();
  linalg::Matrix rtr = linalg::MatMulTransA(r, r);
  EXPECT_LT(linalg::MaxAbsDiff(rtr, linalg::Matrix::Identity(d.dim())), 5e-3f);
}

TEST(OpqTest, NoWorseThanPqOnAnisotropicData) {
  // The whole point of OPQ: rotation rebalances dimension energy.
  Dataset d = TestData(800, 9);
  PqOptions popt;
  popt.m = 4;
  popt.k = 16;
  auto pq = PqQuantizer::Train(d, popt);
  OpqOptions oopt;
  oopt.pq = popt;
  oopt.outer_iters = 6;
  auto opq = TrainOpq(d, oopt);
  EXPECT_LT(opq->Distortion(d), pq->Distortion(d) * 1.05);
}

TEST(OpqTest, DecodeInvertsRotation) {
  Dataset d = TestData(300);
  OpqOptions opt;
  opt.pq.m = 4;
  opt.pq.k = 64;
  opt.outer_iters = 2;
  auto opq = TrainOpq(d, opt);
  // Decoding an encoded vector must approximate the ORIGINAL vector.
  std::vector<uint8_t> code(opq->code_size());
  std::vector<float> rec(d.dim());
  double err = 0, norm = 0;
  for (size_t i = 0; i < 50; ++i) {
    opq->Encode(d[i], code.data());
    opq->Decode(code.data(), rec.data());
    err += SquaredL2(d[i], rec.data(), d.dim());
    norm += SquaredNorm(d[i], d.dim());
  }
  EXPECT_LT(err, 0.5 * norm);
}

TEST(ModelSizeTest, RotationAddsToModelSize) {
  Dataset d = TestData(300);
  PqOptions popt;
  popt.m = 4;
  popt.k = 16;
  auto pq = PqQuantizer::Train(d, popt);
  OpqOptions oopt;
  oopt.pq = popt;
  oopt.outer_iters = 1;
  auto opq = TrainOpq(d, oopt);
  EXPECT_EQ(opq->ModelSizeBytes(),
            pq->ModelSizeBytes() + d.dim() * d.dim() * sizeof(float));
}

}  // namespace
}  // namespace rpq::quant
