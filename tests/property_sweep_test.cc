// Parameterized property sweeps across the quantizer family and the search
// stack: the same invariants checked over a grid of (dim, M, K) shapes and
// dataset profiles, catching shape-dependent arithmetic bugs that single
// configurations miss.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/distance.h"
#include "core/diff_quantizer.h"
#include "core/memory_index.h"
#include "data/ground_truth.h"
#include "data/lid.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/vamana.h"
#include "quant/adc.h"
#include "quant/pq.h"

namespace rpq {
namespace {

Dataset MakeData(size_t n, size_t dim, uint64_t seed) {
  synthetic::GmmOptions opt;
  opt.dim = dim;
  opt.num_clusters = 6;
  opt.intrinsic_dim = std::max<size_t>(2, dim / 4);
  opt.anisotropy = 1.0f;
  return synthetic::MakeGmm(n, opt, seed);
}

// ---------------------------------------------------------------------------
// PQ family invariants over (dim, M, K).
// ---------------------------------------------------------------------------
class PqShapeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(PqShapeSweep, AdcEqualsDecodeThenDistance) {
  auto [dim, m, k] = GetParam();
  Dataset d = MakeData(400, dim, dim * 100 + m * 10 + k);
  quant::PqOptions opt;
  opt.m = m;
  opt.k = k;
  opt.kmeans_iters = 6;
  auto pq = quant::PqQuantizer::Train(d, opt);
  std::vector<uint8_t> code(pq->code_size());
  std::vector<float> rec(dim);
  quant::AdcTable table(*pq, d[0]);
  for (size_t i = 50; i < 60; ++i) {
    pq->Encode(d[i], code.data());
    pq->Decode(code.data(), rec.data());
    float direct = SquaredL2(d[0], rec.data(), dim);
    EXPECT_NEAR(table.Distance(code.data()), direct, 1e-2f * (1 + direct))
        << "dim=" << dim << " m=" << m << " k=" << k;
  }
}

TEST_P(PqShapeSweep, EncodePicksNearestCodewordPerChunk) {
  auto [dim, m, k] = GetParam();
  Dataset d = MakeData(300, dim, dim + m + k);
  quant::PqOptions opt;
  opt.m = m;
  opt.k = k;
  opt.kmeans_iters = 5;
  auto pq = quant::PqQuantizer::Train(d, opt);
  size_t sub = dim / m;
  std::vector<uint8_t> code(pq->code_size());
  for (size_t i = 0; i < 10; ++i) {
    pq->Encode(d[i], code.data());
    for (size_t j = 0; j < m; ++j) {
      float chosen = SquaredL2(d[i] + j * sub,
                               pq->codebook().Word(j, code[j]), sub);
      for (size_t c = 0; c < k; ++c) {
        float other = SquaredL2(d[i] + j * sub, pq->codebook().Word(j, c), sub);
        EXPECT_LE(chosen, other + 1e-3f) << "chunk " << j;
      }
    }
  }
}

TEST_P(PqShapeSweep, CodeBytesMatchM) {
  auto [dim, m, k] = GetParam();
  Dataset d = MakeData(200, dim, 3 * dim + m + k);
  quant::PqOptions opt;
  opt.m = m;
  opt.k = k;
  opt.kmeans_iters = 3;
  auto pq = quant::PqQuantizer::Train(d, opt);
  EXPECT_EQ(pq->code_size(), m);
  auto codes = pq->EncodeDataset(d);
  EXPECT_EQ(codes.size(), d.size() * m);
  for (uint8_t c : codes) EXPECT_LT(c, k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PqShapeSweep,
    ::testing::Values(std::make_tuple(16, 2, 8), std::make_tuple(16, 4, 16),
                      std::make_tuple(32, 8, 32), std::make_tuple(64, 16, 16),
                      std::make_tuple(96, 16, 64), std::make_tuple(64, 8, 256),
                      std::make_tuple(24, 3, 8)));

// ---------------------------------------------------------------------------
// Differentiable quantizer invariants over (M, K, block).
// ---------------------------------------------------------------------------
class DiffQShapeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(DiffQShapeSweep, DeployedQuantizerAgreesWithTrainingForward) {
  auto [m, k, block] = GetParam();
  const size_t dim = 32;
  Dataset d = MakeData(300, dim, m * 7 + k);
  core::DiffQuantizerOptions opt;
  opt.m = m;
  opt.k = k;
  opt.rotation_block = block;
  core::DiffQuantizer dq(dim, opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 64));
  auto deployed = dq.Deploy();
  core::ForwardResult f;
  std::vector<uint8_t> code(deployed->code_size());
  for (size_t i = 0; i < 20; ++i) {
    dq.Forward(d[i], nullptr, false, &f);
    deployed->Encode(d[i], code.data());
    for (size_t j = 0; j < m; ++j) EXPECT_EQ(code[j], f.hard_code[j]);
  }
}

TEST_P(DiffQShapeSweep, GumbelNoiseOnlyChangesSoftNotDeterministicHard) {
  auto [m, k, block] = GetParam();
  const size_t dim = 32;
  Dataset d = MakeData(200, dim, m + k + block);
  core::DiffQuantizerOptions opt;
  opt.m = m;
  opt.k = k;
  opt.rotation_block = block;
  core::DiffQuantizer dq(dim, opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 64));
  Rng rng(5);
  core::ForwardResult det, sto;
  dq.Forward(d[0], nullptr, false, &det);
  dq.Forward(d[0], &rng, true, &sto);
  // hard_code records the argmin codeword and must ignore the noise.
  EXPECT_EQ(det.hard_code, sto.hard_code);
  // Rotated input identical; soft assignments may differ.
  for (size_t t = 0; t < dim; ++t) {
    EXPECT_FLOAT_EQ(det.rotated[t], sto.rotated[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DiffQShapeSweep,
                         ::testing::Values(std::make_tuple(2, 8, 0),
                                           std::make_tuple(4, 16, 0),
                                           std::make_tuple(8, 8, 16),
                                           std::make_tuple(4, 32, 8)));

// ---------------------------------------------------------------------------
// Search-stack invariants across dataset profiles.
// ---------------------------------------------------------------------------
class ProfileSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSweep, GeneratorsMatchDeclaredDimsAndDeterminism) {
  std::string name = GetParam();
  Dataset a = synthetic::MakeByName(name, 50, 3);
  Dataset b = synthetic::MakeByName(name, 50, 3);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.dim(); ++j) {
      ASSERT_FLOAT_EQ(a[i][j], b[i][j]);
    }
  }
}

TEST_P(ProfileSweep, MemoryIndexEndToEnd) {
  std::string name = GetParam();
  // GIST at 960d is exercised at reduced n for runtime.
  size_t n = name == std::string("gist") ? 400 : 800;
  Dataset base, queries;
  synthetic::MakeBaseAndQueries(name, n, 10, 31, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 12;
  vopt.build_beam = 24;
  auto graph = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = base.dim() % 16 == 0 ? 16 : 12;
  popt.k = 16;
  popt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(base, popt);
  auto index = core::MemoryIndex::Build(base, graph, *pq);
  auto gt = ComputeGroundTruth(base, queries, 10);
  std::vector<std::vector<Neighbor>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    results[q] = index->Search(queries[q], 10, {96, 10}).results;
  }
  // Codes-only search is lossy but must clearly beat random (recall ~ k/n).
  EXPECT_GT(eval::MeanRecallAtK(results, gt, 10), 0.15) << name;
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweep,
                         ::testing::Values("sift", "bigann", "deep", "gist",
                                           "ukbench"));

// ---------------------------------------------------------------------------
// LID estimator tracks the generator's intrinsic dimension monotonically.
// ---------------------------------------------------------------------------
class LidSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LidSweep, EstimateGrowsWithIntrinsicDim) {
  size_t id = GetParam();
  synthetic::GmmOptions lo;
  lo.dim = 64;
  lo.num_clusters = 4;
  lo.intrinsic_dim = id;
  lo.noise = 0.01f;
  synthetic::GmmOptions hi = lo;
  hi.intrinsic_dim = id * 2;
  double lid_lo = EstimateLid(synthetic::MakeGmm(1000, lo, 11), 20, 80);
  double lid_hi = EstimateLid(synthetic::MakeGmm(1000, hi, 11), 20, 80);
  EXPECT_LT(lid_lo, lid_hi) << "intrinsic " << id << " vs " << id * 2;
}

INSTANTIATE_TEST_SUITE_P(Dims, LidSweep, ::testing::Values(4, 8, 16));

}  // namespace
}  // namespace rpq
