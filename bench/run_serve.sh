#!/usr/bin/env bash
# Collects the per-PR serving trajectory: runs four fixed serve-bench
# scenarios (graph FastScan memory backend, IVF flat-scan backend, and the
# hybrid disk backend sync vs async QD-8) on a
# deterministic synthetic fixture and parses the reports into a bench
# summary JSON (schema: scenarios.<name>.{recall_at_10, closed_qps,
# closed_p50_ms, ...}). The checked-in BENCH_serve.json is one such run;
# CI re-runs this script and gates the result with
#
#   rpq_tool bench-diff BENCH_serve.json <fresh.json> \
#       --max-regress <pct> --max-recall-regress <pct>
#
# so recall regressions fail tight and timing regressions fail past a
# cross-machine-tolerant bound. Regenerate the baseline on a quiet box with:
#   bench/run_serve.sh && cp BENCH_serve_new.json BENCH_serve.json
#
# Usage:
#   bench/run_serve.sh
# Env:
#   BUILD_DIR  build directory     (default: build)
#   OUT        output JSON path    (default: BENCH_serve_new.json)
#   WORK       fixture directory   (default: fresh mktemp -d, removed on exit)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$repo_root/build}"
OUT="${OUT:-$repo_root/BENCH_serve_new.json}"
TOOL="$BUILD_DIR/rpq_tool"

cmake -B "$BUILD_DIR" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target rpq_tool

if [[ -z "${WORK:-}" ]]; then
  WORK="$(mktemp -d)"
  trap 'rm -rf "$WORK"' EXIT
fi

# Deterministic fixture: same generator/seed as the CI smoke data, sized up
# enough that QPS numbers mean something.
N=20000
QUERIES=100
SEED=7
if [[ ! -f "$WORK/base.fvecs" ]]; then
  "$TOOL" gen --name sift --n "$N" --queries "$QUERIES" --seed "$SEED" \
    --out "$WORK"
fi
"$TOOL" train --base "$WORK/base.fvecs" --method pq --m 16 --nbits 4 \
  --out "$WORK/model.rpqq"
"$TOOL" build-graph --base "$WORK/base.fvecs" --type vamana \
  --out "$WORK/g.bin"

run_scenario() {
  local name="$1"; shift
  "$TOOL" serve-bench "$@" | tee "$WORK/$name.log"
}

# Graph FastScan with an exact-rerank epilogue (the beam search fast path a
# memory deployment serves) and residual IVFADC (the flagship recall
# configuration from BENCH_ivf.json, residual model trained in-process).
run_scenario memory_fastscan \
  --base "$WORK/base.fvecs" --graph "$WORK/g.bin" \
  --model "$WORK/model.rpqq" --queries "$WORK/queries.fvecs" \
  --index memory --mode fastscan --rerank 50 --rerank-mode exact \
  --threads 4 --k 10 --beam 64 --total 4000

run_scenario ivf_residual_nprobe8 \
  --base "$WORK/base.fvecs" --queries "$WORK/queries.fvecs" \
  --index ivf --residual --nbits 8 --m 16 --nlist 256 --nprobe 8 \
  --store-vectors --rerank 50 --rerank-mode exact \
  --threads 4 --k 10 --total 4000

# Hybrid disk backend, sync baseline vs full-async (queue-depth submission +
# beam-guided readahead). The disk_io_us_per_query key ("us_per" makes
# bench-diff gate it lower-is-better) pins the async speedup per PR; recall
# must stay equal between the two (same beam, same exact rerank).
run_scenario disk_sync_qd1 \
  --base "$WORK/base.fvecs" --graph "$WORK/g.bin" \
  --model "$WORK/model.rpqq" --queries "$WORK/queries.fvecs" \
  --index disk --queue-depth 1 --io-width 1 --readahead 0 \
  --threads 4 --k 10 --beam 64 --total 2000

run_scenario disk_async_qd8 \
  --base "$WORK/base.fvecs" --graph "$WORK/g.bin" \
  --model "$WORK/model.rpqq" --queries "$WORK/queries.fvecs" \
  --index disk --queue-depth 8 --io-width 8 --readahead 4 \
  --threads 4 --k 10 --beam 64 --total 2000

# Parse one scenario log into its JSON fragment: the recall sanity line plus
# the closed-loop report row (label-relative field scan, so the fixed-width
# printf padding does not matter).
parse_scenario() {
  local log="$1"
  awk '
    /^recall@10 = / { recall = $3 }
    /^disk-io us\/query = / { dio = $4 }
    /^closed-loop / {
      for (i = 1; i <= NF; ++i) {
        if ($i == "QPS") qps = $(i - 1)
        if ($i == "mean") mean = $(i + 1)
        if ($i == "p50") p50 = $(i + 1)
        if ($i == "p95") p95 = $(i + 1)
        if ($i == "p99") p99 = $(i + 1)
      }
    }
    END {
      printf "{\"recall_at_10\": %s, \"closed_qps\": %s, ", recall, qps
      printf "\"closed_mean_ms\": %s, \"closed_p50_ms\": %s, ", mean, p50
      printf "\"closed_p95_ms\": %s, \"closed_p99_ms\": %s", p95, p99
      if (dio != "") printf ", \"disk_io_us_per_query\": %s", dio
      printf "}"
    }
  ' "$log"
}

{
  printf '{\n'
  printf '  "description": "Per-PR serving trajectory: closed-loop serve-bench on the deterministic %s-vector sift fixture (seed %s). Regenerate with bench/run_serve.sh.",\n' "$N" "$SEED"
  printf '  "version": 1,\n'
  printf '  "date": "%s",\n' "$(date +%F)"
  printf '  "fixture": {"generator": "rpq_tool gen --name sift --n %s --queries %s --seed %s", "n": %s, "queries": %s, "model": "pq m=16 nbits=4 (+ exact rerank 50 / residual ivf)", "graph": "vamana"},\n' \
    "$N" "$QUERIES" "$SEED" "$N" "$QUERIES"
  printf '  "scenarios": {\n'
  printf '    "memory_fastscan": %s,\n' "$(parse_scenario "$WORK/memory_fastscan.log")"
  printf '    "ivf_residual_nprobe8": %s,\n' "$(parse_scenario "$WORK/ivf_residual_nprobe8.log")"
  printf '    "disk_sync_qd1": %s,\n' "$(parse_scenario "$WORK/disk_sync_qd1.log")"
  printf '    "disk_async_qd8": %s\n' "$(parse_scenario "$WORK/disk_async_qd8.log")"
  printf '  }\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
