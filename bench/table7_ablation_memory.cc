// Table 7: the same feature/loss ablation as Table 6, in-memory scenario
// (HNSW + codes only). As in the paper, each dataset uses its own Recall@10
// operating point: BigANN/Deep 75%, Sift 70%, Gist 80%, Ukbench 45%.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);

  struct Ds {
    std::string name;
    double target;
  };
  std::vector<Ds> datasets = {{"bigann", 0.75}, {"deep", 0.75}, {"gist", 0.80},
                              {"sift", 0.70},   {"ukbench", 0.45}};
  std::vector<std::vector<double>> table(4, std::vector<double>(datasets.size()));

  for (size_t d = 0; d < datasets.size(); ++d) {
    Profile p = GetProfile(datasets[d].name, args);
    DatasetBundle b = MakeBundle(datasets[d].name, p, args.seed);
    auto hnsw = rpq::graph::HnswIndex::Build(b.base, p.hnsw);
    auto graph = hnsw->Flatten();

    auto full = p.rpq;
    auto only_n = p.rpq;
    only_n.use_routing = false;
    auto only_r = p.rpq;
    only_r.use_neighborhood = false;
    auto l2r = p.rpq;
    l2r.use_neighborhood = false;
    l2r.l2r_mode = true;
    const rpq::core::RpqTrainOptions* variants[4] = {&full, &only_n, &only_r,
                                                     &l2r};
    for (size_t v = 0; v < 4; ++v) {
      std::fprintf(stderr, "[%s] variant %zu...\n", datasets[d].name.c_str(), v);
      auto res = rpq::core::TrainRpq(b.base, graph, *variants[v]);
      auto index = rpq::core::MemoryIndex::Build(b.base, graph, *res.quantizer);
      auto curve = rpq::eval::SweepBeamWidths(MakeMemorySearchFn(*index), b.queries,
                                         b.gt, 10, DefaultBeams());
      table[v][d] = rpq::eval::QpsAtRecall(curve, datasets[d].target);
    }
  }

  std::printf("=== Table 7: ablation, in-memory scenario (QPS @ per-dataset "
              "Recall@10 target) ===\n%-12s", "Method");
  for (const auto& ds : datasets) {
    std::printf(" %7s@%2.0f%%", ds.name.c_str(), ds.target * 100);
  }
  const char* labels[4] = {"RPQ", "RPQ w/ N", "RPQ w/ R", "RPQ w/ L2R"};
  for (size_t v = 0; v < 4; ++v) {
    std::printf("\n%-12s", labels[v]);
    for (size_t d = 0; d < datasets.size(); ++d) {
      std::printf(" %11.1f", table[v][d]);
    }
  }
  std::printf("\n");
  return 0;
}
