// Figure 7: QPS and Hops vs Recall@10 in the in-memory scenario with NSG as
// the PG, comparing PQ / OPQ / Catalyst / RPQ.
#include "bench_common.h"

namespace rpq::bench {
namespace {

void RunDataset(const std::string& name, const Args& args) {
  Profile p = GetProfile(name, args);
  DatasetBundle b = MakeBundle(name, p, args.seed);
  std::fprintf(stderr, "[%s] building NSG (n=%zu)...\n", name.c_str(),
               b.base.size());
  auto graph = graph::BuildNsg(b.base, p.nsg);
  QuantizerSet qs = TrainAll(b, graph, p);

  std::printf("\n=== Figure 7 [NSG, %s]  (n=%zu, q=%zu) ===\n", name.c_str(),
              b.base.size(), b.queries.size());
  struct Method {
    std::string label;
    const quant::VectorQuantizer* quantizer;
  };
  std::vector<Method> methods = {
      {"NSG-PQ", qs.pq.get()},
      {"NSG-OPQ", qs.opq.get()},
      {"NSG-Catalyst", qs.catalyst.get()},
      {"NSG-RPQ", qs.rpq.quantizer.get()},
  };
  for (const auto& m : methods) {
    auto index = core::MemoryIndex::Build(b.base, graph, *m.quantizer);
    auto curve = rpq::eval::SweepBeamWidths(MakeMemorySearchFn(*index), b.queries,
                                       b.gt, 10, DefaultBeams());
    eval::PrintCurve(m.label, curve);
  }
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  auto args = rpq::bench::Args::Parse(argc, argv);
  for (const char* name : {"bigann", "deep", "sift", "gist", "ukbench"}) {
    rpq::bench::RunDataset(name, args);
  }
  return 0;
}
