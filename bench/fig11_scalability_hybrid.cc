// Figure 11: scalability of DiskANN-PQ vs DiskANN-RPQ across base-set scales
// (hybrid scenario, QPS at Recall@10=95%). The paper's 1M/10M/100M/1B slices
// become geometric scales of the synthetic generator; what must hold is that
// RPQ's advantage persists (or grows) as the scale rises.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);
  std::vector<size_t> scales = args.fast
                                   ? std::vector<size_t>{1000, 3000}
                                   : std::vector<size_t>{2000, 6000, 12000};

  std::printf("=== Figure 11: scalability, hybrid (QPS @ Recall@10=95%%) "
              "===\n");
  for (const char* name : {"bigann", "deep"}) {
    std::printf("[%s]\n%-10s %14s %14s %10s\n", name, "scale", "DiskANN-PQ",
                "DiskANN-RPQ", "speedup");
    for (size_t n : scales) {
      Args a = args;
      a.n = n;
      a.queries = 80;
      Profile p = GetProfile(name, a);
      DatasetBundle b = MakeBundle(name, p, args.seed);
      std::fprintf(stderr, "[%s] n=%zu: graph...\n", name, n);
      auto graph = rpq::graph::BuildVamana(b.base, p.vamana);
      auto pq = rpq::quant::PqQuantizer::Train(b.base, p.pq);
      std::fprintf(stderr, "[%s] n=%zu: RPQ...\n", name, n);
      auto rpq_res = rpq::core::TrainRpq(b.base, graph, p.rpq);

      auto eval_one = [&](const rpq::quant::VectorQuantizer& q) {
        auto index = rpq::disk::DiskIndex::Build(b.base, graph, q);
        auto curve = rpq::eval::SweepBeamWidths(MakeDiskSearchFn(*index), b.queries,
                                           b.gt, 10, DefaultBeams());
        return rpq::eval::QpsAtRecall(curve, 0.95);
      };
      double q_pq = eval_one(*pq);
      double q_rpq = eval_one(*rpq_res.quantizer);
      std::printf("%-10zu %14.1f %14.1f %9.2fx\n", n, q_pq, q_rpq,
                  q_pq > 0 ? q_rpq / q_pq : 0.0);
    }
  }
  return 0;
}
