// Figure 12: scalability of HNSW-PQ vs HNSW-RPQ across base-set scales
// (in-memory scenario). As in the paper, each bar reports QPS at a fixed
// beam width together with the Recall@10 it achieves (annotated above the
// bars in the original figure).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);
  std::vector<size_t> scales = args.fast
                                   ? std::vector<size_t>{1000, 3000}
                                   : std::vector<size_t>{2000, 6000, 12000};

  std::printf("=== Figure 12: scalability, in-memory (QPS with achieved "
              "Recall@10) ===\n");
  for (const char* name : {"bigann", "deep"}) {
    std::printf("[%s]\n%-10s %22s %22s\n", name, "scale", "HNSW-PQ",
                "HNSW-RPQ");
    for (size_t n : scales) {
      Args a = args;
      a.n = n;
      a.queries = 80;
      Profile p = GetProfile(name, a);
      DatasetBundle b = MakeBundle(name, p, args.seed);
      auto hnsw = rpq::graph::HnswIndex::Build(b.base, p.hnsw);
      auto graph = hnsw->Flatten();
      auto pq = rpq::quant::PqQuantizer::Train(b.base, p.pq);
      std::fprintf(stderr, "[%s] n=%zu: RPQ...\n", name, n);
      auto rpq_res = rpq::core::TrainRpq(b.base, graph, p.rpq);

      const size_t beam = 48;  // fixed operating point across scales
      auto eval_one = [&](const rpq::quant::VectorQuantizer& q) {
        auto index = rpq::core::MemoryIndex::Build(b.base, graph, q);
        auto curve = rpq::eval::SweepBeamWidths(MakeMemorySearchFn(*index),
                                           b.queries, b.gt, 10, {beam});
        return curve[0];
      };
      auto pt_pq = eval_one(*pq);
      auto pt_rpq = eval_one(*rpq_res.quantizer);
      std::printf("%-10zu %12.1f (r=%4.0f%%) %12.1f (r=%4.0f%%)\n", n,
                  pt_pq.qps, pt_pq.recall * 100, pt_rpq.qps,
                  pt_rpq.recall * 100);
    }
  }
  return 0;
}
