// Figures 9 & 10: the K x M grid. For each (K, M) configuration, RPQ is
// trained and evaluated; Figure 9 reports hybrid-scenario QPS at
// Recall@10=95%, Figure 10 the in-memory upper-limit Recall@10. BigANN/Deep
// sweep M in {8,16,32}; Gist (960-dim) sweeps M in {60,120,240} as in the
// paper. Rows are K in {64,128,256}.
#include "bench_common.h"

namespace rpq::bench {
namespace {

struct GridResult {
  double hybrid_qps[3][3];
  double mem_recall[3][3];
};

GridResult RunGrid(const std::string& name, const Args& args) {
  Profile p = GetProfile(name, args);
  // The grid retrains RPQ 9 times; shrink the slice to keep single-core
  // runtime sane (relative trends across the grid are unaffected).
  p.n_base = std::min(p.n_base, name == "gist" ? size_t{800} : size_t{3000});
  p.n_query = std::min(p.n_query, size_t{60});
  DatasetBundle b = MakeBundle(name, p, args.seed);
  auto graph = rpq::graph::BuildVamana(b.base, p.vamana);
  auto hnsw = rpq::graph::HnswIndex::Build(b.base, p.hnsw);
  auto hgraph = hnsw->Flatten();

  const size_t ks[3] = {64, 128, 256};
  const size_t ms_small[3] = {8, 16, 32};
  const size_t ms_gist[3] = {60, 120, 240};
  const size_t* ms = (name == "gist") ? ms_gist : ms_small;

  GridResult out{};
  for (int ki = 0; ki < 3; ++ki) {
    for (int mi = 0; mi < 3; ++mi) {
      auto opt = p.rpq;
      opt.k = ks[ki];
      opt.m = ms[mi];
      opt.epochs = 1;
      opt.triplets_per_epoch = 192;
      std::fprintf(stderr, "[%s] K=%zu M=%zu...\n", name.c_str(), ks[ki],
                   ms[mi]);
      auto res = rpq::core::TrainRpq(b.base, graph, opt);

      auto disk_index =
          rpq::disk::DiskIndex::Build(b.base, graph, *res.quantizer);
      auto disk_curve = rpq::eval::SweepBeamWidths(MakeDiskSearchFn(*disk_index),
                                              b.queries, b.gt, 10,
                                              DefaultBeams());
      out.hybrid_qps[ki][mi] = rpq::eval::QpsAtRecall(disk_curve, 0.95);

      auto mem_index =
          rpq::core::MemoryIndex::Build(b.base, hgraph, *res.quantizer);
      auto mem_curve = rpq::eval::SweepBeamWidths(MakeMemorySearchFn(*mem_index),
                                             b.queries, b.gt, 10, {256});
      out.mem_recall[ki][mi] = mem_curve[0].recall;  // upper-limit recall
    }
  }
  return out;
}

void PrintGrid(const std::string& title, const std::string& name,
               const double grid[3][3], const size_t* ms, bool as_recall) {
  std::printf("%s [%s]\n%6s %10zu %10zu %10zu\n", title.c_str(), name.c_str(),
              "K\\M", ms[0], ms[1], ms[2]);
  const size_t ks[3] = {64, 128, 256};
  for (int ki = 0; ki < 3; ++ki) {
    std::printf("%6zu", ks[ki]);
    for (int mi = 0; mi < 3; ++mi) {
      if (as_recall) {
        std::printf(" %10.3f", grid[ki][mi]);
      } else {
        std::printf(" %10.1f", grid[ki][mi]);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);
  const size_t ms_small[3] = {8, 16, 32};
  const size_t ms_gist[3] = {60, 120, 240};
  for (const char* name : {"bigann", "deep", "gist"}) {
    auto res = RunGrid(name, args);
    const size_t* ms = std::string(name) == "gist" ? ms_gist : ms_small;
    std::printf("\n=== Figure 9: hybrid QPS @ Recall@10=95%% ===\n");
    PrintGrid("QPS grid", name, res.hybrid_qps, ms, false);
    std::printf("=== Figure 10: in-memory Recall@10 upper limit ===\n");
    PrintGrid("Recall grid", name, res.mem_recall, ms, true);
  }
  return 0;
}
