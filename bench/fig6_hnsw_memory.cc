// Figure 6: QPS and Hops vs Recall@10 in the in-memory scenario with HNSW as
// the PG, comparing PQ / OPQ / L&C / Catalyst / RPQ (codes-only search; no
// full-precision rerank except L&C's refined codes).
#include "bench_common.h"

namespace rpq::bench {
namespace {

void RunDataset(const std::string& name, const Args& args) {
  Profile p = GetProfile(name, args);
  DatasetBundle b = MakeBundle(name, p, args.seed);
  std::fprintf(stderr, "[%s] building HNSW (n=%zu)...\n", name.c_str(),
               b.base.size());
  auto hnsw = graph::HnswIndex::Build(b.base, p.hnsw);
  auto graph = hnsw->Flatten();
  QuantizerSet qs = TrainAll(b, graph, p);

  quant::LinkCodeOptions lco;
  lco.pq = p.pq;
  lco.num_links = 8;  // paper: L = 8
  std::fprintf(stderr, "[%s] building L&C...\n", name.c_str());
  auto lc = quant::LinkCodeIndex::Build(b.base, graph, lco);

  std::printf("\n=== Figure 6 [HNSW, %s]  (n=%zu, q=%zu) ===\n", name.c_str(),
              b.base.size(), b.queries.size());

  auto run = [&](const std::string& label, const quant::VectorQuantizer& q,
                 const quant::LinkCodeIndex* refine) {
    auto index = core::MemoryIndex::Build(b.base, graph, q);
    auto fn = refine != nullptr ? MakeLinkCodeSearchFn(*index, *refine)
                                : MakeMemorySearchFn(*index);
    auto curve = rpq::eval::SweepBeamWidths(fn, b.queries, b.gt, 10, DefaultBeams());
    eval::PrintCurve(label, curve);
    return curve;
  };

  auto c_pq = run("HNSW-PQ", *qs.pq, nullptr);
  auto c_opq = run("HNSW-OPQ", *qs.opq, nullptr);
  auto c_lc = run("L&C", lc->pq(), lc.get());
  auto c_cat = run("HNSW-Catalyst", *qs.catalyst, nullptr);
  auto c_rpq = run("HNSW-RPQ", *qs.rpq.quantizer, nullptr);

  std::printf("--- max Recall@10 reached [%s] ---\n", name.c_str());
  auto max_recall = [](const std::vector<eval::OperatingPoint>& c) {
    double r = 0;
    for (const auto& pt : c) r = std::max(r, pt.recall);
    return r;
  };
  std::printf("PQ=%.3f OPQ=%.3f L&C=%.3f Catalyst=%.3f RPQ=%.3f\n",
              max_recall(c_pq), max_recall(c_opq), max_recall(c_lc),
              max_recall(c_cat), max_recall(c_rpq));
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  auto args = rpq::bench::Args::Parse(argc, argv);
  for (const char* name : {"bigann", "deep", "sift", "gist", "ukbench"}) {
    rpq::bench::RunDataset(name, args);
  }
  return 0;
}
