// Tables 4 & 5: training time and model size of the two learned quantizers
// (Catalyst vs RPQ) on all five datasets. The paper reports hours on 8xV100;
// we report seconds on one CPU core — the comparison BETWEEN the two methods
// (similar time, RPQ's model ~5-7x smaller) is the reproduced signal.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);

  struct Row {
    std::string name;
    double cat_secs, rpq_secs;
    double cat_mb, rpq_mb;
  };
  std::vector<Row> rows;

  for (const char* name : {"bigann", "deep", "sift", "gist", "ukbench"}) {
    Profile p = GetProfile(name, args);
    DatasetBundle b = MakeBundle(name, p, args.seed);
    auto graph = rpq::graph::BuildVamana(b.base, p.vamana);
    std::fprintf(stderr, "[%s] training Catalyst...\n", name);
    auto cat = rpq::quant::CatalystQuantizer::Train(b.base, p.cat);
    std::fprintf(stderr, "[%s] training RPQ...\n", name);
    auto rpq_res = rpq::core::TrainRpq(b.base, graph, p.rpq);
    rows.push_back({name, cat->training_seconds(), rpq_res.training_seconds,
                    cat->ModelSizeBytes() / 1e6,
                    static_cast<double>(rpq_res.model_size_bytes) / 1e6});
  }

  std::printf("=== Table 4: training time (seconds, 1 CPU core) ===\n");
  std::printf("%-10s", "Method");
  for (const auto& r : rows) std::printf(" %10s", r.name.c_str());
  std::printf("\n%-10s", "Catalyst");
  for (const auto& r : rows) std::printf(" %10.2f", r.cat_secs);
  std::printf("\n%-10s", "RPQ");
  for (const auto& r : rows) std::printf(" %10.2f", r.rpq_secs);

  std::printf("\n\n=== Table 5: model size (MB) ===\n");
  std::printf("%-10s", "Method");
  for (const auto& r : rows) std::printf(" %10s", r.name.c_str());
  std::printf("\n%-10s", "Catalyst");
  for (const auto& r : rows) std::printf(" %10.2f", r.cat_mb);
  std::printf("\n%-10s", "RPQ");
  for (const auto& r : rows) std::printf(" %10.2f", r.rpq_mb);
  std::printf("\n");
  return 0;
}
