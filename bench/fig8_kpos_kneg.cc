// Figure 8: effect of the positive/negative sampling ratio k_pos/k_neg on
// QPS (at the 95% Recall@10 operating point for the hybrid scenario and at
// the in-memory point), on BigANN-like and Deep-like data. The paper finds a
// sweet spot for ratios in [0.2, 0.5].
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);

  const double ratios[] = {0.02, 0.2, 0.5, 0.8, 0.98};
  const size_t total = 36;  // k_pos + k_neg kept fixed while the ratio moves

  std::printf("=== Figure 8: effect of k_pos/k_neg (QPS) ===\n");
  for (const char* name : {"bigann", "deep"}) {
    Profile p = GetProfile(name, args);
    DatasetBundle b = MakeBundle(name, p, args.seed);
    auto graph = rpq::graph::BuildVamana(b.base, p.vamana);
    auto hnsw = rpq::graph::HnswIndex::Build(b.base, p.hnsw);
    auto hgraph = hnsw->Flatten();

    std::printf("[%s]\n%-8s %14s %14s\n", name, "ratio", "hybrid QPS",
                "in-memory QPS");
    for (double r : ratios) {
      auto opt = p.rpq;
      opt.k_pos = std::max<size_t>(1, static_cast<size_t>(total * r / (1 + r)));
      opt.k_neg = std::max<size_t>(1, total - opt.k_pos);
      std::fprintf(stderr, "[%s] ratio %.2f (k_pos=%zu k_neg=%zu)...\n", name,
                   r, opt.k_pos, opt.k_neg);
      auto res = rpq::core::TrainRpq(b.base, graph, opt);

      auto disk_index = rpq::disk::DiskIndex::Build(b.base, graph,
                                                    *res.quantizer);
      auto disk_curve = rpq::eval::SweepBeamWidths(MakeDiskSearchFn(*disk_index),
                                              b.queries, b.gt, 10,
                                              DefaultBeams());
      double hybrid_qps = rpq::eval::QpsAtRecall(disk_curve, 0.95);

      auto res_h = rpq::core::TrainRpq(b.base, hgraph, opt);
      auto mem_index =
          rpq::core::MemoryIndex::Build(b.base, hgraph, *res_h.quantizer);
      auto mem_curve = rpq::eval::SweepBeamWidths(MakeMemorySearchFn(*mem_index),
                                             b.queries, b.gt, 10,
                                             DefaultBeams());
      double mem_qps = rpq::eval::QpsAtRecall(mem_curve, 0.75);

      std::printf("%-8.2f %14.1f %14.1f\n", r, hybrid_qps, mem_qps);
    }
  }
  return 0;
}
