// Table 2: Recall@10 when ranking next-hop candidates with only the first two
// magnitude terms of Eq. 5 versus the full three-term (= exact) comparison.
//
// Derivation (see §3.1 of the paper / DESIGN.md): with c the visiting vertex,
// x a candidate, mid = (x+c)/2 and delta = c - x,
//   ||q-x||^2 = ||q-mid||^2 + ||delta||^2/4 + <q-mid, delta>
// and the inner product is exactly the 2*||.||*||.||*cos(theta) third term of
// Eq. 5. "Two-term ranking" therefore scores a candidate by
//   ||q-mid||^2 + ||delta||^2/4      (angle dropped)
// while "three-term ranking" is the exact distance. The paper's Table 2 shows
// the two-term variant losing 15-25 recall points — the motivation for
// learning routing features that capture the angle term.
#include "bench_common.h"
#include "common/distance.h"
#include "graph/beam_search.h"

namespace rpq::bench {
namespace {

double RunRanking(const DatasetBundle& b, const graph::ProximityGraph& graph,
                  bool two_term_only) {
  graph::VisitedTable visited(b.base.size());
  std::vector<std::vector<Neighbor>> results(b.queries.size());
  const size_t dim = b.base.dim();
  std::vector<float> mid(dim);

  for (size_t qi = 0; qi < b.queries.size(); ++qi) {
    const float* q = b.queries[qi];
    // The "current vertex" for the midpoint changes as the search moves; we
    // track the most recently expanded vertex (the routing decision context).
    uint32_t current = graph.entry_point();
    auto dist = [&](uint32_t v) -> float {
      if (!two_term_only) return SquaredL2(q, b.base[v], dim);
      const float* xc = b.base[current];
      const float* xv = b.base[v];
      float d_mid = 0, d_delta = 0;
      for (size_t t = 0; t < dim; ++t) {
        float m = 0.5f * (xv[t] + xc[t]);
        float diff = q[t] - m;
        d_mid += diff * diff;
        float dd = xc[t] - xv[t];
        d_delta += dd * dd;
      }
      return d_mid + 0.25f * d_delta;
    };
    results[qi] = graph::BeamSearch(
        graph, graph.entry_point(), dist, {64, 10}, &visited, nullptr,
        [&](const std::vector<Neighbor>& beam) { current = beam.front().id; });
    // Re-rank the returned ids by exact distance for a fair recall readout
    // (Table 2 isolates the ROUTING effect of the ranking rule).
    for (auto& r : results[qi]) {
      r.dist = SquaredL2(q, b.base[r.id], dim);
    }
    std::sort(results[qi].begin(), results[qi].end());
  }
  return eval::MeanRecallAtK(results, b.gt, 10);
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);
  std::printf("=== Table 2: Recall@10 with partial vs full Eq.5 ranking ===\n");
  std::printf("%-34s %8s %8s %8s %8s\n", "Ranking", "Sift", "Deep", "Ukbench",
              "Gist");
  std::vector<double> two, three;
  for (const char* name : {"sift", "deep", "ukbench", "gist"}) {
    Profile p = GetProfile(name, args);
    DatasetBundle b = MakeBundle(name, p, args.seed);
    auto graph = rpq::graph::BuildVamana(b.base, p.vamana);
    two.push_back(RunRanking(b, graph, true));
    three.push_back(RunRanking(b, graph, false));
    std::fprintf(stderr, "[%s] done\n", name);
  }
  std::printf("%-34s %8.3f %8.3f %8.3f %8.3f\n",
              "ranking w/ 2 magnitude terms", two[0], two[1], two[2], two[3]);
  std::printf("%-34s %8.3f %8.3f %8.3f %8.3f\n",
              "ranking by full Eq.5 (3 terms)", three[0], three[1], three[2],
              three[3]);
  return 0;
}
