// google-benchmark microbenchmarks of the library's hot kernels: distance
// computation, ADC table construction and scans, k-means steps, matrix
// exponential, differentiable-quantizer forward pass, and beam search.
#include <benchmark/benchmark.h>

#include <cstring>

#include "common/distance.h"
#include "common/rng.h"
#include "core/diff_quantizer.h"
#include "data/synthetic.h"
#include "graph/beam_search.h"
#include "graph/vamana.h"
#include "linalg/matexp.h"
#include "quant/adc.h"
#include "quant/kmeans.h"
#include "quant/pq.h"
#include "simd/simd.h"

namespace {

using namespace rpq;

void BM_SquaredL2(benchmark::State& state) {
  size_t d = state.range(0);
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2)->Arg(96)->Arg(128)->Arg(960);

// Scalar reference for the same kernel: the dispatched/scalar ratio is the
// headline SIMD speedup (acceptance bar: >= 2x at d = 128 on AVX2 hardware).
void BM_SquaredL2Scalar(benchmark::State& state) {
  size_t d = state.range(0);
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  const auto& ops = simd::ScalarOps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.squared_l2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2Scalar)->Arg(96)->Arg(128)->Arg(960);

void BM_AdcTableBuild(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(1500, 3);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  std::vector<float> table(pq->num_chunks() * pq->num_centroids());
  size_t qi = 0;
  for (auto _ : state) {
    pq->BuildLookupTable(d[qi % d.size()], table.data());
    ++qi;
  }
}
BENCHMARK(BM_AdcTableBuild)->Arg(64)->Arg(256);

void BM_AdcScan(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Distance(codes.data() + (i % d.size()) * pq->code_size()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdcScan);

// Batched ADC scan over contiguous codes; items/s vs BM_AdcScan is the
// batching + SIMD win.
void BM_AdcScanBatch(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  std::vector<float> dists(d.size());
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    table.DistanceBatch(codes.data(), d.size(), dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_AdcScanBatch);

// Batched ADC scan addressed by shuffled vertex ids — the beam-search
// expansion access pattern.
void BM_AdcScanBatchGather(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  Rng rng(3);
  std::vector<uint32_t> ids(d.size());
  for (size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<uint32_t>(rng.UniformIndex(d.size()));
  std::vector<float> dists(d.size());
  for (auto _ : state) {
    table.DistanceBatchGather(codes.data(), pq->code_size(), ids.data(),
                              ids.size(), dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_AdcScanBatchGather);

void BM_AdcTableBuildScalar(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(1500, 3);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  // Rebuild the table through the scalar reference kernels, mirroring
  // BuildLookupTable's per-call work (including the rotation-buffer copy —
  // plain PQ's rotation is the identity) so the two benches compare
  // like-for-like.
  const auto& ops = simd::ScalarOps();
  size_t sub = d.dim() / opt.m;
  std::vector<float> table(pq->num_chunks() * pq->num_centroids());
  size_t qi = 0;
  for (auto _ : state) {
    std::vector<float> rot(d.dim());
    std::memcpy(rot.data(), d[qi % d.size()], d.dim() * sizeof(float));
    for (size_t j = 0; j < opt.m; ++j) {
      ops.l2_to_many(rot.data() + j * sub, pq->codebook().Chunk(j), opt.k, sub,
                     table.data() + j * opt.k);
    }
    benchmark::DoNotOptimize(table.data());
    ++qi;
  }
}
BENCHMARK(BM_AdcTableBuildScalar)->Arg(64)->Arg(256);

void BM_KMeansIteration(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 7);
  for (auto _ : state) {
    quant::KMeansOptions opt;
    opt.k = 64;
    opt.max_iters = 1;
    benchmark::DoNotOptimize(RunKMeans(d.data(), d.size(), d.dim(), opt));
  }
}
BENCHMARK(BM_KMeansIteration);

void BM_MatrixExp(benchmark::State& state) {
  size_t n = state.range(0);
  Rng rng(9);
  linalg::Matrix p(n, n);
  for (size_t i = 0; i < n * n; ++i) p.data()[i] = rng.Gaussian(0, 0.3f);
  linalg::Matrix a = linalg::SkewPart(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatrixExp(a));
  }
}
BENCHMARK(BM_MatrixExp)->Arg(32)->Arg(64)->Arg(128);

void BM_DiffQuantizerForward(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(500, 11);
  core::DiffQuantizerOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  core::DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 128));
  Rng rng(13);
  core::ForwardResult f;
  size_t i = 0;
  for (auto _ : state) {
    dq.Forward(d[i % d.size()], &rng, true, &f);
    ++i;
  }
}
BENCHMARK(BM_DiffQuantizerForward)->Arg(64)->Arg(256);

void BM_BeamSearchAdc(benchmark::State& state) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 4000, 50, 15, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto g = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 16;
  popt.k = 64;
  popt.kmeans_iters = 6;
  auto pq = quant::PqQuantizer::Train(base, popt);
  auto codes = pq->EncodeDataset(base);
  graph::VisitedTable visited(base.size());
  size_t beam = state.range(0);
  size_t qi = 0;
  for (auto _ : state) {
    quant::AdcTable table(*pq, queries[qi % queries.size()]);
    auto res = graph::BeamSearch(
        g, g.entry_point(),
        [&](uint32_t v) {
          return table.Distance(codes.data() + v * pq->code_size());
        },
        {beam, 10}, &visited);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeamSearchAdc)->Arg(16)->Arg(64);

// Same search through the batched oracle: each expansion scores all its
// unvisited neighbors with one vectorized gather call.
void BM_BeamSearchAdcBatch(benchmark::State& state) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 4000, 50, 15, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto g = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 16;
  popt.k = 64;
  popt.kmeans_iters = 6;
  auto pq = quant::PqQuantizer::Train(base, popt);
  auto codes = pq->EncodeDataset(base);
  graph::VisitedTable visited(base.size());
  size_t beam = state.range(0);
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    quant::AdcTable table(*pq, queries[qi % queries.size()]);
    quant::AdcBatchOracle oracle{table, codes.data(), pq->code_size()};
    auto res = graph::BeamSearch(g, g.entry_point(), oracle, {beam, 10}, &visited);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeamSearchAdcBatch)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
