// google-benchmark microbenchmarks of the library's hot kernels: distance
// computation, ADC table construction and scans, k-means steps, matrix
// exponential, differentiable-quantizer forward pass, and beam search.
#include <benchmark/benchmark.h>

#include <cstring>

#include "common/distance.h"
#include "common/rng.h"
#include "core/diff_quantizer.h"
#include "core/memory_index.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "graph/beam_search.h"
#include "graph/vamana.h"
#include "ivf/ivf_index.h"
#include "linalg/matexp.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quant/adc.h"
#include "quant/fastscan.h"
#include "quant/kmeans.h"
#include "quant/linkcode.h"
#include "quant/pq.h"
#include "quant/split.h"
#include "refine/refine.h"
#include "simd/simd.h"

namespace {

using namespace rpq;

void BM_SquaredL2(benchmark::State& state) {
  size_t d = state.range(0);
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2)->Arg(96)->Arg(128)->Arg(960);

// Scalar reference for the same kernel: the dispatched/scalar ratio is the
// headline SIMD speedup (acceptance bar: >= 2x at d = 128 on AVX2 hardware).
void BM_SquaredL2Scalar(benchmark::State& state) {
  size_t d = state.range(0);
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  const auto& ops = simd::ScalarOps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.squared_l2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2Scalar)->Arg(96)->Arg(128)->Arg(960);

void BM_AdcTableBuild(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(1500, 3);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  std::vector<float> table(pq->num_chunks() * pq->num_centroids());
  size_t qi = 0;
  for (auto _ : state) {
    pq->BuildLookupTable(d[qi % d.size()], table.data());
    ++qi;
  }
}
BENCHMARK(BM_AdcTableBuild)->Arg(64)->Arg(256);

void BM_AdcScan(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Distance(codes.data() + (i % d.size()) * pq->code_size()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdcScan);

// Batched ADC scan over contiguous codes; items/s vs BM_AdcScan is the
// batching + SIMD win.
void BM_AdcScanBatch(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  std::vector<float> dists(d.size());
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    table.DistanceBatch(codes.data(), d.size(), dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_AdcScanBatch);

// Batched ADC scan addressed by shuffled vertex ids — the beam-search
// expansion access pattern.
void BM_AdcScanBatchGather(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  Rng rng(3);
  std::vector<uint32_t> ids(d.size());
  for (size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<uint32_t>(rng.UniformIndex(d.size()));
  std::vector<float> dists(d.size());
  for (auto _ : state) {
    table.DistanceBatchGather(codes.data(), pq->code_size(), ids.data(),
                              ids.size(), dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_AdcScanBatchGather);

// FastScan flat scan (4-bit codes, packed 32-code blocks, register-resident
// u8 LUTs). Per-code items/s vs BM_AdcScanBatch (the float-table gather
// scan, a.k.a. BM_AdcBatch in the roadmap) is the headline shuffle-kernel
// win; arg = M so 16 compares at equal chunk count and 32 at equal code
// bits (32x4 = 16x8).
void BM_AdcFastScan(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = static_cast<size_t>(state.range(0));
  opt.nbits = 4;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  auto packed = quant::PackedCodes::Pack(codes.data(), d.size(), pq->code_size());
  quant::FastScanTable table(*pq, d[0]);
  std::vector<float> dists(d.size());
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    table.Scan(packed, dists.data());
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_AdcFastScan)->Arg(16)->Arg(32);

// Split-table flat scan: K = 256 codes scored as two nibble planes through
// the same shuffle kernels, plus the per-vector cross-constant add. The
// per-code gap vs BM_AdcFastScan/16 is the price of the 8-bit regime —
// exactly 2x the LUT rows, so items/s should land near half (the acceptance
// bar is within 2.5x per-code cost).
void BM_AdcFastScanSplit(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = static_cast<size_t>(state.range(0));
  opt.nbits = 8;
  opt.kmeans_iters = 4;
  auto pq = quant::TrainSplitPq(d, opt);
  auto codes = pq->EncodeDataset(d);
  const size_t m = pq->code_size();
  std::vector<uint8_t> expanded(d.size() * 2 * m);
  for (size_t i = 0; i < d.size(); ++i) {
    quant::ExpandSplitCode(codes.data() + i * m, m,
                           expanded.data() + i * 2 * m);
  }
  auto packed = quant::PackedCodes::Pack(expanded.data(), d.size(), 2 * m);
  quant::SplitFastScanTable table(*pq, d[0]);
  const quant::SplitPqModel* model = pq->split_model();
  std::vector<float> cross(d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    cross[i] = model->CrossSum(codes.data() + i * m);
  }
  std::vector<uint16_t> sums(packed.num_blocks() * 32);
  std::vector<float> dists(d.size());
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    table.ScanBlocks(packed.data.data(), packed.num_blocks(), sums.data());
    for (size_t i = 0; i < d.size(); ++i) {
      dists[i] = table.DecodeSum(sums[i]) + cross[i];
    }
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() * d.size());
}
BENCHMARK(BM_AdcFastScanSplit)->Arg(16);

// The residual regime's per-(query, probed cell) overhead: subtract the
// owning centroid and rebuild the split u8 table from q - centroid. Search
// pays this once per probe; SearchBatch amortizes it across every query in
// the batch probing the same cell.
void BM_IvfResidualLutBuild(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::KMeansOptions kopt;
  kopt.k = 64;
  auto km = quant::RunKMeans(d.data(), d.size(), d.dim(), kopt);
  // Model trained on the residuals, as the index requires.
  std::vector<float> resid(d.size() * d.dim());
  for (size_t i = 0; i < d.size(); ++i) {
    uint32_t c = quant::NearestCentroid(d[i], km.centroids.data(), kopt.k,
                                        d.dim());
    const float* cen = km.centroids.data() + size_t{c} * d.dim();
    for (size_t j = 0; j < d.dim(); ++j) {
      resid[i * d.dim() + j] = d[i][j] - cen[j];
    }
  }
  Dataset rset(d.size(), d.dim(), std::move(resid));
  quant::PqOptions opt;
  opt.m = 16;
  opt.nbits = 8;
  opt.kmeans_iters = 4;
  auto pq = quant::TrainSplitPq(rset, opt);
  const quant::SplitPqModel& model = *pq->split_model();
  std::vector<float> resq(d.dim());
  size_t probe = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    const float* q = d[probe % 128];
    const float* cen = km.centroids.data() + (probe % kopt.k) * d.dim();
    for (size_t j = 0; j < d.dim(); ++j) resq[j] = q[j] - cen[j];
    quant::SplitFastScanTable table(model, resq.data());
    benchmark::DoNotOptimize(table.lut8());
    ++probe;
  }
}
BENCHMARK(BM_IvfResidualLutBuild);

void BM_AdcTableBuildScalar(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(1500, 3);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  // Rebuild the table through the scalar reference kernels, mirroring
  // BuildLookupTable's per-call work (including the rotation-buffer copy —
  // plain PQ's rotation is the identity) so the two benches compare
  // like-for-like.
  const auto& ops = simd::ScalarOps();
  size_t sub = d.dim() / opt.m;
  std::vector<float> table(pq->num_chunks() * pq->num_centroids());
  size_t qi = 0;
  for (auto _ : state) {
    std::vector<float> rot(d.dim());
    std::memcpy(rot.data(), d[qi % d.size()], d.dim() * sizeof(float));
    for (size_t j = 0; j < opt.m; ++j) {
      ops.l2_to_many(rot.data() + j * sub, pq->codebook().Chunk(j), opt.k, sub,
                     table.data() + j * opt.k);
    }
    benchmark::DoNotOptimize(table.data());
    ++qi;
  }
}
BENCHMARK(BM_AdcTableBuildScalar)->Arg(64)->Arg(256);

void BM_KMeansIteration(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 7);
  for (auto _ : state) {
    quant::KMeansOptions opt;
    opt.k = 64;
    opt.max_iters = 1;
    benchmark::DoNotOptimize(RunKMeans(d.data(), d.size(), d.dim(), opt));
  }
}
BENCHMARK(BM_KMeansIteration);

void BM_MatrixExp(benchmark::State& state) {
  size_t n = state.range(0);
  Rng rng(9);
  linalg::Matrix p(n, n);
  for (size_t i = 0; i < n * n; ++i) p.data()[i] = rng.Gaussian(0, 0.3f);
  linalg::Matrix a = linalg::SkewPart(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatrixExp(a));
  }
}
BENCHMARK(BM_MatrixExp)->Arg(32)->Arg(64)->Arg(128);

void BM_DiffQuantizerForward(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(500, 11);
  core::DiffQuantizerOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  core::DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 128));
  Rng rng(13);
  core::ForwardResult f;
  size_t i = 0;
  for (auto _ : state) {
    dq.Forward(d[i % d.size()], &rng, true, &f);
    ++i;
  }
}
BENCHMARK(BM_DiffQuantizerForward)->Arg(64)->Arg(256);

void BM_BeamSearchAdc(benchmark::State& state) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 4000, 50, 15, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto g = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 16;
  popt.k = 64;
  popt.kmeans_iters = 6;
  auto pq = quant::PqQuantizer::Train(base, popt);
  auto codes = pq->EncodeDataset(base);
  graph::VisitedTable visited(base.size());
  size_t beam = state.range(0);
  size_t qi = 0;
  for (auto _ : state) {
    quant::AdcTable table(*pq, queries[qi % queries.size()]);
    auto res = graph::BeamSearch(
        g, g.entry_point(),
        [&](uint32_t v) {
          return table.Distance(codes.data() + v * pq->code_size());
        },
        {beam, 10}, &visited);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeamSearchAdc)->Arg(16)->Arg(64);

// Same search through the batched oracle: each expansion scores all its
// unvisited neighbors with one vectorized gather call.
void BM_BeamSearchAdcBatch(benchmark::State& state) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 4000, 50, 15, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto g = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 16;
  popt.k = 64;
  popt.kmeans_iters = 6;
  auto pq = quant::PqQuantizer::Train(base, popt);
  auto codes = pq->EncodeDataset(base);
  graph::VisitedTable visited(base.size());
  size_t beam = state.range(0);
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    quant::AdcTable table(*pq, queries[qi % queries.size()]);
    quant::AdcBatchOracle oracle{table, codes.data(), pq->code_size()};
    auto res = graph::BeamSearch(g, g.entry_point(), oracle, {beam, 10}, &visited);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeamSearchAdcBatch)->Arg(16)->Arg(64);

// Query-level A/B at one 4-bit quantizer: the same beam search routed by
// the float-ADC batched oracle vs the FastScan shuffle path with float-ADC
// rerank (core::MemoryIndex DistanceMode::kFastScan). Both report searches/s
// through the full MemoryIndex entry point. The corpus is sized so the code
// array spills L2 — the production regime, where the ADC path's scattered
// per-neighbor gathers stall on cache misses while FastScan reads one
// sequential (and beam-prefetched) block per expansion. On the dev box the
// crossover sits around n = 50k; at n = 100k FastScan wins ~1.2x, growing
// with corpus size. (The fixture build dominates harness startup: ~1 min.)
struct FastScanQueryFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<core::MemoryIndex> index;
};

FastScanQueryFixture& QueryFixture() {
  static FastScanQueryFixture f = [] {
    FastScanQueryFixture x;
    synthetic::MakeBaseAndQueries("sift", 100000, 50, 15, &x.base, &x.queries);
    graph::VamanaOptions vopt;
    vopt.degree = 31;
    vopt.build_beam = 48;
    x.graph = graph::BuildVamana(x.base, vopt);
    quant::PqOptions popt;
    popt.m = 16;
    popt.nbits = 4;
    popt.kmeans_iters = 6;
    x.pq = quant::PqQuantizer::Train(x.base, popt);
    x.index = core::MemoryIndex::Build(x.base, x.graph, *x.pq);
    return x;
  }();
  return f;
}

void BM_BeamSearchFourBit(benchmark::State& state, core::DistanceMode mode) {
  FastScanQueryFixture& f = QueryFixture();
  size_t beam = state.range(0);
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    auto res = f.index->Search(f.queries[qi % f.queries.size()], 10,
                               {beam, 10}, mode);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BeamSearchAdc4bit(benchmark::State& state) {
  BM_BeamSearchFourBit(state, core::DistanceMode::kAdc);
}
BENCHMARK(BM_BeamSearchAdc4bit)->Arg(16)->Arg(64);

void BM_BeamSearchFastScan(benchmark::State& state) {
  BM_BeamSearchFourBit(state, core::DistanceMode::kFastScan);
}
BENCHMARK(BM_BeamSearchFastScan)->Arg(16)->Arg(64);

// Per-candidate cost of the refinement stages (src/refine/): the float-ADC
// batched gather, the exact raw-row squared L2, and the Link&Code
// neighbor-regression reconstruction, each re-scoring the same 64-candidate
// set one epilogue would. Items = candidates, so items/s ranks the stages'
// per-candidate cost directly; recall-wise they rank the other way (exact >
// linkcode > adc) — the trade the --rerank-mode knob exposes.
struct RerankStageFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::vector<uint8_t> codes;
  std::unique_ptr<quant::LinkCodeIndex> linkcode;
  std::vector<refine::Candidate> cands;
};

RerankStageFixture& RerankFixture() {
  // Built in place behind a pointer: linkcode holds references into base
  // and graph, so the fixture must never be moved after construction.
  static RerankStageFixture* f = [] {
    auto* x = new RerankStageFixture;
    synthetic::MakeBaseAndQueries("sift", 20000, 8, 19, &x->base, &x->queries);
    graph::VamanaOptions vopt;
    vopt.degree = 16;
    vopt.build_beam = 32;
    x->graph = graph::BuildVamana(x->base, vopt);
    quant::PqOptions popt;
    popt.m = 16;
    popt.nbits = 4;
    popt.kmeans_iters = 4;
    x->pq = quant::PqQuantizer::Train(x->base, popt);
    x->codes = x->pq->EncodeDataset(x->base);
    quant::LinkCodeOptions lopt;
    lopt.pq = popt;
    lopt.num_links = 8;
    x->linkcode = quant::LinkCodeIndex::Build(x->base, x->graph, lopt);
    Rng rng(29);
    for (int i = 0; i < 64; ++i) {
      x->cands.push_back(
          {0.f, static_cast<uint32_t>(rng.UniformIndex(x->base.size())), 0});
    }
    return x;
  }();
  return *f;
}

void BM_RerankStage(benchmark::State& state, int stage) {
  RerankStageFixture& f = RerankFixture();
  const float* query = f.queries[0];
  quant::AdcTable lut(*f.pq, query);
  std::vector<float> out(f.cands.size());
  std::unique_ptr<refine::Refiner> refiner;
  if (stage == 0) {
    refiner = std::make_unique<refine::AdcRefiner>(lut, f.codes.data(),
                                                   f.pq->code_size());
  } else if (stage == 1) {
    refiner = std::make_unique<refine::ExactRefiner>(query, f.base.dim(),
                                                     f.base.data());
  } else {
    refiner = std::make_unique<refine::LinkCodeRefiner>(query, *f.linkcode);
  }
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    refiner->Refine(f.cands.data(), f.cands.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.cands.size());
}

void BM_RerankStageAdc(benchmark::State& state) { BM_RerankStage(state, 0); }
BENCHMARK(BM_RerankStageAdc);
void BM_RerankStageExact(benchmark::State& state) { BM_RerankStage(state, 1); }
BENCHMARK(BM_RerankStageExact);
void BM_RerankStageLinkCode(benchmark::State& state) {
  BM_RerankStage(state, 2);
}
BENCHMARK(BM_RerankStageLinkCode);

// Multi-query FastScan (the IVF batched list scan): one pass over the packed
// blocks scores Q queries' LUTs while each block row is register-resident.
// Compare per-item (item = code x query) against BM_IvfScanSingleQ, which
// runs the same workload as Q independent single-query scans — the
// acceptance bar is multi beating single per code at Q in {2, 4, 8}. The
// 1024-block (256 KB) working set models a batch's probed lists spilling L1
// — the win comes from reading each block once instead of Q times, so it
// GROWS with the working set (~1.05x L1-resident, ~1.3x at 4 MB) and the
// L1-bound BM_IvfScan/1-vs-BM_AdcFastScan gap stays near zero.
struct MultiScanFixture {
  std::vector<uint8_t> luts, packed;
  std::vector<uint16_t> sums;
};

MultiScanFixture MakeMultiScanFixture(size_t q_count, size_t m2,
                                      size_t n_blocks) {
  Rng rng(23);
  MultiScanFixture f;
  f.luts.resize(q_count * m2 * 16);
  f.packed.resize(n_blocks * 16 * m2);
  f.sums.resize(q_count * n_blocks * 32);
  for (auto& v : f.luts) v = static_cast<uint8_t>(rng.UniformIndex(256));
  for (auto& v : f.packed) v = static_cast<uint8_t>(rng.UniformIndex(256));
  return f;
}

void BM_IvfScan(benchmark::State& state) {
  const size_t q_count = static_cast<size_t>(state.range(0));
  const size_t m2 = 16, n_blocks = 1024;  // 32k codes, m = 16 (paper default)
  MultiScanFixture f = MakeMultiScanFixture(q_count, m2, n_blocks);
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    simd::AdcFastScanMulti(f.luts.data(), q_count, m2, f.packed.data(),
                           n_blocks, f.sums.data());
    benchmark::DoNotOptimize(f.sums.data());
  }
  state.SetItemsProcessed(state.iterations() * q_count * n_blocks * 32);
}
BENCHMARK(BM_IvfScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_IvfScanSingleQ(benchmark::State& state) {
  const size_t q_count = static_cast<size_t>(state.range(0));
  const size_t m2 = 16, n_blocks = 1024;
  MultiScanFixture f = MakeMultiScanFixture(q_count, m2, n_blocks);
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    for (size_t q = 0; q < q_count; ++q) {
      simd::AdcFastScan(f.luts.data() + q * m2 * 16, m2, f.packed.data(),
                        n_blocks, f.sums.data() + q * n_blocks * 32);
    }
    benchmark::DoNotOptimize(f.sums.data());
  }
  state.SetItemsProcessed(state.iterations() * q_count * n_blocks * 32);
}
BENCHMARK(BM_IvfScanSingleQ)->Arg(2)->Arg(4)->Arg(8);

// Query-level IVF vs beam search: the same 100k corpus and 4-bit model as
// BM_BeamSearchFastScan, served by coarse routing + flat list scans instead
// of graph traversal. Arg = nprobe; searches/s lines up against the beam
// benchmarks in the same JSON (nprobe trades recall for scans the way beam
// width trades recall for hops).
ivf::IvfIndex& IvfFixture() {
  static std::unique_ptr<ivf::IvfIndex> index = [] {
    FastScanQueryFixture& f = QueryFixture();
    ivf::IvfOptions opt;
    opt.nlist = 256;
    opt.kmeans_iters = 10;
    opt.train_sample = 20000;  // caps coarse-kmeans cost on the 100k corpus
    return ivf::IvfIndex::Build(f.base, *f.pq, opt);
  }();
  return *index;
}

void BM_IvfVsBeam(benchmark::State& state) {
  ivf::IvfIndex& index = IvfFixture();
  FastScanQueryFixture& f = QueryFixture();
  ivf::IvfSearchOptions opt;
  opt.nprobe = static_cast<size_t>(state.range(0));
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    auto res = index.Search(f.queries[qi % f.queries.size()], 10, opt);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IvfVsBeam)->Arg(4)->Arg(8)->Arg(16);

// The batched entry point: Q queries in one SearchBatch, items = queries,
// so per-item time compares against BM_IvfVsBeam/8 (per-query Search at the
// same nprobe). How much the multi-query kernel helps depends on probe
// OVERLAP: arg pair (Q, hot) benches both a uniform batch of distinct
// queries (hot = 0 — at nlist = 256, nprobe = 8 probe sets rarely collide,
// so per-item cost is Search plus grouping bookkeeping) and a hot batch of
// one repeated query (hot = 1 — every list shared by all Q, the serving
// pattern trending queries create and the sharing upper bound).
void BM_IvfSearchBatch(benchmark::State& state) {
  ivf::IvfIndex& index = IvfFixture();
  FastScanQueryFixture& f = QueryFixture();
  const size_t q_count = static_cast<size_t>(state.range(0));
  const bool hot = state.range(1) != 0;
  ivf::IvfSearchOptions opt;
  opt.nprobe = 8;
  std::vector<const float*> batch(q_count);
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    for (size_t i = 0; i < q_count; ++i) {
      batch[i] = f.queries[(qi + (hot ? 0 : i)) % f.queries.size()];
    }
    auto res = index.SearchBatch(batch.data(), q_count, 10, opt);
    benchmark::DoNotOptimize(res);
    qi += hot ? 1 : q_count;
  }
  state.SetItemsProcessed(state.iterations() * q_count);
}
BENCHMARK(BM_IvfSearchBatch)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({4, 1})
    ->Args({8, 1});

// ------------------------------------------------------- observability -----
//
// The registry hot path (src/obs/): one enabled-flag load plus a relaxed
// load+store on the calling thread's shard per Add(), a few more for a
// histogram sample. Single-digit nanoseconds — the per-QUERY granularity the
// search paths record at makes the cost invisible next to a multi-10us
// search, which BM_TracedSearch pins end to end.

void BM_ObsCounterInc(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::SetMetricsEnabled(enabled);
  state.SetLabel(enabled ? "enabled" : "disabled");
  static const obs::CounterId id = obs::GetCounter("bench.counter");
  for (auto _ : state) {
    obs::Add(id, 1);
  }
  obs::SetMetricsEnabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc)->Arg(0)->Arg(1);

void BM_ObsHistogramRecord(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::SetMetricsEnabled(enabled);
  state.SetLabel(enabled ? "enabled" : "disabled");
  static const obs::HistogramId id = obs::GetHistogram("bench.histogram");
  uint64_t v = 1;
  for (auto _ : state) {
    obs::Record(id, v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap value mix
  }
  obs::SetMetricsEnabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord)->Arg(0)->Arg(1);

// The same query loop as BM_BeamSearchFastScan with the full observability
// surface ON: registry metrics enabled and a per-query QueryTrace threaded
// through Search. Compare searches/s against BM_BeamSearchFastScan at the
// same beam — the acceptance bar is <2% regression.
void BM_TracedSearch(benchmark::State& state) {
  FastScanQueryFixture& f = QueryFixture();
  const size_t beam = state.range(0);
  CalibrateTickClock();
  obs::SetMetricsEnabled(true);
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    obs::QueryTrace trace;
    auto res = f.index->Search(f.queries[qi % f.queries.size()], 10,
                               {beam, 10}, core::DistanceMode::kFastScan, {},
                               &trace);
    benchmark::DoNotOptimize(res);
    benchmark::DoNotOptimize(trace);
    ++qi;
  }
  obs::SetMetricsEnabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracedSearch)->Arg(16)->Arg(64);

// Flight-recorder hot path: the admission decision a healthy query pays when
// the recorder is armed. Arg(0) = recorder disabled (one relaxed load);
// Arg(1) = enabled but nothing admitted (policy checks only — the common
// case); Arg(2) = enabled and every call admitted (mutex + ring write — the
// policy-rare path, benchmarked to show what rarity is buying).
void BM_FlightRecorderObserve(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  obs::FlightRecorder recorder;
  obs::FlightRecorderOptions opt;
  opt.capacity = 256;
  opt.slow_us = mode == 2 ? 1 : 1000000000;  // admit-all vs admit-none
  opt.admit_degraded = true;
  recorder.Configure(opt);
  recorder.SetEnabled(mode != 0);
  state.SetLabel(mode == 0 ? "disabled"
                           : (mode == 1 ? "armed-not-admitted" : "admit-all"));
  obs::QueryObservation o;
  o.latency_us = 50;
  o.k = 10;
  o.width = 64;
  for (auto _ : state) {
    recorder.Observe(o);
    benchmark::DoNotOptimize(recorder);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderObserve)->Arg(0)->Arg(1)->Arg(2);

// BM_TracedSearch with the flight recorder armed on top of metrics+trace:
// the interleaved A/B against BM_TracedSearch at the same beam isolates the
// recorder + windowed-view overhead (the acceptance bar is <2%; a healthy
// query's added cost is one Observe() admission check, and snapshot diffing
// happens on the scraper's thread, not here).
void BM_TracedSearchRecorded(benchmark::State& state) {
  FastScanQueryFixture& f = QueryFixture();
  const size_t beam = state.range(0);
  CalibrateTickClock();
  obs::SetMetricsEnabled(true);
  obs::FlightRecorder& recorder = obs::GlobalFlightRecorder();
  obs::FlightRecorderOptions opt;
  opt.capacity = 256;
  opt.slow_us = 1000000;  // 1s: nothing here admits, the serving common case
  recorder.Configure(opt);
  recorder.SetEnabled(true);
  size_t qi = 0;
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    obs::QueryTrace trace;
    const uint64_t start = TickNow();
    auto res = f.index->Search(f.queries[qi % f.queries.size()], 10,
                               {beam, 10}, core::DistanceMode::kFastScan, {},
                               &trace);
    obs::QueryObservation o;
    o.latency_us = TicksToNanos(TickNow() - start) / 1000;
    o.k = 10;
    o.width = static_cast<uint32_t>(beam);
    o.trace = &trace;
    recorder.Observe(o);
    benchmark::DoNotOptimize(res);
    benchmark::DoNotOptimize(trace);
    ++qi;
  }
  recorder.SetEnabled(false);
  obs::SetMetricsEnabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracedSearchRecorded)->Arg(16)->Arg(64);

// Async disk search across the (queue_depth, io_width, readahead) grid. The
// wall-clock rate measures CPU cost of the wave machinery (submission,
// prefetch cache, rerank); the sim_io_us_per_q counter reports the simulated
// overlapped device time that the serving metrics gate — at QD 8 / width 8
// it should sit ~8x under the {1,1,0} sequential baseline.
struct DiskAsyncFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
};

DiskAsyncFixture& DiskFixture() {
  static DiskAsyncFixture f = [] {
    DiskAsyncFixture x;
    synthetic::MakeBaseAndQueries("sift", 20000, 50, 23, &x.base, &x.queries);
    graph::VamanaOptions vopt;
    vopt.degree = 24;
    vopt.build_beam = 48;
    x.graph = graph::BuildVamana(x.base, vopt);
    quant::PqOptions popt;
    popt.m = 16;
    popt.nbits = 4;
    popt.kmeans_iters = 6;
    x.pq = quant::PqQuantizer::Train(x.base, popt);
    return x;
  }();
  return f;
}

void BM_DiskSearchAsync(benchmark::State& state) {
  DiskAsyncFixture& f = DiskFixture();
  disk::DiskIndexOptions dopt;
  dopt.ssd.queue_depth = static_cast<size_t>(state.range(0));
  dopt.io_width = static_cast<size_t>(state.range(1));
  dopt.readahead = static_cast<size_t>(state.range(2));
  auto index = disk::DiskIndex::Build(f.base, f.graph, *f.pq, dopt);
  size_t qi = 0;
  double sim_io = 0;
  for (auto _ : state) {
    auto res = index->Search(f.queries[qi % f.queries.size()], 10, {64, 10});
    sim_io += res.io.simulated_seconds;
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_io_us_per_q"] =
      sim_io * 1e6 / static_cast<double>(std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_DiskSearchAsync)
    ->Args({1, 1, 0})    // sequential baseline (QD cannot help width 1)
    ->Args({8, 1, 0})
    ->Args({8, 4, 0})
    ->Args({8, 8, 0})
    ->Args({8, 8, 4})    // full async: wide waves + readahead
    ->Args({8, 1, 4});   // readahead-only: hits without wide waves

}  // namespace

BENCHMARK_MAIN();
