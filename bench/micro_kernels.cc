// google-benchmark microbenchmarks of the library's hot kernels: distance
// computation, ADC table construction and scans, k-means steps, matrix
// exponential, differentiable-quantizer forward pass, and beam search.
#include <benchmark/benchmark.h>

#include "common/distance.h"
#include "common/rng.h"
#include "core/diff_quantizer.h"
#include "data/synthetic.h"
#include "graph/beam_search.h"
#include "graph/vamana.h"
#include "linalg/matexp.h"
#include "quant/adc.h"
#include "quant/kmeans.h"
#include "quant/pq.h"

namespace {

using namespace rpq;

void BM_SquaredL2(benchmark::State& state) {
  size_t d = state.range(0);
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2)->Arg(96)->Arg(128)->Arg(960);

void BM_AdcTableBuild(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(1500, 3);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  std::vector<float> table(pq->num_chunks() * pq->num_centroids());
  size_t qi = 0;
  for (auto _ : state) {
    pq->BuildLookupTable(d[qi % d.size()], table.data());
    ++qi;
  }
}
BENCHMARK(BM_AdcTableBuild)->Arg(64)->Arg(256);

void BM_AdcScan(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 5);
  quant::PqOptions opt;
  opt.m = 16;
  opt.k = 256;
  opt.kmeans_iters = 4;
  auto pq = quant::PqQuantizer::Train(d, opt);
  auto codes = pq->EncodeDataset(d);
  quant::AdcTable table(*pq, d[0]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Distance(codes.data() + (i % d.size()) * pq->code_size()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdcScan);

void BM_KMeansIteration(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(2000, 7);
  for (auto _ : state) {
    quant::KMeansOptions opt;
    opt.k = 64;
    opt.max_iters = 1;
    benchmark::DoNotOptimize(RunKMeans(d.data(), d.size(), d.dim(), opt));
  }
}
BENCHMARK(BM_KMeansIteration);

void BM_MatrixExp(benchmark::State& state) {
  size_t n = state.range(0);
  Rng rng(9);
  linalg::Matrix p(n, n);
  for (size_t i = 0; i < n * n; ++i) p.data()[i] = rng.Gaussian(0, 0.3f);
  linalg::Matrix a = linalg::SkewPart(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatrixExp(a));
  }
}
BENCHMARK(BM_MatrixExp)->Arg(32)->Arg(64)->Arg(128);

void BM_DiffQuantizerForward(benchmark::State& state) {
  Dataset d = synthetic::MakeSiftLike(500, 11);
  core::DiffQuantizerOptions opt;
  opt.m = 16;
  opt.k = static_cast<size_t>(state.range(0));
  core::DiffQuantizer dq(d.dim(), opt);
  dq.InitCodebooks(d);
  dq.CalibrateTemperatures(d.Slice(0, 128));
  Rng rng(13);
  core::ForwardResult f;
  size_t i = 0;
  for (auto _ : state) {
    dq.Forward(d[i % d.size()], &rng, true, &f);
    ++i;
  }
}
BENCHMARK(BM_DiffQuantizerForward)->Arg(64)->Arg(256);

void BM_BeamSearchAdc(benchmark::State& state) {
  Dataset base, queries;
  synthetic::MakeBaseAndQueries("sift", 4000, 50, 15, &base, &queries);
  graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto g = graph::BuildVamana(base, vopt);
  quant::PqOptions popt;
  popt.m = 16;
  popt.k = 64;
  popt.kmeans_iters = 6;
  auto pq = quant::PqQuantizer::Train(base, popt);
  auto codes = pq->EncodeDataset(base);
  graph::VisitedTable visited(base.size());
  size_t beam = state.range(0);
  size_t qi = 0;
  for (auto _ : state) {
    quant::AdcTable table(*pq, queries[qi % queries.size()]);
    auto res = graph::BeamSearch(
        g, g.entry_point(),
        [&](uint32_t v) {
          return table.Distance(codes.data() + v * pq->code_size());
        },
        {beam, 10}, &visited);
    benchmark::DoNotOptimize(res);
    ++qi;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeamSearchAdc)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
