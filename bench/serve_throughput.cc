// Query-level serving throughput: QPS over a (worker threads x shards x
// batched-dispatch) grid on the in-memory ADC backend. Registers into the
// micro-kernel harness (bench_micro_kernels / BENCH_micro.json via
// bench/run_micro.sh) so the tracked numbers include end-to-end query
// throughput, not just kernel wins; also built standalone as
// bench_serve_throughput.
//
// Scaling expectation: on multi-core (CI-class) hardware the 4-thread rows
// exceed the 1-thread rows by >2x; on a single-core host the grid still
// runs but collapses to ~1x (the engine degrades to an inline loop).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/memory_index.h"
#include "data/synthetic.h"
#include "graph/vamana.h"
#include "quant/pq.h"
#include "serve/engine.h"
#include "serve/sharded.h"

namespace {

using namespace rpq;

constexpr size_t kQueries = 64;
constexpr size_t kK = 10;
constexpr size_t kBeam = 32;

struct ServeFixture {
  Dataset base, queries;
  graph::ProximityGraph graph;
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<core::MemoryIndex> index;
  std::unique_ptr<serve::MemoryIndexService> single;
  serve::ShardedMemoryIndex sharded4;
};

// Built once, lazily, on first use (shared by every grid point).
const ServeFixture& Fixture() {
  static ServeFixture* f = [] {
    auto* fx = new ServeFixture();
    synthetic::MakeBaseAndQueries("sift", 6000, kQueries, /*seed=*/29,
                                  &fx->base, &fx->queries);
    graph::VamanaOptions vopt;
    vopt.degree = 24;
    vopt.build_beam = 48;
    fx->graph = graph::BuildVamana(fx->base, vopt);
    quant::PqOptions popt;
    popt.m = 16;
    popt.k = 64;
    fx->pq = quant::PqQuantizer::Train(fx->base, popt);
    fx->index = core::MemoryIndex::Build(fx->base, fx->graph, *fx->pq);
    fx->single = std::make_unique<serve::MemoryIndexService>(*fx->index);
    fx->sharded4 = serve::BuildShardedMemoryIndex(fx->base, *fx->pq, 4, vopt);
    return fx;
  }();
  return *f;
}

// args: (worker threads, shards, batched dispatch 0/1)
void BM_ServeThroughput(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  const bool batched = state.range(2) != 0;
  const ServeFixture& f = Fixture();
  const serve::SearchService& service =
      shards > 1 ? static_cast<const serve::SearchService&>(*f.sharded4.service)
                 : *f.single;
  serve::ServingEngine engine(service, {threads});

  std::vector<serve::QuerySpec> specs;
  specs.reserve(kQueries);
  for (size_t q = 0; q < kQueries; ++q) {
    specs.push_back({f.queries[q], kK, kBeam});
  }

  size_t completed = 0;
  for (auto _ : state) {
    // Batched dispatch routes workers through SearchService::SearchBatch
    // (amortized ADC table builds); unbatched issues one Search per query.
    auto results = batched ? engine.SearchAll(specs)
                           : engine.SearchAll(f.queries, kK, kBeam);
    benchmark::DoNotOptimize(results.data());
    completed += results.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
  state.counters["QPS"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeThroughput)
    ->ArgsProduct({{1, 2, 4}, {1, 4}, {0, 1}})
    ->ArgNames({"threads", "shards", "batch"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
