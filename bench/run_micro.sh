#!/usr/bin/env bash
# Builds and runs the micro benchmarks, recording the results to
# BENCH_micro.json (google-benchmark JSON format) for before/after
# comparisons. The harness carries both the kernel benchmarks and the
# query-level serving grid (BM_ServeThroughput: threads x shards x batch),
# so the JSON tracks end-to-end QPS alongside kernel wins.
#
# Usage:
#   bench/run_micro.sh [extra google-benchmark flags...]
# Env:
#   BUILD_DIR  build directory           (default: build)
#   OUT        output JSON path          (default: BENCH_micro.json)
#   RPQ_DISABLE_SIMD=1 / RPQ_SIMD=name   select the kernel backend under test
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$repo_root/build}"
OUT="${OUT:-$repo_root/BENCH_micro.json}"

cmake -B "$BUILD_DIR" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_micro_kernels

"$BUILD_DIR/bench_micro_kernels" \
  --benchmark_out="$OUT" --benchmark_out_format=json "$@"

echo "wrote $OUT"
