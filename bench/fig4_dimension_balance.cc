// Figure 4 (case study): distribution of "valuable dimensions" across
// sub-vectors before and after RPQ's adaptive vector decomposition. Following
// OPQ [27], a dimension's value is its variance (the diagonal of the data
// covariance). We print the per-chunk share of total variance and a balance
// metric (stddev of chunk energies / mean) before vs after the learned
// rotation: the rotation should spread the energy much more uniformly.
#include "bench_common.h"

namespace rpq::bench {
namespace {

std::vector<double> ChunkEnergies(const Dataset& data,
                                  const rpq::linalg::Matrix* rotation,
                                  size_t m) {
  size_t dim = data.dim();
  size_t sub = dim / m;
  std::vector<double> mean(dim, 0.0), var(dim, 0.0);
  std::vector<float> buf(dim);
  for (size_t i = 0; i < data.size(); ++i) {
    const float* row = data[i];
    if (rotation != nullptr) {
      rpq::linalg::MatVec(*rotation, row, buf.data());
      row = buf.data();
    }
    for (size_t j = 0; j < dim; ++j) mean[j] += row[j];
  }
  for (auto& v : mean) v /= data.size();
  for (size_t i = 0; i < data.size(); ++i) {
    const float* row = data[i];
    if (rotation != nullptr) {
      rpq::linalg::MatVec(*rotation, row, buf.data());
      row = buf.data();
    }
    for (size_t j = 0; j < dim; ++j) {
      double d = row[j] - mean[j];
      var[j] += d * d;
    }
  }
  std::vector<double> chunk(m, 0.0);
  double total = 0;
  for (size_t j = 0; j < dim; ++j) total += var[j];
  for (size_t c = 0; c < m; ++c) {
    for (size_t j = 0; j < sub; ++j) chunk[c] += var[c * sub + j];
    chunk[c] /= total;
  }
  return chunk;
}

double Imbalance(const std::vector<double>& chunk) {
  double mean = 0;
  for (double c : chunk) mean += c;
  mean /= chunk.size();
  double sd = 0;
  for (double c : chunk) sd += (c - mean) * (c - mean);
  return std::sqrt(sd / chunk.size()) / mean;
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);
  std::printf("=== Figure 4: valuable-dimension balance across sub-vectors "
              "===\n");
  for (const char* name : {"sift", "deep"}) {
    Profile p = GetProfile(name, args);
    p.n_base = std::min(p.n_base, size_t{3000});
    DatasetBundle b = MakeBundle(name, p, args.seed);
    auto graph = rpq::graph::BuildVamana(b.base, p.vamana);
    std::fprintf(stderr, "[%s] training RPQ...\n", name);
    auto res = rpq::core::TrainRpq(b.base, graph, p.rpq);

    auto before = ChunkEnergies(b.base, nullptr, p.rpq.m);
    auto after = ChunkEnergies(b.base, &res.quantizer->rotation(), p.rpq.m);

    std::printf("[%s] share of total variance per sub-vector (M=%zu)\n", name,
                p.rpq.m);
    std::printf("%-8s", "before:");
    for (double c : before) std::printf(" %6.3f", c);
    std::printf("\n%-8s", "after: ");
    for (double c : after) std::printf(" %6.3f", c);
    std::printf("\nimbalance (stddev/mean): before=%.3f after=%.3f\n\n",
                Imbalance(before), Imbalance(after));
  }
  return 0;
}
