// Table 6: ablation of RPQ's features/losses in the SSD-memory hybrid
// scenario. Rows: full RPQ, RPQ w/ N (neighborhood only), RPQ w/ R (routing
// only), RPQ w/ L2R (learning-to-route style path imitation). Values: QPS at
// Recall@10 = 95% on each dataset.
#include "bench_common.h"

namespace rpq::bench {
namespace {

double QpsAt95(const DatasetBundle& b, const graph::ProximityGraph& graph,
               const quant::VectorQuantizer& q) {
  auto index = disk::DiskIndex::Build(b.base, graph, q);
  auto curve = rpq::eval::SweepBeamWidths(MakeDiskSearchFn(*index), b.queries, b.gt,
                                     10, DefaultBeams());
  return eval::QpsAtRecall(curve, 0.95);
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);

  std::vector<std::string> names = {"bigann", "deep", "gist", "sift", "ukbench"};
  std::vector<std::vector<double>> table(4, std::vector<double>(names.size()));

  for (size_t d = 0; d < names.size(); ++d) {
    Profile p = GetProfile(names[d], args);
    DatasetBundle b = MakeBundle(names[d], p, args.seed);
    auto graph = rpq::graph::BuildVamana(b.base, p.vamana);

    auto full = p.rpq;  // both features, joint loss

    auto only_n = p.rpq;
    only_n.use_routing = false;

    auto only_r = p.rpq;
    only_r.use_neighborhood = false;

    auto l2r = p.rpq;
    l2r.use_neighborhood = false;
    l2r.l2r_mode = true;

    const rpq::core::RpqTrainOptions* variants[4] = {&full, &only_n, &only_r,
                                                     &l2r};
    for (size_t v = 0; v < 4; ++v) {
      std::fprintf(stderr, "[%s] variant %zu...\n", names[d].c_str(), v);
      auto res = rpq::core::TrainRpq(b.base, graph, *variants[v]);
      table[v][d] = QpsAt95(b, graph, *res.quantizer);
    }
  }

  std::printf("=== Table 6: ablation, hybrid scenario (QPS @ Recall@10=95%%) "
              "===\n%-12s", "Method");
  for (const auto& n : names) std::printf(" %10s", n.c_str());
  const char* labels[4] = {"RPQ", "RPQ w/ N", "RPQ w/ R", "RPQ w/ L2R"};
  for (size_t v = 0; v < 4; ++v) {
    std::printf("\n%-12s", labels[v]);
    for (size_t d = 0; d < names.size(); ++d) std::printf(" %10.1f", table[v][d]);
  }
  std::printf("\n");
  return 0;
}
