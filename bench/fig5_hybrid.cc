// Figure 5: QPS / Hops / Disk-I/O time vs Recall@10 in the SSD-memory hybrid
// scenario — DiskANN (Vamana graph on simulated SSD) integrated with PQ, OPQ,
// Catalyst and RPQ. Prints one trade-off curve per (dataset, method) plus the
// paper's headline "QPS at Recall@10 = 95%" row.
#include "bench_common.h"

namespace rpq::bench {
namespace {

void RunDataset(const std::string& name, const Args& args) {
  Profile p = GetProfile(name, args);
  DatasetBundle b = MakeBundle(name, p, args.seed);
  std::fprintf(stderr, "[%s] building Vamana graph (n=%zu)...\n", name.c_str(),
               b.base.size());
  auto graph = graph::BuildVamana(b.base, p.vamana);
  QuantizerSet qs = TrainAll(b, graph, p);

  struct Method {
    std::string label;
    const quant::VectorQuantizer* quantizer;
  };
  std::vector<Method> methods = {
      {"DiskANN-PQ", qs.pq.get()},
      {"DiskANN-OPQ", qs.opq.get()},
      {"DiskANN-Catalyst", qs.catalyst.get()},
      {"DiskANN-RPQ", qs.rpq.quantizer.get()},
  };

  std::printf("\n=== Figure 5 [%s]  (n=%zu, q=%zu, M=%zu, K=%zu) ===\n",
              name.c_str(), b.base.size(), b.queries.size(), p.pq.m, p.pq.k);
  std::vector<std::pair<std::string, double>> at95;
  for (const auto& m : methods) {
    auto index = disk::DiskIndex::Build(b.base, graph, *m.quantizer);
    auto curve = rpq::eval::SweepBeamWidths(MakeDiskSearchFn(*index), b.queries,
                                       b.gt, 10, DefaultBeams());
    eval::PrintCurve(m.label, curve);
    bool reached = false;
    double qps = rpq::eval::QpsAtRecall(curve, 0.95, &reached);
    at95.push_back({m.label + (reached ? "" : " (<95%)"), qps});
  }
  std::printf("--- QPS @ Recall@10=95%% [%s] ---\n", name.c_str());
  for (const auto& [label, qps] : at95) {
    std::printf("%-24s %10.1f\n", label.c_str(), qps);
  }
  double base_qps = at95[0].second;
  if (base_qps > 0) {
    std::printf("RPQ speedup over PQ: %.2fx\n", at95[3].second / base_qps);
  }
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  auto args = rpq::bench::Args::Parse(argc, argv);
  for (const char* name : {"bigann", "deep", "sift", "gist", "ukbench"}) {
    rpq::bench::RunDataset(name, args);
  }
  return 0;
}
