// Shared machinery for the per-table/figure benchmark harnesses.
//
// The paper evaluates on 1M-1B-point public datasets on a 2-socket Xeon with
// 8 V100s; this offline single-core build substitutes scaled synthetic slices
// (see DESIGN.md §3). Every harness accepts:
//   --n <base size>  --queries <count>  --seed <seed>  --fast
// so the scale can be raised on bigger machines. The *relative* behaviour of
// the compared methods — the shape of every figure — is what these harnesses
// reproduce.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/memory_index.h"
#include "core/trainer.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "eval/harness.h"
#include "eval/recall.h"
#include "graph/hnsw.h"
#include "graph/nsg.h"
#include "graph/vamana.h"
#include "quant/catalyst.h"
#include "quant/linkcode.h"
#include "quant/opq.h"
#include "quant/pq.h"

namespace rpq::bench {

/// Command-line knobs shared by all harnesses.
struct Args {
  size_t n = 0;        // 0 = per-dataset default
  size_t queries = 0;  // 0 = per-dataset default
  uint64_t seed = 7;
  bool fast = false;

  static Args Parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = next("--n")) a.n = std::strtoull(v, nullptr, 10);
      else if (const char* v2 = next("--queries"))
        a.queries = std::strtoull(v2, nullptr, 10);
      else if (const char* v3 = next("--seed"))
        a.seed = std::strtoull(v3, nullptr, 10);
      else if (std::strcmp(argv[i], "--fast") == 0)
        a.fast = true;
    }
    return a;
  }
};

/// Everything the experiments need for one dataset.
struct DatasetBundle {
  std::string name;
  Dataset base;
  Dataset queries;
  std::vector<std::vector<Neighbor>> gt;  // exact top-10
};

/// Per-dataset experiment profile: scaled sizes + method hyperparameters.
struct Profile {
  size_t n_base;
  size_t n_query;
  quant::PqOptions pq;          // shared code budget for PQ/OPQ/RPQ
  quant::OpqOptions opq;
  quant::CatalystOptions cat;
  core::RpqTrainOptions rpq;
  graph::VamanaOptions vamana;
  graph::HnswOptions hnsw;
  graph::NsgOptions nsg;
};

inline Profile GetProfile(const std::string& name, const Args& args) {
  Profile p;
  const bool gist = (name == "gist");
  p.n_base = args.n != 0 ? args.n : (gist ? 1200 : 6000);
  p.n_query = args.queries != 0 ? args.queries : (gist ? 40 : 100);
  if (args.fast) {
    p.n_base = std::min<size_t>(p.n_base, gist ? 600 : 2000);
    p.n_query = std::min<size_t>(p.n_query, 30);
  }

  // Code budget: 16 bytes/vector at K=256 (DiskANN's default regime); GIST
  // uses M=60 as in the paper's Figure 9 grid.
  p.pq.m = gist ? 60 : 16;
  p.pq.k = 256;
  p.pq.kmeans_iters = 12;
  p.pq.seed = args.seed;

  p.opq.pq = p.pq;
  p.opq.outer_iters = gist ? 1 : 4;

  p.cat.d_out = 48;  // divisible by catalyst's own M below
  p.cat.hidden = 128;
  p.cat.lambda = 0.005f;  // paper's configuration
  p.cat.epochs = args.fast ? 1 : 3;
  p.cat.batch_size = 64;
  p.cat.pq.m = 16;        // same byte budget as the other methods
  p.cat.pq.k = 256;
  p.cat.pq.kmeans_iters = 12;
  p.cat.seed = args.seed + 1;

  p.rpq.m = p.pq.m;
  p.rpq.k = p.pq.k;
  p.rpq.rotation_block = gist ? 96 : 0;
  p.rpq.epochs = args.fast ? 1 : (gist ? 1 : 2);
  p.rpq.batch_size = 16;
  p.rpq.triplets_per_epoch = gist ? 192 : 384;
  p.rpq.routing_queries_per_epoch = 24;
  p.rpq.routing_beam_width = 16;
  p.rpq.max_steps_per_query = 10;
  p.rpq.k_pos = 10;
  p.rpq.k_neg = 20;
  p.rpq.seed = args.seed + 2;

  p.vamana.degree = 32;
  p.vamana.build_beam = 64;
  p.vamana.seed = args.seed + 3;

  p.hnsw.m = 16;
  p.hnsw.ef_construction = 120;
  p.hnsw.seed = args.seed + 4;

  p.nsg.degree = 32;
  p.nsg.knn_k = 32;
  p.nsg.search_pool = 64;
  p.nsg.seed = args.seed + 5;
  return p;
}

inline DatasetBundle MakeBundle(const std::string& name, const Profile& p,
                                uint64_t seed) {
  DatasetBundle b;
  b.name = name;
  synthetic::MakeBaseAndQueries(name, p.n_base, p.n_query, seed, &b.base,
                                &b.queries);
  b.gt = ComputeGroundTruth(b.base, b.queries, 10);
  return b;
}

/// The four quantizers compared throughout the paper, trained on `base`.
struct QuantizerSet {
  std::unique_ptr<quant::PqQuantizer> pq;
  std::unique_ptr<quant::PqQuantizer> opq;
  std::unique_ptr<quant::CatalystQuantizer> catalyst;
  core::RpqTrainResult rpq;
};

inline QuantizerSet TrainAll(const DatasetBundle& b,
                             const graph::ProximityGraph& graph,
                             const Profile& p, bool include_catalyst = true) {
  QuantizerSet qs;
  std::fprintf(stderr, "[%s] training PQ...\n", b.name.c_str());
  qs.pq = quant::PqQuantizer::Train(b.base, p.pq);
  std::fprintf(stderr, "[%s] training OPQ...\n", b.name.c_str());
  qs.opq = quant::TrainOpq(b.base, p.opq);
  if (include_catalyst) {
    std::fprintf(stderr, "[%s] training Catalyst...\n", b.name.c_str());
    qs.catalyst = quant::CatalystQuantizer::Train(b.base, p.cat);
  }
  std::fprintf(stderr, "[%s] training RPQ...\n", b.name.c_str());
  qs.rpq = core::TrainRpq(b.base, graph, p.rpq);
  return qs;
}

/// SearchFn adapter for the hybrid (simulated-SSD DiskANN) scenario.
inline eval::SearchFn MakeDiskSearchFn(const disk::DiskIndex& index) {
  return [&index](const float* q, size_t k, size_t beam) {
    auto res = index.Search(q, k, {beam, k});
    eval::SearchOutcome out;
    out.results = std::move(res.results);
    out.hops = res.stats.hops;
    out.simulated_io_seconds = res.io.simulated_seconds;
    return out;
  };
}

/// SearchFn adapter for the in-memory (codes-only) scenario.
inline eval::SearchFn MakeMemorySearchFn(const core::MemoryIndex& index) {
  return [&index](const float* q, size_t k, size_t beam) {
    auto res = index.Search(q, k, {beam, k});
    eval::SearchOutcome out;
    out.results = std::move(res.results);
    out.hops = res.stats.hops;
    return out;
  };
}

/// L&C: ADC navigation, then refined-code rerank of the top 4k candidates.
inline eval::SearchFn MakeLinkCodeSearchFn(const core::MemoryIndex& index,
                                           const quant::LinkCodeIndex& lc) {
  return [&index, &lc](const float* q, size_t k, size_t beam) {
    auto res = index.Search(q, std::max(beam, 4 * k), {beam, 4 * k});
    TopK reranked(k);
    for (const auto& cand : res.results) {
      reranked.Push(lc.RefinedDistance(q, cand.id), cand.id);
    }
    eval::SearchOutcome out;
    out.results = reranked.Take();
    out.hops = res.stats.hops;
    return out;
  };
}

inline const std::vector<size_t>& DefaultBeams() {
  static const std::vector<size_t> kBeams{10, 16, 24, 32, 48, 64, 96, 128, 192};
  return kBeams;
}

}  // namespace rpq::bench
