// Design-choice ablations beyond the paper's tables (DESIGN.md §7):
//   (a) ADC vs SDC candidate ranking (the §3.1 premise for adopting ADC),
//   (b) final warm-started codebook refit on/off,
//   (c) straight-through vs fully-soft Gumbel relaxation,
//   (d) learned rotation on/off at fixed code budget (isolates adaptive
//       vector decomposition from the loss shaping).
// Reported: in-memory Recall@10 at beam 96 and distortion, SIFT-like data.
#include "bench_common.h"
#include "quant/adc.h"

namespace rpq::bench {
namespace {

double Recall(const DatasetBundle& b, const graph::ProximityGraph& graph,
              const quant::VectorQuantizer& q, core::DistanceMode mode) {
  auto index = core::MemoryIndex::Build(b.base, graph, q);
  std::vector<std::vector<Neighbor>> results(b.queries.size());
  for (size_t i = 0; i < b.queries.size(); ++i) {
    results[i] = index->Search(b.queries[i], 10, {96, 10}, mode).results;
  }
  return eval::MeanRecallAtK(results, b.gt, 10);
}

}  // namespace
}  // namespace rpq::bench

int main(int argc, char** argv) {
  using namespace rpq::bench;
  auto args = Args::Parse(argc, argv);
  Profile p = GetProfile("sift", args);
  p.n_base = std::min(p.n_base, size_t{4000});
  DatasetBundle b = MakeBundle("sift", p, args.seed);
  auto graph = rpq::graph::BuildVamana(b.base, p.vamana);

  std::printf("=== Design ablations (SIFT-like, n=%zu, beam=96) ===\n",
              b.base.size());
  std::printf("%-34s %10s %12s\n", "variant", "recall@10", "distortion");

  auto report = [&](const char* label, const rpq::quant::PqQuantizer& q,
                    rpq::core::DistanceMode mode) {
    std::printf("%-34s %10.3f %12.4g\n", label, Recall(b, graph, q, mode),
                q.Distortion(b.base));
  };

  // (d) baseline: no rotation, no learning.
  auto pq = rpq::quant::PqQuantizer::Train(b.base, p.pq);
  report("PQ (no rotation)", *pq, rpq::core::DistanceMode::kAdc);
  // (a) the same codes ranked symmetrically.
  report("PQ + SDC ranking", *pq, rpq::core::DistanceMode::kSdc);

  // Full RPQ.
  std::fprintf(stderr, "training RPQ (full)...\n");
  auto full = rpq::core::TrainRpq(b.base, graph, p.rpq);
  report("RPQ (full)", *full.quantizer, rpq::core::DistanceMode::kAdc);
  report("RPQ + SDC ranking", *full.quantizer, rpq::core::DistanceMode::kSdc);

  // (b) no final codebook refit.
  auto no_refit = p.rpq;
  no_refit.final_codebook_refit = false;
  std::fprintf(stderr, "training RPQ (no refit)...\n");
  auto nr = rpq::core::TrainRpq(b.base, graph, no_refit);
  report("RPQ w/o final refit", *nr.quantizer, rpq::core::DistanceMode::kAdc);

  // (c) fully-soft relaxation instead of straight-through.
  auto soft = p.rpq;
  soft.straight_through = false;
  std::fprintf(stderr, "training RPQ (soft forward)...\n");
  auto sf = rpq::core::TrainRpq(b.base, graph, soft);
  report("RPQ soft (no straight-through)", *sf.quantizer,
         rpq::core::DistanceMode::kAdc);

  // (d) rotation frozen at identity: loss shaping only.
  auto no_rot = p.rpq;
  no_rot.rotation_lr = 0.0f;
  std::fprintf(stderr, "training RPQ (frozen rotation)...\n");
  auto nrot = rpq::core::TrainRpq(b.base, graph, no_rot);
  report("RPQ frozen rotation", *nrot.quantizer,
         rpq::core::DistanceMode::kAdc);
  return 0;
}
