// Domain example: image near-duplicate retrieval (the Ukbench workload the
// paper's intro motivates). Each "image" is a 128-d descriptor; groups of
// near-duplicates live close together. We compare plain PQ against RPQ at the
// SAME code budget and show RPQ returning more of each query's true group.
//
//   $ ./image_search
#include <cstdio>

#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/hnsw.h"
#include "quant/pq.h"

int main() {
  // Ukbench-like: many tight clusters (photo groups), low intrinsic dim.
  rpq::Dataset base, queries;
  rpq::synthetic::MakeBaseAndQueries("ukbench", 4000, 30, 99, &base, &queries);

  rpq::graph::HnswOptions hopt;
  hopt.m = 16;
  hopt.ef_construction = 100;
  auto hnsw = rpq::graph::HnswIndex::Build(base, hopt);
  auto graph = hnsw->Flatten();

  // Same 16-byte code budget for both quantizers.
  rpq::quant::PqOptions popt;
  popt.m = 16;
  popt.k = 64;
  auto pq = rpq::quant::PqQuantizer::Train(base, popt);

  rpq::core::RpqTrainOptions topt;
  topt.m = 16;
  topt.k = 64;
  topt.epochs = 2;
  topt.triplets_per_epoch = 256;
  topt.routing_queries_per_epoch = 16;
  auto rpq_res = rpq::core::TrainRpq(base, graph, topt);

  auto gt = rpq::ComputeGroundTruth(base, queries, 10);
  auto evaluate = [&](const rpq::quant::VectorQuantizer& q,
                      const char* label) {
    auto index = rpq::core::MemoryIndex::Build(base, graph, q);
    for (size_t beam : {16u, 48u}) {
      std::vector<std::vector<rpq::Neighbor>> results(queries.size());
      size_t hops = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        auto out = index->Search(queries[i], 10, {beam, 10});
        results[i] = out.results;
        hops += out.stats.hops;
      }
      std::printf("%-10s beam=%3zu recall@10=%.3f  hops/query=%.1f\n", label,
                  beam, rpq::eval::MeanRecallAtK(results, gt, 10),
                  static_cast<double>(hops) / queries.size());
    }
  };
  std::printf("image search over %zu descriptors, 32x compressed codes\n",
              base.size());
  evaluate(*pq, "PQ");
  evaluate(*rpq_res.quantizer, "RPQ");
  return 0;
}
