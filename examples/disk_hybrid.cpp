// Hybrid-scenario example: a DiskANN-style deployment where only compact
// codes + codebook stay in RAM and the graph + full vectors live on a
// (simulated) SSD. Mirrors §7 of the paper, "integration of RPQ for hybrid
// scenario", and reports the memory/disk split and I/O behaviour.
//
//   $ ./disk_hybrid
#include <cstdio>

#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "disk/disk_index.h"
#include "eval/recall.h"
#include "graph/vamana.h"

int main() {
  rpq::Dataset base, queries;
  rpq::synthetic::MakeBaseAndQueries("bigann", 5000, 25, 7, &base, &queries);

  rpq::graph::VamanaOptions vopt;
  vopt.degree = 32;
  vopt.build_beam = 64;
  auto graph = rpq::graph::BuildVamana(base, vopt);

  rpq::core::RpqTrainOptions topt;
  topt.m = 16;
  topt.k = 64;
  topt.epochs = 2;
  topt.triplets_per_epoch = 256;
  auto trained = rpq::core::TrainRpq(base, graph, topt);

  // A 4 KiB-sector device with 100 us random reads (NVMe-class).
  rpq::disk::DiskIndexOptions dopt;
  dopt.ssd.read_latency_seconds = 1e-4;
  auto index = rpq::disk::DiskIndex::Build(base, graph, *trained.quantizer,
                                           dopt);
  std::printf("memory-resident: %.1f KB   on-disk: %.1f MB  (%.1fx smaller "
              "RAM)\n",
              index->MemoryBytes() / 1024.0, index->DeviceBytes() / 1e6,
              static_cast<double>(index->DeviceBytes()) /
                  index->MemoryBytes());

  auto gt = rpq::ComputeGroundTruth(base, queries, 10);
  // Sequential baseline vs the async wave path: same index, per-query
  // DiskIoOptions overrides. At queue depth 8 an 8-wide wave overlaps what
  // the sync loop serializes, and readahead turns repeat expansions of
  // speculated blocks into zero-cost cache hits.
  struct Config {
    const char* name;
    rpq::disk::DiskIoOptions io;
  };
  const Config configs[] = {
      {"sync (io_width=1)", {1, 0}},
      {"async (io_width=8, readahead=4)", {8, 4}},
  };
  for (const Config& cfg : configs) {
    std::printf("-- %s --\n", cfg.name);
    for (size_t beam : {16u, 32u, 64u}) {
      std::vector<std::vector<rpq::Neighbor>> results(queries.size());
      size_t reads = 0;
      double io_ms = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        auto out = index->Search(queries[q], 10, {beam, 10}, nullptr, cfg.io);
        results[q] = out.results;
        reads += out.io.reads;
        io_ms += out.io.simulated_seconds * 1e3;
      }
      std::printf("beam=%3zu  recall@10=%.3f  disk reads/query=%.1f  "
                  "io/query=%.2f ms\n",
                  beam, rpq::eval::MeanRecallAtK(results, gt, 10),
                  static_cast<double>(reads) / queries.size(),
                  io_ms / queries.size());
    }
  }
  return 0;
}
