// Serving walkthrough: take one trained index from single-caller to a
// concurrent front end step by step —
//   1. wrap the index in a SearchService,
//   2. replay queries concurrently on a ServingEngine (results identical
//      to serial),
//   3. shard the corpus and fan queries out with merged top-k,
//   4. group in-flight queries with the MicroBatcher,
//   5. measure QPS / tail latency with the closed- and open-loop loadgen,
//   6. keep serving while a FreshVamana index ingests a live stream.
//
//   $ ./serving
#include <cstdio>
#include <thread>

#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/fresh_vamana.h"
#include "graph/vamana.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/loadgen.h"
#include "serve/sharded.h"

int main() {
  // 0. Corpus + a trained quantizer (see quickstart.cpp for this part).
  rpq::Dataset base, queries;
  rpq::synthetic::MakeBaseAndQueries("sift", 4000, 64, /*seed=*/42, &base,
                                     &queries);
  rpq::graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto graph = rpq::graph::BuildVamana(base, vopt);
  rpq::core::RpqTrainOptions topt;
  topt.m = 16;
  topt.k = 64;
  topt.epochs = 1;
  topt.triplets_per_epoch = 256;
  topt.routing_queries_per_epoch = 16;
  auto trained = rpq::core::TrainRpq(base, graph, topt);
  auto index = rpq::core::MemoryIndex::Build(base, graph, *trained.quantizer);
  auto gt = rpq::ComputeGroundTruth(base, queries, 10);

  // 1. A SearchService is the thread-safe front end over one backend.
  rpq::serve::MemoryIndexService service(*index);

  // 2. ServingEngine replays queries across worker threads; per-worker
  //    scratch is thread-local, so concurrent results == serial results.
  rpq::serve::ServingEngine engine(service, {/*threads=*/4});
  auto outs = engine.SearchAll(queries, /*k=*/10, /*beam_width=*/64);
  std::vector<std::vector<rpq::Neighbor>> results(outs.size());
  for (size_t q = 0; q < outs.size(); ++q) results[q] = outs[q].results;
  std::printf("engine (%zu workers): recall@10 = %.3f\n", engine.num_threads(),
              rpq::eval::MeanRecallAtK(results, gt, 10));

  // 3. Shard the corpus: S independent graphs + codes, per-query fan-out,
  //    deterministic (distance, id) top-k merge.
  auto sharded =
      rpq::serve::BuildShardedMemoryIndex(base, *trained.quantizer, 4, vopt);
  rpq::serve::ServingEngine sharded_engine(*sharded.service, {4});
  outs = sharded_engine.SearchAll(queries, 10, 64);
  for (size_t q = 0; q < outs.size(); ++q) results[q] = outs[q].results;
  std::printf("4 shards: recall@10 = %.3f (%.1f MB resident)\n",
              rpq::eval::MeanRecallAtK(results, gt, 10),
              sharded.MemoryBytes() / 1e6);

  // 4. MicroBatcher: async submissions grouped into batches that amortize
  //    ADC table construction through MemoryIndex::SearchBatch.
  {
    rpq::serve::BatcherOptions bopt;
    bopt.max_batch = 8;
    rpq::serve::MicroBatcher batcher(engine, bopt);
    std::vector<std::future<rpq::serve::QueryResult>> futures;
    for (size_t q = 0; q < queries.size(); ++q) {
      futures.push_back(batcher.Submit({queries[q], 10, 64}));
    }
    batcher.Flush();
    for (size_t q = 0; q < futures.size(); ++q) {
      results[q] = futures[q].get().results;
    }
    std::printf("batcher: %zu queries in %zu batches, recall@10 = %.3f\n",
                batcher.queries_submitted(), batcher.batches_dispatched(),
                rpq::eval::MeanRecallAtK(results, gt, 10));
  }

  // 5. Load generation: closed loop (saturated clients) and open loop
  //    (Poisson arrivals; latency includes queueing).
  rpq::serve::LoadgenOptions lopt;
  lopt.k = 10;
  lopt.beam_width = 64;
  lopt.threads = 4;
  lopt.total_queries = 512;
  auto closed = rpq::serve::RunClosedLoop(service, queries, lopt);
  rpq::serve::PrintReport("closed-loop x4", closed);

  lopt.arrival_qps = closed.qps * 0.6;  // offer 60% of saturated throughput
  auto open = rpq::serve::RunOpenLoop(engine, queries, lopt);
  rpq::serve::PrintReport("open-loop @60%", open);

  // 6. Streaming: FreshVamana serves reads under shared-lock epochs while a
  //    writer inserts — readers only pause for individual write critical
  //    sections, never for each other.
  rpq::graph::FreshVamanaIndex fresh(base.dim(), vopt);
  for (size_t i = 0; i < 1000; ++i) fresh.Insert(base[i]);
  rpq::serve::FreshVamanaService fresh_service(fresh);
  std::thread writer([&] {
    for (size_t i = 1000; i < 1500; ++i) fresh.Insert(base[i]);
  });
  size_t served = 0;
  while (fresh.size() < 1500) {
    auto r = fresh_service.Search({queries[served % queries.size()], 10, 64});
    served += r.results.empty() ? 0 : 1;
  }
  writer.join();
  std::printf("streaming: served %zu queries during 500 live inserts "
              "(%zu vectors indexed)\n",
              served, fresh.size());
  return 0;
}
