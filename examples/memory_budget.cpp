// Capacity-planning example: how the paper's 3% memory-budget rule
// (constraint = dataset size / 32) plays out. Shows, for several (M, K)
// configurations, the RAM footprint of codes+codebook vs the raw vectors and
// the recall each configuration reaches — the trade-off surface of Figures
// 9/10.
//
//   $ ./memory_budget
#include <cstdio>

#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/vamana.h"

int main() {
  rpq::Dataset base, queries;
  rpq::synthetic::MakeBaseAndQueries("deep", 4000, 25, 31, &base, &queries);
  rpq::graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto graph = rpq::graph::BuildVamana(base, vopt);
  auto gt = rpq::ComputeGroundTruth(base, queries, 10);

  const double raw_mb = base.size() * base.dim() * sizeof(float) / 1e6;
  const double budget_mb = raw_mb / 32.0;  // the paper's f = 1/32 constraint
  std::printf("raw vectors: %.2f MB; paper-style memory budget (1/32): %.3f "
              "MB\n\n",
              raw_mb, budget_mb);
  std::printf("%4s %4s %12s %10s %10s %8s\n", "M", "K", "mem (MB)",
              "in budget", "recall@10", "bytes/vec");

  struct Config {
    size_t m, k;
  };
  for (Config c : {Config{8, 64}, Config{16, 64}, Config{16, 256},
                   Config{32, 256}}) {
    rpq::core::RpqTrainOptions topt;
    topt.m = c.m;
    topt.k = c.k;
    topt.epochs = 1;
    topt.triplets_per_epoch = 192;
    topt.routing_queries_per_epoch = 12;
    auto trained = rpq::core::TrainRpq(base, graph, topt);
    auto index = rpq::core::MemoryIndex::Build(base, graph, *trained.quantizer);

    std::vector<std::vector<rpq::Neighbor>> results(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = index->Search(queries[q], 10, {96, 10}).results;
    }
    double mem_mb = index->MemoryBytes() / 1e6;
    std::printf("%4zu %4zu %12.3f %10s %10.3f %8zu\n", c.m, c.k, mem_mb,
                mem_mb <= budget_mb ? "yes" : "no",
                rpq::eval::MeanRecallAtK(results, gt, 10),
                trained.quantizer->code_size());
  }
  return 0;
}
