// Quickstart: build a proximity graph, train RPQ end-to-end, and run
// PQ-integrated ANN search — the minimal happy path through the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "core/rpq.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/vamana.h"

int main() {
  // 1. Data: 4000 SIFT-like 128-d vectors plus 20 held-out queries.
  rpq::Dataset base, queries;
  rpq::synthetic::MakeBaseAndQueries("sift", 4000, 20, /*seed=*/42, &base,
                                     &queries);
  std::printf("dataset: %zu vectors, %zu dims\n", base.size(), base.dim());

  // 2. Proximity graph (Vamana — the PG underlying DiskANN).
  rpq::graph::VamanaOptions vopt;
  vopt.degree = 24;
  vopt.build_beam = 48;
  auto graph = rpq::graph::BuildVamana(base, vopt);
  auto stats = graph.ComputeDegreeStats();
  std::printf("graph: avg degree %.1f, entry %u\n", stats.avg_degree,
              graph.entry_point());

  // 3. Train the routing-guided quantizer (M=16 chunks, K=64 codewords:
  //    16 bytes per vector instead of 512).
  rpq::core::RpqTrainOptions topt;
  topt.m = 16;
  topt.k = 64;
  topt.epochs = 2;
  topt.triplets_per_epoch = 256;
  topt.routing_queries_per_epoch = 16;
  auto trained = rpq::core::TrainRpq(base, graph, topt);
  std::printf("RPQ trained in %.1fs, model %.1f KB, codes %zu B/vec\n",
              trained.training_seconds,
              trained.model_size_bytes / 1024.0,
              trained.quantizer->code_size());

  // 4. Build the in-memory index (graph + compact codes only) and search.
  auto index = rpq::core::MemoryIndex::Build(base, graph, *trained.quantizer);
  auto gt = rpq::ComputeGroundTruth(base, queries, 10);
  std::vector<std::vector<rpq::Neighbor>> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto out = index->Search(queries[q], /*k=*/10, {/*beam_width=*/64, 10});
    results[q] = out.results;
  }
  double recall = rpq::eval::MeanRecallAtK(results, gt, 10);
  std::printf("recall@10 = %.3f with %.0fx memory compression\n", recall,
              static_cast<double>(base.dim() * sizeof(float)) /
                  trained.quantizer->code_size());
  return recall > 0.3 ? 0 : 1;  // sanity gate for CI-style usage
}
