// Streaming example: a FreshDiskANN-style index that ingests vectors online,
// serves queries continuously, deletes stale entries lazily, and repairs the
// graph with Consolidate() — the maintenance loop of a production vector
// store (paper §7 names Fresh-DiskANN as an RPQ integration target).
//
//   $ ./streaming_updates
#include <cstdio>

#include "common/distance.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "eval/recall.h"
#include "graph/fresh_vamana.h"

namespace {

// Exact top-k over the live subset, for recall measurement.
std::vector<rpq::Neighbor> LiveGroundTruth(const rpq::graph::FreshVamanaIndex& index,
                                           const float* query, size_t k) {
  rpq::TopK top(k);
  for (uint32_t v = 0; v < index.total_slots(); ++v) {
    if (index.IsDeleted(v)) continue;
    top.Push(rpq::SquaredL2(query, index.data()[v], index.data().dim()), v);
  }
  return top.Take();
}

double MeasureRecall(const rpq::graph::FreshVamanaIndex& index,
                     const rpq::Dataset& queries) {
  double acc = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto res = index.Search(queries[q], 10, 64);
    auto gt = LiveGroundTruth(index, queries[q], 10);
    acc += rpq::eval::RecallAtK(res, gt, 10);
  }
  return acc / queries.size();
}

}  // namespace

int main() {
  rpq::Dataset stream, queries;
  rpq::synthetic::MakeBaseAndQueries("deep", 3000, 20, 77, &stream, &queries);

  rpq::graph::VamanaOptions opt;
  opt.degree = 24;
  opt.build_beam = 48;
  rpq::graph::FreshVamanaIndex index(stream.dim(), opt);

  // Phase 1: ingest the first 2000 vectors.
  rpq::Timer timer;
  for (size_t i = 0; i < 2000; ++i) index.Insert(stream[i]);
  std::printf("ingested 2000 vectors in %.1fs — recall@10=%.3f\n",
              timer.ElapsedSeconds(), MeasureRecall(index, queries));

  // Phase 2: churn — delete the oldest 500 while inserting 1000 fresh ones.
  timer.Reset();
  for (uint32_t v = 0; v < 500; ++v) index.Delete(v);
  for (size_t i = 2000; i < 3000; ++i) index.Insert(stream[i]);
  std::printf("churned (+1000/-500) in %.1fs — recall@10=%.3f (pre-repair, "
              "%zu live)\n",
              timer.ElapsedSeconds(), MeasureRecall(index, queries),
              index.size());

  // Phase 3: consolidate — repair edges around the tombstones.
  timer.Reset();
  index.Consolidate();
  std::printf("consolidated in %.1fs — recall@10=%.3f\n",
              timer.ElapsedSeconds(), MeasureRecall(index, queries));
  return 0;
}
