// Matrix exponential and its exact adjoint gradient.
//
// RPQ's adaptive vector decomposition (paper §4) parameterizes the learned
// rotation as R = exp(A) with A skew-symmetric. Training needs both the
// forward map and dL/dA given dL/dR. The forward uses scaling-and-squaring
// with a truncated Taylor series; the gradient uses the Fréchet-derivative
// adjoint identity realized with the 2D x 2D block-matrix trick:
//
//   exp([[X, E], [0, X]]) = [[exp(X), L_exp(X)[E]], [0, exp(X)]]
//
// and  grad_A <G, exp(A)> = L_exp(A^T)[G],
//
// which is exact for the truncated series used (verified by finite
// differences in tests/linalg_test.cc).
#pragma once

#include "linalg/matrix.h"

namespace rpq::linalg {

/// exp(A) for square A via scaling-and-squaring + Taylor series.
Matrix MatrixExp(const Matrix& a);

/// Fréchet derivative L_exp(A)[E]: directional derivative of exp at A along E.
Matrix MatrixExpFrechet(const Matrix& a, const Matrix& e);

/// Gradient of the scalar loss wrt A, given grad_exp = dL/d(exp(A)).
/// Equals L_exp(A^T)[grad_exp].
Matrix MatrixExpGrad(const Matrix& a, const Matrix& grad_exp);

}  // namespace rpq::linalg
