// Dense row-major float matrix used by the rotation learner, OPQ and the
// synthetic data generators. Deliberately minimal: only the operations the
// library needs, all with explicit dimensions.
#pragma once

#include <cstddef>
#include <vector>

namespace rpq::linalg {

/// Row-major dense matrix of floats.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }
  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Matrix Transposed() const;
  /// Frobenius norm.
  float FrobeniusNorm() const;
  /// Max |a_ij|.
  float MaxAbs() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(float s);

 private:
  size_t rows_, cols_;
  std::vector<float> data_;
};

/// C = A * B (dims must agree).
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
/// y = A * x for a length-cols vector x (y has length rows).
void MatVec(const Matrix& a, const float* x, float* y);
/// y = A^T * x for a length-rows vector x (y has length cols).
void MatVecTrans(const Matrix& a, const float* x, float* y);
/// ||A - B||_inf elementwise.
float MaxAbsDiff(const Matrix& a, const Matrix& b);
/// Skew-symmetric part (P - P^T).
Matrix SkewPart(const Matrix& p);

}  // namespace rpq::linalg
