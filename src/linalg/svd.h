// One-sided Jacobi SVD for small dense square matrices.
// Needed by OPQ's orthogonal-Procrustes step (R = U V^T of the data/codeword
// cross-correlation) and by tests validating rotation properties.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace rpq::linalg {

/// Thin SVD A = U * diag(sigma) * V^T for a square matrix A (n x n).
struct SvdResult {
  Matrix u;                    ///< n x n, orthonormal columns
  std::vector<float> sigma;    ///< n singular values, descending
  Matrix v;                    ///< n x n, orthonormal columns
};

/// Computes the SVD by one-sided Jacobi rotations (robust for the small
/// D x D problems this library solves; D <= ~1000).
SvdResult JacobiSvd(const Matrix& a, int max_sweeps = 30, float tol = 1e-7f);

/// Orthogonal Procrustes: the orthonormal R minimizing ||R*A - B||_F,
/// i.e. R = U V^T where B A^T = U S V^T.
Matrix ProcrustesRotation(const Matrix& a, const Matrix& b);

}  // namespace rpq::linalg
