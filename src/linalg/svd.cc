#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace rpq::linalg {

SvdResult JacobiSvd(const Matrix& a, int max_sweeps, float tol) {
  RPQ_CHECK_EQ(a.rows(), a.cols());
  size_t n = a.rows();
  // Work on W = A; V accumulates the right rotations so that A = W_final V^T
  // with W_final having orthogonal columns.
  Matrix w = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0, beta = 0, gamma = 0;
        for (size_t i = 0; i < n; ++i) {
          double wp = w.At(i, p), wq = w.At(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) + 1e-30) continue;
        converged = false;
        double zeta = (beta - alpha) / (2.0 * gamma);
        double t = ((zeta >= 0) ? 1.0 : -1.0) /
                   (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (size_t i = 0; i < n; ++i) {
          double wp = w.At(i, p), wq = w.At(i, q);
          w.At(i, p) = static_cast<float>(c * wp - s * wq);
          w.At(i, q) = static_cast<float>(s * wp + c * wq);
          double vp = v.At(i, p), vq = v.At(i, q);
          v.At(i, p) = static_cast<float>(c * vp - s * vq);
          v.At(i, q) = static_cast<float>(s * vp + c * vq);
        }
      }
    }
    if (converged) break;
  }

  // Column norms are the singular values; normalize columns of W to get U.
  SvdResult res{Matrix(n, n), std::vector<float>(n), Matrix(n, n)};
  std::vector<size_t> order(n);
  std::vector<float> norms(n);
  for (size_t j = 0; j < n; ++j) {
    double s = 0;
    for (size_t i = 0; i < n; ++i) s += static_cast<double>(w.At(i, j)) * w.At(i, j);
    norms[j] = static_cast<float>(std::sqrt(s));
  }
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return norms[x] > norms[y]; });

  for (size_t jj = 0; jj < n; ++jj) {
    size_t j = order[jj];
    float sv = norms[j];
    res.sigma[jj] = sv;
    float inv = sv > 1e-12f ? 1.0f / sv : 0.0f;
    for (size_t i = 0; i < n; ++i) {
      res.u.At(i, jj) = w.At(i, j) * inv;
      res.v.At(i, jj) = v.At(i, j);
    }
    if (sv <= 1e-12f) res.u.At(jj % n, jj) = 1.0f;  // arbitrary unit fill-in
  }
  return res;
}

Matrix ProcrustesRotation(const Matrix& a, const Matrix& b) {
  // minimize ||R A - B||_F  =>  R = U V^T with B A^T = U S V^T.
  Matrix cross = MatMulTransB(b, a);  // B * A^T
  SvdResult svd = JacobiSvd(cross);
  return MatMulTransB(svd.u, svd.v);  // U * V^T
}

}  // namespace rpq::linalg
