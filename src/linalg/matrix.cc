#include "linalg/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace rpq::linalg {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = src[c];
  }
  return t;
}

float Matrix::FrobeniusNorm() const {
  double acc = 0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::MaxAbs() const {
  float m = 0;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  RPQ_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  RPQ_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  RPQ_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order: streams rows of B, cache-friendly for row-major data.
  for (size_t i = 0; i < a.rows(); ++i) {
    float* crow = c.Row(i);
    const float* arow = a.Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.Row(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  RPQ_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.Row(k);
    const float* brow = b.Row(k);
    for (size_t i = 0; i < a.cols(); ++i) {
      float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  RPQ_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.Row(j);
      float acc = 0;
      for (size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

void MatVec(const Matrix& a, const float* x, float* y) {
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.Row(i);
    float acc = 0;
    for (size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void MatVecTrans(const Matrix& a, const float* x, float* y) {
  for (size_t j = 0; j < a.cols(); ++j) y[j] = 0;
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.Row(i);
    float xi = x[i];
    for (size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  RPQ_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  float m = 0;
  for (size_t i = 0; i < a.rows() * a.cols(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

Matrix SkewPart(const Matrix& p) {
  RPQ_CHECK_EQ(p.rows(), p.cols());
  Matrix a(p.rows(), p.cols());
  for (size_t i = 0; i < p.rows(); ++i) {
    for (size_t j = 0; j < p.cols(); ++j) {
      a.At(i, j) = p.At(i, j) - p.At(j, i);
    }
  }
  return a;
}

}  // namespace rpq::linalg
