#include "linalg/matexp.h"

#include <cmath>

#include "common/logging.h"

namespace rpq::linalg {
namespace {

// 1-norm (max column sum) used to pick the scaling exponent.
float OneNorm(const Matrix& a) {
  float best = 0;
  for (size_t j = 0; j < a.cols(); ++j) {
    float s = 0;
    for (size_t i = 0; i < a.rows(); ++i) s += std::fabs(a.At(i, j));
    best = std::max(best, s);
  }
  return best;
}

// Taylor expansion of exp(A) assuming ||A|| <= 0.5; 13 terms reach fp32
// round-off at that radius.
Matrix ExpTaylor(const Matrix& a) {
  constexpr int kTerms = 13;
  size_t n = a.rows();
  Matrix result = Matrix::Identity(n);
  Matrix term = Matrix::Identity(n);
  for (int k = 1; k <= kTerms; ++k) {
    term = MatMul(term, a);
    term *= 1.0f / static_cast<float>(k);
    result += term;
  }
  return result;
}

}  // namespace

Matrix MatrixExp(const Matrix& a) {
  RPQ_CHECK_EQ(a.rows(), a.cols());
  // Scale so the Taylor radius holds, square back s times.
  float norm = OneNorm(a);
  int s = 0;
  while (norm > 0.5f) {
    norm *= 0.5f;
    ++s;
  }
  Matrix scaled = a;
  scaled *= std::ldexp(1.0f, -s);
  Matrix e = ExpTaylor(scaled);
  for (int i = 0; i < s; ++i) e = MatMul(e, e);
  return e;
}

Matrix MatrixExpFrechet(const Matrix& a, const Matrix& e) {
  RPQ_CHECK(a.rows() == a.cols() && e.rows() == e.cols());
  RPQ_CHECK_EQ(a.rows(), e.rows());
  size_t n = a.rows();
  // Coupled scaling-and-squaring. With As = A/2^s inside the Taylor radius,
  // differentiate the truncated series term by term:
  //   L = sum_k (1/k!) * sum_{j<k} As^j Es As^{k-1-j},
  // built incrementally via M_k = M_{k-1} As + As^{k-1} Es (M_k is the
  // derivative of As^k). Then square back with the product rule:
  //   exp(2X) = exp(X)^2   =>   L_{2X} = L F + F L.
  // This works on n x n matrices throughout — ~8x cheaper than the classic
  // [[A,E],[0,A]] block-matrix trick that needs exp of a 2n x 2n matrix,
  // and it is exactly the derivative of the truncated exp used in MatrixExp.
  float norm = OneNorm(a);
  int s = 0;
  while (norm > 0.5f) {
    norm *= 0.5f;
    ++s;
  }
  float scale = std::ldexp(1.0f, -s);
  Matrix as = a;
  as *= scale;
  Matrix es = e;
  es *= scale;

  constexpr int kTerms = 13;
  Matrix f = Matrix::Identity(n);   // running exp(As) series
  Matrix l(n, n);                   // running Fréchet series
  Matrix pow_prev = Matrix::Identity(n);  // As^{k-1}
  Matrix m_prev(n, n);                    // M_{k-1}
  Matrix term = Matrix::Identity(n);      // As^k / k!
  double inv_fact = 1.0;
  for (int k = 1; k <= kTerms; ++k) {
    // M_k = M_{k-1} * As + As^{k-1} * Es.
    Matrix m_k = MatMul(m_prev, as);
    m_k += MatMul(pow_prev, es);
    inv_fact /= k;
    Matrix contrib = m_k;
    contrib *= static_cast<float>(inv_fact);
    l += contrib;
    // Advance As^{k-1} -> As^k and the exp series.
    pow_prev = MatMul(pow_prev, as);
    Matrix fterm = pow_prev;
    fterm *= static_cast<float>(inv_fact);
    f += fterm;
    m_prev = std::move(m_k);
  }
  for (int i = 0; i < s; ++i) {
    Matrix lf = MatMul(l, f);
    lf += MatMul(f, l);
    l = std::move(lf);
    f = MatMul(f, f);
  }
  return l;
}

Matrix MatrixExpGrad(const Matrix& a, const Matrix& grad_exp) {
  return MatrixExpFrechet(a.Transposed(), grad_exp);
}

}  // namespace rpq::linalg
