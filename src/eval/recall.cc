#include "eval/recall.h"

#include <algorithm>

#include "common/logging.h"

namespace rpq::eval {

double RecallAtK(const std::vector<Neighbor>& results,
                 const std::vector<Neighbor>& ground_truth, size_t k) {
  RPQ_CHECK_GT(k, 0u);
  size_t hits = 0;
  size_t gt_n = std::min(k, ground_truth.size());
  size_t res_n = std::min(k, results.size());
  for (size_t g = 0; g < gt_n; ++g) {
    for (size_t r = 0; r < res_n; ++r) {
      if (results[r].id == ground_truth[g].id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<Neighbor>>& ground_truth,
                     size_t k) {
  RPQ_CHECK_EQ(results.size(), ground_truth.size());
  if (results.empty()) return 0.0;
  double acc = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    acc += RecallAtK(results[i], ground_truth[i], k);
  }
  return acc / static_cast<double>(results.size());
}

}  // namespace rpq::eval
