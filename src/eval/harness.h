// Shared experiment harness for the per-figure/table benchmark binaries:
// beam-width sweeps producing (recall, QPS, hops, I/O) operating points and
// interpolation of QPS at a target recall (how the paper reports
// "QPS at the same Recall@10 of 95%").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/topk.h"
#include "data/dataset.h"

namespace rpq::eval {

/// What one query returned, plus its per-query costs.
struct SearchOutcome {
  std::vector<Neighbor> results;
  size_t hops = 0;
  double simulated_io_seconds = 0.0;  ///< 0 for in-memory methods
};

/// Callable evaluated by the sweep: (query ptr, k, beam width) -> outcome.
/// Fixed per-sweep knobs that are not the swept axis — a refinement request
/// (refine::RerankSpec width/mode), an IVF rerank width, a distance mode —
/// are captured inside the closure at the call site, so one sweep compares
/// operating points at otherwise-identical settings (see rpq_tool's
/// --sweep-nprobe and --rerank-mode plumbing).
using SearchFn =
    std::function<SearchOutcome(const float* query, size_t k, size_t beam)>;

/// One point of a QPS/recall trade-off curve.
struct OperatingPoint {
  size_t beam = 0;
  double recall = 0.0;
  double qps = 0.0;           ///< includes simulated I/O time if any
  double mean_hops = 0.0;
  double mean_io_ms = 0.0;    ///< simulated disk time per query (ms)
};

/// How the sweep replays the query set.
struct SweepOptions {
  /// Serving-engine worker threads. 1 (the default) replays serially —
  /// identical timing semantics to the original loop; >1 replays the
  /// queries concurrently and reports wall-clock QPS of the parallel run,
  /// so concurrent-throughput numbers stay honest. The SearchFn must be
  /// thread-safe (every bundled index's Search now is).
  size_t threads = 1;
};

/// Runs every query at every beam width; recall measured against `gt`.
/// The replay goes through serve::ServingEngine (see SweepOptions.threads);
/// recall math is independent of the replay order.
std::vector<OperatingPoint> SweepBeamWidths(
    const SearchFn& search, const Dataset& queries,
    const std::vector<std::vector<Neighbor>>& gt, size_t k,
    const std::vector<size_t>& beams, const SweepOptions& options = {});

/// IVF flavor of the sweep: identical machinery, but the swept knob is
/// nprobe — the SearchFn receives each value as its `beam` argument and
/// OperatingPoint.beam records it. Exists so IVF recall/QPS curves read as
/// what they are at call sites (see rpq_tool search --index ivf).
std::vector<OperatingPoint> SweepNprobe(
    const SearchFn& search, const Dataset& queries,
    const std::vector<std::vector<Neighbor>>& gt, size_t k,
    const std::vector<size_t>& nprobes, const SweepOptions& options = {});

/// Linear interpolation of QPS at `target_recall` along the curve. When the
/// curve never reaches the target, returns the QPS of the highest-recall
/// point (and sets *reached=false if provided).
double QpsAtRecall(const std::vector<OperatingPoint>& curve, double target_recall,
                   bool* reached = nullptr);

/// Same interpolation for mean hops at a target recall.
double HopsAtRecall(const std::vector<OperatingPoint>& curve, double target_recall);

/// Prints a curve as aligned columns (method name as the row prefix).
void PrintCurve(const std::string& method, const std::vector<OperatingPoint>& curve);

/// Writes a curve as machine-readable CSV: one header line
/// `<knob>,recall@10,us_per_query` then one row per operating point, where
/// the knob column carries OperatingPoint.beam under the caller's name
/// ("nprobe" for IVF sweeps) and us_per_query = 1e6 / qps. The format feeds
/// the checked-in BENCH_ivf.json comparisons and external plotting without
/// scraping the aligned-column output.
Status WriteCurveCsv(const std::string& path, const std::string& knob,
                     const std::vector<OperatingPoint>& curve);

}  // namespace rpq::eval
