#include "eval/harness.h"

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "eval/recall.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/search_service.h"

namespace rpq::eval {

std::vector<OperatingPoint> SweepBeamWidths(
    const SearchFn& search, const Dataset& queries,
    const std::vector<std::vector<Neighbor>>& gt, size_t k,
    const std::vector<size_t>& beams, const SweepOptions& options) {
  const size_t threads = std::max<size_t>(1, options.threads);
  // The replay runs through the serving engine: with one worker the loop is
  // inline (timing identical to a plain serial loop), with more it is a
  // concurrent replay and the wall clock below measures the parallel run.
  serve::FunctionService service([&search](const serve::QuerySpec& q) {
    SearchOutcome out = search(q.query, q.k, q.beam_width);
    serve::QueryResult r;
    r.results = std::move(out.results);
    r.stats.hops = out.hops;
    r.simulated_io_seconds = out.simulated_io_seconds;
    return r;
  });
  serve::ServingEngine engine(service, {threads});

  std::vector<OperatingPoint> curve;
  curve.reserve(beams.size());
  for (size_t beam : beams) {
    OperatingPoint pt;
    pt.beam = beam;
    Timer timer;
    auto outcomes = engine.SearchAll(queries, k, beam);
    double wall = timer.ElapsedSeconds();
    if (obs::MetricsEnabled()) {
      // Sweep accounting in the registry, alongside the backend's own
      // counters for the same replay.
      static const obs::CounterId replayed =
          obs::GetCounter("eval.replayed_queries");
      static const obs::HistogramId point =
          obs::GetHistogram("eval.sweep_point_ns");
      obs::Add(replayed, queries.size());
      obs::Record(point, static_cast<uint64_t>(wall * 1e9));
    }

    double total_io = 0;
    size_t total_hops = 0;
    std::vector<std::vector<Neighbor>> results(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      total_io += outcomes[q].simulated_io_seconds;
      total_hops += outcomes[q].stats.hops;
      results[q] = std::move(outcomes[q].results);
    }
    pt.recall = MeanRecallAtK(results, gt, k);
    // Simulated device time is charged as if the device served the workers
    // in parallel (serial replay: unchanged semantics).
    double total = wall + total_io / threads;
    pt.qps = total > 0 ? static_cast<double>(queries.size()) / total : 0.0;
    pt.mean_hops = static_cast<double>(total_hops) / queries.size();
    pt.mean_io_ms = total_io * 1e3 / queries.size();
    curve.push_back(pt);
  }
  return curve;
}

std::vector<OperatingPoint> SweepNprobe(
    const SearchFn& search, const Dataset& queries,
    const std::vector<std::vector<Neighbor>>& gt, size_t k,
    const std::vector<size_t>& nprobes, const SweepOptions& options) {
  // Same replay machinery; the swept values reach the SearchFn as `beam`.
  return SweepBeamWidths(search, queries, gt, k, nprobes, options);
}

double QpsAtRecall(const std::vector<OperatingPoint>& curve, double target_recall,
                   bool* reached) {
  if (reached != nullptr) *reached = false;
  if (curve.empty()) return 0.0;
  // Sort a copy by recall so interpolation is well defined.
  std::vector<OperatingPoint> pts = curve;
  std::sort(pts.begin(), pts.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.recall < b.recall;
            });
  if (pts.back().recall < target_recall) return pts.back().qps;
  if (reached != nullptr) *reached = true;
  if (pts.front().recall >= target_recall) return pts.front().qps;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].recall >= target_recall) {
      double r0 = pts[i - 1].recall, r1 = pts[i].recall;
      double q0 = pts[i - 1].qps, q1 = pts[i].qps;
      if (r1 - r0 < 1e-12) return q1;
      double w = (target_recall - r0) / (r1 - r0);
      return q0 + w * (q1 - q0);
    }
  }
  return pts.back().qps;
}

double HopsAtRecall(const std::vector<OperatingPoint>& curve,
                    double target_recall) {
  if (curve.empty()) return 0.0;
  std::vector<OperatingPoint> pts = curve;
  std::sort(pts.begin(), pts.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.recall < b.recall;
            });
  if (pts.back().recall < target_recall) return pts.back().mean_hops;
  if (pts.front().recall >= target_recall) return pts.front().mean_hops;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].recall >= target_recall) {
      double r0 = pts[i - 1].recall, r1 = pts[i].recall;
      double h0 = pts[i - 1].mean_hops, h1 = pts[i].mean_hops;
      if (r1 - r0 < 1e-12) return h1;
      double w = (target_recall - r0) / (r1 - r0);
      return h0 + w * (h1 - h0);
    }
  }
  return pts.back().mean_hops;
}

Status WriteCurveCsv(const std::string& path, const std::string& knob,
                     const std::vector<OperatingPoint>& curve) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path + " for writing");
  std::fprintf(f, "%s,recall@10,us_per_query\n", knob.c_str());
  for (const auto& pt : curve) {
    const double us = pt.qps > 0 ? 1e6 / pt.qps : 0.0;
    std::fprintf(f, "%zu,%.4f,%.2f\n", pt.beam, pt.recall, us);
  }
  if (std::fclose(f) != 0) return Status::IOError(path + ": close failed");
  return Status::OK();
}

void PrintCurve(const std::string& method,
                const std::vector<OperatingPoint>& curve) {
  for (const auto& pt : curve) {
    std::printf("%-18s beam=%-5zu recall@10=%.4f  QPS=%10.1f  hops=%8.1f  "
                "io=%7.3f ms\n",
                method.c_str(), pt.beam, pt.recall, pt.qps, pt.mean_hops,
                pt.mean_io_ms);
  }
}

}  // namespace rpq::eval
