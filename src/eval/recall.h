// Recall@k (Eq. 1 of the paper) against exact ground truth.
#pragma once

#include <vector>

#include "common/topk.h"

namespace rpq::eval {

/// |R ∩ R~| / k for one query.
double RecallAtK(const std::vector<Neighbor>& results,
                 const std::vector<Neighbor>& ground_truth, size_t k);

/// Mean recall@k over a query batch (result/gt lists are parallel).
double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& results,
                     const std::vector<std::vector<Neighbor>>& ground_truth,
                     size_t k);

}  // namespace rpq::eval
