#include "serve/batcher.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace rpq::serve {
namespace {

struct BatcherMetrics {
  obs::CounterId batches = obs::GetCounter("serve.batches");
  obs::HistogramId occupancy = obs::GetHistogram("serve.batch_occupancy");
};

const BatcherMetrics& Metrics() {
  static const BatcherMetrics m;
  return m;
}

}  // namespace

MicroBatcher::MicroBatcher(const ServingEngine& engine,
                           const BatcherOptions& options)
    : engine_(engine), opt_(options) {
  Metrics();  // register the serve.batch* keys before any traffic
  timer_ = std::thread([this] { TimerLoop(); });
}

MicroBatcher::~MicroBatcher() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!pending_.empty()) DispatchLocked(lk);
    stop_ = true;
  }
  cv_.notify_all();
  timer_.join();
}

std::future<QueryResult> MicroBatcher::Submit(const QuerySpec& q) {
  std::unique_lock<std::mutex> lk(mu_);
  if (pending_.empty()) batch_open_since_ = std::chrono::steady_clock::now();
  pending_.push_back({q, std::promise<QueryResult>()});
  ++submitted_;
  std::future<QueryResult> fut = pending_.back().promise.get_future();
  if (pending_.size() >= opt_.max_batch) {
    DispatchLocked(lk);
  } else if (pending_.size() == 1) {
    cv_.notify_one();  // arm the timer for this batch
  }
  return fut;
}

void MicroBatcher::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!pending_.empty()) DispatchLocked(lk);
}

size_t MicroBatcher::batches_dispatched() const {
  std::unique_lock<std::mutex> lk(mu_);
  return batches_;
}

size_t MicroBatcher::queries_submitted() const {
  std::unique_lock<std::mutex> lk(mu_);
  return submitted_;
}

void MicroBatcher::DispatchLocked(std::unique_lock<std::mutex>&) {
  auto batch = std::make_shared<std::vector<Pending>>(std::move(pending_));
  pending_.clear();
  ++batches_;
  if (obs::MetricsEnabled()) {
    obs::Add(Metrics().batches, 1);
    obs::Record(Metrics().occupancy, batch->size());
  }
  const SearchService& service = engine_.service();
  engine_.Execute([batch, &service] {
    std::vector<QuerySpec> specs;
    specs.reserve(batch->size());
    for (const Pending& p : *batch) specs.push_back(p.spec);
    std::vector<QueryResult> results(batch->size());
    service.SearchBatch(specs.data(), specs.size(), results.data());
    for (size_t i = 0; i < batch->size(); ++i) {
      (*batch)[i].promise.set_value(std::move(results[i]));
    }
  });
}

void MicroBatcher::TimerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    // A batch is open: sleep until its deadline, then dispatch whatever
    // accumulated (Submit may already have dispatched on max_batch).
    auto deadline = batch_open_since_ + opt_.max_wait;
    cv_.wait_until(lk, deadline, [this, deadline] {
      return stop_ ||
             (pending_.empty()) ||  // dispatched by Submit/Flush meanwhile
             std::chrono::steady_clock::now() >= deadline;
    });
    if (stop_) return;
    if (!pending_.empty() &&
        std::chrono::steady_clock::now() >= batch_open_since_ + opt_.max_wait) {
      DispatchLocked(lk);
    }
  }
}

}  // namespace rpq::serve
