// Micro-batcher: groups in-flight queries so a worker serves several
// back-to-back through SearchService::SearchBatch — amortizing per-query
// setup (ADC lookup-table builds stay codebook-cache-resident, one pool
// dispatch per batch instead of per query). A batch is dispatched as soon
// as it reaches max_batch, when max_wait expires after its first query, or
// on Flush(); under low load queries therefore pay at most max_wait of
// added latency, under high load batches fill instantly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.h"

namespace rpq::serve {

struct BatcherOptions {
  size_t max_batch = 8;  ///< dispatch when this many queries are pending
  std::chrono::microseconds max_wait{200};  ///< ...or this long after the 1st
};

/// Groups async queries into batches and runs them on the engine's workers.
class MicroBatcher {
 public:
  MicroBatcher(const ServingEngine& engine, const BatcherOptions& options = {});
  ~MicroBatcher();  ///< flushes pending queries, then stops

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one query; the future resolves when its batch completes. The
  /// pointed-to query vector must stay alive until then.
  std::future<QueryResult> Submit(const QuerySpec& q);

  /// Dispatches whatever is pending without waiting for the timer.
  void Flush();

  /// Batches dispatched so far (instrumentation for tests/benches).
  size_t batches_dispatched() const;
  /// Queries submitted so far.
  size_t queries_submitted() const;

 private:
  struct Pending {
    QuerySpec spec;
    std::promise<QueryResult> promise;
  };

  void TimerLoop();
  void DispatchLocked(std::unique_lock<std::mutex>& lk);

  const ServingEngine& engine_;
  BatcherOptions opt_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> pending_;
  std::chrono::steady_clock::time_point batch_open_since_;
  size_t batches_ = 0;
  size_t submitted_ = 0;
  bool stop_ = false;
  std::thread timer_;
};

}  // namespace rpq::serve
