#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "serve/batcher.h"

namespace rpq::serve {
namespace {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// End-to-end served latency, pooled across the whole run (ns).
obs::HistogramId LatencyHistogram() {
  static const obs::HistogramId id = obs::GetHistogram("serve.latency_ns");
  return id;
}

inline uint64_t SecondsToNanos(double seconds) {
  return seconds > 0 ? static_cast<uint64_t>(seconds * 1e9) : 0;
}

// Feeds one completed query to the flight recorder (loadgen paths that do
// not route through ServingEngine::Submit — the closed loop calls the
// service directly, and batched open-loop arrivals dispatch via Execute).
void ObserveQuery(const QuerySpec& spec, const QueryResult& r,
                  uint64_t latency_nanos) {
  obs::FlightRecorder& recorder = obs::GlobalFlightRecorder();
  if (!recorder.enabled()) return;
  obs::QueryObservation o;
  o.latency_us = latency_nanos / 1000;
  o.k = static_cast<uint32_t>(spec.k);
  o.width = static_cast<uint32_t>(spec.beam_width);
  o.degraded = r.degraded;
  o.deadline_exceeded = r.deadline_exceeded;
  o.shed = r.shed;
  o.hedged = r.hedged;
  o.shards_lost = static_cast<uint32_t>(r.shards_lost);
  o.trace = spec.trace;
  recorder.Observe(o);
}

// Per-thread degradation tallies, summed into the report at the end.
struct DegradeTally {
  size_t degraded = 0;
  size_t shed = 0;
  size_t deadline_exceeded = 0;
  size_t hedged = 0;
  size_t shards_lost = 0;

  void Count(const QueryResult& r) {
    if (r.degraded) ++degraded;
    if (r.shed) ++shed;
    if (r.deadline_exceeded) ++deadline_exceeded;
    if (r.hedged) ++hedged;
    shards_lost += r.shards_lost;
  }
  void Merge(const DegradeTally& o) {
    degraded += o.degraded;
    shed += o.shed;
    deadline_exceeded += o.deadline_exceeded;
    hedged += o.hedged;
    shards_lost += o.shards_lost;
  }
  void FillReport(LoadReport* r) const {
    r->degraded = degraded;
    r->shed = shed;
    r->deadline_exceeded = deadline_exceeded;
    r->hedged = hedged;
    r->shards_lost = shards_lost;
  }
};

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  double sum = 0;
  for (double v : seconds) sum += v;
  s.mean_ms = sum / seconds.size() * 1e3;
  s.p50_ms = PercentileSorted(seconds, 0.50) * 1e3;
  s.p95_ms = PercentileSorted(seconds, 0.95) * 1e3;
  s.p99_ms = PercentileSorted(seconds, 0.99) * 1e3;
  s.max_ms = seconds.back() * 1e3;
  return s;
}

LatencySummary SummarizeHistogramNanos(const obs::HistogramData& hist) {
  LatencySummary s;
  if (hist.count == 0) return s;
  s.mean_ms = hist.Mean() / 1e6;
  s.p50_ms = hist.Percentile(0.50) / 1e6;
  s.p95_ms = hist.Percentile(0.95) / 1e6;
  s.p99_ms = hist.Percentile(0.99) / 1e6;
  s.max_ms = static_cast<double>(hist.max) / 1e6;
  return s;
}

LoadReport RunClosedLoop(const SearchService& service, const Dataset& queries,
                         const LoadgenOptions& options) {
  RPQ_CHECK(!queries.empty());
  const size_t total =
      options.total_queries > 0 ? options.total_queries : queries.size();
  const size_t threads = std::max<size_t>(1, options.threads);
  const bool live_metrics = obs::MetricsEnabled();

  std::atomic<size_t> next{0};
  // Per-thread tallies: a fixed-size histogram each instead of every sample
  // — memory is constant no matter how long the loop runs.
  std::vector<obs::HistogramData> latencies(threads);
  std::vector<size_t> hops(threads, 0);
  std::vector<double> io(threads, 0.0);
  std::vector<DegradeTally> tallies(threads);

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        QuerySpec spec{queries[i % queries.size()], options.k,
                       options.beam_width};
        spec.deadline_us = options.deadline_us;
        Timer lat;
        QueryResult r = service.Search(spec);
        const uint64_t nanos =
            SecondsToNanos(lat.ElapsedSeconds() + r.simulated_io_seconds);
        latencies[t].Record(nanos);
        // Live-record into the registry when metrics are on, so a scraper's
        // window sees latency move DURING the run, not only after the final
        // merge below.
        if (live_metrics) obs::Record(LatencyHistogram(), nanos);
        ObserveQuery(spec, r, nanos);
        hops[t] += r.stats.hops;
        io[t] += r.simulated_io_seconds;
        tallies[t].Count(r);
      }
    });
  }
  for (auto& c : clients) c.join();

  LoadReport report;
  report.wall_seconds = wall.ElapsedSeconds();
  report.completed = total;
  obs::HistogramData all;
  size_t total_hops = 0;
  DegradeTally tally;
  for (size_t t = 0; t < threads; ++t) {
    all.Merge(latencies[t]);
    total_hops += hops[t];
    report.simulated_io_seconds += io[t];
    tally.Merge(tallies[t]);
  }
  tally.FillReport(&report);
  // Samples already went in live when metrics were on; merging again here
  // would double-count them in the registry.
  if (!live_metrics) obs::MergeInto(LatencyHistogram(), all);
  // Simulated device time is not wall time; charge it as if the device were
  // serving the threads in parallel, matching the eval harness convention.
  const double effective =
      report.wall_seconds + report.simulated_io_seconds / threads;
  report.qps = effective > 0 ? total / effective : 0;
  report.latency = SummarizeHistogramNanos(all);
  report.mean_hops = static_cast<double>(total_hops) / total;
  return report;
}

LoadReport RunOpenLoop(const ServingEngine& engine, const Dataset& queries,
                       const LoadgenOptions& options) {
  RPQ_CHECK(!queries.empty());
  RPQ_CHECK(options.arrival_qps > 0);
  const size_t total =
      options.total_queries > 0 ? options.total_queries : queries.size();
  const bool live_metrics = obs::MetricsEnabled();
  const bool batched = options.batch > 1;

  std::mt19937_64 rng(options.seed);
  std::exponential_distribution<double> exp_gap(options.arrival_qps);
  const double fixed_gap = 1.0 / options.arrival_qps;

  std::mutex mu;
  obs::HistogramData lat_hist;
  size_t total_hops = 0;
  double total_io = 0;
  DegradeTally tally;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  double next_arrival = 0;  // seconds since start

  // Both arrival modes feed one collector thread that retires futures in
  // arrival order. For batched arrivals the FIFO .get() stamps completion
  // times exactly (batches complete all-at-once in dispatch order); for
  // per-query Submit, completions can reorder by up to the worker count, so
  // a stamp can be late by at most one service time — an acceptable bound
  // in exchange for routing through Submit, which is where admission
  // control (shed/brownout) and the queue-wait metric live. Shed queries
  // count in the tallies but not the latency summary (nothing was served).
  std::condition_variable cv;
  std::deque<std::pair<std::future<QueryResult>, Clock::time_point>> inflight;
  bool done = false;
  std::thread collector([&] {
    for (;;) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return done || !inflight.empty(); });
      if (inflight.empty()) {
        if (done) return;
        continue;
      }
      auto item = std::move(inflight.front());
      inflight.pop_front();
      lk.unlock();
      QueryResult r = item.first.get();
      // Only this thread touches the tallies (producer only queues).
      tally.Count(r);
      if (!r.shed) {
        const double lat =
            std::chrono::duration<double>(Clock::now() - item.second).count() +
            r.simulated_io_seconds;
        const uint64_t nanos = SecondsToNanos(lat);
        lat_hist.Record(nanos);
        if (live_metrics) obs::Record(LatencyHistogram(), nanos);
        // Per-query submissions already fed the recorder inside
        // ServingEngine::Submit; only the batched path (which dispatches
        // via Execute, bypassing Submit) is observed here.
        if (batched) {
          QuerySpec spec;
          spec.k = options.k;
          spec.beam_width = options.beam_width;
          ObserveQuery(spec, r, nanos);
        }
      }
      total_hops += r.stats.hops;
      total_io += r.simulated_io_seconds;
    }
  });

  // Batched arrivals flow through a MicroBatcher so the engine serves them
  // via SearchBatch (amortized tables; occupancy recorded in
  // serve.batch_occupancy); note the batcher dispatches through Execute, so
  // admission control does not apply to batched runs.
  std::unique_ptr<MicroBatcher> batcher;
  if (options.batch > 1) {
    batcher = std::make_unique<MicroBatcher>(
        engine, BatcherOptions{options.batch, std::chrono::microseconds(200)});
  }
  for (size_t i = 0; i < total; ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_arrival));
    std::this_thread::sleep_until(arrival);
    QuerySpec spec{queries[i % queries.size()], options.k, options.beam_width};
    spec.deadline_us = options.deadline_us;
    auto fut = batcher != nullptr ? batcher->Submit(spec) : engine.Submit(spec);
    {
      std::lock_guard<std::mutex> lk(mu);
      inflight.emplace_back(std::move(fut), arrival);
    }
    cv.notify_one();
    next_arrival += options.poisson ? exp_gap(rng) : fixed_gap;
  }
  if (batcher != nullptr) batcher->Flush();
  {
    std::lock_guard<std::mutex> lk(mu);
    done = true;
  }
  cv.notify_one();
  collector.join();
  engine.WaitIdle();
  // Same double-count guard as the closed loop: live-recorded when on.
  if (!live_metrics) obs::MergeInto(LatencyHistogram(), lat_hist);

  LoadReport report;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.completed = total;
  report.offered_qps = options.arrival_qps;
  report.qps =
      report.wall_seconds > 0 ? total / report.wall_seconds : 0;
  report.mean_hops = static_cast<double>(total_hops) / total;
  report.simulated_io_seconds = total_io;
  report.latency = SummarizeHistogramNanos(lat_hist);
  tally.FillReport(&report);
  return report;
}

void PrintReport(const char* label, const LoadReport& report) {
  std::printf(
      "%-22s %7zu queries  %9.1f QPS  lat ms: mean %7.3f  p50 %7.3f  "
      "p95 %7.3f  p99 %7.3f  max %7.3f\n",
      label, report.completed, report.qps, report.latency.mean_ms,
      report.latency.p50_ms, report.latency.p95_ms, report.latency.p99_ms,
      report.latency.max_ms);
  // Degradation line, only when something actually degraded — the common
  // all-healthy run keeps its one-row format.
  if (report.degraded + report.shed + report.deadline_exceeded +
          report.hedged + report.shards_lost >
      0) {
    const size_t answered = report.completed - report.shed;
    std::printf(
        "%-22s answered %zu/%zu (%.1f%%)  degraded %zu (%.1f%%)  shed %zu  "
        "deadline %zu  hedged %zu  shards-lost %zu\n",
        "  degradation:", answered, report.completed,
        report.completed > 0 ? 100.0 * answered / report.completed : 0.0,
        report.degraded,
        report.completed > 0 ? 100.0 * report.degraded / report.completed : 0.0,
        report.shed, report.deadline_exceeded, report.hedged,
        report.shards_lost);
  }
}

}  // namespace rpq::serve
