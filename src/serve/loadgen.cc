#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace rpq::serve {
namespace {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  std::sort(seconds.begin(), seconds.end());
  double sum = 0;
  for (double v : seconds) sum += v;
  s.mean_ms = sum / seconds.size() * 1e3;
  s.p50_ms = PercentileSorted(seconds, 0.50) * 1e3;
  s.p95_ms = PercentileSorted(seconds, 0.95) * 1e3;
  s.p99_ms = PercentileSorted(seconds, 0.99) * 1e3;
  s.max_ms = seconds.back() * 1e3;
  return s;
}

LoadReport RunClosedLoop(const SearchService& service, const Dataset& queries,
                         const LoadgenOptions& options) {
  RPQ_CHECK(!queries.empty());
  const size_t total =
      options.total_queries > 0 ? options.total_queries : queries.size();
  const size_t threads = std::max<size_t>(1, options.threads);

  std::atomic<size_t> next{0};
  std::vector<std::vector<double>> latencies(threads);
  std::vector<size_t> hops(threads, 0);
  std::vector<double> io(threads, 0.0);

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      latencies[t].reserve(total / threads + 1);
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        const float* q = queries[i % queries.size()];
        Timer lat;
        QueryResult r = service.Search({q, options.k, options.beam_width});
        latencies[t].push_back(lat.ElapsedSeconds() +
                               r.simulated_io_seconds);
        hops[t] += r.stats.hops;
        io[t] += r.simulated_io_seconds;
      }
    });
  }
  for (auto& c : clients) c.join();

  LoadReport report;
  report.wall_seconds = wall.ElapsedSeconds();
  report.completed = total;
  std::vector<double> all;
  all.reserve(total);
  size_t total_hops = 0;
  for (size_t t = 0; t < threads; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    total_hops += hops[t];
    report.simulated_io_seconds += io[t];
  }
  // Simulated device time is not wall time; charge it as if the device were
  // serving the threads in parallel, matching the eval harness convention.
  const double effective =
      report.wall_seconds + report.simulated_io_seconds / threads;
  report.qps = effective > 0 ? total / effective : 0;
  report.latency = SummarizeLatencies(std::move(all));
  report.mean_hops = static_cast<double>(total_hops) / total;
  return report;
}

LoadReport RunOpenLoop(const ServingEngine& engine, const Dataset& queries,
                       const LoadgenOptions& options) {
  RPQ_CHECK(!queries.empty());
  RPQ_CHECK(options.arrival_qps > 0);
  const size_t total =
      options.total_queries > 0 ? options.total_queries : queries.size();

  std::mt19937_64 rng(options.seed);
  std::exponential_distribution<double> exp_gap(options.arrival_qps);
  const double fixed_gap = 1.0 / options.arrival_qps;

  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(total);
  size_t total_hops = 0;
  double total_io = 0;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  double next_arrival = 0;  // seconds since start
  const SearchService& service = engine.service();

  for (size_t i = 0; i < total; ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_arrival));
    std::this_thread::sleep_until(arrival);
    const float* q = queries[i % queries.size()];
    engine.Execute([&, q, arrival] {
      QueryResult r = service.Search({q, options.k, options.beam_width});
      const double lat =
          std::chrono::duration<double>(Clock::now() - arrival).count() +
          r.simulated_io_seconds;
      std::lock_guard<std::mutex> lk(mu);
      latencies.push_back(lat);
      total_hops += r.stats.hops;
      total_io += r.simulated_io_seconds;
    });
    next_arrival += options.poisson ? exp_gap(rng) : fixed_gap;
  }
  engine.WaitIdle();

  LoadReport report;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.completed = total;
  report.offered_qps = options.arrival_qps;
  report.qps =
      report.wall_seconds > 0 ? total / report.wall_seconds : 0;
  report.mean_hops = static_cast<double>(total_hops) / total;
  report.simulated_io_seconds = total_io;
  report.latency = SummarizeLatencies(std::move(latencies));
  return report;
}

void PrintReport(const char* label, const LoadReport& report) {
  std::printf(
      "%-22s %7zu queries  %9.1f QPS  lat ms: mean %7.3f  p50 %7.3f  "
      "p95 %7.3f  p99 %7.3f  max %7.3f\n",
      label, report.completed, report.qps, report.latency.mean_ms,
      report.latency.p50_ms, report.latency.p95_ms, report.latency.p99_ms,
      report.latency.max_ms);
}

}  // namespace rpq::serve
