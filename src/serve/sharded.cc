#include "serve/sharded.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/logging.h"
#include "obs/trace.h"

namespace rpq::serve {
namespace {

// Per-query shard fan-out width (how many shards each query touched).
obs::HistogramId FanoutHistogram() {
  static const obs::HistogramId id = obs::GetHistogram("serve.shard_fanout");
  return id;
}

}  // namespace

QueryResult ShardedService::Merge(const QuerySpec& q,
                                  std::vector<QueryResult>& per) const {
  obs::ScopedStage span(obs::Stage::kMerge, q.trace);
  if (obs::MetricsEnabled()) obs::Record(FanoutHistogram(), per.size());
  // Shard-order accumulation keeps stats and the (dist, global id) top-k
  // merge deterministic regardless of how the per-shard results were
  // produced (serial or parallel fan-out).
  QueryResult merged;
  TopK top(q.k);
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    QueryResult& r = per[s];
    merged.stats.hops += r.stats.hops;
    merged.stats.dist_comps += r.stats.dist_comps;
    merged.stats.visited_hits += r.stats.visited_hits;
    merged.simulated_io_seconds += r.simulated_io_seconds;
    for (const Neighbor& nb : r.results) {
      uint32_t id = shard.global_ids.empty() ? nb.id : shard.global_ids[nb.id];
      top.Push(nb.dist, id);
    }
  }
  merged.results = top.Take();
  return merged;
}

QueryResult ShardedService::Search(const QuerySpec& q) const {
  std::vector<QueryResult> per(shards_.size());
  ThreadPool* pool = options_.pool != nullptr ? options_.pool : SharedPool();
  // Serial fan-out — also the forced fallback when the caller IS a worker of
  // the fan-out pool (e.g. query handlers submitted onto SharedPool, or a
  // sharded shard of a sharded tree sharing one pool): submit-and-wait from
  // inside the pool would deadlock once every worker is a waiter.
  if (!options_.parallel_shards || shards_.size() < 2 ||
      pool->CurrentThreadIsWorker()) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      per[s] = shards_[s].service->Search(q);
    }
    return Merge(q, per);
  }

  // Per-query fan-out: shards 1..S-1 run on the pool, shard 0 on the calling
  // thread. Completion is tracked with a local counter (not pool->Wait(),
  // which would also wait on unrelated tasks other queries submitted).
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = shards_.size() - 1;
  // QueryTrace is single-writer: only shard 0 (the calling thread) records
  // into the query's trace; pool-side shards run untraced. Registry metrics
  // are per-thread-sharded, so those record from every shard regardless.
  QuerySpec sub = q;
  sub.trace = nullptr;
  for (size_t s = 1; s < shards_.size(); ++s) {
    pool->Submit([this, &sub, &per, &mu, &cv, &pending, s] {
      per[s] = shards_[s].service->Search(sub);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  per[0] = shards_[0].service->Search(q);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  return Merge(q, per);
}

size_t ShardedMemoryIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& s : shards) total += s->index->MemoryBytes();
  return total;
}

ShardedMemoryIndex BuildShardedMemoryIndex(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    size_t num_shards, const graph::VamanaOptions& vamana_options,
    const ShardedOptions& sharded_options) {
  RPQ_CHECK(num_shards > 0);
  // Keep shards big enough to carry a graph (degree < shard size).
  num_shards = std::max<size_t>(
      1, std::min(num_shards, base.size() / (vamana_options.degree + 1)));
  ShardedMemoryIndex out;
  std::vector<Shard> shards;
  const size_t per_shard = (base.size() + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * per_shard;
    const size_t end = std::min(base.size(), begin + per_shard);
    if (begin >= end) break;
    auto shard = std::make_unique<MemoryShard>();
    shard->base = base.Slice(begin, end);
    shard->graph = graph::BuildVamana(shard->base, vamana_options);
    shard->index =
        core::MemoryIndex::Build(shard->base, shard->graph, quantizer);
    shard->service = std::make_unique<MemoryIndexService>(*shard->index);
    std::vector<uint32_t> global_ids(end - begin);
    for (size_t i = begin; i < end; ++i) {
      global_ids[i - begin] = static_cast<uint32_t>(i);
    }
    shards.push_back({shard->service.get(), std::move(global_ids)});
    out.shards.push_back(std::move(shard));
  }
  out.service =
      std::make_unique<ShardedService>(std::move(shards), sharded_options);
  return out;
}

}  // namespace rpq::serve
