#include "serve/sharded.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace rpq::serve {
namespace {

// Per-query shard fan-out width (how many shards each query touched).
obs::HistogramId FanoutHistogram() {
  static const obs::HistogramId id = obs::GetHistogram("serve.shard_fanout");
  return id;
}

// Fan-out-start -> shard-result-available, one sample per shard that
// actually answered (timed-out shards are censored, not recorded). This is
// the distribution hedge_delay_us and shard_timeout_us race against: set the
// hedge delay near its p95 and the timeout past its p99.
obs::HistogramId ShardWaitHistogram() {
  static const obs::HistogramId id = obs::GetHistogram("serve.shard_wait_ns");
  return id;
}

void RecordShardWait(uint64_t fan_start_ticks) {
  obs::Record(ShardWaitHistogram(), TicksToNanos(TickNow() - fan_start_ticks));
}

// Injected shard stall: the serving thread sleeps as if the shard's backend
// (or its network path, one day) went unresponsive for `stall_us`. Fired
// from the process-wide injector so RPQ_FAULTS reaches fan-outs that were
// built without explicit fault knobs. Hedge requests never roll this —
// hedges exist to race exactly these stalls.
void MaybeStall(uint64_t stall_us) {
  if (stall_us == 0 || !fault::GlobalFaultsEnabled()) return;
  if (fault::GlobalInjector().Fire(fault::Point::kShardStall)) {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
}

// Per-shard resolution state for the fault-tolerant fan-out. Each shard has
// TWO result slots (primary and hedge) and one atomic state; a finishing
// request writes its OWN slot first, then claims the shard with a CAS from
// kOpen. Exactly one writer can win, so the merge only ever reads a slot
// whose write completed-before the winning CAS — no torn reads, no
// primary/hedge write race, even when the main thread has already timed out
// and abandoned the shard.
struct FanState {
  static constexpr uint32_t kOpen = 0;
  static constexpr uint32_t kPrimary = 1;
  static constexpr uint32_t kHedge = 2;
  static constexpr uint32_t kAbandoned = 3;

  explicit FanState(size_t n)
      : primary(n), hedge(n), state(std::make_unique<std::atomic<uint32_t>[]>(n)) {
    for (size_t s = 0; s < n; ++s) state[s].store(kOpen);
  }

  std::vector<QueryResult> primary;
  std::vector<QueryResult> hedge;
  std::unique_ptr<std::atomic<uint32_t>[]> state;
  std::mutex mu;
  std::condition_variable cv;
  size_t resolved = 0;  // shards claimed by kPrimary or kHedge (under mu)

  /// Called by a finishing request after writing its slot: claims the shard
  /// if still open. Returns true when this request's result will be used.
  bool Claim(size_t s, uint32_t who) {
    uint32_t expected = kOpen;
    if (!state[s].compare_exchange_strong(expected, who)) return false;
    std::lock_guard<std::mutex> lock(mu);
    ++resolved;
    cv.notify_one();
    return true;
  }
};

}  // namespace

ShardedService::~ShardedService() {
  // Only the fault-tolerant fan-out can leave tasks behind (every other
  // path blocks on its shards); those tasks dereference shard services the
  // surrounding deployment owns and destroys right after this service.
  if (!options_.parallel_shards) return;
  ThreadPool* pool = options_.pool != nullptr ? options_.pool : SharedPool();
  if (!pool->CurrentThreadIsWorker()) pool->Wait();
}

QueryResult ShardedService::Merge(const QuerySpec& q,
                                  std::vector<QueryResult>& per,
                                  const std::vector<uint8_t>& present) const {
  obs::ScopedStage span(obs::Stage::kMerge, q.trace);
  if (obs::MetricsEnabled()) obs::Record(FanoutHistogram(), per.size());
  // Shard-order accumulation keeps stats and the (dist, global id) top-k
  // merge deterministic regardless of how the per-shard results were
  // produced (serial, parallel, or hedged fan-out).
  QueryResult merged;
  TopK top(q.k);
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (present[s] == 0) {
      ++merged.shards_lost;
      continue;
    }
    const Shard& shard = shards_[s];
    QueryResult& r = per[s];
    merged.stats.hops += r.stats.hops;
    merged.stats.dist_comps += r.stats.dist_comps;
    merged.stats.visited_hits += r.stats.visited_hits;
    merged.simulated_io_seconds += r.simulated_io_seconds;
    merged.degraded |= r.degraded;
    merged.deadline_exceeded |= r.deadline_exceeded;
    for (const Neighbor& nb : r.results) {
      uint32_t id = shard.global_ids.empty() ? nb.id : shard.global_ids[nb.id];
      top.Push(nb.dist, id);
    }
  }
  if (merged.shards_lost > 0) {
    merged.degraded = true;
    if (obs::MetricsEnabled()) {
      static const obs::CounterId lost = obs::GetCounter("serve.shard_lost");
      obs::Add(lost, merged.shards_lost);
    }
  }
  merged.results = top.Take();
  return merged;
}

QueryResult ShardedService::SearchFaultTolerant(const QuerySpec& q,
                                                ThreadPool* pool) const {
  const size_t n = shards_.size();
  auto st = std::make_shared<FanState>(n);
  // Wait budgets are anchored at fan-out start so a slow early shard eats
  // into the hedge delay rather than extending the total wall clock.
  const Deadline hedge_at = Deadline::AfterMicros(options_.hedge_delay_us);
  const Deadline give_up = Deadline::AfterMicros(options_.shard_timeout_us);

  // QueryTrace is single-writer and the calling thread does not run shard
  // requests on this path, so every shard runs untraced; registry metrics
  // are per-thread-sharded and record from every shard regardless.
  QuerySpec sub = q;
  sub.trace = nullptr;
  const uint64_t stall_us = options_.injected_stall_us;
  const uint64_t fan_start = obs::MetricsEnabled() ? TickNow() : 0;
  for (size_t s = 0; s < n; ++s) {
    const SearchService* svc = shards_[s].service;
    pool->Submit([st, svc, sub, stall_us, s, fan_start] {
      MaybeStall(stall_us);
      st->primary[s] = svc->Search(sub);
      // Wait samples only for shards whose result the query will use; a
      // lost claim means the main thread already gave up (or a hedge won),
      // so that wait is censored rather than recorded.
      if (st->Claim(s, FanState::kPrimary) && fan_start != 0) {
        RecordShardWait(fan_start);
      }
    });
  }

  auto wait_until = [&](const Deadline& until) {
    std::unique_lock<std::mutex> lock(st->mu);
    if (!until.active()) {
      st->cv.wait(lock, [&] { return st->resolved == n; });
      return;
    }
    const double remaining = until.RemainingSeconds();
    if (remaining <= 0) return;
    st->cv.wait_for(lock, std::chrono::duration<double>(remaining),
                    [&] { return st->resolved == n; });
  };

  QueryResult merged_extra;  // carries the hedged flag into the merge result
  if (options_.hedge_delay_us > 0) {
    wait_until(hedge_at);
    size_t hedges = 0;
    for (size_t s = 0; s < n; ++s) {
      if (st->state[s].load() != FanState::kOpen) continue;
      const SearchService* replica = shards_[s].replica;
      if (replica == nullptr) continue;
      ++hedges;
      pool->Submit([st, replica, sub, s, fan_start] {
        st->hedge[s] = replica->Search(sub);
        if (st->Claim(s, FanState::kHedge) && fan_start != 0) {
          RecordShardWait(fan_start);
        }
      });
    }
    if (hedges > 0) {
      merged_extra.hedged = true;
      if (obs::MetricsEnabled()) {
        static const obs::CounterId c = obs::GetCounter("serve.hedges");
        obs::Add(c, hedges);
      }
    }
  }
  wait_until(give_up);

  // Abandon whatever is still open: a late request's Claim will fail and its
  // result is discarded (the task keeps FanState alive through its
  // shared_ptr, so the write targets live memory either way).
  std::vector<uint8_t> present(n, 0);
  std::vector<QueryResult> per(n);
  for (size_t s = 0; s < n; ++s) {
    uint32_t expected = FanState::kOpen;
    st->state[s].compare_exchange_strong(expected, FanState::kAbandoned);
    const uint32_t who = st->state[s].load();
    if (who == FanState::kPrimary) {
      per[s] = std::move(st->primary[s]);
      present[s] = 1;
    } else if (who == FanState::kHedge) {
      per[s] = std::move(st->hedge[s]);
      present[s] = 1;
    }
  }
  QueryResult merged = Merge(q, per, present);
  merged.hedged = merged_extra.hedged;
  return merged;
}

QueryResult ShardedService::Search(const QuerySpec& q) const {
  const size_t n = shards_.size();
  std::vector<QueryResult> per(n);
  std::vector<uint8_t> present(n, 1);
  ThreadPool* pool = options_.pool != nullptr ? options_.pool : SharedPool();
  // Serial fan-out — also the forced fallback when the caller IS a worker of
  // the fan-out pool (e.g. query handlers submitted onto SharedPool, or a
  // sharded shard of a sharded tree sharing one pool): submit-and-wait from
  // inside the pool would deadlock once every worker is a waiter.
  if (!options_.parallel_shards || n < 2 || pool->CurrentThreadIsWorker()) {
    const Deadline deadline = DeadlineFor(q);
    const uint64_t fan_start = obs::MetricsEnabled() ? TickNow() : 0;
    for (size_t s = 0; s < n; ++s) {
      // A spent budget skips the remaining shards (partial merge) rather
      // than starting searches whose results the caller is done waiting for.
      if (s > 0 && deadline.Expired()) {
        present[s] = 0;
        continue;
      }
      MaybeStall(options_.injected_stall_us);
      per[s] = shards_[s].service->Search(q);
      // Serial shards queue behind each other, so each wait sample is the
      // true fan-out-start-anchored availability time, same semantic as the
      // parallel paths.
      if (fan_start != 0) RecordShardWait(fan_start);
    }
    return Merge(q, per, present);
  }

  if (options_.shard_timeout_us > 0 || options_.hedge_delay_us > 0) {
    return SearchFaultTolerant(q, pool);
  }

  // Per-query fan-out: shards 1..S-1 run on the pool, shard 0 on the calling
  // thread. Completion is tracked with a local counter (not pool->Wait(),
  // which would also wait on unrelated tasks other queries submitted). The
  // by-reference captures are safe here and only here: this path always
  // blocks until every shard finished before returning.
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = n - 1;
  // QueryTrace is single-writer: only shard 0 (the calling thread) records
  // into the query's trace; pool-side shards run untraced. Registry metrics
  // are per-thread-sharded, so those record from every shard regardless.
  QuerySpec sub = q;
  sub.trace = nullptr;
  const uint64_t fan_start = obs::MetricsEnabled() ? TickNow() : 0;
  for (size_t s = 1; s < n; ++s) {
    pool->Submit([this, &sub, &per, &mu, &cv, &pending, s, fan_start] {
      MaybeStall(options_.injected_stall_us);
      per[s] = shards_[s].service->Search(sub);
      if (fan_start != 0) RecordShardWait(fan_start);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  MaybeStall(options_.injected_stall_us);
  per[0] = shards_[0].service->Search(q);
  if (fan_start != 0) RecordShardWait(fan_start);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  return Merge(q, per, present);
}

size_t ShardedMemoryIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& s : shards) total += s->index->MemoryBytes();
  return total;
}

ShardedMemoryIndex BuildShardedMemoryIndex(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    size_t num_shards, const graph::VamanaOptions& vamana_options,
    const ShardedOptions& sharded_options) {
  RPQ_CHECK(num_shards > 0);
  // Keep shards big enough to carry a graph (degree < shard size).
  num_shards = std::max<size_t>(
      1, std::min(num_shards, base.size() / (vamana_options.degree + 1)));
  ShardedMemoryIndex out;
  std::vector<Shard> shards;
  const size_t per_shard = (base.size() + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * per_shard;
    const size_t end = std::min(base.size(), begin + per_shard);
    if (begin >= end) break;
    auto shard = std::make_unique<MemoryShard>();
    shard->base = base.Slice(begin, end);
    shard->graph = graph::BuildVamana(shard->base, vamana_options);
    shard->index =
        core::MemoryIndex::Build(shard->base, shard->graph, quantizer);
    shard->service = std::make_unique<MemoryIndexService>(*shard->index);
    std::vector<uint32_t> global_ids(end - begin);
    for (size_t i = begin; i < end; ++i) {
      global_ids[i - begin] = static_cast<uint32_t>(i);
    }
    // Single-copy deployment: the shard self-hedges. Injected stalls and
    // transient faults are per-request, so a retry to the same backend is
    // exactly what a replica would provide.
    shards.push_back(
        {shard->service.get(), std::move(global_ids), shard->service.get()});
    out.shards.push_back(std::move(shard));
  }
  out.service =
      std::make_unique<ShardedService>(std::move(shards), sharded_options);
  return out;
}

}  // namespace rpq::serve
