#include "serve/sharded.h"

#include <algorithm>

#include "common/logging.h"

namespace rpq::serve {

QueryResult ShardedService::Search(const QuerySpec& q) const {
  QueryResult merged;
  TopK top(q.k);
  for (const Shard& shard : shards_) {
    QueryResult r = shard.service->Search(q);
    merged.stats.hops += r.stats.hops;
    merged.stats.dist_comps += r.stats.dist_comps;
    merged.simulated_io_seconds += r.simulated_io_seconds;
    for (const Neighbor& nb : r.results) {
      uint32_t id =
          shard.global_ids.empty() ? nb.id : shard.global_ids[nb.id];
      top.Push(nb.dist, id);
    }
  }
  merged.results = top.Take();
  return merged;
}

size_t ShardedMemoryIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& s : shards) total += s->index->MemoryBytes();
  return total;
}

ShardedMemoryIndex BuildShardedMemoryIndex(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    size_t num_shards, const graph::VamanaOptions& vamana_options) {
  RPQ_CHECK(num_shards > 0);
  // Keep shards big enough to carry a graph (degree < shard size).
  num_shards = std::max<size_t>(
      1, std::min(num_shards, base.size() / (vamana_options.degree + 1)));
  ShardedMemoryIndex out;
  std::vector<Shard> shards;
  const size_t per_shard = (base.size() + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * per_shard;
    const size_t end = std::min(base.size(), begin + per_shard);
    if (begin >= end) break;
    auto shard = std::make_unique<MemoryShard>();
    shard->base = base.Slice(begin, end);
    shard->graph = graph::BuildVamana(shard->base, vamana_options);
    shard->index =
        core::MemoryIndex::Build(shard->base, shard->graph, quantizer);
    shard->service = std::make_unique<MemoryIndexService>(*shard->index);
    std::vector<uint32_t> global_ids(end - begin);
    for (size_t i = begin; i < end; ++i) {
      global_ids[i - begin] = static_cast<uint32_t>(i);
    }
    shards.push_back({shard->service.get(), std::move(global_ids)});
    out.shards.push_back(std::move(shard));
  }
  out.service = std::make_unique<ShardedService>(std::move(shards));
  return out;
}

}  // namespace rpq::serve
