#include "serve/ivf_service.h"

namespace rpq::serve {
namespace {

// IvfStats -> the serving layer's graph-shaped stats: probes are the
// analogue of hops (routing decisions), scanned codes of dist_comps.
QueryResult ToQueryResult(ivf::IvfSearchResult&& res) {
  QueryResult out;
  out.results = std::move(res.results);
  out.stats.hops = res.stats.lists_probed;
  out.stats.dist_comps = res.stats.codes_scanned;
  out.stats.deadline_hit = res.stats.deadline_hit;
  NoteDeadline(&out);
  return out;
}

}  // namespace

ivf::IvfSearchOptions IvfService::OptionsFor(const QuerySpec& q) const {
  ivf::IvfSearchOptions opt;
  opt.nprobe = q.beam_width;  // beam_width doubles as nprobe for IVF
  opt.rerank = q.rerank > 0 ? q.rerank : rerank_;
  // Query-level request over service-level default, then degraded to kAuto
  // where the index cannot serve it (linkcode has no IVF analogue).
  opt.rerank_mode = refine::SanitizeRequestedMode(
      q.rerank_mode != refine::RerankMode::kAuto ? q.rerank_mode : mode_,
      index_.stores_vectors(), /*has_linkcode=*/false);
  opt.trace = q.trace;
  opt.deadline = DeadlineFor(q);
  return opt;
}

QueryResult IvfService::Search(const QuerySpec& q) const {
  return ToQueryResult(index_.Search(q.query, q.k, OptionsFor(q)));
}

void IvfService::SearchBatch(const QuerySpec* qs, size_t n,
                             QueryResult* out) const {
  // The index batch path amortizes across uniform (k, nprobe, rerank
  // request) runs; split the batch into maximal such runs (batcher batches
  // almost always are one).
  size_t i = 0;
  std::vector<const float*> queries;
  while (i < n) {
    size_t j = i;
    while (j < n && qs[j].k == qs[i].k &&
           qs[j].beam_width == qs[i].beam_width &&
           qs[j].rerank == qs[i].rerank &&
           qs[j].rerank_mode == qs[i].rerank_mode &&
           qs[j].deadline_us == qs[i].deadline_us) {
      ++j;
    }
    queries.clear();
    for (size_t t = i; t < j; ++t) queries.push_back(qs[t].query);
    auto res = index_.SearchBatch(queries.data(), queries.size(), qs[i].k,
                                  OptionsFor(qs[i]));
    for (size_t t = i; t < j; ++t) out[t] = ToQueryResult(std::move(res[t - i]));
    i = j;
  }
}

}  // namespace rpq::serve
