#include "serve/engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/fault.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace rpq::serve {
namespace {

struct EngineMetrics {
  obs::CounterId submitted = obs::GetCounter("serve.submitted");
  obs::CounterId completed = obs::GetCounter("serve.completed");
  obs::CounterId shed = obs::GetCounter("serve.shed");
  obs::CounterId brownout = obs::GetCounter("serve.brownout");
};

const EngineMetrics& Metrics() {
  static const EngineMetrics m;
  return m;
}

// Failure-path counters fire rarely (ideally never), but dashboards and
// metrics-validate --require need their keys present from the first
// snapshot — register them all eagerly at engine construction.
void RegisterServingMetrics() {
  obs::GetCounter("serve.deadline_exceeded");
  obs::GetCounter("serve.shard_lost");
  obs::GetCounter("serve.hedges");
  obs::GetCounter("disk.io_errors");
  obs::GetCounter("disk.retries");
  fault::RegisterFaultMetrics();
}

// What the flight recorder wants to know about a completed query.
obs::QueryObservation MakeObservation(const QuerySpec& q, const QueryResult& r,
                                      uint64_t latency_nanos) {
  obs::QueryObservation o;
  o.latency_us = latency_nanos / 1000 +
                 static_cast<uint64_t>(r.simulated_io_seconds * 1e6);
  o.k = static_cast<uint32_t>(q.k);
  o.width = static_cast<uint32_t>(q.beam_width);
  o.degraded = r.degraded;
  o.deadline_exceeded = r.deadline_exceeded;
  o.shed = r.shed;
  o.hedged = r.hedged;
  o.shards_lost = static_cast<uint32_t>(r.shards_lost);
  o.trace = q.trace;
  return o;
}

}  // namespace

ServingEngine::ServingEngine(const SearchService& service,
                             const EngineOptions& options)
    : service_(service), options_(options), pool_(options.threads) {
  // Pay the one-time tick calibration and metric-name registration at
  // construction so no query does; also guarantees the serve.* /stage.* /
  // fault.* keys appear in snapshots even before any traffic.
  CalibrateTickClock();
  obs::RegisterStageMetrics();
  RegisterServingMetrics();
  Metrics();
}

std::vector<QueryResult> ServingEngine::SearchAll(const Dataset& queries,
                                                  size_t k,
                                                  size_t beam_width) const {
  std::vector<QueryResult> out(queries.size());
  ParallelFor(&pool_, queries.size(), [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      obs::ScopedStage span(obs::Stage::kService, nullptr);
      out[q] = service_.Search({queries[q], k, beam_width});
    }
  });
  return out;
}

std::vector<QueryResult> ServingEngine::SearchAll(
    const std::vector<QuerySpec>& specs) const {
  std::vector<QueryResult> out(specs.size());
  ParallelFor(&pool_, specs.size(), [&](size_t begin, size_t end) {
    service_.SearchBatch(specs.data() + begin, end - begin,
                         out.data() + begin);
  });
  return out;
}

std::future<QueryResult> ServingEngine::Submit(const QuerySpec& q) const {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();
  const bool observed = q.trace != nullptr || obs::MetricsEnabled();
  const bool recording = obs::GlobalFlightRecorder().enabled();
  if (observed) obs::Add(Metrics().submitted, 1);

  // Admission control: inspect the in-flight depth BEFORE enqueueing. A
  // shed query never touches the pool — its future resolves right here with
  // an empty degraded result, so overload cannot grow the queue unboundedly.
  // The kAllocFailure injection point models allocation pressure as a forced
  // shed (the refusal path a real allocator failure would take).
  const size_t depth = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool forced_shed =
      fault::GlobalFaultsEnabled() &&
      fault::GlobalInjector().Fire(fault::Point::kAllocFailure);
  if (forced_shed ||
      (options_.shed_watermark > 0 && depth > options_.shed_watermark)) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (observed) {
      obs::Add(Metrics().shed, 1);
      obs::Add(Metrics().completed, 1);
    }
    QueryResult refused;
    refused.shed = true;
    refused.degraded = true;
    // Shed queries are degradation by definition — the recorder admits them
    // with zero served latency (nothing ran).
    if (recording) {
      obs::GlobalFlightRecorder().Observe(MakeObservation(q, refused, 0));
    }
    promise->set_value(std::move(refused));
    return fut;
  }

  QuerySpec admitted = q;
  if (options_.brownout_watermark > 0 && depth > options_.brownout_watermark) {
    // Brownout: admit, but cheaper — recall degrades before latency does.
    const size_t floor_beam = std::max(options_.brownout_min_beam, q.k);
    const size_t scaled = static_cast<size_t>(
        static_cast<double>(q.beam_width) * options_.brownout_beam_factor);
    admitted.beam_width = std::max(floor_beam, std::min(q.beam_width, scaled));
    if (admitted.rerank > 1) admitted.rerank = std::max<size_t>(q.k, admitted.rerank / 2);
    if (observed) obs::Add(Metrics().brownout, 1);
  }

  pool_.Submit([this, q = admitted, promise, observed, recording,
                submit_ticks = (observed || recording) ? TickNow() : 0] {
    if (observed) {
      // Submit-to-start delay: the queueing component of tail latency, kept
      // separate from the service span that follows.
      obs::RecordSpan(obs::Stage::kQueueWait,
                      TicksToNanos(TickNow() - submit_ticks), q.trace);
    }
    QueryResult result;
    {
      obs::ScopedStage span(obs::Stage::kService, q.trace);
      result = service_.Search(q);
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (observed) obs::Add(Metrics().completed, 1);
    // Recorded latency spans queue wait + service + simulated I/O — the
    // latency the caller experienced, which is what makes a query "slow".
    if (recording) {
      obs::GlobalFlightRecorder().Observe(
          MakeObservation(q, result, TicksToNanos(TickNow() - submit_ticks)));
    }
    promise->set_value(std::move(result));
  });
  return fut;
}

void ServingEngine::Execute(std::function<void()> fn) const {
  pool_.Submit(std::move(fn));
}

}  // namespace rpq::serve
