#include "serve/engine.h"

#include <memory>
#include <utility>

namespace rpq::serve {

ServingEngine::ServingEngine(const SearchService& service,
                             const EngineOptions& options)
    : service_(service), pool_(options.threads) {}

std::vector<QueryResult> ServingEngine::SearchAll(const Dataset& queries,
                                                  size_t k,
                                                  size_t beam_width) const {
  std::vector<QueryResult> out(queries.size());
  ParallelFor(&pool_, queries.size(), [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      out[q] = service_.Search({queries[q], k, beam_width});
    }
  });
  return out;
}

std::vector<QueryResult> ServingEngine::SearchAll(
    const std::vector<QuerySpec>& specs) const {
  std::vector<QueryResult> out(specs.size());
  ParallelFor(&pool_, specs.size(), [&](size_t begin, size_t end) {
    service_.SearchBatch(specs.data() + begin, end - begin,
                         out.data() + begin);
  });
  return out;
}

std::future<QueryResult> ServingEngine::Submit(const QuerySpec& q) const {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();
  pool_.Submit([this, q, promise] { promise->set_value(service_.Search(q)); });
  return fut;
}

void ServingEngine::Execute(std::function<void()> fn) const {
  pool_.Submit(std::move(fn));
}

}  // namespace rpq::serve
