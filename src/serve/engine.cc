#include "serve/engine.h"

#include <memory>
#include <utility>

#include "common/timer.h"
#include "obs/trace.h"

namespace rpq::serve {
namespace {

struct EngineMetrics {
  obs::CounterId submitted = obs::GetCounter("serve.submitted");
  obs::CounterId completed = obs::GetCounter("serve.completed");
};

const EngineMetrics& Metrics() {
  static const EngineMetrics m;
  return m;
}

}  // namespace

ServingEngine::ServingEngine(const SearchService& service,
                             const EngineOptions& options)
    : service_(service), pool_(options.threads) {
  // Pay the one-time tick calibration and metric-name registration at
  // construction so no query does; also guarantees the serve.* /stage.* keys
  // appear in snapshots even before any traffic.
  CalibrateTickClock();
  obs::RegisterStageMetrics();
  Metrics();
}

std::vector<QueryResult> ServingEngine::SearchAll(const Dataset& queries,
                                                  size_t k,
                                                  size_t beam_width) const {
  std::vector<QueryResult> out(queries.size());
  ParallelFor(&pool_, queries.size(), [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      obs::ScopedStage span(obs::Stage::kService, nullptr);
      out[q] = service_.Search({queries[q], k, beam_width});
    }
  });
  return out;
}

std::vector<QueryResult> ServingEngine::SearchAll(
    const std::vector<QuerySpec>& specs) const {
  std::vector<QueryResult> out(specs.size());
  ParallelFor(&pool_, specs.size(), [&](size_t begin, size_t end) {
    service_.SearchBatch(specs.data() + begin, end - begin,
                         out.data() + begin);
  });
  return out;
}

std::future<QueryResult> ServingEngine::Submit(const QuerySpec& q) const {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();
  const bool observed = q.trace != nullptr || obs::MetricsEnabled();
  if (observed) obs::Add(Metrics().submitted, 1);
  const uint64_t submit_ticks = observed ? TickNow() : 0;
  pool_.Submit([this, q, promise, observed, submit_ticks] {
    if (observed) {
      // Submit-to-start delay: the queueing component of tail latency, kept
      // separate from the service span that follows.
      obs::RecordSpan(obs::Stage::kQueueWait,
                      TicksToNanos(TickNow() - submit_ticks), q.trace);
    }
    {
      obs::ScopedStage span(obs::Stage::kService, q.trace);
      promise->set_value(service_.Search(q));
    }
    if (observed) obs::Add(Metrics().completed, 1);
  });
  return fut;
}

void ServingEngine::Execute(std::function<void()> fn) const {
  pool_.Submit(std::move(fn));
}

}  // namespace rpq::serve
