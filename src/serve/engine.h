// ServingEngine: executes queries against one SearchService concurrently on
// a fixed worker pool. Workers need no coordination at query time — backend
// scratch is thread-local (see search_service.h), so the engine is pure
// dispatch: a blocking parallel-replay API for offline evaluation and an
// async submit API for the load generator and micro-batcher.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "serve/search_service.h"

namespace rpq::serve {

struct EngineOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  size_t threads = 0;
  /// Overload admission control for the async Submit path, keyed on the
  /// engine's in-flight query count (submitted, not yet completed). Two
  /// watermarks, both 0 = disabled:
  ///  * above `brownout_watermark`, queries are admitted DEGRADED — their
  ///    beam/nprobe and rerank knobs shrink per the brownout fields below,
  ///    trading recall for service rate while the queue drains;
  ///  * above `shed_watermark`, queries are refused outright: the future
  ///    resolves immediately with an empty result flagged shed+degraded.
  /// Shedding bounds queue memory and tail latency instead of letting an
  /// overloaded engine OOM or stall.
  size_t brownout_watermark = 0;
  size_t shed_watermark = 0;
  /// Brownout policy: beam_width (nprobe for IVF) is scaled by this factor,
  /// floored at brownout_min_beam (and at k); a nonzero rerank request is
  /// halved.
  double brownout_beam_factor = 0.5;
  size_t brownout_min_beam = 8;
};

/// Concurrent query executor over one (thread-safe) SearchService.
class ServingEngine {
 public:
  explicit ServingEngine(const SearchService& service,
                         const EngineOptions& options = {});

  size_t num_threads() const { return pool_.num_threads(); }
  const SearchService& service() const { return service_; }

  /// Replays all queries concurrently; blocks until done. Results are in
  /// query order and identical to serial execution (backends are
  /// deterministic and share no mutable state across workers). With a
  /// single worker the replay runs inline — serial timing stays honest.
  std::vector<QueryResult> SearchAll(const Dataset& queries, size_t k,
                                     size_t beam_width) const;
  std::vector<QueryResult> SearchAll(const std::vector<QuerySpec>& specs) const;

  /// Asynchronous single-query submission (open-loop serving).
  std::future<QueryResult> Submit(const QuerySpec& q) const;

  /// Runs an arbitrary closure on the worker pool; the micro-batcher
  /// dispatches whole batches through this.
  void Execute(std::function<void()> fn) const;

  /// Blocks until every submitted task has completed (open-loop drains).
  void WaitIdle() const { pool_.Wait(); }

  /// Queries submitted and not yet completed (admission-control input).
  size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

 private:
  const SearchService& service_;
  EngineOptions options_;
  mutable std::atomic<size_t> inflight_{0};
  mutable ThreadPool pool_;
};

}  // namespace rpq::serve
