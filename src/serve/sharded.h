// Sharded serving: the dataset is partitioned across S independent shards,
// each with its own graph + codes; a query fans out to every shard and the
// per-shard top-k lists are merged by (distance, global id). Because
// Neighbor ordering is a strict total order on (dist, id) and shard-local
// results are each sorted under it, the merge is deterministic and — for
// exact backends — bit-identical to searching one unsharded index, ties and
// duplicate vectors included (tests/serve_test.cc pins this).
//
// Shards are plain SearchServices, so shard trees compose: a shard can
// itself be sharded, remote (one day), or a different backend per tier.
#pragma once

#include <memory>
#include <vector>

#include "graph/vamana.h"
#include "serve/search_service.h"

namespace rpq::serve {

/// One shard: a borrowed backend plus the mapping from its local vertex ids
/// to global dataset ids (empty mapping = ids are already global).
struct Shard {
  const SearchService* service = nullptr;
  std::vector<uint32_t> global_ids;
};

/// Fans each query out to every shard and merges top-k. Thread-safe exactly
/// when every shard backend is.
class ShardedService : public SearchService {
 public:
  explicit ShardedService(std::vector<Shard> shards)
      : shards_(std::move(shards)) {}

  size_t num_shards() const { return shards_.size(); }

  QueryResult Search(const QuerySpec& q) const override;

 private:
  std::vector<Shard> shards_;
};

/// Everything one in-memory shard owns (the index borrows graph+quantizer,
/// so the bundle keeps them alive at stable addresses). The local->global
/// id map lives in the composed ShardedService's Shard entries.
struct MemoryShard {
  Dataset base;  ///< this shard's rows (contiguous slice of the corpus)
  graph::ProximityGraph graph;
  std::unique_ptr<core::MemoryIndex> index;
  std::unique_ptr<MemoryIndexService> service;
};

/// A fully built S-shard in-memory deployment over one shared quantizer.
struct ShardedMemoryIndex {
  std::vector<std::unique_ptr<MemoryShard>> shards;
  std::unique_ptr<ShardedService> service;  ///< the composed front end

  size_t MemoryBytes() const;
};

/// Partitions `base` into `num_shards` contiguous slices, builds a Vamana
/// graph and codes per shard (the quantizer — trained on the full corpus —
/// is shared and must outlive the result).
ShardedMemoryIndex BuildShardedMemoryIndex(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    size_t num_shards, const graph::VamanaOptions& vamana_options = {});

}  // namespace rpq::serve
