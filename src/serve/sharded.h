// Sharded serving: the dataset is partitioned across S independent shards,
// each with its own graph + codes; a query fans out to every shard and the
// per-shard top-k lists are merged by (distance, global id). Because
// Neighbor ordering is a strict total order on (dist, id) and shard-local
// results are each sorted under it, the merge is deterministic and — for
// exact backends — bit-identical to searching one unsharded index, ties and
// duplicate vectors included (tests/serve_test.cc pins this).
//
// Shards are plain SearchServices, so shard trees compose: a shard can
// itself be sharded, remote (one day), or a different backend per tier.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "graph/vamana.h"
#include "serve/search_service.h"

namespace rpq::serve {

/// One shard: a borrowed backend plus the mapping from its local vertex ids
/// to global dataset ids (empty mapping = ids are already global).
struct Shard {
  const SearchService* service = nullptr;
  std::vector<uint32_t> global_ids;
  /// Optional hedge target covering the same rows (same global_ids space).
  /// In-process deployments may point it at `service` itself: injected
  /// stalls are per-call, so a second request to the same backend is a
  /// meaningful hedge against them.
  const SearchService* replica = nullptr;
};

/// Shard fan-out knobs.
struct ShardedOptions {
  /// Search the shards of ONE query concurrently on `pool` instead of
  /// sequentially on the calling thread (serving-v2 latency lever: worker
  /// parallelism is across queries, this adds parallelism within one).
  /// Results are merged in shard order after all shards finish, so the
  /// deterministic (dist, global id) merge — and its bit-equality to the
  /// serial fan-out — is preserved.
  bool parallel_shards = false;
  /// Pool for the fan-out; nullptr = the process-wide SharedPool(). Calls
  /// arriving ON a worker of this pool (query handlers submitted to it, a
  /// nested sharded tree sharing it) detect that and fall back to the
  /// serial fan-out instead of deadlocking; give nested levels distinct
  /// pools if they should actually parallelize.
  ThreadPool* pool = nullptr;
  /// Per-query cap on how long the parallel fan-out waits for its shards,
  /// measured from fan-out start (0 = wait for every shard). Shards that
  /// miss the cap are abandoned: the query returns a partial merge with
  /// QueryResult::shards_lost set (and serve.shard_lost bumped) instead of
  /// blocking on a stalled shard. Requires parallel_shards.
  uint64_t shard_timeout_us = 0;
  /// Hedging: when > 0 and a shard has not answered after this delay, a
  /// second request is sent to its `replica` (if any); whichever copy
  /// answers first wins, the loser's result is discarded. Requires
  /// parallel_shards.
  uint64_t hedge_delay_us = 0;
  /// How long an injected fault::Point::kShardStall stalls a shard request
  /// (the fault fires per primary request, never on hedges).
  uint64_t injected_stall_us = 2000;
};

/// Fans each query out to every shard and merges top-k. Thread-safe exactly
/// when every shard backend is.
class ShardedService : public SearchService {
 public:
  explicit ShardedService(std::vector<Shard> shards,
                          const ShardedOptions& options = {})
      : shards_(std::move(shards)), options_(options) {}

  /// Drains the fan-out pool: a timed-out query abandons its shard tasks,
  /// which stay queued/running past the query's return while holding
  /// pointers to the shard backends — those must finish before the
  /// deployment that owns the backends is torn down.
  ~ShardedService() override;

  size_t num_shards() const { return shards_.size(); }
  const ShardedOptions& options() const { return options_; }

  QueryResult Search(const QuerySpec& q) const override;

 private:
  /// Deterministic (dist, global id) merge over the shards marked present;
  /// absent shards count into QueryResult::shards_lost and degrade the
  /// answer instead of failing it.
  QueryResult Merge(const QuerySpec& q, std::vector<QueryResult>& per,
                    const std::vector<uint8_t>& present) const;

  /// Fan-out with per-shard timeout + hedging (parallel_shards deployments
  /// with shard_timeout_us/hedge_delay_us set).
  QueryResult SearchFaultTolerant(const QuerySpec& q, ThreadPool* pool) const;

  std::vector<Shard> shards_;
  ShardedOptions options_;
};

/// Everything one in-memory shard owns (the index borrows graph+quantizer,
/// so the bundle keeps them alive at stable addresses). The local->global
/// id map lives in the composed ShardedService's Shard entries.
struct MemoryShard {
  Dataset base;  ///< this shard's rows (contiguous slice of the corpus)
  graph::ProximityGraph graph;
  std::unique_ptr<core::MemoryIndex> index;
  std::unique_ptr<MemoryIndexService> service;
};

/// A fully built S-shard in-memory deployment over one shared quantizer.
struct ShardedMemoryIndex {
  std::vector<std::unique_ptr<MemoryShard>> shards;
  std::unique_ptr<ShardedService> service;  ///< the composed front end

  size_t MemoryBytes() const;
};

/// Partitions `base` into `num_shards` contiguous slices, builds a Vamana
/// graph and codes per shard (the quantizer — trained on the full corpus —
/// is shared and must outlive the result).
ShardedMemoryIndex BuildShardedMemoryIndex(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    size_t num_shards, const graph::VamanaOptions& vamana_options = {},
    const ShardedOptions& sharded_options = {});

}  // namespace rpq::serve
