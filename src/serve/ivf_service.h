// IVF backend for the serving subsystem: ivf::IvfIndex behind the same
// SearchService interface every other backend speaks, so the engine, shard
// fan-out, micro-batcher, and load generator all work over IVF unchanged.
//
// QuerySpec adaptation: `beam_width` is interpreted as nprobe — both are
// "how much of the index one query touches", so beam sweeps, the loadgen's
// knob plumbing, and eval::SweepBeamWidths drive IVF recall/QPS trade-offs
// without a parallel set of plumbing. SearchBatch routes through
// IvfIndex::SearchBatch, which scans each probed list once for ALL queries
// in the batch (multi-query LUT batching) — the batcher's amortization is
// real kernel-level sharing here, not just table-build locality.
//
// Search is const + thread-safe (the index's reader lock); Insert on the
// underlying index may interleave with serving.
#pragma once

#include "ivf/ivf_index.h"
#include "serve/search_service.h"

namespace rpq::serve {

/// IVF flat-scan backend (ivf::IvfIndex is borrowed).
class IvfService : public SearchService {
 public:
  /// `rerank` / `mode` are the service-level refinement defaults, used when
  /// a QuerySpec does not carry its own (0 / kAuto = the shared auto rules).
  explicit IvfService(const ivf::IvfIndex& index, size_t rerank = 0,
                      refine::RerankMode mode = refine::RerankMode::kAuto)
      : index_(index), rerank_(rerank), mode_(mode) {}

  QueryResult Search(const QuerySpec& q) const override;
  void SearchBatch(const QuerySpec* qs, size_t n,
                   QueryResult* out) const override;

 private:
  ivf::IvfSearchOptions OptionsFor(const QuerySpec& q) const;

  const ivf::IvfIndex& index_;
  size_t rerank_;
  refine::RerankMode mode_;
};

}  // namespace rpq::serve
