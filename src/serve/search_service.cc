#include "serve/search_service.h"

#include "common/distance.h"
#include "obs/metrics.h"

namespace rpq::serve {

void NoteDeadline(QueryResult* r) {
  if (!r->stats.deadline_hit) return;
  r->degraded = true;
  r->deadline_exceeded = true;
  if (obs::MetricsEnabled()) {
    static const obs::CounterId c = obs::GetCounter("serve.deadline_exceeded");
    obs::Add(c, 1);
  }
}

refine::RerankSpec MemoryIndexService::SpecFor(const QuerySpec& q) const {
  return {q.rerank,
          refine::SanitizeRequestedMode(q.rerank_mode, index_.stores_vectors(),
                                        index_.linkcode() != nullptr)};
}

QueryResult MemoryIndexService::Search(const QuerySpec& q) const {
  auto res = index_.Search(q.query, q.k, {q.beam_width, q.k, DeadlineFor(q)},
                           mode_, SpecFor(q), q.trace);
  QueryResult out{std::move(res.results), res.stats, 0.0};
  NoteDeadline(&out);
  return out;
}

void MemoryIndexService::SearchBatch(const QuerySpec* qs, size_t n,
                                     QueryResult* out) const {
  // The index's batch path only amortizes across uniform
  // (k, beam, rerank request) runs; split the batch into maximal such runs
  // (batcher batches almost always are one run).
  size_t i = 0;
  std::vector<const float*> queries;
  while (i < n) {
    size_t j = i;
    while (j < n && qs[j].k == qs[i].k &&
           qs[j].beam_width == qs[i].beam_width &&
           qs[j].rerank == qs[i].rerank &&
           qs[j].rerank_mode == qs[i].rerank_mode &&
           qs[j].deadline_us == qs[i].deadline_us) {
      ++j;
    }
    queries.clear();
    for (size_t t = i; t < j; ++t) queries.push_back(qs[t].query);
    auto res = index_.SearchBatch(
        queries.data(), queries.size(), qs[i].k,
        {qs[i].beam_width, qs[i].k, DeadlineFor(qs[i])}, mode_, SpecFor(qs[i]),
        qs[i].trace);
    for (size_t t = i; t < j; ++t) {
      out[t] = {std::move(res[t - i].results), res[t - i].stats, 0.0};
      NoteDeadline(&out[t]);
    }
    i = j;
  }
}

QueryResult DiskIndexService::Search(const QuerySpec& q) const {
  auto res = index_.Search(q.query, q.k, {q.beam_width, q.k, DeadlineFor(q)},
                           q.trace, {q.io_width, q.readahead});
  QueryResult out{std::move(res.results), res.stats,
                  res.io.simulated_seconds};
  // Degradation can come from the deadline OR from a block that stayed
  // unreadable through retries; DiskSearchResult::degraded covers both.
  out.degraded = res.degraded;
  NoteDeadline(&out);
  return out;
}

QueryResult FreshVamanaService::Search(const QuerySpec& q) const {
  QueryResult out;
  out.results = index_.Search(q.query, q.k, q.beam_width);
  return out;
}

QueryResult ExactService::Search(const QuerySpec& q) const {
  QueryResult out;
  TopK top(q.k);
  for (uint32_t v = 0; v < data_.size(); ++v) {
    top.Push(SquaredL2(q.query, data_[v], data_.dim()), v);
  }
  out.stats.dist_comps = data_.size();
  out.results = top.Take();
  return out;
}

}  // namespace rpq::serve
