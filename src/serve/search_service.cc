#include "serve/search_service.h"

#include "common/distance.h"

namespace rpq::serve {

refine::RerankSpec MemoryIndexService::SpecFor(const QuerySpec& q) const {
  return {q.rerank,
          refine::SanitizeRequestedMode(q.rerank_mode, index_.stores_vectors(),
                                        index_.linkcode() != nullptr)};
}

QueryResult MemoryIndexService::Search(const QuerySpec& q) const {
  auto res = index_.Search(q.query, q.k, {q.beam_width, q.k}, mode_,
                           SpecFor(q), q.trace);
  return {std::move(res.results), res.stats, 0.0};
}

void MemoryIndexService::SearchBatch(const QuerySpec* qs, size_t n,
                                     QueryResult* out) const {
  // The index's batch path only amortizes across uniform
  // (k, beam, rerank request) runs; split the batch into maximal such runs
  // (batcher batches almost always are one run).
  size_t i = 0;
  std::vector<const float*> queries;
  while (i < n) {
    size_t j = i;
    while (j < n && qs[j].k == qs[i].k &&
           qs[j].beam_width == qs[i].beam_width &&
           qs[j].rerank == qs[i].rerank &&
           qs[j].rerank_mode == qs[i].rerank_mode) {
      ++j;
    }
    queries.clear();
    for (size_t t = i; t < j; ++t) queries.push_back(qs[t].query);
    auto res = index_.SearchBatch(queries.data(), queries.size(), qs[i].k,
                                  {qs[i].beam_width, qs[i].k}, mode_,
                                  SpecFor(qs[i]), qs[i].trace);
    for (size_t t = i; t < j; ++t) {
      out[t] = {std::move(res[t - i].results), res[t - i].stats, 0.0};
    }
    i = j;
  }
}

QueryResult DiskIndexService::Search(const QuerySpec& q) const {
  auto res = index_.Search(q.query, q.k, {q.beam_width, q.k}, q.trace);
  return {std::move(res.results), res.stats, res.io.simulated_seconds};
}

QueryResult FreshVamanaService::Search(const QuerySpec& q) const {
  QueryResult out;
  out.results = index_.Search(q.query, q.k, q.beam_width);
  return out;
}

QueryResult ExactService::Search(const QuerySpec& q) const {
  QueryResult out;
  TopK top(q.k);
  for (uint32_t v = 0; v < data_.size(); ++v) {
    top.Push(SquaredL2(q.query, data_[v], data_.dim()), v);
  }
  out.stats.dist_comps = data_.size();
  out.results = top.Take();
  return out;
}

}  // namespace rpq::serve
