// Load generator for the serving subsystem.
//
// Two standard modes:
//  - Closed loop: T client threads each issue queries back-to-back; measures
//    saturated throughput and service latency (no queueing).
//  - Open loop: queries arrive on a Poisson (or fixed-interval) schedule
//    independent of completions and run through a ServingEngine; measured
//    latency includes queueing delay, so it shows what a target arrival
//    rate actually costs — the honest way to report p99 under load.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "serve/engine.h"

namespace rpq::serve {

/// Latency distribution summary, in milliseconds.
struct LatencySummary {
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Computes the summary from raw per-query latencies (seconds).
LatencySummary SummarizeLatencies(std::vector<double> seconds);

struct LoadgenOptions {
  size_t k = 10;
  size_t beam_width = 64;
  size_t threads = 4;        ///< closed loop: client threads
  size_t total_queries = 0;  ///< 0 = one pass over the query set
  double arrival_qps = 0;    ///< open loop: target arrival rate (required)
  bool poisson = true;       ///< open loop: exponential vs fixed interarrival
  uint64_t seed = 42;
};

struct LoadReport {
  size_t completed = 0;
  double wall_seconds = 0;
  double qps = 0;              ///< completed / wall
  double offered_qps = 0;      ///< open loop: the arrival rate requested
  LatencySummary latency;
  double mean_hops = 0;
  double simulated_io_seconds = 0;  ///< summed across queries (hybrid disk)
};

/// Closed loop: `threads` clients issue queries round-robin from `queries`
/// until `total_queries` completions. Per-query latency is service time.
LoadReport RunClosedLoop(const SearchService& service, const Dataset& queries,
                         const LoadgenOptions& options);

/// Open loop: submits queries to the engine on the arrival schedule and
/// waits for all completions. Latency is arrival-to-completion (queueing
/// included). `options.arrival_qps` must be > 0.
LoadReport RunOpenLoop(const ServingEngine& engine, const Dataset& queries,
                       const LoadgenOptions& options);

/// Prints a report as one aligned row (label as the prefix).
void PrintReport(const char* label, const LoadReport& report);

}  // namespace rpq::serve
