// Load generator for the serving subsystem.
//
// Two standard modes:
//  - Closed loop: T client threads each issue queries back-to-back; measures
//    saturated throughput and service latency (no queueing).
//  - Open loop: queries arrive on a Poisson (or fixed-interval) schedule
//    independent of completions and run through a ServingEngine; measured
//    latency includes queueing delay, so it shows what a target arrival
//    rate actually costs — the honest way to report p99 under load.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "obs/metrics.h"
#include "serve/engine.h"

namespace rpq::serve {

/// Latency distribution summary, in milliseconds.
struct LatencySummary {
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Computes the summary from raw per-query latencies (seconds) — the exact
/// (sorted-vector) reference. The load generators no longer retain samples;
/// this stays for callers that do, and as the reference the histogram
/// summary is tested against.
LatencySummary SummarizeLatencies(std::vector<double> seconds);

/// Computes the summary from a latency histogram in NANOSECONDS (what the
/// load generators accumulate — bounded memory regardless of run length).
/// mean/max are exact; percentiles are within one bucket width (~12.5%) of
/// SummarizeLatencies on the same samples.
LatencySummary SummarizeHistogramNanos(const obs::HistogramData& hist);

struct LoadgenOptions {
  size_t k = 10;
  size_t beam_width = 64;
  size_t threads = 4;        ///< closed loop: client threads
  size_t total_queries = 0;  ///< 0 = one pass over the query set
  double arrival_qps = 0;    ///< open loop: target arrival rate (required)
  bool poisson = true;       ///< open loop: exponential vs fixed interarrival
  /// Open loop: > 1 routes arrivals through a MicroBatcher of this max batch
  /// size instead of per-query engine dispatch (occupancy shows up in the
  /// serve.batch_occupancy metric). 0/1 = unbatched.
  size_t batch = 0;
  uint64_t seed = 42;
  /// Per-query latency budget forwarded as QuerySpec::deadline_us (0 = none).
  uint64_t deadline_us = 0;
};

struct LoadReport {
  size_t completed = 0;
  double wall_seconds = 0;
  double qps = 0;              ///< completed / wall
  double offered_qps = 0;      ///< open loop: the arrival rate requested
  LatencySummary latency;
  double mean_hops = 0;
  double simulated_io_seconds = 0;  ///< summed across queries (hybrid disk)
  /// Degradation tallies (QueryResult flags, counted per query). `completed`
  /// counts every query INCLUDING shed ones — answered = completed - shed.
  /// Shed queries are excluded from the latency summary (nothing was served).
  size_t degraded = 0;           ///< any degradation flag set
  size_t shed = 0;               ///< refused by admission control
  size_t deadline_exceeded = 0;  ///< truncated at the deadline
  size_t hedged = 0;             ///< queries that issued a hedge request
  size_t shards_lost = 0;        ///< summed across queries (fan-out merges)
};

/// Closed loop: `threads` clients issue queries round-robin from `queries`
/// until `total_queries` completions. Per-query latency is service time.
LoadReport RunClosedLoop(const SearchService& service, const Dataset& queries,
                         const LoadgenOptions& options);

/// Open loop: submits queries to the engine on the arrival schedule and
/// waits for all completions. Latency is arrival-to-completion (queueing
/// included). `options.arrival_qps` must be > 0.
LoadReport RunOpenLoop(const ServingEngine& engine, const Dataset& queries,
                       const LoadgenOptions& options);

/// Prints a report as one aligned row (label as the prefix).
void PrintReport(const char* label, const LoadReport& report);

}  // namespace rpq::serve
