// Query-serving abstraction: every index backend (in-memory ADC, hybrid
// disk, streaming FreshVamana, exact reference) presents the same
// SearchService interface, and everything above it — the serving engine, the
// shard fan-out, the micro-batcher, the load generator — is written once
// against that interface.
//
// The contract that makes the whole subsystem work: Search()/SearchBatch()
// are const AND thread-safe. Backends keep per-query scratch on the stack or
// in thread-local storage (graph::TlsVisitedTable); FreshVamanaService
// additionally rides FreshVamanaIndex's shared-lock epochs so readers stay
// wait-free with respect to each other during streaming updates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/deadline.h"
#include "common/topk.h"
#include "core/memory_index.h"
#include "data/dataset.h"
#include "disk/disk_index.h"
#include "graph/fresh_vamana.h"

namespace rpq::serve {

/// One query as the serving layer sees it (the batcher groups these).
struct QuerySpec {
  const float* query = nullptr;
  size_t k = 10;
  size_t beam_width = 64;  ///< beam for graph backends, nprobe for IVF
  /// Refinement request (width + stage), forwarded to backends with a
  /// rerank epilogue (FastScan memory, IVF); zero/kAuto defers to the
  /// backend's configured defaults. Other backends ignore it.
  size_t rerank = 0;
  refine::RerankMode rerank_mode = refine::RerankMode::kAuto;
  /// When set, receives per-stage spans for this query (obs/trace.h). The
  /// pointee must outlive the query; batched execution accumulates a whole
  /// batch's spans into each query's trace only when they share one.
  obs::QueryTrace* trace = nullptr;
  /// Per-query latency budget in microseconds (0 = none). Backends check it
  /// at stage boundaries (per beam hop / probed cell) and return the best
  /// partial answer found so far with QueryResult::degraded set — a late
  /// query is truncated, never blocked on.
  uint64_t deadline_us = 0;
  /// Async disk knobs (hybrid backend only; others ignore them): beam
  /// expansions submitted per I/O wave and speculative readahead reads per
  /// wave. 0 defers to the index's build-time defaults (disk/disk_index.h).
  size_t io_width = 0;
  size_t readahead = 0;
};

/// What one served query returned, plus its costs.
struct QueryResult {
  std::vector<Neighbor> results;       ///< ascending by (distance, id)
  graph::SearchStats stats;
  double simulated_io_seconds = 0.0;   ///< hybrid-disk backends only
  /// The answer is partial or approximate beyond the configured knobs: the
  /// deadline fired, a block stayed unreadable, a shard was lost, or the
  /// engine shed the query outright.
  bool degraded = false;
  bool deadline_exceeded = false;  ///< a stage stopped at the deadline
  bool shed = false;               ///< refused by admission control (empty)
  uint32_t shards_lost = 0;        ///< fan-out shards that missed the merge
  bool hedged = false;             ///< a hedge request was issued
};

/// Builds the value-type deadline a backend threads through its stages.
inline Deadline DeadlineFor(const QuerySpec& q) {
  return Deadline::AfterMicros(q.deadline_us);
}

/// Folds SearchStats::deadline_hit into the result's degradation flags and
/// the serve.deadline_exceeded counter; every service funnels through this
/// after its index-level search returns.
void NoteDeadline(QueryResult* r);

/// Thread-safe search front end over one index backend.
class SearchService {
 public:
  virtual ~SearchService() = default;

  /// Serves one query. Must be safe to call from any number of threads.
  virtual QueryResult Search(const QuerySpec& q) const = 0;

  /// Serves a batch back-to-back on the calling thread. Backends override
  /// this when consecutive queries share amortizable work (ADC table
  /// builds, cache-resident codebooks); results must match per-query Search.
  virtual void SearchBatch(const QuerySpec* qs, size_t n,
                           QueryResult* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = Search(qs[i]);
  }
};

/// In-memory ADC/SDC backend (core::MemoryIndex is borrowed).
class MemoryIndexService : public SearchService {
 public:
  explicit MemoryIndexService(const core::MemoryIndex& index,
                              core::DistanceMode mode = core::DistanceMode::kAdc)
      : index_(index), mode_(mode) {}

  QueryResult Search(const QuerySpec& q) const override;
  void SearchBatch(const QuerySpec* qs, size_t n,
                   QueryResult* out) const override;

 private:
  /// The query's refinement request, with stages the index cannot serve
  /// degraded to kAuto (bad per-query knobs must not abort the server).
  refine::RerankSpec SpecFor(const QuerySpec& q) const;

  const core::MemoryIndex& index_;
  core::DistanceMode mode_;
};

/// Hybrid disk backend (disk::DiskIndex is borrowed).
class DiskIndexService : public SearchService {
 public:
  explicit DiskIndexService(const disk::DiskIndex& index) : index_(index) {}

  QueryResult Search(const QuerySpec& q) const override;

 private:
  const disk::DiskIndex& index_;
};

/// Streaming backend: reads coordinate with Insert/Delete/Consolidate via
/// the index's internal shared-lock epochs (the index is borrowed).
class FreshVamanaService : public SearchService {
 public:
  explicit FreshVamanaService(const graph::FreshVamanaIndex& index)
      : index_(index) {}

  QueryResult Search(const QuerySpec& q) const override;

 private:
  const graph::FreshVamanaIndex& index_;
};

/// Brute-force exact scan over a borrowed dataset; the reference backend for
/// merge/equality tests and tiny deployments.
class ExactService : public SearchService {
 public:
  explicit ExactService(const Dataset& data) : data_(data) {}

  QueryResult Search(const QuerySpec& q) const override;

 private:
  const Dataset& data_;
};

/// Adapts an arbitrary thread-safe callable — e.g. the eval harness's
/// SearchFn closures — so it can be replayed through the serving engine.
class FunctionService : public SearchService {
 public:
  using Fn = std::function<QueryResult(const QuerySpec&)>;
  explicit FunctionService(Fn fn) : fn_(std::move(fn)) {}

  QueryResult Search(const QuerySpec& q) const override { return fn_(q); }

 private:
  Fn fn_;
};

}  // namespace rpq::serve
