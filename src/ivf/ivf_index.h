// IVF (inverted-file) partitioned index — the first non-graph retrieval path.
//
// A k-means coarse quantizer splits the corpus into nlist cells; each cell
// stores its members' PQ codes in the FastScan blocked-transposed layout
// (quant::PackedCodes) plus their global ids. A query routes to the nprobe
// nearest cells (one fused simd::L2ToMany pass over the centroid table) and
// scores every code in them with register-resident LUT shuffles
// (simd::AdcFastScan) — the flat-scan regime where the blocked layout is at
// its best (~8x per code over gathered float-ADC): no per-candidate
// branching, no visited table, pure sequential blocks. The top `rerank`
// candidates by u8 estimate are then re-scored with the float ADC table
// (or, when the index retains raw vectors, exact squared L2) before top-k.
//
// Two quality upgrades compose on top of the 4-bit flat regime, both staying
// on the shuffle-kernel path:
//   * K = 256 split tables — a split-trained quantizer (quant/split.h)
//     stores full 8-bit codes whose blocks the 4-bit kernels score as two
//     nibble planes (simd::AdcFastScanSplit, 2x the per-code cost), plus one
//     stored float per vector for the query-independent cross term.
//   * Residual IVFADC (IvfOptions.residual) — codes quantize x - centroid
//     of the owning cell, and each probed cell gets its own lookup table
//     built from q - centroid, so estimates approximate the same
//     || q - x_hat ||^2 across cells. The per-probed-cell LUT build is the
//     price of the sharper codes (see BM_IvfResidualLutBuild); SearchBatch
//     still scans each cell's blocks once for all queries probing it.
//
// Compared to the graph indexes this trades hops for scans: recall is
// controlled by nprobe instead of beam width, inserts are O(m) list appends
// with NO graph repair, and batches of queries probing the same cell share
// each packed block while it is register-resident
// (simd::AdcFastScanMulti — see SearchBatch).
//
// Concurrency: Search/SearchBatch are const and take the reader side of a
// writer-priority rwlock; Insert takes the writer side. Any number of
// threads may search while inserts interleave (the same contract FreshVamana
// serves streaming updates under).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/rwlock.h"
#include "common/status.h"
#include "common/topk.h"
#include "data/dataset.h"
#include "obs/trace.h"
#include "quant/fastscan.h"
#include "quant/quantizer.h"
#include "refine/refine.h"

namespace rpq::ivf {

/// Build-time knobs.
struct IvfOptions {
  size_t nlist = 64;        ///< coarse cells (clamped to the corpus size)
  size_t kmeans_iters = 20; ///< coarse-quantizer Lloyd iterations
  uint64_t seed = 17;
  /// Rows used to train the coarse quantizer (0 = all). Assignment always
  /// covers every row; sampling only caps the k-means cost on large corpora.
  size_t train_sample = 0;
  /// Retain the raw float rows per list: ~4*dim bytes/vector buys an EXACT
  /// rerank of the top candidates instead of the float-ADC one, lifting the
  /// recall ceiling past what the 4-bit codes alone can reach.
  bool store_vectors = false;
  size_t default_nprobe = 8; ///< used when IvfSearchOptions.nprobe == 0
  /// Residual IVFADC: encode x - centroid(cell) instead of x. The residual
  /// spans a much tighter ball than the raw corpus, so the same code budget
  /// quantizes far more sharply; the cost is one lookup-table build per
  /// (query, probed cell) because estimates must come from q - centroid.
  bool residual = false;
};

/// Query-time knobs.
struct IvfSearchOptions {
  size_t nprobe = 0;  ///< cells probed; 0 = index default, clamped to nlist
  /// Candidates re-scored before top-k; 0 = the shared auto rule
  /// (refine::EffectiveRerankWidth: max(2k, 32)). The pre-rerank candidate
  /// ranking is bit-identical across SIMD backends (integer LUT sums).
  size_t rerank = 0;
  /// Refinement stage for the kept candidates. kAuto = exact when the index
  /// stores raw rows, float-ADC otherwise; kExact requires
  /// IvfOptions.store_vectors; kLinkCode is a graph-side stage and is
  /// rejected here (IVF cells carry no adjacency to regress over).
  refine::RerankMode rerank_mode = refine::RerankMode::kAuto;
  /// When set, receives per-stage spans (route / scan / refine / merge);
  /// SearchBatch accumulates the whole batch's spans into the one trace.
  obs::QueryTrace* trace = nullptr;
  /// Optional budget: checked once per probed cell; on expiry the remaining
  /// cells are skipped and IvfStats::deadline_hit is set — the candidates
  /// already scanned still refine and rank normally.
  Deadline deadline;
};

/// Per-query cost counters (the IVF analogue of graph::SearchStats).
struct IvfStats {
  size_t lists_probed = 0;
  size_t codes_scanned = 0;  ///< codes scored with the u8 estimator
  bool deadline_hit = false;  ///< probing stopped early at the deadline
};

struct IvfSearchResult {
  std::vector<Neighbor> results;  ///< ascending by (distance, id)
  IvfStats stats;
};

/// Inverted-file index over a borrowed FastScan-capable quantizer: either
/// 4-bit (K <= 16) or split-trained K = 256 (quant::PqQuantizer with a
/// SplitPqModel attached).
class IvfIndex {
 public:
  /// Trains the coarse quantizer on `base`, encodes every row, and fills the
  /// lists. Row i keeps global id i (Insert continues the sequence).
  static std::unique_ptr<IvfIndex> Build(const Dataset& base,
                                         const quant::VectorQuantizer& quantizer,
                                         const IvfOptions& options = {});

  /// The coarse-quantizer training step of Build, exposed on its own: the
  /// k-means centroids (nlist' x dim, nlist' <= options.nlist) for `base`.
  /// Deterministic in (base, options), so a deployment that persists only
  /// the PQ model can re-derive identical routing instead of shipping the
  /// centroid table.
  static std::vector<float> TrainCoarse(const Dataset& base,
                                        const IvfOptions& options = {});

  /// Build over precomputed coarse centroids — TrainCoarse + this == Build.
  static std::unique_ptr<IvfIndex> BuildWithCentroids(
      const Dataset& base, std::vector<float> centroids,
      const quant::VectorQuantizer& quantizer, const IvfOptions& options = {});

  /// Empty index over precomputed coarse centroids (nlist x dim, row-major)
  /// — the streaming start: lists fill through Insert alone.
  static std::unique_ptr<IvfIndex> CreateEmpty(
      std::vector<float> centroids, size_t dim,
      const quant::VectorQuantizer& quantizer, const IvfOptions& options = {});

  /// Appends one vector (returns its global id). O(code_size) list append —
  /// no graph repair; safe to interleave with concurrent Search calls.
  uint32_t Insert(const float* vec);

  IvfSearchResult Search(const float* query, size_t k,
                         const IvfSearchOptions& options = {}) const;

  /// Serves nq queries in one pass with multi-query LUT batching: queries
  /// are routed first, then each probed list is scanned ONCE against all the
  /// queries that routed to it (simd::AdcFastScanMulti keeps every packed
  /// block register-resident across their LUTs). Results are identical to
  /// per-query Search — candidate sums are bit-identical and selection is a
  /// strict (distance, id) order, so grouping cannot change top-k.
  std::vector<IvfSearchResult> SearchBatch(
      const float* const* queries, size_t nq, size_t k,
      const IvfSearchOptions& options = {}) const;

  size_t nlist() const { return nlist_; }
  size_t dim() const { return dim_; }
  size_t size() const;  ///< total indexed vectors (locks)
  size_t list_size(size_t l) const;
  bool stores_vectors() const { return options_.store_vectors; }
  bool residual() const { return options_.residual; }
  const quant::VectorQuantizer& quantizer() const { return quantizer_; }
  const std::vector<float>& centroids() const { return centroids_; }

  /// Centroids + ids + codes (unpacked and packed) + retained vectors.
  size_t MemoryBytes() const;

  /// Persists centroids, options, and list contents (not the quantizer —
  /// pair with quant::SaveQuantizer, as MemoryIndex deployments do).
  /// Format (little-endian), version 2:
  ///   magic "RPQI" | u32 version | u32 dim | u32 nlist | u32 code_size
  ///   | u8 store_vectors | u8 residual | u32 default_nprobe | u64 num_codes
  ///   | centroids f32[nlist*dim]
  ///   | per list: u64 count | u32 ids[count] | u8 codes[count*code_size]
  ///               | f32 vectors[count*dim] (iff store_vectors)
  /// Version 1 (no residual byte, residual = false) loads unchanged. The
  /// packed blocks and the split cross constants are rebuilt from the codes
  /// at load time, so the on-disk list payload is layout-independent.
  Status Save(const std::string& path) const;

  /// Loads an index written by Save; `quantizer` must match the saved shape
  /// (code_size, and FastScan-capable: K <= 16 or split) and is borrowed
  /// like in Build.
  static Result<std::unique_ptr<IvfIndex>> Load(
      const std::string& path, const quant::VectorQuantizer& quantizer);

 private:
  /// One coarse cell: ids + codes in both layouts (+ optional raw rows).
  /// Unpacked codes serve the rerank pass and persistence; packed blocks
  /// serve the scan. The tail block's padding slots are zero and simply
  /// ignored (sums past list size are never read). In the split regime the
  /// packed blocks hold the nibble-expanded layout (2 x code_size rows) and
  /// `cross` carries each vector's query-independent cross constant.
  struct InvertedList {
    std::vector<uint32_t> ids;
    std::vector<uint8_t> codes;   ///< count x code_size, byte per chunk
    quant::PackedCodes packed;
    std::vector<float> vectors;   ///< count x dim iff store_vectors
    std::vector<float> cross;     ///< count floats iff split quantizer
  };

  IvfIndex(const quant::VectorQuantizer& quantizer, const IvfOptions& options,
           size_t dim, std::vector<float> centroids);

  /// True when the borrowed quantizer is split-trained (K = 256 scored
  /// through the split kernels; lists carry expanded blocks + cross).
  bool split() const { return quantizer_.split_model() != nullptr; }

  size_t EffectiveNprobe(const IvfSearchOptions& options) const;

  /// The `nprobe` nearest cells by (centroid distance, list id), ascending.
  void RouteLists(const float* query, size_t nprobe,
                  std::vector<uint32_t>* out) const;

  /// Rebuilds one list's packed blocks (and split cross constants) from its
  /// unpacked codes — Build and Load share it.
  void RepackList(InvertedList& list) const;

  /// Appends one unpacked code to a list's packed blocks (+ cross).
  void AppendPacked(InvertedList& list, const uint8_t* code) const;

  /// Feeds one list's u16 sums into the shared bounded candidate buffer;
  /// each candidate's tag records (list << 32) | position so the refinement
  /// stage can find its code / raw row / centroid. `cross` is the list's
  /// per-vector cross constants in the split regime, null otherwise; the
  /// non-null branch is separate so the 4-bit path's float sequence stays
  /// bit-identical to what it was before the split regime existed.
  static void PushCandidates(float bias, float scale, const uint16_t* sums,
                             const float* cross, uint32_t list, size_t count,
                             const std::vector<uint32_t>& ids,
                             refine::CandidateBuffer* buffer);

  /// Shared refinement epilogue: re-scores the kept candidates with the
  /// requested refine::Refiner stage into sorted top-k. `lut` backs the
  /// non-residual kAdc stage and is null in the residual regime, where kAdc
  /// resolves to refine::ResidualAdcRefiner (decode + centroid add).
  IvfSearchResult FinishQuery(const float* query, const quant::DistanceLut* lut,
                              refine::CandidateBuffer& buffer, size_t k,
                              refine::RerankMode mode, IvfStats stats,
                              obs::QueryTrace* trace) const;

  const quant::VectorQuantizer& quantizer_;
  IvfOptions options_;
  size_t dim_;
  size_t nlist_;
  std::vector<float> centroids_;  ///< nlist x dim, immutable after creation
  std::vector<InvertedList> lists_;
  size_t num_codes_ = 0;
  mutable WriterPriorityMutex mu_;  ///< readers: Search*, writer: Insert
};

}  // namespace rpq::ivf
