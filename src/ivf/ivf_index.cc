#include "ivf/ivf_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <shared_mutex>

#include "common/file_io.h"
#include "common/logging.h"
#include "quant/adc.h"
#include "quant/kmeans.h"
#include "simd/simd.h"

namespace rpq::ivf {
namespace {

// Candidate selection rides refine::CandidateBefore's strict total order on
// (estimate, id) — the kept set is independent of scan order, which is what
// lets SearchBatch's grouped list traversal reproduce per-query Search
// exactly.
using refine::CandidateBefore;

using io::FilePtr;
using io::ReadAll;
using io::WriteAll;

constexpr char kMagic[4] = {'R', 'P', 'Q', 'I'};
constexpr uint32_t kVersion = 1;

}  // namespace

IvfIndex::IvfIndex(const quant::VectorQuantizer& quantizer,
                   const IvfOptions& options, size_t dim,
                   std::vector<float> centroids)
    : quantizer_(quantizer),
      options_(options),
      dim_(dim),
      nlist_(centroids.size() / dim),
      centroids_(std::move(centroids)) {
  RPQ_CHECK(nlist_ > 0);
  lists_.resize(nlist_);
  for (auto& list : lists_) {
    list.packed = quant::PackedCodes::Pack(nullptr, 0, quantizer_.code_size());
  }
}

std::unique_ptr<IvfIndex> IvfIndex::Build(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    const IvfOptions& options) {
  RPQ_CHECK(!base.empty());
  RPQ_CHECK_EQ(base.dim(), quantizer.dim());
  RPQ_CHECK(quantizer.num_centroids() <= 16 &&
            "IVF FastScan lists need a 4-bit quantizer (K <= 16)");

  quant::KMeansOptions kopt;
  kopt.k = std::max<size_t>(1, options.nlist);
  kopt.max_iters = options.kmeans_iters;
  kopt.seed = options.seed;
  size_t train_n = base.size();
  if (options.train_sample > 0) {
    train_n = std::min(train_n, options.train_sample);
  }
  auto km = quant::RunKMeans(base.data(), train_n, base.dim(), kopt);
  const size_t nlist = km.centroids.size() / base.dim();

  std::unique_ptr<IvfIndex> index(
      new IvfIndex(quantizer, options, base.dim(), std::move(km.centroids)));

  // Assignment is one NearestCentroid pass over the FINAL centroids — not
  // the k-means result's assignment, which is stale by one update step. A
  // vector must live in the cell query-time routing maps it to, or a
  // nprobe = 1 probe of the right centroid could miss it.
  std::vector<uint32_t> assign(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    assign[i] = quant::NearestCentroid(base[i], index->centroids_.data(), nlist,
                                       base.dim());
  }

  std::vector<uint8_t> codes = quantizer.EncodeDataset(base);
  const size_t m = quantizer.code_size();

  std::vector<size_t> counts(nlist, 0);
  for (uint32_t a : assign) ++counts[a];
  for (size_t l = 0; l < nlist; ++l) {
    auto& list = index->lists_[l];
    list.ids.reserve(counts[l]);
    list.codes.reserve(counts[l] * m);
    if (options.store_vectors) list.vectors.reserve(counts[l] * base.dim());
  }
  for (size_t i = 0; i < base.size(); ++i) {
    auto& list = index->lists_[assign[i]];
    list.ids.push_back(static_cast<uint32_t>(i));
    list.codes.insert(list.codes.end(), codes.begin() + i * m,
                      codes.begin() + (i + 1) * m);
    if (options.store_vectors) {
      list.vectors.insert(list.vectors.end(), base[i], base[i] + base.dim());
    }
  }
  for (auto& list : index->lists_) {
    list.packed = quant::PackedCodes::Pack(list.codes.data(), list.ids.size(), m);
  }
  index->num_codes_ = base.size();
  return index;
}

std::unique_ptr<IvfIndex> IvfIndex::CreateEmpty(
    std::vector<float> centroids, size_t dim,
    const quant::VectorQuantizer& quantizer, const IvfOptions& options) {
  RPQ_CHECK(dim > 0);
  RPQ_CHECK_EQ(dim, quantizer.dim());
  RPQ_CHECK(!centroids.empty() && centroids.size() % dim == 0);
  RPQ_CHECK(quantizer.num_centroids() <= 16 &&
            "IVF FastScan lists need a 4-bit quantizer (K <= 16)");
  return std::unique_ptr<IvfIndex>(
      new IvfIndex(quantizer, options, dim, std::move(centroids)));
}

uint32_t IvfIndex::Insert(const float* vec) {
  // Encode and route outside the lock — both read immutable state only.
  thread_local std::vector<uint8_t> code;
  code.resize(quantizer_.code_size());
  quantizer_.Encode(vec, code.data());
  const uint32_t l =
      quant::NearestCentroid(vec, centroids_.data(), nlist_, dim_);

  std::unique_lock<WriterPriorityMutex> lock(mu_);
  InvertedList& list = lists_[l];
  const uint32_t id = static_cast<uint32_t>(num_codes_++);
  list.ids.push_back(id);
  list.codes.insert(list.codes.end(), code.begin(), code.end());
  list.packed.Append(code.data());
  if (options_.store_vectors) {
    list.vectors.insert(list.vectors.end(), vec, vec + dim_);
  }
  return id;
}

size_t IvfIndex::EffectiveNprobe(const IvfSearchOptions& options) const {
  size_t nprobe = options.nprobe > 0 ? options.nprobe : options_.default_nprobe;
  return std::min(std::max<size_t>(nprobe, 1), nlist_);
}

void IvfIndex::RouteLists(const float* query, size_t nprobe,
                          std::vector<uint32_t>* out) const {
  thread_local std::vector<float> d2;
  d2.resize(nlist_);
  simd::L2ToMany(query, centroids_.data(), nlist_, dim_, d2.data());
  out->resize(nlist_);
  for (uint32_t l = 0; l < nlist_; ++l) (*out)[l] = l;
  std::partial_sort(out->begin(), out->begin() + nprobe, out->end(),
                    [&](uint32_t a, uint32_t b) {
                      return CandidateBefore(d2[a], a, d2[b], b);
                    });
  out->resize(nprobe);
}

void IvfIndex::PushCandidates(const quant::FastScanTable& table,
                              const uint16_t* sums, uint32_t list, size_t count,
                              const std::vector<uint32_t>& ids,
                              refine::CandidateBuffer* buffer) {
  const float bias = table.bias(), scale = table.scale();
  for (size_t i = 0; i < count; ++i) {
    const float est = bias + scale * static_cast<float>(sums[i]);
    buffer->Push(est, ids[i], (uint64_t{list} << 32) | i);
  }
}

IvfSearchResult IvfIndex::FinishQuery(const float* query,
                                      const quant::DistanceLut& lut,
                                      refine::CandidateBuffer& buffer, size_t k,
                                      refine::RerankMode mode,
                                      IvfStats stats) const {
  IvfSearchResult out;
  out.stats = stats;
  mode = refine::ResolveAutoMode(mode, options_.store_vectors);
  if (mode == refine::RerankMode::kExact) {
    RPQ_CHECK(options_.store_vectors &&
              "RerankMode::kExact needs IvfOptions.store_vectors");
    refine::ExactRefiner refiner(
        query, dim_, [this](const refine::Candidate& c) {
          const InvertedList& list = lists_[c.tag >> 32];
          return list.vectors.data() + (c.tag & 0xffffffffu) * dim_;
        });
    out.results = refine::RefineTopK(buffer, refiner, k);
    return out;
  }
  RPQ_CHECK(mode == refine::RerankMode::kAdc &&
            "IVF refinement stages: adc or exact (LinkCode needs a graph)");
  const size_t m = quantizer_.code_size();
  refine::AdcRefiner refiner(lut, m, [this, m](const refine::Candidate& c) {
    const InvertedList& list = lists_[c.tag >> 32];
    return list.codes.data() + (c.tag & 0xffffffffu) * m;
  });
  out.results = refine::RefineTopK(buffer, refiner, k);
  return out;
}

IvfSearchResult IvfIndex::Search(const float* query, size_t k,
                                 const IvfSearchOptions& options) const {
  quant::AdcTable lut(quantizer_, query);
  quant::FastScanTable table(lut);
  thread_local std::vector<uint32_t> probe;
  thread_local std::vector<uint16_t> sums;
  RouteLists(query, EffectiveNprobe(options), &probe);

  refine::CandidateBuffer buffer(refine::EffectiveRerankWidth(options.rerank, k));
  IvfStats stats;

  std::shared_lock<WriterPriorityMutex> lock(mu_);
  for (uint32_t l : probe) {
    const InvertedList& list = lists_[l];
    ++stats.lists_probed;
    if (list.ids.empty()) continue;
    stats.codes_scanned += list.ids.size();
    const size_t n_blocks = list.packed.num_blocks();
    sums.resize(n_blocks * quant::PackedCodes::kBlockCodes);
    table.ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
    PushCandidates(table, sums.data(), l, list.ids.size(), list.ids, &buffer);
  }
  return FinishQuery(query, lut, buffer, k, options.rerank_mode, stats);
}

std::vector<IvfSearchResult> IvfIndex::SearchBatch(
    const float* const* queries, size_t nq, size_t k,
    const IvfSearchOptions& options) const {
  std::vector<IvfSearchResult> out(nq);
  if (nq == 0) return out;

  // All lookup tables are built before any scan (codebook stays
  // cache-resident — the same amortization MemoryIndex::SearchBatch does).
  std::vector<quant::AdcTable> luts;
  std::vector<quant::FastScanTable> tables;
  luts.reserve(nq);
  tables.reserve(nq);
  for (size_t q = 0; q < nq; ++q) {
    luts.emplace_back(quantizer_, queries[q]);
    tables.emplace_back(luts.back());
  }
  const size_t m2 = tables.front().padded_chunks();

  const size_t limit = refine::EffectiveRerankWidth(options.rerank, k);
  std::vector<refine::CandidateBuffer> buffers;
  buffers.reserve(nq);
  for (size_t q = 0; q < nq; ++q) buffers.emplace_back(limit);
  std::vector<IvfStats> stats(nq);

  std::shared_lock<WriterPriorityMutex> lock(mu_);
  const size_t nprobe = EffectiveNprobe(options);

  // Invert the routing into sorted (list, query) pairs — nq*nprobe of them,
  // grouped by list with one sort — so every probed list is scanned once
  // against all of its queries' LUTs. (A per-list bucket array would cost
  // nlist allocations per call and dominate small batches.) Scan scratch is
  // thread-local like Search's, so steady-state batches allocate only their
  // per-query state (tables, heaps, results).
  thread_local std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.clear();
  pairs.reserve(nq * nprobe);
  {
    thread_local std::vector<uint32_t> probe;
    for (size_t q = 0; q < nq; ++q) {
      RouteLists(queries[q], nprobe, &probe);
      for (uint32_t l : probe) pairs.emplace_back(l, static_cast<uint32_t>(q));
    }
  }
  std::sort(pairs.begin(), pairs.end());

  thread_local std::vector<uint8_t> luts_buf;
  thread_local std::vector<uint16_t> sums;
  for (size_t p0 = 0; p0 < pairs.size();) {
    const uint32_t l = pairs[p0].first;
    size_t p1 = p0;
    while (p1 < pairs.size() && pairs[p1].first == l) ++p1;
    const size_t group = p1 - p0;
    const InvertedList& list = lists_[l];
    for (size_t i = p0; i < p1; ++i) ++stats[pairs[i].second].lists_probed;
    if (list.ids.empty()) {
      p0 = p1;
      continue;
    }
    for (size_t i = p0; i < p1; ++i) {
      stats[pairs[i].second].codes_scanned += list.ids.size();
    }

    const size_t n_blocks = list.packed.num_blocks();
    const size_t stride = n_blocks * quant::PackedCodes::kBlockCodes;
    sums.resize(group * stride);
    if (group == 1) {
      tables[pairs[p0].second].ScanBlocks(list.packed.data.data(), n_blocks,
                                          sums.data());
    } else {
      luts_buf.resize(group * m2 * 16);
      for (size_t i = 0; i < group; ++i) {
        std::memcpy(luts_buf.data() + i * m2 * 16,
                    tables[pairs[p0 + i].second].lut8(), m2 * 16);
      }
      simd::AdcFastScanMulti(luts_buf.data(), group, m2,
                             list.packed.data.data(), n_blocks, sums.data());
    }
    for (size_t i = 0; i < group; ++i) {
      const uint32_t q = pairs[p0 + i].second;
      PushCandidates(tables[q], sums.data() + i * stride, l, list.ids.size(),
                     list.ids, &buffers[q]);
    }
    p0 = p1;
  }
  for (size_t q = 0; q < nq; ++q) {
    out[q] = FinishQuery(queries[q], luts[q], buffers[q], k,
                         options.rerank_mode, stats[q]);
  }
  return out;
}

size_t IvfIndex::size() const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  return num_codes_;
}

size_t IvfIndex::list_size(size_t l) const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  return lists_[l].ids.size();
}

size_t IvfIndex::MemoryBytes() const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  size_t total = centroids_.size() * sizeof(float);
  for (const auto& list : lists_) {
    total += list.ids.size() * sizeof(uint32_t) + list.codes.size() +
             list.packed.data.size() + list.vectors.size() * sizeof(float);
  }
  return total;
}

Status IvfIndex::Save(const std::string& path) const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint32_t dim = static_cast<uint32_t>(dim_);
  const uint32_t nlist = static_cast<uint32_t>(nlist_);
  const uint32_t code_size = static_cast<uint32_t>(quantizer_.code_size());
  const uint8_t store_vectors = options_.store_vectors ? 1 : 0;
  const uint32_t default_nprobe = static_cast<uint32_t>(options_.default_nprobe);
  const uint64_t num_codes = num_codes_;
  if (!WriteAll(f.get(), kMagic, 4) || !WriteAll(f.get(), &kVersion, 4) ||
      !WriteAll(f.get(), &dim, 4) || !WriteAll(f.get(), &nlist, 4) ||
      !WriteAll(f.get(), &code_size, 4) ||
      !WriteAll(f.get(), &store_vectors, 1) ||
      !WriteAll(f.get(), &default_nprobe, 4) ||
      !WriteAll(f.get(), &num_codes, 8) ||
      !WriteAll(f.get(), centroids_.data(),
                centroids_.size() * sizeof(float))) {
    return Status::IOError(path + ": header write failed");
  }
  for (const auto& list : lists_) {
    const uint64_t count = list.ids.size();
    if (!WriteAll(f.get(), &count, 8) ||
        !WriteAll(f.get(), list.ids.data(), count * sizeof(uint32_t)) ||
        !WriteAll(f.get(), list.codes.data(), list.codes.size()) ||
        (store_vectors != 0 &&
         !WriteAll(f.get(), list.vectors.data(),
                   list.vectors.size() * sizeof(float)))) {
      return Status::IOError(path + ": list write failed");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<IvfIndex>> IvfIndex::Load(
    const std::string& path, const quant::VectorQuantizer& quantizer) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  char magic[4];
  uint32_t version = 0, dim = 0, nlist = 0, code_size = 0, default_nprobe = 0;
  uint8_t store_vectors = 0;
  uint64_t num_codes = 0;
  if (!ReadAll(f.get(), magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError(path + ": not an RPQ IVF index file");
  }
  if (!ReadAll(f.get(), &version, 4) || version != kVersion) {
    return Status::IOError(path + ": unsupported version");
  }
  if (!ReadAll(f.get(), &dim, 4) || !ReadAll(f.get(), &nlist, 4) ||
      !ReadAll(f.get(), &code_size, 4) ||
      !ReadAll(f.get(), &store_vectors, 1) ||
      !ReadAll(f.get(), &default_nprobe, 4) ||
      !ReadAll(f.get(), &num_codes, 8)) {
    return Status::IOError(path + ": truncated header");
  }
  if (dim == 0 || nlist == 0 || code_size == 0) {
    return Status::IOError(path + ": invalid index shape");
  }
  if (dim != quantizer.dim() || code_size != quantizer.code_size() ||
      quantizer.num_centroids() > 16) {
    return Status::InvalidArgument(path +
                                   ": quantizer does not match saved index");
  }
  // Bound every header-declared size by what the file can actually hold
  // BEFORE allocating from it — a corrupt count must surface as IOError,
  // not as a std::length_error abort inside vector::resize.
  const long long bytes_left = io::BytesRemaining(f.get());
  const uint64_t row_bytes =
      sizeof(uint32_t) + code_size +
      (store_vectors != 0 ? uint64_t{dim} * sizeof(float) : 0);
  if (bytes_left < 0 ||
      num_codes > static_cast<uint64_t>(bytes_left) / row_bytes ||
      size_t{nlist} * dim >
          static_cast<uint64_t>(bytes_left) / sizeof(float)) {
    return Status::IOError(path + ": header sizes exceed file contents");
  }
  std::vector<float> centroids(size_t{nlist} * dim);
  if (!ReadAll(f.get(), centroids.data(), centroids.size() * sizeof(float))) {
    return Status::IOError(path + ": truncated centroids");
  }
  IvfOptions options;
  options.nlist = nlist;
  options.store_vectors = store_vectors != 0;
  options.default_nprobe = default_nprobe > 0 ? default_nprobe : 1;
  std::unique_ptr<IvfIndex> index(
      new IvfIndex(quantizer, options, dim, std::move(centroids)));
  uint64_t total = 0;
  for (auto& list : index->lists_) {
    uint64_t count = 0;
    if (!ReadAll(f.get(), &count, 8)) {
      return Status::IOError(path + ": truncated list header");
    }
    if (count > num_codes - total) {
      return Status::IOError(path + ": list counts exceed header total");
    }
    list.ids.resize(count);
    list.codes.resize(count * code_size);
    if (!ReadAll(f.get(), list.ids.data(), count * sizeof(uint32_t)) ||
        !ReadAll(f.get(), list.codes.data(), list.codes.size())) {
      return Status::IOError(path + ": truncated list data");
    }
    if (store_vectors != 0) {
      list.vectors.resize(count * dim);
      if (!ReadAll(f.get(), list.vectors.data(),
                   list.vectors.size() * sizeof(float))) {
        return Status::IOError(path + ": truncated list vectors");
      }
    }
    list.packed =
        quant::PackedCodes::Pack(list.codes.data(), count, code_size);
    total += count;
  }
  if (total != num_codes) {
    return Status::IOError(path + ": list totals disagree with header");
  }
  index->num_codes_ = num_codes;
  return index;
}

}  // namespace rpq::ivf
