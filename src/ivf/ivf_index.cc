#include "ivf/ivf_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <shared_mutex>

#include "common/file_io.h"
#include "common/logging.h"
#include "quant/adc.h"
#include "quant/kmeans.h"
#include "quant/split.h"
#include "simd/simd.h"

namespace rpq::ivf {
namespace {

// Candidate selection rides refine::CandidateBefore's strict total order on
// (estimate, id) — the kept set is independent of scan order, which is what
// lets SearchBatch's grouped list traversal reproduce per-query Search
// exactly.
using refine::CandidateBefore;

using io::FilePtr;
using io::ReadAll;
using io::WriteAll;

constexpr char kMagic[4] = {'R', 'P', 'Q', 'I'};
// v2 adds one u8 residual flag to the header; v1 files (no flag, residual
// regime did not exist) still load. v3 appends a CRC32 trailer over every
// preceding byte and is what Save now writes (atomically, temp+rename);
// v1/v2 files still load, un-checked. List payloads are identical across
// versions — packed blocks and split cross constants are derived state.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kMinVersion = 1;
constexpr uint32_t kCrcVersion = 3;

// Every distance estimate in the index flows through a FastScan-capable
// quantizer: plain 4-bit (K <= 16) or the K = 256 split regime.
bool FastScanCapable(const quant::VectorQuantizer& quantizer) {
  return quantizer.num_centroids() <= 16 ||
         quantizer.split_model() != nullptr;
}

// q - centroid, the query every residual-regime table is built from.
inline void ResidualQuery(const float* query, const float* centroid,
                          size_t dim, float* out) {
  for (size_t d = 0; d < dim; ++d) out[d] = query[d] - centroid[d];
}

}  // namespace

IvfIndex::IvfIndex(const quant::VectorQuantizer& quantizer,
                   const IvfOptions& options, size_t dim,
                   std::vector<float> centroids)
    : quantizer_(quantizer),
      options_(options),
      dim_(dim),
      nlist_(centroids.size() / dim),
      centroids_(std::move(centroids)) {
  RPQ_CHECK(nlist_ > 0);
  const size_t packed_size =
      split() ? 2 * quantizer_.code_size() : quantizer_.code_size();
  lists_.resize(nlist_);
  for (auto& list : lists_) {
    list.packed = quant::PackedCodes::Pack(nullptr, 0, packed_size);
  }
}

void IvfIndex::RepackList(InvertedList& list) const {
  const size_t m = quantizer_.code_size();
  const size_t count = list.ids.size();
  if (const quant::SplitPqModel* model = quantizer_.split_model()) {
    std::vector<uint8_t> expanded(count * 2 * m);
    list.cross.resize(count);
    for (size_t i = 0; i < count; ++i) {
      const uint8_t* code = list.codes.data() + i * m;
      quant::ExpandSplitCode(code, m, expanded.data() + i * 2 * m);
      list.cross[i] = model->CrossSum(code);
    }
    list.packed = quant::PackedCodes::Pack(expanded.data(), count, 2 * m);
  } else {
    list.packed = quant::PackedCodes::Pack(list.codes.data(), count, m);
  }
}

void IvfIndex::AppendPacked(InvertedList& list, const uint8_t* code) const {
  if (const quant::SplitPqModel* model = quantizer_.split_model()) {
    thread_local std::vector<uint8_t> expanded;
    const size_t m = quantizer_.code_size();
    expanded.resize(2 * m);
    quant::ExpandSplitCode(code, m, expanded.data());
    list.packed.Append(expanded.data());
    list.cross.push_back(model->CrossSum(code));
  } else {
    list.packed.Append(code);
  }
}

std::vector<float> IvfIndex::TrainCoarse(const Dataset& base,
                                         const IvfOptions& options) {
  RPQ_CHECK(!base.empty());
  quant::KMeansOptions kopt;
  kopt.k = std::max<size_t>(1, options.nlist);
  kopt.max_iters = options.kmeans_iters;
  kopt.seed = options.seed;
  size_t train_n = base.size();
  if (options.train_sample > 0) {
    train_n = std::min(train_n, options.train_sample);
  }
  auto km = quant::RunKMeans(base.data(), train_n, base.dim(), kopt);
  return std::move(km.centroids);
}

std::unique_ptr<IvfIndex> IvfIndex::Build(
    const Dataset& base, const quant::VectorQuantizer& quantizer,
    const IvfOptions& options) {
  return BuildWithCentroids(base, TrainCoarse(base, options), quantizer,
                            options);
}

std::unique_ptr<IvfIndex> IvfIndex::BuildWithCentroids(
    const Dataset& base, std::vector<float> centroids,
    const quant::VectorQuantizer& quantizer, const IvfOptions& options) {
  RPQ_CHECK(!base.empty());
  RPQ_CHECK_EQ(base.dim(), quantizer.dim());
  RPQ_CHECK(FastScanCapable(quantizer) &&
            "IVF FastScan lists need a 4-bit quantizer (K <= 16) or a "
            "split-trained K = 256 one (quant/split.h)");
  RPQ_CHECK(!centroids.empty() && centroids.size() % base.dim() == 0);
  const size_t nlist = centroids.size() / base.dim();

  std::unique_ptr<IvfIndex> index(
      new IvfIndex(quantizer, options, base.dim(), std::move(centroids)));

  // Assignment is one NearestCentroid pass over the FINAL centroids — not
  // the k-means result's assignment, which is stale by one update step. A
  // vector must live in the cell query-time routing maps it to, or a
  // nprobe = 1 probe of the right centroid could miss it.
  std::vector<uint32_t> assign(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    assign[i] = quant::NearestCentroid(base[i], index->centroids_.data(), nlist,
                                       base.dim());
  }

  std::vector<uint8_t> codes;
  if (options.residual) {
    // Residual IVFADC: every row quantizes against its OWN cell's centroid,
    // so the quantizer sees the tight residual ball instead of the corpus.
    const size_t dim = base.dim();
    std::vector<float> resid(base.size() * dim);
    for (size_t i = 0; i < base.size(); ++i) {
      ResidualQuery(base[i], index->centroids_.data() + assign[i] * dim, dim,
                    resid.data() + i * dim);
    }
    Dataset residual_set(base.size(), dim, std::move(resid));
    codes = quantizer.EncodeDataset(residual_set);
  } else {
    codes = quantizer.EncodeDataset(base);
  }
  const size_t m = quantizer.code_size();

  std::vector<size_t> counts(nlist, 0);
  for (uint32_t a : assign) ++counts[a];
  for (size_t l = 0; l < nlist; ++l) {
    auto& list = index->lists_[l];
    list.ids.reserve(counts[l]);
    list.codes.reserve(counts[l] * m);
    if (options.store_vectors) list.vectors.reserve(counts[l] * base.dim());
  }
  for (size_t i = 0; i < base.size(); ++i) {
    auto& list = index->lists_[assign[i]];
    list.ids.push_back(static_cast<uint32_t>(i));
    list.codes.insert(list.codes.end(), codes.begin() + i * m,
                      codes.begin() + (i + 1) * m);
    if (options.store_vectors) {
      list.vectors.insert(list.vectors.end(), base[i], base[i] + base.dim());
    }
  }
  for (auto& list : index->lists_) {
    index->RepackList(list);
  }
  index->num_codes_ = base.size();
  return index;
}

std::unique_ptr<IvfIndex> IvfIndex::CreateEmpty(
    std::vector<float> centroids, size_t dim,
    const quant::VectorQuantizer& quantizer, const IvfOptions& options) {
  RPQ_CHECK(dim > 0);
  RPQ_CHECK_EQ(dim, quantizer.dim());
  RPQ_CHECK(!centroids.empty() && centroids.size() % dim == 0);
  RPQ_CHECK(FastScanCapable(quantizer) &&
            "IVF FastScan lists need a 4-bit quantizer (K <= 16) or a "
            "split-trained K = 256 one (quant/split.h)");
  return std::unique_ptr<IvfIndex>(
      new IvfIndex(quantizer, options, dim, std::move(centroids)));
}

uint32_t IvfIndex::Insert(const float* vec) {
  // Encode and route outside the lock — both read immutable state only.
  // Residual mode must route FIRST: the code quantizes the offset from the
  // owning cell's centroid.
  thread_local std::vector<uint8_t> code;
  code.resize(quantizer_.code_size());
  const uint32_t l =
      quant::NearestCentroid(vec, centroids_.data(), nlist_, dim_);
  if (options_.residual) {
    thread_local std::vector<float> resid;
    resid.resize(dim_);
    ResidualQuery(vec, centroids_.data() + size_t{l} * dim_, dim_,
                  resid.data());
    quantizer_.Encode(resid.data(), code.data());
  } else {
    quantizer_.Encode(vec, code.data());
  }

  std::unique_lock<WriterPriorityMutex> lock(mu_);
  InvertedList& list = lists_[l];
  const uint32_t id = static_cast<uint32_t>(num_codes_++);
  list.ids.push_back(id);
  list.codes.insert(list.codes.end(), code.begin(), code.end());
  AppendPacked(list, code.data());
  if (options_.store_vectors) {
    list.vectors.insert(list.vectors.end(), vec, vec + dim_);
  }
  return id;
}

size_t IvfIndex::EffectiveNprobe(const IvfSearchOptions& options) const {
  size_t nprobe = options.nprobe > 0 ? options.nprobe : options_.default_nprobe;
  return std::min(std::max<size_t>(nprobe, 1), nlist_);
}

void IvfIndex::RouteLists(const float* query, size_t nprobe,
                          std::vector<uint32_t>* out) const {
  thread_local std::vector<float> d2;
  d2.resize(nlist_);
  simd::L2ToMany(query, centroids_.data(), nlist_, dim_, d2.data());
  out->resize(nlist_);
  for (uint32_t l = 0; l < nlist_; ++l) (*out)[l] = l;
  std::partial_sort(out->begin(), out->begin() + nprobe, out->end(),
                    [&](uint32_t a, uint32_t b) {
                      return CandidateBefore(d2[a], a, d2[b], b);
                    });
  out->resize(nprobe);
}

void IvfIndex::PushCandidates(float bias, float scale, const uint16_t* sums,
                              const float* cross, uint32_t list, size_t count,
                              const std::vector<uint32_t>& ids,
                              refine::CandidateBuffer* buffer) {
  if (cross == nullptr) {
    for (size_t i = 0; i < count; ++i) {
      const float est = bias + scale * static_cast<float>(sums[i]);
      buffer->Push(est, ids[i], (uint64_t{list} << 32) | i);
    }
    return;
  }
  // Split regime: the query-independent cross term rejoins the estimate as
  // the stored per-vector float (see quant/split.h).
  for (size_t i = 0; i < count; ++i) {
    const float est = bias + scale * static_cast<float>(sums[i]) + cross[i];
    buffer->Push(est, ids[i], (uint64_t{list} << 32) | i);
  }
}

IvfSearchResult IvfIndex::FinishQuery(const float* query,
                                      const quant::DistanceLut* lut,
                                      refine::CandidateBuffer& buffer, size_t k,
                                      refine::RerankMode mode, IvfStats stats,
                                      obs::QueryTrace* trace) const {
  // Per-query stats roll-up (one TLS add per counter, every Search path
  // funnels through here).
  if (obs::MetricsEnabled()) {
    static const obs::CounterId queries = obs::GetCounter("ivf.queries");
    static const obs::CounterId cells = obs::GetCounter("ivf.cells_probed");
    static const obs::CounterId codes = obs::GetCounter("ivf.codes_scanned");
    obs::Add(queries, 1);
    obs::Add(cells, stats.lists_probed);
    obs::Add(codes, stats.codes_scanned);
  }
  IvfSearchResult out;
  out.stats = stats;
  mode = refine::ResolveAutoMode(mode, options_.store_vectors);
  if (mode == refine::RerankMode::kExact) {
    RPQ_CHECK(options_.store_vectors &&
              "RerankMode::kExact needs IvfOptions.store_vectors");
    refine::ExactRefiner refiner(
        query, dim_, [this](const refine::Candidate& c) {
          const InvertedList& list = lists_[c.tag >> 32];
          return list.vectors.data() + (c.tag & 0xffffffffu) * dim_;
        });
    out.results = refine::RefineTopK(buffer, refiner, k, trace);
    return out;
  }
  RPQ_CHECK(mode == refine::RerankMode::kAdc &&
            "IVF refinement stages: adc or exact (LinkCode needs a graph)");
  const size_t m = quantizer_.code_size();
  auto code_fn = [this, m](const refine::Candidate& c) {
    const InvertedList& list = lists_[c.tag >> 32];
    return list.codes.data() + (c.tag & 0xffffffffu) * m;
  };
  if (options_.residual) {
    // Residual kAdc: no single lookup table covers all cells, so the
    // float-fidelity stage reconstructs decode(code) + centroid instead.
    refine::ResidualAdcRefiner refiner(
        query, quantizer_, code_fn, [this](const refine::Candidate& c) {
          return centroids_.data() + (c.tag >> 32) * dim_;
        });
    out.results = refine::RefineTopK(buffer, refiner, k, trace);
    return out;
  }
  RPQ_CHECK(lut != nullptr);
  refine::AdcRefiner refiner(*lut, m, code_fn);
  out.results = refine::RefineTopK(buffer, refiner, k, trace);
  return out;
}

IvfSearchResult IvfIndex::Search(const float* query, size_t k,
                                 const IvfSearchOptions& options) const {
  thread_local std::vector<uint32_t> probe;
  thread_local std::vector<uint16_t> sums;
  {
    obs::ScopedStage span(obs::Stage::kRoute, options.trace);
    RouteLists(query, EffectiveNprobe(options), &probe);
  }

  refine::CandidateBuffer buffer(refine::EffectiveRerankWidth(options.rerank, k));
  IvfStats stats;

  if (!options_.residual) {
    if (!split()) {
      // The float table is computed once and shared between the u8 scan
      // estimates and the kAdc refinement stage.
      quant::AdcTable lut(quantizer_, query);
      quant::FastScanTable table(lut);
      std::shared_lock<WriterPriorityMutex> lock(mu_);
      obs::ScopedStage span(obs::Stage::kScan, options.trace);
      for (uint32_t l : probe) {
        if (options.deadline.Expired()) {
          stats.deadline_hit = true;
          break;
        }
        const InvertedList& list = lists_[l];
        ++stats.lists_probed;
        if (list.ids.empty()) continue;
        stats.codes_scanned += list.ids.size();
        const size_t n_blocks = list.packed.num_blocks();
        sums.resize(n_blocks * quant::PackedCodes::kBlockCodes);
        table.ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
        PushCandidates(table.bias(), table.scale(), sums.data(), nullptr, l,
                       list.ids.size(), list.ids, &buffer);
      }
      return FinishQuery(query, &lut, buffer, k, options.rerank_mode, stats,
                         options.trace);
    }
    // Split, non-residual: one split table serves every cell; the kAdc
    // rerank (exact float ADC over the materialized 256-word codebook) only
    // needs the full lut when that stage is actually selected.
    quant::SplitFastScanTable table(*quantizer_.split_model(), query);
    std::shared_lock<WriterPriorityMutex> lock(mu_);
    {
      obs::ScopedStage span(obs::Stage::kScan, options.trace);
      for (uint32_t l : probe) {
      if (options.deadline.Expired()) {
        stats.deadline_hit = true;
        break;
      }
      const InvertedList& list = lists_[l];
      ++stats.lists_probed;
      if (list.ids.empty()) continue;
      stats.codes_scanned += list.ids.size();
      const size_t n_blocks = list.packed.num_blocks();
      sums.resize(n_blocks * quant::PackedCodes::kBlockCodes);
      table.ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
      PushCandidates(table.bias(), table.scale(), sums.data(),
                     list.cross.data(), l, list.ids.size(), list.ids, &buffer);
      }
    }
    const refine::RerankMode resolved =
        refine::ResolveAutoMode(options.rerank_mode, options_.store_vectors);
    if (resolved == refine::RerankMode::kAdc) {
      quant::AdcTable lut(quantizer_, query);
      return FinishQuery(query, &lut, buffer, k, options.rerank_mode, stats,
                         options.trace);
    }
    return FinishQuery(query, nullptr, buffer, k, options.rerank_mode, stats,
                     options.trace);
  }

  // Residual regime: one table per probed cell, built from q - centroid so
  // every cell's estimates approximate the same || q - x_hat ||^2.
  thread_local std::vector<float> resq;
  resq.resize(dim_);
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  {
  obs::ScopedStage span(obs::Stage::kScan, options.trace);
  for (uint32_t l : probe) {
    if (options.deadline.Expired()) {
      stats.deadline_hit = true;
      break;
    }
    const InvertedList& list = lists_[l];
    ++stats.lists_probed;
    if (list.ids.empty()) continue;  // skip the LUT build, not just the scan
    stats.codes_scanned += list.ids.size();
    ResidualQuery(query, centroids_.data() + size_t{l} * dim_, dim_,
                  resq.data());
    const size_t n_blocks = list.packed.num_blocks();
    sums.resize(n_blocks * quant::PackedCodes::kBlockCodes);
    if (split()) {
      quant::SplitFastScanTable table(*quantizer_.split_model(), resq.data());
      table.ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
      PushCandidates(table.bias(), table.scale(), sums.data(),
                     list.cross.data(), l, list.ids.size(), list.ids, &buffer);
    } else {
      quant::FastScanTable table(quantizer_, resq.data());
      table.ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
      PushCandidates(table.bias(), table.scale(), sums.data(), nullptr, l,
                     list.ids.size(), list.ids, &buffer);
    }
  }
  }
  return FinishQuery(query, nullptr, buffer, k, options.rerank_mode, stats,
                     options.trace);
}

std::vector<IvfSearchResult> IvfIndex::SearchBatch(
    const float* const* queries, size_t nq, size_t k,
    const IvfSearchOptions& options) const {
  std::vector<IvfSearchResult> out(nq);
  if (nq == 0) return out;

  const refine::RerankMode resolved =
      refine::ResolveAutoMode(options.rerank_mode, options_.store_vectors);
  const size_t m = quantizer_.code_size();

  // Shared per-query tables (non-residual regimes), built before any scan
  // (codebook stays cache-resident — the same amortization
  // MemoryIndex::SearchBatch does). The residual regime cannot share tables
  // across cells — each depends on q - centroid — so it builds them per
  // (list, query) inside the group loop; grouping still amortizes the scan.
  // `luts` backs the non-residual kAdc refinement stage and is skipped when
  // the resolved stage will not read it.
  std::vector<quant::AdcTable> luts;
  std::vector<quant::FastScanTable> tables;
  std::vector<quant::SplitFastScanTable> stables;
  if (!options_.residual) {
    obs::ScopedStage span(obs::Stage::kLutBuild, options.trace);
    if (!split()) {
      luts.reserve(nq);
      tables.reserve(nq);
      for (size_t q = 0; q < nq; ++q) {
        luts.emplace_back(quantizer_, queries[q]);
        tables.emplace_back(luts.back());
      }
    } else {
      stables.reserve(nq);
      for (size_t q = 0; q < nq; ++q) {
        stables.emplace_back(*quantizer_.split_model(), queries[q]);
      }
      if (resolved == refine::RerankMode::kAdc) {
        luts.reserve(nq);
        for (size_t q = 0; q < nq; ++q) {
          luts.emplace_back(quantizer_, queries[q]);
        }
      }
    }
  }
  // u8 LUT row stride: 4-bit tables pad odd m to even; split tables carry
  // 2m interleaved nibble rows.
  const size_t m2 = split() ? 2 * m : m + (m % 2);

  const size_t limit = refine::EffectiveRerankWidth(options.rerank, k);
  std::vector<refine::CandidateBuffer> buffers;
  buffers.reserve(nq);
  for (size_t q = 0; q < nq; ++q) buffers.emplace_back(limit);
  std::vector<IvfStats> stats(nq);

  std::shared_lock<WriterPriorityMutex> lock(mu_);
  const size_t nprobe = EffectiveNprobe(options);

  // Invert the routing into sorted (list, query) pairs — nq*nprobe of them,
  // grouped by list with one sort — so every probed list is scanned once
  // against all of its queries' LUTs. (A per-list bucket array would cost
  // nlist allocations per call and dominate small batches.) Scan scratch is
  // thread-local like Search's, so steady-state batches allocate only their
  // per-query state (tables, heaps, results).
  thread_local std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.clear();
  pairs.reserve(nq * nprobe);
  {
    obs::ScopedStage span(obs::Stage::kRoute, options.trace);
    thread_local std::vector<uint32_t> probe;
    for (size_t q = 0; q < nq; ++q) {
      RouteLists(queries[q], nprobe, &probe);
      for (uint32_t l : probe) pairs.emplace_back(l, static_cast<uint32_t>(q));
    }
  }
  std::sort(pairs.begin(), pairs.end());

  thread_local std::vector<uint8_t> luts_buf;
  thread_local std::vector<uint16_t> sums;
  thread_local std::vector<float> resq;
  // Residual per-group scratch: the tables for this (cell, queries) group.
  std::vector<quant::FastScanTable> group_tables;
  std::vector<quant::SplitFastScanTable> group_stables;
  {
  obs::ScopedStage span(obs::Stage::kScan, options.trace);
  for (size_t p0 = 0; p0 < pairs.size();) {
    if (options.deadline.Expired()) {
      // The remaining groups' queries lose those cells; flag exactly the
      // queries whose probes were skipped.
      for (size_t i = p0; i < pairs.size(); ++i) {
        stats[pairs[i].second].deadline_hit = true;
      }
      break;
    }
    const uint32_t l = pairs[p0].first;
    size_t p1 = p0;
    while (p1 < pairs.size() && pairs[p1].first == l) ++p1;
    const size_t group = p1 - p0;
    const InvertedList& list = lists_[l];
    for (size_t i = p0; i < p1; ++i) ++stats[pairs[i].second].lists_probed;
    if (list.ids.empty()) {
      p0 = p1;
      continue;
    }
    for (size_t i = p0; i < p1; ++i) {
      stats[pairs[i].second].codes_scanned += list.ids.size();
    }

    const size_t n_blocks = list.packed.num_blocks();
    const size_t stride = n_blocks * quant::PackedCodes::kBlockCodes;
    sums.resize(group * stride);

    if (options_.residual) {
      // Build this cell's tables from q - centroid for every grouped query,
      // then scan the cell's blocks ONCE for all of them — the LUT-build
      // cost is per (query, cell) either way, but grouping keeps each packed
      // block register-resident across the whole group.
      resq.resize(dim_);
      const float* centroid = centroids_.data() + size_t{l} * dim_;
      group_tables.clear();
      group_stables.clear();
      luts_buf.resize(group * m2 * 16);
      for (size_t i = 0; i < group; ++i) {
        const uint32_t q = pairs[p0 + i].second;
        ResidualQuery(queries[q], centroid, dim_, resq.data());
        const uint8_t* lut8;
        if (split()) {
          group_stables.emplace_back(*quantizer_.split_model(), resq.data());
          lut8 = group_stables.back().lut8();
        } else {
          group_tables.emplace_back(quantizer_, resq.data());
          lut8 = group_tables.back().lut8();
        }
        std::memcpy(luts_buf.data() + i * m2 * 16, lut8, m2 * 16);
      }
      if (split()) {
        simd::AdcFastScanSplitMulti(luts_buf.data(), group, m,
                                    list.packed.data.data(), n_blocks,
                                    sums.data());
      } else {
        simd::AdcFastScanMulti(luts_buf.data(), group, m2,
                               list.packed.data.data(), n_blocks, sums.data());
      }
      for (size_t i = 0; i < group; ++i) {
        const uint32_t q = pairs[p0 + i].second;
        const float bias =
            split() ? group_stables[i].bias() : group_tables[i].bias();
        const float scale =
            split() ? group_stables[i].scale() : group_tables[i].scale();
        PushCandidates(bias, scale, sums.data() + i * stride,
                       split() ? list.cross.data() : nullptr, l,
                       list.ids.size(), list.ids, &buffers[q]);
      }
      p0 = p1;
      continue;
    }

    if (group == 1) {
      const uint32_t q = pairs[p0].second;
      if (split()) {
        stables[q].ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
      } else {
        tables[q].ScanBlocks(list.packed.data.data(), n_blocks, sums.data());
      }
    } else {
      luts_buf.resize(group * m2 * 16);
      for (size_t i = 0; i < group; ++i) {
        const uint32_t q = pairs[p0 + i].second;
        std::memcpy(luts_buf.data() + i * m2 * 16,
                    split() ? stables[q].lut8() : tables[q].lut8(), m2 * 16);
      }
      if (split()) {
        simd::AdcFastScanSplitMulti(luts_buf.data(), group, m,
                                    list.packed.data.data(), n_blocks,
                                    sums.data());
      } else {
        simd::AdcFastScanMulti(luts_buf.data(), group, m2,
                               list.packed.data.data(), n_blocks, sums.data());
      }
    }
    for (size_t i = 0; i < group; ++i) {
      const uint32_t q = pairs[p0 + i].second;
      const float bias = split() ? stables[q].bias() : tables[q].bias();
      const float scale = split() ? stables[q].scale() : tables[q].scale();
      PushCandidates(bias, scale, sums.data() + i * stride,
                     split() ? list.cross.data() : nullptr, l, list.ids.size(),
                     list.ids, &buffers[q]);
    }
    p0 = p1;
  }
  }
  for (size_t q = 0; q < nq; ++q) {
    out[q] = FinishQuery(queries[q], q < luts.size() ? &luts[q] : nullptr,
                         buffers[q], k, options.rerank_mode, stats[q],
                         options.trace);
  }
  return out;
}

size_t IvfIndex::size() const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  return num_codes_;
}

size_t IvfIndex::list_size(size_t l) const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  return lists_[l].ids.size();
}

size_t IvfIndex::MemoryBytes() const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  size_t total = centroids_.size() * sizeof(float);
  for (const auto& list : lists_) {
    total += list.ids.size() * sizeof(uint32_t) + list.codes.size() +
             list.packed.data.size() + list.vectors.size() * sizeof(float) +
             list.cross.size() * sizeof(float);
  }
  return total;
}

Status IvfIndex::Save(const std::string& path) const {
  std::shared_lock<WriterPriorityMutex> lock(mu_);
  io::AtomicFile file(path);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  io::CrcWriter w(file.get());
  const uint32_t dim = static_cast<uint32_t>(dim_);
  const uint32_t nlist = static_cast<uint32_t>(nlist_);
  const uint32_t code_size = static_cast<uint32_t>(quantizer_.code_size());
  const uint8_t store_vectors = options_.store_vectors ? 1 : 0;
  const uint8_t residual = options_.residual ? 1 : 0;
  const uint32_t default_nprobe = static_cast<uint32_t>(options_.default_nprobe);
  const uint64_t num_codes = num_codes_;
  if (!w.Write(kMagic, 4) || !w.Write(&kVersion, 4) || !w.Write(&dim, 4) ||
      !w.Write(&nlist, 4) || !w.Write(&code_size, 4) ||
      !w.Write(&store_vectors, 1) || !w.Write(&residual, 1) ||
      !w.Write(&default_nprobe, 4) || !w.Write(&num_codes, 8) ||
      !w.Write(centroids_.data(), centroids_.size() * sizeof(float))) {
    return Status::IOError(path + ": header write failed");
  }
  for (const auto& list : lists_) {
    const uint64_t count = list.ids.size();
    if (!w.Write(&count, 8) ||
        !w.Write(list.ids.data(), count * sizeof(uint32_t)) ||
        !w.Write(list.codes.data(), list.codes.size()) ||
        (store_vectors != 0 &&
         !w.Write(list.vectors.data(), list.vectors.size() * sizeof(float)))) {
      return Status::IOError(path + ": list write failed");
    }
  }
  if (!w.WriteTrailer()) return Status::IOError(path + ": trailer write failed");
  return file.Commit();
}

Result<std::unique_ptr<IvfIndex>> IvfIndex::Load(
    const std::string& path, const quant::VectorQuantizer& quantizer) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  io::CrcReader r(f.get());
  char magic[4];
  uint32_t version = 0, dim = 0, nlist = 0, code_size = 0, default_nprobe = 0;
  uint8_t store_vectors = 0, residual = 0;
  uint64_t num_codes = 0;
  if (!r.Read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError(path + ": not an RPQ IVF index file");
  }
  if (!r.Read(&version, 4) || version < kMinVersion || version > kVersion) {
    return Status::IOError(path + ": unsupported version");
  }
  const bool checked = version >= kCrcVersion;
  if (!r.Read(&dim, 4) || !r.Read(&nlist, 4) || !r.Read(&code_size, 4) ||
      !r.Read(&store_vectors, 1) ||
      (version >= 2 && !r.Read(&residual, 1)) ||
      !r.Read(&default_nprobe, 4) || !r.Read(&num_codes, 8)) {
    return Status::IOError(path + ": truncated header");
  }
  if (dim == 0 || nlist == 0 || code_size == 0) {
    return Status::IOError(path + ": invalid index shape");
  }
  if (dim != quantizer.dim() || code_size != quantizer.code_size() ||
      (quantizer.num_centroids() > 16 && quantizer.split_model() == nullptr)) {
    return Status::InvalidArgument(path +
                                   ": quantizer does not match saved index");
  }
  // Bound every header-declared size by what the file can actually hold
  // BEFORE allocating from it — a corrupt count must surface as IOError,
  // not as a std::length_error abort inside vector::resize.
  const long long bytes_left = io::BytesRemaining(f.get());
  const uint64_t row_bytes =
      sizeof(uint32_t) + code_size +
      (store_vectors != 0 ? uint64_t{dim} * sizeof(float) : 0);
  if (bytes_left < 0 ||
      num_codes > static_cast<uint64_t>(bytes_left) / row_bytes ||
      size_t{nlist} * dim >
          static_cast<uint64_t>(bytes_left) / sizeof(float)) {
    return Status::IOError(path + ": header sizes exceed file contents");
  }
  std::vector<float> centroids(size_t{nlist} * dim);
  if (!r.Read(centroids.data(), centroids.size() * sizeof(float))) {
    return Status::IOError(path + ": truncated centroids");
  }
  IvfOptions options;
  options.nlist = nlist;
  options.store_vectors = store_vectors != 0;
  options.residual = residual != 0;
  options.default_nprobe = default_nprobe > 0 ? default_nprobe : 1;
  std::unique_ptr<IvfIndex> index(
      new IvfIndex(quantizer, options, dim, std::move(centroids)));
  uint64_t total = 0;
  for (auto& list : index->lists_) {
    uint64_t count = 0;
    if (!r.Read(&count, 8)) {
      return Status::IOError(path + ": truncated list header");
    }
    if (count > num_codes - total) {
      return Status::IOError(path + ": list counts exceed header total");
    }
    list.ids.resize(count);
    list.codes.resize(count * code_size);
    if (!r.Read(list.ids.data(), count * sizeof(uint32_t)) ||
        !r.Read(list.codes.data(), list.codes.size())) {
      return Status::IOError(path + ": truncated list data");
    }
    if (store_vectors != 0) {
      list.vectors.resize(count * dim);
      if (!r.Read(list.vectors.data(), list.vectors.size() * sizeof(float))) {
        return Status::IOError(path + ": truncated list vectors");
      }
    }
    index->RepackList(list);
    total += count;
  }
  if (total != num_codes) {
    return Status::IOError(path + ": list totals disagree with header");
  }
  if (checked && !r.VerifyTrailer()) {
    return Status::IOError(path +
                           ": checksum mismatch (corrupt or torn file)");
  }
  index->num_codes_ = num_codes;
  return index;
}

}  // namespace rpq::ivf
