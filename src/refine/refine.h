// Unified refinement pipeline: the cheap-estimate -> higher-fidelity-rerank
// epilogue every retrieval backend shares (the paper's accuracy story —
// quantized navigation, refined answers) as ONE subsystem instead of three
// copy-pasted ones.
//
// The pipeline has two pieces:
//
//   CandidateBuffer — the bounded (estimate, id)-ordered candidate heap a
//     scan or traversal feeds. Selection is a strict total order on
//     (estimate, id), so the kept set is independent of push order — the
//     property that lets IVF's grouped multi-query scans, the beam search,
//     and the disk traversal all reproduce their per-query references
//     exactly.
//
//   Refiner — a stage that re-scores candidates at higher fidelity:
//     AdcRefiner       float-ADC lookup sums (undoes FastScan's u8 rounding),
//     ExactRefiner     raw-vector squared L2 (lifts the recall ceiling past
//                      what the codes can reach; needs retained rows),
//     LinkCodeRefiner  Link&Code neighbor-regression reconstruction
//                      (quant/linkcode.h) — between ADC and exact in both
//                      fidelity and cost, with no raw rows stored.
//
// RefineTopK(buffer, refiner, k) composes them: drain the kept candidates,
// re-score every one, return the sorted top-k by (refined distance, id).
// core::MemoryIndex (FastScan epilogue), ivf::IvfIndex (list-scan epilogue),
// and disk::DiskIndex (exact-on-fetch rerank heap) all route through here;
// the residual-IVFADC stage (ResidualAdcRefiner, decode + centroid add)
// plugs into the same seam for IVF's per-cell residual codes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/topk.h"
#include "obs/trace.h"
#include "quant/adc.h"
#include "quant/linkcode.h"

namespace rpq::refine {

/// Which refinement stage re-scores the kept candidates before top-k.
/// kAuto defers to the backend: exact when it retains raw vectors, float-ADC
/// otherwise — the behavior deployments had before the mode was a knob.
enum class RerankMode : uint8_t { kAuto = 0, kAdc, kExact, kLinkCode };

/// Lowercase stable name ("auto", "adc", "exact", "linkcode") for logs/CLIs.
const char* RerankModeName(RerankMode mode);

/// Parses a RerankModeName() string; returns false on unknown names.
bool ParseRerankMode(const char* name, RerankMode* out);

/// The one home of the kAuto policy: exact when the backend retains raw
/// rows, float-ADC otherwise (the behavior deployments had before the mode
/// was a knob). Non-auto modes pass through.
inline RerankMode ResolveAutoMode(RerankMode mode, bool stores_vectors) {
  if (mode != RerankMode::kAuto) return mode;
  return stores_vectors ? RerankMode::kExact : RerankMode::kAdc;
}

/// Degrades a requested stage the backend cannot serve back to kAuto.
/// Serving boundaries call this on per-query knobs so a remote caller's
/// request never trips the library's contract checks and aborts the
/// process; direct library misuse still RPQ_CHECKs.
inline RerankMode SanitizeRequestedMode(RerankMode requested,
                                        bool stores_vectors,
                                        bool has_linkcode) {
  if ((requested == RerankMode::kExact && !stores_vectors) ||
      (requested == RerankMode::kLinkCode && !has_linkcode)) {
    return RerankMode::kAuto;
  }
  return requested;
}

/// Per-query rerank request: how many candidates to re-score and with which
/// stage. Zero / kAuto fields defer to the backend's configured defaults.
struct RerankSpec {
  size_t width = 0;                     ///< 0 = backend default / auto rule
  RerankMode mode = RerankMode::kAuto;  ///< kAuto = backend default
};

/// The shared auto-rerank rule: a caller-requested width (0 = auto) resolved
/// against k. Auto keeps max(2k, 32) candidates — enough that u8/ADC
/// estimate error rarely evicts a true top-k member — and any explicit
/// request is clamped up to k so the rerank can always fill the answer.
inline size_t EffectiveRerankWidth(size_t requested, size_t k) {
  const size_t width = requested > 0 ? requested : std::max(2 * k, size_t{32});
  return std::max(width, k);
}

/// One kept candidate: the estimate it was selected by, its global id, and
/// an opaque backend tag saying where its storage lives (IVF packs
/// (list << 32) | position; flat backends leave it 0).
struct Candidate {
  float est;
  uint32_t id;
  uint64_t tag;
};

/// Strict total order on (estimate, id) — the selection rule shared by every
/// backend's candidate stage and by common/topk.h.
inline bool CandidateBefore(float est_a, uint32_t id_a, float est_b,
                            uint32_t id_b) {
  return est_a < est_b || (est_a == est_b && id_a < id_b);
}

/// Bounded max-heap of the `limit` best candidates by (estimate, id).
/// Matches TopK's keep/evict decisions exactly (same strict order), so a
/// backend that previously kept exact distances in a TopK keeps bit-pinned
/// results when its heap becomes a CandidateBuffer.
class CandidateBuffer {
 public:
  explicit CandidateBuffer(size_t limit) : limit_(limit) {
    heap_.reserve(limit + 1);
  }

  /// Returns true if the candidate was kept.
  bool Push(float est, uint32_t id, uint64_t tag = 0) {
    if (heap_.size() < limit_) {
      heap_.push_back({est, id, tag});
      std::push_heap(heap_.begin(), heap_.end(), Worse);
      return true;
    }
    const Candidate& root = heap_.front();
    if (!CandidateBefore(est, id, root.est, root.id)) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Worse);
    heap_.back() = {est, id, tag};
    std::push_heap(heap_.begin(), heap_.end(), Worse);
    return true;
  }

  /// Bulk-feeds candidates that are already bounded by construction
  /// (n must fit the remaining capacity — e.g. a beam search invoked with
  /// result count <= limit): appends without per-push heap maintenance and
  /// restores the heap invariant once. Selection-wise identical to n
  /// Push() calls, since nothing can evict.
  void PushBounded(const Neighbor* cands, size_t n) {
    RPQ_CHECK(heap_.size() + n <= limit_ &&
              "PushBounded needs pre-bounded input; use Push");
    for (size_t i = 0; i < n; ++i) {
      heap_.push_back({cands[i].dist, cands[i].id, 0});
    }
    std::make_heap(heap_.begin(), heap_.end(), Worse);
  }

  /// Worst kept estimate, or +inf while the buffer is not yet full.
  float Threshold() const {
    if (heap_.size() < limit_) return std::numeric_limits<float>::infinity();
    return heap_.front().est;
  }

  size_t size() const { return heap_.size(); }
  size_t limit() const { return limit_; }
  bool empty() const { return heap_.empty(); }

  /// Kept candidates in unspecified (heap) order — what a Refiner consumes;
  /// refined top-k selection does not depend on this order.
  const std::vector<Candidate>& entries() const { return heap_; }

  /// Extracts candidates sorted ascending by (estimate, id); consumes.
  std::vector<Candidate> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end(), Worse);
    return std::move(heap_);
  }

  /// TakeSorted() truncated to k and stripped to (dist, id) — the epilogue
  /// for backends whose estimates are already final (disk's exact-on-fetch
  /// rerank); bit-identical to the TopK they previously kept.
  std::vector<Neighbor> TakeSortedNeighbors(size_t k);

 private:
  static bool Worse(const Candidate& a, const Candidate& b) {
    return CandidateBefore(a.est, a.id, b.est, b.id);
  }

  size_t limit_;
  std::vector<Candidate> heap_;
};

/// A refinement stage: re-scores `n` candidates at higher fidelity than the
/// estimate that selected them. Implementations are per-query objects (they
/// carry the query's tables/pointers and mutable scratch) — cheap to build,
/// not shareable across threads.
class Refiner {
 public:
  virtual ~Refiner() = default;
  virtual void Refine(const Candidate* cands, size_t n, float* out) const = 0;
};

/// Float-ADC stage: lookup-table sums at full float precision, batched
/// through the SIMD kernels (simd::AdcBatch / AdcBatchGather — bit-identical
/// to per-code DistanceLut::Distance on every backend).
///
/// Two storage shapes: a flat code array addressed by global id (graph
/// backends — the batch is one gather kernel call), or a resolver callback
/// for scattered storage (IVF's per-list arrays — codes are copied into a
/// contiguous scratch block and scanned with the stride kernel).
class AdcRefiner : public Refiner {
 public:
  using CodeFn = std::function<const uint8_t*(const Candidate&)>;

  AdcRefiner(const quant::DistanceLut& lut, const uint8_t* codes,
             size_t code_size)
      : lut_(lut), codes_(codes), code_size_(code_size) {}

  AdcRefiner(const quant::DistanceLut& lut, size_t code_size, CodeFn code_fn)
      : lut_(lut), code_size_(code_size), code_fn_(std::move(code_fn)) {}

  void Refine(const Candidate* cands, size_t n, float* out) const override;

 private:
  const quant::DistanceLut& lut_;
  const uint8_t* codes_ = nullptr;  ///< flat n x code_size, or null
  size_t code_size_;
  CodeFn code_fn_;                       ///< scattered-storage resolver
  mutable std::vector<uint32_t> ids_;    ///< gather scratch
  mutable std::vector<uint8_t> packed_;  ///< resolver scratch
};

/// Residual-IVFADC stage: each candidate's code was trained on x - centroid
/// (its IVF cell's residual), so the float-fidelity re-score reconstructs
/// decode(code) + centroid and takes exact L2 against that reconstruction —
/// the residual regime's equivalent of AdcRefiner's full-precision table
/// sums (what the u8 split-LUT estimate approximates), with no raw rows
/// needed. Slots in wherever kAdc resolves when the backend is residual.
class ResidualAdcRefiner : public Refiner {
 public:
  using CodeFn = std::function<const uint8_t*(const Candidate&)>;
  using CentroidFn = std::function<const float*(const Candidate&)>;

  ResidualAdcRefiner(const float* query,
                     const quant::VectorQuantizer& quantizer, CodeFn code_fn,
                     CentroidFn centroid_fn)
      : query_(query),
        quantizer_(quantizer),
        code_fn_(std::move(code_fn)),
        centroid_fn_(std::move(centroid_fn)) {
    // Centroid add happens in the decoded space, so the quantizer must
    // decode back to the original dimensionality.
    RPQ_CHECK_EQ(quantizer.decoded_dim(), quantizer.dim());
  }

  void Refine(const Candidate* cands, size_t n, float* out) const override;

 private:
  const float* query_;
  const quant::VectorQuantizer& quantizer_;
  CodeFn code_fn_;          ///< candidate -> its residual code
  CentroidFn centroid_fn_;  ///< candidate -> its cell's centroid
  mutable std::vector<float> recon_;  ///< per-candidate scratch
};

/// Exact stage: squared L2 against retained raw vectors — flat row-major by
/// global id, or a resolver for scattered storage (IVF's per-list rows).
class ExactRefiner : public Refiner {
 public:
  using VectorFn = std::function<const float*(const Candidate&)>;

  ExactRefiner(const float* query, size_t dim, const float* vectors)
      : query_(query), dim_(dim), vectors_(vectors) {}

  ExactRefiner(const float* query, size_t dim, VectorFn vector_fn)
      : query_(query), dim_(dim), vector_fn_(std::move(vector_fn)) {}

  void Refine(const Candidate* cands, size_t n, float* out) const override;

 private:
  const float* query_;
  size_t dim_;
  const float* vectors_ = nullptr;  ///< flat n x dim, or null
  VectorFn vector_fn_;
};

/// Link&Code stage: distances to the neighbor-regression-refined
/// reconstructions (quant::LinkCodeIndex::RefinedDistance). Sits between ADC
/// and exact — better than the plain decode the codes allow, no raw rows —
/// at the cost of decoding 1 + num_links codes per candidate.
class LinkCodeRefiner : public Refiner {
 public:
  LinkCodeRefiner(const float* query, const quant::LinkCodeIndex& index)
      : query_(query), index_(index) {}

  void Refine(const Candidate* cands, size_t n, float* out) const override;

 private:
  const float* query_;
  const quant::LinkCodeIndex& index_;
};

/// The composed epilogue: re-scores every kept candidate with `refiner` and
/// returns the top-k by (refined distance, id), sorted ascending. The
/// buffer is read, not drained — callers treat it as per-query scratch.
/// When `trace` is set (or metrics are on) the re-score is attributed to the
/// refine stage and the top-k selection to the merge stage, and the
/// candidate count feeds the refine.candidates counter.
std::vector<Neighbor> RefineTopK(const CandidateBuffer& buffer,
                                 const Refiner& refiner, size_t k,
                                 obs::QueryTrace* trace = nullptr);

}  // namespace rpq::refine
