#include "refine/refine.h"

#include <cstring>

#include "common/logging.h"
#include "simd/simd.h"

namespace rpq::refine {

const char* RerankModeName(RerankMode mode) {
  switch (mode) {
    case RerankMode::kAuto:
      return "auto";
    case RerankMode::kAdc:
      return "adc";
    case RerankMode::kExact:
      return "exact";
    case RerankMode::kLinkCode:
      return "linkcode";
  }
  return "?";
}

bool ParseRerankMode(const char* name, RerankMode* out) {
  if (name == nullptr || out == nullptr) return false;
  for (RerankMode mode : {RerankMode::kAuto, RerankMode::kAdc,
                          RerankMode::kExact, RerankMode::kLinkCode}) {
    if (std::strcmp(name, RerankModeName(mode)) == 0) {
      *out = mode;
      return true;
    }
  }
  return false;
}

std::vector<Neighbor> CandidateBuffer::TakeSortedNeighbors(size_t k) {
  std::vector<Candidate> sorted = TakeSorted();
  if (sorted.size() > k) sorted.resize(k);
  std::vector<Neighbor> out;
  out.reserve(sorted.size());
  for (const Candidate& c : sorted) out.push_back({c.est, c.id});
  return out;
}

void AdcRefiner::Refine(const Candidate* cands, size_t n, float* out) const {
  if (n == 0) return;
  if (codes_ != nullptr) {
    // Flat layout: one vectorized gather over the candidate ids.
    ids_.resize(n);
    for (size_t i = 0; i < n; ++i) ids_[i] = cands[i].id;
    lut_.DistanceBatchGather(codes_, code_size_, ids_.data(), n, out);
    return;
  }
  // Scattered storage: resolve each candidate's code and pack the batch
  // contiguously, then scan with the same batched kernel (bit-identical to
  // per-code Distance(), so backend parity pins survive the indirection).
  packed_.resize(n * code_size_);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(packed_.data() + i * code_size_, code_fn_(cands[i]),
                code_size_);
  }
  lut_.DistanceBatch(packed_.data(), n, out);
}

void ResidualAdcRefiner::Refine(const Candidate* cands, size_t n,
                                float* out) const {
  const size_t dim = quantizer_.decoded_dim();
  recon_.resize(dim);
  for (size_t i = 0; i < n; ++i) {
    quantizer_.Decode(code_fn_(cands[i]), recon_.data());
    const float* centroid = centroid_fn_(cands[i]);
    for (size_t d = 0; d < dim; ++d) recon_[d] += centroid[d];
    out[i] = simd::SquaredL2(query_, recon_.data(), dim);
  }
}

void ExactRefiner::Refine(const Candidate* cands, size_t n, float* out) const {
  for (size_t i = 0; i < n; ++i) {
    const float* vec = vectors_ != nullptr
                           ? vectors_ + static_cast<size_t>(cands[i].id) * dim_
                           : vector_fn_(cands[i]);
    out[i] = simd::SquaredL2(query_, vec, dim_);
  }
}

void LinkCodeRefiner::Refine(const Candidate* cands, size_t n,
                             float* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = index_.RefinedDistance(query_, cands[i].id);
  }
}

std::vector<Neighbor> RefineTopK(const CandidateBuffer& buffer,
                                 const Refiner& refiner, size_t k,
                                 obs::QueryTrace* trace) {
  const std::vector<Candidate>& cands = buffer.entries();
  thread_local std::vector<float> dists;
  dists.resize(cands.size());
  {
    obs::ScopedStage span(obs::Stage::kRefine, trace);
    refiner.Refine(cands.data(), cands.size(), dists.data());
  }
  if (obs::MetricsEnabled()) {
    static const obs::CounterId refined = obs::GetCounter("refine.candidates");
    obs::Add(refined, cands.size());
  }
  obs::ScopedStage span(obs::Stage::kMerge, trace);
  TopK top(k);
  for (size_t i = 0; i < cands.size(); ++i) top.Push(dists[i], cands[i].id);
  return top.Take();
}

}  // namespace rpq::refine
