// Sampling-based feature extractor (paper §5).
//
//  * Neighborhood features — Alg. 1 "n-propagation sampling": collect the
//    n-hop neighborhood N_n(v), rank it by true distance to v, take the
//    k_pos nearest as the positive scope and the next k_neg as the negative
//    scope, and sample one triplet <v+, v, v->.
//  * Routing features — Alg. 2: run beam search with the CURRENT quantizer's
//    ADC distances and record, at every next-hop decision, the ranked global
//    candidate set b_i (up to h ids). The teacher for the routing loss is the
//    candidate with the smallest EXACT distance to the query (the "correct
//    next-hop"; see DESIGN.md on why imitating the quantizer's own argmin
//    would be circular).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "quant/quantizer.h"

namespace rpq::core {

/// One contrastive triplet of vertex ids.
struct TripletSample {
  uint32_t v;
  uint32_t v_pos;
  uint32_t v_neg;
};

/// One recorded next-hop decision: ranked candidates + teacher index.
struct RoutingSample {
  uint32_t query_id = 0;               ///< row in the query sample set
  std::vector<uint32_t> candidates;    ///< ranked by ADC distance, <= h
  size_t teacher = 0;                  ///< index into candidates (exact-best)
};

/// Alg. 1 parameters.
struct NeighborhoodSamplingOptions {
  size_t n_hops = 2;
  size_t k_pos = 10;
  size_t k_neg = 20;
};

/// Collects `count` triplets from random vertices (vertices whose n-hop
/// neighborhood is smaller than k_pos + 1 are skipped).
std::vector<TripletSample> SampleNeighborhoodTriplets(
    const graph::ProximityGraph& graph, const Dataset& base, size_t count,
    const NeighborhoodSamplingOptions& options, Rng* rng);

/// N_n(v): the n-hop neighborhood of v (v excluded). Exposed for tests.
std::vector<uint32_t> CollectNHopNeighborhood(const graph::ProximityGraph& graph,
                                              uint32_t v, size_t n_hops);

/// Alg. 2 parameters.
struct RoutingSamplingOptions {
  size_t num_queries = 64;       ///< query samples drawn from the base set
  size_t beam_width = 32;        ///< h, the global candidate budget
  size_t max_steps_per_query = 24;
  uint64_t seed = 47;
};

/// Runs ADC beam search per sampled query and records decision steps.
/// `codes` are the current hard codes of every base vector (n * code_size).
/// Returns the samples plus the sampled query vectors through `queries_out`.
std::vector<RoutingSample> SampleRoutingFeatures(
    const graph::ProximityGraph& graph, const Dataset& base,
    const quant::VectorQuantizer& quantizer, const std::vector<uint8_t>& codes,
    const RoutingSamplingOptions& options, Dataset* queries_out);

}  // namespace rpq::core
