#include "core/losses.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"

namespace rpq::core {

float TripletLoss(const float* q_v, const float* q_pos, const float* q_neg,
                  size_t dim, float margin, float* grad_v, float* grad_pos,
                  float* grad_neg) {
  float d_pos = SquaredL2(q_v, q_pos, dim);
  float d_neg = SquaredL2(q_v, q_neg, dim);
  float loss = margin + d_pos - d_neg;
  if (loss <= 0.0f) return 0.0f;
  if (grad_v != nullptr) {
    for (size_t t = 0; t < dim; ++t) {
      // d(d_pos)/dv = 2(v - p); d(-d_neg)/dv = -2(v - n).
      grad_v[t] += 2.0f * (q_neg[t] - q_pos[t]);
      grad_pos[t] += 2.0f * (q_pos[t] - q_v[t]);
      grad_neg[t] += 2.0f * (q_v[t] - q_neg[t]);
    }
  }
  return loss;
}

void NextHopProbabilities(const float* distances, size_t h, float tau,
                          float* probs) {
  RPQ_CHECK_GT(h, 0u);
  float inv_tau = 1.0f / tau;
  float mx = -std::numeric_limits<float>::max();
  for (size_t i = 0; i < h; ++i) mx = std::max(mx, -distances[i] * inv_tau);
  float sum = 0;
  for (size_t i = 0; i < h; ++i) {
    probs[i] = std::exp(-distances[i] * inv_tau - mx);
    sum += probs[i];
  }
  for (size_t i = 0; i < h; ++i) probs[i] /= sum;
}

float RoutingStepLoss(const float* candidates, size_t h, size_t dim,
                      const float* rotated_query, size_t teacher, float tau,
                      float* grad_candidates, float* grad_query) {
  RPQ_CHECK_LT(teacher, h);
  std::vector<float> dist(h), probs(h);
  for (size_t i = 0; i < h; ++i) {
    dist[i] = SquaredL2(candidates + i * dim, rotated_query, dim);
  }
  NextHopProbabilities(dist.data(), h, tau, probs.data());
  float loss = -std::log(std::max(probs[teacher], 1e-12f));

  if (grad_candidates != nullptr) {
    // dL/ddist_i = (y_i - p_i) * (-1/tau)' ... with a_i = -dist_i/tau:
    // dL/da_i = p_i - y_i  =>  dL/ddist_i = (y_i - p_i) / tau.
    for (size_t i = 0; i < h; ++i) {
      float y = (i == teacher) ? 1.0f : 0.0f;
      float gd = (y - probs[i]) / tau;
      if (gd == 0.0f) continue;
      const float* c = candidates + i * dim;
      float* gc = grad_candidates + i * dim;
      for (size_t t = 0; t < dim; ++t) {
        float diff2 = 2.0f * (c[t] - rotated_query[t]);
        gc[t] += gd * diff2;
        if (grad_query != nullptr) grad_query[t] -= gd * diff2;
      }
    }
  }
  return loss;
}

}  // namespace rpq::core
