// Public facade of the RPQ library.
//
// Typical use:
//
//   rpq::Dataset base = rpq::synthetic::MakeSiftLike(10000);
//   auto graph = rpq::graph::BuildVamana(base, {});            // or HNSW/NSG
//   rpq::core::RpqTrainOptions opt;                            // M, K, ...
//   auto trained = rpq::core::TrainRpq(base, graph, opt);      // end-to-end
//   auto index = rpq::core::MemoryIndex::Build(base, graph, *trained.quantizer);
//   auto res = index->Search(query, 10, {.beam_width = 64, .k = 10});
//
// Hybrid (DiskANN-style) deployment:
//
//   auto disk = rpq::disk::DiskIndex::Build(base, graph, *trained.quantizer);
//   auto res = disk->Search(query, 10, {.beam_width = 32, .k = 10});
#pragma once

#include "core/diff_quantizer.h"    // IWYU pragma: export
#include "core/feature_extractor.h" // IWYU pragma: export
#include "core/losses.h"            // IWYU pragma: export
#include "core/memory_index.h"      // IWYU pragma: export
#include "core/trainer.h"           // IWYU pragma: export
