// Feature-aware losses of the multi-feature joint training module (paper §6):
//   Eq. 8  — neighborhood triplet loss  max(0, sigma + d(v,v+) - d(v,v-))
//   Eq. 9/10 — routing loss: negative log-likelihood of the correct next-hop
//              under a softmax over candidate (negative) ADC distances / tau
//   Eq. 11 — joint loss  L = L_routing + alpha * L_neighborhood
// Each function returns the loss value and writes gradients w.r.t. the
// quantized vectors (and the rotated query for the routing loss), which the
// caller routes into DiffQuantizer::Backward.
#pragma once

#include <cstddef>
#include <vector>

namespace rpq::core {

/// Triplet loss (Eq. 8). Inputs are the three quantized vectors (dim floats).
/// Gradient buffers may be null when only the value is needed; non-null
/// buffers are ACCUMULATED into.
float TripletLoss(const float* q_v, const float* q_pos, const float* q_neg,
                  size_t dim, float margin, float* grad_v, float* grad_pos,
                  float* grad_neg);

/// Routing loss for one decision step (Eq. 9/10, sign corrected: nearer
/// candidates get higher probability).
///   candidates: h quantized vectors, row-major h x dim
///   rotated_query: the query in the quantized (rotated) space
///   teacher: index of the correct next-hop
/// Writes per-candidate gradients (h x dim, accumulated) and the gradient
/// w.r.t. the rotated query (accumulated). Returns -log P(teacher).
float RoutingStepLoss(const float* candidates, size_t h, size_t dim,
                      const float* rotated_query, size_t teacher, float tau,
                      float* grad_candidates, float* grad_query);

/// Softmax of -distances/tau, exposed for tests (probabilities sum to 1).
void NextHopProbabilities(const float* distances, size_t h, float tau,
                          float* probs);

}  // namespace rpq::core
