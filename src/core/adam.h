// Adam optimizer [40] over flat parameter arrays, plus the one-cycle learning
// rate schedule the paper trains RPQ with (§6: LR = 1e-3, decay rate 0.2).
#pragma once

#include <cstddef>
#include <vector>

namespace rpq::core {

/// Adam hyperparameters.
struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

/// Stateful Adam for one flat parameter vector.
class Adam {
 public:
  Adam(size_t size, const AdamOptions& options = {});

  /// One update: params -= lr_scale * lr * m_hat / (sqrt(v_hat) + eps).
  /// `lr_scale` lets a schedule modulate the base learning rate.
  void Step(float* params, const float* grads, float lr_scale = 1.0f);

  size_t size() const { return m_.size(); }
  size_t steps() const { return t_; }

 private:
  AdamOptions opt_;
  std::vector<float> m_, v_;
  size_t t_ = 0;
};

/// One-cycle schedule: linear warm-up to peak over `warmup_frac` of training,
/// then cosine decay down to `final_lr_frac` of the peak.
class OneCycleSchedule {
 public:
  OneCycleSchedule(size_t total_steps, float warmup_frac = 0.3f,
                   float final_lr_frac = 0.2f);

  /// Multiplier in (0, 1] for step t (clamped at total_steps).
  float Scale(size_t t) const;

 private:
  size_t total_steps_;
  float warmup_frac_;
  float final_lr_frac_;
};

}  // namespace rpq::core
