#include "core/feature_extractor.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "quant/adc.h"

namespace rpq::core {

std::vector<uint32_t> CollectNHopNeighborhood(const graph::ProximityGraph& graph,
                                              uint32_t v, size_t n_hops) {
  // Alg. 1 lines 1-10: breadth-limited propagation from v.
  std::vector<uint32_t> frontier{v};
  std::vector<uint32_t> result;
  std::vector<bool> seen(graph.num_vertices(), false);
  seen[v] = true;
  for (size_t hop = 0; hop < n_hops; ++hop) {
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      for (uint32_t w : graph.Neighbors(u)) {
        if (seen[w]) continue;
        seen[w] = true;
        result.push_back(w);
        next.push_back(w);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return result;
}

std::vector<TripletSample> SampleNeighborhoodTriplets(
    const graph::ProximityGraph& graph, const Dataset& base, size_t count,
    const NeighborhoodSamplingOptions& opt, Rng* rng) {
  RPQ_CHECK_EQ(graph.num_vertices(), base.size());
  RPQ_CHECK_GE(opt.k_pos, 1u);
  RPQ_CHECK_GE(opt.k_neg, 1u);
  std::vector<TripletSample> out;
  out.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 8 + 64;
  while (out.size() < count && attempts++ < max_attempts) {
    uint32_t v = static_cast<uint32_t>(rng->UniformIndex(base.size()));
    std::vector<uint32_t> hood = CollectNHopNeighborhood(graph, v, opt.n_hops);
    if (hood.size() < opt.k_pos + 1) continue;

    // Alg. 1 lines 11-12: rank by true distance to v, truncate the scope.
    std::vector<Neighbor> ranked;
    ranked.reserve(hood.size());
    for (uint32_t u : hood) {
      ranked.push_back({SquaredL2(base[v], base[u], base.dim()), u});
    }
    std::sort(ranked.begin(), ranked.end());
    size_t scope = std::min(ranked.size(), opt.k_pos + opt.k_neg);
    size_t pos_scope = std::min(opt.k_pos, scope - 1);

    uint32_t v_pos = ranked[rng->UniformIndex(pos_scope)].id;
    uint32_t v_neg =
        ranked[pos_scope + rng->UniformIndex(scope - pos_scope)].id;
    out.push_back({v, v_pos, v_neg});
  }
  return out;
}

std::vector<RoutingSample> SampleRoutingFeatures(
    const graph::ProximityGraph& graph, const Dataset& base,
    const quant::VectorQuantizer& quantizer, const std::vector<uint8_t>& codes,
    const RoutingSamplingOptions& opt, Dataset* queries_out) {
  RPQ_CHECK_EQ(graph.num_vertices(), base.size());
  RPQ_CHECK_EQ(codes.size(), base.size() * quantizer.code_size());

  Rng rng(opt.seed);
  std::vector<uint32_t> query_ids =
      rng.SampleWithoutReplacement(base.size(), std::min(opt.num_queries,
                                                         base.size()));
  *queries_out = base.Gather(query_ids);

  std::vector<RoutingSample> out;
  graph::VisitedTable visited(base.size());
  const size_t code_size = quantizer.code_size();

  for (size_t qi = 0; qi < query_ids.size(); ++qi) {
    const float* query = (*queries_out)[qi];
    quant::AdcTable table(quantizer, query);

    size_t steps = 0;
    graph::BeamSearchOptions bopt;
    bopt.beam_width = opt.beam_width;
    bopt.k = opt.beam_width;
    graph::BeamSearch(
        graph, graph.entry_point(),
        [&](uint32_t v) { return table.Distance(codes.data() + v * code_size); },
        bopt, &visited, nullptr,
        [&](const std::vector<Neighbor>& beam) {
          if (steps++ >= opt.max_steps_per_query || beam.size() < 2) return;
          RoutingSample s;
          s.query_id = static_cast<uint32_t>(qi);
          s.candidates.reserve(beam.size());
          for (const Neighbor& nb : beam) s.candidates.push_back(nb.id);
          // Teacher: exact-distance argmin among the recorded candidates.
          float best = std::numeric_limits<float>::max();
          for (size_t c = 0; c < s.candidates.size(); ++c) {
            float d = SquaredL2(query, base[s.candidates[c]], base.dim());
            if (d < best) {
              best = d;
              s.teacher = c;
            }
          }
          out.push_back(std::move(s));
        });
  }
  return out;
}

}  // namespace rpq::core
