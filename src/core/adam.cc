#include "core/adam.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpq::core {

Adam::Adam(size_t size, const AdamOptions& options)
    : opt_(options), m_(size, 0.0f), v_(size, 0.0f) {}

void Adam::Step(float* params, const float* grads, float lr_scale) {
  ++t_;
  float bc1 = 1.0f - std::pow(opt_.beta1, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(opt_.beta2, static_cast<float>(t_));
  float lr = opt_.lr * lr_scale;
  for (size_t i = 0; i < m_.size(); ++i) {
    float g = grads[i];
    m_[i] = opt_.beta1 * m_[i] + (1.0f - opt_.beta1) * g;
    v_[i] = opt_.beta2 * v_[i] + (1.0f - opt_.beta2) * g * g;
    float mhat = m_[i] / bc1;
    float vhat = v_[i] / bc2;
    params[i] -= lr * mhat / (std::sqrt(vhat) + opt_.epsilon);
  }
}

OneCycleSchedule::OneCycleSchedule(size_t total_steps, float warmup_frac,
                                   float final_lr_frac)
    : total_steps_(std::max<size_t>(total_steps, 1)),
      warmup_frac_(warmup_frac),
      final_lr_frac_(final_lr_frac) {
  RPQ_CHECK(warmup_frac_ > 0.0f && warmup_frac_ < 1.0f);
}

float OneCycleSchedule::Scale(size_t t) const {
  t = std::min(t, total_steps_);
  float frac = static_cast<float>(t) / static_cast<float>(total_steps_);
  if (frac < warmup_frac_) {
    // Linear warm-up from 10% to 100% of the peak.
    return 0.1f + 0.9f * (frac / warmup_frac_);
  }
  // Cosine decay from 1 to final_lr_frac_.
  float p = (frac - warmup_frac_) / (1.0f - warmup_frac_);
  float cosv = 0.5f * (1.0f + std::cos(p * 3.14159265358979f));
  return final_lr_frac_ + (1.0f - final_lr_frac_) * cosv;
}

}  // namespace rpq::core
