#include "core/rpq.h"

// Facade header; implementation lives in the per-component TUs.
