#include "core/memory_index.h"

#include "quant/adc.h"

namespace rpq::core {

std::unique_ptr<MemoryIndex> MemoryIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer) {
  auto index = std::unique_ptr<MemoryIndex>(new MemoryIndex(graph, quantizer));
  index->codes_ = quantizer.EncodeDataset(base);
  return index;
}

MemorySearchResult MemoryIndex::Search(const float* query, size_t k,
                                       const graph::BeamSearchOptions& opt,
                                       DistanceMode mode) const {
  MemorySearchResult out;
  const size_t code_size = quantizer_.code_size();
  if (mode == DistanceMode::kSdc) {
    const auto* pq = dynamic_cast<const quant::PqQuantizer*>(&quantizer_);
    RPQ_CHECK(pq != nullptr && "SDC requires a PQ-family quantizer");
    quant::SdcTable table(*pq, query);
    quant::AdcBatchOracle oracle{table, codes_.data(), code_size};
    out.results = graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                                    {opt.beam_width, k}, &visited_, &out.stats);
    return out;
  }
  quant::AdcTable table(quantizer_, query);
  quant::AdcBatchOracle oracle{table, codes_.data(), code_size};
  out.results = graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                                  {opt.beam_width, k}, &visited_, &out.stats);
  return out;
}

size_t MemoryIndex::MemoryBytes() const {
  return codes_.size() + quantizer_.ModelSizeBytes();
}

}  // namespace rpq::core
