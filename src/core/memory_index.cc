#include "core/memory_index.h"

#include <algorithm>

#include "common/logging.h"
#include "quant/adc.h"

namespace rpq::core {
namespace {

// Per-query stats roll-up into the registry (one TLS add per counter per
// query — never inside the traversal).
void RecordSearchMetrics(const graph::SearchStats& stats) {
  if (!obs::MetricsEnabled()) return;
  static const obs::CounterId queries = obs::GetCounter("memory.queries");
  static const obs::CounterId hops = obs::GetCounter("graph.hops");
  static const obs::CounterId dist = obs::GetCounter("graph.dist_comps");
  static const obs::CounterId hits = obs::GetCounter("graph.visited_hits");
  obs::Add(queries, 1);
  obs::Add(hops, stats.hops);
  obs::Add(dist, stats.dist_comps);
  obs::Add(hits, stats.visited_hits);
}

}  // namespace

std::unique_ptr<MemoryIndex> MemoryIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer,
    const MemoryIndexOptions& options) {
  auto index = std::unique_ptr<MemoryIndex>(new MemoryIndex(graph, quantizer));
  index->codes_ = quantizer.EncodeDataset(base);
  index->dim_ = base.dim();
  if (options.fastscan_layout && quantizer.num_centroids() <= 16) {
    // 4-bit-capable quantizer: lay out every vertex's neighbor codes as
    // packed FastScan blocks so kFastScan searches score whole expansions
    // with register-resident shuffles.
    index->fastscan_ = quant::PackedNeighborBlocks::Build(
        graph, index->codes_.data(), quantizer.code_size());
  }
  if (options.store_vectors) {
    index->vectors_.assign(base.data(), base.data() + base.size() * base.dim());
  }
  return index;
}

refine::RerankMode MemoryIndex::ResolveRerankMode(
    refine::RerankMode requested) const {
  const refine::RerankMode mode =
      requested != refine::RerankMode::kAuto ? requested : rerank_mode_;
  return refine::ResolveAutoMode(mode, stores_vectors());
}

MemorySearchResult MemoryIndex::SearchFastScan(
    const float* query, const quant::AdcTable& table, size_t k,
    const graph::BeamSearchOptions& opt, const refine::RerankSpec& rerank,
    graph::VisitedTable* visited, obs::QueryTrace* trace) const {
  RPQ_CHECK(fastscan_.has_value() &&
            "FastScan needs a quantizer with K <= 16 (see PqOptions.nbits)");
  MemorySearchResult out;
  const size_t code_size = quantizer_.code_size();

  // Navigate on the u8-quantized table; the refinement stage (float ADC by
  // default — the float table is what the u8 one was quantized from — or
  // exact / Link&Code when the index carries that state) re-scores the
  // widened candidate list to undo the u8 rounding error.
  quant::FastScanTable ftable(table);
  quant::FastScanNeighborOracle oracle(ftable, codes_.data(), code_size,
                                       *fastscan_);
  // The rerank list is drawn from the beam, so it is capped at the effective
  // beam width — widening it never widens the traversal (the A/B against
  // the float-ADC path stays beam-for-beam fair).
  const size_t beam_width = std::max(opt.beam_width, k);
  const size_t width =
      std::min(beam_width,
               refine::EffectiveRerankWidth(
                   rerank.width > 0 ? rerank.width : rerank_width_, k));
  std::vector<Neighbor> cands;
  {
    obs::ScopedStage span(obs::Stage::kBeam, trace);
    cands = graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                              {beam_width, width, opt.deadline}, visited,
                              &out.stats);
  }

  // Shared refinement epilogue: the beam's survivors become a
  // CandidateBuffer (bulk-fed — the beam was invoked with result count =
  // width, so nothing can evict), one Refiner stage re-scores them, top-k
  // comes back sorted by (refined distance, id).
  refine::CandidateBuffer buffer(width);
  buffer.PushBounded(cands.data(), cands.size());
  out.stats.dist_comps += buffer.size();
  switch (ResolveRerankMode(rerank.mode)) {
    case refine::RerankMode::kExact: {
      RPQ_CHECK(stores_vectors() &&
                "RerankMode::kExact needs MemoryIndexOptions.store_vectors");
      refine::ExactRefiner refiner(query, dim_, vectors_.data());
      out.results = refine::RefineTopK(buffer, refiner, k, trace);
      break;
    }
    case refine::RerankMode::kLinkCode: {
      RPQ_CHECK(linkcode_ != nullptr &&
                "RerankMode::kLinkCode needs set_linkcode()");
      refine::LinkCodeRefiner refiner(query, *linkcode_);
      out.results = refine::RefineTopK(buffer, refiner, k, trace);
      break;
    }
    default: {
      // Float-ADC: batched through the gather kernel (one call for all
      // candidates).
      refine::AdcRefiner refiner(table, codes_.data(), code_size);
      out.results = refine::RefineTopK(buffer, refiner, k, trace);
      break;
    }
  }
  RecordSearchMetrics(out.stats);
  return out;
}

MemorySearchResult MemoryIndex::Search(const float* query, size_t k,
                                       const graph::BeamSearchOptions& opt,
                                       DistanceMode mode,
                                       const refine::RerankSpec& rerank,
                                       obs::QueryTrace* trace) const {
  MemorySearchResult out;
  graph::VisitedTable* visited = graph::TlsVisitedTable(graph_.num_vertices());
  const size_t code_size = quantizer_.code_size();
  if (mode == DistanceMode::kSdc) {
    const auto* pq = dynamic_cast<const quant::PqQuantizer*>(&quantizer_);
    RPQ_CHECK(pq != nullptr && "SDC requires a PQ-family quantizer");
    quant::SdcTable table(*pq, query);
    quant::AdcBatchOracle oracle{table, codes_.data(), code_size};
    obs::ScopedStage span(obs::Stage::kBeam, trace);
    out.results =
        graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                          {opt.beam_width, k, opt.deadline}, visited,
                          &out.stats);
    RecordSearchMetrics(out.stats);
    return out;
  }
  std::optional<quant::AdcTable> table;
  {
    obs::ScopedStage span(obs::Stage::kLutBuild, trace);
    table.emplace(quantizer_, query);
  }
  if (mode == DistanceMode::kFastScan) {
    return SearchFastScan(query, *table, k, opt, rerank, visited, trace);
  }
  quant::AdcBatchOracle oracle{*table, codes_.data(), code_size};
  {
    obs::ScopedStage span(obs::Stage::kBeam, trace);
    out.results =
        graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                          {opt.beam_width, k, opt.deadline}, visited,
                          &out.stats);
  }
  RecordSearchMetrics(out.stats);
  return out;
}

std::vector<MemorySearchResult> MemoryIndex::SearchBatch(
    const float* const* queries, size_t nq, size_t k,
    const graph::BeamSearchOptions& opt, DistanceMode mode,
    const refine::RerankSpec& rerank, obs::QueryTrace* trace) const {
  std::vector<MemorySearchResult> out(nq);
  if (nq == 0) return out;
  if (mode == DistanceMode::kSdc) {
    // SDC tables quantize the query first; no cross-query work to amortize,
    // so the batch is just the per-query path run back-to-back.
    for (size_t i = 0; i < nq; ++i) {
      out[i] = Search(queries[i], k, opt, mode, {}, trace);
    }
    return out;
  }
  graph::VisitedTable* visited = graph::TlsVisitedTable(graph_.num_vertices());
  const size_t code_size = quantizer_.code_size();
  // Tiled: table memory stays bounded and the tile's tables stay
  // cache-resident no matter how large the submitted batch is. The FastScan
  // branch derives its u8 tables inside SearchFastScan from the same float
  // tables, so both modes share the amortized build.
  constexpr size_t kTile = 16;
  std::vector<quant::AdcTable> tables;
  tables.reserve(std::min(nq, kTile));
  for (size_t base = 0; base < nq; base += kTile) {
    const size_t tile = std::min(kTile, nq - base);
    tables.clear();
    {
      obs::ScopedStage span(obs::Stage::kLutBuild, trace);
      for (size_t i = 0; i < tile; ++i) {
        tables.emplace_back(quantizer_, queries[base + i]);
      }
    }
    for (size_t i = 0; i < tile; ++i) {
      if (mode == DistanceMode::kFastScan) {
        out[base + i] = SearchFastScan(queries[base + i], tables[i], k, opt,
                                       rerank, visited, trace);
        continue;
      }
      quant::AdcBatchOracle oracle{tables[i], codes_.data(), code_size};
      obs::ScopedStage span(obs::Stage::kBeam, trace);
      out[base + i].results = graph::BeamSearch(
          graph_, graph_.entry_point(), oracle, {opt.beam_width, k, opt.deadline},
          visited, &out[base + i].stats);
      RecordSearchMetrics(out[base + i].stats);
    }
  }
  return out;
}

size_t MemoryIndex::MemoryBytes() const {
  size_t bytes = codes_.size() + quantizer_.ModelSizeBytes();
  if (fastscan_.has_value()) bytes += fastscan_->MemoryBytes();
  bytes += vectors_.size() * sizeof(float);
  return bytes;
}

}  // namespace rpq::core
