#include "core/memory_index.h"

#include <algorithm>

#include "quant/adc.h"

namespace rpq::core {

std::unique_ptr<MemoryIndex> MemoryIndex::Build(
    const Dataset& base, const graph::ProximityGraph& graph,
    const quant::VectorQuantizer& quantizer) {
  auto index = std::unique_ptr<MemoryIndex>(new MemoryIndex(graph, quantizer));
  index->codes_ = quantizer.EncodeDataset(base);
  return index;
}

MemorySearchResult MemoryIndex::Search(const float* query, size_t k,
                                       const graph::BeamSearchOptions& opt,
                                       DistanceMode mode) const {
  MemorySearchResult out;
  graph::VisitedTable* visited = graph::TlsVisitedTable(graph_.num_vertices());
  const size_t code_size = quantizer_.code_size();
  if (mode == DistanceMode::kSdc) {
    const auto* pq = dynamic_cast<const quant::PqQuantizer*>(&quantizer_);
    RPQ_CHECK(pq != nullptr && "SDC requires a PQ-family quantizer");
    quant::SdcTable table(*pq, query);
    quant::AdcBatchOracle oracle{table, codes_.data(), code_size};
    out.results = graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                                    {opt.beam_width, k}, visited, &out.stats);
    return out;
  }
  quant::AdcTable table(quantizer_, query);
  quant::AdcBatchOracle oracle{table, codes_.data(), code_size};
  out.results = graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                                  {opt.beam_width, k}, visited, &out.stats);
  return out;
}

std::vector<MemorySearchResult> MemoryIndex::SearchBatch(
    const float* const* queries, size_t nq, size_t k,
    const graph::BeamSearchOptions& opt, DistanceMode mode) const {
  std::vector<MemorySearchResult> out(nq);
  if (nq == 0) return out;
  if (mode == DistanceMode::kSdc) {
    // SDC tables quantize the query first; no cross-query work to amortize,
    // so the batch is just the per-query path run back-to-back.
    for (size_t i = 0; i < nq; ++i) out[i] = Search(queries[i], k, opt, mode);
    return out;
  }
  graph::VisitedTable* visited = graph::TlsVisitedTable(graph_.num_vertices());
  const size_t code_size = quantizer_.code_size();
  // Tiled: table memory stays bounded and the tile's tables stay
  // cache-resident no matter how large the submitted batch is.
  constexpr size_t kTile = 16;
  std::vector<quant::AdcTable> tables;
  tables.reserve(std::min(nq, kTile));
  for (size_t base = 0; base < nq; base += kTile) {
    const size_t tile = std::min(kTile, nq - base);
    tables.clear();
    for (size_t i = 0; i < tile; ++i) {
      tables.emplace_back(quantizer_, queries[base + i]);
    }
    for (size_t i = 0; i < tile; ++i) {
      quant::AdcBatchOracle oracle{tables[i], codes_.data(), code_size};
      out[base + i].results =
          graph::BeamSearch(graph_, graph_.entry_point(), oracle,
                            {opt.beam_width, k}, visited, &out[base + i].stats);
    }
  }
  return out;
}

size_t MemoryIndex::MemoryBytes() const {
  return codes_.size() + quantizer_.ModelSizeBytes();
}

}  // namespace rpq::core
