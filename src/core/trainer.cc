#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/adam.h"
#include "core/feature_extractor.h"
#include "core/losses.h"
#include "quant/kmeans.h"

namespace rpq::core {
namespace {

// Characteristic squared-distance scale of the graph: mean edge length.
// The trainer rescales the data so this is ~1, making the margin (Eq. 8),
// tau (Eq. 9) and the Adam learning rates scale-free across datasets
// (byte-valued SIFT and unit-norm Deep train with the same hyperparameters).
double EdgeDistanceScale(const Dataset& base, const graph::ProximityGraph& graph,
                         Rng* rng) {
  double acc = 0;
  size_t count = 0;
  const size_t kSamples = 1024;
  for (size_t s = 0; s < kSamples; ++s) {
    uint32_t v = static_cast<uint32_t>(rng->UniformIndex(base.size()));
    const auto& nb = graph.Neighbors(v);
    if (nb.empty()) continue;
    uint32_t u = nb[rng->UniformIndex(nb.size())];
    acc += SquaredL2(base[v], base[u], base.dim());
    ++count;
  }
  double mean = count > 0 ? acc / count : 1.0;
  return std::max(mean, 1e-12);
}

}  // namespace

RpqTrainResult TrainRpq(const Dataset& base, const graph::ProximityGraph& graph,
                        const RpqTrainOptions& opt) {
  RPQ_CHECK_EQ(base.size(), graph.num_vertices());
  RPQ_CHECK(opt.use_neighborhood || opt.use_routing);
  Timer timer;
  Rng rng(opt.seed);

  // --- Normalize the working copy so mean squared edge length == 1. ---
  double scale2 = EdgeDistanceScale(base, graph, &rng);
  float unit = static_cast<float>(1.0 / std::sqrt(scale2));
  Dataset data(base.size(), base.dim());
  for (size_t i = 0; i < base.size(); ++i) {
    const float* src = base[i];
    float* dst = data[i];
    for (size_t j = 0; j < base.dim(); ++j) dst[j] = src[j] * unit;
  }

  DiffQuantizerOptions dopt;
  dopt.m = opt.m;
  dopt.k = opt.k;
  dopt.rotation_block = opt.rotation_block;
  dopt.gumbel_tau = opt.gumbel_tau;
  dopt.straight_through = opt.straight_through;
  dopt.seed = opt.seed;
  DiffQuantizer dq(data.dim(), dopt);
  dq.InitCodebooks(data);
  {
    size_t cal = std::min<size_t>(data.size(), 512);
    dq.CalibrateTemperatures(data.Slice(0, cal));
  }

  const float margin = opt.margin_scale;  // in normalized units
  const float tau = std::max(opt.tau_scale, 1e-9f);

  // Two Adam groups: rotation parameters and codebook floats.
  std::vector<float> params(dq.NumParams());
  std::vector<float> flat_grads(dq.NumParams());
  dq.ExportParams(params.data());
  const size_t rot_params =
      dq.num_blocks() * dq.block_size() * dq.block_size();
  AdamOptions rot_opt;
  rot_opt.lr = opt.rotation_lr;
  AdamOptions cb_opt;
  cb_opt.lr = opt.codebook_lr;
  Adam adam_rot(rot_params, rot_opt);
  Adam adam_cb(params.size() - rot_params, cb_opt);
  GradBuffer grads = dq.MakeGradBuffer();

  size_t steps_per_epoch = 1;
  if (opt.use_neighborhood) {
    steps_per_epoch = std::max(steps_per_epoch,
                               (opt.triplets_per_epoch + opt.batch_size - 1) /
                                   opt.batch_size);
  }
  // One-cycle over the whole run (paper: one-cycle LR, decay rate 0.2).
  OneCycleSchedule sched(std::max<size_t>(1, opt.epochs * steps_per_epoch),
                         0.3f, 0.2f);

  RpqTrainResult result;
  std::vector<RoutingSample> routing;
  Dataset routing_queries;

  NeighborhoodSamplingOptions nopt;
  nopt.n_hops = opt.n_hops;
  nopt.k_pos = opt.k_pos;
  nopt.k_neg = opt.k_neg;

  const size_t dim = data.dim();
  ForwardResult fwd_v, fwd_p, fwd_n;
  std::vector<float> gq_v(dim), gq_p(dim), gq_n(dim);

  size_t global_step = 0;
  for (size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    // --- Feature extraction with the CURRENT quantizer (Fig. 2 loop). ---
    std::vector<TripletSample> triplets;
    if (opt.use_neighborhood && !opt.l2r_mode) {
      triplets = SampleNeighborhoodTriplets(graph, data, opt.triplets_per_epoch,
                                            nopt, &rng);
    }
    if (opt.use_routing && (routing.empty() || !opt.l2r_mode)) {
      auto deployed = dq.Deploy();
      std::vector<uint8_t> codes = deployed->EncodeDataset(data);
      RoutingSamplingOptions ropt;
      ropt.num_queries = opt.routing_queries_per_epoch;
      ropt.beam_width = opt.routing_beam_width;
      ropt.max_steps_per_query = opt.max_steps_per_query;
      ropt.seed = opt.seed + 101 * epoch;
      routing = SampleRoutingFeatures(graph, data, *deployed, codes, ropt,
                                      &routing_queries);
    }
    if (!triplets.empty()) rng.Shuffle(&triplets);

    size_t rsteps = routing.empty()
                        ? 0
                        : (routing.size() + opt.batch_size - 1) / opt.batch_size;
    size_t tsteps = triplets.empty()
                        ? 0
                        : (triplets.size() + opt.batch_size - 1) / opt.batch_size;
    size_t nsteps = std::max<size_t>(1, std::max(rsteps, tsteps));

    double epoch_loss = 0;
    size_t epoch_samples = 0;

    for (size_t step = 0; step < nsteps; ++step) {
      grads.Reset();
      double batch_loss = 0;
      size_t batch_samples = 0;

      // Neighborhood feature loss (Eq. 8), weighted by alpha (Eq. 11).
      if (!triplets.empty()) {
        for (size_t b = 0; b < opt.batch_size; ++b) {
          const TripletSample& t =
              triplets[(step * opt.batch_size + b) % triplets.size()];
          dq.Forward(data[t.v], &rng, true, &fwd_v);
          dq.Forward(data[t.v_pos], &rng, true, &fwd_p);
          dq.Forward(data[t.v_neg], &rng, true, &fwd_n);
          std::fill(gq_v.begin(), gq_v.end(), 0.0f);
          std::fill(gq_p.begin(), gq_p.end(), 0.0f);
          std::fill(gq_n.begin(), gq_n.end(), 0.0f);
          float l = TripletLoss(fwd_v.quantized.data(), fwd_p.quantized.data(),
                                fwd_n.quantized.data(), dim, margin, gq_v.data(),
                                gq_p.data(), gq_n.data());
          if (l > 0.0f) {
            for (auto& g : gq_v) g *= opt.alpha;
            for (auto& g : gq_p) g *= opt.alpha;
            for (auto& g : gq_n) g *= opt.alpha;
            dq.Backward(data[t.v], fwd_v, gq_v.data(), &grads);
            dq.Backward(data[t.v_pos], fwd_p, gq_p.data(), &grads);
            dq.Backward(data[t.v_neg], fwd_n, gq_n.data(), &grads);
          }
          batch_loss += opt.alpha * l;
          ++batch_samples;
        }
      }

      // Routing feature loss (Eq. 9/10).
      if (!routing.empty()) {
        std::vector<float> cand_quant;
        std::vector<float> cand_grads;
        std::vector<ForwardResult> cand_fwd;
        std::vector<float> rq(dim), grad_rq(dim);
        for (size_t b = 0; b < opt.batch_size; ++b) {
          const RoutingSample& s =
              routing[(step * opt.batch_size + b) % routing.size()];
          size_t h = s.candidates.size();
          if (h < 2) continue;
          cand_quant.assign(h * dim, 0.0f);
          cand_grads.assign(h * dim, 0.0f);
          cand_fwd.resize(h);
          for (size_t c = 0; c < h; ++c) {
            dq.Forward(data[s.candidates[c]], &rng, true, &cand_fwd[c]);
            std::copy(cand_fwd[c].quantized.begin(), cand_fwd[c].quantized.end(),
                      cand_quant.begin() + c * dim);
          }
          const float* query = routing_queries[s.query_id];
          dq.Rotate(query, rq.data());
          std::fill(grad_rq.begin(), grad_rq.end(), 0.0f);
          float l = RoutingStepLoss(cand_quant.data(), h, dim, rq.data(),
                                    s.teacher, tau, cand_grads.data(),
                                    grad_rq.data());
          for (size_t c = 0; c < h; ++c) {
            dq.Backward(data[s.candidates[c]], cand_fwd[c],
                        cand_grads.data() + c * dim, &grads);
          }
          dq.AccumulateRotationGrad(query, grad_rq.data(), &grads);
          batch_loss += l;
          ++batch_samples;
        }
      }

      if (batch_samples == 0) continue;
      dq.FlattenGrads(grads, flat_grads.data());
      float inv = 1.0f / static_cast<float>(batch_samples);
      for (auto& g : flat_grads) g *= inv;
      float lr_scale = sched.Scale(++global_step);
      adam_rot.Step(params.data(), flat_grads.data(), lr_scale);
      adam_cb.Step(params.data() + rot_params, flat_grads.data() + rot_params,
                   lr_scale);
      dq.ImportParams(params.data());

      epoch_loss += batch_loss;
      epoch_samples += batch_samples;
    }
    result.epoch_loss.push_back(
        epoch_samples > 0 ? epoch_loss / epoch_samples : 0.0);
  }

  // --- Final warm-started codebook refit in the learned rotated space. ---
  // Re-anchors quantization distortion after the loss-driven drift while
  // keeping the learned rotation and the loss-shaped codeword basins (the
  // k-means iterations start FROM the trained codewords).
  if (opt.final_codebook_refit) {
    std::vector<float> rotated(data.size() * dim);
    for (size_t i = 0; i < data.size(); ++i) {
      dq.Rotate(data[i], rotated.data() + i * dim);
    }
    std::vector<float> fresh(dq.NumParams());
    dq.ExportParams(fresh.data());
    size_t sub = dq.sub_dim();
    std::vector<float> chunk(data.size() * sub);
    for (size_t j = 0; j < opt.m; ++j) {
      for (size_t i = 0; i < data.size(); ++i) {
        std::memcpy(chunk.data() + i * sub, rotated.data() + i * dim + j * sub,
                    sub * sizeof(float));
      }
      quant::KMeansOptions km;
      km.k = opt.k;
      km.max_iters = opt.refit_iters;
      km.seed = opt.seed + 7 * j;
      km.warm_start.assign(
          fresh.begin() + rot_params + j * opt.k * sub,
          fresh.begin() + rot_params + (j + 1) * opt.k * sub);
      auto res = quant::RunKMeans(chunk.data(), data.size(), sub, km);
      std::copy(res.centroids.begin(), res.centroids.end(),
                fresh.begin() + rot_params + j * opt.k * sub);
    }
    dq.ImportParams(fresh.data());
  }

  // --- Deploy, rescaling codewords back to the original data units. ---
  result.quantizer = dq.Deploy();
  {
    quant::Codebook book = result.quantizer->codebook();
    float back = static_cast<float>(std::sqrt(scale2));
    for (size_t i = 0; i < book.num_floats(); ++i) book.data()[i] *= back;
    linalg::Matrix rotation = result.quantizer->rotation();
    result.quantizer =
        std::make_unique<quant::PqQuantizer>(std::move(book), std::move(rotation));
  }
  result.training_seconds = timer.ElapsedSeconds();
  result.model_size_bytes = result.quantizer->ModelSizeBytes();
  return result;
}

}  // namespace rpq::core
