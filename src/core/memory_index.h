// PQ-integrated in-memory graph index (paper §7, in-memory scenario):
// memory holds the PG plus compact codes + codebook only — original vectors
// are NOT consulted at query time; ranking and results both use ADC.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/topk.h"
#include "data/dataset.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "quant/quantizer.h"

namespace rpq::core {

/// Result of one in-memory query.
struct MemorySearchResult {
  std::vector<Neighbor> results;  ///< ascending by estimated distance
  graph::SearchStats stats;
};

/// Distance estimation mode (§3.1): ADC (default, lower error) or SDC (both
/// sides quantized; requires a PQ-family quantizer).
enum class DistanceMode { kAdc, kSdc };

/// Graph + codes index; the graph and quantizer are borrowed.
///
/// Search is const and thread-safe: per-query scratch (the visited table)
/// lives in thread-local storage (graph::TlsVisitedTable), so any number of
/// threads may search one index concurrently with no shared mutable state.
class MemoryIndex {
 public:
  static std::unique_ptr<MemoryIndex> Build(const Dataset& base,
                                            const graph::ProximityGraph& graph,
                                            const quant::VectorQuantizer& quantizer);

  MemorySearchResult Search(const float* query, size_t k,
                            const graph::BeamSearchOptions& options,
                            DistanceMode mode = DistanceMode::kAdc) const;

  /// Scores `nq` queries back-to-back on the calling thread. All ADC lookup
  /// tables are built up-front, before any graph traversal, which keeps the
  /// codebook cache-resident across table builds — the amortization the
  /// serving micro-batcher exists to exploit. Results match per-query Search.
  std::vector<MemorySearchResult> SearchBatch(
      const float* const* queries, size_t nq, size_t k,
      const graph::BeamSearchOptions& options,
      DistanceMode mode = DistanceMode::kAdc) const;

  /// Codes + model bytes (the in-memory footprint the paper constrains).
  size_t MemoryBytes() const;
  const std::vector<uint8_t>& codes() const { return codes_; }
  size_t num_vertices() const { return graph_.num_vertices(); }

 private:
  MemoryIndex(const graph::ProximityGraph& graph,
              const quant::VectorQuantizer& quantizer)
      : graph_(graph), quantizer_(quantizer) {}

  const graph::ProximityGraph& graph_;
  const quant::VectorQuantizer& quantizer_;
  std::vector<uint8_t> codes_;
};

}  // namespace rpq::core
