// PQ-integrated in-memory graph index (paper §7, in-memory scenario):
// memory holds the PG plus compact codes + codebook only — original vectors
// are NOT consulted at query time; ranking and results both use ADC. (A
// deployment that opts into MemoryIndexOptions.store_vectors trades that
// memory floor for an exact refinement stage, like the IVF backend does.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/topk.h"
#include "data/dataset.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "quant/fastscan.h"
#include "quant/quantizer.h"
#include "refine/refine.h"

namespace rpq::core {

/// Result of one in-memory query.
struct MemorySearchResult {
  std::vector<Neighbor> results;  ///< ascending by estimated distance
  graph::SearchStats stats;
};

/// Distance estimation mode (§3.1): ADC (default, lower error), SDC (both
/// sides quantized; requires a PQ-family quantizer), or FastScan (4-bit
/// codes scored through register-resident u8 LUT shuffles, with a
/// refine::Refiner rerank of the top candidates; requires a quantizer with
/// K <= 16).
enum class DistanceMode { kAdc, kSdc, kFastScan };

/// Build-time knobs.
struct MemoryIndexOptions {
  /// Lay out per-vertex packed neighbor blocks for DistanceMode::kFastScan
  /// when the quantizer is 4-bit capable (K <= 16) — ~deg * m/2 extra bytes
  /// per vertex; deployments that only search kAdc/kSdc can opt out.
  bool fastscan_layout = true;
  /// Retain the raw float rows (~4*dim bytes/vector): enables the exact
  /// refinement stage (refine::RerankMode::kExact), lifting the FastScan
  /// recall ceiling past what the codes alone can reach — the same knob
  /// IvfOptions carries.
  bool store_vectors = false;
};

/// Graph + codes index; the graph and quantizer are borrowed.
///
/// Search is const and thread-safe: per-query scratch (the visited table)
/// lives in thread-local storage (graph::TlsVisitedTable), so any number of
/// threads may search one index concurrently with no shared mutable state.
class MemoryIndex {
 public:
  static std::unique_ptr<MemoryIndex> Build(const Dataset& base,
                                            const graph::ProximityGraph& graph,
                                            const quant::VectorQuantizer& quantizer,
                                            const MemoryIndexOptions& options);

  /// Back-compat shorthand for Build with only the FastScan-layout knob.
  static std::unique_ptr<MemoryIndex> Build(
      const Dataset& base, const graph::ProximityGraph& graph,
      const quant::VectorQuantizer& quantizer, bool fastscan_layout = true) {
    MemoryIndexOptions options;
    options.fastscan_layout = fastscan_layout;
    return Build(base, graph, quantizer, options);
  }

  /// `rerank` overrides the index-level refinement defaults for this query
  /// (width 0 / kAuto fields defer to the configured setters below); it only
  /// applies to DistanceMode::kFastScan, the mode with a rerank epilogue.
  /// `trace`, when non-null, receives per-stage spans (lut_build / beam /
  /// refine / merge) for this query.
  MemorySearchResult Search(const float* query, size_t k,
                            const graph::BeamSearchOptions& options,
                            DistanceMode mode = DistanceMode::kAdc,
                            const refine::RerankSpec& rerank = {},
                            obs::QueryTrace* trace = nullptr) const;

  /// Scores `nq` queries back-to-back on the calling thread. All ADC lookup
  /// tables are built up-front, before any graph traversal, which keeps the
  /// codebook cache-resident across table builds — the amortization the
  /// serving micro-batcher exists to exploit. Results match per-query Search.
  /// A batch shares one `trace`: its spans accumulate across all nq queries.
  std::vector<MemorySearchResult> SearchBatch(
      const float* const* queries, size_t nq, size_t k,
      const graph::BeamSearchOptions& options,
      DistanceMode mode = DistanceMode::kAdc,
      const refine::RerankSpec& rerank = {},
      obs::QueryTrace* trace = nullptr) const;

  /// Codes + model bytes (the in-memory footprint the paper constrains),
  /// including the packed FastScan neighbor blocks and retained raw rows
  /// when built with them.
  size_t MemoryBytes() const;
  const std::vector<uint8_t>& codes() const { return codes_; }
  size_t num_vertices() const { return graph_.num_vertices(); }

  /// True when Build laid out packed neighbor blocks (quantizer K <= 16),
  /// i.e. DistanceMode::kFastScan is available.
  bool fastscan_capable() const { return fastscan_.has_value(); }
  /// True when Build retained the raw rows (RerankMode::kExact available).
  bool stores_vectors() const { return !vectors_.empty(); }

  /// How many beam candidates the FastScan path re-scores before returning
  /// top-k. 0 (default) = auto: refine::EffectiveRerankWidth's max(2k, 32)
  /// rule, capped at the beam width. Larger values trade rerank work for
  /// recall; the u8 quantization error the ADC stage recovers is bounded by
  /// FastScanTable::ErrorBound().
  void set_fastscan_rerank(size_t width) { rerank_width_ = width; }
  size_t fastscan_rerank() const { return rerank_width_; }

  /// Default refinement stage for the FastScan epilogue. kAuto = exact when
  /// raw rows are stored, float-ADC otherwise. kExact requires
  /// MemoryIndexOptions.store_vectors; kLinkCode requires set_linkcode().
  void set_rerank_mode(refine::RerankMode mode) { rerank_mode_ = mode; }
  refine::RerankMode rerank_mode() const { return rerank_mode_; }

  /// Attaches a Link&Code refinement model (borrowed; must outlive the
  /// index) — enables refine::RerankMode::kLinkCode, which reranks with
  /// graph-neighbor-regression reconstructions instead of raw rows.
  void set_linkcode(const quant::LinkCodeIndex* linkcode) {
    linkcode_ = linkcode;
  }
  const quant::LinkCodeIndex* linkcode() const { return linkcode_; }

 private:
  MemoryIndex(const graph::ProximityGraph& graph,
              const quant::VectorQuantizer& quantizer)
      : graph_(graph), quantizer_(quantizer) {}

  MemorySearchResult SearchFastScan(const float* query,
                                    const quant::AdcTable& table, size_t k,
                                    const graph::BeamSearchOptions& options,
                                    const refine::RerankSpec& rerank,
                                    graph::VisitedTable* visited,
                                    obs::QueryTrace* trace) const;

  /// Resolves a query-level mode request against the index defaults.
  refine::RerankMode ResolveRerankMode(refine::RerankMode requested) const;

  const graph::ProximityGraph& graph_;
  const quant::VectorQuantizer& quantizer_;
  std::vector<uint8_t> codes_;
  std::optional<quant::PackedNeighborBlocks> fastscan_;
  std::vector<float> vectors_;  ///< n x dim iff store_vectors
  size_t dim_ = 0;
  size_t rerank_width_ = 0;
  refine::RerankMode rerank_mode_ = refine::RerankMode::kAuto;
  const quant::LinkCodeIndex* linkcode_ = nullptr;
};

}  // namespace rpq::core
