// PQ-integrated in-memory graph index (paper §7, in-memory scenario):
// memory holds the PG plus compact codes + codebook only — original vectors
// are NOT consulted at query time; ranking and results both use ADC.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/topk.h"
#include "data/dataset.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "quant/fastscan.h"
#include "quant/quantizer.h"

namespace rpq::core {

/// Result of one in-memory query.
struct MemorySearchResult {
  std::vector<Neighbor> results;  ///< ascending by estimated distance
  graph::SearchStats stats;
};

/// Distance estimation mode (§3.1): ADC (default, lower error), SDC (both
/// sides quantized; requires a PQ-family quantizer), or FastScan (4-bit
/// codes scored through register-resident u8 LUT shuffles, with a float-ADC
/// rerank of the top candidates; requires a quantizer with K <= 16).
enum class DistanceMode { kAdc, kSdc, kFastScan };

/// Graph + codes index; the graph and quantizer are borrowed.
///
/// Search is const and thread-safe: per-query scratch (the visited table)
/// lives in thread-local storage (graph::TlsVisitedTable), so any number of
/// threads may search one index concurrently with no shared mutable state.
class MemoryIndex {
 public:
  /// `fastscan_layout` controls whether a 4-bit-capable quantizer (K <= 16)
  /// also gets per-vertex packed neighbor blocks for DistanceMode::kFastScan
  /// — they cost ~deg * m/2 extra bytes per vertex, so deployments that only
  /// ever search with kAdc/kSdc can opt out.
  static std::unique_ptr<MemoryIndex> Build(const Dataset& base,
                                            const graph::ProximityGraph& graph,
                                            const quant::VectorQuantizer& quantizer,
                                            bool fastscan_layout = true);

  MemorySearchResult Search(const float* query, size_t k,
                            const graph::BeamSearchOptions& options,
                            DistanceMode mode = DistanceMode::kAdc) const;

  /// Scores `nq` queries back-to-back on the calling thread. All ADC lookup
  /// tables are built up-front, before any graph traversal, which keeps the
  /// codebook cache-resident across table builds — the amortization the
  /// serving micro-batcher exists to exploit. Results match per-query Search.
  std::vector<MemorySearchResult> SearchBatch(
      const float* const* queries, size_t nq, size_t k,
      const graph::BeamSearchOptions& options,
      DistanceMode mode = DistanceMode::kAdc) const;

  /// Codes + model bytes (the in-memory footprint the paper constrains),
  /// including the packed FastScan neighbor blocks when built.
  size_t MemoryBytes() const;
  const std::vector<uint8_t>& codes() const { return codes_; }
  size_t num_vertices() const { return graph_.num_vertices(); }

  /// True when Build laid out packed neighbor blocks (quantizer K <= 16),
  /// i.e. DistanceMode::kFastScan is available.
  bool fastscan_capable() const { return fastscan_.has_value(); }

  /// How many beam candidates the FastScan path re-scores with the float ADC
  /// table before returning top-k. 0 (default) = auto: max(2k, 32). Larger
  /// values trade rerank work for recall; the u8 quantization error this
  /// recovers is bounded by FastScanTable::ErrorBound().
  void set_fastscan_rerank(size_t width) { fastscan_rerank_ = width; }
  size_t fastscan_rerank() const { return fastscan_rerank_; }

 private:
  MemoryIndex(const graph::ProximityGraph& graph,
              const quant::VectorQuantizer& quantizer)
      : graph_(graph), quantizer_(quantizer) {}

  MemorySearchResult SearchFastScan(const quant::AdcTable& table,
                                    size_t k,
                                    const graph::BeamSearchOptions& options,
                                    graph::VisitedTable* visited) const;

  const graph::ProximityGraph& graph_;
  const quant::VectorQuantizer& quantizer_;
  std::vector<uint8_t> codes_;
  std::optional<quant::PackedNeighborBlocks> fastscan_;
  size_t fastscan_rerank_ = 0;
};

}  // namespace rpq::core
