// PQ-integrated in-memory graph index (paper §7, in-memory scenario):
// memory holds the PG plus compact codes + codebook only — original vectors
// are NOT consulted at query time; ranking and results both use ADC.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/topk.h"
#include "data/dataset.h"
#include "graph/beam_search.h"
#include "graph/graph.h"
#include "quant/quantizer.h"

namespace rpq::core {

/// Result of one in-memory query.
struct MemorySearchResult {
  std::vector<Neighbor> results;  ///< ascending by estimated distance
  graph::SearchStats stats;
};

/// Distance estimation mode (§3.1): ADC (default, lower error) or SDC (both
/// sides quantized; requires a PQ-family quantizer).
enum class DistanceMode { kAdc, kSdc };

/// Graph + codes index; the graph and quantizer are borrowed.
class MemoryIndex {
 public:
  static std::unique_ptr<MemoryIndex> Build(const Dataset& base,
                                            const graph::ProximityGraph& graph,
                                            const quant::VectorQuantizer& quantizer);

  MemorySearchResult Search(const float* query, size_t k,
                            const graph::BeamSearchOptions& options,
                            DistanceMode mode = DistanceMode::kAdc) const;

  /// Codes + model bytes (the in-memory footprint the paper constrains).
  size_t MemoryBytes() const;
  const std::vector<uint8_t>& codes() const { return codes_; }

 private:
  MemoryIndex(const graph::ProximityGraph& graph,
              const quant::VectorQuantizer& quantizer)
      : graph_(graph), quantizer_(quantizer), visited_(graph.num_vertices()) {}

  const graph::ProximityGraph& graph_;
  const quant::VectorQuantizer& quantizer_;
  std::vector<uint8_t> codes_;
  mutable graph::VisitedTable visited_;
};

}  // namespace rpq::core
