// Multi-feature joint training (paper §6): optimizes the differentiable
// quantizer with Adam + one-cycle LR on the joint loss
//   L = L_routing + alpha * L_neighborhood          (Eq. 11)
// re-extracting routing features with the CURRENT quantizer every epoch so
// the decision-making signal tracks the model (end-to-end loop of Fig. 2).
#pragma once

#include <memory>
#include <vector>

#include "core/diff_quantizer.h"
#include "data/dataset.h"
#include "graph/graph.h"
#include "quant/pq.h"

namespace rpq::core {

/// Full RPQ training configuration.
struct RpqTrainOptions {
  // Quantizer structure.
  size_t m = 8;
  size_t k = 256;
  size_t rotation_block = 0;     ///< 0 = full D x D rotation
  float gumbel_tau = 1.0f;
  bool straight_through = true;

  // Feature extraction (paper §5).
  size_t n_hops = 2;
  size_t k_pos = 10;
  size_t k_neg = 20;
  size_t triplets_per_epoch = 1024;
  size_t routing_queries_per_epoch = 48;
  size_t routing_beam_width = 16;      ///< h of Alg. 2
  size_t max_steps_per_query = 16;

  // Optimization (paper §6: Adam, one-cycle, LR 1e-3, decay 0.2).
  // The trainer normalizes the data so the mean graph-edge length is 1; the
  // two parameter groups then get scale-free learning rates (Adam moves each
  // coordinate ~lr per step regardless of gradient magnitude).
  size_t epochs = 3;
  size_t batch_size = 16;              ///< samples (of each kind) per step
  float rotation_lr = 1e-3f;           ///< lr for the skew parameters P
  float codebook_lr = 8e-3f;           ///< lr for codewords (unit-scale data)
  float alpha = 1.0f;                  ///< joint-loss coefficient (Eq. 11)
  float margin_scale = 0.5f;           ///< sigma, in units of mean edge dist
  float tau_scale = 1.0f;              ///< tau, in units of mean edge dist
  /// After gradient training, re-fit the codebooks with a few warm-started
  /// k-means iterations in the learned rotated space. This anchors the
  /// distortion (the learned rotation + loss-shaped basins are kept) and is
  /// the analogue of OPQ's final codebook step.
  bool final_codebook_refit = true;
  size_t refit_iters = 6;

  // Ablations (paper Tables 6/7).
  bool use_neighborhood = true;        ///< "RPQ w/ N" keeps only this
  bool use_routing = true;             ///< "RPQ w/ R" keeps only this
  bool l2r_mode = false;               ///< "RPQ w/ L2R": path imitation —
                                       ///< routing features recorded ONCE with
                                       ///< exact distances, never resampled,
                                       ///< and no neighborhood loss

  uint64_t seed = 53;
};

/// Artifacts of one training run.
struct RpqTrainResult {
  std::unique_ptr<quant::PqQuantizer> quantizer;  ///< deployable rotation+PQ
  double training_seconds = 0.0;                   ///< Table 4 metric
  size_t model_size_bytes = 0;                     ///< Table 5 metric
  std::vector<double> epoch_loss;                  ///< joint loss per epoch
};

/// Trains RPQ end-to-end for the given base set and proximity graph.
RpqTrainResult TrainRpq(const Dataset& base, const graph::ProximityGraph& graph,
                        const RpqTrainOptions& options);

}  // namespace rpq::core
