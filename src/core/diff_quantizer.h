// The differentiable quantizer of RPQ (paper §4).
//
// Two learnable parts:
//  (1) Adaptive vector decomposition: an orthonormal rotation R = exp(A),
//      A = P - P^T skew-symmetric with P the free parameter, applied before
//      chunking. For large D the rotation may be block-diagonal (blocks of
//      `rotation_block` dims) to keep the matrix exponential tractable; a
//      single full block reproduces the paper exactly.
//  (2) Sub-codebooks quantizing each chunk. The discrete argmin is replaced
//      by codeword-assignment probabilities p(c|x) = softmax(-dist/T) (Eq. 6,
//      sign corrected — see DESIGN.md) relaxed with Gumbel-Softmax (Eq. 7),
//      so gradients reach both codewords and rotation.
//
// All gradients are computed by hand (no autograd dependency) and validated
// against finite differences in tests/core_diffq_test.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "quant/pq.h"

namespace rpq::core {

/// Structural configuration of the differentiable quantizer.
struct DiffQuantizerOptions {
  size_t m = 8;               ///< chunks
  size_t k = 256;             ///< codewords per chunk
  size_t rotation_block = 0;  ///< 0 = one full D x D rotation
  float gumbel_tau = 1.0f;    ///< Gumbel-Softmax temperature
  bool straight_through = true;  ///< hard forward / soft backward
  uint64_t seed = 41;
};

/// Gradient accumulator matching the quantizer's parameters.
struct GradBuffer {
  std::vector<linalg::Matrix> grad_rotation;  ///< dL/dR per block
  std::vector<float> grad_codebook;           ///< aligned with Codebook floats
  void Reset();
};

/// Per-vector forward activations (kept for the backward pass).
struct ForwardResult {
  std::vector<float> rotated;    ///< y = R x, D floats
  std::vector<float> soft;       ///< Gumbel-Softmax assignments, M*K
  std::vector<float> quantized;  ///< y_hat in rotated space, D floats
  std::vector<uint8_t> hard_code;///< argmin codeword ids, M bytes
};

/// Trainable rotation+codebook quantizer with manual back-prop.
class DiffQuantizer {
 public:
  DiffQuantizer(size_t dim, const DiffQuantizerOptions& options);

  size_t dim() const { return dim_; }
  size_t num_chunks() const { return opt_.m; }
  size_t num_centroids() const { return opt_.k; }
  size_t sub_dim() const { return sub_dim_; }
  size_t num_blocks() const { return block_params_.size(); }
  size_t block_size() const { return block_size_; }

  /// k-means initialization of the codebooks on (rotated) training chunks.
  void InitCodebooks(const Dataset& train);

  /// Sets the per-chunk assignment temperature from data statistics
  /// (mean nearest-codeword distance), so softmax sharpness is scale-free.
  void CalibrateTemperatures(const Dataset& sample);

  /// Forward pass. `rng` supplies Gumbel noise; pass stochastic=false for a
  /// deterministic (noise-free) relaxation, e.g. in tests or at deployment.
  void Forward(const float* x, Rng* rng, bool stochastic, ForwardResult* f) const;

  /// Accumulates dL/d(params) given dL/d(quantized) for the same vector.
  /// Adds the rotation-path gradient dL/dR += (dL/dy) x^T automatically.
  void Backward(const float* x, const ForwardResult& f, const float* grad_quantized,
                GradBuffer* g) const;

  /// Extra rotation gradient for vectors that are rotated but NOT quantized
  /// (e.g. the query inside the routing loss): dL/dR += grad_rotated x^T.
  void AccumulateRotationGrad(const float* x, const float* grad_rotated,
                              GradBuffer* g) const;

  /// Rotates x into the quantized space (D floats out).
  void Rotate(const float* x, float* out) const;

  // --- Parameter access for the optimizer (flat layout: all block P matrices
  // then all codebook floats). ---
  size_t NumParams() const;
  void ExportParams(float* out) const;
  void ImportParams(const float* in);  ///< also refreshes R = exp(P - P^T)
  /// Converts a GradBuffer into the flat layout (rotation grads pass through
  /// the exact matrix-exponential adjoint here — the expensive step).
  void FlattenGrads(const GradBuffer& g, float* out) const;
  GradBuffer MakeGradBuffer() const;

  /// Freezes training state into a deployable rotation+PQ quantizer.
  std::unique_ptr<quant::PqQuantizer> Deploy() const;

  const quant::Codebook& codebook() const { return codebook_; }
  const std::vector<float>& chunk_temps() const { return chunk_temp_; }

 private:
  void RefreshRotation();

  size_t dim_, sub_dim_, block_size_;
  DiffQuantizerOptions opt_;
  std::vector<linalg::Matrix> block_params_;    // P per block
  std::vector<linalg::Matrix> block_rotation_;  // R = exp(P - P^T) per block
  quant::Codebook codebook_;
  std::vector<float> chunk_temp_;  // per-chunk assignment temperature T_j
};

}  // namespace rpq::core
