#include "core/diff_quantizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/distance.h"
#include "common/logging.h"
#include "linalg/matexp.h"
#include "quant/kmeans.h"

namespace rpq::core {

void GradBuffer::Reset() {
  for (auto& m : grad_rotation) {
    m *= 0.0f;
  }
  std::fill(grad_codebook.begin(), grad_codebook.end(), 0.0f);
}

DiffQuantizer::DiffQuantizer(size_t dim, const DiffQuantizerOptions& options)
    : dim_(dim), opt_(options) {
  RPQ_CHECK_GT(opt_.m, 0u);
  RPQ_CHECK_EQ(dim_ % opt_.m, 0u);
  RPQ_CHECK_LE(opt_.k, 256u);
  sub_dim_ = dim_ / opt_.m;

  block_size_ = opt_.rotation_block == 0 ? dim_ : opt_.rotation_block;
  block_size_ = std::min(block_size_, dim_);
  RPQ_CHECK_EQ(dim_ % block_size_, 0u);
  size_t nblocks = dim_ / block_size_;
  block_params_.assign(nblocks, linalg::Matrix(block_size_, block_size_));
  block_rotation_.assign(nblocks, linalg::Matrix::Identity(block_size_));

  codebook_ = quant::Codebook(opt_.m, opt_.k, sub_dim_);
  chunk_temp_.assign(opt_.m, 1.0f);
}

void DiffQuantizer::RefreshRotation() {
  for (size_t b = 0; b < block_params_.size(); ++b) {
    block_rotation_[b] = linalg::MatrixExp(linalg::SkewPart(block_params_[b]));
  }
}

void DiffQuantizer::Rotate(const float* x, float* out) const {
  for (size_t b = 0; b < block_rotation_.size(); ++b) {
    linalg::MatVec(block_rotation_[b], x + b * block_size_, out + b * block_size_);
  }
}

void DiffQuantizer::InitCodebooks(const Dataset& train) {
  RPQ_CHECK_EQ(train.dim(), dim_);
  std::vector<float> rotated(train.size() * dim_);
  for (size_t i = 0; i < train.size(); ++i) {
    Rotate(train[i], rotated.data() + i * dim_);
  }
  quant::PqOptions pq;
  pq.m = opt_.m;
  pq.k = opt_.k;
  pq.seed = opt_.seed;
  codebook_ = quant::TrainCodebooks(rotated.data(), train.size(), dim_, pq);
}

void DiffQuantizer::CalibrateTemperatures(const Dataset& sample) {
  RPQ_CHECK_EQ(sample.dim(), dim_);
  std::vector<double> acc(opt_.m, 0.0);
  std::vector<float> rot(dim_);
  for (size_t i = 0; i < sample.size(); ++i) {
    Rotate(sample[i], rot.data());
    for (size_t j = 0; j < opt_.m; ++j) {
      float best = std::numeric_limits<float>::max();
      for (size_t k = 0; k < opt_.k; ++k) {
        best = std::min(best, SquaredL2(rot.data() + j * sub_dim_,
                                        codebook_.Word(j, k), sub_dim_));
      }
      acc[j] += best;
    }
  }
  for (size_t j = 0; j < opt_.m; ++j) {
    double mean = sample.empty() ? 1.0 : acc[j] / sample.size();
    chunk_temp_[j] = static_cast<float>(std::max(mean, 1e-6));
  }
}

void DiffQuantizer::Forward(const float* x, Rng* rng, bool stochastic,
                            ForwardResult* f) const {
  f->rotated.resize(dim_);
  f->soft.assign(opt_.m * opt_.k, 0.0f);
  f->quantized.resize(dim_);
  f->hard_code.resize(opt_.m);
  Rotate(x, f->rotated.data());

  std::vector<float> logits(opt_.k);
  for (size_t j = 0; j < opt_.m; ++j) {
    const float* y = f->rotated.data() + j * sub_dim_;
    float inv_t = 1.0f / chunk_temp_[j];
    float best = std::numeric_limits<float>::max();
    size_t best_k = 0;
    for (size_t k = 0; k < opt_.k; ++k) {
      float d = SquaredL2(y, codebook_.Word(j, k), sub_dim_);
      if (d < best) {
        best = d;
        best_k = k;
      }
      // Eq. 6 with the corrected sign: nearer codeword -> larger probability.
      logits[k] = -d * inv_t;
      if (stochastic && rng != nullptr) logits[k] += rng->Gumbel();
    }
    f->hard_code[j] = static_cast<uint8_t>(best_k);

    // Gumbel-Softmax (Eq. 7) with temperature tau.
    float inv_tau = 1.0f / opt_.gumbel_tau;
    float mx = -std::numeric_limits<float>::max();
    for (size_t k = 0; k < opt_.k; ++k) mx = std::max(mx, logits[k] * inv_tau);
    float sum = 0;
    float* soft = f->soft.data() + j * opt_.k;
    for (size_t k = 0; k < opt_.k; ++k) {
      soft[k] = std::exp(logits[k] * inv_tau - mx);
      sum += soft[k];
    }
    for (size_t k = 0; k < opt_.k; ++k) soft[k] /= sum;

    // Quantized chunk: soft convex combination (or hard codeword under ST).
    float* q = f->quantized.data() + j * sub_dim_;
    if (opt_.straight_through) {
      // Forward uses the argmax of the (possibly noisy) relaxation so the
      // training signal reflects hard quantization.
      size_t arg = 0;
      float best_s = soft[0];
      for (size_t k = 1; k < opt_.k; ++k) {
        if (soft[k] > best_s) {
          best_s = soft[k];
          arg = k;
        }
      }
      std::memcpy(q, codebook_.Word(j, arg), sub_dim_ * sizeof(float));
    } else {
      std::fill(q, q + sub_dim_, 0.0f);
      for (size_t k = 0; k < opt_.k; ++k) {
        float s = soft[k];
        if (s < 1e-8f) continue;
        const float* w = codebook_.Word(j, k);
        for (size_t t = 0; t < sub_dim_; ++t) q[t] += s * w[t];
      }
    }
  }
}

void DiffQuantizer::Backward(const float* x, const ForwardResult& f,
                             const float* grad_quantized, GradBuffer* g) const {
  std::vector<float> grad_rotated(dim_, 0.0f);
  std::vector<float> grad_soft(opt_.k);
  std::vector<float> grad_logits(opt_.k);

  for (size_t j = 0; j < opt_.m; ++j) {
    const float* y = f.rotated.data() + j * sub_dim_;
    const float* soft = f.soft.data() + j * opt_.k;
    const float* gq = grad_quantized + j * sub_dim_;
    float* grad_y = grad_rotated.data() + j * sub_dim_;
    float* gcb = g->grad_codebook.data() + (j * opt_.k) * sub_dim_;

    // Path 1: q = sum_k s_k c_k  (the backward path is always the soft
    // relaxation, also under straight-through).
    for (size_t k = 0; k < opt_.k; ++k) {
      const float* w = codebook_.Word(j, k);
      float s = soft[k];
      grad_soft[k] = Dot(w, gq, sub_dim_);
      if (s >= 1e-8f) {
        float* gw = gcb + k * sub_dim_;
        for (size_t t = 0; t < sub_dim_; ++t) gw[t] += s * gq[t];
      }
    }

    // Softmax jacobian: grad_z_k = s_k * (grad_s_k - sum_l s_l grad_s_l),
    // where z = logits / tau.
    float dot_sg = 0;
    for (size_t k = 0; k < opt_.k; ++k) dot_sg += soft[k] * grad_soft[k];
    float inv_tau = 1.0f / opt_.gumbel_tau;
    float inv_t = 1.0f / chunk_temp_[j];
    for (size_t k = 0; k < opt_.k; ++k) {
      grad_logits[k] = soft[k] * (grad_soft[k] - dot_sg) * inv_tau;
    }

    // logits_k = -dist_k / T;  dist_k = ||y - c_k||^2.
    for (size_t k = 0; k < opt_.k; ++k) {
      float gd = -grad_logits[k] * inv_t;  // dL/d(dist_k)
      if (gd == 0.0f) continue;
      const float* w = codebook_.Word(j, k);
      float* gw = gcb + k * sub_dim_;
      for (size_t t = 0; t < sub_dim_; ++t) {
        float diff = y[t] - w[t];
        grad_y[t] += gd * 2.0f * diff;
        gw[t] -= gd * 2.0f * diff;
      }
    }
  }

  AccumulateRotationGrad(x, grad_rotated.data(), g);
}

void DiffQuantizer::AccumulateRotationGrad(const float* x,
                                           const float* grad_rotated,
                                           GradBuffer* g) const {
  // y_b = R_b x_b  =>  dL/dR_b += grad_y_b x_b^T.
  for (size_t b = 0; b < block_params_.size(); ++b) {
    linalg::Matrix& gr = g->grad_rotation[b];
    const float* gx = grad_rotated + b * block_size_;
    const float* xb = x + b * block_size_;
    for (size_t i = 0; i < block_size_; ++i) {
      float gi = gx[i];
      if (gi == 0.0f) continue;
      float* row = gr.Row(i);
      for (size_t j = 0; j < block_size_; ++j) row[j] += gi * xb[j];
    }
  }
}

size_t DiffQuantizer::NumParams() const {
  return block_params_.size() * block_size_ * block_size_ +
         codebook_.num_floats();
}

void DiffQuantizer::ExportParams(float* out) const {
  size_t off = 0;
  for (const auto& p : block_params_) {
    std::memcpy(out + off, p.data(), block_size_ * block_size_ * sizeof(float));
    off += block_size_ * block_size_;
  }
  std::memcpy(out + off, codebook_.data(), codebook_.num_floats() * sizeof(float));
}

void DiffQuantizer::ImportParams(const float* in) {
  size_t off = 0;
  for (auto& p : block_params_) {
    std::memcpy(p.data(), in + off, block_size_ * block_size_ * sizeof(float));
    off += block_size_ * block_size_;
  }
  std::memcpy(codebook_.data(), in + off, codebook_.num_floats() * sizeof(float));
  RefreshRotation();
}

void DiffQuantizer::FlattenGrads(const GradBuffer& g, float* out) const {
  size_t off = 0;
  for (size_t b = 0; b < block_params_.size(); ++b) {
    // Chain rule through R = exp(A), A = P - P^T:
    //   grad_A = L_exp(A^T)[grad_R]   (exact adjoint of the matrix exp)
    //   grad_P = grad_A - grad_A^T.
    linalg::Matrix a = linalg::SkewPart(block_params_[b]);
    linalg::Matrix grad_a = linalg::MatrixExpGrad(a, g.grad_rotation[b]);
    for (size_t i = 0; i < block_size_; ++i) {
      for (size_t j = 0; j < block_size_; ++j) {
        out[off + i * block_size_ + j] = grad_a.At(i, j) - grad_a.At(j, i);
      }
    }
    off += block_size_ * block_size_;
  }
  std::memcpy(out + off, g.grad_codebook.data(),
              g.grad_codebook.size() * sizeof(float));
}

GradBuffer DiffQuantizer::MakeGradBuffer() const {
  GradBuffer g;
  g.grad_rotation.assign(block_params_.size(),
                         linalg::Matrix(block_size_, block_size_));
  g.grad_codebook.assign(codebook_.num_floats(), 0.0f);
  return g;
}

std::unique_ptr<quant::PqQuantizer> DiffQuantizer::Deploy() const {
  // Assemble the full D x D (block-diagonal) rotation for deployment.
  linalg::Matrix r(dim_, dim_);
  for (size_t b = 0; b < block_rotation_.size(); ++b) {
    for (size_t i = 0; i < block_size_; ++i) {
      for (size_t j = 0; j < block_size_; ++j) {
        r.At(b * block_size_ + i, b * block_size_ + j) =
            block_rotation_[b].At(i, j);
      }
    }
  }
  return std::make_unique<quant::PqQuantizer>(codebook_, std::move(r));
}

}  // namespace rpq::core
