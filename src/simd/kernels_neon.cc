// NEON kernels for aarch64 (NEON is baseline there, so no extra compile
// flags). The ADC scans stay on the unrolled scalar implementations, which
// autovectorize poorly but are already latency-optimized; byte-indexed table
// gathers have no NEON equivalent worth the shuffle overhead at K = 256.
#include "simd/kernels.h"

#if defined(RPQ_HAVE_NEON)

#include <arm_neon.h>

namespace rpq::simd {
namespace {

float SquaredL2Neon(const float* a, const float* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  if (i + 4 <= d) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d0, d0);
    i += 4;
  }
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < d; ++i) {
    float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

float DotNeon(const float* a, const float* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  if (i + 4 <= d) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    i += 4;
  }
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredNormNeon(const float* a, size_t d) { return DotNeon(a, a, d); }

void L2ToManyNeon(const float* q, const float* base, size_t n, size_t d,
                  float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = SquaredL2Neon(q, base + i * d, d);
}

}  // namespace

namespace internal {

const KernelOps& NeonKernels() {
  static const KernelOps ops = [] {
    KernelOps o = ScalarKernels();
    o.name = "neon";
    o.squared_l2 = SquaredL2Neon;
    o.dot = DotNeon;
    o.squared_norm = SquaredNormNeon;
    o.l2_to_many = L2ToManyNeon;
    return o;
  }();
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd

#endif  // RPQ_HAVE_NEON
