// NEON kernels for aarch64 (NEON is baseline there, so no extra compile
// flags). The float-table ADC scans stay on the unrolled scalar
// implementations, which autovectorize poorly but are already
// latency-optimized; byte-indexed table gathers have no NEON equivalent
// worth the shuffle overhead at K = 256. The FastScan path is different:
// K = 16 u8 LUTs fit one vqtbl1q_u8 table register, so the 4-bit scan gets a
// real shuffle kernel.
#include "simd/kernels.h"

#if defined(RPQ_HAVE_NEON)

#include <arm_neon.h>

namespace rpq::simd {
namespace {

float SquaredL2Neon(const float* a, const float* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  if (i + 4 <= d) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d0, d0);
    i += 4;
  }
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < d; ++i) {
    float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

float DotNeon(const float* a, const float* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  if (i + 4 <= d) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    i += 4;
  }
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredNormNeon(const float* a, size_t d) { return DotNeon(a, a, d); }

// Cross-row reduction for four per-row squared-difference vectors: two
// pairwise-add rounds turn [s0 s1 s2 s3] into one float32x4 of row sums.
inline float32x4_t Reduce4Rows(float32x4_t s0, float32x4_t s1, float32x4_t s2,
                               float32x4_t s3) {
  return vpaddq_f32(vpaddq_f32(s0, s1), vpaddq_f32(s2, s3));
}

void L2ToManyNeon(const float* q, const float* base, size_t n, size_t d,
                  float* out) {
  // Cross-row kernels for the PQ sub-dims (4 and 8): four rows per
  // iteration, pairwise adds instead of four per-row horizontal sums.
  if (d == 4) {
    const float32x4_t qv = vld1q_f32(q);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      float32x4_t d0 = vsubq_f32(vld1q_f32(base + i * 4), qv);
      float32x4_t d1 = vsubq_f32(vld1q_f32(base + (i + 1) * 4), qv);
      float32x4_t d2 = vsubq_f32(vld1q_f32(base + (i + 2) * 4), qv);
      float32x4_t d3 = vsubq_f32(vld1q_f32(base + (i + 3) * 4), qv);
      vst1q_f32(out + i, Reduce4Rows(vmulq_f32(d0, d0), vmulq_f32(d1, d1),
                                     vmulq_f32(d2, d2), vmulq_f32(d3, d3)));
    }
    for (; i < n; ++i) {
      float32x4_t diff = vsubq_f32(vld1q_f32(base + i * 4), qv);
      out[i] = vaddvq_f32(vmulq_f32(diff, diff));
    }
    return;
  }
  if (d == 8) {
    const float32x4_t q0 = vld1q_f32(q), q1 = vld1q_f32(q + 4);
    auto row_sq = [&](const float* row) {
      float32x4_t a = vsubq_f32(vld1q_f32(row), q0);
      float32x4_t b = vsubq_f32(vld1q_f32(row + 4), q1);
      return vfmaq_f32(vmulq_f32(a, a), b, b);
    };
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(out + i,
                Reduce4Rows(row_sq(base + i * 8), row_sq(base + (i + 1) * 8),
                            row_sq(base + (i + 2) * 8),
                            row_sq(base + (i + 3) * 8)));
    }
    for (; i < n; ++i) out[i] = vaddvq_f32(row_sq(base + i * 8));
    return;
  }
  for (size_t i = 0; i < n; ++i) out[i] = SquaredL2Neon(q, base + i * d, d);
}

// FastScan via vqtbl1q_u8: each 16-entry LUT row is one table register; a
// block row's 32 nibble-packed bytes are processed as two 16-code halves.
// Widening adds (vaddw) keep the u16 sums exact — bit-identical to scalar.
void AdcFastScanNeon(const uint8_t* lut8, size_t m2, const uint8_t* packed,
                     size_t n_blocks, uint16_t* out) {
  const size_t rows = m2 / 2;
  const uint8x16_t low_mask = vdupq_n_u8(0x0f);
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    uint16x8_t acc0 = vdupq_n_u16(0);  // codes 0..7
    uint16x8_t acc1 = vdupq_n_u16(0);  // codes 8..15
    uint16x8_t acc2 = vdupq_n_u16(0);  // codes 16..23
    uint16x8_t acc3 = vdupq_n_u16(0);  // codes 24..31
    for (size_t p = 0; p < rows; ++p) {
      const uint8x16_t lut0 = vld1q_u8(lut8 + 2 * p * 16);
      const uint8x16_t lut1 = vld1q_u8(lut8 + (2 * p + 1) * 16);
      uint8x16_t va = vld1q_u8(block + p * 32);       // codes 0..15
      uint8x16_t vb = vld1q_u8(block + p * 32 + 16);  // codes 16..31
      uint8x16_t ta0 = vqtbl1q_u8(lut0, vandq_u8(va, low_mask));
      uint8x16_t ta1 = vqtbl1q_u8(lut1, vshrq_n_u8(va, 4));
      uint8x16_t tb0 = vqtbl1q_u8(lut0, vandq_u8(vb, low_mask));
      uint8x16_t tb1 = vqtbl1q_u8(lut1, vshrq_n_u8(vb, 4));
      acc0 = vaddw_u8(acc0, vget_low_u8(ta0));
      acc0 = vaddw_u8(acc0, vget_low_u8(ta1));
      acc1 = vaddw_u8(acc1, vget_high_u8(ta0));
      acc1 = vaddw_u8(acc1, vget_high_u8(ta1));
      acc2 = vaddw_u8(acc2, vget_low_u8(tb0));
      acc2 = vaddw_u8(acc2, vget_low_u8(tb1));
      acc3 = vaddw_u8(acc3, vget_high_u8(tb0));
      acc3 = vaddw_u8(acc3, vget_high_u8(tb1));
    }
    vst1q_u16(out + b * 32, acc0);
    vst1q_u16(out + b * 32 + 8, acc1);
    vst1q_u16(out + b * 32 + 16, acc2);
    vst1q_u16(out + b * 32 + 24, acc3);
  }
}

// Multi-query tile: the two 16-code block-row halves and their four nibble
// index vectors are computed once and shuffled against QT queries' LUT
// registers while resident. QT = 2 keeps the 4-accumulator-per-query layout
// (8 of the 32 vector registers) plus shared row state comfortably in
// registers; LUT rows are vld1q'd per use (L1-hot, one load each).
template <int QT>
void FastScanMultiTileNeon(const uint8_t* luts8, size_t m2,
                           const uint8_t* packed, size_t n_blocks,
                           uint16_t* out, size_t out_stride) {
  const size_t rows = m2 / 2;
  const uint8x16_t low_mask = vdupq_n_u8(0x0f);
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    uint16x8_t acc[QT][4];
    for (int t = 0; t < QT; ++t) {
      for (int h = 0; h < 4; ++h) acc[t][h] = vdupq_n_u16(0);
    }
    for (size_t p = 0; p < rows; ++p) {
      uint8x16_t va = vld1q_u8(block + p * 32);       // codes 0..15
      uint8x16_t vb = vld1q_u8(block + p * 32 + 16);  // codes 16..31
      uint8x16_t lo_a = vandq_u8(va, low_mask);
      uint8x16_t hi_a = vshrq_n_u8(va, 4);
      uint8x16_t lo_b = vandq_u8(vb, low_mask);
      uint8x16_t hi_b = vshrq_n_u8(vb, 4);
      for (int t = 0; t < QT; ++t) {
        const uint8_t* lut = luts8 + static_cast<size_t>(t) * m2 * 16;
        const uint8x16_t lut0 = vld1q_u8(lut + 2 * p * 16);
        const uint8x16_t lut1 = vld1q_u8(lut + (2 * p + 1) * 16);
        uint8x16_t ta0 = vqtbl1q_u8(lut0, lo_a);
        uint8x16_t ta1 = vqtbl1q_u8(lut1, hi_a);
        uint8x16_t tb0 = vqtbl1q_u8(lut0, lo_b);
        uint8x16_t tb1 = vqtbl1q_u8(lut1, hi_b);
        acc[t][0] = vaddw_u8(acc[t][0], vget_low_u8(ta0));
        acc[t][0] = vaddw_u8(acc[t][0], vget_low_u8(ta1));
        acc[t][1] = vaddw_u8(acc[t][1], vget_high_u8(ta0));
        acc[t][1] = vaddw_u8(acc[t][1], vget_high_u8(ta1));
        acc[t][2] = vaddw_u8(acc[t][2], vget_low_u8(tb0));
        acc[t][2] = vaddw_u8(acc[t][2], vget_low_u8(tb1));
        acc[t][3] = vaddw_u8(acc[t][3], vget_high_u8(tb0));
        acc[t][3] = vaddw_u8(acc[t][3], vget_high_u8(tb1));
      }
    }
    for (int t = 0; t < QT; ++t) {
      uint16_t* o = out + static_cast<size_t>(t) * out_stride + b * 32;
      vst1q_u16(o, acc[t][0]);
      vst1q_u16(o + 8, acc[t][1]);
      vst1q_u16(o + 16, acc[t][2]);
      vst1q_u16(o + 24, acc[t][3]);
    }
  }
}

void AdcFastScanMultiNeon(const uint8_t* luts8, size_t nq, size_t m2,
                          const uint8_t* packed, size_t n_blocks,
                          uint16_t* out) {
  const size_t out_stride = n_blocks * 32;
  const size_t lut_stride = m2 * 16;
  size_t q = 0;
  for (; q + 2 <= nq; q += 2) {
    FastScanMultiTileNeon<2>(luts8 + q * lut_stride, m2, packed, n_blocks,
                             out + q * out_stride, out_stride);
  }
  if (q < nq) {
    AdcFastScanNeon(luts8 + q * lut_stride, m2, packed, n_blocks,
                    out + q * out_stride);
  }
}

// Split tables delegate to the 4-bit kernels with m2 = 2m — the split block
// layout is byte-identical to the nibble-expanded one (see kernels.h), so
// the tbl shuffle path and the bit-exactness carry over unchanged.
void AdcFastScanSplitNeon(const uint8_t* lut8, size_t m, const uint8_t* packed,
                          size_t n_blocks, uint16_t* out) {
  AdcFastScanNeon(lut8, 2 * m, packed, n_blocks, out);
}

void AdcFastScanSplitMultiNeon(const uint8_t* luts8, size_t nq, size_t m,
                               const uint8_t* packed, size_t n_blocks,
                               uint16_t* out) {
  AdcFastScanMultiNeon(luts8, nq, 2 * m, packed, n_blocks, out);
}

}  // namespace

namespace internal {

const KernelOps& NeonKernels() {
  static const KernelOps ops = [] {
    KernelOps o = ScalarKernels();
    o.name = "neon";
    o.squared_l2 = SquaredL2Neon;
    o.dot = DotNeon;
    o.squared_norm = SquaredNormNeon;
    o.l2_to_many = L2ToManyNeon;
    o.adc_fastscan = AdcFastScanNeon;
    o.adc_fastscan_multi = AdcFastScanMultiNeon;
    o.adc_fastscan_split = AdcFastScanSplitNeon;
    o.adc_fastscan_split_multi = AdcFastScanSplitMultiNeon;
    return o;
  }();
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd

#endif  // RPQ_HAVE_NEON
