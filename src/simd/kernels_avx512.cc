// AVX-512F kernels: 16-wide FMA distances/table builds and 16-lane gather ADC
// scans. Avx512Kernels() starts from the AVX2 set and overrides what the
// wider ISA improves.
#include "simd/kernels.h"

#if defined(RPQ_HAVE_AVX512)

#include <immintrin.h>

namespace rpq::simd {
namespace {

float SquaredL2Avx512(const float* a, const float* b, size_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  if (i + 16 <= d) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    i += 16;
  }
  if (i < d) {
    // Masked tail: one pass covers the remaining (< 16) lanes.
    __mmask16 mask = static_cast<__mmask16>((1u << (d - i)) - 1u);
    __m512 d0 = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + i),
                              _mm512_maskz_loadu_ps(mask, b + i));
    acc1 = _mm512_fmadd_ps(d0, d0, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float DotAvx512(const float* a, const float* b, size_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  if (i + 16 <= d) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    i += 16;
  }
  if (i < d) {
    __mmask16 mask = static_cast<__mmask16>((1u << (d - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + i),
                           _mm512_maskz_loadu_ps(mask, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float SquaredNormAvx512(const float* a, size_t d) { return DotAvx512(a, a, d); }

void L2ToManyAvx512(const float* q, const float* base, size_t n, size_t d,
                    float* out) {
  if (d < 16) {
    // Below one vector width the masked load + 16-lane reduce costs more
    // than narrower code. The AVX2 set carries the cross-row kernel for the
    // typical PQ sub-dims (4-8) and the unrolled scalar loop otherwise.
#if defined(RPQ_HAVE_AVX2)
    internal::Avx2Kernels().l2_to_many(q, base, n, d, out);
#else
    internal::ScalarKernels().l2_to_many(q, base, n, d, out);
#endif
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + 2 < n) _mm_prefetch(reinterpret_cast<const char*>(base + (i + 2) * d),
                                _MM_HINT_T0);
    out[i] = SquaredL2Avx512(q, base + i * d, d);
  }
}

// Chunk-j lookup indices for sixteen codes (_mm512_set_epi32 takes operands
// high-lane first).
inline __m512i LoadIdx16(const uint8_t* const* c, size_t j) {
  return _mm512_set_epi32(c[15][j], c[14][j], c[13][j], c[12][j], c[11][j],
                          c[10][j], c[9][j], c[8][j], c[7][j], c[6][j], c[5][j],
                          c[4][j], c[3][j], c[2][j], c[1][j], c[0][j]);
}

inline float AdcOne(const float* table, size_t m, size_t k,
                    const uint8_t* code) {
  float acc = 0.f;
  const float* t = table;
  for (size_t j = 0; j < m; ++j, t += k) acc += t[code[j]];
  return acc;
}

// 32 codes in flight: two 16-lane gather+add chains. One accumulator lane per
// code, chunks added in index order — bit-identical to the scalar reference.
template <typename GetPtr>
void AdcBatchImpl512(const float* table, size_t m, size_t k, GetPtr ptr,
                     size_t n, float* out) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8_t* c[32];
    for (size_t r = 0; r < 32; ++r) {
      c[r] = ptr(i + r);
      _mm_prefetch(reinterpret_cast<const char*>(c[r]), _MM_HINT_T0);
    }
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc0 = _mm512_add_ps(acc0, _mm512_i32gather_ps(LoadIdx16(c, j), t, 4));
      acc1 = _mm512_add_ps(acc1, _mm512_i32gather_ps(LoadIdx16(c + 16, j), t, 4));
    }
    _mm512_storeu_ps(out + i, acc0);
    _mm512_storeu_ps(out + i + 16, acc1);
  }
  if (i + 16 <= n) {
    const uint8_t* c[16];
    for (size_t r = 0; r < 16; ++r) c[r] = ptr(i + r);
    __m512 acc = _mm512_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc = _mm512_add_ps(acc, _mm512_i32gather_ps(LoadIdx16(c, j), t, 4));
    }
    _mm512_storeu_ps(out + i, acc);
    i += 16;
  }
  for (; i < n; ++i) out[i] = AdcOne(table, m, k, ptr(i));
}

void AdcBatchAvx512(const float* table, size_t m, size_t k,
                    const uint8_t* codes, size_t code_stride, size_t n,
                    float* out) {
  AdcBatchImpl512(
      table, m, k, [&](size_t i) { return codes + i * code_stride; }, n, out);
}

void AdcBatchGatherAvx512(const float* table, size_t m, size_t k,
                          const uint8_t* codes, size_t code_stride,
                          const uint32_t* ids, size_t n, float* out) {
  AdcBatchImpl512(
      table, m, k,
      [&](size_t i) { return codes + static_cast<size_t>(ids[i]) * code_stride; },
      n, out);
}

#if defined(__GNUC__) || defined(__clang__)
#define RPQ_HAVE_AVX512BW_KERNEL 1
// The BW kernel carries its own target attribute instead of the whole TU
// being compiled with -mavx512bw: dispatch gates backend selection on
// avx512f alone, so nothing outside this function may require BW (an
// auto-vectorized loop elsewhere in the TU would SIGILL on F-only CPUs).
#define RPQ_BW_TARGET \
  __attribute__((target("avx2,fma,avx512f,avx512bw")))

RPQ_BW_TARGET static inline __m256i Dup128Row(const uint8_t* lut8,
                                              size_t row) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(lut8 + row * 16)));
}

// FastScan with 512-bit shuffles: one load covers two 32-byte rows of a
// block (four sub-quantizers), one vpshufb-512 scores 32 codes against two
// LUT rows at once. The LUT registers (row 2p duplicated in lanes 0-1, row
// 2p+2 in lanes 2-3) are precomputed outside the block loop. Widening to
// u16 before accumulating keeps sums exact — bit-identical to scalar.
RPQ_BW_TARGET void AdcFastScanAvx512(const uint8_t* lut8, size_t m2,
                                     const uint8_t* packed, size_t n_blocks,
                                     uint16_t* out) {
  const size_t rows = m2 / 2;
  constexpr size_t kMaxRows = 128;
  if (rows > kMaxRows) {
    internal::ScalarKernels().adc_fastscan(lut8, m2, packed, n_blocks, out);
    return;
  }
  const __m512i low_mask = _mm512_set1_epi8(0x0f);

  // luts_lo[i] serves the low nibbles of row pair {2i, 2i+1} (sub-quantizers
  // 4i and 4i+2), luts_hi[i] the high nibbles (4i+1 and 4i+3).
  __m512i luts_lo[kMaxRows / 2 + 1];
  __m512i luts_hi[kMaxRows / 2 + 1];
  const size_t row_pairs = rows / 2;
  for (size_t p = 0; p < row_pairs; ++p) {
    luts_lo[p] = _mm512_inserti64x4(
        _mm512_castsi256_si512(Dup128Row(lut8, 4 * p)), Dup128Row(lut8, 4 * p + 2), 1);
    luts_hi[p] = _mm512_inserti64x4(
        _mm512_castsi256_si512(Dup128Row(lut8, 4 * p + 1)), Dup128Row(lut8, 4 * p + 3), 1);
  }
  const __m256i low_mask256 = _mm256_set1_epi8(0x0f);
  __m256i tail_lut0 = _mm256_setzero_si256(), tail_lut1 = tail_lut0;
  if (rows % 2 != 0) {
    tail_lut0 = Dup128Row(lut8, 2 * (rows - 1));
    tail_lut1 = Dup128Row(lut8, 2 * (rows - 1) + 1);
  }
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    __m512i acc = _mm512_setzero_si512();  // codes 0..31 as u16
    for (size_t p = 0; p < row_pairs; ++p) {
      __m512i v = _mm512_loadu_si512(block + p * 64);
      __m512i lo = _mm512_and_si512(v, low_mask);
      __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
      __m512i v0 = _mm512_shuffle_epi8(luts_lo[p], lo);
      __m512i v1 = _mm512_shuffle_epi8(luts_hi[p], hi);
      // Each half of v0/v1 holds values for the same 32 codes (different
      // sub-quantizers), so all four widened halves add into one accumulator.
      acc = _mm512_add_epi16(
          acc, _mm512_cvtepu8_epi16(_mm512_castsi512_si256(v0)));
      acc = _mm512_add_epi16(
          acc, _mm512_cvtepu8_epi16(_mm512_extracti64x4_epi64(v0, 1)));
      acc = _mm512_add_epi16(
          acc, _mm512_cvtepu8_epi16(_mm512_castsi512_si256(v1)));
      acc = _mm512_add_epi16(
          acc, _mm512_cvtepu8_epi16(_mm512_extracti64x4_epi64(v1, 1)));
    }
    if (rows % 2 != 0) {  // odd trailing row: 256-bit pass
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + (rows - 1) * 32));
      __m256i lo = _mm256_and_si256(v, low_mask256);
      __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask256);
      __m256i v0 = _mm256_shuffle_epi8(tail_lut0, lo);
      __m256i v1 = _mm256_shuffle_epi8(tail_lut1, hi);
      acc = _mm512_add_epi16(acc, _mm512_cvtepu8_epi16(v0));
      acc = _mm512_add_epi16(acc, _mm512_cvtepu8_epi16(v1));
    }
    _mm512_storeu_si512(out + b * 32, acc);
  }
}

// Multi-query tile with 512-bit shuffles: each row-pair load (64 bytes, four
// sub-quantizers of 32 codes) and its nibble extraction are shared by all QT
// queries; per query a row-pair costs 2 vpshufb-512 + 4 widening adds into
// one zmm accumulator. LUT registers for the whole tile are staged up-front
// in the caller's scratch (lo/hi per row-pair per query, plus the odd
// trailing row's 256-bit pair).
template <int QT>
RPQ_BW_TARGET void FastScanMultiTileAvx512(const uint8_t* luts8, size_t m2,
                                           const uint8_t* packed,
                                           size_t n_blocks, uint16_t* out,
                                           size_t out_stride, __m512i* lut_lo,
                                           __m512i* lut_hi) {
  const size_t rows = m2 / 2;
  const size_t row_pairs = rows / 2;
  for (int t = 0; t < QT; ++t) {
    const uint8_t* lut = luts8 + static_cast<size_t>(t) * m2 * 16;
    for (size_t p = 0; p < row_pairs; ++p) {
      lut_lo[p * QT + t] = _mm512_inserti64x4(
          _mm512_castsi256_si512(Dup128Row(lut, 4 * p)),
          Dup128Row(lut, 4 * p + 2), 1);
      lut_hi[p * QT + t] = _mm512_inserti64x4(
          _mm512_castsi256_si512(Dup128Row(lut, 4 * p + 1)),
          Dup128Row(lut, 4 * p + 3), 1);
    }
  }
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m256i low_mask256 = _mm256_set1_epi8(0x0f);
  __m256i tail_lut0[QT], tail_lut1[QT];
  if (rows % 2 != 0) {
    for (int t = 0; t < QT; ++t) {
      const uint8_t* lut = luts8 + static_cast<size_t>(t) * m2 * 16;
      tail_lut0[t] = Dup128Row(lut, 2 * (rows - 1));
      tail_lut1[t] = Dup128Row(lut, 2 * (rows - 1) + 1);
    }
  }
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    __m512i acc[QT];
    for (int t = 0; t < QT; ++t) acc[t] = _mm512_setzero_si512();
    for (size_t p = 0; p < row_pairs; ++p) {
      __m512i v = _mm512_loadu_si512(block + p * 64);
      __m512i lo = _mm512_and_si512(v, low_mask);
      __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
      for (int t = 0; t < QT; ++t) {
        __m512i v0 = _mm512_shuffle_epi8(lut_lo[p * QT + t], lo);
        __m512i v1 = _mm512_shuffle_epi8(lut_hi[p * QT + t], hi);
        acc[t] = _mm512_add_epi16(
            acc[t], _mm512_cvtepu8_epi16(_mm512_castsi512_si256(v0)));
        acc[t] = _mm512_add_epi16(
            acc[t], _mm512_cvtepu8_epi16(_mm512_extracti64x4_epi64(v0, 1)));
        acc[t] = _mm512_add_epi16(
            acc[t], _mm512_cvtepu8_epi16(_mm512_castsi512_si256(v1)));
        acc[t] = _mm512_add_epi16(
            acc[t], _mm512_cvtepu8_epi16(_mm512_extracti64x4_epi64(v1, 1)));
      }
    }
    if (rows % 2 != 0) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + (rows - 1) * 32));
      __m256i lo = _mm256_and_si256(v, low_mask256);
      __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask256);
      for (int t = 0; t < QT; ++t) {
        __m256i v0 = _mm256_shuffle_epi8(tail_lut0[t], lo);
        __m256i v1 = _mm256_shuffle_epi8(tail_lut1[t], hi);
        acc[t] = _mm512_add_epi16(acc[t], _mm512_cvtepu8_epi16(v0));
        acc[t] = _mm512_add_epi16(acc[t], _mm512_cvtepu8_epi16(v1));
      }
    }
    for (int t = 0; t < QT; ++t) {
      _mm512_storeu_si512(out + static_cast<size_t>(t) * out_stride + b * 32,
                          acc[t]);
    }
  }
}

RPQ_BW_TARGET void AdcFastScanMultiAvx512(const uint8_t* luts8, size_t nq,
                                          size_t m2, const uint8_t* packed,
                                          size_t n_blocks, uint16_t* out) {
  const size_t rows = m2 / 2;
  constexpr size_t kMaxRows = 128;
  if (rows > kMaxRows) {
    internal::ScalarKernels().adc_fastscan_multi(luts8, nq, m2, packed,
                                                 n_blocks, out);
    return;
  }
  constexpr int kTile = 4;
  __m512i lut_lo[(kMaxRows / 2) * kTile];
  __m512i lut_hi[(kMaxRows / 2) * kTile];
  const size_t out_stride = n_blocks * 32;
  const size_t lut_stride = m2 * 16;
  size_t q = 0;
  for (; q + kTile <= nq; q += kTile) {
    FastScanMultiTileAvx512<kTile>(luts8 + q * lut_stride, m2, packed,
                                   n_blocks, out + q * out_stride, out_stride,
                                   lut_lo, lut_hi);
  }
  if (q + 2 <= nq) {
    FastScanMultiTileAvx512<2>(luts8 + q * lut_stride, m2, packed, n_blocks,
                               out + q * out_stride, out_stride, lut_lo,
                               lut_hi);
    q += 2;
  }
  if (q < nq) {
    AdcFastScanAvx512(luts8 + q * lut_stride, m2, packed, n_blocks,
                      out + q * out_stride);
  }
}

// Split tables delegate to the 4-bit kernels with m2 = 2m — the split block
// layout is byte-identical to the nibble-expanded one (see kernels.h), so
// the 512-bit shuffle path and the bit-exactness carry over unchanged.
RPQ_BW_TARGET void AdcFastScanSplitAvx512(const uint8_t* lut8, size_t m,
                                          const uint8_t* packed,
                                          size_t n_blocks, uint16_t* out) {
  AdcFastScanAvx512(lut8, 2 * m, packed, n_blocks, out);
}

RPQ_BW_TARGET void AdcFastScanSplitMultiAvx512(const uint8_t* luts8, size_t nq,
                                               size_t m, const uint8_t* packed,
                                               size_t n_blocks, uint16_t* out) {
  AdcFastScanMultiAvx512(luts8, nq, 2 * m, packed, n_blocks, out);
}

#endif  // RPQ_HAVE_AVX512BW_KERNEL (GNUC/clang target attribute)

#if defined(__x86_64__) || defined(__i386__)
bool CpuHasAvx512bw() { return __builtin_cpu_supports("avx512bw") != 0; }
#else
bool CpuHasAvx512bw() { return false; }
#endif

}  // namespace

namespace internal {

const KernelOps& Avx512Kernels() {
  static const KernelOps ops = [] {
#if defined(RPQ_HAVE_AVX2)
    KernelOps o = Avx2Kernels();
#else
    KernelOps o = ScalarKernels();
#endif
    o.name = "avx512";
    o.squared_l2 = SquaredL2Avx512;
    o.dot = DotAvx512;
    o.squared_norm = SquaredNormAvx512;
    o.l2_to_many = L2ToManyAvx512;
    o.adc_batch = AdcBatchAvx512;
    o.adc_batch_gather = AdcBatchGatherAvx512;
#if defined(RPQ_HAVE_AVX512BW_KERNEL)
    // The 512-bit shuffle kernels need AVX-512BW; on F-only CPUs keep the
    // inherited (AVX2 or scalar) FastScan implementations.
    if (CpuHasAvx512bw()) {
      o.adc_fastscan = AdcFastScanAvx512;
      o.adc_fastscan_multi = AdcFastScanMultiAvx512;
      o.adc_fastscan_split = AdcFastScanSplitAvx512;
      o.adc_fastscan_split_multi = AdcFastScanSplitMultiAvx512;
    }
#endif
    (void)CpuHasAvx512bw;
    return o;
  }();
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd

#endif  // RPQ_HAVE_AVX512
