// AVX-512F kernels: 16-wide FMA distances/table builds and 16-lane gather ADC
// scans. Avx512Kernels() starts from the AVX2 set and overrides what the
// wider ISA improves.
#include "simd/kernels.h"

#if defined(RPQ_HAVE_AVX512)

#include <immintrin.h>

namespace rpq::simd {
namespace {

float SquaredL2Avx512(const float* a, const float* b, size_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  if (i + 16 <= d) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    i += 16;
  }
  if (i < d) {
    // Masked tail: one pass covers the remaining (< 16) lanes.
    __mmask16 mask = static_cast<__mmask16>((1u << (d - i)) - 1u);
    __m512 d0 = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + i),
                              _mm512_maskz_loadu_ps(mask, b + i));
    acc1 = _mm512_fmadd_ps(d0, d0, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float DotAvx512(const float* a, const float* b, size_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  if (i + 16 <= d) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    i += 16;
  }
  if (i < d) {
    __mmask16 mask = static_cast<__mmask16>((1u << (d - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + i),
                           _mm512_maskz_loadu_ps(mask, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float SquaredNormAvx512(const float* a, size_t d) { return DotAvx512(a, a, d); }

void L2ToManyAvx512(const float* q, const float* base, size_t n, size_t d,
                    float* out) {
  if (d < 16) {
    // Below one vector width the masked load + 16-lane reduce costs more than
    // the unrolled scalar loop (typical PQ sub-dims are 4-8).
    internal::ScalarKernels().l2_to_many(q, base, n, d, out);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + 2 < n) _mm_prefetch(reinterpret_cast<const char*>(base + (i + 2) * d),
                                _MM_HINT_T0);
    out[i] = SquaredL2Avx512(q, base + i * d, d);
  }
}

// Chunk-j lookup indices for sixteen codes (_mm512_set_epi32 takes operands
// high-lane first).
inline __m512i LoadIdx16(const uint8_t* const* c, size_t j) {
  return _mm512_set_epi32(c[15][j], c[14][j], c[13][j], c[12][j], c[11][j],
                          c[10][j], c[9][j], c[8][j], c[7][j], c[6][j], c[5][j],
                          c[4][j], c[3][j], c[2][j], c[1][j], c[0][j]);
}

inline float AdcOne(const float* table, size_t m, size_t k,
                    const uint8_t* code) {
  float acc = 0.f;
  const float* t = table;
  for (size_t j = 0; j < m; ++j, t += k) acc += t[code[j]];
  return acc;
}

// 32 codes in flight: two 16-lane gather+add chains. One accumulator lane per
// code, chunks added in index order — bit-identical to the scalar reference.
template <typename GetPtr>
void AdcBatchImpl512(const float* table, size_t m, size_t k, GetPtr ptr,
                     size_t n, float* out) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8_t* c[32];
    for (size_t r = 0; r < 32; ++r) {
      c[r] = ptr(i + r);
      _mm_prefetch(reinterpret_cast<const char*>(c[r]), _MM_HINT_T0);
    }
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc0 = _mm512_add_ps(acc0, _mm512_i32gather_ps(LoadIdx16(c, j), t, 4));
      acc1 = _mm512_add_ps(acc1, _mm512_i32gather_ps(LoadIdx16(c + 16, j), t, 4));
    }
    _mm512_storeu_ps(out + i, acc0);
    _mm512_storeu_ps(out + i + 16, acc1);
  }
  if (i + 16 <= n) {
    const uint8_t* c[16];
    for (size_t r = 0; r < 16; ++r) c[r] = ptr(i + r);
    __m512 acc = _mm512_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc = _mm512_add_ps(acc, _mm512_i32gather_ps(LoadIdx16(c, j), t, 4));
    }
    _mm512_storeu_ps(out + i, acc);
    i += 16;
  }
  for (; i < n; ++i) out[i] = AdcOne(table, m, k, ptr(i));
}

void AdcBatchAvx512(const float* table, size_t m, size_t k,
                    const uint8_t* codes, size_t code_stride, size_t n,
                    float* out) {
  AdcBatchImpl512(
      table, m, k, [&](size_t i) { return codes + i * code_stride; }, n, out);
}

void AdcBatchGatherAvx512(const float* table, size_t m, size_t k,
                          const uint8_t* codes, size_t code_stride,
                          const uint32_t* ids, size_t n, float* out) {
  AdcBatchImpl512(
      table, m, k,
      [&](size_t i) { return codes + static_cast<size_t>(ids[i]) * code_stride; },
      n, out);
}

}  // namespace

namespace internal {

const KernelOps& Avx512Kernels() {
  static const KernelOps ops = [] {
#if defined(RPQ_HAVE_AVX2)
    KernelOps o = Avx2Kernels();
#else
    KernelOps o = ScalarKernels();
#endif
    o.name = "avx512";
    o.squared_l2 = SquaredL2Avx512;
    o.dot = DotAvx512;
    o.squared_norm = SquaredNormAvx512;
    o.l2_to_many = L2ToManyAvx512;
    o.adc_batch = AdcBatchAvx512;
    o.adc_batch_gather = AdcBatchGatherAvx512;
    return o;
  }();
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd

#endif  // RPQ_HAVE_AVX512
