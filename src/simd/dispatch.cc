// Runtime CPU dispatch for the kernel subsystem. Resolution happens once, on
// first use, and honors two environment knobs:
//   RPQ_DISABLE_SIMD=1   force the scalar reference kernels
//   RPQ_SIMD=<name>      request a specific backend (silently downgraded when
//                        the CPU or the build lacks it)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "simd/simd.h"

namespace rpq::simd {
namespace {

// How fast one adc_batch implementation chews through a synthetic workload
// (m = 16, K = 256 — the paper's default regime): best-of-3 wall time.
double TimeAdcKernel(decltype(KernelOps::adc_batch) kernel) {
  constexpr size_t kM = 16, kK = 256, kN = 256, kReps = 8;
  std::vector<float> table(kM * kK);
  for (size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<float>(i % 97) * 0.25f;
  }
  std::vector<uint8_t> codes(kN * kM);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint8_t>((i * 131) & 0xff);
  }
  std::vector<float> out(kN);
  volatile float sink = 0.f;
  double best = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < kReps; ++r) {
      kernel(table.data(), kM, kK, codes.data(), kM, kN, out.data());
      sink = out[0];
    }
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - start;
    best = std::min(best, dt.count());
  }
  (void)sink;
  return best;
}

// Hardware gathers (vpgatherdps) range from great to microcoded-slow across
// x86 generations, so rather than guessing from CPUID, race the backend's
// gather-based ADC kernels against the unrolled scalar ones once at startup
// and keep the winner. Both accumulate in identical order, so the choice
// never changes results. The FastScan shuffle kernels — the 4-bit family and
// the split-table (K = 256) family, which delegates to it — are deliberately
// NOT calibrated: pshufb/tbl are single-uop fast on every generation that
// has them, so the vector implementations always stay.
KernelOps CalibrateAdc(KernelOps ops) {
  const KernelOps& scalar = internal::ScalarKernels();
  if (ops.adc_batch == scalar.adc_batch) return ops;
  if (TimeAdcKernel(scalar.adc_batch) < TimeAdcKernel(ops.adc_batch)) {
    ops.adc_batch = scalar.adc_batch;
    ops.adc_batch_gather = scalar.adc_batch_gather;
    // Reflect the swap in the reported name so benchmarks/debugging don't
    // attribute scalar ADC numbers to the vector backend.
    if (std::strcmp(ops.name, "avx2") == 0) ops.name = "avx2+scalar-adc";
    if (std::strcmp(ops.name, "avx512") == 0) ops.name = "avx512+scalar-adc";
  }
  return ops;
}

// __builtin_cpu_supports requires a literal argument, hence one tiny helper
// per feature instead of a parameterized one.
#if defined(__x86_64__) || defined(__i386__)
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
bool CpuHasAvx512f() { return __builtin_cpu_supports("avx512f") != 0; }
#else
bool CpuHasAvx2() { return false; }
bool CpuHasAvx512f() { return false; }
#endif

const KernelOps* PickByName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return &internal::ScalarKernels();
#if defined(RPQ_HAVE_AVX512)
  if (std::strcmp(name, "avx512") == 0 && CpuHasAvx512f()) {
    return &internal::Avx512Kernels();
  }
#endif
#if defined(RPQ_HAVE_AVX2)
  if (std::strcmp(name, "avx2") == 0 && CpuHasAvx2()) {
    return &internal::Avx2Kernels();
  }
#endif
#if defined(RPQ_HAVE_NEON)
  if (std::strcmp(name, "neon") == 0) return &internal::NeonKernels();
#endif
  return nullptr;
}

struct Choice {
  const KernelOps* ops;
  bool pinned;  ///< explicitly requested via env — no calibration overrides
};

Choice Resolve() {
  const char* disable = std::getenv("RPQ_DISABLE_SIMD");
  if (disable != nullptr && disable[0] != '\0' && disable[0] != '0') {
    return {&internal::ScalarKernels(), true};
  }
  if (const char* force = std::getenv("RPQ_SIMD")) {
    if (const KernelOps* ops = PickByName(force)) return {ops, true};
  }
#if defined(RPQ_HAVE_AVX512)
  if (CpuHasAvx512f()) return {&internal::Avx512Kernels(), false};
#endif
#if defined(RPQ_HAVE_AVX2)
  if (CpuHasAvx2()) return {&internal::Avx2Kernels(), false};
#endif
#if defined(RPQ_HAVE_NEON)
  return {&internal::NeonKernels(), false};
#endif
  return {&internal::ScalarKernels(), false};
}

}  // namespace

const KernelOps& Ops() {
  // A backend pinned through the environment is used exactly as built (so
  // RPQ_SIMD=avx2 really exercises the AVX2 gather kernels); only the
  // automatic choice gets the ADC calibration pass.
  static const KernelOps ops = [] {
    Choice c = Resolve();
    return c.pinned ? *c.ops : CalibrateAdc(*c.ops);
  }();
  return ops;
}

const KernelOps& ScalarOps() { return internal::ScalarKernels(); }

const char* ActiveKernelName() { return Ops().name; }

}  // namespace rpq::simd
