// Public entry point of the SIMD kernel subsystem.
//
// All hot per-element math in the library funnels through the function
// pointers returned by Ops(). The backend is chosen once, at first use:
//   1. RPQ_DISABLE_SIMD=1 in the environment forces the scalar reference path.
//   2. RPQ_SIMD=scalar|avx2|avx512|neon requests a specific backend (ignored
//      when the CPU or build does not support it).
//   3. Otherwise the best backend the CPU supports wins (avx512 > avx2 > neon
//      > scalar).
// ScalarOps() is always the portable reference implementation, kept around so
// tests and benchmarks can compare against it.
#pragma once

#include "simd/kernels.h"

namespace rpq::simd {

/// Runtime-dispatched kernel set (resolved once, thread-safe).
const KernelOps& Ops();

/// Portable scalar reference kernels.
const KernelOps& ScalarOps();

/// Name of the active backend ("scalar", "avx2", ...).
const char* ActiveKernelName();

inline float SquaredL2(const float* a, const float* b, size_t d) {
  return Ops().squared_l2(a, b, d);
}

inline float Dot(const float* a, const float* b, size_t d) {
  return Ops().dot(a, b, d);
}

inline float SquaredNorm(const float* a, size_t d) {
  return Ops().squared_norm(a, d);
}

/// out[i] = || q - base[i*d ..] ||^2 for i in [0, n).
inline void L2ToMany(const float* q, const float* base, size_t n, size_t d,
                     float* out) {
  Ops().l2_to_many(q, base, n, d, out);
}

/// Batched ADC scan over contiguous codes (stride between codes in bytes).
inline void AdcBatch(const float* table, size_t m, size_t k,
                     const uint8_t* codes, size_t code_stride, size_t n,
                     float* out) {
  Ops().adc_batch(table, m, k, codes, code_stride, n, out);
}

/// Batched ADC scan over codes addressed by vertex id.
inline void AdcBatchGather(const float* table, size_t m, size_t k,
                           const uint8_t* codes, size_t code_stride,
                           const uint32_t* ids, size_t n, float* out) {
  Ops().adc_batch_gather(table, m, k, codes, code_stride, ids, n, out);
}

/// FastScan scan over n_blocks 32-code blocks of transposed 4-bit codes:
/// raw uint16 LUT sums, bit-identical across backends (see kernels.h and
/// quant/fastscan.h for the layout and the float rescaling).
inline void AdcFastScan(const uint8_t* lut8, size_t m2, const uint8_t* packed,
                        size_t n_blocks, uint16_t* out) {
  Ops().adc_fastscan(lut8, m2, packed, n_blocks, out);
}

/// Multi-query FastScan: scores the same packed blocks against nq queries'
/// u8 LUTs (contiguous, m2*16 bytes each) while each block row is
/// register-resident; out is query-major (nq x n_blocks*32 u16 sums),
/// bit-identical to nq single-query AdcFastScan calls.
inline void AdcFastScanMulti(const uint8_t* luts8, size_t nq, size_t m2,
                             const uint8_t* packed, size_t n_blocks,
                             uint16_t* out) {
  Ops().adc_fastscan_multi(luts8, nq, m2, packed, n_blocks, out);
}

/// Split-table FastScan (K = 256 via two 4-bit planes): full-byte block rows
/// scored against a 2m x 16 u8 LUT (row 2j = chunk j's low nibble, row 2j+1
/// = high nibble); raw u16 sums, bit-identical across backends. See
/// kernels.h for the layout equivalence and quant/split.h for the tables.
inline void AdcFastScanSplit(const uint8_t* lut8, size_t m,
                             const uint8_t* packed, size_t n_blocks,
                             uint16_t* out) {
  Ops().adc_fastscan_split(lut8, m, packed, n_blocks, out);
}

/// Multi-query split FastScan: nq contiguous 2m x 16 LUTs, query-major sums,
/// bit-identical to nq single-query AdcFastScanSplit calls.
inline void AdcFastScanSplitMulti(const uint8_t* luts8, size_t nq, size_t m,
                                  const uint8_t* packed, size_t n_blocks,
                                  uint16_t* out) {
  Ops().adc_fastscan_split_multi(luts8, nq, m, packed, n_blocks, out);
}

}  // namespace rpq::simd
