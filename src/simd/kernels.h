// Internal kernel tables for the SIMD subsystem. Each instruction-set backend
// (scalar, AVX2, AVX-512, NEON) fills one KernelOps; dispatch.cc picks the
// best one the CPU supports at runtime. Library code should include
// simd/simd.h instead of this header.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rpq::simd {

/// One vtable of hot kernels. Every backend must produce results that agree
/// with the scalar reference within 1e-4 relative error; the ADC kernels
/// accumulate in the same chunk order as the scalar path and are therefore
/// bit-identical to it.
struct KernelOps {
  const char* name;  ///< "scalar", "avx2", "avx512", "neon"

  /// || a - b ||^2 over d floats.
  float (*squared_l2)(const float* a, const float* b, size_t d);
  /// <a, b> over d floats.
  float (*dot)(const float* a, const float* b, size_t d);
  /// || a ||^2 over d floats.
  float (*squared_norm)(const float* a, size_t d);

  /// out[i] = || q - base[i*d ..] ||^2 for i in [0, n). Fused row-block
  /// kernel used for ADC lookup-table construction and nearest-centroid
  /// scans (base is n contiguous d-dim rows).
  void (*l2_to_many)(const float* q, const float* base, size_t n, size_t d,
                     float* out);

  /// Batched ADC scan over contiguous codes:
  ///   out[i] = sum_j table[j*k + codes[i*code_stride + j]],  j in [0, m).
  void (*adc_batch)(const float* table, size_t m, size_t k,
                    const uint8_t* codes, size_t code_stride, size_t n,
                    float* out);

  /// Batched ADC scan gathering codes by vertex id (beam-search expansion):
  ///   out[i] = sum_j table[j*k + codes[ids[i]*code_stride + j]].
  void (*adc_batch_gather)(const float* table, size_t m, size_t k,
                           const uint8_t* codes, size_t code_stride,
                           const uint32_t* ids, size_t n, float* out);

  /// FastScan (LUT16) scan over transposed 4-bit codes: `packed` holds
  /// n_blocks blocks of 32 codes; each block is m2/2 rows of 32 bytes where
  /// row p, byte i carries code i's nibble for sub-quantizer 2p (low) and
  /// 2p+1 (high). `lut8` is an m2 x 16 uint8 lookup table (m2 even). The
  /// kernel writes raw integer sums
  ///   out[b*32 + i] = sum_j lut8[j*16 + nibble_j(block b, code i)]
  /// as uint16 (callers rescale to float); all integer adds, so every
  /// backend is bit-identical to the scalar reference. m2 <= 256 keeps the
  /// accumulators from overflowing. SIMD backends keep the 16-entry LUT rows
  /// register-resident and score 32 codes per in-register shuffle
  /// (pshufb / vpshufb-512 / tbl).
  void (*adc_fastscan)(const uint8_t* lut8, size_t m2, const uint8_t* packed,
                       size_t n_blocks, uint16_t* out);

  /// Multi-query FastScan: the same blocked code layout scored against `nq`
  /// queries' u8 lookup tables in one pass. `luts8` holds the nq tables
  /// contiguously (query q's m2 x 16 table at luts8 + q*m2*16); the kernel
  /// writes query-major sums, out[q*n_blocks*32 + b*32 + i]. SIMD backends
  /// load each 32-byte block row and extract its nibble indices ONCE, then
  /// shuffle it against every query's LUT while it is register-resident —
  /// the per-code win over nq independent adc_fastscan calls that makes
  /// batched IVF list scans pay. Per-query accumulation is independent
  /// integer adds, so results are bit-identical to nq single-query scans
  /// (and to the scalar reference, which is exactly that loop).
  void (*adc_fastscan_multi)(const uint8_t* luts8, size_t nq, size_t m2,
                             const uint8_t* packed, size_t n_blocks,
                             uint16_t* out);

  /// Split-table FastScan (K = 256 scored as two 4-bit planes, see
  /// quant/split.h): `packed` blocks carry FULL 8-bit codes — row j, byte i
  /// is code i's byte for chunk j — and `lut8` is a 2m x 16 table where row
  /// 2j scores chunk j's low nibble and row 2j+1 its high nibble:
  ///   out[b*32+i] = sum_j lut8[(2j)*16 + (c_j & 15)] + lut8[(2j+1)*16 + (c_j >> 4)]
  /// A split block is byte-identical to PackedCodes on the nibble-expanded
  /// code with m2 = 2m, so this IS adc_fastscan at twice the row count —
  /// SIMD backends delegate to their 4-bit kernel (same shuffles, two LUT
  /// rows per byte row) and stay bit-identical to the scalar reference.
  /// m <= 128 keeps 2m within the layout's m2 <= 256 overflow contract.
  void (*adc_fastscan_split)(const uint8_t* lut8, size_t m,
                             const uint8_t* packed, size_t n_blocks,
                             uint16_t* out);

  /// Multi-query split FastScan: nq contiguous 2m x 16 tables, query-major
  /// u16 sums — the adc_fastscan_multi batching contract on split blocks.
  void (*adc_fastscan_split_multi)(const uint8_t* luts8, size_t nq, size_t m,
                                   const uint8_t* packed, size_t n_blocks,
                                   uint16_t* out);
};

namespace internal {

const KernelOps& ScalarKernels();
#if defined(RPQ_HAVE_AVX2)
const KernelOps& Avx2Kernels();
#endif
#if defined(RPQ_HAVE_AVX512)
const KernelOps& Avx512Kernels();
#endif
#if defined(RPQ_HAVE_NEON)
const KernelOps& NeonKernels();
#endif

}  // namespace internal
}  // namespace rpq::simd
