// Portable scalar reference kernels. Every SIMD backend is validated against
// these in tests/simd_kernel_test.cc. The ADC kernels accumulate chunk-by-
// chunk in index order so vector backends can match them bit-for-bit.
#include "simd/kernels.h"

#include <cstring>

namespace rpq::simd {
namespace {

float SquaredL2Scalar(const float* a, const float* b, size_t d) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    float d2 = a[i + 2] - b[i + 2];
    float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < d; ++i) {
    float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

float DotScalar(const float* a, const float* b, size_t d) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredNormScalar(const float* a, size_t d) { return DotScalar(a, a, d); }

void L2ToManyScalar(const float* q, const float* base, size_t n, size_t d,
                    float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = SquaredL2Scalar(q, base + i * d, d);
}

// One code, m table reads + adds in chunk order.
inline float AdcOne(const float* table, size_t m, size_t k,
                    const uint8_t* code) {
  float acc = 0.f;
  const float* t = table;
  for (size_t j = 0; j < m; ++j, t += k) acc += t[code[j]];
  return acc;
}

// Four independent accumulator chains hide the add latency that dominates
// the naive per-code loop; each chain still sums in chunk order.
template <typename GetPtr>
void AdcBatchImpl(const float* table, size_t m, size_t k, GetPtr ptr, size_t n,
                  float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint8_t* c0 = ptr(i);
    const uint8_t* c1 = ptr(i + 1);
    const uint8_t* c2 = ptr(i + 2);
    const uint8_t* c3 = ptr(i + 3);
    float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      a0 += t[c0[j]];
      a1 += t[c1[j]];
      a2 += t[c2[j]];
      a3 += t[c3[j]];
    }
    out[i] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < n; ++i) out[i] = AdcOne(table, m, k, ptr(i));
}

void AdcBatchScalar(const float* table, size_t m, size_t k,
                    const uint8_t* codes, size_t code_stride, size_t n,
                    float* out) {
  AdcBatchImpl(
      table, m, k, [&](size_t i) { return codes + i * code_stride; }, n, out);
}

void AdcBatchGatherScalar(const float* table, size_t m, size_t k,
                          const uint8_t* codes, size_t code_stride,
                          const uint32_t* ids, size_t n, float* out) {
  AdcBatchImpl(
      table, m, k,
      [&](size_t i) { return codes + static_cast<size_t>(ids[i]) * code_stride; },
      n, out);
}

// FastScan reference: per block, walk the m2/2 nibble-pair rows and add both
// LUT entries of every code. Integer adds in any order give the same sums,
// so SIMD backends are bit-identical by construction.
void AdcFastScanScalar(const uint8_t* lut8, size_t m2, const uint8_t* packed,
                       size_t n_blocks, uint16_t* out) {
  const size_t rows = m2 / 2;
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    uint16_t* o = out + b * 32;
    for (size_t i = 0; i < 32; ++i) o[i] = 0;
    const uint8_t* lut = lut8;
    for (size_t p = 0; p < rows; ++p, lut += 32) {
      const uint8_t* row = block + p * 32;
      for (size_t i = 0; i < 32; ++i) {
        o[i] = static_cast<uint16_t>(o[i] + lut[row[i] & 0x0f] +
                                     lut[16 + (row[i] >> 4)]);
      }
    }
  }
}

// Multi-query reference: literally nq independent single-query scans — the
// baseline the batched SIMD kernels must match bit-for-bit and beat per code.
void AdcFastScanMultiScalar(const uint8_t* luts8, size_t nq, size_t m2,
                            const uint8_t* packed, size_t n_blocks,
                            uint16_t* out) {
  for (size_t q = 0; q < nq; ++q) {
    AdcFastScanScalar(luts8 + q * m2 * 16, m2, packed, n_blocks,
                      out + q * n_blocks * 32);
  }
}

// Split-table reference: block rows hold FULL 8-bit codes (one row per
// chunk) and each byte indexes two 16-entry LUT rows — low nibble into row
// 2j, high nibble into row 2j+1. Structurally this is AdcFastScanScalar on
// the nibble-expanded layout (m2 = 2m); it is written out as its own loop so
// the equivalence every SIMD backend's delegation relies on is pinned by an
// independent reference, not by the thing being tested.
void AdcFastScanSplitScalar(const uint8_t* lut8, size_t m,
                            const uint8_t* packed, size_t n_blocks,
                            uint16_t* out) {
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * m * 32;
    uint16_t* o = out + b * 32;
    for (size_t i = 0; i < 32; ++i) o[i] = 0;
    const uint8_t* lut = lut8;
    for (size_t j = 0; j < m; ++j, lut += 32) {
      const uint8_t* row = block + j * 32;
      for (size_t i = 0; i < 32; ++i) {
        o[i] = static_cast<uint16_t>(o[i] + lut[row[i] & 0x0f] +
                                     lut[16 + (row[i] >> 4)]);
      }
    }
  }
}

void AdcFastScanSplitMultiScalar(const uint8_t* luts8, size_t nq, size_t m,
                                 const uint8_t* packed, size_t n_blocks,
                                 uint16_t* out) {
  for (size_t q = 0; q < nq; ++q) {
    AdcFastScanSplitScalar(luts8 + q * 2 * m * 16, m, packed, n_blocks,
                           out + q * n_blocks * 32);
  }
}

}  // namespace

namespace internal {

const KernelOps& ScalarKernels() {
  static const KernelOps ops = {
      "scalar",          SquaredL2Scalar, DotScalar,
      SquaredNormScalar, L2ToManyScalar,  AdcBatchScalar,
      AdcBatchGatherScalar, AdcFastScanScalar, AdcFastScanMultiScalar,
      AdcFastScanSplitScalar, AdcFastScanSplitMultiScalar,
  };
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd
