// AVX2 + FMA kernels. Compiled with -mavx2 -mfma (see CMakeLists.txt); only
// ever called after dispatch.cc has verified the CPU supports AVX2.
//
// The ADC kernels use vpgatherdps on the lookup-table rows and keep one
// accumulator lane per code, adding chunks in index order — bit-identical to
// the scalar reference, which the beam-search regression test relies on.
#include "simd/kernels.h"

#if defined(RPQ_HAVE_AVX2)

#include <immintrin.h>

namespace rpq::simd {
namespace {

inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  return _mm_cvtss_f32(lo);
}

float SquaredL2Avx2(const float* a, const float* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= d) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    i += 8;
  }
  float acc = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) {
    float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

float DotAvx2(const float* a, const float* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= d) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    i += 8;
  }
  float acc = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredNormAvx2(const float* a, size_t d) { return DotAvx2(a, a, d); }

// Cross-row kernel for the small sub-dims PQ table builds use (d in [4, 8]):
// four masked row loads per iteration and one in-register 4-way
// transpose-reduce (three hadds + one cross-lane add) instead of four
// horizontal sums — the hsum was what made the per-row path lose to scalar.
void L2ToManySmallDAvx2(const float* q, const float* base, size_t n, size_t d,
                        float* out) {
  alignas(32) int32_t mask_arr[8];
  for (size_t l = 0; l < 8; ++l) mask_arr[l] = l < d ? -1 : 0;
  const __m256i mask = _mm256_load_si256(reinterpret_cast<__m256i*>(mask_arr));
  const __m256 qv = _mm256_maskload_ps(q, mask);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256 d0 = _mm256_sub_ps(_mm256_maskload_ps(base + i * d, mask), qv);
    __m256 d1 = _mm256_sub_ps(_mm256_maskload_ps(base + (i + 1) * d, mask), qv);
    __m256 d2 = _mm256_sub_ps(_mm256_maskload_ps(base + (i + 2) * d, mask), qv);
    __m256 d3 = _mm256_sub_ps(_mm256_maskload_ps(base + (i + 3) * d, mask), qv);
    __m256 t0 = _mm256_hadd_ps(_mm256_mul_ps(d0, d0), _mm256_mul_ps(d1, d1));
    __m256 t1 = _mm256_hadd_ps(_mm256_mul_ps(d2, d2), _mm256_mul_ps(d3, d3));
    __m256 t2 = _mm256_hadd_ps(t0, t1);  // [r0 r1 r2 r3 | r0' r1' r2' r3']
    __m128 r = _mm_add_ps(_mm256_castps256_ps128(t2),
                          _mm256_extractf128_ps(t2, 1));
    _mm_storeu_ps(out + i, r);
  }
  for (; i < n; ++i) {
    __m256 diff = _mm256_sub_ps(_mm256_maskload_ps(base + i * d, mask), qv);
    __m256 sq = _mm256_mul_ps(diff, diff);
    out[i] = Hsum256(sq);
  }
}

// Cross-row kernel for d in (8, 16): one full 8-float load plus one masked
// load of the remaining d-8 lanes per row, then the same in-register 4-way
// transpose-reduce as the small-d kernel — no per-row horizontal sum in the
// hot loop. Closes the last L2ToMany dimension gap (sub-dims 9-15, e.g.
// m = 10 chunks of a 128-dim space).
void L2ToManyMidDAvx2(const float* q, const float* base, size_t n, size_t d,
                      float* out) {
  alignas(32) int32_t mask_arr[8];
  const size_t tail = d - 8;
  for (size_t l = 0; l < 8; ++l) mask_arr[l] = l < tail ? -1 : 0;
  const __m256i mask = _mm256_load_si256(reinterpret_cast<__m256i*>(mask_arr));
  const __m256 q0 = _mm256_loadu_ps(q);
  const __m256 q1 = _mm256_maskload_ps(q + 8, mask);
  auto row_sq = [&](const float* row) {
    __m256 a = _mm256_sub_ps(_mm256_loadu_ps(row), q0);
    __m256 b = _mm256_sub_ps(_mm256_maskload_ps(row + 8, mask), q1);
    return _mm256_fmadd_ps(b, b, _mm256_mul_ps(a, a));
  };
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256 t0 = _mm256_hadd_ps(row_sq(base + i * d), row_sq(base + (i + 1) * d));
    __m256 t1 =
        _mm256_hadd_ps(row_sq(base + (i + 2) * d), row_sq(base + (i + 3) * d));
    __m256 t2 = _mm256_hadd_ps(t0, t1);
    __m128 r = _mm_add_ps(_mm256_castps256_ps128(t2),
                          _mm256_extractf128_ps(t2, 1));
    _mm_storeu_ps(out + i, r);
  }
  for (; i < n; ++i) out[i] = Hsum256(row_sq(base + i * d));
}

void L2ToManyAvx2(const float* q, const float* base, size_t n, size_t d,
                  float* out) {
  if (d >= 4 && d <= 8) {
    L2ToManySmallDAvx2(q, base, n, d, out);
    return;
  }
  if (d > 8 && d < 16) {
    L2ToManyMidDAvx2(q, base, n, d, out);
    return;
  }
  if (d < 4) {
    // d in {1, 2, 3}: below the narrowest useful vector the unrolled scalar
    // loop measures faster than masked-load gymnastics.
    internal::ScalarKernels().l2_to_many(q, base, n, d, out);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + 2 < n) _mm_prefetch(reinterpret_cast<const char*>(base + (i + 2) * d),
                                _MM_HINT_T0);
    out[i] = SquaredL2Avx2(q, base + i * d, d);
  }
}

// Chunk-j lookup indices for eight codes.
inline __m256i LoadIdx8(const uint8_t* const* c, size_t j) {
  return _mm256_setr_epi32(c[0][j], c[1][j], c[2][j], c[3][j], c[4][j], c[5][j],
                           c[6][j], c[7][j]);
}

inline float AdcOne(const float* table, size_t m, size_t k,
                    const uint8_t* code) {
  float acc = 0.f;
  const float* t = table;
  for (size_t j = 0; j < m; ++j, t += k) acc += t[code[j]];
  return acc;
}

// Sixteen codes in flight: two gather+add chains (one per 8-code group) so the
// vector-add latency of one chain overlaps the gathers of the other.
template <typename GetPtr>
void AdcBatchImpl(const float* table, size_t m, size_t k, GetPtr ptr, size_t n,
                  float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8_t* c[16];
    for (size_t r = 0; r < 16; ++r) {
      c[r] = ptr(i + r);
      _mm_prefetch(reinterpret_cast<const char*>(c[r]), _MM_HINT_T0);
    }
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc0 = _mm256_add_ps(acc0, _mm256_i32gather_ps(t, LoadIdx8(c, j), 4));
      acc1 = _mm256_add_ps(acc1, _mm256_i32gather_ps(t, LoadIdx8(c + 8, j), 4));
    }
    _mm256_storeu_ps(out + i, acc0);
    _mm256_storeu_ps(out + i + 8, acc1);
  }
  if (i + 8 <= n) {
    const uint8_t* c[8];
    for (size_t r = 0; r < 8; ++r) c[r] = ptr(i + r);
    __m256 acc = _mm256_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(t, LoadIdx8(c, j), 4));
    }
    _mm256_storeu_ps(out + i, acc);
    i += 8;
  }
  for (; i < n; ++i) out[i] = AdcOne(table, m, k, ptr(i));
}

void AdcBatchAvx2(const float* table, size_t m, size_t k, const uint8_t* codes,
                  size_t code_stride, size_t n, float* out) {
  AdcBatchImpl(
      table, m, k, [&](size_t i) { return codes + i * code_stride; }, n, out);
}

void AdcBatchGatherAvx2(const float* table, size_t m, size_t k,
                        const uint8_t* codes, size_t code_stride,
                        const uint32_t* ids, size_t n, float* out) {
  AdcBatchImpl(
      table, m, k,
      [&](size_t i) { return codes + static_cast<size_t>(ids[i]) * code_stride; },
      n, out);
}

// FastScan: the 16-entry LUT rows live in registers (each duplicated across
// both 128-bit lanes) and one vpshufb scores a whole 32-code block row. The
// u8 lookup values are widened to u16 before accumulating, so sums are exact
// and bit-identical to the scalar reference.
void AdcFastScanAvx2(const uint8_t* lut8, size_t m2, const uint8_t* packed,
                     size_t n_blocks, uint16_t* out) {
  const size_t rows = m2 / 2;
  // Hoist the LUT broadcasts out of the block loop: two registers per row
  // pair (sub-quantizers 2p and 2p+1), at most 256 total for m2 = 256 (the
  // layout's contractual maximum — beyond it u16 sums could overflow anyway).
  constexpr size_t kMaxRows = 128;
  if (rows > kMaxRows) {
    internal::ScalarKernels().adc_fastscan(lut8, m2, packed, n_blocks, out);
    return;
  }
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i luts[2 * kMaxRows];
  for (size_t p = 0; p < rows; ++p) {
    luts[2 * p] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lut8 + 2 * p * 16)));
    luts[2 * p + 1] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(lut8 + (2 * p + 1) * 16)));
  }
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    __m256i acc_lo = _mm256_setzero_si256();  // codes 0..15 as u16
    __m256i acc_hi = _mm256_setzero_si256();  // codes 16..31 as u16
    for (size_t p = 0; p < rows; ++p) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + p * 32));
      __m256i lo = _mm256_and_si256(v, low_mask);
      __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
      __m256i v0 = _mm256_shuffle_epi8(luts[2 * p], lo);
      __m256i v1 = _mm256_shuffle_epi8(luts[2 * p + 1], hi);
      acc_lo = _mm256_add_epi16(
          acc_lo, _mm256_cvtepu8_epi16(_mm256_castsi256_si128(v0)));
      acc_hi = _mm256_add_epi16(
          acc_hi, _mm256_cvtepu8_epi16(_mm256_extracti128_si256(v0, 1)));
      acc_lo = _mm256_add_epi16(
          acc_lo, _mm256_cvtepu8_epi16(_mm256_castsi256_si128(v1)));
      acc_hi = _mm256_add_epi16(
          acc_hi, _mm256_cvtepu8_epi16(_mm256_extracti128_si256(v1, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * 32), acc_lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * 32 + 16), acc_hi);
  }
}

// One tile of QT queries over every block. The tile's LUT rows are staged as
// broadcast registers up-front (lutv[row][t], filled by the caller's scratch
// buffer); inside the block loop each 32-byte row is loaded and its nibble
// indices extracted ONCE, then shuffled against all QT queries' LUTs while
// register-resident. Per extra query a row costs only 2 shuffles + 4
// widening adds — the multi-query amortization the IVF batched scan buys.
template <int QT>
void FastScanMultiTileAvx2(const uint8_t* luts8, size_t m2,
                           const uint8_t* packed, size_t n_blocks,
                           uint16_t* out, size_t out_stride, __m256i* lutv) {
  const size_t rows = m2 / 2;
  for (int t = 0; t < QT; ++t) {
    const uint8_t* lut = luts8 + static_cast<size_t>(t) * m2 * 16;
    for (size_t r = 0; r < 2 * rows; ++r) {
      lutv[r * QT + t] = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lut + r * 16)));
    }
  }
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8_t* block = packed + b * rows * 32;
    __m256i acc_lo[QT], acc_hi[QT];
    for (int t = 0; t < QT; ++t) {
      acc_lo[t] = _mm256_setzero_si256();
      acc_hi[t] = _mm256_setzero_si256();
    }
    for (size_t p = 0; p < rows; ++p) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + p * 32));
      __m256i lo = _mm256_and_si256(v, low_mask);
      __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
      for (int t = 0; t < QT; ++t) {
        __m256i v0 = _mm256_shuffle_epi8(lutv[(2 * p) * QT + t], lo);
        __m256i v1 = _mm256_shuffle_epi8(lutv[(2 * p + 1) * QT + t], hi);
        acc_lo[t] = _mm256_add_epi16(
            acc_lo[t], _mm256_cvtepu8_epi16(_mm256_castsi256_si128(v0)));
        acc_hi[t] = _mm256_add_epi16(
            acc_hi[t], _mm256_cvtepu8_epi16(_mm256_extracti128_si256(v0, 1)));
        acc_lo[t] = _mm256_add_epi16(
            acc_lo[t], _mm256_cvtepu8_epi16(_mm256_castsi256_si128(v1)));
        acc_hi[t] = _mm256_add_epi16(
            acc_hi[t], _mm256_cvtepu8_epi16(_mm256_extracti128_si256(v1, 1)));
      }
    }
    for (int t = 0; t < QT; ++t) {
      uint16_t* o = out + static_cast<size_t>(t) * out_stride + b * 32;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o), acc_lo[t]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 16), acc_hi[t]);
    }
  }
}

void AdcFastScanMultiAvx2(const uint8_t* luts8, size_t nq, size_t m2,
                          const uint8_t* packed, size_t n_blocks,
                          uint16_t* out) {
  const size_t rows = m2 / 2;
  constexpr size_t kMaxRows = 128;
  if (rows > kMaxRows) {
    internal::ScalarKernels().adc_fastscan_multi(luts8, nq, m2, packed,
                                                 n_blocks, out);
    return;
  }
  constexpr int kTile = 4;  // 8 u16 accumulators + shared row state in regs
  __m256i lutv[2 * kMaxRows * kTile];
  const size_t out_stride = n_blocks * 32;
  const size_t lut_stride = m2 * 16;
  size_t q = 0;
  for (; q + kTile <= nq; q += kTile) {
    FastScanMultiTileAvx2<kTile>(luts8 + q * lut_stride, m2, packed, n_blocks,
                                 out + q * out_stride, out_stride, lutv);
  }
  if (q + 2 <= nq) {
    FastScanMultiTileAvx2<2>(luts8 + q * lut_stride, m2, packed, n_blocks,
                             out + q * out_stride, out_stride, lutv);
    q += 2;
  }
  if (q < nq) {
    AdcFastScanAvx2(luts8 + q * lut_stride, m2, packed, n_blocks,
                    out + q * out_stride);
  }
}

// Split tables reuse the 4-bit kernels unchanged: a split block's full-byte
// rows are byte-identical to the nibble-expanded layout with m2 = 2m (low
// nibble = LUT row 2j, high nibble = row 2j+1), so delegating keeps the
// shuffle path and the bit-exactness for free. m <= 128 lands exactly on
// the kernel's kMaxRows register budget.
void AdcFastScanSplitAvx2(const uint8_t* lut8, size_t m, const uint8_t* packed,
                          size_t n_blocks, uint16_t* out) {
  AdcFastScanAvx2(lut8, 2 * m, packed, n_blocks, out);
}

void AdcFastScanSplitMultiAvx2(const uint8_t* luts8, size_t nq, size_t m,
                               const uint8_t* packed, size_t n_blocks,
                               uint16_t* out) {
  AdcFastScanMultiAvx2(luts8, nq, 2 * m, packed, n_blocks, out);
}

}  // namespace

namespace internal {

const KernelOps& Avx2Kernels() {
  static const KernelOps ops = {
      "avx2",          SquaredL2Avx2, DotAvx2,      SquaredNormAvx2,
      L2ToManyAvx2,    AdcBatchAvx2,  AdcBatchGatherAvx2,
      AdcFastScanAvx2, AdcFastScanMultiAvx2,
      AdcFastScanSplitAvx2, AdcFastScanSplitMultiAvx2,
  };
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd

#endif  // RPQ_HAVE_AVX2
