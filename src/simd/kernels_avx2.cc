// AVX2 + FMA kernels. Compiled with -mavx2 -mfma (see CMakeLists.txt); only
// ever called after dispatch.cc has verified the CPU supports AVX2.
//
// The ADC kernels use vpgatherdps on the lookup-table rows and keep one
// accumulator lane per code, adding chunks in index order — bit-identical to
// the scalar reference, which the beam-search regression test relies on.
#include "simd/kernels.h"

#if defined(RPQ_HAVE_AVX2)

#include <immintrin.h>

namespace rpq::simd {
namespace {

inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  return _mm_cvtss_f32(lo);
}

float SquaredL2Avx2(const float* a, const float* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= d) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    i += 8;
  }
  float acc = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) {
    float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

float DotAvx2(const float* a, const float* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= d) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    i += 8;
  }
  float acc = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredNormAvx2(const float* a, size_t d) { return DotAvx2(a, a, d); }

void L2ToManyAvx2(const float* q, const float* base, size_t n, size_t d,
                  float* out) {
  if (d < 16) {
    // Below two vector widths the per-row hsum dominates; the unrolled scalar
    // loop measures faster (typical PQ sub-dims are 4-8).
    internal::ScalarKernels().l2_to_many(q, base, n, d, out);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + 2 < n) _mm_prefetch(reinterpret_cast<const char*>(base + (i + 2) * d),
                                _MM_HINT_T0);
    out[i] = SquaredL2Avx2(q, base + i * d, d);
  }
}

// Chunk-j lookup indices for eight codes.
inline __m256i LoadIdx8(const uint8_t* const* c, size_t j) {
  return _mm256_setr_epi32(c[0][j], c[1][j], c[2][j], c[3][j], c[4][j], c[5][j],
                           c[6][j], c[7][j]);
}

inline float AdcOne(const float* table, size_t m, size_t k,
                    const uint8_t* code) {
  float acc = 0.f;
  const float* t = table;
  for (size_t j = 0; j < m; ++j, t += k) acc += t[code[j]];
  return acc;
}

// Sixteen codes in flight: two gather+add chains (one per 8-code group) so the
// vector-add latency of one chain overlaps the gathers of the other.
template <typename GetPtr>
void AdcBatchImpl(const float* table, size_t m, size_t k, GetPtr ptr, size_t n,
                  float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8_t* c[16];
    for (size_t r = 0; r < 16; ++r) {
      c[r] = ptr(i + r);
      _mm_prefetch(reinterpret_cast<const char*>(c[r]), _MM_HINT_T0);
    }
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc0 = _mm256_add_ps(acc0, _mm256_i32gather_ps(t, LoadIdx8(c, j), 4));
      acc1 = _mm256_add_ps(acc1, _mm256_i32gather_ps(t, LoadIdx8(c + 8, j), 4));
    }
    _mm256_storeu_ps(out + i, acc0);
    _mm256_storeu_ps(out + i + 8, acc1);
  }
  if (i + 8 <= n) {
    const uint8_t* c[8];
    for (size_t r = 0; r < 8; ++r) c[r] = ptr(i + r);
    __m256 acc = _mm256_setzero_ps();
    const float* t = table;
    for (size_t j = 0; j < m; ++j, t += k) {
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(t, LoadIdx8(c, j), 4));
    }
    _mm256_storeu_ps(out + i, acc);
    i += 8;
  }
  for (; i < n; ++i) out[i] = AdcOne(table, m, k, ptr(i));
}

void AdcBatchAvx2(const float* table, size_t m, size_t k, const uint8_t* codes,
                  size_t code_stride, size_t n, float* out) {
  AdcBatchImpl(
      table, m, k, [&](size_t i) { return codes + i * code_stride; }, n, out);
}

void AdcBatchGatherAvx2(const float* table, size_t m, size_t k,
                        const uint8_t* codes, size_t code_stride,
                        const uint32_t* ids, size_t n, float* out) {
  AdcBatchImpl(
      table, m, k,
      [&](size_t i) { return codes + static_cast<size_t>(ids[i]) * code_stride; },
      n, out);
}

}  // namespace

namespace internal {

const KernelOps& Avx2Kernels() {
  static const KernelOps ops = {
      "avx2",          SquaredL2Avx2, DotAvx2,      SquaredNormAvx2,
      L2ToManyAvx2,    AdcBatchAvx2,  AdcBatchGatherAvx2,
  };
  return ops;
}

}  // namespace internal
}  // namespace rpq::simd

#endif  // RPQ_HAVE_AVX2
