// Slow-query flight recorder: a bounded ring of the most recent *noteworthy*
// completed queries — slow ones, degraded ones, or a 1-in-N sample — each
// carrying its latency, its degradation flags, and the per-stage span
// breakdown when the query carried a trace. "Why was that query slow" then
// has an answer after the fact, over the wire (`/slow` on the HTTP
// exporter), without logging every query.
//
// Cost model: the hot path is the admission decision — one relaxed enabled
// load, a latency/flag compare, and (only when 1-in-N sampling is on) one
// shared counter increment. Queries that do not pass admission touch nothing
// else. Admitted queries take a mutex to claim+fill a ring slot; admission is
// policy-rare (slow or degraded), so the lock is off the common path by
// construction, and Dump() takes the same mutex for a consistent read while
// writers keep recording (tests/obs_test.cc runs this under TSan).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace rpq::obs {

struct FlightRecorderOptions {
  size_t capacity = 256;      ///< ring slots (oldest evicted first)
  /// Admit when served latency >= this (microseconds); 0 disables the
  /// latency criterion.
  uint64_t slow_us = 0;
  /// Admit every query that degraded: deadline hit, shed, shard loss, hedge.
  bool admit_degraded = true;
  /// Admit an unconditional 1-in-N sample of all queries (0 = off); gives
  /// /slow a healthy-baseline row to compare the outliers against.
  uint32_t sample_every = 0;
};

/// One recorded query.
struct FlightRecord {
  uint64_t seq = 0;        ///< admission order, monotonic from Configure()
  double t_seconds = 0;    ///< completion time, seconds since Configure()
  uint64_t latency_us = 0;
  uint32_t k = 0;
  uint32_t width = 0;      ///< beam width (nprobe for IVF)
  bool degraded = false;
  bool deadline_exceeded = false;
  bool shed = false;
  bool hedged = false;
  uint32_t shards_lost = 0;
  /// Why it was admitted: "slow", "degraded", or "sample".
  const char* reason = "";
  /// Per-stage span nanos (zeros when the query carried no trace).
  std::array<uint64_t, kNumStages> stage_nanos{};
};

/// Everything the recorder needs to know about one completed query; the
/// serving layer fills this from its QuerySpec/QueryResult pair (obs cannot
/// name those types — serve/ depends on obs/, not the reverse).
struct QueryObservation {
  uint64_t latency_us = 0;
  uint32_t k = 0;
  uint32_t width = 0;
  bool degraded = false;
  bool deadline_exceeded = false;
  bool shed = false;
  bool hedged = false;
  uint32_t shards_lost = 0;
  const QueryTrace* trace = nullptr;  ///< optional stage breakdown
};

class FlightRecorder {
 public:
  FlightRecorder() { Configure({}); }

  /// Installs a policy and clears the ring; also the reset used by tests.
  void Configure(const FlightRecorderOptions& options);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Hot-path entry: applies the admission policy and records the query when
  /// it qualifies. No-op (no lock) when disabled or not admitted.
  void Observe(const QueryObservation& obs);

  /// Consistent copy of the ring, oldest admitted first. Safe to call while
  /// writers keep recording.
  std::vector<FlightRecord> Dump() const;

  /// Dump() as a stable JSON document:
  ///   { "version": 1, "observed": u64, "recorded": u64, "capacity": u64,
  ///     "records": [ { "seq": .., "latency_us": .., "reason": "slow",
  ///                    "stages": {"beam_ns": ..}, ... } ] }
  /// Only non-zero stages are listed per record.
  std::string DumpJson() const;

  /// Queries seen / admitted since Configure().
  uint64_t observed() const { return observed_.load(std::memory_order_relaxed); }
  uint64_t recorded() const;

  FlightRecorderOptions options() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> sample_clock_{0};  ///< 1-in-N admission counter

  mutable std::mutex mu_;
  FlightRecorderOptions options_;  // guarded by mu_ after Configure
  std::vector<FlightRecord> ring_; // guarded by mu_
  uint64_t next_seq_ = 0;          // guarded by mu_
  // Policy fields mirrored into atomics so the unlocked admission check
  // reads a coherent policy without taking mu_.
  std::atomic<uint64_t> slow_us_{0};
  std::atomic<bool> admit_degraded_{true};
  std::atomic<uint32_t> sample_every_{0};
  Timer since_;  ///< completion timestamps are relative to Configure()
};

/// The process-wide recorder the serving layer feeds (mirrors the global
/// metrics registry: default disabled, enabled by serve-bench --stats-port /
/// --slow-us or tests).
FlightRecorder& GlobalFlightRecorder();

}  // namespace rpq::obs
