#include "obs/window.h"

#include <algorithm>
#include <map>

#include "obs/json.h"

namespace rpq::obs {
namespace {

uint64_t ClampedDelta(uint64_t newer, uint64_t older) {
  return newer >= older ? newer - older : 0;
}

double Ratio(uint64_t part, uint64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

}  // namespace

const WindowedCounter* WindowedView::FindCounter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const WindowedHistogram* WindowedView::FindHistogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t WindowedView::Delta(const std::string& name) const {
  const WindowedCounter* c = FindCounter(name);
  return c != nullptr ? c->delta : 0;
}

double WindowedView::Rate(const std::string& name) const {
  const WindowedCounter* c = FindCounter(name);
  return c != nullptr ? c->rate : 0.0;
}

WindowedView DiffSnapshots(const Snapshot& older, const Snapshot& newer,
                           double interval_seconds) {
  WindowedView view;
  view.interval_seconds = interval_seconds;
  const double interval = std::max(interval_seconds, 1e-9);

  view.counters.reserve(newer.counters.size());
  for (const CounterSnapshot& c : newer.counters) {
    const CounterSnapshot* base = older.FindCounter(c.name);
    WindowedCounter wc;
    wc.name = c.name;
    wc.delta = ClampedDelta(c.value, base != nullptr ? base->value : 0);
    wc.rate = static_cast<double>(wc.delta) / interval;
    view.counters.push_back(std::move(wc));
  }

  view.histograms.reserve(newer.histograms.size());
  for (const HistogramSnapshot& h : newer.histograms) {
    const HistogramSnapshot* base = older.FindHistogram(h.name);
    WindowedHistogram wh;
    wh.name = h.name;
    HistogramData& d = wh.interval;
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      const uint64_t old_b = base != nullptr ? base->data.buckets[b] : 0;
      d.buckets[b] = ClampedDelta(h.data.buckets[b], old_b);
      d.count += d.buckets[b];
      // The in-window max is only known to bucket resolution: the last
      // value this window's percentile clamp can honestly claim is the top
      // of the highest bucket that gained samples.
      if (d.buckets[b] > 0) {
        d.max = BucketLowerBound(b) + BucketWidth(b) - 1;
      }
    }
    d.sum = ClampedDelta(h.data.sum, base != nullptr ? base->data.sum : 0);
    view.histograms.push_back(std::move(wh));
  }
  return view;
}

ServingWindow SummarizeServing(const WindowedView& view) {
  ServingWindow w;
  w.interval_seconds = view.interval_seconds;
  w.completed = view.Delta("serve.completed");
  w.qps = view.Rate("serve.completed");
  w.shed_ratio = Ratio(view.Delta("serve.shed"), w.completed);
  w.deadline_ratio = Ratio(view.Delta("serve.deadline_exceeded"), w.completed);
  w.brownout_ratio = Ratio(view.Delta("serve.brownout"), w.completed);
  w.shards_lost = view.Delta("serve.shard_lost");
  w.hedges = view.Delta("serve.hedges");
  if (const WindowedHistogram* lat = view.FindHistogram("serve.latency_ns");
      lat != nullptr && lat->interval.count > 0) {
    w.p50_ms = lat->interval.Percentile(0.50) / 1e6;
    w.p95_ms = lat->interval.Percentile(0.95) / 1e6;
    w.p99_ms = lat->interval.Percentile(0.99) / 1e6;
  }
  return w;
}

bool SnapshotFromJson(const JsonValue& root, Snapshot* out,
                      std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!root.is_object()) return fail("snapshot is not an object");
  const JsonValue* counters = root.Find("counters");
  const JsonValue* histograms = root.Find("histograms");
  if (counters == nullptr || !counters->is_object()) {
    return fail("missing \"counters\" object");
  }
  if (histograms == nullptr || !histograms->is_object()) {
    return fail("missing \"histograms\" object");
  }
  out->counters.clear();
  out->histograms.clear();
  for (const auto& [name, v] : counters->object) {
    if (!v.is_number()) return fail("counter \"" + name + "\" is not numeric");
    out->counters.push_back({name, static_cast<uint64_t>(v.number)});
  }
  for (const auto& [name, h] : histograms->object) {
    HistogramSnapshot hs;
    hs.name = name;
    const JsonValue* count = h.Find("count");
    const JsonValue* sum = h.Find("sum");
    const JsonValue* max = h.Find("max");
    const JsonValue* buckets = h.Find("buckets");
    if (count == nullptr || !count->is_number() || sum == nullptr ||
        !sum->is_number() || max == nullptr || !max->is_number() ||
        buckets == nullptr || !buckets->is_array()) {
      return fail("histogram \"" + name + "\" missing count/sum/max/buckets");
    }
    hs.data.count = static_cast<uint64_t>(count->number);
    hs.data.sum = static_cast<uint64_t>(sum->number);
    hs.data.max = static_cast<uint64_t>(max->number);
    for (const JsonValue& triple : buckets->array) {
      if (!triple.is_array() || triple.array.size() != 3 ||
          !triple.array[0].is_number() || !triple.array[2].is_number()) {
        return fail("histogram \"" + name + "\": malformed bucket triple");
      }
      const uint64_t lo = static_cast<uint64_t>(triple.array[0].number);
      const uint32_t idx = BucketIndexFor(lo);
      if (BucketLowerBound(idx) != lo) {
        return fail("histogram \"" + name + "\": bucket bound " +
                    std::to_string(lo) + " is not a bucket boundary");
      }
      hs.data.buckets[idx] = static_cast<uint64_t>(triple.array[2].number);
    }
    out->histograms.push_back(std::move(hs));
  }
  return true;
}

}  // namespace rpq::obs
