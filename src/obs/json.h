// Minimal JSON reader for validating/round-tripping the metric snapshots
// obs::DumpJson emits (tests and `rpq_tool metrics-validate`). Supports the
// full value grammar; numbers are held as double, which is exact for the
// counter magnitudes the snapshots carry.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rpq::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Dotted-path lookup ("histograms.stage.route_ns" will NOT work for keys
  /// containing dots — use Find() hops for those); convenience for tests.
  const JsonValue* FindPath(const std::string& dotted) const;
};

/// Parses `text` into `*out`. Returns false (with a message in *error when
/// non-null) on malformed input or trailing garbage.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace rpq::obs
