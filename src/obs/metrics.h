// Lock-free metrics registry: named monotonic counters and fixed-bucket
// log2 latency histograms, sharded per thread.
//
// Hot-path contract: Add()/Record() touch ONLY the calling thread's shard —
// one relaxed atomic load+store per counter, a handful for a histogram
// sample. No shared cacheline is written, no lock is taken, so instrumented
// search paths scale exactly as uninstrumented ones do. Snapshot() merges
// the live shards (plus the folded-in shards of exited threads) under the
// registration mutex and returns a consistent monotonic view: every value in
// it was true at some point during the call, and values never go backwards
// across snapshots.
//
// Metric identities are (name -> id) registered once and cached by callers;
// registration is idempotent, so two subsystems naming the same counter
// share it. Ids index fixed-capacity per-thread arrays — a registration past
// the capacity is a programming error and fails loudly.
//
// Recording is gated process-wide by MetricsEnabled() (default off, or
// RPQ_METRICS=1): with it off the instrumented paths pay one relaxed atomic
// bool load per query, nothing else.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace rpq::obs {

// ---------------------------------------------------------------------------
// Histogram geometry: log2 octaves with 8 linear sub-buckets each (values
// 0..7 are exact). Bucket width is ~12.5% of the value, so a histogram-
// derived percentile is always within one bucket width of the exact one.
// Shared by the registry shards and the standalone HistogramData value type.

inline constexpr uint32_t kSubBucketBits = 3;
inline constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;  // 8
inline constexpr uint32_t kNumBuckets =
    (64 - kSubBucketBits) * kSubBuckets + kSubBuckets;  // 496

/// Bucket holding `v`. Values below kSubBuckets map to themselves.
inline uint32_t BucketIndexFor(uint64_t v) {
  if (v < kSubBuckets) return static_cast<uint32_t>(v);
  const uint32_t msb = 63 - static_cast<uint32_t>(__builtin_clzll(v));
  const uint32_t octave = msb - kSubBucketBits;  // 0 for v in [8, 15]
  const uint32_t sub =
      static_cast<uint32_t>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  return (octave << kSubBucketBits) + kSubBuckets + sub;
}

/// Smallest value in bucket `i` (inverse of BucketIndexFor).
inline uint64_t BucketLowerBound(uint32_t i) {
  if (i < kSubBuckets) return i;
  const uint32_t octave = (i - kSubBuckets) >> kSubBucketBits;
  const uint32_t sub = (i - kSubBuckets) & (kSubBuckets - 1);
  return static_cast<uint64_t>(kSubBuckets + sub) << octave;
}

/// Count of distinct values bucket `i` covers (1 for the exact range).
inline uint64_t BucketWidth(uint32_t i) {
  if (i < kSubBuckets) return 1;
  return uint64_t{1} << ((i - kSubBuckets) >> kSubBucketBits);
}

/// Plain (single-threaded) histogram value type: what a snapshot hands back,
/// and what call sites that keep thread-local tallies (the load generator)
/// accumulate before merging into the registry. count/sum/max are exact;
/// percentiles are bucket-resolution (see BucketWidth).
struct HistogramData {
  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  void Record(uint64_t v) {
    ++buckets[BucketIndexFor(v)];
    ++count;
    sum += v;
    if (v > max) max = v;
  }
  void Merge(const HistogramData& other);

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / count : 0.0;
  }
  /// Value at quantile p in [0, 1]: the midpoint of the bucket holding the
  /// rank-p sample (rank rule matches serve::SummarizeLatencies), clamped to
  /// the exact max. Within one bucket width of the exact percentile.
  double Percentile(double p) const;
};

// ---------------------------------------------------------------------------

using CounterId = uint32_t;
using HistogramId = uint32_t;

inline constexpr size_t kMaxCounters = 256;
inline constexpr size_t kMaxHistograms = 64;

/// True when Add()/Record() actually record. Default: off, unless the
/// RPQ_METRICS environment variable is a nonempty value other than "0".
bool MetricsEnabled();
/// Flips recording on/off process-wide (serve-bench --metrics-json, tests).
void SetMetricsEnabled(bool enabled);

/// Registers (or finds) the counter/histogram with `name`. Cache the id —
/// registration takes a mutex; Add/Record do not.
CounterId GetCounter(const std::string& name);
HistogramId GetHistogram(const std::string& name);

/// Adds to this thread's shard of the counter. No-op when metrics are off.
void Add(CounterId id, uint64_t delta);
/// Records one histogram sample into this thread's shard. No-op when off.
void Record(HistogramId id, uint64_t value);
/// Folds a locally accumulated histogram into this thread's shard in one
/// pass (the loadgen merges per-thread tallies this way). No-op when off.
void MergeInto(HistogramId id, const HistogramData& data);

/// One counter / histogram in a snapshot, in registration order.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct HistogramSnapshot {
  std::string name;
  HistogramData data;
};

/// Point-in-time merged view of every shard. Values are monotonic across
/// snapshots; a snapshot taken while writers run is internally consistent
/// (each value was current at some moment during the call).
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  /// Lookup by exact name; nullptr when absent.
  const CounterSnapshot* FindCounter(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

Snapshot TakeSnapshot();

/// Serializes a snapshot as the stable JSON schema documented in the README:
///   { "version": 1,
///     "counters": { "<name>": <u64>, ... },
///     "histograms": { "<name>": { "count": u64, "sum": u64, "max": u64,
///                                 "mean": f, "p50": f, "p95": f, "p99": f,
///                                 "buckets": [[lo, width, count], ...] } } }
/// Only non-empty buckets are listed. Keys are in registration order.
std::string DumpJson(const Snapshot& snapshot);
std::string DumpJson();  ///< TakeSnapshot() + DumpJson

}  // namespace rpq::obs
