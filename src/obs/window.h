// Windowed metric views: the difference between two registry snapshots,
// turned into what an operator actually asks of a live server — current QPS,
// per-window stage percentiles, shed/degradation ratios over the last N
// seconds — instead of the monotonic since-startup totals the registry
// keeps.
//
// Snapshots are monotonic (obs/metrics.h), so a window is a pure diff:
// counter deltas divide by the interval into rates, and histogram BUCKET
// deltas form a valid interval histogram whose percentiles describe only the
// samples recorded inside the window (the exact `max` is not recoverable
// from a diff — the interval max is bounded by its highest non-empty
// bucket). Nothing here touches the hot path: diffing is snapshot-side work
// the HTTP exporter or a CLI does on demand.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rpq::obs {

struct JsonValue;  // obs/json.h

/// One counter over a window: how much it moved and how fast.
struct WindowedCounter {
  std::string name;
  uint64_t delta = 0;
  double rate = 0;  ///< delta / interval_seconds
};

/// One histogram over a window: only the samples recorded inside it.
/// `interval.max` is the upper bound of the highest non-empty delta bucket
/// (the exact in-window max is not recoverable from two cumulative views).
struct WindowedHistogram {
  std::string name;
  HistogramData interval;
};

/// The diff of two snapshots taken `interval_seconds` apart.
struct WindowedView {
  double interval_seconds = 0;
  std::vector<WindowedCounter> counters;
  std::vector<WindowedHistogram> histograms;

  const WindowedCounter* FindCounter(const std::string& name) const;
  const WindowedHistogram* FindHistogram(const std::string& name) const;

  /// Counter delta / rate by name; 0 when the counter is absent.
  uint64_t Delta(const std::string& name) const;
  double Rate(const std::string& name) const;
};

/// Diffs `newer - older`. Metrics absent from `older` (registered after the
/// baseline was taken) diff against zero; metrics absent from `newer` are
/// dropped. Values that went backwards (only possible when the inputs are
/// not really two snapshots of one process) clamp to zero rather than wrap.
WindowedView DiffSnapshots(const Snapshot& older, const Snapshot& newer,
                           double interval_seconds);

/// The serving-health summary /health and the serve-bench report derive from
/// a window: current throughput and how much of it is degraded.
struct ServingWindow {
  double interval_seconds = 0;
  double qps = 0;               ///< serve.completed rate
  uint64_t completed = 0;       ///< serve.completed delta
  double shed_ratio = 0;        ///< serve.shed / completed
  double deadline_ratio = 0;    ///< serve.deadline_exceeded / completed
  double brownout_ratio = 0;    ///< serve.brownout / completed
  uint64_t shards_lost = 0;     ///< serve.shard_lost delta
  uint64_t hedges = 0;          ///< serve.hedges delta
  /// serve.latency_ns interval percentiles, in milliseconds (0 when the
  /// window saw no completed-latency samples).
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

ServingWindow SummarizeServing(const WindowedView& view);

/// Reconstructs a Snapshot from a parsed DumpJson (v1) document, buckets
/// included, so offline tooling (metrics-validate --diff, bench-diff) can
/// window two saved snapshots exactly like the live exporter does.
bool SnapshotFromJson(const JsonValue& root, Snapshot* out, std::string* error);

}  // namespace rpq::obs
