#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace rpq::obs {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out->type = JsonValue::Type::kNull;
        return true;
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Snapshots only emit \u for control characters; encode as UTF-8.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Fail("expected value");
    pos_ += static_cast<size_t>(end - begin);
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  const std::string& s_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::FindPath(const std::string& dotted) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr && start <= dotted.size()) {
    const size_t dot = dotted.find('.', start);
    const std::string key = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    cur = cur->Find(key);
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
  return cur;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Parse(out);
}

}  // namespace rpq::obs
