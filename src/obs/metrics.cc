#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace rpq::obs {
namespace {

// One thread's private slice of every metric. Slots are atomics so a
// concurrent Snapshot() reads torn-free values, but only the owning thread
// ever writes — plain load+store (no RMW, no lock prefix) is enough, and no
// other thread's cacheline is touched on the hot path.
struct ThreadShard {
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  struct HistShard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<HistShard, kMaxHistograms> histograms{};
  ThreadShard* next = nullptr;  // intrusive live list, guarded by Registry mu
};

inline void ShardAdd(std::atomic<uint64_t>& slot, uint64_t delta) {
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

class Registry {
 public:
  static Registry& Instance() {
    // Leaked singleton: thread-exit hooks may fold shards in after static
    // destruction would have run.
    static Registry* r = new Registry();
    return *r;
  }

  uint32_t Register(const std::string& name, bool histogram) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& names = histogram ? histogram_names_ : counter_names_;
    for (uint32_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    const size_t cap = histogram ? kMaxHistograms : kMaxCounters;
    RPQ_CHECK(names.size() < cap && "metric registry capacity exhausted");
    names.push_back(name);
    return static_cast<uint32_t>(names.size() - 1);
  }

  void Attach(ThreadShard* shard) {
    std::lock_guard<std::mutex> lk(mu_);
    shard->next = live_;
    live_ = shard;
  }

  // Thread exit: fold the shard's totals into the retired accumulators so
  // counts survive the thread, then unlink and free the shard.
  void Retire(ThreadShard* shard) {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < kMaxCounters; ++i) {
      retired_counters_[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (size_t h = 0; h < kMaxHistograms; ++h) {
      auto& dst = retired_histograms_[h];
      const auto& src = shard->histograms[h];
      for (uint32_t b = 0; b < kNumBuckets; ++b) {
        const uint64_t n = src.buckets[b].load(std::memory_order_relaxed);
        dst.buckets[b] += n;
        dst.count += n;
      }
      dst.sum += src.sum.load(std::memory_order_relaxed);
      const uint64_t m = src.max.load(std::memory_order_relaxed);
      if (m > dst.max) dst.max = m;
    }
    ThreadShard** p = &live_;
    while (*p != nullptr && *p != shard) p = &(*p)->next;
    if (*p == shard) *p = shard->next;
    delete shard;
  }

  Snapshot Take() {
    std::lock_guard<std::mutex> lk(mu_);
    Snapshot snap;
    snap.counters.resize(counter_names_.size());
    for (size_t i = 0; i < counter_names_.size(); ++i) {
      snap.counters[i].name = counter_names_[i];
      snap.counters[i].value = retired_counters_[i];
    }
    snap.histograms.resize(histogram_names_.size());
    for (size_t h = 0; h < histogram_names_.size(); ++h) {
      snap.histograms[h].name = histogram_names_[h];
      snap.histograms[h].data = retired_histograms_[h];
    }
    for (ThreadShard* s = live_; s != nullptr; s = s->next) {
      for (size_t i = 0; i < counter_names_.size(); ++i) {
        snap.counters[i].value +=
            s->counters[i].load(std::memory_order_relaxed);
      }
      for (size_t h = 0; h < histogram_names_.size(); ++h) {
        HistogramData& dst = snap.histograms[h].data;
        const auto& src = s->histograms[h];
        for (uint32_t b = 0; b < kNumBuckets; ++b) {
          const uint64_t n = src.buckets[b].load(std::memory_order_relaxed);
          dst.buckets[b] += n;
          dst.count += n;
        }
        dst.sum += src.sum.load(std::memory_order_relaxed);
        const uint64_t m = src.max.load(std::memory_order_relaxed);
        if (m > dst.max) dst.max = m;
      }
    }
    return snap;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  ThreadShard* live_ = nullptr;
  std::array<uint64_t, kMaxCounters> retired_counters_{};
  std::array<HistogramData, kMaxHistograms> retired_histograms_{};
};

// TLS shard ownership: created on a thread's first record, retired (folded
// into the registry) by the TLS destructor when the thread exits.
struct ShardOwner {
  ThreadShard* shard = nullptr;
  ~ShardOwner() {
    if (shard != nullptr) Registry::Instance().Retire(shard);
  }
};

ThreadShard* LocalShard() {
  thread_local ShardOwner owner;
  if (owner.shard == nullptr) {
    owner.shard = new ThreadShard();
    Registry::Instance().Attach(owner.shard);
  }
  return owner.shard;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("RPQ_METRICS");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

void HistogramData::Merge(const HistogramData& other) {
  for (uint32_t b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0.0;
  // Same rank rule as serve::SummarizeLatencies' sorted-vector percentile.
  const uint64_t rank = static_cast<uint64_t>(
      p * static_cast<double>(count - 1) + 0.5);
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) {
      const double mid = static_cast<double>(BucketLowerBound(b)) +
                         static_cast<double>(BucketWidth(b)) / 2.0;
      return std::min(mid, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

CounterId GetCounter(const std::string& name) {
  return Registry::Instance().Register(name, /*histogram=*/false);
}

HistogramId GetHistogram(const std::string& name) {
  return Registry::Instance().Register(name, /*histogram=*/true);
}

void Add(CounterId id, uint64_t delta) {
  if (!MetricsEnabled()) return;
  ShardAdd(LocalShard()->counters[id], delta);
}

void Record(HistogramId id, uint64_t value) {
  if (!MetricsEnabled()) return;
  auto& h = LocalShard()->histograms[id];
  ShardAdd(h.buckets[BucketIndexFor(value)], 1);
  ShardAdd(h.sum, value);
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
}

void MergeInto(HistogramId id, const HistogramData& data) {
  if (!MetricsEnabled() || data.count == 0) return;
  auto& h = LocalShard()->histograms[id];
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    if (data.buckets[b] != 0) ShardAdd(h.buckets[b], data.buckets[b]);
  }
  ShardAdd(h.sum, data.sum);
  if (data.max > h.max.load(std::memory_order_relaxed)) {
    h.max.store(data.max, std::memory_order_relaxed);
  }
}

const CounterSnapshot* Snapshot::FindCounter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Snapshot TakeSnapshot() { return Registry::Instance().Take(); }

std::string DumpJson(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"version\": 1,\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    AppendJsonEscaped(&out, snapshot.counters[i].name);
    out += "\": " + std::to_string(snapshot.counters[i].value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += i == 0 ? "\n    \"" : ",\n    \"";
    AppendJsonEscaped(&out, h.name);
    out += "\": {\"count\": " + std::to_string(h.data.count);
    out += ", \"sum\": " + std::to_string(h.data.sum);
    out += ", \"max\": " + std::to_string(h.data.max);
    out += ", \"mean\": ";
    AppendDouble(&out, h.data.Mean());
    out += ", \"p50\": ";
    AppendDouble(&out, h.data.Percentile(0.50));
    out += ", \"p95\": ";
    AppendDouble(&out, h.data.Percentile(0.95));
    out += ", \"p99\": ";
    AppendDouble(&out, h.data.Percentile(0.99));
    out += ", \"buckets\": [";
    bool first = true;
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[" + std::to_string(BucketLowerBound(b)) + ", " +
             std::to_string(BucketWidth(b)) + ", " +
             std::to_string(h.data.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string DumpJson() { return DumpJson(TakeSnapshot()); }

}  // namespace rpq::obs
