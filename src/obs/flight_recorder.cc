#include "obs/flight_recorder.h"

#include <cstdio>

namespace rpq::obs {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

void FlightRecorder::Configure(const FlightRecorderOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.clear();
  ring_.reserve(options_.capacity);
  next_seq_ = 0;
  observed_.store(0, std::memory_order_relaxed);
  sample_clock_.store(0, std::memory_order_relaxed);
  slow_us_.store(options_.slow_us, std::memory_order_relaxed);
  admit_degraded_.store(options_.admit_degraded, std::memory_order_relaxed);
  sample_every_.store(options_.sample_every, std::memory_order_relaxed);
  since_.Reset();
}

void FlightRecorder::Observe(const QueryObservation& obs) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  observed_.fetch_add(1, std::memory_order_relaxed);

  // Admission policy, unlocked: the common (healthy, fast) query decides
  // "not noteworthy" from two relaxed loads and a compare, and leaves.
  const char* reason = nullptr;
  const uint64_t slow_us = slow_us_.load(std::memory_order_relaxed);
  const bool is_degraded = obs.degraded || obs.deadline_exceeded || obs.shed ||
                           obs.hedged || obs.shards_lost > 0;
  if (admit_degraded_.load(std::memory_order_relaxed) && is_degraded) {
    reason = "degraded";
  } else if (slow_us > 0 && obs.latency_us >= slow_us) {
    reason = "slow";
  } else {
    const uint32_t every = sample_every_.load(std::memory_order_relaxed);
    if (every > 0 &&
        sample_clock_.fetch_add(1, std::memory_order_relaxed) % every == 0) {
      reason = "sample";
    }
  }
  if (reason == nullptr) return;

  FlightRecord rec;
  rec.t_seconds = since_.ElapsedSeconds();
  rec.latency_us = obs.latency_us;
  rec.k = obs.k;
  rec.width = obs.width;
  rec.degraded = obs.degraded;
  rec.deadline_exceeded = obs.deadline_exceeded;
  rec.shed = obs.shed;
  rec.hedged = obs.hedged;
  rec.shards_lost = obs.shards_lost;
  rec.reason = reason;
  if (obs.trace != nullptr) {
    for (size_t s = 0; s < kNumStages; ++s) {
      rec.stage_nanos[s] = obs.trace->total(static_cast<Stage>(s)).nanos;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  rec.seq = next_seq_++;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[rec.seq % options_.capacity] = std::move(rec);
  }
}

std::vector<FlightRecord> FlightRecorder::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;  // not yet wrapped: ring_ is already oldest-first
  } else {
    const size_t start = next_seq_ % options_.capacity;
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % options_.capacity]);
    }
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

FlightRecorderOptions FlightRecorder::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

std::string FlightRecorder::DumpJson() const {
  // Snapshot the ring and counters first; all formatting happens unlocked.
  const std::vector<FlightRecord> records = Dump();
  const uint64_t observed = observed_.load(std::memory_order_relaxed);
  uint64_t recorded_total;
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded_total = next_seq_;
    capacity = options_.capacity;
  }

  std::string out;
  out.reserve(256 + records.size() * 192);
  out += "{\"version\":1,\"observed\":";
  AppendU64(&out, observed);
  out += ",\"recorded\":";
  AppendU64(&out, recorded_total);
  out += ",\"capacity\":";
  AppendU64(&out, capacity);
  out += ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const FlightRecord& r = records[i];
    if (i > 0) out += ',';
    out += "{\"seq\":";
    AppendU64(&out, r.seq);
    out += ",\"t_seconds\":";
    AppendDouble(&out, r.t_seconds);
    out += ",\"latency_us\":";
    AppendU64(&out, r.latency_us);
    out += ",\"k\":";
    AppendU64(&out, r.k);
    out += ",\"width\":";
    AppendU64(&out, r.width);
    out += ",\"reason\":\"";
    out += r.reason;
    out += "\",\"degraded\":";
    out += r.degraded ? "true" : "false";
    out += ",\"deadline_exceeded\":";
    out += r.deadline_exceeded ? "true" : "false";
    out += ",\"shed\":";
    out += r.shed ? "true" : "false";
    out += ",\"hedged\":";
    out += r.hedged ? "true" : "false";
    out += ",\"shards_lost\":";
    AppendU64(&out, r.shards_lost);
    out += ",\"stages\":{";
    bool first_stage = true;
    for (size_t s = 0; s < kNumStages; ++s) {
      if (r.stage_nanos[s] == 0) continue;
      if (!first_stage) out += ',';
      first_stage = false;
      out += '"';
      out += StageName(static_cast<Stage>(s));
      out += "_ns\":";
      AppendU64(&out, r.stage_nanos[s]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

FlightRecorder& GlobalFlightRecorder() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

}  // namespace rpq::obs
