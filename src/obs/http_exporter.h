// Minimal HTTP/1.0 stats endpoint: one background thread, one port, four
// routes — enough to point `curl` or a Prometheus scraper at a running
// server and see what it is doing *right now*:
//
//   /metrics       Prometheus text exposition (counters + histogram buckets)
//   /metrics.json  the registry's DumpJson v1 document
//   /health        windowed serving summary (QPS, shed/deadline ratios,
//                  windowed p50/p95/p99); HTTP 503 when the degradation
//                  ratios exceed the configured thresholds
//   /slow          the flight recorder's DumpJson (slow/degraded queries)
//
// Scope is deliberate: requests are served serially on the accept thread
// (a scraper polls every few seconds; this is not a data-plane server), and
// only GET is understood. This is the repo's first socket code — the
// listen/accept/poll skeleton here is shaped to grow into the remote-shard
// transport (ROADMAP item 2), where the same loop will frame query RPCs
// instead of stat scrapes.
//
// Health windowing: the exporter keeps a baseline snapshot and diffs the
// live registry against it on each request (obs/window.h); the baseline
// rotates once it is older than `window_seconds`, so ratios and percentiles
// describe roughly the last window rather than process lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace rpq::obs {

struct HttpExporterOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// from port() after Start()).
  uint16_t port = 0;
  /// Width of the /health observation window, seconds.
  double window_seconds = 5.0;
  /// /health reports 503 when the windowed shed or deadline-exceeded ratio
  /// meets either threshold (ratios in [0,1]).
  double unhealthy_shed_ratio = 0.5;
  double unhealthy_deadline_ratio = 0.5;
};

/// A formatted response, separated from the socket so tests can exercise
/// routing and formatting without a network round trip.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpExporter {
 public:
  explicit HttpExporter(const HttpExporterOptions& options = {});
  ~HttpExporter();  ///< Stops the server if still running.

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds 127.0.0.1:<port>, starts the accept thread. Fails if already
  /// running or the port is taken.
  Status Start();

  /// Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The actual bound port (resolves port=0 to the ephemeral choice); 0
  /// before a successful Start().
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Routes `path` ("/metrics", "/health", ...) and formats the response
  /// against the live registry / flight recorder. Pure with respect to the
  /// socket; what the accept loop calls per request.
  HttpResponse HandleRequest(const std::string& path);

  const HttpExporterOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  HttpResponse Health();

  HttpExporterOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  std::thread thread_;

  std::mutex window_mu_;        // guards the /health baseline rotation
  Snapshot window_base_;        // baseline the live registry is diffed against
  double window_base_elapsed_ = 0;  // uptime_ reading when baseline was taken
  Timer uptime_;
};

/// Renders a snapshot in Prometheus text exposition format. Metric names are
/// sanitized (dots -> underscores) and prefixed "rpq_"; histograms emit
/// cumulative `_bucket{le="..."}` series over non-empty buckets plus +Inf,
/// `_sum`, and `_count`.
std::string FormatPrometheus(const Snapshot& snapshot);

}  // namespace rpq::obs
