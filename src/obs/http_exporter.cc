#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/window.h"

namespace rpq::obs {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

/// "serve.latency_ns" -> "rpq_serve_latency_ns"; Prometheus names admit only
/// [a-zA-Z0-9_:], everything else maps to '_'.
std::string PromName(const std::string& name) {
  std::string out = "rpq_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

}  // namespace

std::string FormatPrometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const CounterSnapshot& c : snapshot.counters) {
    const std::string name = PromName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendU64(&out, c.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = PromName(h.name);
    out += "# TYPE " + name + " histogram\n";
    // Cumulative le= series over the non-empty buckets; an upper bound of
    // lo+width matches the registry's half-open [lo, lo+width) buckets.
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      cumulative += h.data.buckets[b];
      out += name + "_bucket{le=\"";
      AppendU64(&out, BucketLowerBound(b) + BucketWidth(b));
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    AppendU64(&out, h.data.count);
    out += '\n';
    out += name + "_sum ";
    AppendU64(&out, h.data.sum);
    out += '\n';
    out += name + "_count ";
    AppendU64(&out, h.data.count);
    out += '\n';
  }
  return out;
}

HttpExporter::HttpExporter(const HttpExporterOptions& options)
    : options_(options) {
  if (options_.window_seconds <= 0) options_.window_seconds = 5.0;
}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("http exporter already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = std::string("bind(127.0.0.1:") +
                            std::to_string(options_.port) +
                            "): " + std::strerror(errno);
    ::close(fd);
    return Status::IOError(msg);
  }
  if (::listen(fd, 16) != 0) {
    const std::string msg = std::string("listen(): ") + std::strerror(errno);
    ::close(fd);
    return Status::IOError(msg);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string msg =
        std::string("getsockname(): ") + std::strerror(errno);
    ::close(fd);
    return Status::IOError(msg);
  }

  {
    std::lock_guard<std::mutex> lock(window_mu_);
    window_base_ = TakeSnapshot();
    uptime_.Reset();
    window_base_elapsed_ = 0;
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
}

void HttpExporter::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short poll timeout bounds how long Stop() waits on this thread.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Read one request head; scrape requests are tiny, so a single read
    // almost always sees the whole "GET <path> HTTP/1.x" line.
    char buf[2048];
    std::string head;
    while (head.find("\r\n") == std::string::npos && head.size() < 16384) {
      const ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) break;
      head.append(buf, static_cast<size_t>(n));
    }

    HttpResponse resp;
    const size_t sp1 = head.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : head.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || head.compare(0, 4, "GET ") != 0) {
      resp.status = 404;
      resp.body = "only GET is supported\n";
    } else {
      std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      resp = HandleRequest(path);
    }

    std::string wire = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                       StatusText(resp.status) + "\r\n";
    wire += "Content-Type: " + resp.content_type + "\r\n";
    wire += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    wire += "Connection: close\r\n\r\n";
    wire += resp.body;
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::write(conn, wire.data() + sent, wire.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(conn);
  }
}

HttpResponse HttpExporter::HandleRequest(const std::string& path) {
  HttpResponse resp;
  if (path == "/metrics") {
    resp.body = FormatPrometheus(TakeSnapshot());
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/metrics.json") {
    resp.body = DumpJson();
    resp.content_type = "application/json";
  } else if (path == "/health") {
    resp = Health();
  } else if (path == "/slow") {
    resp.body = GlobalFlightRecorder().DumpJson();
    resp.content_type = "application/json";
  } else if (path == "/" || path.empty()) {
    resp.body =
        "rpq stats endpoint\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  registry snapshot (DumpJson v1)\n"
        "  /health        windowed serving health (503 when degraded)\n"
        "  /slow          flight-recorder dump (slow/degraded queries)\n";
  } else {
    resp.status = 404;
    resp.body = "unknown path: " + path + "\n";
  }
  return resp;
}

HttpResponse HttpExporter::Health() {
  WindowedView view;
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    const double now = uptime_.ElapsedSeconds();
    const Snapshot current = TakeSnapshot();
    view = DiffSnapshots(window_base_, current, now - window_base_elapsed_);
    if (now - window_base_elapsed_ >= options_.window_seconds) {
      window_base_ = current;
      window_base_elapsed_ = now;
    }
  }
  const ServingWindow w = SummarizeServing(view);
  const bool unhealthy = w.shed_ratio >= options_.unhealthy_shed_ratio ||
                         w.deadline_ratio >= options_.unhealthy_deadline_ratio;

  HttpResponse resp;
  resp.status = unhealthy ? 503 : 200;
  resp.content_type = "application/json";
  std::string& out = resp.body;
  out += "{\"healthy\":";
  out += unhealthy ? "false" : "true";
  out += ",\"window_seconds\":";
  AppendDouble(&out, w.interval_seconds);
  out += ",\"qps\":";
  AppendDouble(&out, w.qps);
  out += ",\"completed\":";
  AppendU64(&out, w.completed);
  out += ",\"shed_ratio\":";
  AppendDouble(&out, w.shed_ratio);
  out += ",\"deadline_ratio\":";
  AppendDouble(&out, w.deadline_ratio);
  out += ",\"brownout_ratio\":";
  AppendDouble(&out, w.brownout_ratio);
  out += ",\"shards_lost\":";
  AppendU64(&out, w.shards_lost);
  out += ",\"hedges\":";
  AppendU64(&out, w.hedges);
  out += ",\"p50_ms\":";
  AppendDouble(&out, w.p50_ms);
  out += ",\"p95_ms\":";
  AppendDouble(&out, w.p95_ms);
  out += ",\"p99_ms\":";
  AppendDouble(&out, w.p99_ms);
  out += "}\n";
  return resp;
}

}  // namespace rpq::obs
