#include "obs/trace.h"

#include <cstdio>

#include "common/logging.h"

namespace rpq::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kRoute: return "route";
    case Stage::kScan: return "scan";
    case Stage::kBeam: return "beam";
    case Stage::kLutBuild: return "lut_build";
    case Stage::kRefine: return "refine";
    case Stage::kMerge: return "merge";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kService: return "service";
    case Stage::kIo: return "io";
    case Stage::kNumStages: break;
  }
  RPQ_CHECK(false && "invalid stage");
  return "?";
}

HistogramId StageHistogram(Stage stage) {
  // One registry lookup per stage per process; afterwards the ids come from
  // this function-local table with no lock.
  static const std::array<HistogramId, kNumStages> ids = [] {
    std::array<HistogramId, kNumStages> out{};
    for (size_t s = 0; s < kNumStages; ++s) {
      out[s] = GetHistogram(std::string("stage.") +
                            StageName(static_cast<Stage>(s)) + "_ns");
    }
    return out;
  }();
  return ids[static_cast<size_t>(stage)];
}

void RegisterStageMetrics() { StageHistogram(Stage::kRoute); }

uint64_t QueryTrace::PipelineNanos() const {
  uint64_t ns = 0;
  for (size_t s = 0; s < kNumStages; ++s) {
    const Stage stage = static_cast<Stage>(s);
    if (stage == Stage::kQueueWait || stage == Stage::kService) continue;
    ns += totals_[s].nanos;
  }
  return ns;
}

std::string QueryTrace::Format() const {
  std::string out;
  for (size_t s = 0; s < kNumStages; ++s) {
    const StageTotal& t = totals_[s];
    if (t.spans == 0) continue;
    if (!out.empty()) out += " | ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.1fus", StageName(static_cast<Stage>(s)),
                  static_cast<double>(t.nanos) / 1e3);
    out += buf;
  }
  if (out.empty()) out = "(no spans)";
  return out;
}

}  // namespace rpq::obs
