// Per-query stage tracing: a QueryTrace rides a query through the serving
// stack (QuerySpec.trace -> backend search options) and accumulates how long
// each pipeline stage spent on it — route, scan, beam expansion, LUT build,
// refine, merge, queue wait, service. The same spans also feed the process-
// wide stage histograms in the metrics registry (stage.<name>_ns), so
// serve-bench gets p50/p95/p99 per stage while a single traced query gets a
// human-readable breakdown.
//
// Cost model: a span is two TickNow() reads (rdtscp) and a couple of adds —
// recorded ONLY when the query carries a trace or MetricsEnabled() is on;
// otherwise ScopedStage compiles down to a null check and a relaxed bool
// load. Stages are per-query-granular (one span per stage per query), never
// per-code, so the hot kernels are untouched.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/timer.h"
#include "obs/metrics.h"

namespace rpq::obs {

/// The pipeline stages spans are attributed to. Keep StageName() in sync.
enum class Stage : uint8_t {
  kRoute = 0,   ///< coarse routing: IVF centroid scan / graph entry descent
  kScan,        ///< flat list scans (IVF cells)
  kBeam,        ///< graph beam expansion (memory / disk traversal)
  kLutBuild,    ///< ADC / FastScan lookup-table construction
  kRefine,      ///< refinement stage re-scoring (src/refine/)
  kMerge,       ///< top-k selection / shard merge
  kQueueWait,   ///< submit-to-start delay (engine / batcher queues)
  kService,     ///< whole backend Search call (service boundary)
  kIo,          ///< simulated device time (hybrid disk)
  kNumStages
};

inline constexpr size_t kNumStages = static_cast<size_t>(Stage::kNumStages);

/// Stable lowercase stage name ("route", "scan", ...).
const char* StageName(Stage stage);

/// The registry histogram recording `stage` durations ("stage.<name>_ns").
HistogramId StageHistogram(Stage stage);

/// Pre-registers every stage histogram so metric snapshots carry the full
/// stable key set even for stages a given backend never hits.
void RegisterStageMetrics();

/// Per-query span accumulator. One instance per traced query; not shared
/// across threads (batched backends may accumulate a whole batch's spans
/// into the one trace the batch carries — documented at those call sites).
class QueryTrace {
 public:
  struct StageTotal {
    uint64_t nanos = 0;
    uint32_t spans = 0;
  };

  void AddSpan(Stage stage, uint64_t nanos) {
    StageTotal& t = totals_[static_cast<size_t>(stage)];
    t.nanos += nanos;
    ++t.spans;
  }

  const StageTotal& total(Stage stage) const {
    return totals_[static_cast<size_t>(stage)];
  }

  /// Sum over the pipeline stages (queue wait and the enclosing service span
  /// excluded — they overlap the others rather than adding to them).
  uint64_t PipelineNanos() const;

  void Clear() { totals_ = {}; }

  /// One-line human-readable dump of the non-empty stages:
  /// "route 12.4us | scan 80.1us | refine 3.2us".
  std::string Format() const;

 private:
  std::array<StageTotal, kNumStages> totals_{};
};

/// RAII span: times a scope and attributes it to `stage` — into `trace` when
/// the query carries one, and into the process-wide stage histogram when
/// metrics are enabled. Inactive (no clock reads) when neither applies.
class ScopedStage {
 public:
  ScopedStage(Stage stage, QueryTrace* trace)
      : stage_(stage),
        trace_(trace),
        to_registry_(MetricsEnabled()),
        start_(trace != nullptr || to_registry_ ? TickNow() : 0) {}

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  ~ScopedStage() {
    if (trace_ == nullptr && !to_registry_) return;
    const uint64_t nanos = TicksToNanos(TickNow() - start_);
    if (trace_ != nullptr) trace_->AddSpan(stage_, nanos);
    if (to_registry_) Record(StageHistogram(stage_), nanos);
  }

 private:
  Stage stage_;
  QueryTrace* trace_;
  bool to_registry_;
  uint64_t start_;
};

/// Records an already-measured span (for non-scope-shaped measurements such
/// as queue waits and simulated I/O time).
inline void RecordSpan(Stage stage, uint64_t nanos, QueryTrace* trace) {
  if (trace != nullptr) trace->AddSpan(stage, nanos);
  if (MetricsEnabled()) Record(StageHistogram(stage), nanos);
}

}  // namespace rpq::obs
