#include "graph/nsg.h"

#include <algorithm>
#include <queue>

#include "common/distance.h"
#include "common/logging.h"
#include "graph/beam_search.h"
#include "graph/knn_graph.h"

namespace rpq::graph {
namespace {

// MRNG edge selection: candidate c is kept iff no already-selected s has
// d(c, s) < d(c, v) (same "occlusion" rule Vamana relaxes with alpha).
std::vector<uint32_t> MrngSelect(const Dataset& base, uint32_t v,
                                 std::vector<Neighbor> pool, size_t degree) {
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::vector<uint32_t> sel;
  for (const Neighbor& c : pool) {
    if (sel.size() >= degree) break;
    if (c.id == v) continue;
    bool occluded = false;
    for (uint32_t s : sel) {
      if (SquaredL2(base[c.id], base[s], base.dim()) < c.dist) {
        occluded = true;
        break;
      }
    }
    if (!occluded) sel.push_back(c.id);
  }
  return sel;
}

}  // namespace

ProximityGraph BuildNsg(const Dataset& base, const NsgOptions& opt) {
  size_t n = base.size();
  RPQ_CHECK_GT(n, opt.knn_k);

  // Stage 1: approximate kNN graph.
  KnnLists knn = BuildKnnAuto(base, opt.knn_k);
  ProximityGraph knn_graph(n);
  for (uint32_t v = 0; v < n; ++v) {
    auto& nb = knn_graph.Neighbors(v);
    nb.reserve(knn[v].size());
    for (const Neighbor& e : knn[v]) nb.push_back(e.id);
  }
  uint32_t medoid = FindMedoid(base);
  knn_graph.set_entry_point(medoid);

  // Stage 2: per-node candidate pools via search on the kNN graph, then MRNG.
  ProximityGraph g(n);
  g.set_entry_point(medoid);
  VisitedTable visited(n);
  BeamSearchOptions bopt;
  bopt.beam_width = opt.search_pool;
  bopt.k = opt.search_pool;
  for (uint32_t v = 0; v < n; ++v) {
    std::vector<Neighbor> pool;
    BeamSearch(
        knn_graph, medoid,
        [&](uint32_t u) {
          float d = SquaredL2(base[v], base[u], base.dim());
          pool.push_back({d, u});
          return d;
        },
        bopt, &visited);
    for (const Neighbor& e : knn[v]) pool.push_back(e);
    g.Neighbors(v) = MrngSelect(base, v, std::move(pool), opt.degree);
  }

  // Stage 2b: mutual interconnection (NSG's InterInsert): every selected edge
  // v -> u offers the reverse edge u -> v; overflowing lists are re-pruned
  // with the same MRNG rule. Without this, low in-degree vertices are hard
  // to route into and recall caps early.
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      auto& unb = g.Neighbors(u);
      if (std::find(unb.begin(), unb.end(), v) != unb.end()) continue;
      unb.push_back(v);
      if (unb.size() > opt.degree) {
        std::vector<Neighbor> pool;
        pool.reserve(unb.size());
        for (uint32_t w : unb) {
          pool.push_back({SquaredL2(base[u], base[w], base.dim()), w});
        }
        unb = MrngSelect(base, u, std::move(pool), opt.degree);
      }
    }
  }

  // Stage 3: connectivity — BFS from the root; attach any unreached node to
  // its nearest reached neighbor (NSG's spanning-tree step).
  std::vector<bool> reached(n, false);
  std::queue<uint32_t> bfs;
  bfs.push(medoid);
  reached[medoid] = true;
  while (!bfs.empty()) {
    uint32_t v = bfs.front();
    bfs.pop();
    for (uint32_t u : g.Neighbors(v)) {
      if (!reached[u]) {
        reached[u] = true;
        bfs.push(u);
      }
    }
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (reached[v]) continue;
    // Link the closest reached vector to v (edge from the tree into v).
    uint32_t best = medoid;
    float best_d = std::numeric_limits<float>::max();
    for (const Neighbor& e : knn[v]) {
      if (reached[e.id] && e.dist < best_d) {
        best_d = e.dist;
        best = e.id;
      }
    }
    g.Neighbors(best).push_back(v);
    // Everything newly reachable through v joins the reached set.
    std::queue<uint32_t> q2;
    q2.push(v);
    reached[v] = true;
    while (!q2.empty()) {
      uint32_t w = q2.front();
      q2.pop();
      for (uint32_t u : g.Neighbors(w)) {
        if (!reached[u]) {
          reached[u] = true;
          q2.push(u);
        }
      }
    }
  }
  return g;
}

}  // namespace rpq::graph
