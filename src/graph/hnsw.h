// Hierarchical Navigable Small World graphs [48]. Used two ways:
//  * as the in-memory PG of the paper's Figure 6 experiments (base layer +
//    entry point flattened into a ProximityGraph for PQ-integrated search);
//  * as a fast exact-vector ANN engine for building kNN lists during other
//    constructions (NSG candidate pools, ground-truth shortcuts).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/topk.h"
#include "data/dataset.h"
#include "graph/graph.h"

namespace rpq::graph {

/// HNSW construction knobs.
struct HnswOptions {
  size_t m = 16;                ///< neighbors per node on upper layers
  size_t ef_construction = 150; ///< candidate-pool width during insertion
  uint64_t seed = 23;
};

/// Multi-layer HNSW over a borrowed dataset (must outlive the index).
class HnswIndex {
 public:
  /// Inserts all vectors of `base` (sequentially, deterministic given seed).
  static std::unique_ptr<HnswIndex> Build(const Dataset& base,
                                          const HnswOptions& options);

  /// Exact-distance kNN query over the hierarchy.
  std::vector<Neighbor> Search(const float* query, size_t k, size_t ef) const;

  /// Base layer + hierarchical entry point as a plain proximity graph.
  ProximityGraph Flatten() const;

  size_t max_level() const { return max_level_; }
  uint32_t entry_point() const { return entry_; }

 private:
  HnswIndex(const Dataset& base, const HnswOptions& options);

  void Insert(uint32_t id);
  /// Beam search restricted to one layer; returns ascending candidates.
  std::vector<Neighbor> SearchLayer(const float* query, uint32_t entry,
                                    size_t ef, size_t level) const;
  /// Malkov's heuristic neighbor selection (keeps spatially diverse edges).
  std::vector<uint32_t> SelectNeighbors(const float* query,
                                        std::vector<Neighbor> candidates,
                                        size_t m) const;

  const Dataset& base_;
  HnswOptions opt_;
  double level_mult_;
  mutable Rng rng_;

  std::vector<size_t> node_level_;
  // adj_[level][node]; level 0 allows 2*M neighbors, upper layers M.
  std::vector<std::vector<std::vector<uint32_t>>> adj_;
  uint32_t entry_ = 0;
  size_t max_level_ = 0;
  size_t num_inserted_ = 0;
  mutable VisitedTable visited_;
};

}  // namespace rpq::graph
