#include "graph/vamana.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"
#include "graph/beam_search.h"
#include "graph/knn_graph.h"

namespace rpq::graph {

std::vector<uint32_t> RobustPrune(const Dataset& base, uint32_t p,
                                  std::vector<Neighbor> candidates, float alpha,
                                  size_t degree) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<uint32_t> result;
  std::vector<bool> removed(candidates.size(), false);
  for (size_t i = 0; i < candidates.size() && result.size() < degree; ++i) {
    if (removed[i] || candidates[i].id == p) continue;
    uint32_t pstar = candidates[i].id;
    result.push_back(pstar);
    // Remove candidates dominated by p*: alpha * d(p*, c) <= d(p, c).
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (removed[j]) continue;
      float d_pc = candidates[j].dist;
      float d_sc = SquaredL2(base[pstar], base[candidates[j].id], base.dim());
      if (alpha * alpha * d_sc <= d_pc) removed[j] = true;  // squared metric
    }
  }
  return result;
}

ProximityGraph BuildVamana(const Dataset& base, const VamanaOptions& opt) {
  RPQ_CHECK_GT(base.size(), opt.degree);
  size_t n = base.size();
  Rng rng(opt.seed);

  ProximityGraph g(n);
  // Random R-regular initialization.
  for (uint32_t v = 0; v < n; ++v) {
    auto picks = rng.SampleWithoutReplacement(n - 1, opt.degree);
    auto& nb = g.Neighbors(v);
    nb.reserve(opt.degree);
    for (uint32_t p : picks) nb.push_back(p >= v ? p + 1 : p);
  }
  uint32_t medoid = FindMedoid(base);
  g.set_entry_point(medoid);

  VisitedTable visited(n);
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;

  for (size_t pass = 0; pass < opt.passes; ++pass) {
    // First pass uses alpha = 1 (pure closeness), later passes the slack
    // factor — mirroring DiskANN's two-pass schedule.
    float alpha = (pass + 1 == opt.passes) ? opt.alpha : 1.0f;
    rng.Shuffle(&order);
    for (uint32_t v : order) {
      // Greedy search for v collecting the visited pool as candidates.
      std::vector<Neighbor> pool;
      SearchStats stats;
      BeamSearchOptions bopt;
      bopt.beam_width = opt.build_beam;
      bopt.k = opt.build_beam;
      auto beam = BeamSearch(
          g, medoid,
          [&](uint32_t u) {
            float d = SquaredL2(base[v], base[u], base.dim());
            pool.push_back({d, u});
            return d;
          },
          bopt, &visited, &stats);
      // Candidates: everything evaluated during the search + current edges.
      for (uint32_t u : g.Neighbors(v)) {
        pool.push_back({SquaredL2(base[v], base[u], base.dim()), u});
      }
      g.Neighbors(v) = RobustPrune(base, v, std::move(pool), alpha, opt.degree);

      // Reverse edges with pruning on overflow.
      for (uint32_t u : g.Neighbors(v)) {
        auto& unb = g.Neighbors(u);
        if (std::find(unb.begin(), unb.end(), v) != unb.end()) continue;
        unb.push_back(v);
        if (unb.size() > opt.degree) {
          std::vector<Neighbor> cand;
          cand.reserve(unb.size());
          for (uint32_t w : unb) {
            cand.push_back({SquaredL2(base[u], base[w], base.dim()), w});
          }
          unb = RobustPrune(base, u, std::move(cand), alpha, opt.degree);
        }
      }
    }
  }

  // Connectivity fix-up: pruning reverse edges can orphan a handful of nodes
  // (Vamana is a directed graph). Attach every vertex unreachable from the
  // medoid via an edge from its nearest reachable vertex so routing can
  // always converge — the same spanning repair NSG applies.
  std::vector<bool> reached(n, false);
  std::vector<uint32_t> stack{medoid};
  reached[medoid] = true;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t u : g.Neighbors(v)) {
      if (!reached[u]) {
        reached[u] = true;
        stack.push_back(u);
      }
    }
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (reached[v]) continue;
    uint32_t best = medoid;
    float best_d = std::numeric_limits<float>::max();
    for (uint32_t u = 0; u < n; ++u) {
      if (!reached[u]) continue;
      float d = SquaredL2(base[v], base[u], base.dim());
      if (d < best_d) {
        best_d = d;
        best = u;
      }
    }
    g.Neighbors(best).push_back(v);
    // Everything hanging off v becomes reachable too.
    stack.push_back(v);
    reached[v] = true;
    while (!stack.empty()) {
      uint32_t w = stack.back();
      stack.pop_back();
      for (uint32_t u : g.Neighbors(w)) {
        if (!reached[u]) {
          reached[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return g;
}

}  // namespace rpq::graph
