// Proximity-graph container (Definition 2 of the paper): one vertex per base
// vector, adjacency lists as neighbor ids, a designated entry vertex for
// routing. HNSW / NSG / Vamana builders all produce this representation for
// the PQ-integrated search phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rpq::graph {

/// Degree statistics used by tests and reports.
struct DegreeStats {
  size_t min_degree = 0;
  size_t max_degree = 0;
  double avg_degree = 0.0;
  size_t num_edges = 0;  ///< directed edge count
};

/// Directed proximity graph with a routing entry point.
class ProximityGraph {
 public:
  ProximityGraph() = default;
  explicit ProximityGraph(size_t n) : adj_(n) {}

  size_t num_vertices() const { return adj_.size(); }
  uint32_t entry_point() const { return entry_; }
  void set_entry_point(uint32_t e) { entry_ = e; }

  /// Grows the vertex set (new vertices start with no edges).
  void Resize(size_t n) { adj_.resize(n); }

  std::vector<uint32_t>& Neighbors(uint32_t v) { return adj_[v]; }
  const std::vector<uint32_t>& Neighbors(uint32_t v) const { return adj_[v]; }

  DegreeStats ComputeDegreeStats() const;

  /// Fraction of vertices reachable from the entry point by BFS.
  double ReachableFraction() const;

  /// Binary (de)serialization so expensive builds can be cached on disk.
  Status Save(const std::string& path) const;
  static Result<ProximityGraph> Load(const std::string& path);

 private:
  std::vector<std::vector<uint32_t>> adj_;
  uint32_t entry_ = 0;
};

/// O(1)-reset visited-set based on epoch stamps, reused across queries.
class VisitedTable {
 public:
  explicit VisitedTable(size_t n) : stamp_(n, 0) {}

  void NextEpoch() {
    if (++epoch_ == 0) {  // wrapped: clear everything once
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }
  bool Visited(uint32_t v) const { return stamp_[v] == epoch_; }
  void MarkVisited(uint32_t v) { stamp_[v] = epoch_; }

  /// Hints that v's stamp is about to be checked (beam-search expansions
  /// touch the table at graph-neighbor stride, which defeats the prefetcher).
  void Prefetch(uint32_t v) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(stamp_.data() + v);
#endif
  }
  size_t size() const { return stamp_.size(); }

  /// Grows the table (new entries are unvisited in every epoch).
  void Resize(size_t n) { stamp_.resize(n, 0); }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

/// The calling thread's visited-table scratch, grown to at least n entries.
/// Every search starts with NextEpoch(), so one table per thread is safely
/// shared across indexes of any size — stale stamps from another index can
/// never alias the current epoch. This is what makes const Search methods
/// thread-safe: concurrent callers each get their own table.
VisitedTable* TlsVisitedTable(size_t n);

}  // namespace rpq::graph
