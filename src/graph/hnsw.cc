#include "graph/hnsw.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/logging.h"

namespace rpq::graph {

HnswIndex::HnswIndex(const Dataset& base, const HnswOptions& options)
    : base_(base),
      opt_(options),
      level_mult_(1.0 / std::log(static_cast<double>(options.m))),
      rng_(options.seed),
      node_level_(base.size(), 0),
      visited_(base.size()) {}

std::unique_ptr<HnswIndex> HnswIndex::Build(const Dataset& base,
                                            const HnswOptions& options) {
  RPQ_CHECK(!base.empty());
  auto index = std::unique_ptr<HnswIndex>(new HnswIndex(base, options));
  for (uint32_t i = 0; i < base.size(); ++i) index->Insert(i);
  return index;
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query, uint32_t entry,
                                             size_t ef, size_t level) const {
  visited_.NextEpoch();
  const auto& layer = adj_[level];

  std::vector<Neighbor> beam;  // ascending, size <= ef
  std::vector<bool> expanded;
  float d0 = SquaredL2(query, base_[entry], base_.dim());
  beam.push_back({d0, entry});
  expanded.push_back(false);
  visited_.MarkVisited(entry);

  for (;;) {
    size_t next = beam.size();
    for (size_t i = 0; i < beam.size(); ++i) {
      if (!expanded[i]) {
        next = i;
        break;
      }
    }
    if (next == beam.size()) break;
    expanded[next] = true;
    uint32_t v = beam[next].id;
    for (uint32_t u : layer[v]) {
      if (visited_.Visited(u)) continue;
      visited_.MarkVisited(u);
      float d = SquaredL2(query, base_[u], base_.dim());
      Neighbor cand{d, u};
      if (beam.size() >= ef && !(cand < beam.back())) continue;
      auto it = std::lower_bound(beam.begin(), beam.end(), cand);
      size_t pos = static_cast<size_t>(it - beam.begin());
      beam.insert(it, cand);
      expanded.insert(expanded.begin() + pos, false);
      if (beam.size() > ef) {
        beam.pop_back();
        expanded.pop_back();
      }
    }
  }
  return beam;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(const float* /*query*/,
                                                 std::vector<Neighbor> candidates,
                                                 size_t m) const {
  // Malkov Algorithm 4: keep a candidate only if it is closer to the query
  // than to every already-selected neighbor (encourages diverse directions).
  std::sort(candidates.begin(), candidates.end());
  std::vector<uint32_t> selected;
  selected.reserve(m);
  for (const Neighbor& c : candidates) {
    if (selected.size() >= m) break;
    bool keep = true;
    for (uint32_t s : selected) {
      float d_cs = SquaredL2(base_[c.id], base_[s], base_.dim());
      if (d_cs < c.dist) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(c.id);
  }
  // Backfill with nearest rejected candidates if diversity pruned too much.
  if (selected.size() < m) {
    for (const Neighbor& c : candidates) {
      if (selected.size() >= m) break;
      if (std::find(selected.begin(), selected.end(), c.id) == selected.end()) {
        selected.push_back(c.id);
      }
    }
  }
  return selected;
}

void HnswIndex::Insert(uint32_t id) {
  size_t level = static_cast<size_t>(
      -std::log(std::max(1e-12f, rng_.Uniform(0.0f, 1.0f))) * level_mult_);
  node_level_[id] = level;

  while (adj_.size() <= level) {
    adj_.emplace_back(base_.size());
  }

  if (num_inserted_ == 0) {
    entry_ = id;
    max_level_ = level;
    ++num_inserted_;
    return;
  }

  const float* query = base_[id];
  uint32_t cur = entry_;

  // Greedy descent through layers above the node's level.
  for (size_t l = max_level_; l > level && l > 0; --l) {
    bool improved = true;
    float cur_d = SquaredL2(query, base_[cur], base_.dim());
    while (improved) {
      improved = false;
      for (uint32_t u : adj_[l][cur]) {
        float d = SquaredL2(query, base_[u], base_.dim());
        if (d < cur_d) {
          cur_d = d;
          cur = u;
          improved = true;
        }
      }
    }
  }

  // Insert with ef-search on each layer from min(level, max_level_) down to 0.
  for (size_t l = std::min(level, max_level_) + 1; l-- > 0;) {
    auto candidates = SearchLayer(query, cur, opt_.ef_construction, l);
    if (!candidates.empty()) cur = candidates.front().id;
    size_t m_layer = (l == 0) ? opt_.m * 2 : opt_.m;
    auto selected = SelectNeighbors(query, candidates, opt_.m);
    auto& layer = adj_[l];
    layer[id] = selected;
    for (uint32_t u : selected) {
      layer[u].push_back(id);
      if (layer[u].size() > m_layer) {
        // Shrink with the same diversity heuristic.
        std::vector<Neighbor> cand;
        cand.reserve(layer[u].size());
        for (uint32_t w : layer[u]) {
          cand.push_back({SquaredL2(base_[u], base_[w], base_.dim()), w});
        }
        layer[u] = SelectNeighbors(base_[u], std::move(cand), m_layer);
      }
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_ = id;
  }
  ++num_inserted_;
}

std::vector<Neighbor> HnswIndex::Search(const float* query, size_t k,
                                        size_t ef) const {
  uint32_t cur = entry_;
  for (size_t l = max_level_; l > 0; --l) {
    bool improved = true;
    float cur_d = SquaredL2(query, base_[cur], base_.dim());
    while (improved) {
      improved = false;
      for (uint32_t u : adj_[l][cur]) {
        float d = SquaredL2(query, base_[u], base_.dim());
        if (d < cur_d) {
          cur_d = d;
          cur = u;
          improved = true;
        }
      }
    }
  }
  auto beam = SearchLayer(query, cur, std::max(ef, k), 0);
  if (beam.size() > k) beam.resize(k);
  return beam;
}

ProximityGraph HnswIndex::Flatten() const {
  ProximityGraph g(base_.size());
  for (uint32_t v = 0; v < base_.size(); ++v) {
    g.Neighbors(v) = adj_[0][v];
  }
  g.set_entry_point(entry_);
  return g;
}

}  // namespace rpq::graph
