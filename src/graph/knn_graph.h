// Exact and approximate k-nearest-neighbor graph construction, the substrate
// NSG refines into its final edge set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/topk.h"
#include "data/dataset.h"

namespace rpq::graph {

/// knn[i] = up to k nearest neighbors of base[i] (ascending), self excluded.
using KnnLists = std::vector<std::vector<Neighbor>>;

/// Exact kNN lists by brute force (O(n^2 d); fine up to ~20k points).
KnnLists BuildExactKnn(const Dataset& base, size_t k, ThreadPool* pool = nullptr);

/// NN-Descent [Dong et al.]: iterative neighbor-of-neighbor refinement.
/// Approximate but near-linear; used for larger bases.
struct NnDescentOptions {
  size_t k = 32;
  size_t iters = 8;
  size_t sample = 16;      ///< sampled candidates per side and round
  uint64_t seed = 19;
};
KnnLists BuildNnDescent(const Dataset& base, const NnDescentOptions& options);

/// Chooses exact vs NN-Descent by base size (threshold picked for 1 core).
KnnLists BuildKnnAuto(const Dataset& base, size_t k, ThreadPool* pool = nullptr);

/// Index of the medoid: the vector minimizing distance to the dataset mean.
uint32_t FindMedoid(const Dataset& base);

}  // namespace rpq::graph
