// Generic best-first beam search over a proximity graph (paper §3.1).
// The distance oracle is a template parameter so the same routine serves
// exact search, in-memory ADC search, and the hybrid DiskANN-style search.
//
// Hot-loop layout: the beam is one flat sorted array of {dist, id, expanded}
// entries (a single memmove per insert instead of a vector<Neighbor> plus a
// bit-packed vector<bool>), a cursor tracks the next unexpanded entry instead
// of rescanning the beam, and each expansion gathers its unvisited neighbors
// first so a batch-capable oracle (e.g. quant::AdcBatchOracle) can score them
// in one vectorized call. Results are identical to the straightforward
// insert-one-at-a-time formulation; tests/beam_regression_test.cc pins that.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/deadline.h"
#include "common/topk.h"
#include "graph/graph.h"

namespace rpq::graph {

/// Instrumentation collected per query (the paper reports Hops).
struct SearchStats {
  size_t hops = 0;          ///< next-hop selections (expanded vertices)
  size_t dist_comps = 0;    ///< distance-oracle invocations
  size_t visited_hits = 0;  ///< neighbors skipped because already visited
  bool deadline_hit = false;  ///< search stopped early at its deadline
};

/// Beam-search knobs; beam_width is `h` in the paper.
struct BeamSearchOptions {
  size_t beam_width = 32;
  size_t k = 10;
  /// Optional budget: checked once per hop; on expiry the search returns the
  /// best candidates found so far and sets SearchStats::deadline_hit.
  Deadline deadline;
};

/// How many ids ahead the neighbor-gather loops prefetch the visited-table
/// stamp. One constant shared by graph::BeamSearch and the hybrid
/// disk::DiskIndex::Search so the two hot loops cannot drift.
inline constexpr size_t kVisitedPrefetchDistance = 4;

/// Optional per-step observer: receives the ranked global candidate set
/// (ascending estimated distance, <= beam_width entries) right before each
/// expansion. Used by the routing-feature extractor (Alg. 2).
using StepObserver = std::function<void(const std::vector<Neighbor>& beam)>;

namespace detail {

/// True when the oracle exposes the batched form dist(ids, n, out); the
/// search then scores a whole expansion's neighbors per call.
template <typename DistFn>
inline constexpr bool kHasBatchScore =
    std::is_invocable_v<DistFn&, const uint32_t*, size_t, float*>;

/// True when the oracle scores a vertex's whole adjacency in one pass via
/// ScoreNeighbors(v, nbrs, deg, out) — the FastScan shape, where per-vertex
/// packed neighbor codes make scoring the full block (visited included)
/// cheaper than gathering the unvisited subset first
/// (quant::FastScanNeighborOracle).
template <typename DistFn, typename = void>
struct HasNeighborBlockScore : std::false_type {};
template <typename DistFn>
struct HasNeighborBlockScore<
    DistFn, std::void_t<decltype(std::declval<DistFn&>().ScoreNeighbors(
                uint32_t{}, static_cast<const uint32_t*>(nullptr), size_t{},
                static_cast<float*>(nullptr)))>> : std::true_type {};
template <typename DistFn>
inline constexpr bool kHasNeighborBlockScore =
    HasNeighborBlockScore<std::decay_t<DistFn>>::value;

/// Optional companion to ScoreNeighbors: PrefetchNeighbors(v) warms the
/// oracle's per-vertex data for a vertex about to be expanded.
template <typename DistFn, typename = void>
struct HasPrefetchNeighbors : std::false_type {};
template <typename DistFn>
struct HasPrefetchNeighbors<
    DistFn, std::void_t<decltype(std::declval<const DistFn&>().PrefetchNeighbors(
                uint32_t{}))>> : std::true_type {};
template <typename DistFn>
inline constexpr bool kHasPrefetchNeighbors =
    HasPrefetchNeighbors<std::decay_t<DistFn>>::value;

/// One beam slot; kept POD so inserts are a single memmove.
struct BeamEntry {
  float dist;
  uint32_t id;
  uint32_t expanded;
};

/// (dist, id) ordering; delegates to Neighbor::operator< so the determinism
/// tie-break is defined in exactly one place.
inline bool EntryBefore(const BeamEntry& e, float dist, uint32_t id) {
  return Neighbor{e.dist, e.id} < Neighbor{dist, id};
}

/// The flat-beam candidate set: one sorted POD array plus a cursor tracking
/// the next unexpanded entry. Shared by graph::BeamSearch and the hybrid
/// disk::DiskIndex::Search so the invariant lives (and is regression-tested)
/// in exactly one place.
class FlatBeam {
 public:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  explicit FlatBeam(size_t width) : width_(width) {
    entries_.reserve(width + 1);
  }

  const std::vector<BeamEntry>& entries() const { return entries_; }

  /// Bounded sorted insert; keeps at most `width` best (dist, id) entries.
  void Insert(float d, uint32_t id) {
    if (entries_.size() >= width_) {
      const BeamEntry& worst = entries_.back();
      if (!EntryBefore(BeamEntry{d, id, 0}, worst.dist, worst.id)) return;
    }
    auto it = std::lower_bound(entries_.begin(), entries_.end(),
                               BeamEntry{d, id, 0},
                               [](const BeamEntry& e, const BeamEntry& c) {
                                 return EntryBefore(e, c.dist, c.id);
                               });
    size_t pos = static_cast<size_t>(it - entries_.begin());
    entries_.insert(it, BeamEntry{d, id, 0});
    if (entries_.size() > width_) entries_.pop_back();
    if (pos < cursor_) cursor_ = pos;
  }

  /// Distance of the current worst kept entry, or +inf while the beam still
  /// has room. Candidates strictly above this can never enter the beam (the
  /// worst only tightens), so block-scoring oracles prune on it before even
  /// touching the visited table.
  float WorstDist() const {
    return entries_.size() >= width_
               ? entries_.back().dist
               : std::numeric_limits<float>::infinity();
  }

  /// Index of the closest unexpanded entry, or kNone when converged. Does
  /// not mark it: callers flip `expanded` once they commit to the hop.
  size_t NextUnexpanded() {
    while (cursor_ < entries_.size() && entries_[cursor_].expanded != 0) {
      ++cursor_;
    }
    return cursor_ == entries_.size() ? kNone : cursor_;
  }

  void MarkExpanded(size_t pos) { entries_[pos].expanded = 1; }

 private:
  std::vector<BeamEntry> entries_;
  size_t width_;
  size_t cursor_ = 0;
};

}  // namespace detail

/// Runs beam search from `entry`; `dist(v)` returns the (estimated) distance
/// of vertex v to the query (oracles may additionally/instead provide the
/// batched form `dist(ids, n, out)`). Returns up to k results ascending by
/// distance.
template <typename DistFn>
std::vector<Neighbor> BeamSearch(const ProximityGraph& g, uint32_t entry,
                                 DistFn&& dist, const BeamSearchOptions& opt,
                                 VisitedTable* visited, SearchStats* stats = nullptr,
                                 const StepObserver& observer = nullptr) {
  const size_t beam_width = std::max(opt.beam_width, opt.k);
  visited->NextEpoch();

  detail::FlatBeam beam(beam_width);
  std::vector<uint32_t> cand_ids;    // unvisited neighbors of one expansion
  std::vector<float> cand_dists;
  cand_ids.reserve(64);
  cand_dists.reserve(64);
  std::vector<Neighbor> observer_view;

  float d0;
  if constexpr (std::is_invocable_r_v<float, DistFn&, uint32_t>) {
    d0 = dist(entry);
  } else {
    dist(&entry, 1, &d0);
  }
  if (stats != nullptr) ++stats->dist_comps;
  beam.Insert(d0, entry);
  visited->MarkVisited(entry);

  for (;;) {
    const size_t next = beam.NextUnexpanded();
    if (next == detail::FlatBeam::kNone) break;  // all expanded: converged
    if (opt.deadline.Expired()) {
      // Partial answer: everything inserted so far is still correctly
      // ranked, it just may not have converged.
      if (stats != nullptr) stats->deadline_hit = true;
      break;
    }

    if (observer) {
      observer_view.clear();
      observer_view.reserve(beam.entries().size());
      for (const auto& e : beam.entries()) {
        observer_view.push_back({e.dist, e.id});
      }
      observer(observer_view);
    }
    beam.MarkExpanded(next);
    const uint32_t v = beam.entries()[next].id;
    if (stats != nullptr) ++stats->hops;

    const std::vector<uint32_t>& nbrs = g.Neighbors(v);
    const size_t deg = nbrs.size();
    if constexpr (detail::kHasNeighborBlockScore<DistFn>) {
      // Neighbor-block oracle: score the WHOLE adjacency in one pass (the
      // packed block scores 32 codes per shuffle, so re-scoring visited
      // entries is cheaper than gathering the unvisited subset), then filter
      // on the way into the beam. Distance-first pruning: a candidate worse
      // than the beam's current worst can never be kept (the bound only
      // tightens), so it is dropped on a register compare without spending a
      // scattered visited-stamp load/store on it. Skipping its visited mark
      // is safe for the same reason — any later encounter prunes again.
      if (deg == 0) continue;
      cand_dists.resize(deg);
      dist.ScoreNeighbors(v, nbrs.data(), deg, cand_dists.data());
      if (stats != nullptr) stats->dist_comps += deg;
      float worst = beam.WorstDist();
      for (size_t i = 0; i < deg; ++i) {
        if (cand_dists[i] > worst) continue;
        uint32_t u = nbrs[i];
        if (visited->Visited(u)) {
          if (stats != nullptr) ++stats->visited_hits;
          continue;
        }
        visited->MarkVisited(u);
        beam.Insert(cand_dists[i], u);
        worst = beam.WorstDist();
      }
      // Kick off the next expansion's block fetch while this iteration's
      // bookkeeping (observer, stats, cursor walk) still runs.
      if constexpr (detail::kHasPrefetchNeighbors<DistFn>) {
        const size_t peek = beam.NextUnexpanded();
        if (peek != detail::FlatBeam::kNone) {
          dist.PrefetchNeighbors(beam.entries()[peek].id);
        }
      }
    } else {
      // Gather the unvisited neighbors first (prefetching visited stamps a
      // few ids ahead), then score them through the oracle — batched when it
      // can.
      cand_ids.clear();
      for (size_t i = 0; i < deg; ++i) {
        if (i + kVisitedPrefetchDistance < deg) {
          visited->Prefetch(nbrs[i + kVisitedPrefetchDistance]);
        }
        uint32_t u = nbrs[i];
        if (visited->Visited(u)) {
          if (stats != nullptr) ++stats->visited_hits;
          continue;
        }
        visited->MarkVisited(u);
        cand_ids.push_back(u);
      }
      if (cand_ids.empty()) continue;

      cand_dists.resize(cand_ids.size());
      if constexpr (detail::kHasBatchScore<DistFn>) {
        dist(cand_ids.data(), cand_ids.size(), cand_dists.data());
      } else {
        for (size_t i = 0; i < cand_ids.size(); ++i) {
          cand_dists[i] = dist(cand_ids[i]);
        }
      }
      if (stats != nullptr) stats->dist_comps += cand_ids.size();

      for (size_t i = 0; i < cand_ids.size(); ++i) {
        beam.Insert(cand_dists[i], cand_ids[i]);
      }
    }
  }

  std::vector<Neighbor> results;
  const size_t out_n = std::min(opt.k, beam.entries().size());
  results.reserve(out_n);
  for (size_t i = 0; i < out_n; ++i) {
    results.push_back({beam.entries()[i].dist, beam.entries()[i].id});
  }
  return results;
}

/// Greedy 1-best descent (used to locate entry points during construction).
template <typename DistFn>
uint32_t GreedyDescent(const ProximityGraph& g, uint32_t entry, DistFn&& dist) {
  uint32_t cur = entry;
  float cur_d = dist(cur);
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t u : g.Neighbors(cur)) {
      float d = dist(u);
      if (d < cur_d) {
        cur_d = d;
        cur = u;
        improved = true;
      }
    }
  }
  return cur;
}

}  // namespace rpq::graph
