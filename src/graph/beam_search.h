// Generic best-first beam search over a proximity graph (paper §3.1).
// The distance oracle is a template parameter so the same routine serves
// exact search, in-memory ADC search, and the hybrid DiskANN-style search.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/topk.h"
#include "graph/graph.h"

namespace rpq::graph {

/// Instrumentation collected per query (the paper reports Hops).
struct SearchStats {
  size_t hops = 0;        ///< next-hop selections (expanded vertices)
  size_t dist_comps = 0;  ///< distance-oracle invocations
};

/// Beam-search knobs; beam_width is `h` in the paper.
struct BeamSearchOptions {
  size_t beam_width = 32;
  size_t k = 10;
};

/// Optional per-step observer: receives the ranked global candidate set
/// (ascending estimated distance, <= beam_width entries) right before each
/// expansion. Used by the routing-feature extractor (Alg. 2).
using StepObserver = std::function<void(const std::vector<Neighbor>& beam)>;

/// Runs beam search from `entry`; `dist(v)` returns the (estimated) distance
/// of vertex v to the query. Returns up to k results ascending by distance.
template <typename DistFn>
std::vector<Neighbor> BeamSearch(const ProximityGraph& g, uint32_t entry,
                                 DistFn&& dist, const BeamSearchOptions& opt,
                                 VisitedTable* visited, SearchStats* stats = nullptr,
                                 const StepObserver& observer = nullptr) {
  const size_t beam_width = std::max(opt.beam_width, opt.k);
  visited->NextEpoch();

  // `beam` holds the best beam_width candidates seen so far, sorted ascending.
  std::vector<Neighbor> beam;
  beam.reserve(beam_width + 1);
  std::vector<bool> expanded_flag;  // parallel to beam

  float d0 = dist(entry);
  if (stats != nullptr) ++stats->dist_comps;
  beam.push_back({d0, entry});
  expanded_flag.push_back(false);
  visited->MarkVisited(entry);

  auto insert_candidate = [&](float d, uint32_t id) {
    if (beam.size() >= beam_width && !(Neighbor{d, id} < beam.back())) return;
    Neighbor cand{d, id};
    auto it = std::lower_bound(beam.begin(), beam.end(), cand);
    size_t pos = static_cast<size_t>(it - beam.begin());
    beam.insert(it, cand);
    expanded_flag.insert(expanded_flag.begin() + pos, false);
    if (beam.size() > beam_width) {
      beam.pop_back();
      expanded_flag.pop_back();
    }
  };

  for (;;) {
    // Closest unexpanded candidate in the beam.
    size_t next = beam.size();
    for (size_t i = 0; i < beam.size(); ++i) {
      if (!expanded_flag[i]) {
        next = i;
        break;
      }
    }
    if (next == beam.size()) break;  // all candidates expanded: converged

    if (observer) observer(beam);
    expanded_flag[next] = true;
    uint32_t v = beam[next].id;
    if (stats != nullptr) ++stats->hops;

    for (uint32_t u : g.Neighbors(v)) {
      if (visited->Visited(u)) continue;
      visited->MarkVisited(u);
      float d = dist(u);
      if (stats != nullptr) ++stats->dist_comps;
      insert_candidate(d, u);
    }
  }

  if (beam.size() > opt.k) beam.resize(opt.k);
  return beam;
}

/// Greedy 1-best descent (used to locate entry points during construction).
template <typename DistFn>
uint32_t GreedyDescent(const ProximityGraph& g, uint32_t entry, DistFn&& dist) {
  uint32_t cur = entry;
  float cur_d = dist(cur);
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t u : g.Neighbors(cur)) {
      float d = dist(u);
      if (d < cur_d) {
        cur_d = d;
        cur = u;
        improved = true;
      }
    }
  }
  return cur;
}

}  // namespace rpq::graph
