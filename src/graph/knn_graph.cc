#include "graph/knn_graph.h"

#include <algorithm>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/ground_truth.h"

namespace rpq::graph {

KnnLists BuildExactKnn(const Dataset& base, size_t k, ThreadPool* pool) {
  return ComputeSelfKnn(base, k, pool);
}

KnnLists BuildNnDescent(const Dataset& base, const NnDescentOptions& opt) {
  size_t n = base.size();
  RPQ_CHECK_GT(n, opt.k);
  Rng rng(opt.seed);

  // Neighbor lists with flags: new entries participate in joins once.
  struct Entry {
    Neighbor nb;
    bool is_new;
  };
  std::vector<std::vector<Entry>> lists(n);

  auto dist = [&](uint32_t a, uint32_t b) {
    return SquaredL2(base[a], base[b], base.dim());
  };
  auto try_insert = [&](uint32_t host, uint32_t cand, float d) -> bool {
    if (host == cand) return false;
    auto& lst = lists[host];
    for (const auto& e : lst) {
      if (e.nb.id == cand) return false;
    }
    Neighbor nb{d, cand};
    if (lst.size() < opt.k) {
      lst.push_back({nb, true});
      std::push_heap(lst.begin(), lst.end(),
                     [](const Entry& a, const Entry& b) { return a.nb < b.nb; });
      return true;
    }
    std::pop_heap(lst.begin(), lst.end(),
                  [](const Entry& a, const Entry& b) { return a.nb < b.nb; });
    if (nb < lst.back().nb) {
      lst.back() = {nb, true};
      std::push_heap(lst.begin(), lst.end(),
                     [](const Entry& a, const Entry& b) { return a.nb < b.nb; });
      return true;
    }
    std::push_heap(lst.begin(), lst.end(),
                   [](const Entry& a, const Entry& b) { return a.nb < b.nb; });
    return false;
  };

  // Random initialization.
  for (uint32_t i = 0; i < n; ++i) {
    auto picks = rng.SampleWithoutReplacement(n - 1, opt.k);
    for (uint32_t p : picks) {
      uint32_t j = p >= i ? p + 1 : p;  // skip self
      try_insert(i, j, dist(i, j));
    }
  }

  // Local-join rounds. Each round joins the sampled new/old FORWARD neighbors
  // with the sampled new/old REVERSE neighbors, per Dong et al.'s algorithm —
  // forward-only joins converge far too slowly.
  std::vector<std::vector<uint32_t>> rev_new(n), rev_old(n);
  for (size_t iter = 0; iter < opt.iters; ++iter) {
    for (auto& r : rev_new) r.clear();
    for (auto& r : rev_old) r.clear();
    std::vector<std::vector<uint32_t>> fwd_new(n), fwd_old(n);
    for (uint32_t v = 0; v < n; ++v) {
      for (auto& e : lists[v]) {
        if (e.is_new) {
          if (fwd_new[v].size() < opt.sample) {
            fwd_new[v].push_back(e.nb.id);
            e.is_new = false;
          }
        } else if (fwd_old[v].size() < opt.sample) {
          fwd_old[v].push_back(e.nb.id);
        }
      }
      for (uint32_t u : fwd_new[v]) {
        if (rev_new[u].size() < opt.sample) rev_new[u].push_back(v);
      }
      for (uint32_t u : fwd_old[v]) {
        if (rev_old[u].size() < opt.sample) rev_old[u].push_back(v);
      }
    }

    size_t updates = 0;
    std::vector<uint32_t> new_ids, old_ids;
    for (uint32_t v = 0; v < n; ++v) {
      new_ids = fwd_new[v];
      new_ids.insert(new_ids.end(), rev_new[v].begin(), rev_new[v].end());
      old_ids = fwd_old[v];
      old_ids.insert(old_ids.end(), rev_old[v].begin(), rev_old[v].end());
      std::sort(new_ids.begin(), new_ids.end());
      new_ids.erase(std::unique(new_ids.begin(), new_ids.end()), new_ids.end());
      // Join new x new and new x old.
      for (size_t a = 0; a < new_ids.size(); ++a) {
        for (size_t b = a + 1; b < new_ids.size(); ++b) {
          float d = dist(new_ids[a], new_ids[b]);
          updates += try_insert(new_ids[a], new_ids[b], d);
          updates += try_insert(new_ids[b], new_ids[a], d);
        }
        for (uint32_t o : old_ids) {
          if (o == new_ids[a]) continue;
          float d = dist(new_ids[a], o);
          updates += try_insert(new_ids[a], o, d);
          updates += try_insert(o, new_ids[a], d);
        }
      }
    }
    if (updates == 0) break;  // converged
  }

  KnnLists out(n);
  for (uint32_t i = 0; i < n; ++i) {
    out[i].reserve(lists[i].size());
    for (const auto& e : lists[i]) out[i].push_back(e.nb);
    std::sort(out[i].begin(), out[i].end());
  }
  return out;
}

KnnLists BuildKnnAuto(const Dataset& base, size_t k, ThreadPool* pool) {
  constexpr size_t kExactLimit = 12000;
  if (base.size() <= kExactLimit) return BuildExactKnn(base, k, pool);
  NnDescentOptions opt;
  opt.k = k;
  return BuildNnDescent(base, opt);
}

uint32_t FindMedoid(const Dataset& base) {
  RPQ_CHECK(!base.empty());
  std::vector<float> mean(base.dim(), 0.0f);
  for (size_t i = 0; i < base.size(); ++i) {
    const float* row = base[i];
    for (size_t j = 0; j < base.dim(); ++j) mean[j] += row[j];
  }
  for (auto& v : mean) v /= static_cast<float>(base.size());
  uint32_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t i = 0; i < base.size(); ++i) {
    float d = SquaredL2(mean.data(), base[i], base.dim());
    if (d < best_d) {
      best_d = d;
      best = static_cast<uint32_t>(i);
    }
  }
  return best;
}

}  // namespace rpq::graph
