// FreshVamana: incremental (streaming) Vamana maintenance in the spirit of
// FreshDiskANN [61], which the paper names as an RPQ integration target
// (§7). Supports online Insert, lazy Delete (tombstones), and Consolidate —
// the edge-repair pass that routes around removed vertices by splicing each
// deleted vertex's out-neighbors into its in-neighbors' lists under
// RobustPrune.
//
// Concurrency model (v1, shared-lock epochs): Search takes a shared lock,
// the mutators (Insert / Delete / Consolidate) take an exclusive lock, and
// per-query scratch comes from thread-local storage — so any number of
// readers run fully in parallel and only pause for the duration of one write
// (no reader ever waits on another reader). The lock is writer-priority
// (common/rwlock.h) so a saturated read load cannot starve the update
// stream. The serving layer (serve::FreshVamanaService) relies on exactly
// this contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "common/rwlock.h"
#include "common/topk.h"
#include "data/dataset.h"
#include "graph/graph.h"
#include "graph/vamana.h"

namespace rpq::graph {

/// Streaming Vamana index owning a growing copy of the vectors.
class FreshVamanaIndex {
 public:
  explicit FreshVamanaIndex(size_t dim, const VamanaOptions& options = {});

  /// Inserts one vector; returns its id. Ids are stable across deletes.
  uint32_t Insert(const float* vec);

  /// Tombstones a vertex: excluded from results immediately, still traversed
  /// until the next Consolidate() (FreshDiskANN's lazy-delete semantics).
  void Delete(uint32_t id);

  /// Repairs the graph around tombstoned vertices and drops their edges.
  void Consolidate();

  /// Beam search; tombstoned vertices are traversed but never returned.
  /// Safe to call from any number of threads concurrently with mutators.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               size_t beam_width) const;

  size_t size() const { return live_count_.load(std::memory_order_relaxed); }
  size_t total_slots() const;  ///< incl. tombstones
  bool IsDeleted(uint32_t id) const;

  /// Structure accessors for tests/tools; callers must ensure no concurrent
  /// mutator is running (they return references into guarded state).
  const ProximityGraph& graph() const { return graph_; }
  const Dataset& data() const { return data_; }

 private:
  /// Greedy pool collection from the entry (Vamana's insert search).
  /// Caller holds mu_ (exclusive).
  std::vector<Neighbor> CollectCandidates(const float* vec) const;
  void PruneInto(uint32_t v, std::vector<Neighbor> pool);

  size_t dim_;
  VamanaOptions opt_;
  Dataset data_;
  ProximityGraph graph_;
  std::vector<bool> deleted_;
  std::atomic<size_t> live_count_{0};
  mutable WriterPriorityMutex mu_;
};

}  // namespace rpq::graph
