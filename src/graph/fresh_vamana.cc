#include "graph/fresh_vamana.h"

#include <algorithm>
#include <mutex>

#include "common/distance.h"
#include "common/logging.h"
#include "graph/beam_search.h"

namespace rpq::graph {

FreshVamanaIndex::FreshVamanaIndex(size_t dim, const VamanaOptions& options)
    : dim_(dim), opt_(options) {}

size_t FreshVamanaIndex::total_slots() const {
  std::shared_lock<WriterPriorityMutex> lk(mu_);
  return data_.size();
}

bool FreshVamanaIndex::IsDeleted(uint32_t id) const {
  std::shared_lock<WriterPriorityMutex> lk(mu_);
  return deleted_[id];
}

std::vector<Neighbor> FreshVamanaIndex::CollectCandidates(
    const float* vec) const {
  std::vector<Neighbor> pool;
  if (data_.empty()) return pool;
  BeamSearchOptions bopt;
  bopt.beam_width = opt_.build_beam;
  bopt.k = opt_.build_beam;
  BeamSearch(
      graph_, graph_.entry_point(),
      [&](uint32_t u) {
        float d = SquaredL2(vec, data_[u], dim_);
        pool.push_back({d, u});
        return d;
      },
      bopt, TlsVisitedTable(data_.size()));
  return pool;
}

void FreshVamanaIndex::PruneInto(uint32_t v, std::vector<Neighbor> pool) {
  // Tombstoned vertices must not become edges.
  pool.erase(std::remove_if(pool.begin(), pool.end(),
                            [&](const Neighbor& nb) {
                              return deleted_[nb.id] || nb.id == v;
                            }),
             pool.end());
  graph_.Neighbors(v) = RobustPrune(data_, v, std::move(pool), opt_.alpha,
                                    opt_.degree);
}

uint32_t FreshVamanaIndex::Insert(const float* vec) {
  std::unique_lock<WriterPriorityMutex> lk(mu_);
  uint32_t id = static_cast<uint32_t>(data_.size());
  data_.Append(vec, dim_);
  deleted_.push_back(false);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  graph_.Resize(data_.size());
  if (id == 0) {
    graph_.set_entry_point(0);
    return id;  // first vertex: entry point, no edges yet
  }

  std::vector<Neighbor> pool = CollectCandidates(vec);
  PruneInto(id, std::move(pool));

  // Reverse edges with pruning on overflow (as in batch Vamana).
  for (uint32_t u : graph_.Neighbors(id)) {
    auto& unb = graph_.Neighbors(u);
    if (std::find(unb.begin(), unb.end(), id) != unb.end()) continue;
    unb.push_back(id);
    if (unb.size() > opt_.degree) {
      std::vector<Neighbor> cand;
      cand.reserve(unb.size());
      for (uint32_t w : unb) {
        cand.push_back({SquaredL2(data_[u], data_[w], dim_), w});
      }
      PruneInto(u, std::move(cand));
    }
  }
  return id;
}

void FreshVamanaIndex::Delete(uint32_t id) {
  std::unique_lock<WriterPriorityMutex> lk(mu_);
  RPQ_CHECK_LT(id, data_.size());
  if (deleted_[id]) return;
  deleted_[id] = true;
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  // Keep the entry point live: move it to the nearest live neighbor.
  if (graph_.entry_point() == id) {
    for (uint32_t u : graph_.Neighbors(id)) {
      if (!deleted_[u]) {
        graph_.set_entry_point(u);
        break;
      }
    }
    if (graph_.entry_point() == id) {
      for (uint32_t v = 0; v < data_.size(); ++v) {
        if (!deleted_[v]) {
          graph_.set_entry_point(v);
          break;
        }
      }
    }
  }
}

void FreshVamanaIndex::Consolidate() {
  std::unique_lock<WriterPriorityMutex> lk(mu_);
  // FreshDiskANN's repair: every in-neighbor p of a deleted vertex d adopts
  // d's (live) out-neighbors as candidates, then re-prunes.
  size_t n = data_.size();
  for (uint32_t p = 0; p < n; ++p) {
    if (deleted_[p]) continue;
    auto& nb = graph_.Neighbors(p);
    bool touches_deleted = false;
    for (uint32_t u : nb) {
      if (deleted_[u]) {
        touches_deleted = true;
        break;
      }
    }
    if (!touches_deleted) continue;
    std::vector<Neighbor> pool;
    for (uint32_t u : nb) {
      if (!deleted_[u]) {
        pool.push_back({SquaredL2(data_[p], data_[u], dim_), u});
      } else {
        for (uint32_t w : graph_.Neighbors(u)) {
          if (!deleted_[w] && w != p) {
            pool.push_back({SquaredL2(data_[p], data_[w], dim_), w});
          }
        }
      }
    }
    PruneInto(p, std::move(pool));
  }
  // Drop tombstoned adjacency so searches no longer traverse them.
  for (uint32_t v = 0; v < n; ++v) {
    if (deleted_[v]) graph_.Neighbors(v).clear();
  }
}

std::vector<Neighbor> FreshVamanaIndex::Search(const float* query, size_t k,
                                               size_t beam_width) const {
  std::shared_lock<WriterPriorityMutex> lk(mu_);
  if (live_count_.load(std::memory_order_relaxed) == 0) return {};
  // Over-fetch so tombstones filtered from the beam still leave k results.
  BeamSearchOptions bopt;
  bopt.beam_width = std::max(beam_width, 2 * k);
  bopt.k = bopt.beam_width;
  auto raw = BeamSearch(
      graph_, graph_.entry_point(),
      [&](uint32_t u) { return SquaredL2(query, data_[u], dim_); }, bopt,
      TlsVisitedTable(data_.size()));
  std::vector<Neighbor> out;
  out.reserve(k);
  for (const Neighbor& nb : raw) {
    if (!deleted_[nb.id]) {
      out.push_back(nb);
      if (out.size() == k) break;
    }
  }
  return out;
}

}  // namespace rpq::graph
