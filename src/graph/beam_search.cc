#include "graph/beam_search.h"

#include "common/distance.h"
#include "data/dataset.h"

namespace rpq::graph {

// Non-template convenience used by examples and tests: exact-distance search.
std::vector<Neighbor> ExactBeamSearch(const ProximityGraph& g,
                                      const Dataset& base, const float* query,
                                      const BeamSearchOptions& opt,
                                      VisitedTable* visited,
                                      SearchStats* stats) {
  return BeamSearch(
      g, g.entry_point(),
      [&](uint32_t v) { return SquaredL2(query, base[v], base.dim()); }, opt,
      visited, stats);
}

}  // namespace rpq::graph
