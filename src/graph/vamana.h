// Vamana graph construction — the PG underlying DiskANN [36] and the paper's
// hybrid-scenario experiments. Random-regular initialization followed by two
// passes of greedy-search + RobustPrune(alpha), with pruned reverse edges.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/topk.h"
#include "data/dataset.h"
#include "graph/graph.h"

namespace rpq::graph {

/// Vamana construction knobs (DiskANN defaults scaled to this library).
struct VamanaOptions {
  size_t degree = 32;       ///< R: max out-degree
  size_t build_beam = 64;   ///< L: search list size during construction
  float alpha = 1.2f;       ///< RobustPrune distance-slack factor
  size_t passes = 2;        ///< DiskANN runs 2 passes (alpha=1 then alpha)
  uint64_t seed = 29;
};

/// Builds the Vamana PG; entry point is the dataset medoid.
ProximityGraph BuildVamana(const Dataset& base, const VamanaOptions& options);

/// RobustPrune: selects up to `degree` diverse neighbors for `p` from
/// `candidates` (ascending by distance to p). Exposed for tests.
std::vector<uint32_t> RobustPrune(const Dataset& base, uint32_t p,
                                  std::vector<Neighbor> candidates, float alpha,
                                  size_t degree);

}  // namespace rpq::graph
