#include "graph/graph.h"

#include "common/file_io.h"

#include <algorithm>
#include <cstdio>
#include <memory>

namespace rpq::graph {

VisitedTable* TlsVisitedTable(size_t n) {
  thread_local VisitedTable table(0);
  if (table.size() < n) table.Resize(n);
  return &table;
}

DegreeStats ProximityGraph::ComputeDegreeStats() const {
  DegreeStats s;
  if (adj_.empty()) return s;
  s.min_degree = adj_[0].size();
  for (const auto& nb : adj_) {
    s.min_degree = std::min(s.min_degree, nb.size());
    s.max_degree = std::max(s.max_degree, nb.size());
    s.num_edges += nb.size();
  }
  s.avg_degree = static_cast<double>(s.num_edges) / adj_.size();
  return s;
}

double ProximityGraph::ReachableFraction() const {
  if (adj_.empty()) return 0.0;
  std::vector<bool> seen(adj_.size(), false);
  std::vector<uint32_t> stack{entry_};
  seen[entry_] = true;
  size_t count = 0;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    ++count;
    for (uint32_t u : adj_[v]) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return static_cast<double>(count) / adj_.size();
}

Status ProximityGraph::Save(const std::string& path) const {
  io::FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  uint64_t n = adj_.size();
  uint32_t entry = entry_;
  if (std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fwrite(&entry, sizeof(entry), 1, f.get()) != 1) {
    return Status::IOError("short write");
  }
  for (const auto& nb : adj_) {
    uint32_t deg = static_cast<uint32_t>(nb.size());
    if (std::fwrite(&deg, sizeof(deg), 1, f.get()) != 1) {
      return Status::IOError("short write");
    }
    if (deg > 0 && std::fwrite(nb.data(), sizeof(uint32_t), deg, f.get()) != deg) {
      return Status::IOError("short write");
    }
  }
  return Status::OK();
}

Result<ProximityGraph> ProximityGraph::Load(const std::string& path) {
  io::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint64_t n = 0;
  uint32_t entry = 0;
  if (std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&entry, sizeof(entry), 1, f.get()) != 1) {
    return Status::IOError("truncated header");
  }
  ProximityGraph g(n);
  g.set_entry_point(entry);
  for (uint64_t v = 0; v < n; ++v) {
    uint32_t deg = 0;
    if (std::fread(&deg, sizeof(deg), 1, f.get()) != 1) {
      return Status::IOError("truncated adjacency");
    }
    auto& nb = g.Neighbors(static_cast<uint32_t>(v));
    nb.resize(deg);
    if (deg > 0 && std::fread(nb.data(), sizeof(uint32_t), deg, f.get()) != deg) {
      return Status::IOError("truncated adjacency");
    }
  }
  return g;
}

}  // namespace rpq::graph
