#include "graph/graph.h"

#include "common/file_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

namespace rpq::graph {

VisitedTable* TlsVisitedTable(size_t n) {
  thread_local VisitedTable table(0);
  if (table.size() < n) table.Resize(n);
  return &table;
}

DegreeStats ProximityGraph::ComputeDegreeStats() const {
  DegreeStats s;
  if (adj_.empty()) return s;
  s.min_degree = adj_[0].size();
  for (const auto& nb : adj_) {
    s.min_degree = std::min(s.min_degree, nb.size());
    s.max_degree = std::max(s.max_degree, nb.size());
    s.num_edges += nb.size();
  }
  s.avg_degree = static_cast<double>(s.num_edges) / adj_.size();
  return s;
}

double ProximityGraph::ReachableFraction() const {
  if (adj_.empty()) return 0.0;
  std::vector<bool> seen(adj_.size(), false);
  std::vector<uint32_t> stack{entry_};
  seen[entry_] = true;
  size_t count = 0;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    ++count;
    for (uint32_t u : adj_[v]) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return static_cast<double>(count) / adj_.size();
}

namespace {

// "RPQG" v1: magic | u32 version | u64 n | u32 entry | per-vertex adjacency
// | CRC32 trailer. The historical format had no magic (header started at the
// raw u64 count); Load still accepts those files by rewinding when the magic
// is absent. Save always writes the guarded format, atomically.
constexpr char kGraphMagic[4] = {'R', 'P', 'Q', 'G'};
constexpr uint32_t kGraphVersion = 1;

}  // namespace

Status ProximityGraph::Save(const std::string& path) const {
  io::AtomicFile file(path);
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  io::CrcWriter w(file.get());
  const uint64_t n = adj_.size();
  const uint32_t entry = entry_;
  if (!w.Write(kGraphMagic, 4) || !w.Write(&kGraphVersion, 4) ||
      !w.Write(&n, 8) || !w.Write(&entry, 4)) {
    return Status::IOError(path + ": header write failed");
  }
  for (const auto& nb : adj_) {
    const uint32_t deg = static_cast<uint32_t>(nb.size());
    if (!w.Write(&deg, 4) || !w.Write(nb.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": adjacency write failed");
    }
  }
  if (!w.WriteTrailer()) return Status::IOError(path + ": trailer write failed");
  return file.Commit();
}

Result<ProximityGraph> ProximityGraph::Load(const std::string& path) {
  io::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  io::CrcReader r(f.get());
  char magic[4];
  uint32_t version = 0;
  bool checked = true;
  if (!r.Read(magic, 4)) return Status::IOError(path + ": truncated header");
  if (std::memcmp(magic, kGraphMagic, 4) == 0) {
    if (!r.Read(&version, 4) || version != kGraphVersion) {
      return Status::IOError(path + ": unsupported graph version");
    }
  } else {
    // Legacy file: no magic, header starts at byte 0, no trailer to check.
    if (std::fseek(f.get(), 0, SEEK_SET) != 0) {
      return Status::IOError(path + ": seek failed");
    }
    r = io::CrcReader(f.get());
    checked = false;
  }
  uint64_t n = 0;
  uint32_t entry = 0;
  if (!r.Read(&n, 8) || !r.Read(&entry, 4)) {
    return Status::IOError(path + ": truncated header");
  }
  // Bound the vertex allocation by what the file can hold (each vertex costs
  // at least its 4-byte degree word) and validate the entry point before
  // trusting either — a corrupt header must not drive vector::resize or an
  // out-of-range entry into search.
  const long long bytes_left = io::BytesRemaining(f.get());
  if (bytes_left < 0 ||
      n > static_cast<uint64_t>(bytes_left) / sizeof(uint32_t)) {
    return Status::IOError(path + ": header sizes exceed file contents");
  }
  if (n > 0 && entry >= n) {
    return Status::IOError(path + ": entry point out of range");
  }
  ProximityGraph g(n);
  g.set_entry_point(entry);
  for (uint64_t v = 0; v < n; ++v) {
    uint32_t deg = 0;
    if (!r.Read(&deg, 4)) {
      return Status::IOError(path + ": truncated adjacency");
    }
    auto& nb = g.Neighbors(static_cast<uint32_t>(v));
    // A degree no file this size could store is corruption, not a graph.
    if (deg > bytes_left / sizeof(uint32_t)) {
      return Status::IOError(path + ": adjacency degree exceeds file size");
    }
    nb.resize(deg);
    if (!r.Read(nb.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated adjacency");
    }
    for (uint32_t u : nb) {
      if (u >= n) {
        return Status::IOError(path + ": neighbor id out of range");
      }
    }
  }
  if (checked && !r.VerifyTrailer()) {
    return Status::IOError(path +
                           ": checksum mismatch (corrupt or torn file)");
  }
  return g;
}

}  // namespace rpq::graph
