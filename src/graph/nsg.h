// NSG (Navigating Spreading-out Graph) [26]: refines an (approximate) kNN
// graph with MRNG edge selection from a navigating node (the medoid), then
// enforces connectivity with a spanning pass. Used by the paper's Figure 7
// in-memory experiments.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "graph/graph.h"

namespace rpq::graph {

/// NSG construction knobs.
struct NsgOptions {
  size_t knn_k = 48;        ///< degree of the initial kNN graph
  size_t search_pool = 96;  ///< candidate pool gathered per node (L)
  size_t degree = 32;       ///< R: max out-degree of the final graph
  uint64_t seed = 31;
};

/// Builds NSG over `base`; entry point = medoid (navigating node).
ProximityGraph BuildNsg(const Dataset& base, const NsgOptions& options);

}  // namespace rpq::graph
