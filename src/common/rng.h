// Deterministic pseudo-random number generation used across the library.
// A thin wrapper over std::mt19937_64 so every component takes an explicit,
// seedable generator (reproducible experiments).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace rpq {

/// Seedable RNG with convenience draws used by samplers and generators.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [0, n) — n must be > 0.
  size_t UniformIndex(size_t n);
  /// Uniform real in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f);
  /// Standard normal draw.
  float Gaussian(float mean = 0.0f, float stddev = 1.0f);
  /// Sample from the standard Gumbel distribution: -log(-log U).
  float Gumbel();
  /// k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<uint32_t> SampleWithoutReplacement(size_t n, size_t k);
  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), gen_);
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace rpq
