#include "common/fault.h"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace rpq::fault {
namespace {

// splitmix64: cheap, well-mixed, and stateless — the decision for roll i of
// point p under seed s is hash(s ^ (p+1) * golden ^ i), so determinism needs
// no per-roll lock, only the per-point index counter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool Decide(uint64_t seed, Point p, uint64_t index, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const uint64_t h =
      Mix64(seed ^ (static_cast<uint64_t>(p) + 1) * 0x9e3779b97f4a7c15ull ^
            Mix64(index));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

obs::CounterId PointCounter(Point p) {
  static const std::array<obs::CounterId, kNumPoints> ids = [] {
    std::array<obs::CounterId, kNumPoints> out{};
    for (size_t i = 0; i < kNumPoints; ++i) {
      out[i] = obs::GetCounter(std::string("fault.") +
                               PointName(static_cast<Point>(i)));
    }
    return out;
  }();
  return ids[static_cast<size_t>(p)];
}

// The global gate is kept separate from the injector so call sites pay one
// relaxed bool load when injection is off (the overwhelmingly common case).
std::atomic<bool> g_global_enabled{false};

Plan PlanFromEnv() {
  Plan plan;
  const char* env = std::getenv("RPQ_FAULTS");
  if (env == nullptr || env[0] == '\0') return plan;
  std::string error;
  if (!ParsePlan(env, &plan, &error)) {
    std::fprintf(stderr, "RPQ_FAULTS ignored: %s\n", error.c_str());
    return Plan{};
  }
  return plan;
}

}  // namespace

const char* PointName(Point p) {
  switch (p) {
    case Point::kDiskReadError: return "disk_read_error";
    case Point::kDiskLatencySpike: return "disk_latency_spike";
    case Point::kShardStall: return "shard_stall";
    case Point::kAllocFailure: return "alloc_failure";
    case Point::kNumPoints: break;
  }
  return "unknown";
}

bool ParsePlan(const std::string& spec, Plan* plan, std::string* error) {
  Plan out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "expected name=value, got \"" + item + "\"";
      return false;
    }
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* parse_end = nullptr;
    const double v = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      if (error != nullptr) *error = "bad value in \"" + item + "\"";
      return false;
    }
    if (name == "seed") {
      out.seed = static_cast<uint64_t>(v);
      continue;
    }
    bool matched = false;
    for (size_t i = 0; i < kNumPoints; ++i) {
      if (name == PointName(static_cast<Point>(i))) {
        if (v < 0.0 || v > 1.0) {
          if (error != nullptr) *error = "rate out of [0,1] in \"" + item + "\"";
          return false;
        }
        out.rates[i] = v;
        matched = true;
        break;
      }
    }
    if (!matched) {
      if (error != nullptr) *error = "unknown injection point \"" + name + "\"";
      return false;
    }
  }
  *plan = out;
  return true;
}

void Injector::Reset(const Plan& plan) {
  // Relaxed atomic stores: Reset may race rolls from tasks abandoned by a
  // timed-out query (they outlive the query that spawned them). A racing
  // roll may see a mix of old and new fields — benign; determinism is
  // guaranteed for any plan installed while the injector is quiescent.
  for (size_t i = 0; i < kNumPoints; ++i) {
    rates_[i].store(plan.rates[i], std::memory_order_relaxed);
  }
  seed_.store(plan.seed, std::memory_order_relaxed);
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
}

Plan Injector::plan() const {
  Plan out;
  for (size_t i = 0; i < kNumPoints; ++i) {
    out.rates[i] = rates_[i].load(std::memory_order_relaxed);
  }
  out.seed = seed_.load(std::memory_order_relaxed);
  return out;
}

bool Injector::FireQuiet(Point p) {
  const double rate = rates_[static_cast<size_t>(p)].load(
      std::memory_order_relaxed);
  if (rate <= 0.0) return false;
  const uint64_t index = counters_[static_cast<size_t>(p)].fetch_add(
      1, std::memory_order_relaxed);
  return Decide(seed_.load(std::memory_order_relaxed), p, index, rate);
}

bool Injector::Fire(Point p) {
  if (!FireQuiet(p)) return false;
  if (obs::MetricsEnabled()) obs::Add(PointCounter(p), 1);
  return true;
}

Injector& GlobalInjector() {
  static Injector* injector = [] {
    auto* inj = new Injector(PlanFromEnv());
    g_global_enabled.store(inj->plan().any(), std::memory_order_relaxed);
    return inj;
  }();
  return *injector;
}

void SetGlobalPlan(const Plan& plan) {
  GlobalInjector().Reset(plan);
  g_global_enabled.store(plan.any(), std::memory_order_relaxed);
}

bool GlobalFaultsEnabled() {
  // Force env parsing on first use so RPQ_FAULTS works without any explicit
  // initialization call.
  static const bool init = (GlobalInjector(), true);
  (void)init;
  return g_global_enabled.load(std::memory_order_relaxed);
}

void RegisterFaultMetrics() {
  for (size_t i = 0; i < kNumPoints; ++i) {
    PointCounter(static_cast<Point>(i));
  }
}

ScopedPlan::ScopedPlan(const Plan& plan)
    : previous_(GlobalInjector().plan()) {
  SetGlobalPlan(plan);
}

ScopedPlan::~ScopedPlan() { SetGlobalPlan(previous_); }

}  // namespace rpq::fault
