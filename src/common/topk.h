// Bounded top-k selection for nearest-neighbor results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace rpq {

/// A (distance, id) pair; ordered by distance then id for determinism.
struct Neighbor {
  float dist;
  uint32_t id;
  bool operator<(const Neighbor& o) const {
    return dist < o.dist || (dist == o.dist && id < o.id);
  }
  bool operator==(const Neighbor& o) const { return dist == o.dist && id == o.id; }
};

/// Keeps the k smallest-distance neighbors seen so far (max-heap semantics).
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Returns true if the candidate was kept.
  bool Push(float dist, uint32_t id) {
    if (heap_.size() < k_) {
      heap_.push_back({dist, id});
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    if (!(Neighbor{dist, id} < heap_.front())) return false;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = {dist, id};
    std::push_heap(heap_.begin(), heap_.end());
    return true;
  }

  /// Largest kept distance, or +inf when not yet full.
  float Threshold() const {
    if (heap_.size() < k_) return std::numeric_limits<float>::infinity();
    return heap_.front().dist;
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

  /// Extracts results sorted ascending by distance; the heap is consumed.
  std::vector<Neighbor> Take() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace rpq
