// Dense-vector distance kernels. Squared Euclidean distance is the library's
// canonical metric (Definition 2 of the paper adopts it to avoid sqrt).
#pragma once

#include <cstddef>

namespace rpq {

/// Squared L2 distance between two D-dim float vectors.
inline float SquaredL2(const float* a, const float* b, size_t d) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    float d2 = a[i + 2] - b[i + 2];
    float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < d; ++i) {
    float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

/// Inner product <a, b>.
inline float Dot(const float* a, const float* b, size_t d) {
  float acc = 0.f;
  for (size_t i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

/// Squared norm ||a||^2.
inline float SquaredNorm(const float* a, size_t d) { return Dot(a, a, d); }

}  // namespace rpq
