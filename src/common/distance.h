// Dense-vector distance kernels. Squared Euclidean distance is the library's
// canonical metric (Definition 2 of the paper adopts it to avoid sqrt).
//
// These are thin wrappers over the runtime-dispatched SIMD kernel subsystem
// (src/simd/): AVX-512/AVX2/NEON when the CPU has them, a scalar reference
// otherwise, and RPQ_DISABLE_SIMD=1 forces the scalar path.
#pragma once

#include <cstddef>

#include "simd/simd.h"

namespace rpq {

/// Squared L2 distance between two D-dim float vectors.
inline float SquaredL2(const float* a, const float* b, size_t d) {
  return simd::SquaredL2(a, b, d);
}

/// Inner product <a, b>.
inline float Dot(const float* a, const float* b, size_t d) {
  return simd::Dot(a, b, d);
}

/// Squared norm ||a||^2.
inline float SquaredNorm(const float* a, size_t d) {
  return simd::SquaredNorm(a, d);
}

}  // namespace rpq
