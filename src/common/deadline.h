// Per-query deadline budget, checked at pipeline stage boundaries (route /
// scan / beam hop / refine) so an overloaded or fault-ridden query returns a
// partial, `degraded`-flagged result instead of blocking its worker forever.
//
// A Deadline is a value type (one time_point + a flag) so it rides inside
// the existing per-backend option structs; default-constructed it is
// inactive and costs one bool load per check. Checks read steady_clock only
// when active — backends check once per coarse unit of work (a hop, a
// probed cell), never per code, so the hot kernels are untouched.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace rpq {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline `us` microseconds from now; 0 returns an inactive deadline.
  static Deadline AfterMicros(uint64_t us) {
    Deadline d;
    if (us > 0) {
      d.active_ = true;
      d.end_ = Clock::now() + std::chrono::microseconds(us);
    }
    return d;
  }

  bool active() const { return active_; }

  /// True when the budget is spent. `extra_seconds` is added to the elapsed
  /// side — the hybrid-disk path charges its simulated device time against
  /// the budget this way (simulated latency is real latency on the modeled
  /// hardware, so a deadline that ignored it would be dishonest).
  bool Expired(double extra_seconds = 0.0) const {
    if (!active_) return false;
    if (extra_seconds <= 0.0) return Clock::now() >= end_;
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(extra_seconds)) >=
           end_;
  }

  /// Seconds until expiry (<= 0 when already expired); +inf when inactive.
  double RemainingSeconds() const {
    if (!active_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

 private:
  Clock::time_point end_{};
  bool active_ = false;
};

}  // namespace rpq
