// Wall-clock timing helper for the benchmark harnesses, plus the calibrated
// tick clock the observability layer (src/obs/) stamps spans with.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace rpq {

/// Monotonic stopwatch; Elapsed* report time since construction or Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Tick clock: the cheapest monotonic counter the platform offers — rdtscp on
// x86-64 (a few cycles, serializes just enough for span timing), otherwise
// steady_clock. Ticks are opaque; TicksToNanos converts using a one-time
// calibration against steady_clock, so span math is a subtraction plus one
// multiply on the hot path. Modern x86 TSCs are invariant (constant-rate,
// monotonic across cores), which is exactly the property span timing needs.

namespace detail {

inline uint64_t RawTicks() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned int aux;
  return __rdtscp(&aux);
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Nanoseconds per tick, measured once over a short spin. On non-x86 the
/// ticks already ARE nanoseconds, so the ratio is exactly 1.
inline double NanosPerTick() {
#if defined(__x86_64__) || defined(_M_X64)
  static const double ratio = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = RawTicks();
    // ~200us of wall time: long enough that steady_clock granularity is
    // negligible, short enough to not matter at process startup.
    for (;;) {
      const auto t1 = std::chrono::steady_clock::now();
      if (t1 - t0 >= std::chrono::microseconds(200)) {
        const uint64_t c1 = RawTicks();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
        return c1 > c0 ? ns / static_cast<double>(c1 - c0) : 1.0;
      }
    }
  }();
  return ratio;
#else
  return 1.0;
#endif
}

}  // namespace detail

/// Current tick count. Cheap enough for per-stage spans (two reads per span).
inline uint64_t TickNow() { return detail::RawTicks(); }

/// Converts a tick DELTA to nanoseconds (absolute tick values are opaque).
inline uint64_t TicksToNanos(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) *
                               detail::NanosPerTick());
}

/// Forces the one-time tick calibration now (first conversion spins ~200us;
/// services call this at startup so no query pays it).
inline void CalibrateTickClock() { detail::NanosPerTick(); }

}  // namespace rpq
