// Deterministic, seeded fault-injection harness.
//
// Named injection points sit on the failure seams of the serving stack —
// disk read errors, I/O latency spikes, shard stalls, allocation pressure —
// and fire according to a per-point rate. Decisions are a pure function of
// (seed, point, per-point call index): the i-th roll of a point always fires
// or not identically for a given plan, regardless of wall time or thread
// interleaving, so tests pin retry/hedge/partial-merge behavior exactly and
// a failed CI run reproduces locally from the same plan string.
//
// Two layers:
//  * `Injector` — an instance owned by a component (the SSD simulator seeds
//    one from its own knobs) for fully local determinism.
//  * the process-wide injector — configured from the RPQ_FAULTS environment
//    variable ("disk_read_error=0.01,shard_stall=0.05,seed=7") or
//    SetGlobalPlan(); components without their own knobs (shard fan-out,
//    engine admission) roll against it. Off (all rates zero) it costs one
//    relaxed atomic bool load per check.
//
// Every fired injection bumps an obs counter ("fault.<point>") so a load
// test can report how many faults it actually injected, not just asked for.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace rpq::fault {

/// The named injection points. Keep PointName() in sync.
enum class Point : uint8_t {
  kDiskReadError = 0,  ///< transient block-read failure (disk/ssd_simulator)
  kDiskLatencySpike,   ///< tail-latency spike on one read (disk/ssd_simulator)
  kShardStall,         ///< one shard of a fan-out stalls (serve/sharded)
  kAllocFailure,       ///< allocation pressure: engine refuses the query
  kNumPoints
};

inline constexpr size_t kNumPoints = static_cast<size_t>(Point::kNumPoints);

/// Stable lowercase point name ("disk_read_error", ...).
const char* PointName(Point p);

/// Per-point fire rates in [0, 1] plus the decision seed.
struct Plan {
  std::array<double, kNumPoints> rates{};  // all zero = no injection
  uint64_t seed = 1;

  bool any() const {
    for (double r : rates) {
      if (r > 0) return true;
    }
    return false;
  }
  double rate(Point p) const { return rates[static_cast<size_t>(p)]; }
  void set_rate(Point p, double r) { rates[static_cast<size_t>(p)] = r; }
};

/// Parses "point=rate[,point=rate...][,seed=N]" (the RPQ_FAULTS syntax).
/// Returns false and fills `error` on unknown points or malformed rates.
bool ParsePlan(const std::string& spec, Plan* plan, std::string* error);

/// Deterministic decision engine over one Plan. Thread-safe: the per-point
/// call index is a relaxed atomic counter, and the fire decision hashes
/// (seed, point, index) — so the SET of fired indices is plan-deterministic
/// even when rolls race (which arrival gets which index is scheduling).
/// The plan itself is stored as relaxed atomics so Reset may race in-flight
/// rolls safely (a roll concurrent with a swap may mix old and new fields;
/// determinism is guaranteed for any quiescently installed plan).
class Injector {
 public:
  Injector() = default;
  explicit Injector(const Plan& plan) { Reset(plan); }

  /// Installs a new plan and rewinds every per-point call index.
  void Reset(const Plan& plan);

  /// Rolls injection point `p`: true when this call should fail. Records
  /// the "fault.<point>" counter on fire. Zero-rate points never fire and
  /// never touch the counter (the common case costs one double compare).
  bool Fire(Point p);

  /// Rolls without consuming obs metrics (for unit tests of determinism).
  bool FireQuiet(Point p);

  /// Snapshot of the installed plan.
  Plan plan() const;
  /// Rolls issued so far for `p` (instrumentation for tests).
  uint64_t calls(Point p) const {
    return counters_[static_cast<size_t>(p)].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<double>, kNumPoints> rates_{};
  std::atomic<uint64_t> seed_{1};
  std::array<std::atomic<uint64_t>, kNumPoints> counters_{};
};

/// The process-wide injector, seeded once from RPQ_FAULTS (absent/empty =
/// no injection). SetGlobalPlan replaces the plan and rewinds the indices.
Injector& GlobalInjector();
void SetGlobalPlan(const Plan& plan);

/// True when the global plan has any nonzero rate — the one-load fast gate
/// call sites check before rolling.
bool GlobalFaultsEnabled();

/// Pre-registers every "fault.<point>" counter so metric snapshots carry
/// the stable key set even before any fault fires.
void RegisterFaultMetrics();

/// RAII plan override for tests: installs `plan` on construction, restores
/// the previous global plan (and rewinds indices) on destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(const Plan& plan);
  ~ScopedPlan();
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

 private:
  Plan previous_;
};

}  // namespace rpq::fault
