#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpq {

size_t Rng::UniformIndex(size_t n) {
  RPQ_CHECK_GT(n, 0u);
  return std::uniform_int_distribution<size_t>(0, n - 1)(gen_);
}

float Rng::Uniform(float lo, float hi) {
  return std::uniform_real_distribution<float>(lo, hi)(gen_);
}

float Rng::Gaussian(float mean, float stddev) {
  return std::normal_distribution<float>(mean, stddev)(gen_);
}

float Rng::Gumbel() {
  // Clamp away from 0 and 1 to keep both logs finite.
  float u = std::uniform_real_distribution<float>(1e-9f, 1.0f - 1e-9f)(gen_);
  return -std::log(-std::log(u));
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  RPQ_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected draws, no O(n) permutation buffer.
  std::vector<uint32_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = std::uniform_int_distribution<size_t>(0, j)(gen_);
    if (std::find(out.begin(), out.end(), static_cast<uint32_t>(t)) == out.end()) {
      out.push_back(static_cast<uint32_t>(t));
    } else {
      out.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

}  // namespace rpq
