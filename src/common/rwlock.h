// Writer-priority shared mutex.
//
// std::shared_mutex on glibc defaults to reader preference: a continuous
// stream of readers can starve a writer indefinitely — observed in practice
// as FreshVamana Insert never acquiring its exclusive lock while serving
// threads spin on Search (worst on few cores, where the writer never even
// gets scheduled while holding nothing). This lock blocks NEW readers as
// soon as a writer is waiting, so writes always complete; in-flight readers
// drain first, and readers resume the moment the writer leaves. Suits the
// serving workload: read-heavy, with occasional short structural writes
// that must not be starved.
//
// Satisfies SharedLockable / Lockable, so std::shared_lock and
// std::unique_lock work unchanged.
#pragma once

#include <condition_variable>
#include <mutex>

namespace rpq {

class WriterPriorityMutex {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_read_.wait(lk, [this] {
      return writers_waiting_ == 0 && !writer_active_;
    });
    ++readers_;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--readers_ == 0 && writers_waiting_ > 0) cv_write_.notify_one();
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writers_waiting_ > 0 || writer_active_) return false;
    ++readers_;
    return true;
  }

  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++writers_waiting_;
    cv_write_.wait(lk, [this] { return readers_ == 0 && !writer_active_; });
    --writers_waiting_;
    writer_active_ = true;
  }

  void unlock() {
    std::unique_lock<std::mutex> lk(mu_);
    writer_active_ = false;
    if (writers_waiting_ > 0) {
      cv_write_.notify_one();
    } else {
      cv_read_.notify_all();
    }
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lk(mu_);
    if (readers_ > 0 || writer_active_) return false;
    writer_active_ = true;
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_read_;
  std::condition_variable cv_write_;
  size_t readers_ = 0;
  size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace rpq
