// Minimal fixed-size thread pool with a parallel-for helper.
// On single-core hosts ParallelFor degrades gracefully to a serial loop.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rpq {

/// Fixed pool of worker threads executing submitted closures FIFO.
class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Block until every submitted task has finished.
  void Wait();

  /// True when the calling thread is one of THIS pool's workers. Fan-out
  /// helpers use it to run inline instead of submit-and-wait, which would
  /// deadlock once every worker is a waiter (see ShardedService).
  bool CurrentThreadIsWorker() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits [0, n) into contiguous chunks and runs fn(begin, end) on the pool.
/// When pool is null or has a single thread the loop runs inline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

/// Process-wide pool, created lazily on first use, for library-internal
/// parallelism (e.g. dataset encoding) when the caller has no pool of its own.
ThreadPool* SharedPool();

}  // namespace rpq
