#include "common/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace rpq {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

namespace {
// The pool whose worker the current thread is (null on non-worker threads).
// ParallelFor invoked from inside ANY pool task runs inline instead of
// deadlocking in Wait (every worker could otherwise block waiting for tasks
// no thread is free to run); pool-aware callers (ShardedService) compare
// against a specific pool so cross-pool fan-out stays parallel.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

bool ThreadPool::CurrentThreadIsWorker() const {
  return t_worker_pool == this;
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 ||
      t_worker_pool != nullptr) {
    fn(0, n);
    return;
  }
  size_t shards = std::min(n, pool->num_threads() * 4);
  size_t chunk = (n + shards - 1) / shards;

  // Batch-local completion tracking: waiting on ThreadPool::Wait would block
  // on the pool-global in-flight counter, coupling concurrent ParallelFor
  // callers (a hazard now that SharedPool() is a common default).
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = (n + chunk - 1) / chunk;

  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(n, begin + chunk);
    pool->Submit([&, begin, end] {
      fn(begin, end);
      std::unique_lock<std::mutex> lk(mu);
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return remaining == 0; });
}

ThreadPool* SharedPool() {
  static ThreadPool pool;
  return &pool;
}

}  // namespace rpq
