#include "common/thread_pool.h"

#include <algorithm>

namespace rpq {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    fn(0, n);
    return;
  }
  size_t shards = std::min(n, pool->num_threads() * 4);
  size_t chunk = (n + shards - 1) / shards;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(n, begin + chunk);
    pool->Submit([&fn, begin, end] { fn(begin, end); });
  }
  pool->Wait();
}

}  // namespace rpq
