// Shared stdio RAII + whole-buffer transfer helpers for the binary
// (de)serializers (quantizer models, code arrays, graphs, IVF indexes,
// *vecs datasets). One definition so edge-case policy — zero-byte transfers
// are legal no-ops (empty containers have null data()) — cannot diverge
// between loaders.
//
// Crash-safe persistence primitives live here too:
//  * Crc32 / CrcWriter / CrcReader — every index/model format appends a
//    CRC32 (zlib polynomial) of all preceding bytes, accumulated inline as
//    the payload streams through, so a bit-flipped or torn file surfaces as
//    a clean Status error instead of a silently wrong index.
//  * AtomicFile — write-temp-then-rename: a crash mid-save leaves the
//    previous file intact; the temp is removed on abandonment.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"

namespace rpq::io {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline bool WriteAll(std::FILE* f, const void* data, size_t bytes) {
  return bytes == 0 || std::fwrite(data, 1, bytes, f) == bytes;
}

inline bool ReadAll(std::FILE* f, void* data, size_t bytes) {
  return bytes == 0 || std::fread(data, 1, bytes, f) == bytes;
}

/// Bytes from the current position to EOF (restores the position); -1 on a
/// seek/tell failure. Loaders use this to bound header-declared allocation
/// sizes before trusting them.
inline long long BytesRemaining(std::FILE* f) {
  long cur = std::ftell(f);
  if (cur < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  long end = std::ftell(f);
  if (end < 0 || std::fseek(f, cur, SEEK_SET) != 0) return -1;
  return static_cast<long long>(end) - cur;
}

// ------------------------------------------------------------------ CRC32 ---

namespace detail {
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Incremental CRC32 (zlib polynomial; Crc32Update(0, data, n) matches
/// zlib's crc32() for a whole buffer).
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t bytes) {
  const auto& table = detail::Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc ^= 0xffffffffu;
  for (size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

/// WriteAll that folds every written byte into a running CRC. Call
/// WriteTrailer() last: it appends the 4-byte little-endian CRC of
/// everything written through this wrapper.
class CrcWriter {
 public:
  explicit CrcWriter(std::FILE* f) : f_(f) {}

  bool Write(const void* data, size_t bytes) {
    if (!WriteAll(f_, data, bytes)) return false;
    crc_ = Crc32Update(crc_, data, bytes);
    return true;
  }
  bool WriteTrailer() { return WriteAll(f_, &crc_, sizeof(crc_)); }
  uint32_t crc() const { return crc_; }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

/// ReadAll that folds every read byte into a running CRC. After the payload,
/// VerifyTrailer() reads the stored CRC and compares.
class CrcReader {
 public:
  explicit CrcReader(std::FILE* f) : f_(f) {}

  bool Read(void* data, size_t bytes) {
    if (!ReadAll(f_, data, bytes)) return false;
    crc_ = Crc32Update(crc_, data, bytes);
    return true;
  }
  /// True when a well-formed trailer follows and matches the accumulated
  /// CRC. Reads (and consumes) exactly 4 bytes.
  bool VerifyTrailer() {
    uint32_t stored = 0;
    return ReadAll(f_, &stored, sizeof(stored)) && stored == crc_;
  }
  uint32_t crc() const { return crc_; }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

// ------------------------------------------------- atomic file replacement ---

/// Crash-safe file writer: all writes land in `<path>.tmp`; Commit()
/// flushes, closes, and renames over `path` in one step (POSIX rename is
/// atomic within a filesystem). Destruction without Commit removes the temp
/// — a crash or error mid-save never corrupts the previous file.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path)
      : path_(std::move(path)), tmp_(path_ + ".tmp") {
    file_.reset(std::fopen(tmp_.c_str(), "wb"));
  }

  ~AtomicFile() {
    if (file_ != nullptr) {
      file_.reset();
      std::remove(tmp_.c_str());
    }
  }

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Null when the temp file could not be opened.
  std::FILE* get() const { return file_.get(); }
  explicit operator bool() const { return file_ != nullptr; }

  Status Commit() {
    if (file_ == nullptr) {
      return Status::IOError("cannot open " + tmp_ + " for writing");
    }
    if (std::fflush(file_.get()) != 0) {
      return Status::IOError(tmp_ + ": flush failed");
    }
    file_.reset();  // fclose
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_.c_str());
      return Status::IOError("cannot rename " + tmp_ + " to " + path_);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  std::string tmp_;
  FilePtr file_;
};

}  // namespace rpq::io
