// Shared stdio RAII + whole-buffer transfer helpers for the binary
// (de)serializers (quantizer models, code arrays, graphs, IVF indexes,
// *vecs datasets). One definition so edge-case policy — zero-byte transfers
// are legal no-ops (empty containers have null data()) — cannot diverge
// between loaders.
#pragma once

#include <cstdio>
#include <memory>

namespace rpq::io {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline bool WriteAll(std::FILE* f, const void* data, size_t bytes) {
  return bytes == 0 || std::fwrite(data, 1, bytes, f) == bytes;
}

inline bool ReadAll(std::FILE* f, void* data, size_t bytes) {
  return bytes == 0 || std::fread(data, 1, bytes, f) == bytes;
}

/// Bytes from the current position to EOF (restores the position); -1 on a
/// seek/tell failure. Loaders use this to bound header-declared allocation
/// sizes before trusting them.
inline long long BytesRemaining(std::FILE* f) {
  long cur = std::ftell(f);
  if (cur < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  long end = std::ftell(f);
  if (end < 0 || std::fseek(f, cur, SEEK_SET) != 0) return -1;
  return static_cast<long long>(end) - cur;
}

}  // namespace rpq::io
