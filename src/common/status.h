// Lightweight Status / Result error-handling primitives (Arrow/RocksDB idiom).
// Fallible public APIs return Status or Result<T> instead of throwing.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rpq {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kInternal,
};

/// Result of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {     // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }
  T& operator*() & { return value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace rpq

/// Propagate a non-OK Status from an expression.
#define RPQ_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::rpq::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)
