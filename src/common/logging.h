// Check macros for internal invariants (abort on violation, like Arrow's DCHECK).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rpq::internal {
[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "RPQ_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace rpq::internal

/// Hard invariant: aborts the process with location info when violated.
#define RPQ_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::rpq::internal::CheckFail(#cond, __FILE__, __LINE__); \
  } while (0)

#define RPQ_CHECK_LT(a, b) RPQ_CHECK((a) < (b))
#define RPQ_CHECK_LE(a, b) RPQ_CHECK((a) <= (b))
#define RPQ_CHECK_GT(a, b) RPQ_CHECK((a) > (b))
#define RPQ_CHECK_GE(a, b) RPQ_CHECK((a) >= (b))
#define RPQ_CHECK_EQ(a, b) RPQ_CHECK((a) == (b))
#define RPQ_CHECK_NE(a, b) RPQ_CHECK((a) != (b))
