// Exact k-nearest-neighbor ground truth by (parallel) brute force.
// Used for recall evaluation and for the generators' LID statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/topk.h"
#include "data/dataset.h"

namespace rpq {

/// Exact top-k (squared L2) of every query against the base set.
/// Result shape: [num_queries][k], each row ascending by distance.
std::vector<std::vector<Neighbor>> ComputeGroundTruth(const Dataset& base,
                                                      const Dataset& queries,
                                                      size_t k,
                                                      ThreadPool* pool = nullptr);

/// Exact top-k neighbors of each base vector against the base set itself,
/// excluding self-matches (used by graph builders and samplers).
std::vector<std::vector<Neighbor>> ComputeSelfKnn(const Dataset& base, size_t k,
                                                  ThreadPool* pool = nullptr);

}  // namespace rpq
