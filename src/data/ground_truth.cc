#include "data/ground_truth.h"

#include "common/distance.h"

namespace rpq {

std::vector<std::vector<Neighbor>> ComputeGroundTruth(const Dataset& base,
                                                      const Dataset& queries,
                                                      size_t k,
                                                      ThreadPool* pool) {
  std::vector<std::vector<Neighbor>> out(queries.size());
  ParallelFor(pool, queries.size(), [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      TopK top(k);
      const float* qv = queries[q];
      for (size_t i = 0; i < base.size(); ++i) {
        top.Push(SquaredL2(qv, base[i], base.dim()), static_cast<uint32_t>(i));
      }
      out[q] = top.Take();
    }
  });
  return out;
}

std::vector<std::vector<Neighbor>> ComputeSelfKnn(const Dataset& base, size_t k,
                                                  ThreadPool* pool) {
  std::vector<std::vector<Neighbor>> out(base.size());
  ParallelFor(pool, base.size(), [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      TopK top(k);
      const float* qv = base[q];
      for (size_t i = 0; i < base.size(); ++i) {
        if (i == q) continue;
        top.Push(SquaredL2(qv, base[i], base.dim()), static_cast<uint32_t>(i));
      }
      out[q] = top.Take();
    }
  });
  return out;
}

}  // namespace rpq
