// Row-major float vector dataset — the library's fundamental data container.
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace rpq {

/// N x D row-major collection of float vectors.
class Dataset {
 public:
  Dataset() : n_(0), dim_(0) {}
  Dataset(size_t n, size_t dim) : n_(n), dim_(dim), data_(n * dim, 0.0f) {}
  Dataset(size_t n, size_t dim, std::vector<float> data)
      : n_(n), dim_(dim), data_(std::move(data)) {
    RPQ_CHECK_EQ(data_.size(), n_ * dim_);
  }

  size_t size() const { return n_; }
  size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  float* operator[](size_t i) { return data_.data() + i * dim_; }
  const float* operator[](size_t i) const { return data_.data() + i * dim_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Copy of rows [begin, end).
  Dataset Slice(size_t begin, size_t end) const;
  /// Copy of the given rows, in order.
  Dataset Gather(const std::vector<uint32_t>& ids) const;
  /// Appends one vector (must match dim; first append fixes dim).
  void Append(const float* vec, size_t dim);

 private:
  size_t n_, dim_;
  std::vector<float> data_;
};

}  // namespace rpq
