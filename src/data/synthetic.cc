#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace rpq::synthetic {
namespace {

// Per-cluster generative model: center + intrinsic_dim random directions.
struct Cluster {
  std::vector<float> center;              // D
  std::vector<std::vector<float>> basis;  // intrinsic_dim x D, unnormalized
};

std::vector<Cluster> MakeClusters(const GmmOptions& opt, Rng* rng) {
  std::vector<Cluster> cs(opt.num_clusters);
  for (auto& c : cs) {
    c.center.resize(opt.dim);
    for (auto& v : c.center) v = rng->Gaussian(0.0f, opt.cluster_spread);
    c.basis.resize(opt.intrinsic_dim);
    for (auto& dir : c.basis) {
      dir.resize(opt.dim);
      for (auto& v : dir) v = rng->Gaussian();
      // Normalize so coefficients control the scale directly.
      float norm = 0;
      for (float v : dir) norm += v * v;
      norm = std::sqrt(std::max(norm, 1e-12f));
      for (auto& v : dir) v /= norm;
    }
  }
  return cs;
}

}  // namespace

Dataset MakeGmm(size_t n, const GmmOptions& opt, uint64_t seed) {
  RPQ_CHECK_GT(opt.dim, 0u);
  RPQ_CHECK_GT(opt.num_clusters, 0u);
  RPQ_CHECK_LE(opt.intrinsic_dim, opt.dim);
  Rng rng(seed);
  std::vector<Cluster> clusters = MakeClusters(opt, &rng);

  // Anisotropy: dimension j is scaled by exp(-anisotropy * j / D) so energy
  // concentrates in leading dimensions (what OPQ's rotation rebalances).
  std::vector<float> dim_scale(opt.dim, 1.0f);
  if (opt.anisotropy > 0) {
    for (size_t j = 0; j < opt.dim; ++j) {
      dim_scale[j] = std::exp(-opt.anisotropy * static_cast<float>(j) /
                              static_cast<float>(opt.dim));
    }
  }

  Dataset out(n, opt.dim);
  std::vector<float> coeff(opt.intrinsic_dim);
  for (size_t i = 0; i < n; ++i) {
    const Cluster& c = clusters[rng.UniformIndex(clusters.size())];
    float* row = out[i];
    for (size_t j = 0; j < opt.dim; ++j) row[j] = c.center[j];
    for (size_t t = 0; t < opt.intrinsic_dim; ++t) coeff[t] = rng.Gaussian();
    for (size_t t = 0; t < opt.intrinsic_dim; ++t) {
      const float* dir = c.basis[t].data();
      float w = coeff[t];
      for (size_t j = 0; j < opt.dim; ++j) row[j] += w * dir[j];
    }
    for (size_t j = 0; j < opt.dim; ++j) {
      row[j] = row[j] * dim_scale[j] + rng.Gaussian(0.0f, opt.noise);
    }
    if (opt.normalize) {
      float norm = 0;
      for (size_t j = 0; j < opt.dim; ++j) norm += row[j] * row[j];
      norm = std::sqrt(std::max(norm, 1e-12f));
      for (size_t j = 0; j < opt.dim; ++j) row[j] /= norm;
    }
    if (opt.quantize_u8) {
      for (size_t j = 0; j < opt.dim; ++j) {
        // Map roughly-unit Gaussian coordinates into the SIFT byte range.
        float v = std::round(row[j] * 16.0f + 32.0f);
        row[j] = std::clamp(v, 0.0f, 255.0f);
      }
    }
  }
  return out;
}

Dataset MakeSiftLike(size_t n, uint64_t seed) {
  GmmOptions o;
  o.dim = 128;
  o.num_clusters = 80;
  o.intrinsic_dim = 16;
  o.anisotropy = 2.0f;
  o.quantize_u8 = true;
  return MakeGmm(n, o, seed);
}

Dataset MakeBigAnnLike(size_t n, uint64_t seed) {
  GmmOptions o;
  o.dim = 128;
  o.num_clusters = 120;
  o.intrinsic_dim = 16;
  o.anisotropy = 1.5f;
  o.quantize_u8 = true;
  return MakeGmm(n, o, seed);
}

Dataset MakeDeepLike(size_t n, uint64_t seed) {
  GmmOptions o;
  o.dim = 96;
  o.num_clusters = 100;
  o.intrinsic_dim = 18;
  o.anisotropy = 1.0f;
  o.normalize = true;
  o.noise = 0.02f;
  return MakeGmm(n, o, seed);
}

Dataset MakeGistLike(size_t n, uint64_t seed) {
  GmmOptions o;
  o.dim = 960;
  o.num_clusters = 60;
  o.intrinsic_dim = 35;
  o.anisotropy = 3.0f;
  o.noise = 0.02f;
  return MakeGmm(n, o, seed);
}

Dataset MakeUkbenchLike(size_t n, uint64_t seed) {
  GmmOptions o;
  o.dim = 128;
  o.num_clusters = 200;
  o.intrinsic_dim = 8;
  o.anisotropy = 1.0f;
  o.noise = 0.02f;
  return MakeGmm(n, o, seed);
}

Dataset MakeByName(const std::string& name, size_t n, uint64_t seed) {
  if (name == "sift") return MakeSiftLike(n, seed);
  if (name == "bigann") return MakeBigAnnLike(n, seed);
  if (name == "deep") return MakeDeepLike(n, seed);
  if (name == "gist") return MakeGistLike(n, seed);
  if (name == "ukbench") return MakeUkbenchLike(n, seed);
  RPQ_CHECK(false && "unknown synthetic dataset name");
  return Dataset();
}

void MakeBaseAndQueries(const std::string& name, size_t n_base, size_t n_query,
                        uint64_t seed, Dataset* base, Dataset* queries) {
  Dataset all = MakeByName(name, n_base + n_query, seed);
  *base = all.Slice(0, n_base);
  *queries = all.Slice(n_base, n_base + n_query);
}

}  // namespace rpq::synthetic
