#include "data/lid.h"

#include <cmath>

#include "common/distance.h"
#include "common/rng.h"
#include "common/topk.h"

namespace rpq {

double EstimateLid(const Dataset& data, size_t k, size_t samples, uint64_t seed) {
  if (data.size() <= k + 1 || k < 2) return 0.0;
  Rng rng(seed);
  samples = std::min(samples, data.size());
  std::vector<uint32_t> ids = rng.SampleWithoutReplacement(data.size(), samples);

  double sum = 0.0;
  size_t used = 0;
  for (uint32_t id : ids) {
    TopK top(k);
    const float* x = data[id];
    for (size_t i = 0; i < data.size(); ++i) {
      if (i == id) continue;
      top.Push(SquaredL2(x, data[i], data.dim()), static_cast<uint32_t>(i));
    }
    std::vector<Neighbor> nn = top.Take();
    double rk = std::sqrt(static_cast<double>(nn.back().dist));
    if (rk <= 0) continue;
    // MLE: lid = -[ (1/(k-1)) * sum_{i<k} log(r_i / r_k) ]^{-1}
    double acc = 0.0;
    size_t valid = 0;
    for (size_t i = 0; i + 1 < nn.size(); ++i) {
      double ri = std::sqrt(static_cast<double>(nn[i].dist));
      if (ri <= 0) continue;
      acc += std::log(ri / rk);
      ++valid;
    }
    if (valid == 0 || acc >= 0) continue;
    sum += -static_cast<double>(valid) / acc;
    ++used;
  }
  return used > 0 ? sum / static_cast<double>(used) : 0.0;
}

}  // namespace rpq
