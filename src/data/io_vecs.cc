#include "data/io_vecs.h"

#include "common/file_io.h"

#include <cstdio>
#include <memory>

namespace rpq::io {

Result<Dataset> ReadFvecs(const std::string& path, size_t max_records) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  Dataset out;
  std::vector<float> buf;
  size_t count = 0;
  for (;;) {
    int32_t dim = 0;
    size_t got = std::fread(&dim, sizeof(dim), 1, f.get());
    if (got == 0) break;
    if (dim <= 0 || dim > (1 << 20)) {
      return Status::IOError(path + ": bad record dimension " + std::to_string(dim));
    }
    buf.resize(static_cast<size_t>(dim));
    if (std::fread(buf.data(), sizeof(float), buf.size(), f.get()) != buf.size()) {
      return Status::IOError(path + ": truncated record");
    }
    out.Append(buf.data(), buf.size());
    if (max_records != 0 && ++count >= max_records) break;
  }
  return out;
}

Status WriteFvecs(const std::string& path, const Dataset& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  int32_t dim = static_cast<int32_t>(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(data[i], sizeof(float), data.dim(), f.get()) != data.dim()) {
      return Status::IOError(path + ": short write");
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path,
                                                    size_t max_records) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  std::vector<std::vector<int32_t>> out;
  for (;;) {
    int32_t dim = 0;
    size_t got = std::fread(&dim, sizeof(dim), 1, f.get());
    if (got == 0) break;
    if (dim <= 0 || dim > (1 << 20)) {
      return Status::IOError(path + ": bad record dimension " + std::to_string(dim));
    }
    std::vector<int32_t> row(static_cast<size_t>(dim));
    if (std::fread(row.data(), sizeof(int32_t), row.size(), f.get()) != row.size()) {
      return Status::IOError(path + ": truncated record");
    }
    out.push_back(std::move(row));
    if (max_records != 0 && out.size() >= max_records) break;
  }
  return out;
}

Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    int32_t dim = static_cast<int32_t>(row.size());
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) != row.size()) {
      return Status::IOError(path + ": short write");
    }
  }
  return Status::OK();
}

}  // namespace rpq::io
