// Local Intrinsic Dimensionality estimation (maximum-likelihood estimator of
// Levina & Bickel / Amsaleg et al. [23]), used to validate that the synthetic
// generators match the LID column of the paper's Table 3.
#pragma once

#include <cstddef>

#include "data/dataset.h"

namespace rpq {

/// Mean MLE-LID over `samples` random points, each using its k nearest
/// neighbors within `data`. Returns 0 for degenerate inputs.
double EstimateLid(const Dataset& data, size_t k = 20, size_t samples = 200,
                   uint64_t seed = 7);

}  // namespace rpq
