#include "data/dataset.h"

#include <cstring>

namespace rpq {

Dataset Dataset::Slice(size_t begin, size_t end) const {
  RPQ_CHECK(begin <= end && end <= n_);
  Dataset out(end - begin, dim_);
  std::memcpy(out.data(), data_.data() + begin * dim_,
              (end - begin) * dim_ * sizeof(float));
  return out;
}

Dataset Dataset::Gather(const std::vector<uint32_t>& ids) const {
  Dataset out(ids.size(), dim_);
  for (size_t i = 0; i < ids.size(); ++i) {
    RPQ_CHECK_LT(ids[i], n_);
    std::memcpy(out[i], (*this)[ids[i]], dim_ * sizeof(float));
  }
  return out;
}

void Dataset::Append(const float* vec, size_t dim) {
  if (n_ == 0 && dim_ == 0) dim_ = dim;
  RPQ_CHECK_EQ(dim, dim_);
  data_.insert(data_.end(), vec, vec + dim);
  ++n_;
}

}  // namespace rpq
