// Readers/writers for the TEXMEX .fvecs / .ivecs formats used by the public
// SIFT/GIST/Deep benchmark datasets, so real data can replace the synthetic
// generators without code changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rpq::io {

/// Reads an .fvecs file: each record is int32 dim followed by dim floats.
/// max_records == 0 reads everything.
Result<Dataset> ReadFvecs(const std::string& path, size_t max_records = 0);

/// Writes a dataset as .fvecs.
Status WriteFvecs(const std::string& path, const Dataset& data);

/// Reads an .ivecs file (int32 dim + dim int32s per record).
Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path,
                                                    size_t max_records = 0);

/// Writes int vectors as .ivecs.
Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows);

}  // namespace rpq::io
