// Synthetic dataset generators standing in for the paper's public corpora.
//
// The paper evaluates on SIFT/BigANN (128d), Deep (96d, unit-norm),
// GIST (960d), and Ukbench (128d, low LID) — none of which ship with this
// offline build. The generators below produce Gaussian-mixture data with the
// same dimensionality plus explicit control over the three properties that
// drive relative PQ behaviour:
//   * cluster structure   (mixture components)
//   * intrinsic dimension (per-cluster low-dim subspace + ambient noise),
//     matched to the LID column of Table 3
//   * per-dimension anisotropy (geometric variance decay), which creates the
//     "imbalanced valuable dimensions" that OPQ/RPQ rotations exploit
// See DESIGN.md §3 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace rpq::synthetic {

/// Knobs of the Gaussian-mixture generator.
struct GmmOptions {
  size_t dim = 128;            ///< ambient dimensionality D
  size_t num_clusters = 64;    ///< mixture components
  size_t intrinsic_dim = 16;   ///< per-cluster subspace dimension (drives LID)
  float cluster_spread = 4.0f; ///< stddev of cluster centers
  float noise = 0.05f;         ///< ambient (full-D) noise stddev
  float anisotropy = 0.0f;     ///< variance decay rate across dimensions
                               ///< (0 = isotropic; >0 concentrates energy in
                               ///< leading dims like SIFT/GIST)
  bool normalize = false;      ///< project onto the unit sphere (Deep-like)
  bool quantize_u8 = false;    ///< clamp+round to [0,255] ints (SIFT-like)
};

/// n vectors from the mixture; deterministic in (options, seed).
Dataset MakeGmm(size_t n, const GmmOptions& options, uint64_t seed);

/// Profiles matching Table 3 of the paper.
Dataset MakeSiftLike(size_t n, uint64_t seed = 1);     ///< 128d, LID ~ 16
Dataset MakeBigAnnLike(size_t n, uint64_t seed = 2);   ///< 128d, LID ~ 16
Dataset MakeDeepLike(size_t n, uint64_t seed = 3);     ///< 96d, unit-norm
Dataset MakeGistLike(size_t n, uint64_t seed = 4);     ///< 960d, LID ~ 35
Dataset MakeUkbenchLike(size_t n, uint64_t seed = 5);  ///< 128d, LID ~ 8

/// Named lookup used by the benchmark harnesses ("sift", "bigann", "deep",
/// "gist", "ukbench"). Aborts on unknown name.
Dataset MakeByName(const std::string& name, size_t n, uint64_t seed);

/// Draws base and query sets from ONE sampling stream (identical mixture,
/// disjoint draws) and splits them — the query distribution matches the base
/// distribution exactly, as with the paper's held-out query files.
void MakeBaseAndQueries(const std::string& name, size_t n_base, size_t n_query,
                        uint64_t seed, Dataset* base, Dataset* queries);

}  // namespace rpq::synthetic
