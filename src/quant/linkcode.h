// Simplified Link&Code baseline [21]: PQ codes plus a learned first-order
// refinement from graph neighbors. The decoded vector of v is improved as
//   x_hat(v) = dec(v) + sum_r beta_r * (dec(n_r) - dec(v))
// over v's first `num_links` graph neighbors, with the rank-dependent scalar
// weights beta fit globally by least squares — capturing L&C's core idea
// (graph-assisted regression codebooks) at matched code budget.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "quant/pq.h"

namespace rpq::quant {

/// L&C configuration (paper §8 uses L=8 links, one scalar sub-codebook).
struct LinkCodeOptions {
  PqOptions pq;
  size_t num_links = 8;   ///< neighbors participating in the refinement
  size_t train_sample = 2000;
};

/// PQ + neighbor-regression refinement bound to one base set and graph.
class LinkCodeIndex {
 public:
  static std::unique_ptr<LinkCodeIndex> Build(const Dataset& base,
                                              const graph::ProximityGraph& graph,
                                              const LinkCodeOptions& options);

  const PqQuantizer& pq() const { return *pq_; }
  const std::vector<uint8_t>& codes() const { return codes_; }
  const std::vector<float>& beta() const { return beta_; }

  /// Refined reconstruction of base vector v (dim floats).
  void RefinedDecode(uint32_t v, float* out) const;

  /// Exact distance of `query` to the refined reconstruction of v.
  float RefinedDistance(const float* query, uint32_t v) const;

  size_t ModelSizeBytes() const {
    return pq_->ModelSizeBytes() + beta_.size() * sizeof(float);
  }

 private:
  LinkCodeIndex(const Dataset& base, const graph::ProximityGraph& graph)
      : base_(base), graph_(graph) {}

  const Dataset& base_;
  const graph::ProximityGraph& graph_;
  std::unique_ptr<PqQuantizer> pq_;
  std::vector<uint8_t> codes_;
  std::vector<float> beta_;  // num_links weights
};

}  // namespace rpq::quant
