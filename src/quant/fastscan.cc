#include "quant/fastscan.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "simd/simd.h"

namespace rpq::quant {
namespace {

// Packs one code's nibbles into the block holding slot `slot`.
inline void PackCode(const uint8_t* code, size_t m, uint8_t* block,
                     size_t slot) {
  for (size_t j = 0; j < m; ++j) {
    RPQ_CHECK(code[j] < 16 && "FastScan requires 4-bit codes (K <= 16)");
    uint8_t* cell = block + (j / 2) * 32 + slot;
    if ((j & 1) == 0) {
      *cell = static_cast<uint8_t>((*cell & 0xf0) | code[j]);
    } else {
      *cell = static_cast<uint8_t>((*cell & 0x0f) | (code[j] << 4));
    }
  }
}

}  // namespace

PackedCodes PackedCodes::Pack(const uint8_t* codes, size_t n,
                              size_t code_size) {
  RPQ_CHECK(code_size > 0 && code_size <= 256);
  PackedCodes out;
  out.num_codes = n;
  out.m = code_size;
  out.m2 = code_size + (code_size & 1);
  out.data.assign(out.num_blocks() * out.block_bytes(), 0);
  for (size_t i = 0; i < n; ++i) {
    uint8_t* block = out.data.data() + (i / kBlockCodes) * out.block_bytes();
    PackCode(codes + i * code_size, code_size, block, i % kBlockCodes);
  }
  return out;
}

void PackedCodes::Append(const uint8_t* code) {
  RPQ_CHECK(m > 0 && "Append on a default-constructed PackedCodes");
  if (num_codes % kBlockCodes == 0) data.resize(data.size() + block_bytes(), 0);
  uint8_t* block = data.data() + (num_codes / kBlockCodes) * block_bytes();
  PackCode(code, m, block, num_codes % kBlockCodes);
  ++num_codes;
}

uint8_t PackedCodes::At(size_t i, size_t j) const {
  const uint8_t* block = data.data() + (i / kBlockCodes) * block_bytes();
  uint8_t cell = block[(j / 2) * 32 + (i % kBlockCodes)];
  return (j & 1) == 0 ? (cell & 0x0f) : (cell >> 4);
}

FastScanTable::FastScanTable(const VectorQuantizer& quantizer,
                             const float* query) {
  const size_t k = quantizer.num_centroids();
  m_ = quantizer.num_chunks();
  std::vector<float> table(m_ * k);
  quantizer.BuildLookupTable(query, table.data());
  Quantize(table.data(), k);
}

FastScanTable::FastScanTable(const DistanceLut& lut) {
  m_ = lut.num_chunks();
  Quantize(lut.data(), lut.num_centroids());
}

FastScanTable::FastScanTable(const float* table, size_t m, size_t k) {
  m_ = m;
  Quantize(table, k);
}

void FastScanTable::Quantize(const float* table, size_t k) {
  RPQ_CHECK(k > 0 && k <= 16 && "FastScan requires K <= 16 (4-bit codes)");
  RPQ_CHECK(m_ > 0 && m_ <= 256);
  m2_ = m_ + (m_ & 1);
  lut8_.assign(m2_ * 16, 0);

  // Shared scale: per-chunk minima fold into the bias, one delta quantizes
  // every chunk so the kernel's plain integer sum stays meaningful.
  bias_ = 0.f;
  float max_span = 0.f;
  std::vector<float> mins(m_);
  for (size_t j = 0; j < m_; ++j) {
    const float* row = table + j * k;
    float mn = row[0], mx = row[0];
    for (size_t c = 1; c < k; ++c) {
      mn = std::min(mn, row[c]);
      mx = std::max(mx, row[c]);
    }
    mins[j] = mn;
    bias_ += mn;
    max_span = std::max(max_span, mx - mn);
  }
  scale_ = max_span > 0.f ? max_span / 255.f : 1.f;

  // Reciprocal multiply instead of a per-entry divide, and round-half-up
  // instead of lround: this runs on every query, right before the search.
  const float inv_scale = 1.f / scale_;
  for (size_t j = 0; j < m_; ++j) {
    const float* row = table + j * k;
    for (size_t c = 0; c < k; ++c) {
      float q = (row[c] - mins[j]) * inv_scale;
      lut8_[j * 16 + c] =
          static_cast<uint8_t>(std::min(q, 255.f) + 0.5f);
    }
  }
}

void FastScanTable::ScanBlocks(const uint8_t* packed, size_t n_blocks,
                               uint16_t* sums) const {
  simd::AdcFastScan(lut8_.data(), m2_, packed, n_blocks, sums);
}

void FastScanTable::Scan(const PackedCodes& packed, float* out) const {
  RPQ_CHECK_EQ(packed.m2, m2_);
  std::vector<uint16_t> sums(packed.num_blocks() * PackedCodes::kBlockCodes);
  ScanBlocks(packed.data.data(), packed.num_blocks(), sums.data());
  for (size_t i = 0; i < packed.num_codes; ++i) out[i] = DecodeSum(sums[i]);
}

PackedNeighborBlocks PackedNeighborBlocks::Build(
    const graph::ProximityGraph& graph, const uint8_t* codes,
    size_t code_size) {
  RPQ_CHECK(code_size > 0 && code_size <= 256);
  PackedNeighborBlocks out;
  out.m = code_size;
  out.m2 = code_size + (code_size & 1);
  const size_t n = graph.num_vertices();
  const size_t bb = out.block_bytes();

  out.offsets.resize(n + 1);
  size_t total = 0;
  for (uint32_t v = 0; v < n; ++v) {
    out.offsets[v] = total;
    const size_t deg = graph.Neighbors(v).size();
    total += (deg + PackedCodes::kBlockCodes - 1) / PackedCodes::kBlockCodes * bb;
  }
  out.offsets[n] = total;

  out.data.assign(total, 0);
  for (uint32_t v = 0; v < n; ++v) {
    const auto& nbrs = graph.Neighbors(v);
    uint8_t* base = out.data.data() + out.offsets[v];
    for (size_t i = 0; i < nbrs.size(); ++i) {
      uint8_t* block = base + (i / PackedCodes::kBlockCodes) * bb;
      PackCode(codes + static_cast<size_t>(nbrs[i]) * code_size, code_size,
               block, i % PackedCodes::kBlockCodes);
    }
  }
  return out;
}

}  // namespace rpq::quant
