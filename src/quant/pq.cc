#include "quant/pq.h"

#include <cstring>
#include <vector>

#include "common/distance.h"
#include "common/logging.h"
#include "quant/kmeans.h"
#include "quant/split.h"
#include "simd/simd.h"

namespace rpq::quant {

Codebook TrainCodebooks(const float* rotated, size_t n, size_t dim,
                        const PqOptions& options) {
  RPQ_CHECK_EQ(dim % options.m, 0u);
  RPQ_CHECK(options.nbits == 8 || options.nbits == 4);
  const size_t k = options.effective_k();
  RPQ_CHECK_LE(k, 256u);
  size_t sub_dim = dim / options.m;
  Codebook book(options.m, k, sub_dim);

  std::vector<float> chunk(n * sub_dim);
  for (size_t j = 0; j < options.m; ++j) {
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(chunk.data() + i * sub_dim, rotated + i * dim + j * sub_dim,
                  sub_dim * sizeof(float));
    }
    KMeansOptions km;
    km.k = k;
    km.max_iters = options.kmeans_iters;
    km.seed = options.seed + j;
    KMeansResult res = RunKMeans(chunk.data(), n, sub_dim, km);
    std::memcpy(book.Chunk(j), res.centroids.data(),
                k * sub_dim * sizeof(float));
  }
  return book;
}

std::unique_ptr<PqQuantizer> PqQuantizer::Train(const Dataset& train,
                                                const PqOptions& options) {
  RPQ_CHECK(!train.empty());
  Codebook book = TrainCodebooks(train.data(), train.size(), train.dim(), options);
  return std::make_unique<PqQuantizer>(std::move(book), std::nullopt);
}

PqQuantizer::PqQuantizer(Codebook codebook, std::optional<linalg::Matrix> rotation)
    : dim_(codebook.dim()), codebook_(std::move(codebook)),
      rotation_(std::move(rotation)) {
  if (rotation_.has_value()) {
    RPQ_CHECK_EQ(rotation_->rows(), dim_);
    RPQ_CHECK_EQ(rotation_->cols(), dim_);
  }
}

PqQuantizer::~PqQuantizer() = default;

void PqQuantizer::set_split_model(std::unique_ptr<SplitPqModel> split) {
  if (split != nullptr) {
    RPQ_CHECK_EQ(split->num_chunks(), codebook_.num_chunks());
    RPQ_CHECK_EQ(split->sub_dim(), codebook_.sub_dim());
    RPQ_CHECK_EQ(codebook_.num_centroids(), size_t{256});
  }
  split_ = std::move(split);
}

void PqQuantizer::Rotate(const float* vec, float* out) const {
  if (rotation_.has_value()) {
    linalg::MatVec(*rotation_, vec, out);
  } else {
    std::memcpy(out, vec, dim_ * sizeof(float));
  }
}

void PqQuantizer::Encode(const float* vec, uint8_t* code) const {
  std::vector<float> rot(dim_);
  Rotate(vec, rot.data());
  size_t sub_dim = codebook_.sub_dim();
  for (size_t j = 0; j < codebook_.num_chunks(); ++j) {
    code[j] = static_cast<uint8_t>(NearestCentroid(
        rot.data() + j * sub_dim, codebook_.Chunk(j), codebook_.num_centroids(),
        sub_dim));
  }
}

void PqQuantizer::Decode(const uint8_t* code, float* out) const {
  size_t sub_dim = codebook_.sub_dim();
  std::vector<float> rot(dim_);
  for (size_t j = 0; j < codebook_.num_chunks(); ++j) {
    std::memcpy(rot.data() + j * sub_dim, codebook_.Word(j, code[j]),
                sub_dim * sizeof(float));
  }
  if (rotation_.has_value()) {
    // R is orthonormal: original = R^T * rotated.
    linalg::MatVecTrans(*rotation_, rot.data(), out);
  } else {
    std::memcpy(out, rot.data(), dim_ * sizeof(float));
  }
}

void PqQuantizer::BuildLookupTable(const float* query, float* table) const {
  std::vector<float> rot(dim_);
  Rotate(query, rot.data());
  size_t sub_dim = codebook_.sub_dim();
  size_t k = codebook_.num_centroids();
  for (size_t j = 0; j < codebook_.num_chunks(); ++j) {
    // Fused table build: one kernel call scans all K codewords of chunk j.
    simd::L2ToMany(rot.data() + j * sub_dim, codebook_.Chunk(j), k, sub_dim,
                   table + j * k);
  }
}

size_t PqQuantizer::ModelSizeBytes() const {
  size_t bytes = codebook_.num_floats() * sizeof(float);
  if (rotation_.has_value()) bytes += dim_ * dim_ * sizeof(float);
  return bytes;
}

double PqQuantizer::Distortion(const Dataset& data) const {
  RPQ_CHECK_EQ(data.dim(), dim_);
  std::vector<uint8_t> code(code_size());
  std::vector<float> rec(dim_);
  double acc = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    Encode(data[i], code.data());
    Decode(code.data(), rec.data());
    acc += SquaredL2(data[i], rec.data(), dim_);
  }
  return data.empty() ? 0.0 : acc / static_cast<double>(data.size());
}

}  // namespace rpq::quant
